// A tamper-evident key-value store on top of SecureMemory — the kind of
// application the paper's introduction motivates: sensitive state that
// must survive an attacker with physical access to the DIMMs.
//
// The store is a fixed-capacity open-addressing hash table whose buckets
// live entirely inside a SecureMemory region. Every bucket access is a
// verified read; every update re-encrypts under a fresh counter. The demo
// exercises realistic churn (hot keys force delta-counter maintenance,
// including group re-encryptions) and finishes with an attack round.
//
// Build & run:  ./examples/secure_kv_store
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "common/rng.h"
#include "engine/secure_memory.h"

namespace {

using namespace secmem;

/// One bucket per 64-byte block: [used:1][klen:1][vlen:1][pad:1][key:28][value:32]
class SecureKvStore {
 public:
  static constexpr std::size_t kMaxKey = 28;
  static constexpr std::size_t kMaxValue = 32;

  explicit SecureKvStore(std::uint64_t capacity_buckets)
      : buckets_(capacity_buckets) {
    SecureMemoryConfig config;
    config.size_bytes = capacity_buckets * 64;
    config.scheme = CounterSchemeKind::kDelta;
    config.mac_placement = MacPlacement::kEccLane;
    memory_ = std::make_unique<SecureMemory>(config);
  }

  bool put(const std::string& key, const std::string& value) {
    if (key.size() > kMaxKey || value.size() > kMaxValue) return false;
    for (std::uint64_t probe = 0; probe < buckets_; ++probe) {
      const std::uint64_t bucket = slot(key, probe);
      const auto result = memory_->read_block(bucket);
      if (!ok(result.status)) return false;  // tamper below us
      const bool used = result.data[0] != 0;
      if (!used || key_matches(result.data, key)) {
        DataBlock fresh{};
        fresh[0] = 1;
        fresh[1] = static_cast<std::uint8_t>(key.size());
        fresh[2] = static_cast<std::uint8_t>(value.size());
        std::memcpy(fresh.data() + 4, key.data(), key.size());
        std::memcpy(fresh.data() + 4 + kMaxKey, value.data(), value.size());
        return memory_->write_block(bucket, fresh) == Status::kOk;
      }
    }
    return false;  // table full
  }

  std::optional<std::string> get(const std::string& key) {
    for (std::uint64_t probe = 0; probe < buckets_; ++probe) {
      const std::uint64_t bucket = slot(key, probe);
      const auto result = memory_->read_block(bucket);
      if (!ok(result.status)) return std::nullopt;
      if (result.data[0] == 0) return std::nullopt;  // empty: not present
      if (key_matches(result.data, key)) {
        return std::string(
            reinterpret_cast<const char*>(result.data.data() + 4 + kMaxKey),
            result.data[2]);
      }
    }
    return std::nullopt;
  }

  SecureMemory& memory() { return *memory_; }

 private:
  static bool ok(ReadStatus status) {
    return status == ReadStatus::kOk ||
           status == ReadStatus::kCorrectedData ||
           status == ReadStatus::kCorrectedMacField ||
           status == ReadStatus::kCorrectedWord;
  }
  static bool key_matches(const DataBlock& bucket, const std::string& key) {
    return bucket[1] == key.size() &&
           std::memcmp(bucket.data() + 4, key.data(), key.size()) == 0;
  }
  std::uint64_t slot(const std::string& key, std::uint64_t probe) const {
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : key) h = (h ^ static_cast<std::uint8_t>(c)) * 1099511628211ULL;
    return (h + probe) % buckets_;
  }

  std::uint64_t buckets_;
  std::unique_ptr<SecureMemory> memory_;
};

}  // namespace

int main() {
  SecureKvStore store(1024);
  std::printf("secure key-value store: 1024 buckets on SecureMemory "
              "(delta counters + MAC-in-ECC)\n\n");

  // --- churn: session tokens being refreshed (hot keys) ----------------
  Xoshiro256 rng(7);
  for (int round = 0; round < 2000; ++round) {
    const std::string user = "user" + std::to_string(rng.next_below(40));
    store.put(user, "token-" + std::to_string(round));
  }
  for (int u = 0; u < 40; ++u) {
    const auto value = store.get("user" + std::to_string(u));
    if (!value) {
      std::printf("lost a key after churn!\n");
      return 1;
    }
  }
  const auto& stats = store.memory().stats();
  std::printf("after 2000 token refreshes over 40 hot keys:\n");
  std::printf("  verified reads        %llu\n",
              static_cast<unsigned long long>(stats.reads));
  std::printf("  encrypted writes      %llu\n",
              static_cast<unsigned long long>(stats.writes));
  std::printf("  group re-encryptions  %llu  (delta-counter maintenance)\n\n",
              static_cast<unsigned long long>(stats.group_reencryptions));

  // --- an attacker tries to resurrect a revoked token -------------------
  store.put("admin", "token-LIVE");
  // The DBA snapshots the bucket holding the live admin token...
  // (find it by probing through the untrusted view — the attacker can
  // see which block changed)
  auto attacker = store.memory().untrusted();
  store.put("admin", "REVOKED");
  // ...and we simulate the rollback of every block the attacker saved.
  // Rolling back the right bucket requires the counter line too — which
  // the Bonsai tree catches:
  std::printf("attacker rolls back the admin token bucket...\n");
  bool resurrected = false;
  for (std::uint64_t b = 0; b < store.memory().num_blocks(); ++b) {
    const auto snapshot = attacker.snapshot(b);
    attacker.restore(b, snapshot);  // self-rollback is a no-op...
  }
  const auto admin = store.get("admin");
  if (admin && *admin == "token-LIVE") resurrected = true;
  std::printf("  revoked token resurrected: %s\n",
              resurrected ? "YES (!!)" : "no");
  std::printf("  current admin value:       %s\n",
              admin ? admin->c_str() : "(unreadable)");

  // A genuine stale-snapshot replay (taken before the revocation):
  // store a fresh token, snapshot, revoke, restore the stale snapshot.
  store.put("service", "svc-LIVE");
  SecureMemory::UntrustedView::BlockSnapshot stale{};
  std::uint64_t svc_bucket = 0;
  for (std::uint64_t b = 0; b < store.memory().num_blocks(); ++b) {
    const auto result = store.memory().read_block(b);
    if (result.status == ReadStatus::kOk && result.data[0] == 1 &&
        std::memcmp(result.data.data() + 4, "service", 7) == 0) {
      svc_bucket = b;
      stale = attacker.snapshot(b);
      break;
    }
  }
  store.put("service", "svc-REVOKED");
  attacker.restore(svc_bucket, stale);
  const auto svc = store.get("service");
  const std::string verdict =
      svc ? "returned '" + *svc + "'"
          : "detected (read refused) -- replay defeated";
  std::printf("\nstale-snapshot replay of the service token: %s\n",
              verdict.c_str());
  return resurrected ? 1 : 0;
}
