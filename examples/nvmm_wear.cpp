// Non-volatile main-memory wear under different counter schemes
// (paper §2.2 "Non-Volatile Main Memory Encryption" and §4).
//
// On NVMM, every block (re-)encryption is a media write that costs
// endurance. A block-group re-encryption rewrites all 64 blocks of the
// group, so a counter representation that re-encrypts often multiplies
// wear. This example drives one write-hot workload against all four
// counter schemes and reports the write amplification each induces:
//
//   amplification = (application writes + re-encryption writes)
//                   / application writes
//
// Build & run:  ./examples/nvmm_wear
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "counters/counter_scheme.h"
#include "counters/delta_counter.h"
#include "counters/dual_length_delta.h"

namespace {

using namespace secmem;

/// A dedup-like writeback stream: sequential passes over a buffer ring
/// plus a skewed hot set — the kind of stream Table 2 shows separating
/// the schemes.
class WriteStream {
 public:
  explicit WriteStream(std::uint64_t seed) : rng_(seed) {}

  BlockIndex next() {
    if (rng_.chance(0.7)) {
      const BlockIndex block = pos_;
      pos_ = (pos_ + 1) % kRingBlocks;
      return block;
    }
    // Hot updates, biased toward lower block numbers (rate skew).
    const std::uint64_t r = rng_.next_below(64);
    return kRingBlocks + std::min(r, rng_.next_below(64));
  }

  static constexpr BlockIndex kRingBlocks = 4096;  // 4 groups swept
  static constexpr BlockIndex kTotalBlocks = kRingBlocks + 64;

 private:
  Xoshiro256 rng_;
  BlockIndex pos_ = 0;
};

void report(CounterScheme& scheme, std::uint64_t app_writes,
            std::uint64_t reencryptions) {
  const std::uint64_t reenc_writes =
      reencryptions * scheme.blocks_per_group();
  const double amplification =
      1.0 + static_cast<double>(reenc_writes) /
                static_cast<double>(app_writes);
  std::printf("%-22s %12llu %14llu %16.4fx\n", scheme.name().c_str(),
              static_cast<unsigned long long>(reencryptions),
              static_cast<unsigned long long>(reenc_writes), amplification);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t writes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3000000;

  std::printf(
      "=== NVMM wear: media-write amplification from counter-overflow "
      "re-encryption ===\n    (%llu application block writes)\n\n",
      static_cast<unsigned long long>(writes));
  std::printf("%-22s %12s %14s %16s\n", "counter scheme", "re-encrypts",
              "extra writes", "amplification");

  for (const CounterSchemeKind kind :
       {CounterSchemeKind::kMonolithic56, CounterSchemeKind::kSplit,
        CounterSchemeKind::kDelta, CounterSchemeKind::kDualDelta}) {
    auto scheme = make_counter_scheme(kind, WriteStream::kTotalBlocks);
    WriteStream stream(2018);
    std::uint64_t reencryptions = 0;
    for (std::uint64_t i = 0; i < writes; ++i) {
      if (scheme->on_write(stream.next()).event == CounterEvent::kReencrypt)
        ++reencryptions;
    }
    report(*scheme, writes, reencryptions);
  }

  std::printf(
      "\nmonolithic counters never overflow but cost ~11%% storage;\n"
      "delta encoding keeps split-counter compactness at a fraction of "
      "the\nre-encryption wear (paper §2.2, §4.3) — exactly what an NVMM "
      "deployment needs.\n");
  return 0;
}
