// DRAM-fault recovery with MAC-based ECC (paper §3).
//
// Injects the fault patterns of the paper's Figure 3 into a SecureMemory
// region configured with MAC-in-ECC, and shows the flip-and-check
// corrector at work: which faults are repaired, which are detected, and
// how many MAC evaluations the brute-force search needed (paper §3.4:
// <= 512 for single-bit, <= 130,816 for double-bit). The same faults are
// then replayed against a conventional SEC-DED + separate-MAC region for
// contrast.
//
// Build & run:  ./examples/ecc_recovery
#include <cstdio>

#include "common/rng.h"
#include "engine/secure_memory.h"

namespace {

using namespace secmem;

DataBlock pattern(std::uint8_t seed) {
  DataBlock block{};
  for (std::size_t i = 0; i < 64; ++i)
    block[i] = static_cast<std::uint8_t>(seed * 31 + i);
  return block;
}

struct Scenario {
  const char* name;
  std::vector<unsigned> data_bits;  ///< ciphertext bits to flip
  std::vector<unsigned> lane_bits;  ///< ECC/MAC-lane bits to flip
};

void run(SecureMemory& memory, const char* label,
         const std::vector<Scenario>& scenarios) {
  std::printf("%s\n", label);
  std::uint64_t block = 40;
  for (const Scenario& s : scenarios) {
    if (memory.write_block(block, pattern(static_cast<std::uint8_t>(block))) !=
        Status::kOk)
      std::abort();
    auto view = memory.untrusted();
    for (unsigned bit : s.data_bits) view.flip_ciphertext_bit(block, bit);
    for (unsigned bit : s.lane_bits) view.flip_lane_bit(block, bit);
    const auto result = memory.read_block(block);
    const bool data_ok =
        (result.status != ReadStatus::kIntegrityViolation &&
         result.status != ReadStatus::kCounterTampered) &&
        result.data == pattern(static_cast<std::uint8_t>(block));
    std::printf("  %-34s -> %-22s %s", s.name,
                read_status_name(result.status),
                data_ok ? "(data recovered)" : "");
    if (result.mac_evaluations > 1)
      std::printf(" [%llu flip-and-check MACs]",
                  static_cast<unsigned long long>(result.mac_evaluations));
    std::printf("\n");
    ++block;
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const std::vector<Scenario> scenarios = {
      {"clean read", {}, {}},
      {"1 bit in data", {77}, {}},
      {"2 bits, same 8-byte word", {3, 60}, {}},
      {"2 bits, different words", {10, 300}, {}},
      {"3 bits in one word", {1, 2, 3}, {}},
      {"1 bit in the MAC field", {}, {20}},
      {"2 bits in the MAC field", {}, {20, 40}},
      {"1 data bit + 1 MAC bit", {250}, {5}},
  };

  std::printf(
      "=== DRAM-fault recovery: MAC-based ECC vs conventional SEC-DED "
      "===\n\n");

  {
    SecureMemoryConfig config;
    config.size_bytes = 64 * 1024;
    config.mac_placement = MacPlacement::kEccLane;
    SecureMemory memory(config);
    run(memory, "MAC-in-ECC (paper $3): 56-bit MAC + 7-bit Hamming + scrub"
                " bit", scenarios);
  }
  {
    SecureMemoryConfig config;
    config.size_bytes = 64 * 1024;
    config.mac_placement = MacPlacement::kSeparate;
    SecureMemory memory(config);
    run(memory,
        "conventional: per-word SEC-DED lane + MACs in their own region",
        scenarios);
  }

  std::printf(
      "note the two signature differences (paper Figure 3):\n"
      "  - double-bit faults inside ONE word: SEC-DED detects only;\n"
      "    flip-and-check repairs them.\n"
      "  - faults spread across >2 words: SEC-DED repairs word-by-word;\n"
      "    flip-and-check gives up beyond 2 total bits (but always "
      "detects).\n");
  return 0;
}
