// Periodic DRAM scrubbing with the MAC-ECC lane (paper §3.3).
//
// Simulates months of field operation at realistic DRAM fault rates
// (Meza et al., DSN'15: most affected servers see at most ~9 correctable
// errors per month [paper §3.4]) and contrasts two maintenance policies:
//
//   no scrubbing      latent single-bit faults accumulate until two land
//                     in one block between accesses — then correction
//                     costs a 130K-MAC search, or fails entirely at 3+
//   monthly scrubbing the quick parity scan (2 checks/line, no MAC math)
//                     catches and heals faults while they are single-bit
//
// Build & run:  ./examples/scrubbing
#include <cstdio>

#include "common/rng.h"
#include "engine/secure_memory.h"

namespace {

using namespace secmem;

DataBlock pattern(std::uint64_t block) {
  DataBlock b{};
  for (std::size_t i = 0; i < 64; ++i)
    b[i] = static_cast<std::uint8_t>(block * 7 + i);
  return b;
}

struct MonthOutcome {
  std::uint64_t repaired = 0;
  std::uint64_t uncorrectable = 0;
  std::uint64_t flip_and_check_macs = 0;
};

MonthOutcome end_of_year_audit(SecureMemory& memory) {
  MonthOutcome outcome;
  for (std::uint64_t b = 0; b < memory.num_blocks(); ++b) {
    const auto result = memory.read_block(b);
    outcome.flip_and_check_macs += result.mac_evaluations;
    switch (result.status) {
      case ReadStatus::kOk: break;
      case ReadStatus::kCorrectedData:
      case ReadStatus::kCorrectedMacField:
      case ReadStatus::kCorrectedWord:
        ++outcome.repaired;
        break;
      default:
        ++outcome.uncorrectable;
    }
  }
  return outcome;
}

void simulate_year(bool scrub_monthly, unsigned faults_per_month,
                   std::uint64_t seed) {
  SecureMemoryConfig config;
  config.size_bytes = 64 * 1024;  // a small DIMM stand-in
  config.mac_placement = MacPlacement::kEccLane;
  SecureMemory memory(config);
  for (std::uint64_t b = 0; b < memory.num_blocks(); ++b)
    if (memory.write_block(b, pattern(b)) != Status::kOk) std::abort();

  Xoshiro256 rng(seed);
  std::uint64_t scrub_repairs = 0;
  for (int month = 0; month < 12; ++month) {
    for (unsigned f = 0; f < faults_per_month; ++f) {
      memory.untrusted().flip_ciphertext_bit(
          rng.next_below(memory.num_blocks()),
          static_cast<unsigned>(rng.next_below(512)));
    }
    if (scrub_monthly) {
      const auto report = memory.scrub_all();
      scrub_repairs += report.repaired_data + report.repaired_mac;
    }
  }

  const MonthOutcome audit = end_of_year_audit(memory);
  std::printf(
      "  %-18s scrub-healed=%3llu  audit: repaired=%3llu "
      "uncorrectable=%3llu  (%llu brute-force MAC evals)\n",
      scrub_monthly ? "monthly scrubbing:" : "no scrubbing:",
      static_cast<unsigned long long>(scrub_repairs),
      static_cast<unsigned long long>(audit.repaired),
      static_cast<unsigned long long>(audit.uncorrectable),
      static_cast<unsigned long long>(audit.flip_and_check_macs));
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned faults_per_month = argc > 1 ? std::atoi(argv[1]) : 9;
  std::printf(
      "=== one simulated year at %u single-bit DRAM faults/month "
      "(64KB region) ===\n\n", faults_per_month);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    std::printf("year with seed %llu:\n",
                static_cast<unsigned long long>(seed));
    simulate_year(false, faults_per_month, seed);
    simulate_year(true, faults_per_month, seed);
  }
  std::printf(
      "\nscrubbing keeps every fault single-bit — healed by a cheap scan "
      "—\nwhile the unscrubbed region accumulates multi-bit blocks that "
      "cost\nexpensive flip-and-check searches or become uncorrectable "
      "(paper §3.3-3.4).\n");
  return 0;
}
