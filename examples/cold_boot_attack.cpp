// Cold-boot / bus-tamper attack demonstration (paper §1-2 threat model).
//
// Plays the attacker with physical access to the DIMMs against
// SecureMemory, mounting each classic attack in turn:
//   1. memory dump            -> sees only ciphertext (confidentiality)
//   2. bit tamper             -> integrity violation (MAC)
//   3. block splice           -> address binding rejects relocated data
//   4. full replay            -> the Bonsai tree catches stale counters
//   5. counter rollback alone -> tree authentication fails
//
// Build & run:  ./examples/cold_boot_attack
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>

#include "engine/secure_memory.h"

namespace {

using namespace secmem;

int checks_passed = 0;
int checks_total = 0;

void verdict(const char* attack, bool detected) {
  ++checks_total;
  checks_passed += detected;
  std::printf("  [%s] %s\n", detected ? "DEFEATED" : "!! SUCCEEDED !!",
              attack);
}

DataBlock message_block(const char* text) {
  DataBlock block{};
  std::strncpy(reinterpret_cast<char*>(block.data()), text, 63);
  return block;
}

}  // namespace

// Every victim-side write in this drill is expected to land; a Status
// other than kOk means the drill itself is broken, not the attacker.
void must_write(SecureMemory& memory, std::uint64_t block,
                const DataBlock& data) {
  if (memory.write_block(block, data) != Status::kOk) {
    std::fprintf(stderr, "victim write to block %llu failed\n",
                 static_cast<unsigned long long>(block));
    std::exit(1);
  }
}

int main() {
  SecureMemoryConfig config;
  config.size_bytes = 256 * 1024;
  config.scheme = CounterSchemeKind::kDelta;
  config.mac_placement = MacPlacement::kEccLane;
  SecureMemory memory(config);
  auto attacker = memory.untrusted();

  std::printf("cold-boot attack drill against a %lluKB protected region\n\n",
              static_cast<unsigned long long>(memory.size_bytes() / 1024));

  // The victim stores two sensitive records.
  must_write(memory, 10, message_block("account balance: $1,000,000"));
  must_write(memory, 20, message_block("admin password hash: deadbeef"));

  // -- attack 1: dump the DIMM and look for plaintext -------------------
  {
    bool plaintext_visible = false;
    for (std::uint64_t b = 0; b < memory.num_blocks(); ++b) {
      const std::string_view dump(
          reinterpret_cast<const char*>(attacker.ciphertext(b).data()), 64);
      if (dump.find("password") != std::string_view::npos ||
          dump.find("balance") != std::string_view::npos) {
        plaintext_visible = true;
      }
    }
    verdict("cold-boot dump (confidentiality)", !plaintext_visible);
  }

  // -- attack 2: flip bits on the bus ------------------------------------
  {
    for (unsigned bit : {0u, 200u, 400u}) attacker.flip_ciphertext_bit(10, bit);
    const bool detected =
        memory.read_block(10).status != ReadStatus::kOk;
    verdict("3-bit data tamper", detected);
    must_write(memory, 10, message_block("account balance: $1,000,000"));
  }

  // -- attack 3: splice block 20's (ciphertext, MAC) into block 10 -------
  {
    const auto donor = attacker.snapshot(20);
    std::memcpy(attacker.ciphertext(10).data(), donor.ciphertext.data(), 64);
    for (int i = 0; i < 8; ++i) attacker.ecc_lane(10)[i] = donor.lane[i];
    const bool detected = memory.read_block(10).status != ReadStatus::kOk;
    verdict("cross-address splice", detected);
    must_write(memory, 10, message_block("account balance: $1,000,000"));
  }

  // -- attack 4: full replay of (data, MAC, counter) ---------------------
  {
    // Snapshot the "rich" state, let the victim spend the money, then
    // roll everything the attacker can reach back.
    const auto rich = attacker.snapshot(10);
    must_write(memory, 10, message_block("account balance: $0.37"));
    attacker.restore(10, rich);
    const auto result = memory.read_block(10);
    const bool detected = result.status != ReadStatus::kOk;
    verdict("replay of data+MAC+counter", detected);
    must_write(memory, 10, message_block("account balance: $0.37"));
  }

  // -- attack 5: roll back just the counter line --------------------------
  {
    const std::uint64_t line = memory.counters().storage_line_of(10);
    attacker.flip_counter_bit(line, 3);  // perturb the stored delta bits
    const auto result = memory.read_block(10);
    verdict("counter-storage tamper",
            result.status == ReadStatus::kCounterTampered);
  }

  std::printf("\n%d/%d attacks defeated\n", checks_passed, checks_total);
  return checks_passed == checks_total ? 0 : 1;
}
