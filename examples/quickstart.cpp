// Quickstart: a protected memory region in a dozen lines.
//
// SecureMemory gives you a byte-addressable region whose off-chip backing
// store holds only ciphertext and authentication metadata: AES-CTR
// encryption with delta-encoded counters, 56-bit Carter-Wegman MACs
// stored in the ECC lane, and a Bonsai Merkle tree guarding counter
// freshness — the full construction from Yitbarek & Austin, DAC 2018.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "engine/secure_memory.h"

int main() {
  using namespace secmem;

  // 1MB protected region with the paper's optimized configuration:
  // delta-encoded counters + MAC-in-ECC.
  SecureMemoryConfig config;
  config.size_bytes = 1 * 1024 * 1024;
  config.scheme = CounterSchemeKind::kDelta;
  config.mac_placement = MacPlacement::kEccLane;
  SecureMemory memory(config);

  std::printf("secmem quickstart\n");
  std::printf("  region:            %llu bytes (%llu blocks)\n",
              static_cast<unsigned long long>(memory.size_bytes()),
              static_cast<unsigned long long>(memory.num_blocks()));
  std::printf("  counter scheme:    %s (%.3f bits/block)\n",
              memory.counters().name().c_str(),
              memory.counters().bits_per_block());
  std::printf("  metadata overhead: %.2f%% of protected data\n\n",
              memory.layout().metadata_overhead_pct());

  // --- ordinary use: byte-level writes and verified reads -------------
  const std::string secret = "attack at dawn; bring 128-bit keys";
  if (!secmem::status_ok(memory.write_bytes(
          0x1234, std::span<const std::uint8_t>(
                      reinterpret_cast<const std::uint8_t*>(secret.data()),
                      secret.size())))) {
    std::printf("unexpected write failure!\n");
    return 1;
  }

  std::vector<std::uint8_t> readback(secret.size());
  if (!secmem::status_ok(memory.read_bytes(0x1234, readback))) {
    std::printf("unexpected verification failure!\n");
    return 1;
  }
  std::printf("round trip:  \"%s\"\n",
              std::string(readback.begin(), readback.end()).c_str());

  // --- what the attacker sees ------------------------------------------
  // The block holding our secret, as it sits in (simulated) DRAM:
  const std::uint64_t block = 0x1234 / 64;
  auto view = memory.untrusted();
  std::printf("ciphertext:  ");
  for (int i = 0; i < 16; ++i)
    std::printf("%02x", view.ciphertext(block)[i]);
  std::printf("...  (no plaintext in DRAM)\n");

  // --- tampering is detected -------------------------------------------
  view.flip_ciphertext_bit(block, 7);
  view.flip_ciphertext_bit(block, 8);
  view.flip_ciphertext_bit(block, 9);  // 3 flips: beyond ECC, clearly hostile
  const auto result = memory.read_block(block);
  std::printf("after 3-bit tamper: %s\n", read_status_name(result.status));

  // --- single-bit faults are corrected, not just detected ---------------
  // Repair the block first (rewrite), then inject a realistic DRAM fault.
  DataBlock plain{};
  std::memcpy(plain.data(), secret.data(),
              std::min<std::size_t>(secret.size(), 64));
  if (memory.write_block(block, plain) != Status::kOk) return 1;
  view.flip_ciphertext_bit(block, 100);
  const auto fixed = memory.read_block(block);
  std::printf("after 1-bit DRAM fault: %s (%llu MAC evaluations)\n",
              read_status_name(fixed.status),
              static_cast<unsigned long long>(fixed.mac_evaluations));
  return 0;
}
