// secmem-lint — repository invariant checker for the secure-memory tree.
//
// The analyses clang gives us (-Wthread-safety, clang-tidy) are gated on
// clang being installed; these project-specific rules must hold on every
// build, so they are enforced by this dependency-free checker that runs
// in CI (scripts/lint.sh) under any toolchain.
//
// Rules (see ARCHITECTURE.md "Static analysis & enforced invariants"):
//
//   ct-compare      src/{engine,tree,crypto,ecc}: no memcmp / bcmp /
//                   std::equal / std::ranges::equal — accept/reject
//                   decisions over MAC/tag/verified bytes must go through
//                   common/ct.h (ct_equal / ct_equal_u64), which never
//                   early-exits on the first differing byte.
//   raw-mutex       src/ outside common/thread_annotations.h: no naked
//                   std::mutex family / std::shared_lock, and no direct
//                   lock_shared()/unlock_shared()/try_lock_shared() calls
//                   — use secmem::Mutex/MutexLock/SeqLock/SeqReadLock so
//                   clang thread-safety analysis can see the capability
//                   and shared readers go through the SeqLock generation
//                   protocol.
//   sim-rand        src/sim/: no rand()/std::random_device/std::mt19937 —
//                   simulator runs must replay bit-identically from a
//                   seed; use common/rng.h (Xoshiro256).
//   stat-name       src/, tools/, bench/: string literals passed to
//                   StatRegistry counter()/scalar()/histogram() must live
//                   in a registered namespace (first dotted segment).
//   crypto-include  outside src/crypto/: no <immintrin.h>-family includes
//                   and no includes of the *_ni.cc / gf64_clmul.cc
//                   backend internals — intrinsics stay behind the
//                   runtime-dispatched crypto_backend seam.
//   no-throw-engine src/engine/, src/counters/: datapath failures are
//                   reported through secmem::Status, never thrown — a
//                   throw across the engine boundary loses the poisoned /
//                   tampered distinction and skips the metrics/trace
//                   accounting. Only argument-contract throws
//                   (std::out_of_range, std::invalid_argument,
//                   std::length_error) are allowed.
//
// Suppression:
//   - inline, same line:            // secmem-lint: allow(rule-id)
//   - checked-in allowlist file:    <path>: <rule-id>   (one per line,
//     path relative to --root, '#' comments) — tools/secmem-lint.allow
//
// Output: one `file:line: rule-id: message` per finding, sorted.
// Exit status: 0 clean, 1 findings, 2 usage/configuration error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string path;  // relative, forward slashes
  std::size_t line;
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    return std::tie(path, line, rule) < std::tie(o.path, o.line, o.rule);
  }
};

/// The two derived views of a source file, same length / line structure
/// as the original: `code` has comments and string/char literals blanked
/// (token rules), `code_strings` has only comments blanked (rules that
/// need literal contents or #include targets).
struct Views {
  std::string code;
  std::string code_strings;
};

/// One pass over the text, preserving newlines so offsets map to lines.
Views strip(const std::string& text) {
  Views v;
  v.code.assign(text.size(), ' ');
  v.code_strings.assign(text.size(), ' ');
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {  // newlines survive every state
      v.code[i] = '\n';
      v.code_strings[i] = '\n';
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          // R"delim( ... opens a raw string when the quote follows an R
          // that is not part of a longer identifier.
          const bool raw =
              i > 0 && text[i - 1] == 'R' &&
              (i < 2 || (!std::isalnum(static_cast<unsigned char>(
                             text[i - 2])) &&
                         text[i - 2] != '_'));
          v.code_strings[i] = '"';
          if (raw) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(')
              raw_delim += text[j++];
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          state = State::kChar;
        } else {
          v.code[i] = c;
          v.code_strings[i] = c;
        }
        break;
      case State::kLineComment:
      case State::kBlockComment:
        if (state == State::kBlockComment && c == '*' &&
            i + 1 < text.size() && text[i + 1] == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        v.code_strings[i] = c;
        if (c == '\\' && i + 1 < text.size()) {
          if (text[i + 1] != '\n') v.code_strings[i + 1] = text[i + 1];
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < text.size())
          ++i;
        else if (c == '\'')
          state = State::kCode;
        break;
      case State::kRawString: {
        v.code_strings[i] = c;
        const std::string close = ")" + raw_delim + "\"";
        if (c == ')' && text.compare(i, close.size(), close) == 0) {
          for (std::size_t k = 0; k < close.size() && i + k < text.size();
               ++k)
            v.code_strings[i + k] = text[i + k];
          i += close.size() - 1;
          state = State::kCode;
        }
        break;
      }
    }
  }
  return v;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + pos, '\n'));
}

/// All positions where `name` appears as a complete identifier.
std::vector<std::size_t> find_idents(const std::string& code,
                                     std::string_view name) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

/// True if the identifier at `pos` is qualified as std:: (possibly
/// ::std:: or std::ranges::).
bool std_qualified(const std::string& code, std::size_t pos) {
  auto skip_ws_back = [&](std::size_t p) {
    while (p > 0 && std::isspace(static_cast<unsigned char>(code[p - 1])))
      --p;
    return p;
  };
  std::size_t p = skip_ws_back(pos);
  if (p < 2 || code[p - 1] != ':' || code[p - 2] != ':') return false;
  p = skip_ws_back(p - 2);
  std::size_t end = p;
  while (p > 0 && ident_char(code[p - 1])) --p;
  const std::string_view qual(code.data() + p, end - p);
  if (qual == "std") return true;
  if (qual == "ranges") return std_qualified(code, p);
  return false;
}

struct Rule {
  const char* id;
  const char* message;
};

constexpr Rule kCtCompare = {
    "ct-compare",
    "variable-time compare on a verification path; use "
    "secmem::ct_equal/ct_equal_u64 (common/ct.h)"};
constexpr Rule kRawMutex = {
    "raw-mutex",
    "naked std mutex invisible to thread-safety analysis; use "
    "secmem::Mutex/MutexLock (common/thread_annotations.h)"};
constexpr Rule kSimRand = {
    "sim-rand",
    "non-reproducible randomness in simulator code; use "
    "secmem::Xoshiro256 (common/rng.h)"};
constexpr Rule kStatName = {"stat-name",
                            "stat name outside the registered namespaces"};
constexpr Rule kCryptoInclude = {
    "crypto-include",
    "intrinsics / crypto-backend internals included outside src/crypto; "
    "go through crypto_backend.h"};
constexpr Rule kNoThrowEngine = {
    "no-throw-engine",
    "engine/counter datapaths report failures via secmem::Status, not "
    "exceptions; only argument-contract throws (std::out_of_range, "
    "std::invalid_argument, std::length_error) are allowed"};

/// Registered stat namespaces. Entries may themselves be dotted
/// ("snapshot.delta"): a stat name passes if its first segment OR its
/// first two segments match an entry, so sub-namespaces can be carved
/// out without opening the whole parent.
const std::set<std::string, std::less<>> kStatNamespaces = {
    "bench",     "cache", "dram",     "engine",        "metacache",
    "reenc",     "sim",   "snapshot", "snapshot.delta", "trace",
    "tree_cache"};

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  bool load_allowlist(const fs::path& file) {
    std::ifstream in(file);
    if (!in) return false;
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      const std::size_t colon = line.rfind(':');
      if (colon == std::string::npos) continue;  // blank / comment
      auto trim = [](std::string s) {
        const auto b = s.find_first_not_of(" \t");
        const auto e = s.find_last_not_of(" \t");
        return b == std::string::npos ? std::string()
                                      : s.substr(b, e - b + 1);
      };
      const std::string path = trim(line.substr(0, colon));
      const std::string rule = trim(line.substr(colon + 1));
      if (!path.empty() && !rule.empty()) allow_.insert(path + ":" + rule);
    }
    return true;
  }

  void lint_file(const fs::path& abs) {
    std::ifstream in(abs, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "secmem-lint: cannot read %s\n",
                   abs.string().c_str());
      io_error_ = true;
      return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const std::string rel =
        fs::relative(abs, root_).generic_string();
    const Views v = strip(text);

    if (starts_with(rel, "src/engine/") || starts_with(rel, "src/tree/") ||
        starts_with(rel, "src/crypto/") || starts_with(rel, "src/ecc/")) {
      if (rel != "src/common/ct.h") check_ct_compare(rel, text, v);
    }
    if (starts_with(rel, "src/") &&
        rel != "src/common/thread_annotations.h") {
      check_raw_mutex(rel, text, v);
    }
    if (starts_with(rel, "src/sim/")) check_sim_rand(rel, text, v);
    if (starts_with(rel, "src/engine/") || starts_with(rel, "src/counters/"))
      check_no_throw_engine(rel, text, v);
    if (starts_with(rel, "src/") || starts_with(rel, "tools/") ||
        starts_with(rel, "bench/")) {
      check_stat_name(rel, text, v);
    }
    if (!starts_with(rel, "src/crypto/"))
      check_crypto_include(rel, text, v);
  }

  int report() {
    std::sort(findings_.begin(), findings_.end());
    for (const Finding& f : findings_) {
      std::printf("%s:%zu: %s: %s\n", f.path.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
    }
    if (io_error_) return 2;
    return findings_.empty() ? 0 : 1;
  }

 private:
  void add(const std::string& rel, const std::string& text, std::size_t pos,
           const Rule& rule, const std::string& detail = "") {
    if (allow_.count(rel + ":" + rule.id)) return;
    const std::size_t line = line_of(text, pos);
    if (inline_allowed(text, line, rule.id)) return;
    std::string message = rule.message;
    if (!detail.empty()) message += " [" + detail + "]";
    findings_.push_back({rel, line, rule.id, std::move(message)});
  }

  /// `// secmem-lint: allow(rule-id)` anywhere on the finding's line.
  static bool inline_allowed(const std::string& text, std::size_t line,
                             std::string_view rule) {
    std::size_t start = 0;
    for (std::size_t n = 1; n < line; ++n) {
      start = text.find('\n', start);
      if (start == std::string::npos) return false;
      ++start;
    }
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view l(text.data() + start, end - start);
    const std::size_t tag = l.find("secmem-lint:");
    if (tag == std::string_view::npos) return false;
    const std::string want = "allow(" + std::string(rule) + ")";
    return l.find(want, tag) != std::string_view::npos;
  }

  void check_ct_compare(const std::string& rel, const std::string& text,
                        const Views& v) {
    for (const char* name : {"memcmp", "bcmp"}) {
      for (const std::size_t pos : find_idents(v.code, name))
        add(rel, text, pos, kCtCompare, name);
    }
    for (const std::size_t pos : find_idents(v.code, "equal")) {
      if (std_qualified(v.code, pos)) add(rel, text, pos, kCtCompare, "std::equal");
    }
  }

  void check_raw_mutex(const std::string& rel, const std::string& text,
                       const Views& v) {
    for (const char* name :
         {"mutex", "recursive_mutex", "timed_mutex",
          "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
          "shared_lock"}) {
      for (const std::size_t pos : find_idents(v.code, name)) {
        if (std_qualified(v.code, pos))
          add(rel, text, pos, kRawMutex, std::string("std::") + name);
      }
    }
    // Reader-side primitives called directly (mu.lock_shared() etc.)
    // bypass both the capability annotations and the SeqLock generation
    // protocol; only thread_annotations.h itself may touch them.
    for (const char* name :
         {"lock_shared", "unlock_shared", "try_lock_shared"}) {
      for (const std::size_t pos : find_idents(v.code, name))
        add(rel, text, pos, kRawMutex, name);
    }
  }

  void check_sim_rand(const std::string& rel, const std::string& text,
                      const Views& v) {
    for (const char* name :
         {"rand", "srand", "rand_r", "drand48", "random_device", "mt19937",
          "mt19937_64", "minstd_rand", "minstd_rand0",
          "default_random_engine", "knuth_b"}) {
      for (const std::size_t pos : find_idents(v.code, name))
        add(rel, text, pos, kSimRand, name);
    }
  }

  void check_no_throw_engine(const std::string& rel, const std::string& text,
                             const Views& v) {
    for (const std::size_t pos : find_idents(v.code, "throw")) {
      // The thrown expression's head: a possibly std::-qualified type
      // name right after the keyword. `throw;` (rethrow) and non-type
      // heads fall through to a finding — the rule is about what leaves
      // the engine, and anything but the whitelisted argument-contract
      // types does.
      std::size_t p = pos + 5;
      while (p < v.code.size() &&
             std::isspace(static_cast<unsigned char>(v.code[p])))
        ++p;
      std::string head;
      while (p < v.code.size() &&
             (ident_char(v.code[p]) || v.code[p] == ':'))
        head += v.code[p++];
      if (starts_with(head, "std::")) head.erase(0, 5);
      if (head == "out_of_range" || head == "invalid_argument" ||
          head == "length_error")
        continue;
      add(rel, text, pos, kNoThrowEngine,
          head.empty() ? "throw" : "throw " + head);
    }
  }

  void check_stat_name(const std::string& rel, const std::string& text,
                       const Views& v) {
    for (const char* method : {"counter", "scalar", "histogram"}) {
      for (const std::size_t pos : find_idents(v.code, method)) {
        // Match a call whose first argument is a string literal:
        //   counter ( "name...
        std::size_t p = pos + std::string_view(method).size();
        while (p < v.code.size() &&
               std::isspace(static_cast<unsigned char>(v.code[p])))
          ++p;
        if (p >= v.code.size() || v.code[p] != '(') continue;
        ++p;
        // Skip whitespace in the strings-kept view: in `code` the literal
        // itself is blanked to spaces and would be skipped right over.
        while (p < v.code_strings.size() &&
               std::isspace(static_cast<unsigned char>(v.code_strings[p])))
          ++p;
        if (p >= v.code_strings.size() || v.code_strings[p] != '"') continue;
        std::string name;
        for (std::size_t q = p + 1;
             q < v.code_strings.size() && v.code_strings[q] != '"'; ++q) {
          if (v.code_strings[q] == '\\') break;  // escapes: give up, skip
          name += v.code_strings[q];
        }
        const std::size_t dot1 = name.find('.');
        const std::string head = name.substr(0, dot1);
        bool known = kStatNamespaces.count(head) != 0;
        if (!known && dot1 != std::string::npos) {
          const std::string head2 =
              name.substr(0, name.find('.', dot1 + 1));
          known = kStatNamespaces.count(head2) != 0;
        }
        if (!known)
          add(rel, text, p, kStatName,
              "\"" + name + "\" via " + method + "()");
      }
    }
  }

  void check_crypto_include(const std::string& rel, const std::string& text,
                            const Views& v) {
    std::size_t pos = 0;
    const std::string& code = v.code_strings;
    while ((pos = code.find("#", pos)) != std::string::npos) {
      std::size_t p = pos + 1;
      while (p < code.size() &&
             std::isspace(static_cast<unsigned char>(code[p])) &&
             code[p] != '\n')
        ++p;
      if (code.compare(p, 7, "include") != 0) {
        ++pos;
        continue;
      }
      std::size_t end = code.find('\n', p);
      if (end == std::string::npos) end = code.size();
      const std::string target = code.substr(p + 7, end - p - 7);
      for (const char* banned :
           {"immintrin", "wmmintrin", "x86intrin", "emmintrin", "tmmintrin",
            "smmintrin", "nmmintrin", "arm_neon", "_ni.", "gf64_clmul"}) {
        if (target.find(banned) != std::string::npos) {
          add(rel, text, pos, kCryptoInclude, banned);
          break;
        }
      }
      pos = end;
    }
  }

  fs::path root_;
  std::set<std::string> allow_;
  std::vector<Finding> findings_;
  bool io_error_ = false;
};

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

int usage() {
  std::fprintf(
      stderr,
      "usage: secmem-lint [--root DIR] [--allowlist FILE] [path...]\n"
      "  Lints src/, tools/, bench/ under --root (default: cwd), or the\n"
      "  given files/directories. Paths outside the rule scopes lint\n"
      "  clean by construction.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path allowlist;
  std::vector<fs::path> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.emplace_back(arg);
    }
  }
  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::fprintf(stderr, "secmem-lint: bad --root: %s\n",
                 ec.message().c_str());
    return 2;
  }

  Linter linter(root);
  if (!allowlist.empty() && !linter.load_allowlist(allowlist)) {
    std::fprintf(stderr, "secmem-lint: cannot read allowlist %s\n",
                 allowlist.string().c_str());
    return 2;
  }

  if (paths.empty())
    for (const char* dir : {"src", "tools", "bench"})
      if (fs::is_directory(root / dir)) paths.emplace_back(root / dir);

  for (const fs::path& p : paths) {
    if (fs::is_directory(p)) {
      for (auto it = fs::recursive_directory_iterator(p);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path()))
          linter.lint_file(it->path());
      }
    } else if (fs::is_regular_file(p)) {
      linter.lint_file(p);
    } else {
      std::fprintf(stderr, "secmem-lint: no such path: %s\n",
                   p.string().c_str());
      return 2;
    }
  }
  return linter.report();
}
