// secmem-overhead — storage-overhead calculator for arbitrary
// configurations (the Figure 1 math, parameterized).
//
//   secmem-overhead --region-mb 2048 --sram-kb 8
//   secmem-overhead --region-mb 512 --delta-bits 9
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "counters/generic_delta.h"
#include "engine/layout.h"

namespace {

using namespace secmem;

struct Row {
  const char* name;
  unsigned blocks_per_line;
  double bits_per_block;
  bool separate_macs;
};

void print_row(const Row& row, std::uint64_t region_bytes,
               std::uint64_t sram_bytes) {
  LayoutParams params;
  params.data_bytes = region_bytes;
  params.blocks_per_counter_line = row.blocks_per_line;
  params.onchip_bytes = sram_bytes;
  params.separate_macs = row.separate_macs;
  params.counter_bits_per_block = row.bits_per_block;
  const SecureRegionLayout layout(params);
  std::printf("%-30s %9.2f%% %7.2f%% %7.2f%% %8.2f%% %7u %14.1f MB\n",
              row.name, layout.counter_overhead_pct(),
              layout.mac_overhead_pct(), layout.tree_overhead_pct(),
              layout.metadata_overhead_pct(),
              layout.tree().offchip_levels(),
              static_cast<double>(layout.total_bytes() - region_bytes) /
                  (1 << 20));
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t region_mb = 512;
  std::uint64_t sram_kb = 3;
  unsigned delta_bits = 7;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--region-mb") {
      region_mb = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--sram-kb") {
      sram_kb = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--delta-bits") {
      delta_bits = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--region-mb N] [--sram-kb N] "
                   "[--delta-bits 2..16]\n",
                   argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  if (delta_bits < 2 || delta_bits > 16) {
    std::fprintf(stderr, "--delta-bits must be in [2,16]\n");
    return 2;
  }

  const std::uint64_t region = region_mb << 20;
  const std::uint64_t sram = sram_kb << 10;
  const unsigned generic_group =
      GenericDeltaCounters::group_blocks_for(delta_bits);
  const double generic_bits = delta_bits + 56.0 / generic_group;

  std::printf(
      "storage overheads for a %lluMB protected region, %lluKB on-chip "
      "SRAM\n\n",
      static_cast<unsigned long long>(region_mb),
      static_cast<unsigned long long>(sram_kb));
  std::printf("%-30s %10s %8s %8s %9s %7s %17s\n", "configuration",
              "counters", "MACs", "tree", "total", "levels",
              "metadata bytes");

  const std::string generic_name =
      "delta-" + std::to_string(delta_bits) + "bit + MAC-in-ECC";
  const Row rows[] = {
      {"monolithic 56b + stored MAC", 8, 56.0, true},
      {"split counters + stored MAC", 64, 8.0, true},
      {"delta-7bit + stored MAC", 64, 7.875, true},
      {"delta-7bit + MAC-in-ECC", 64, 7.875, false},
      {generic_name.c_str(), generic_group, generic_bits, false},
  };
  for (const Row& row : rows) print_row(row, region, sram);

  std::printf(
      "\n(the x72 ECC DIMM's own 12.5%% exists in every configuration and "
      "is excluded.)\n");
  return 0;
}
