#include "func_model.h"

#include <algorithm>
#include <set>

namespace secmem_lint {

namespace {

const std::set<std::string_view> kControlKeywords = {
    "if", "for", "while", "switch", "catch", "return", "do", "else",
    "sizeof", "alignof", "decltype", "new", "delete", "throw", "case"};

const std::set<std::string_view> kDeclSpecifiers = {
    "static", "constexpr", "const", "mutable", "volatile", "inline",
    "thread_local", "register", "unsigned", "signed", "auto"};

bool is_ident(const Token& t) { return t.kind == Tok::kIdent; }

/// Skip a preprocessor directive starting at the '#' token: consume to
/// the end of the (possibly backslash-continued) line.
std::size_t skip_directive(const LexedFile& f, std::size_t i) {
  const auto& toks = f.tokens;
  std::uint32_t line = toks[i].line;
  ++i;
  while (i < toks.size()) {
    if (toks[i].line != line) {
      // Continued if the previous token was a backslash at line end.
      if (i > 0 && toks[i - 1].kind == Tok::kPunct &&
          toks[i - 1].text == "\\") {
        line = toks[i].line;
        continue;
      }
      break;
    }
    ++i;
  }
  return i;
}

}  // namespace

bool tok_is(const LexedFile& f, std::size_t i, std::string_view ident) {
  return i < f.tokens.size() && f.tokens[i].kind == Tok::kIdent &&
         f.tokens[i].text == ident;
}

bool punct_is(const LexedFile& f, std::size_t i, std::string_view p) {
  return i < f.tokens.size() && f.tokens[i].kind == Tok::kPunct &&
         f.tokens[i].text == p;
}

std::size_t match_close(const LexedFile& f, std::size_t open,
                        std::size_t end) {
  const std::string_view o = f.tokens[open].text;
  const std::string_view c = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t i = open; i < end && i < f.tokens.size(); ++i) {
    if (f.tokens[i].kind != Tok::kPunct) continue;
    if (f.tokens[i].text == o)
      ++depth;
    else if (f.tokens[i].text == c && --depth == 0)
      return i;
  }
  return end;
}

namespace {

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock, kOther } kind;
  std::string name;       // class / namespace name
  std::size_t func_index; // index into FileModel::funcs for kFunction
};

/// Analyze the statement-head token buffer that ended at a '{' and, if
/// it is a function definition, fill `out`. `buffer` holds token
/// indices. Returns true on match.
bool match_function(const LexedFile& f, const std::vector<std::size_t>& buf,
                    const std::string& enclosing_class, FuncInfo& out) {
  if (buf.empty()) return false;
  // Reject obvious non-functions early.
  const std::string_view head = f.tokens[buf[0]].text;
  if (head == "class" || head == "struct" || head == "union" ||
      head == "enum" || head == "namespace")
    return false;
  // Find the first top-level '(' — the parameter list. Track template
  // angle depth so `std::function<void(int)>` return types don't trip it.
  int angle = 0;
  std::size_t lparen_at = SIZE_MAX;  // position within buf
  for (std::size_t k = 0; k < buf.size(); ++k) {
    const Token& t = f.tokens[buf[k]];
    if (t.kind != Tok::kPunct) continue;
    if (t.text == "<" && k > 0 && is_ident(f.tokens[buf[k - 1]]))
      ++angle;
    else if (t.text == ">" && angle > 0)
      --angle;
    else if (t.text == ">>" && angle > 0)
      angle = std::max(0, angle - 2);
    else if (t.text == "(" && angle == 0) {
      lparen_at = k;
      break;
    }
  }
  if (lparen_at == SIZE_MAX || lparen_at == 0) return false;
  const std::size_t name_at = lparen_at - 1;
  const Token& name_tok = f.tokens[buf[name_at]];
  if (!is_ident(name_tok)) return false;
  if (kControlKeywords.count(name_tok.text)) return false;
  // A top-level `=` before the paren means a variable initializer.
  for (std::size_t k = 0; k < lparen_at; ++k)
    if (punct_is(f, buf[k], "=")) return false;

  out.name = std::string(name_tok.text);
  out.name_tok = buf[name_at];
  out.line = name_tok.line;

  // Qualified name `Class::name`? Walk back through `A::B::` pairs.
  std::string qual;
  std::size_t k = name_at;
  while (k >= 2 && punct_is(f, buf[k - 1], "::") &&
         is_ident(f.tokens[buf[k - 2]])) {
    qual = std::string(f.tokens[buf[k - 2]].text);
    k -= 2;
  }
  out.class_name = !qual.empty() ? qual : enclosing_class;

  // Destructor: `~Class(`; constructor: name == class.
  const bool is_dtor = name_at >= 1 && punct_is(f, buf[name_at - 1], "~");
  out.is_ctor_or_dtor = is_dtor || out.name == out.class_name;

  // Parameter list: tokens strictly between the '(' and its match.
  const std::size_t lparen_tok = buf[lparen_at];
  const std::size_t rparen_tok =
      match_close(f, lparen_tok, buf.back() + 1);
  {
    std::size_t i = lparen_tok + 1;
    while (i < rparen_tok) {
      // One parameter: scan to the next top-level comma.
      int depth = 0, ang = 0;
      std::size_t begin = i;
      while (i < rparen_tok) {
        const Token& t = f.tokens[i];
        if (t.kind == Tok::kPunct) {
          if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
          if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
          if (t.text == "<" && i > begin && is_ident(f.tokens[i - 1]))
            ++ang;
          if (t.text == ">" && ang > 0) --ang;
          if (t.text == ">>" && ang > 0) ang = std::max(0, ang - 2);
          if (t.text == "," && depth == 0 && ang == 0) break;
        }
        ++i;
      }
      if (i > begin) {
        Param p;
        // Drop a trailing `= default-arg` from consideration.
        std::size_t stop = i;
        for (std::size_t j = begin; j < i; ++j)
          if (punct_is(f, j, "=")) {
            stop = j;
            break;
          }
        // Name = last identifier, unless it directly follows `::` (then
        // the parameter is unnamed and that ident is part of the type).
        std::size_t last_ident = SIZE_MAX;
        for (std::size_t j = begin; j < stop; ++j)
          if (is_ident(f.tokens[j])) last_ident = j;
        if (last_ident != SIZE_MAX && last_ident > begin &&
            !punct_is(f, last_ident - 1, "::") &&
            !(last_ident == begin)) {
          p.name = std::string(f.tokens[last_ident].text);
        }
        for (std::size_t j = begin; j < stop; ++j) {
          if (j == last_ident && !p.name.empty()) continue;
          if (!p.type.empty()) p.type += ' ';
          p.type += std::string(f.tokens[j].text);
        }
        // Single-token "type-only" params (e.g. `int`) keep type there.
        if (p.type.empty() && !p.name.empty()) std::swap(p.type, p.name);
        out.params.push_back(std::move(p));
      }
      if (i < rparen_tok) ++i;  // skip ','
    }
  }

  // Signature qualifiers between ')' and '{': annotations we honor.
  for (std::size_t j = rparen_tok; j <= buf.back(); ++j) {
    if (tok_is(f, j, "SECMEM_NO_THREAD_SAFETY_ANALYSIS"))
      out.no_thread_safety = true;
    if (tok_is(f, j, "SECMEM_REQUIRES") ||
        tok_is(f, j, "SECMEM_REQUIRES_SHARED"))
      out.requires_lock = true;
  }
  return true;
}

/// Extract `Type member SECMEM_GUARDED_BY(mu)...;` from a class-scope
/// statement buffer.
void match_guarded(const LexedFile& f, const std::vector<std::size_t>& buf,
                   const std::string& class_name,
                   std::vector<GuardedMember>& out) {
  for (std::size_t k = 0; k < buf.size(); ++k) {
    if (!tok_is(f, buf[k], "SECMEM_GUARDED_BY") &&
        !tok_is(f, buf[k], "SECMEM_PT_GUARDED_BY"))
      continue;
    // Member name: nearest identifier before the macro.
    std::string member;
    for (std::size_t j = k; j-- > 0;) {
      if (is_ident(f.tokens[buf[j]])) {
        member = std::string(f.tokens[buf[j]].text);
        break;
      }
    }
    if (member.empty()) continue;
    // Mutex expression: tokens inside the macro's parens.
    std::string mutex;
    if (k + 1 < buf.size() && punct_is(f, buf[k + 1], "(")) {
      const std::size_t close = match_close(f, buf[k + 1], buf.back() + 1);
      for (std::size_t t = buf[k + 1] + 1; t < close; ++t) {
        mutex += std::string(f.tokens[t].text);
      }
    }
    const bool dup =
        std::any_of(out.begin(), out.end(), [&](const GuardedMember& g) {
          return g.class_name == class_name && g.member == member;
        });
    if (!dup)
      out.push_back(
          {class_name, member, mutex, f.tokens[buf[k]].line});
  }
}

/// Scan a function body for loop bodies and nested class definitions.
void scan_body(const LexedFile& f, std::size_t body_begin,
               std::size_t body_end, FileModel& model) {
  const auto& toks = f.tokens;
  for (std::size_t i = body_begin; i < body_end; ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    const std::string_view w = toks[i].text;
    if (w == "for" || w == "while") {
      // `for (...) { body }` / `while (...) { body }`
      std::size_t j = i + 1;
      if (j < body_end && punct_is(f, j, "(")) {
        j = match_close(f, j, body_end);
        ++j;
      }
      if (j < body_end && punct_is(f, j, "{")) {
        const std::size_t close = match_close(f, j, body_end);
        model.loop_bodies.push_back({j, close + 1});
      }
    } else if (w == "do") {
      if (i + 1 < body_end && punct_is(f, i + 1, "{")) {
        const std::size_t close = match_close(f, i + 1, body_end);
        model.loop_bodies.push_back({i + 1, close + 1});
      }
    } else if (w == "struct" || w == "class") {
      // `struct Name { ... };` nested in a function body.
      std::size_t j = i + 1;
      while (j < body_end && toks[j].kind == Tok::kIdent) ++j;
      if (j < body_end && punct_is(f, j, "{")) {
        const std::size_t close = match_close(f, j, body_end);
        model.local_class_bodies.push_back({j, close + 1});
        i = close;  // don't re-scan the class body for loops at this level
      }
    }
  }
}

}  // namespace

FileModel build_model(const LexedFile& f) {
  FileModel model;
  const auto& toks = f.tokens;
  std::vector<Scope> stack;
  std::vector<std::size_t> buf;  // statement-head tokens since boundary

  auto enclosing_class = [&]() -> std::string {
    for (std::size_t s = stack.size(); s-- > 0;)
      if (stack[s].kind == Scope::kClass) return stack[s].name;
    return "";
  };
  auto in_function = [&]() {
    return std::any_of(stack.begin(), stack.end(), [](const Scope& s) {
      return s.kind == Scope::kFunction;
    });
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::kPunct && t.text == "#") {
      i = skip_directive(f, i) - 1;
      continue;
    }
    if (in_function()) {
      // Inside a function body we only need to find the matching close;
      // sub-scope structure is extracted by scan_body afterwards.
      if (t.kind == Tok::kPunct && t.text == "{") {
        stack.push_back({Scope::kBlock, "", SIZE_MAX});
      } else if (t.kind == Tok::kPunct && t.text == "}") {
        const Scope done = stack.back();
        stack.pop_back();
        if (done.kind == Scope::kFunction) {
          FuncInfo& fn = model.funcs[done.func_index];
          fn.body_end = i + 1;
          scan_body(f, fn.body_begin, fn.body_end, model);
          buf.clear();
        }
      }
      continue;
    }
    if (t.kind == Tok::kPunct && t.text == "{") {
      // Initializer brace? (`= {...}`, `x{...}` member-init in a ctor
      // list, brace after `,`/`(`/`[`): consume without opening a scope.
      const bool after_eq = std::any_of(
          buf.begin(), buf.end(),
          [&](std::size_t b) { return punct_is(f, b, "="); });
      const bool prev_opens_init =
          i > 0 && toks[i - 1].kind == Tok::kPunct &&
          (toks[i - 1].text == "," || toks[i - 1].text == "(" ||
           toks[i - 1].text == "[");
      bool ctor_member_init = false;
      if (i > 0 && is_ident(toks[i - 1])) {
        // `: member{...}` inside a ctor init list — only when the buffer
        // has a top-level ':' following a ')' (the parameter list).
        for (std::size_t k = 1; k < buf.size(); ++k)
          if (punct_is(f, buf[k], ":") && punct_is(f, buf[k - 1], ")"))
            ctor_member_init = true;
        // Also `: member{...}` directly after the colon mid-list.
        if (!buf.empty() && punct_is(f, buf[buf.size() - 1] - 1, ","))
          ctor_member_init = ctor_member_init || after_eq;
      }
      if (after_eq || prev_opens_init || ctor_member_init) {
        const std::size_t close = match_close(f, i, toks.size());
        for (std::size_t k = i; k <= close && k < toks.size(); ++k)
          buf.push_back(k);
        i = close;
        continue;
      }
      // Classify the scope this brace opens.
      FuncInfo fn;
      std::string_view head = buf.empty() ? "" : toks[buf[0]].text;
      if (head == "template") {
        // Skip the template<...> prefix for classification purposes.
        std::size_t k = 1;
        int ang = 0;
        for (; k < buf.size(); ++k) {
          if (punct_is(f, buf[k], "<")) ++ang;
          if (punct_is(f, buf[k], ">") && --ang == 0) {
            ++k;
            break;
          }
        }
        std::vector<std::size_t> rest(buf.begin() + k, buf.end());
        buf = std::move(rest);
        head = buf.empty() ? "" : std::string_view(toks[buf[0]].text);
      }
      if (head == "namespace") {
        std::string name;
        for (std::size_t k = 1; k < buf.size(); ++k)
          if (is_ident(toks[buf[k]])) name = std::string(toks[buf[k]].text);
        stack.push_back({Scope::kNamespace, name, SIZE_MAX});
      } else if (head == "class" || head == "struct" || head == "union") {
        // Name: last identifier before a top-level ':' (base clause),
        // else the last identifier; `final` stripped.
        std::string name;
        for (std::size_t k = 1; k < buf.size(); ++k) {
          if (punct_is(f, buf[k], ":")) break;
          if (is_ident(toks[buf[k]]) && toks[buf[k]].text != "final" &&
              toks[buf[k]].text != "alignas")
            name = std::string(toks[buf[k]].text);
        }
        stack.push_back({Scope::kClass, name, SIZE_MAX});
      } else if (head == "enum") {
        stack.push_back({Scope::kOther, "", SIZE_MAX});
      } else if (match_function(f, buf, enclosing_class(), fn)) {
        fn.body_begin = i;
        model.funcs.push_back(std::move(fn));
        stack.push_back(
            {Scope::kFunction, "", model.funcs.size() - 1});
      } else {
        stack.push_back({Scope::kOther, "", SIZE_MAX});
      }
      buf.clear();
      continue;
    }
    if (t.kind == Tok::kPunct && t.text == "}") {
      if (!stack.empty()) stack.pop_back();
      buf.clear();
      continue;
    }
    if (t.kind == Tok::kPunct && t.text == ";") {
      // Class-scope member declaration: harvest GUARDED_BY annotations.
      if (!stack.empty() && stack.back().kind == Scope::kClass)
        match_guarded(f, buf, stack.back().name, model.guarded);
      buf.clear();
      continue;
    }
    // Access specifiers end a statement-head too.
    if (t.kind == Tok::kIdent &&
        (t.text == "public" || t.text == "private" ||
         t.text == "protected") &&
        punct_is(f, i + 1, ":")) {
      ++i;
      buf.clear();
      continue;
    }
    buf.push_back(i);
  }
  return model;
}

std::vector<CallSite> extract_calls(const LexedFile& f, std::size_t begin,
                                    std::size_t end) {
  std::vector<CallSite> calls;
  const auto& toks = f.tokens;
  end = std::min(end, toks.size());
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Tok::kIdent || i + 1 >= end ||
        !punct_is(f, i + 1, "("))
      continue;
    if (kControlKeywords.count(toks[i].text)) continue;
    CallSite c;
    c.callee_tok = i;
    c.callee_last = std::string(toks[i].text);
    // Walk back through `A::B::name`.
    std::string qual;
    std::size_t k = i;
    while (k >= 2 && punct_is(f, k - 1, "::") && is_ident(toks[k - 2])) {
      qual = std::string(toks[k - 2].text) + "::" + qual;
      k -= 2;
    }
    c.callee = qual + c.callee_last;
    // Receiver: ident before `.` / `->` preceding the (possibly
    // qualified) callee.
    if (k >= 2 &&
        (punct_is(f, k - 1, ".") || punct_is(f, k - 1, "->")) &&
        is_ident(toks[k - 2]))
      c.recv_tok = k - 2;
    c.lparen = i + 1;
    c.rparen = match_close(f, c.lparen, end);
    // Split args at top-level commas.
    int depth = 0, ang = 0;
    std::size_t arg_begin = c.lparen + 1;
    for (std::size_t j = c.lparen + 1; j < c.rparen; ++j) {
      const Token& t = toks[j];
      if (t.kind == Tok::kPunct) {
        if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
        if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
        if (t.text == "<" && j > arg_begin && is_ident(toks[j - 1])) ++ang;
        if (t.text == ">" && ang > 0) --ang;
        if (t.text == ">>" && ang > 0) ang = std::max(0, ang - 2);
        if (t.text == "," && depth == 0 && ang == 0) {
          if (j > arg_begin) c.args.push_back({arg_begin, j});
          arg_begin = j + 1;
        }
      }
    }
    if (c.rparen > arg_begin) c.args.push_back({arg_begin, c.rparen});
    calls.push_back(std::move(c));
  }
  return calls;
}

std::vector<AssignSite> extract_assigns(const LexedFile& f,
                                        std::size_t begin, std::size_t end) {
  std::vector<AssignSite> out;
  const auto& toks = f.tokens;
  end = std::min(end, toks.size());
  int depth = 0;
  std::size_t stmt_begin = begin;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kPunct) continue;
    if (t.text == "(" || t.text == "[") ++depth;
    if (t.text == ")" || t.text == "]") --depth;
    if (t.text == ";" || t.text == "{" || t.text == "}") {
      stmt_begin = i + 1;
      depth = 0;
      continue;
    }
    if (t.text != "=" || depth != 0) continue;
    // First identifier of the statement = the LHS base.
    std::size_t base = SIZE_MAX;
    for (std::size_t j = stmt_begin; j < i; ++j)
      if (is_ident(toks[j])) {
        base = j;
        break;
      }
    if (base == SIZE_MAX) continue;
    AssignSite a;
    a.lhs_base_tok = base;
    a.eq_tok = i;
    std::size_t j = i + 1;
    int d2 = 0;
    while (j < end) {
      const Token& u = toks[j];
      if (u.kind == Tok::kPunct) {
        if (u.text == "(" || u.text == "[" || u.text == "{") ++d2;
        if (u.text == ")" || u.text == "]" || u.text == "}") --d2;
        if ((u.text == ";" && d2 == 0) || d2 < 0) break;
      }
      ++j;
    }
    a.rhs = {i + 1, j};
    out.push_back(a);
  }
  return out;
}

std::vector<LocalDecl> extract_local_decls(const LexedFile& f,
                                           const FileModel& model,
                                           const FuncInfo& fn) {
  std::vector<LocalDecl> decls;
  const auto& toks = f.tokens;
  const std::size_t end = std::min(fn.body_end, toks.size());

  auto in_local_class = [&](std::size_t i) {
    return std::any_of(
        model.local_class_bodies.begin(), model.local_class_bodies.end(),
        [&](const TokenSpan& s) { return i > s.begin && i < s.end; });
  };

  // Statement-start declaration parse.
  auto try_decl = [&](std::size_t i, std::size_t stop) -> std::size_t {
    // Returns one past the declaration, or `i` when not a declaration.
    std::size_t j = i;
    std::string type;
    // specifiers
    while (j < stop && toks[j].kind == Tok::kIdent &&
           kDeclSpecifiers.count(toks[j].text)) {
      type += std::string(toks[j].text) + ' ';
      ++j;
    }
    // type: ident (:: ident)* <...>? then any of & && *
    if (j >= stop || toks[j].kind != Tok::kIdent ||
        kControlKeywords.count(toks[j].text))
      return i;
    type += std::string(toks[j].text);
    ++j;
    while (j + 1 < stop && punct_is(f, j, "::") &&
           toks[j + 1].kind == Tok::kIdent) {
      type += "::" + std::string(toks[j + 1].text);
      j += 2;
    }
    if (j < stop && punct_is(f, j, "<")) {
      int ang = 1;
      type += '<';
      ++j;
      while (j < stop && ang > 0) {
        if (punct_is(f, j, "<")) ++ang;
        if (punct_is(f, j, ">")) --ang;
        if (punct_is(f, j, ">>")) ang -= 2;
        type += std::string(toks[j].text);
        ++j;
      }
      if (ang < 0) return i;  // `a < b >> 2` style arithmetic, not a type
    }
    while (j < stop && toks[j].kind == Tok::kPunct &&
           (toks[j].text == "&" || toks[j].text == "&&" ||
            toks[j].text == "*")) {
      type += std::string(toks[j].text);
      ++j;
    }
    if (j >= stop || toks[j].kind != Tok::kIdent ||
        kDeclSpecifiers.count(toks[j].text) ||
        kControlKeywords.count(toks[j].text))
      return i;
    const std::size_t name_at = j;
    ++j;
    if (j >= stop) return i;
    // Array declarator `name[N]`.
    while (j < stop && punct_is(f, j, "["))
      j = match_close(f, j, stop) + 1;
    if (j >= stop) return i;
    const std::string_view nxt = toks[j].text;
    if (toks[j].kind != Tok::kPunct ||
        (nxt != "=" && nxt != "{" && nxt != "(" && nxt != ";" &&
         nxt != ":" && nxt != ","))
      return i;
    LocalDecl d;
    d.type = type;
    d.name = std::string(toks[name_at].text);
    d.name_tok = name_at;
    if (nxt == "=" || nxt == "{" || nxt == "(" || nxt == ":") {
      d.has_init = true;
      std::size_t k = nxt == "=" || nxt == ":" ? j + 1 : j;
      std::size_t init_end = k;
      int depth = 0;
      while (init_end < stop) {
        const Token& u = toks[init_end];
        if (u.kind == Tok::kPunct) {
          if (u.text == "(" || u.text == "[" || u.text == "{") ++depth;
          if (u.text == ")" || u.text == "]" || u.text == "}") --depth;
          if (depth < 0) break;
          if ((u.text == ";" || u.text == ",") && depth == 0) break;
        }
        ++init_end;
      }
      d.init = {k, init_end};
    }
    decls.push_back(std::move(d));
    return j;
  };

  // Walk statements: a statement starts after ; { } and inside
  // `for (decl : range)` / `if (decl)` heads.
  bool at_stmt_start = true;
  for (std::size_t i = fn.body_begin + 1; i < end; ++i) {
    if (in_local_class(i)) {
      at_stmt_start = false;
      continue;
    }
    const Token& t = toks[i];
    if (t.kind == Tok::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      at_stmt_start = true;
      continue;
    }
    if (t.kind == Tok::kIdent && (t.text == "for")) {
      // Range-for: `for ( decl : range )`
      if (i + 1 < end && punct_is(f, i + 1, "(")) {
        const std::size_t close = match_close(f, i + 1, end);
        // Top-level ':' inside the parens?
        int depth = 0;
        std::size_t colon = SIZE_MAX;
        for (std::size_t j = i + 2; j < close; ++j) {
          if (toks[j].kind != Tok::kPunct) continue;
          if (toks[j].text == "(" || toks[j].text == "[" ||
              toks[j].text == "{")
            ++depth;
          if (toks[j].text == ")" || toks[j].text == "]" ||
              toks[j].text == "}")
            --depth;
          if (toks[j].text == ":" && depth == 0) {
            colon = j;
            break;
          }
        }
        if (colon != SIZE_MAX) {
          // Parse the binding before ':' — name is the last identifier.
          std::size_t name_at = SIZE_MAX;
          std::string type;
          for (std::size_t j = i + 2; j < colon; ++j) {
            if (is_ident(toks[j])) name_at = j;
          }
          if (name_at != SIZE_MAX) {
            for (std::size_t j = i + 2; j < colon; ++j) {
              if (j == name_at) continue;
              if (!type.empty()) type += ' ';
              type += std::string(toks[j].text);
            }
            LocalDecl d;
            d.type = type;
            d.name = std::string(toks[name_at].text);
            d.name_tok = name_at;
            d.has_init = true;
            d.init = {colon + 1, close};
            decls.push_back(std::move(d));
          }
          i = close;
          at_stmt_start = true;
          continue;
        }
        // Classic for: the init clause is a statement of its own.
        at_stmt_start = true;
        continue;
      }
    }
    if (at_stmt_start) {
      const std::size_t adv = try_decl(i, end);
      if (adv != i) {
        i = adv - 1;
        at_stmt_start = false;
        continue;
      }
    }
    at_stmt_start = false;
  }
  return decls;
}

}  // namespace secmem_lint
