// secmem-lint lexer — turns a C++ source file into (a) the two blanked
// views the original token-scanning rules were built on and (b) a real
// token stream (identifiers, numbers, literals, multi-char punctuators)
// with byte offsets and line numbers, which the flow-aware rules and the
// function model consume.
//
// The lexer is deliberately approximate where full C++ lexing would need
// a preprocessor (it sees both arms of an #if, and keeps tokens from
// every configuration) — the rules built on top are repository invariant
// checks, not a compiler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace secmem_lint {

/// The two derived views of a source file, same length / line structure
/// as the original: `code` has comments and string/char literals blanked
/// (token rules), `code_strings` has only comments blanked (rules that
/// need literal contents or #include targets).
struct Views {
  std::string code;
  std::string code_strings;
};

/// One pass over the text, preserving newlines so offsets map to lines.
Views strip(const std::string& text);

enum class Tok : std::uint8_t {
  kIdent,   // identifiers and keywords (no keyword table — rules decide)
  kNumber,  // integer / float literals, including suffixes
  kString,  // "..." and R"d(...)d" — text includes the quotes
  kChar,    // '...'
  kPunct,   // operators and punctuation, greedily matched ("::", "->"...)
};

struct Token {
  Tok kind;
  std::string_view text;  // view into LexedFile::text
  std::size_t pos;        // byte offset of the first character
  std::uint32_t line;     // 1-based
};

struct LexedFile {
  std::string text;
  Views views;
  std::vector<Token> tokens;
};

/// Lex a whole file. Comments disappear; everything else becomes a token.
LexedFile lex(std::string text);

bool ident_char(char c);
std::size_t line_of(const std::string& text, std::size_t pos);

}  // namespace secmem_lint
