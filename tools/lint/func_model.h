// secmem-lint function model — a brace/statement-level view of one
// source file built from the token stream: function definitions with
// their enclosing class, parameters and body spans; SECMEM_GUARDED_BY
// member annotations; and per-function fact extractors (calls with
// argument spans, local declarations including range-for bindings,
// assignments) the dataflow rules are written against.
//
// Approximations, by design (this is a linter, not a front end):
//  - both arms of an #if are modeled; preprocessor directives themselves
//    are skipped line-wise,
//  - template angle brackets are tracked heuristically,
//  - lambdas are part of their enclosing function's body (their
//    statements show up as the enclosing function's facts),
//  - a local whose declaration we cannot parse simply produces no facts.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "lexer.h"

namespace secmem_lint {

struct Param {
  std::string type;  // joined type tokens, e.g. "std::istream &"
  std::string name;  // "" when unnamed / unparsable
};

struct FuncInfo {
  std::string class_name;  // enclosing class or "Qual::" scope, "" = free
  std::string name;        // unqualified
  std::vector<Param> params;
  std::size_t name_tok = 0;   // token index of the name
  std::size_t body_begin = 0; // token index of the opening '{'
  std::size_t body_end = 0;   // one past the matching '}'
  std::size_t line = 0;       // line of the name token
  bool is_ctor_or_dtor = false;
  bool no_thread_safety = false;  // SECMEM_NO_THREAD_SAFETY_ANALYSIS
  bool requires_lock = false;     // SECMEM_REQUIRES(...) on the signature
};

struct GuardedMember {
  std::string class_name;
  std::string member;
  std::string mutex;  // joined tokens of the capability expression
  std::size_t line = 0;
};

struct TokenSpan {
  std::size_t begin = 0;  // token index, inclusive
  std::size_t end = 0;    // token index, exclusive
};

struct FileModel {
  std::vector<FuncInfo> funcs;
  std::vector<GuardedMember> guarded;
  /// Bodies of for/while/do statements inside functions ('{' spans).
  std::vector<TokenSpan> loop_bodies;
  /// Bodies of struct/class definitions nested inside function bodies —
  /// their "statements" are member declarations, not executable code.
  std::vector<TokenSpan> local_class_bodies;
};

FileModel build_model(const LexedFile& f);

/// A call site: `callee(args...)`, with the receiver when the callee is
/// reached through `recv.callee(...)` or `recv->callee(...)`.
struct CallSite {
  std::string callee;          // qualified, e.g. "std::memcpy", "delta::apply"
  std::string callee_last;     // last component, e.g. "memcpy"
  std::size_t callee_tok = 0;  // token index of the last name component
  std::size_t lparen = 0;      // token index of '('
  std::size_t rparen = 0;      // token index of the matching ')'
  std::size_t recv_tok = SIZE_MAX;  // ident before '.'/'->', or SIZE_MAX
  std::vector<TokenSpan> args;      // top-level comma-separated spans
};

/// All call sites in [begin, end). Constructor-style declarations
/// (`Foo bar(args)`) surface as calls named `bar` — callers filter by
/// callee name, so this is harmless in practice.
std::vector<CallSite> extract_calls(const LexedFile& f, std::size_t begin,
                                    std::size_t end);

struct LocalDecl {
  std::string type;  // joined declaration-specifier tokens
  std::string name;
  std::size_t name_tok = 0;
  bool has_init = false;
  TokenSpan init;  // tokens of the initializer (empty when !has_init)
};

/// Local declarations in a function body, range-for bindings included,
/// declarations inside nested struct/class definitions excluded.
std::vector<LocalDecl> extract_local_decls(const LexedFile& f,
                                           const FileModel& model,
                                           const FuncInfo& fn);

/// Simple assignments `lhs... = rhs...;` (excluding ==, <=, etc. and
/// compound operators). `lhs_base_tok` is the first identifier of the
/// left-hand side; `rhs` runs to the statement end.
struct AssignSite {
  std::size_t lhs_base_tok = 0;
  std::size_t eq_tok = 0;
  TokenSpan rhs;
};
std::vector<AssignSite> extract_assigns(const LexedFile& f, std::size_t begin,
                                        std::size_t end);

/// Token index of the matching ')' / '}' / ']' for the opener at `open`,
/// or `end` if unbalanced.
std::size_t match_close(const LexedFile& f, std::size_t open,
                        std::size_t end);

/// True if tokens[i] is an identifier with the given text.
bool tok_is(const LexedFile& f, std::size_t i, std::string_view ident);
/// True if tokens[i] is a punctuator with the given text.
bool punct_is(const LexedFile& f, std::size_t i, std::string_view p);

}  // namespace secmem_lint
