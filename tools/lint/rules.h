// secmem-lint rule interface — each rule is a free function over one
// SourceFile (lexed text + function model) plus the cross-file context
// (guarded-member table, env-knob registry text), emitting findings
// through a callback. The driver owns scoping (which rules see which
// paths), suppression (inline allows + the checked-in allowlist), and
// output; rules just report byte positions.
//
// Rule catalog (see ARCHITECTURE.md "Static analysis & enforced
// invariants" for the full table):
//
//   token-level:  ct-compare, raw-mutex, sim-rand, stat-name,
//                 crypto-include, no-throw-engine
//   flow-aware:   verify-before-apply, status-discard, lock-discipline,
//                 secret-branch, knob-registry
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "func_model.h"
#include "lexer.h"

namespace secmem_lint {

struct SourceFile {
  std::string rel;  // forward-slash path relative to --root
  LexedFile lexed;
  FileModel model;
};

/// Cross-file facts gathered before any rule runs.
struct RepoContext {
  /// Guarded members keyed by file-pair stem ("src/engine/sharded_memory"
  /// for both the .h and the .cc) — lock-discipline checks a guarded
  /// member only in its declaring header and that header's paired source
  /// file, which is where every access in this codebase lives.
  std::map<std::string, std::vector<GuardedMember>> guarded_by_stem;
  /// Knob registry sources (empty when the file does not exist).
  std::string ci_text;      // scripts/ci.sh
  std::string readme_text;  // README.md
  std::string arch_text;    // ARCHITECTURE.md
};

/// Emit a finding: byte position within the file, rule id, message.
using Emit =
    std::function<void(std::size_t pos, const char* rule, std::string msg)>;

/// File-pair stem for lock-discipline scoping: path minus extension.
std::string file_stem(const std::string& rel);

// --- token-level rules (ported from the original scanner) -------------
void check_ct_compare(const SourceFile& sf, Emit emit);
void check_raw_mutex(const SourceFile& sf, Emit emit);
void check_sim_rand(const SourceFile& sf, Emit emit);
void check_stat_name(const SourceFile& sf, Emit emit);
void check_crypto_include(const SourceFile& sf, Emit emit);
void check_no_throw_engine(const SourceFile& sf, Emit emit);

// --- flow-aware rules --------------------------------------------------
void check_verify_before_apply(const SourceFile& sf, Emit emit);
void check_status_discard(const SourceFile& sf, Emit emit);
void check_lock_discipline(const SourceFile& sf, const RepoContext& ctx,
                           Emit emit);
void check_secret_branch(const SourceFile& sf, Emit emit);
void check_knob_registry(const SourceFile& sf, const RepoContext& ctx,
                         Emit emit);

/// Every known rule id, for allowlist validation.
const std::set<std::string>& all_rule_ids();

}  // namespace secmem_lint
