// secmem-lint driver — loads files, builds the per-file model and the
// cross-file RepoContext, dispatches rules by path scope, and owns
// suppression (inline allow comments and the checked-in allowlist),
// stale-suppression detection, and output.
//
//   secmem-lint [--root DIR] [--allowlist FILE] [--json]
//               [--check-allowlist] [path...]
//
// Exit codes: 0 clean, 1 findings (stale suppressions count under
// --check-allowlist), 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "rules.h"

namespace fs = std::filesystem;

namespace secmem_lint {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

struct Finding {
  std::string path;
  std::size_t line;
  std::string rule;
  std::string message;
  bool operator<(const Finding& o) const {
    if (path != o.path) return path < o.path;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
};

struct InlineAllow {
  std::string path;
  std::size_t line;
  std::string rule;
  bool operator<(const InlineAllow& o) const {
    if (path != o.path) return path < o.path;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class Driver {
 public:
  explicit Driver(fs::path root) : root_(std::move(root)) {}

  bool load_allowlist(const fs::path& file) {
    std::ifstream in(file);
    if (!in) return false;
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      const std::size_t colon = line.rfind(':');
      if (colon == std::string::npos) continue;  // blank / comment
      auto trim = [](std::string s) {
        const auto b = s.find_first_not_of(" \t");
        const auto e = s.find_last_not_of(" \t");
        return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
      };
      const std::string path = trim(line.substr(0, colon));
      const std::string rule = trim(line.substr(colon + 1));
      if (!path.empty() && !rule.empty()) allow_[path + ":" + rule] = false;
    }
    return true;
  }

  void load_file(const fs::path& abs) {
    std::ifstream in(abs, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "secmem-lint: cannot read %s\n",
                   abs.string().c_str());
      io_error_ = true;
      return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    SourceFile sf;
    sf.rel = fs::relative(abs, root_).generic_string();
    sf.lexed = lex(buf.str());
    sf.model = build_model(sf.lexed);
    scan_inline_allows(sf);
    files_.push_back(std::move(sf));
  }

  int run(bool check_allowlist, bool json) {
    RepoContext ctx;
    for (const SourceFile& sf : files_) {
      if (sf.model.guarded.empty()) continue;
      auto& dst = ctx.guarded_by_stem[file_stem(sf.rel)];
      dst.insert(dst.end(), sf.model.guarded.begin(), sf.model.guarded.end());
    }
    ctx.ci_text = slurp(root_ / "scripts" / "ci.sh");
    ctx.readme_text = slurp(root_ / "README.md");
    ctx.arch_text = slurp(root_ / "ARCHITECTURE.md");

    for (const SourceFile& sf : files_) lint(sf, ctx);

    if (check_allowlist) {
      for (const auto& [entry, used] : allow_) {
        if (used) continue;
        const std::size_t colon = entry.rfind(':');
        findings_.push_back({entry.substr(0, colon), 0, "stale-allow",
                             "allowlist entry '" + entry.substr(0, colon) +
                                 ": " + entry.substr(colon + 1) +
                                 "' matched no finding; remove it"});
      }
      for (const auto& [ia, used] : inline_allows_) {
        if (used) continue;
        const bool known = all_rule_ids().count(ia.rule) != 0;
        findings_.push_back(
            {ia.path, ia.line, "stale-allow",
             known ? "inline allow(" + ia.rule +
                         ") suppressed no finding; remove it"
                   : "inline allow(" + ia.rule + ") names an unknown rule"});
      }
    }

    std::sort(findings_.begin(), findings_.end());
    findings_.erase(std::unique(findings_.begin(), findings_.end(),
                                [](const Finding& a, const Finding& b) {
                                  return !(a < b) && !(b < a);
                                }),
                    findings_.end());
    if (json) {
      std::printf("[");
      for (std::size_t i = 0; i < findings_.size(); ++i) {
        const Finding& f = findings_[i];
        std::printf(
            "%s\n  {\"file\": \"%s\", \"line\": %zu, \"rule\": \"%s\", "
            "\"message\": \"%s\"}",
            i ? "," : "", json_escape(f.path).c_str(), f.line,
            json_escape(f.rule).c_str(), json_escape(f.message).c_str());
      }
      std::printf("%s]\n", findings_.empty() ? "" : "\n");
    } else {
      for (const Finding& f : findings_)
        std::printf("%s:%zu: %s: %s\n", f.path.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
    }
    if (io_error_) return 2;
    return findings_.empty() ? 0 : 1;
  }

 private:
  static std::string slurp(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return "";
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  /// Record every inline allow comment (the `secmem-lint:` tag followed
  /// by one or more parenthesized rule ids on the same line) for stale
  /// detection; the lexer blanks comments, so scan the raw text.
  void scan_inline_allows(const SourceFile& sf) {
    const std::string& text = sf.lexed.text;
    std::size_t start = 0, line = 1;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      const std::string_view l(text.data() + start, end - start);
      std::size_t tag = l.find("secmem-lint:");
      if (tag != std::string_view::npos) {
        std::size_t p = tag;
        while ((p = l.find("allow(", p)) != std::string_view::npos) {
          p += 6;
          const std::size_t close = l.find(')', p);
          if (close == std::string_view::npos) break;
          inline_allows_[{sf.rel, line,
                          std::string(l.substr(p, close - p))}] |= false;
          p = close;
        }
      }
      start = end + 1;
      ++line;
    }
  }

  void lint(const SourceFile& sf, const RepoContext& ctx) {
    const std::string& rel = sf.rel;
    auto emit = [&](std::size_t pos, const char* rule, std::string msg) {
      const std::size_t line = line_of(sf.lexed.text, pos);
      const auto allow_it = allow_.find(rel + ":" + rule);
      if (allow_it != allow_.end()) {
        allow_it->second = true;
        return;
      }
      const auto inline_it = inline_allows_.find({rel, line, rule});
      if (inline_it != inline_allows_.end()) {
        inline_it->second = true;
        return;
      }
      findings_.push_back({rel, line, rule, std::move(msg)});
    };

    const bool in_src = starts_with(rel, "src/");
    const bool in_engine = starts_with(rel, "src/engine/");
    const bool in_crypto = starts_with(rel, "src/crypto/");

    if ((in_engine || starts_with(rel, "src/tree/") || in_crypto ||
         starts_with(rel, "src/ecc/")) &&
        rel != "src/common/ct.h")
      check_ct_compare(sf, emit);
    if (in_src && rel != "src/common/thread_annotations.h")
      check_raw_mutex(sf, emit);
    if (starts_with(rel, "src/sim/")) check_sim_rand(sf, emit);
    if (in_engine || starts_with(rel, "src/counters/"))
      check_no_throw_engine(sf, emit);
    if (in_src || starts_with(rel, "tools/") || starts_with(rel, "bench/") ||
        starts_with(rel, "examples/") || starts_with(rel, "tests/"))
      check_stat_name(sf, emit);
    if (!in_crypto) check_crypto_include(sf, emit);

    if (in_engine) check_verify_before_apply(sf, emit);
    if (in_src) check_status_discard(sf, emit);
    if (in_src) check_lock_discipline(sf, ctx, emit);
    if (in_crypto) check_secret_branch(sf, emit);
    if (in_src) check_knob_registry(sf, ctx, emit);
  }

  fs::path root_;
  std::map<std::string, bool> allow_;  // "path:rule" -> used
  std::map<InlineAllow, bool> inline_allows_;
  std::vector<SourceFile> files_;
  std::vector<Finding> findings_;
  bool io_error_ = false;
};

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

int usage() {
  std::fprintf(
      stderr,
      "usage: secmem-lint [--root DIR] [--allowlist FILE] [--json]\n"
      "                   [--check-allowlist] [path...]\n"
      "  Lints src/, tools/, bench/, examples/, tests/ under --root\n"
      "  (default: cwd), or the given files/directories. Paths outside\n"
      "  the rule scopes lint clean by construction.\n"
      "  --json             machine-readable findings\n"
      "  --check-allowlist  fail on allowlist entries or inline allow()\n"
      "                     comments that no longer suppress anything\n");
  return 2;
}

int run_main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path allowlist;
  std::vector<fs::path> paths;
  bool json = false, check_allowlist = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--check-allowlist") {
      check_allowlist = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.emplace_back(arg);
    }
  }
  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::fprintf(stderr, "secmem-lint: bad --root: %s\n",
                 ec.message().c_str());
    return 2;
  }

  Driver driver(root);
  if (!allowlist.empty() && !driver.load_allowlist(allowlist)) {
    std::fprintf(stderr, "secmem-lint: cannot read allowlist %s\n",
                 allowlist.string().c_str());
    return 2;
  }

  if (paths.empty())
    for (const char* dir : {"src", "tools", "bench", "examples", "tests"})
      if (fs::is_directory(root / dir)) paths.emplace_back(root / dir);

  for (const fs::path& p : paths) {
    if (fs::is_directory(p)) {
      for (auto it = fs::recursive_directory_iterator(p);
           it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file() || !lintable(it->path())) continue;
        // The deliberate-violation fixture trees lint via explicit
        // paths from tests/test_lint.cc, never via the default walk.
        const std::string rel =
            fs::relative(it->path(), root).generic_string();
        if (starts_with(rel, "tests/lint_fixtures/")) continue;
        driver.load_file(it->path());
      }
    } else if (fs::is_regular_file(p)) {
      driver.load_file(p);
    } else {
      std::fprintf(stderr, "secmem-lint: no such path: %s\n",
                   p.string().c_str());
      return 2;
    }
  }
  return driver.run(check_allowlist, json);
}

}  // namespace
}  // namespace secmem_lint

int main(int argc, char** argv) { return secmem_lint::run_main(argc, argv); }
