// secret-branch: src/crypto code must be branch-free on secret-derived
// values. Any if/while/switch condition, ternary, or short-circuit
// expression that mentions an identifier with a secret-ish name (key,
// tag, pad, secret, nonce-pad...) is a finding — data-dependent control
// flow is a timing side channel even when each arm "does the same work".
//
// Exemptions, because sizes and shapes are public:
//   secret.size()/.empty()/.capacity()/.length()/.data()
//   assert(...) argument spans (argument-contract checks, compiled out)
//   range-for over a secret container (iteration count is its public
//   size)
//
// Known limitation (documented in ARCHITECTURE.md): the heuristic is
// name-based, so a secret that flows into a blandly named local (e.g.
// gf64_mul's operand `b`) escapes it. The rule is a tripwire for the
// common shapes, not an information-flow proof — dudect-style checks in
// tests/test_ct.cc cover the remainder dynamically.
#include <cctype>
#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "../rules.h"

namespace secmem_lint {

namespace {

bool secret_name(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text)
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  for (const char* needle : {"key", "tag", "pad", "secret"})
    if (lower.find(needle) != std::string::npos) return true;
  return false;
}

bool accessor_follow(const LexedFile& f, std::size_t i, std::size_t end) {
  // secret.size() and friends — the value stays secret, the shape is
  // public.
  if (i + 2 >= end) return false;
  const Token& dot = f.tokens[i + 1];
  if (dot.kind != Tok::kPunct || (dot.text != "." && dot.text != "->"))
    return false;
  const Token& m = f.tokens[i + 2];
  return m.kind == Tok::kIdent &&
         (m.text == "size" || m.text == "empty" || m.text == "capacity" ||
          m.text == "length" || m.text == "data");
}

struct Span {
  std::size_t begin, end;  // token indices
};

}  // namespace

void check_secret_branch(const SourceFile& sf, Emit emit) {
  const LexedFile& f = sf.lexed;
  for (const FuncInfo& fn : sf.model.funcs) {
    // assert(...) spans are exempt everywhere inside them.
    std::vector<Span> asserts;
    for (const CallSite& c :
         extract_calls(f, fn.body_begin, fn.body_end))
      if (c.callee_last == "assert" || c.callee_last == "static_assert")
        asserts.push_back({c.lparen, c.rparen + 1});
    auto in_assert = [&](std::size_t i) {
      for (const Span& a : asserts)
        if (i >= a.begin && i < a.end) return true;
      return false;
    };

    // Condition spans to scan.
    std::vector<std::pair<Span, const char*>> conds;
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      const Token& t = f.tokens[i];
      if (t.kind == Tok::kIdent &&
          (t.text == "if" || t.text == "while" || t.text == "switch" ||
           t.text == "for")) {
        if (i + 1 >= fn.body_end || !punct_is(f, i + 1, "(")) continue;
        std::size_t close = match_close(f, i + 1, fn.body_end);
        Span s{i + 2, close};
        if (t.text == "for") {
          // Range-for: the range is exempt (public size). Classic for:
          // only the condition clause (between the two ';') branches.
          std::size_t semi1 = 0, semi2 = 0, depth = 0;
          bool range = true;
          for (std::size_t j = s.begin; j < s.end; ++j) {
            if (punct_is(f, j, "(") || punct_is(f, j, "[")) ++depth;
            if (punct_is(f, j, ")") || punct_is(f, j, "]")) --depth;
            if (depth == 0 && punct_is(f, j, ";")) {
              range = false;
              if (!semi1)
                semi1 = j;
              else if (!semi2)
                semi2 = j;
            }
          }
          if (range || !semi1) continue;
          s = {semi1 + 1, semi2 ? semi2 : s.end};
        }
        conds.push_back({s, t.text == "switch" ? "switch" : "condition"});
      } else if (t.kind == Tok::kPunct &&
                 (t.text == "?" || t.text == "&&" || t.text == "||")) {
        // Short-circuit / ternary: scan the containing statement.
        std::size_t b = i;
        while (b > fn.body_begin && !punct_is(f, b - 1, ";") &&
               !punct_is(f, b - 1, "{") && !punct_is(f, b - 1, "}"))
          --b;
        std::size_t e = i;
        while (e < fn.body_end && !punct_is(f, e, ";") &&
               !punct_is(f, e, "{"))
          ++e;
        conds.push_back({{b, e}, t.text == "?" ? "ternary" : "short-circuit"});
      }
    }

    std::set<std::size_t> reported;
    for (const auto& [span, what] : conds) {
      for (std::size_t i = span.begin; i < span.end; ++i) {
        const Token& t = f.tokens[i];
        if (t.kind != Tok::kIdent || !secret_name(t.text)) continue;
        if (accessor_follow(f, i, span.end) || in_assert(i)) continue;
        if (!reported.insert(i).second) continue;
        emit(t.pos, "secret-branch",
             std::string("crypto ") + what + " depends on secret-named '" +
                 std::string(t.text) +
                 "'; make it branch-free (masking/ct_select) or rename if "
                 "the value is genuinely public");
      }
    }
  }
}

}  // namespace secmem_lint
