// lock-discipline: a gcc-friendly subset of clang's thread-safety
// analysis. A member annotated SECMEM_GUARDED_BY may only be touched in
// member functions that construct some guard (MutexLock,
// Reader/WriterMutexLock, SeqReadLock/SeqWriteLock, lock_in_order), are
// annotated SECMEM_REQUIRES(...) — the caller holds it — or opt out with
// SECMEM_NO_THREAD_SAFETY_ANALYSIS. Constructors and destructors are
// exempt (exclusive access by construction).
//
// Deliberately coarse: we check "some guard in this function", not which
// mutex it covers — cross-mutex mixups are the clang TSA CI leg's job
// when a clang toolchain is available; this rule keeps the invariant
// enforced under the gcc-only container.
//
// Scoping: a guarded member is checked only in its declaring file pair
// (the header that declares it and the same-stem .cc), which is where
// every access in this codebase lives; checking by bare member name
// repo-wide would trip on unrelated classes reusing common field names.
#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "../rules.h"

namespace secmem_lint {

namespace {

const std::set<std::string, std::less<>> kGuardIdents = {
    "MutexLock",   "ReaderMutexLock", "WriterMutexLock", "SeqLock",
    "SeqReadLock", "SeqWriteLock",    "lock_in_order",   "lock_guard",
    "unique_lock", "scoped_lock"};

std::string last_component(const std::string& qualified) {
  const std::size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

}  // namespace

void check_lock_discipline(const SourceFile& sf, const RepoContext& ctx,
                           Emit emit) {
  const auto it = ctx.guarded_by_stem.find(file_stem(sf.rel));
  if (it == ctx.guarded_by_stem.end()) return;
  const std::vector<GuardedMember>& guarded = it->second;

  const LexedFile& f = sf.lexed;
  for (const FuncInfo& fn : sf.model.funcs) {
    if (fn.class_name.empty() || fn.is_ctor_or_dtor || fn.no_thread_safety ||
        fn.requires_lock)
      continue;
    const std::string cls = last_component(fn.class_name);

    std::vector<const GuardedMember*> mine;
    for (const GuardedMember& g : guarded)
      if (last_component(g.class_name) == cls) mine.push_back(&g);
    if (mine.empty()) continue;

    bool has_guard = false;
    for (std::size_t i = fn.body_begin; i < fn.body_end && !has_guard; ++i)
      if (f.tokens[i].kind == Tok::kIdent && kGuardIdents.count(f.tokens[i].text))
        has_guard = true;
    if (has_guard) continue;

    // Names shadowed by a parameter or local are not the member.
    std::set<std::string, std::less<>> shadowed;
    for (const Param& p : fn.params) shadowed.insert(p.name);
    for (const LocalDecl& d : extract_local_decls(f, sf.model, fn))
      shadowed.insert(d.name);

    for (const GuardedMember* g : mine) {
      if (shadowed.count(g->member)) continue;
      for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
        const Token& t = f.tokens[i];
        if (t.kind != Tok::kIdent || t.text != g->member) continue;
        emit(t.pos, "lock-discipline",
             "member '" + g->member + "' (SECMEM_GUARDED_BY(" + g->mutex +
                 ")) touched in " + cls + "::" + fn.name +
                 "() which constructs no lock guard; take the guard, "
                 "annotate SECMEM_REQUIRES, or opt out with "
                 "SECMEM_NO_THREAD_SAFETY_ANALYSIS");
        break;  // one finding per member per function
      }
    }
  }
}

}  // namespace secmem_lint
