// verify-before-apply: on src/engine staging paths (stage_*, restore*,
// *_delta), bytes that arrived from a stream or snapshot image must not
// reach member state until a constant-time verification (ct_equal /
// ct_equal_u64 / verify*) has run in the same function.
//
// Taint sources: istream parameters, Staged-typed parameters, span
// parameters whose name mentions "image". Taint propagates forward by
// name: a local whose initializer, assignment RHS, or sibling argument
// position mentions a tainted name becomes tainted. Member state is any
// trailing-underscore identifier plus "member-alias" locals — locals
// whose initializer captures a member by reference/aggregate (a bare
// `foo_` in the initializer, not moved from).
//
// Sinks (a finding when no verification call dominates them):
//   member_ = <tainted...>;          assignment into member state
//   memcpy/copy(member-ish, tainted) copy-family call mixing both
//   f(alias, tainted...)             mutating call through a member alias
//   return tainted; / return std::move(tainted);
//
// The return form is what keeps stage_*_tail honest: deleting or
// reordering the ct_equal there makes `return staged;` fire.
#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "../rules.h"

namespace secmem_lint {

namespace {

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool member_name(std::string_view s) {
  return s.size() > 1 && s.back() == '_';
}

bool scoped_fn(const FuncInfo& fn) {
  return fn.name.rfind("stage_", 0) == 0 || fn.name.rfind("restore", 0) == 0 ||
         ends_with(fn.name, "_delta");
}

bool tainted_param(const Param& p) {
  if (p.type.find("istream") != std::string::npos) return true;
  if (p.type.find("Staged") != std::string::npos) return true;
  if (p.type.find("span") != std::string::npos &&
      p.name.find("image") != std::string::npos)
    return true;
  return false;
}

bool span_mentions(const LexedFile& f, TokenSpan span,
                   const std::set<std::string, std::less<>>& names) {
  for (std::size_t i = span.begin; i < span.end; ++i) {
    const Token& t = f.tokens[i];
    if (t.kind == Tok::kIdent && names.count(t.text)) return true;
  }
  return false;
}

bool span_mentions_member(const LexedFile& f, TokenSpan span,
                          const std::set<std::string, std::less<>>& aliases) {
  for (std::size_t i = span.begin; i < span.end; ++i) {
    const Token& t = f.tokens[i];
    if (t.kind != Tok::kIdent) continue;
    if (member_name(t.text) || aliases.count(t.text)) return true;
  }
  return false;
}

/// Member names captured "bare" in an initializer: `foo_` followed by
/// `,` `)` `}` `;` or span end, not accessed through (`.`/`->` on either
/// side), and not the argument of std::move — moving a member INTO a
/// local adopts it, it does not alias it. Only reference declarations
/// and brace-initializers can alias: `vector<T> v(count_)` passes the
/// member by VALUE (a size, not a capture), while aggregates of
/// references (`MutSections s{ciphertext_, ...}`) and `auto& r = m_;`
/// genuinely hand out member state.
bool init_aliases_member(const LexedFile& f, const LocalDecl& d) {
  const TokenSpan init = d.init;
  const bool ref_type = d.type.find('&') != std::string::npos;
  const bool brace_init = punct_is(f, init.begin, "{");
  if (!ref_type && !brace_init) return false;
  for (std::size_t i = init.begin; i < init.end; ++i) {
    const Token& t = f.tokens[i];
    if (t.kind != Tok::kIdent || !member_name(t.text)) continue;
    if (i + 1 < init.end) {
      const Token& n = f.tokens[i + 1];
      const bool bare = n.kind == Tok::kPunct &&
                        (n.text == "," || n.text == ")" || n.text == "}" ||
                         n.text == ";");
      if (!bare) continue;
    }
    if (i > init.begin) {
      const Token& p = f.tokens[i - 1];
      if (p.kind == Tok::kPunct && (p.text == "." || p.text == "->")) continue;
      if (p.kind == Tok::kPunct && p.text == "(" && i >= 2 &&
          tok_is(f, i - 2, "move"))
        continue;
    }
    return true;
  }
  return false;
}

const std::set<std::string, std::less<>> kCopyCallees = {"memcpy", "memmove",
                                                         "copy", "copy_n"};

bool verification_callee(std::string_view last) {
  return last == "ct_equal" || last == "ct_equal_u64" ||
         last.rfind("verify", 0) == 0;
}

}  // namespace

void check_verify_before_apply(const SourceFile& sf, Emit emit) {
  const LexedFile& f = sf.lexed;
  for (const FuncInfo& fn : sf.model.funcs) {
    if (fn.is_ctor_or_dtor || !scoped_fn(fn)) continue;

    std::set<std::string, std::less<>> tainted;
    std::set<std::string, std::less<>> locals;
    for (const Param& p : fn.params) {
      if (!p.name.empty()) locals.insert(p.name);
      if (tainted_param(p) && !p.name.empty()) tainted.insert(p.name);
    }
    if (tainted.empty()) continue;

    const auto decls = extract_local_decls(f, sf.model, fn);
    const auto calls = extract_calls(f, fn.body_begin, fn.body_end);
    const auto assigns = extract_assigns(f, fn.body_begin, fn.body_end);
    for (const LocalDecl& d : decls) locals.insert(d.name);

    // Position-ordered events: taint transfer and verification first
    // (so a sink at the same site sees the current state), then sinks.
    struct Event {
      std::size_t tok;
      int kind;  // 0 decl, 1 assign, 2 call
      std::size_t idx;
    };
    std::vector<Event> events;
    for (std::size_t i = 0; i < decls.size(); ++i)
      events.push_back({decls[i].name_tok, 0, i});
    for (std::size_t i = 0; i < assigns.size(); ++i)
      events.push_back({assigns[i].eq_tok, 1, i});
    for (std::size_t i = 0; i < calls.size(); ++i)
      events.push_back({calls[i].callee_tok, 2, i});
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.tok < b.tok; });

    std::set<std::string, std::less<>> aliases;
    bool verified = false;
    std::set<std::size_t> reported;
    auto fire = [&](std::size_t tok, const std::string& what) {
      if (verified || !reported.insert(tok).second) return;
      emit(f.tokens[tok].pos, "verify-before-apply",
           what + " in " + fn.name +
               "() before any ct_equal/verify call; authenticate "
               "stream/image-sourced bytes before they can reach member "
               "state (SECURITY.md \"verify-before-apply\")");
    };

    for (const Event& ev : events) {
      if (ev.kind == 0) {
        const LocalDecl& d = decls[ev.idx];
        if (!d.has_init) continue;
        if (span_mentions(f, d.init, tainted)) tainted.insert(d.name);
        if (init_aliases_member(f, d)) aliases.insert(d.name);
      } else if (ev.kind == 1) {
        const AssignSite& a = assigns[ev.idx];
        const std::string lhs(f.tokens[a.lhs_base_tok].text);
        const bool rhs_tainted = span_mentions(f, a.rhs, tainted);
        if (rhs_tainted && locals.count(lhs) && !member_name(lhs))
          tainted.insert(lhs);
        if (rhs_tainted && (member_name(lhs) || aliases.count(lhs)))
          fire(a.lhs_base_tok,
               "assignment into member state from tainted data");
      } else {
        const CallSite& c = calls[ev.idx];
        if (verification_callee(c.callee_last)) {
          verified = true;
          continue;
        }
        bool any_tainted =
            c.recv_tok != SIZE_MAX &&
            f.tokens[c.recv_tok].kind == Tok::kIdent &&
            tainted.count(f.tokens[c.recv_tok].text);
        bool any_member = false, any_alias = false;
        for (const TokenSpan& arg : c.args) {
          if (span_mentions(f, arg, tainted)) any_tainted = true;
          if (span_mentions_member(f, arg, aliases)) any_member = true;
          if (span_mentions(f, arg, aliases)) any_alias = true;
        }
        if (any_tainted) {
          // Reading/parsing tainted bytes into locals taints the locals
          // passed alongside (in.read(buf...), read_exact(in, buf)...).
          for (const TokenSpan& arg : c.args)
            for (std::size_t i = arg.begin; i < arg.end; ++i) {
              const Token& t = f.tokens[i];
              if (t.kind == Tok::kIdent && locals.count(t.text) &&
                  !member_name(t.text))
                tainted.insert(std::string(t.text));
            }
        }
        if (any_tainted && kCopyCallees.count(c.callee_last) && any_member)
          fire(c.callee_tok, "copy mixing member state and tainted data");
        else if (any_tainted && any_alias)
          fire(c.callee_tok,
               "call mutating member state (via alias) with tainted data");
      }
    }

    // `return tainted;` / `return std::move(tainted);` — the staged
    // result escapes to the commit path unverified.
    if (!verified) {
      for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
        if (!tok_is(f, i, "return")) continue;
        std::size_t name_tok = SIZE_MAX;
        if (f.tokens[i + 1].kind == Tok::kIdent && i + 2 < fn.body_end &&
            punct_is(f, i + 2, ";"))
          name_tok = i + 1;
        else if (i + 7 < fn.body_end && tok_is(f, i + 1, "std") &&
                 punct_is(f, i + 2, "::") && tok_is(f, i + 3, "move") &&
                 punct_is(f, i + 4, "(") &&
                 f.tokens[i + 5].kind == Tok::kIdent &&
                 punct_is(f, i + 6, ")") && punct_is(f, i + 7, ";"))
          name_tok = i + 5;
        if (name_tok != SIZE_MAX && tainted.count(f.tokens[name_tok].text))
          fire(i, "return of tainted staged data");
      }
    }
  }
}

}  // namespace secmem_lint
