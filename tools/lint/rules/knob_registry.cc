// knob-registry: every SECMEM_* environment knob read anywhere in src/
// must have (a) a scripts/ci.sh leg exercising the non-default setting
// and (b) a mention in README.md or ARCHITECTURE.md. Unregistered knobs
// are how "the kill switch exists" quietly becomes "the kill switch has
// never been tested".
//
// A knob read is any call through an env-reading function (getenv,
// secure_getenv, env_* helpers) whose argument list contains a string
// literal starting with SECMEM_.
#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "../rules.h"

namespace secmem_lint {

namespace {

bool env_callee(std::string_view last) {
  return last == "getenv" || last == "secure_getenv" ||
         last.rfind("env_", 0) == 0 || last.rfind("getenv_", 0) == 0;
}

/// SECMEM_* names inside a (quoted) string-literal token.
std::vector<std::string> knob_names(std::string_view literal) {
  std::vector<std::string> names;
  std::size_t pos = 0;
  while ((pos = literal.find("SECMEM_", pos)) != std::string_view::npos) {
    std::size_t end = pos;
    while (end < literal.size() && ident_char(literal[end])) ++end;
    names.emplace_back(literal.substr(pos, end - pos));
    pos = end;
  }
  return names;
}

}  // namespace

void check_knob_registry(const SourceFile& sf, const RepoContext& ctx,
                         Emit emit) {
  const LexedFile& f = sf.lexed;
  std::set<std::string> seen;  // one report per knob per file
  for (const CallSite& c : extract_calls(f, 0, f.tokens.size())) {
    if (!env_callee(c.callee_last)) continue;
    for (const TokenSpan& arg : c.args) {
      for (std::size_t i = arg.begin; i < arg.end; ++i) {
        const Token& t = f.tokens[i];
        if (t.kind != Tok::kString) continue;
        for (const std::string& knob : knob_names(t.text)) {
          if (!seen.insert(knob).second) continue;
          const bool in_ci = ctx.ci_text.find(knob) != std::string::npos;
          const bool in_docs =
              ctx.readme_text.find(knob) != std::string::npos ||
              ctx.arch_text.find(knob) != std::string::npos;
          if (!in_ci)
            emit(t.pos, "knob-registry",
                 "env knob " + knob +
                     " is read here but scripts/ci.sh has no leg "
                     "exercising it; add a kill-switch leg (see the "
                     "SECMEM_FORCE_PORTABLE leg for the shape)");
          if (!in_docs)
            emit(t.pos, "knob-registry",
                 "env knob " + knob +
                     " is read here but documented in neither README.md "
                     "nor ARCHITECTURE.md");
        }
      }
    }
  }
}

}  // namespace secmem_lint
