// status-discard: a local of type secmem::Status (or engine ReadResult)
// that is assigned but never consulted — never compared, returned,
// passed on, or member-accessed — silently swallows a failure. Two
// shapes are reported:
//
//   dead variable:        every assignment, zero reads anywhere
//   overwrite-before-read: two straight-line writes with no read and no
//                          branch between them (the first result is lost)
//   trailing dead write:  the last write is never read afterwards
//
// Branchy code between writes (if/else/?:/&&/||) suppresses the
// overwrite report — `if (a) st = f(); else st = g();` is two arms, not
// a discard. A write inside a loop whose body also reads the variable is
// live across the back edge and is not a trailing dead write.
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "../rules.h"

namespace secmem_lint {

namespace {

bool status_type(const std::string& type) {
  // Token-exact match: "Status" / "secmem::Status" / "ReadResult", but
  // not StatusCode or similar.
  std::string word;
  for (std::size_t i = 0; i <= type.size(); ++i) {
    const char c = i < type.size() ? type[i] : '\0';
    if (ident_char(c)) {
      word += c;
      continue;
    }
    if (word == "Status" || word == "ReadResult") return true;
    word.clear();
  }
  return false;
}

bool branchy(const Token& t) {
  if (t.kind == Tok::kIdent)
    return t.text == "if" || t.text == "else" || t.text == "switch" ||
           t.text == "case" || t.text == "while" || t.text == "for" ||
           t.text == "do" || t.text == "goto" || t.text == "catch";
  if (t.kind == Tok::kPunct)
    return t.text == "?" || t.text == "&&" || t.text == "||";
  return false;
}

}  // namespace

void check_status_discard(const SourceFile& sf, Emit emit) {
  const LexedFile& f = sf.lexed;
  for (const FuncInfo& fn : sf.model.funcs) {
    const auto decls = extract_local_decls(f, sf.model, fn);
    const auto assigns = extract_assigns(f, fn.body_begin, fn.body_end);
    for (const LocalDecl& d : decls) {
      if (!status_type(d.type)) continue;
      // Two sibling-scope locals sharing a name defeat the scope-blind
      // mention scan; skip the name rather than mix the variables up.
      std::size_t same_name = 0;
      for (const LocalDecl& o : decls)
        if (o.name == d.name) ++same_name;
      if (same_name > 1) continue;

      // Classify every mention of the name inside the body, in token
      // order (the declaration's own initializer counts as a write).
      std::vector<std::size_t> writes;  // token index of the write site
      std::vector<std::size_t> reads;
      for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
        const Token& t = f.tokens[i];
        if (t.kind != Tok::kIdent || t.text != d.name) continue;
        if (i == d.name_tok) {
          if (d.has_init) writes.push_back(i);
          continue;
        }
        bool is_write = false;
        for (const AssignSite& a : assigns)
          if (a.lhs_base_tok == i && a.eq_tok == i + 1) is_write = true;
        (is_write ? writes : reads).push_back(i);
      }
      if (writes.empty()) continue;

      if (reads.empty()) {
        emit(f.tokens[d.name_tok].pos, "status-discard",
             "status local '" + d.name + "' in " + fn.name +
                 "() is assigned but never consulted; check it, return "
                 "it, or drop the variable");
        continue;
      }

      auto read_between = [&](std::size_t a, std::size_t b) {
        for (const std::size_t r : reads)
          if (r > a && r < b) return true;
        return false;
      };
      auto branch_between = [&](std::size_t a, std::size_t b) {
        for (std::size_t i = a + 1; i < b; ++i)
          if (branchy(f.tokens[i])) return true;
        return false;
      };
      for (std::size_t w = 0; w + 1 < writes.size(); ++w) {
        if (!read_between(writes[w], writes[w + 1]) &&
            !branch_between(writes[w], writes[w + 1]))
          emit(f.tokens[writes[w + 1]].pos, "status-discard",
               "status local '" + d.name + "' in " + fn.name +
                   "() is overwritten before the previous value was "
                   "read");
      }

      // Trailing dead write, unless it lives across a loop back edge.
      const std::size_t last = writes.back();
      if (!read_between(last, fn.body_end)) {
        bool loop_live = false;
        for (const TokenSpan& loop : sf.model.loop_bodies)
          if (last >= loop.begin && last < loop.end &&
              read_between(loop.begin - 1, loop.end))
            loop_live = true;
        if (!loop_live)
          emit(f.tokens[last].pos, "status-discard",
               "status local '" + d.name + "' in " + fn.name +
                   "(): value assigned here is never read");
      }
    }
  }
}

}  // namespace secmem_lint
