// The six token-level rules, ported from the original single-file
// scanner. They operate on the blanked views (comments/strings removed)
// rather than the token stream — their matching is positional substring
// work and the views have survived years of fixtures.
#include <cctype>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "../rules.h"

namespace secmem_lint {

namespace {

/// All positions where `name` appears as a complete identifier.
std::vector<std::size_t> find_idents(const std::string& code,
                                     std::string_view name) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

/// True if the identifier at `pos` is qualified as std:: (possibly
/// ::std:: or std::ranges::).
bool std_qualified(const std::string& code, std::size_t pos) {
  auto skip_ws_back = [&](std::size_t p) {
    while (p > 0 && std::isspace(static_cast<unsigned char>(code[p - 1])))
      --p;
    return p;
  };
  std::size_t p = skip_ws_back(pos);
  if (p < 2 || code[p - 1] != ':' || code[p - 2] != ':') return false;
  p = skip_ws_back(p - 2);
  std::size_t end = p;
  while (p > 0 && ident_char(code[p - 1])) --p;
  const std::string_view qual(code.data() + p, end - p);
  if (qual == "std") return true;
  if (qual == "ranges") return std_qualified(code, p);
  return false;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Registered stat namespaces. Entries may themselves be dotted
/// ("snapshot.delta"): a stat name passes if its first segment OR its
/// first two segments match an entry, so sub-namespaces can be carved
/// out without opening the whole parent.
const std::set<std::string, std::less<>> kStatNamespaces = {
    "bench",     "cache", "dram",     "engine",         "metacache",
    "reenc",     "sim",   "snapshot", "snapshot.delta", "trace",
    "tree_cache"};

}  // namespace

std::string file_stem(const std::string& rel) {
  const std::size_t dot = rel.rfind('.');
  const std::size_t slash = rel.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return rel;
  return rel.substr(0, dot);
}

const std::set<std::string>& all_rule_ids() {
  static const std::set<std::string> ids = {
      "ct-compare",      "raw-mutex",       "sim-rand",
      "stat-name",       "crypto-include",  "no-throw-engine",
      "verify-before-apply", "status-discard", "lock-discipline",
      "secret-branch",   "knob-registry"};
  return ids;
}

void check_ct_compare(const SourceFile& sf, Emit emit) {
  const std::string& code = sf.lexed.views.code;
  const char* msg =
      "variable-time compare on a verification path; use "
      "secmem::ct_equal/ct_equal_u64 (common/ct.h)";
  for (const char* name : {"memcmp", "bcmp"}) {
    for (const std::size_t pos : find_idents(code, name))
      emit(pos, "ct-compare", std::string(msg) + " [" + name + "]");
  }
  for (const std::size_t pos : find_idents(code, "equal")) {
    if (std_qualified(code, pos))
      emit(pos, "ct-compare", std::string(msg) + " [std::equal]");
  }
}

void check_raw_mutex(const SourceFile& sf, Emit emit) {
  const std::string& code = sf.lexed.views.code;
  const char* msg =
      "naked std mutex invisible to thread-safety analysis; use "
      "secmem::Mutex/MutexLock (common/thread_annotations.h)";
  for (const char* name :
       {"mutex", "recursive_mutex", "timed_mutex", "recursive_timed_mutex",
        "shared_mutex", "shared_timed_mutex", "shared_lock"}) {
    for (const std::size_t pos : find_idents(code, name)) {
      if (std_qualified(code, pos))
        emit(pos, "raw-mutex",
             std::string(msg) + " [std::" + name + "]");
    }
  }
  // Reader-side primitives called directly (mu.lock_shared() etc.)
  // bypass both the capability annotations and the SeqLock generation
  // protocol; only thread_annotations.h itself may touch them.
  for (const char* name :
       {"lock_shared", "unlock_shared", "try_lock_shared"}) {
    for (const std::size_t pos : find_idents(code, name))
      emit(pos, "raw-mutex", std::string(msg) + " [" + name + "]");
  }
}

void check_sim_rand(const SourceFile& sf, Emit emit) {
  const std::string& code = sf.lexed.views.code;
  const char* msg =
      "non-reproducible randomness in simulator code; use "
      "secmem::Xoshiro256 (common/rng.h)";
  for (const char* name :
       {"rand", "srand", "rand_r", "drand48", "random_device", "mt19937",
        "mt19937_64", "minstd_rand", "minstd_rand0",
        "default_random_engine", "knuth_b"}) {
    for (const std::size_t pos : find_idents(code, name))
      emit(pos, "sim-rand", std::string(msg) + " [" + name + "]");
  }
}

void check_no_throw_engine(const SourceFile& sf, Emit emit) {
  const std::string& code = sf.lexed.views.code;
  for (const std::size_t pos : find_idents(code, "throw")) {
    // The thrown expression's head: a possibly std::-qualified type
    // name right after the keyword. `throw;` (rethrow) and non-type
    // heads fall through to a finding — the rule is about what leaves
    // the engine, and anything but the whitelisted argument-contract
    // types does.
    std::size_t p = pos + 5;
    while (p < code.size() &&
           std::isspace(static_cast<unsigned char>(code[p])))
      ++p;
    std::string head;
    while (p < code.size() && (ident_char(code[p]) || code[p] == ':'))
      head += code[p++];
    if (starts_with(head, "std::")) head.erase(0, 5);
    if (head == "out_of_range" || head == "invalid_argument" ||
        head == "length_error")
      continue;
    emit(pos, "no-throw-engine",
         "engine/counter datapaths report failures via secmem::Status, "
         "not exceptions; only argument-contract throws "
         "(std::out_of_range, std::invalid_argument, std::length_error) "
         "are allowed [" +
             (head.empty() ? "throw" : "throw " + head) + "]");
  }
}

void check_stat_name(const SourceFile& sf, Emit emit) {
  const std::string& code = sf.lexed.views.code;
  const std::string& code_strings = sf.lexed.views.code_strings;
  for (const char* method : {"counter", "scalar", "histogram"}) {
    for (const std::size_t pos : find_idents(code, method)) {
      // Match a call whose first argument is a string literal:
      //   counter ( "name...
      std::size_t p = pos + std::string_view(method).size();
      while (p < code.size() &&
             std::isspace(static_cast<unsigned char>(code[p])))
        ++p;
      if (p >= code.size() || code[p] != '(') continue;
      ++p;
      // Skip whitespace in the strings-kept view: in `code` the literal
      // itself is blanked to spaces and would be skipped right over.
      while (p < code_strings.size() &&
             std::isspace(static_cast<unsigned char>(code_strings[p])))
        ++p;
      if (p >= code_strings.size() || code_strings[p] != '"') continue;
      std::string name;
      for (std::size_t q = p + 1;
           q < code_strings.size() && code_strings[q] != '"'; ++q) {
        if (code_strings[q] == '\\') break;  // escapes: give up, skip
        name += code_strings[q];
      }
      const std::size_t dot1 = name.find('.');
      const std::string head = name.substr(0, dot1);
      bool known = kStatNamespaces.count(head) != 0;
      if (!known && dot1 != std::string::npos) {
        const std::string head2 = name.substr(0, name.find('.', dot1 + 1));
        known = kStatNamespaces.count(head2) != 0;
      }
      if (!known)
        emit(p, "stat-name",
             "stat name outside the registered namespaces [\"" + name +
                 "\" via " + method + "()]");
    }
  }
}

void check_crypto_include(const SourceFile& sf, Emit emit) {
  const std::string& code = sf.lexed.views.code_strings;
  std::size_t pos = 0;
  while ((pos = code.find('#', pos)) != std::string::npos) {
    std::size_t p = pos + 1;
    while (p < code.size() &&
           std::isspace(static_cast<unsigned char>(code[p])) &&
           code[p] != '\n')
      ++p;
    if (code.compare(p, 7, "include") != 0) {
      ++pos;
      continue;
    }
    std::size_t end = code.find('\n', p);
    if (end == std::string::npos) end = code.size();
    const std::string target = code.substr(p + 7, end - p - 7);
    for (const char* banned :
         {"immintrin", "wmmintrin", "x86intrin", "emmintrin", "tmmintrin",
          "smmintrin", "nmmintrin", "arm_neon", "_ni.", "gf64_clmul"}) {
      if (target.find(banned) != std::string::npos) {
        emit(pos, "crypto-include",
             "intrinsics / crypto-backend internals included outside "
             "src/crypto; go through crypto_backend.h [" +
                 std::string(banned) + "]");
        break;
      }
    }
    pos = end;
  }
}

}  // namespace secmem_lint
