#include "lexer.h"

#include <algorithm>
#include <cctype>

namespace secmem_lint {

namespace {

bool space_char(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

bool digit_char(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

/// Greedy multi-character punctuator match at text[i]; longest first.
std::size_t punct_len(const std::string& text, std::size_t i) {
  static const char* kThree[] = {"<<=", ">>=", "...", "->*"};
  static const char* kTwo[] = {"::", "->", "==", "!=", "<=", ">=", "&&",
                               "||", "+=", "-=", "*=", "/=", "%=", "&=",
                               "|=", "^=", "<<", ">>", "++", "--", ".*"};
  for (const char* p : kThree)
    if (text.compare(i, 3, p) == 0) return 3;
  for (const char* p : kTwo)
    if (text.compare(i, 2, p) == 0) return 2;
  return 1;
}

}  // namespace

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + pos, '\n'));
}

Views strip(const std::string& text) {
  Views v;
  v.code.assign(text.size(), ' ');
  v.code_strings.assign(text.size(), ' ');
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {  // newlines survive every state
      v.code[i] = '\n';
      v.code_strings[i] = '\n';
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          // R"delim( ... opens a raw string when the quote follows an R
          // that is not part of a longer identifier.
          const bool raw =
              i > 0 && text[i - 1] == 'R' &&
              (i < 2 ||
               (!std::isalnum(static_cast<unsigned char>(text[i - 2])) &&
                text[i - 2] != '_'));
          v.code_strings[i] = '"';
          if (raw) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(') raw_delim += text[j++];
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          state = State::kChar;
        } else {
          v.code[i] = c;
          v.code_strings[i] = c;
        }
        break;
      case State::kLineComment:
      case State::kBlockComment:
        if (state == State::kBlockComment && c == '*' &&
            i + 1 < text.size() && text[i + 1] == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        v.code_strings[i] = c;
        if (c == '\\' && i + 1 < text.size()) {
          if (text[i + 1] != '\n') v.code_strings[i + 1] = text[i + 1];
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < text.size())
          ++i;
        else if (c == '\'')
          state = State::kCode;
        break;
      case State::kRawString: {
        v.code_strings[i] = c;
        const std::string close = ")" + raw_delim + "\"";
        if (c == ')' && text.compare(i, close.size(), close) == 0) {
          for (std::size_t k = 0; k < close.size() && i + k < text.size();
               ++k)
            v.code_strings[i + k] = text[i + k];
          i += close.size() - 1;
          state = State::kCode;
        }
        break;
      }
    }
  }
  return v;
}

LexedFile lex(std::string text) {
  LexedFile f;
  f.text = std::move(text);
  f.views = strip(f.text);
  const std::string& t = f.text;
  std::uint32_t line = 1;
  std::size_t i = 0;
  auto emit = [&](Tok kind, std::size_t begin, std::size_t end) {
    f.tokens.push_back(
        {kind, std::string_view(t.data() + begin, end - begin), begin, line});
  };
  while (i < t.size()) {
    const char c = t[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (space_char(c)) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < t.size() && t[i + 1] == '/') {
      while (i < t.size() && t[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < t.size() && t[i + 1] == '*') {
      i += 2;
      while (i + 1 < t.size() && !(t[i] == '*' && t[i + 1] == '/')) {
        if (t[i] == '\n') ++line;
        ++i;
      }
      i = std::min(t.size(), i + 2);
      continue;
    }
    if (c == '"' || (c == 'R' && i + 1 < t.size() && t[i + 1] == '"')) {
      const std::size_t begin = i;
      if (c == 'R') {  // raw string: R"delim( ... )delim"
        std::string delim;
        std::size_t j = i + 2;
        while (j < t.size() && t[j] != '(') delim += t[j++];
        const std::string close = ")" + delim + "\"";
        std::size_t end = t.find(close, j);
        end = end == std::string::npos ? t.size() : end + close.size();
        line += static_cast<std::uint32_t>(
            std::count(t.begin() + begin, t.begin() + end, '\n'));
        // Emit with the line of the *start*; recompute after counting.
        const std::uint32_t start_line =
            line - static_cast<std::uint32_t>(
                       std::count(t.begin() + begin, t.begin() + end, '\n'));
        f.tokens.push_back({Tok::kString,
                            std::string_view(t.data() + begin, end - begin),
                            begin, start_line});
        i = end;
        continue;
      }
      std::size_t j = i + 1;
      while (j < t.size() && t[j] != '"' && t[j] != '\n') {
        if (t[j] == '\\' && j + 1 < t.size()) ++j;
        ++j;
      }
      j = std::min(t.size(), j + 1);
      emit(Tok::kString, begin, j);
      i = j;
      continue;
    }
    if (c == '\'') {
      const std::size_t begin = i;
      std::size_t j = i + 1;
      while (j < t.size() && t[j] != '\'' && t[j] != '\n') {
        if (t[j] == '\\' && j + 1 < t.size()) ++j;
        ++j;
      }
      j = std::min(t.size(), j + 1);
      emit(Tok::kChar, begin, j);
      i = j;
      continue;
    }
    if (ident_start(c)) {
      const std::size_t begin = i;
      while (i < t.size() && ident_char(t[i])) ++i;
      emit(Tok::kIdent, begin, i);
      continue;
    }
    if (digit_char(c) || (c == '.' && i + 1 < t.size() && digit_char(t[i + 1]))) {
      const std::size_t begin = i;
      while (i < t.size() &&
             (ident_char(t[i]) || t[i] == '.' || t[i] == '\'' ||
              ((t[i] == '+' || t[i] == '-') && i > begin &&
               (t[i - 1] == 'e' || t[i - 1] == 'E' || t[i - 1] == 'p' ||
                t[i - 1] == 'P'))))
        ++i;
      emit(Tok::kNumber, begin, i);
      continue;
    }
    const std::size_t n = punct_len(t, i);
    emit(Tok::kPunct, i, i + n);
    i += n;
  }
  return f;
}

}  // namespace secmem_lint
