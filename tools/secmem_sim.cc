// secmem-sim — command-line driver for the full-system simulator.
//
// Examples:
//   secmem-sim --workload canneal --scheme delta --mac ecc --refs 200000
//   secmem-sim --workload facesim --none            # unencrypted baseline
//   secmem-sim --trace my.trace --scheme split --stats
//   secmem-sim --list-workloads
//
// Prints cycles, IPC, DRAM traffic and counter events; --stats dumps the
// full counter registry (cache hit rates, per-channel DRAM behaviour,
// metadata traffic, ...).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "sim/system_sim.h"
#include "sim/trace.h"

namespace {

using namespace secmem;

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --workload NAME     PARSEC-like profile (see --list-workloads)\n"
      "  --trace FILE        drive cores from a trace file instead\n"
      "  --scheme KIND       mono | split | delta | dual   (default delta)\n"
      "  --mac PLACEMENT     ecc | separate                (default ecc)\n"
      "  --none              disable protection (baseline run)\n"
      "  --refs N            references per core            (default 100000)\n"
      "  --warmup N          warm-up references per core    (default refs/3)\n"
      "  --protected-mb N    protected region size in MB    (default 512)\n"
      "  --seed N            workload seed                  (default 42)\n"
      "  --stats             dump the full statistics registry\n"
      "  --list-workloads    print available profiles and exit\n",
      argv0);
}

bool parse_scheme(const std::string& text, CounterSchemeKind& out) {
  if (text == "mono" || text == "monolithic") {
    out = CounterSchemeKind::kMonolithic56;
  } else if (text == "split") {
    out = CounterSchemeKind::kSplit;
  } else if (text == "delta") {
    out = CounterSchemeKind::kDelta;
  } else if (text == "dual") {
    out = CounterSchemeKind::kDualDelta;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "canneal";
  std::string trace_path;
  SystemConfig config;
  std::uint64_t refs = 100000;
  std::uint64_t warmup = ~0ULL;  // sentinel: default refs/3
  bool dump_stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload = value();
    } else if (arg == "--trace") {
      trace_path = value();
    } else if (arg == "--scheme") {
      if (!parse_scheme(value(), config.scheme)) {
        std::fprintf(stderr, "unknown scheme\n");
        return 2;
      }
    } else if (arg == "--mac") {
      const std::string placement = value();
      if (placement == "ecc") {
        config.engine.mac_placement = MacPlacement::kEccLane;
      } else if (placement == "separate") {
        config.engine.mac_placement = MacPlacement::kSeparate;
      } else {
        std::fprintf(stderr, "unknown MAC placement\n");
        return 2;
      }
    } else if (arg == "--none") {
      config.protection = Protection::kNone;
    } else if (arg == "--refs") {
      refs = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--warmup") {
      warmup = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--protected-mb") {
      config.protected_bytes = std::strtoull(value(), nullptr, 10) << 20;
    } else if (arg == "--seed") {
      config.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--stats") {
      dump_stats = true;
    } else if (arg == "--list-workloads") {
      for (const WorkloadProfile& profile : parsec_profiles()) {
        std::printf("%-14s ws=%lluMB gap=%u write=%.2f\n",
                    profile.name.c_str(),
                    static_cast<unsigned long long>(
                        profile.working_set_bytes >> 20),
                    profile.mean_gap, profile.write_fraction);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  config.warmup_refs = (warmup == ~0ULL) ? refs / 3 : warmup;

  try {
    const WorkloadProfile& profile = profile_by_name(workload);
    SystemSimulator sim(config, profile);
    const SimResult result =
        trace_path.empty()
            ? sim.run(refs)
            : sim.run_trace(load_trace_file(trace_path, config.cores));

    const std::string source =
        trace_path.empty() ? workload : workload + " (trace: " + trace_path + ")";
    const std::string protection =
        config.protection == Protection::kNone
            ? "none"
            : std::string(counter_scheme_kind_name(config.scheme)) + " + " +
                  (config.engine.mac_placement == MacPlacement::kEccLane
                       ? "MAC-in-ECC"
                       : "separate MACs");
    std::printf("workload        %s\n", source.c_str());
    std::printf("protection      %s\n", protection.c_str());
    std::printf("cycles          %llu\n",
                static_cast<unsigned long long>(result.cycles));
    std::printf("instructions    %llu\n",
                static_cast<unsigned long long>(result.instructions));
    std::printf("IPC             %.4f\n", result.ipc);
    std::printf("dram reads      %llu\n",
                static_cast<unsigned long long>(result.dram_reads));
    std::printf("dram writes     %llu\n",
                static_cast<unsigned long long>(result.dram_writes));
    std::printf("re-encryptions  %llu\n",
                static_cast<unsigned long long>(result.reencryptions));
    if (dump_stats) {
      std::printf("\n--- statistics registry ---\n");
      sim.stats().dump(std::cout);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
