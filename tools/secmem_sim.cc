// secmem-sim — command-line driver for the full-system simulator.
//
// Examples:
//   secmem-sim --workload canneal --scheme delta --mac ecc --refs 200000
//   secmem-sim --workload facesim --none            # unencrypted baseline
//   secmem-sim --trace my.trace --scheme split --stats
//   secmem-sim --list-workloads
//
// Prints cycles, IPC, DRAM traffic and counter events; --stats dumps the
// full counter registry (cache hit rates, per-channel DRAM behaviour,
// metadata traffic, ...).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/secure_memory_like.h"
#include "engine/sharded_memory.h"
#include "sim/system_sim.h"
#include "sim/trace.h"

namespace {

using namespace secmem;

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --workload NAME     PARSEC-like profile (see --list-workloads)\n"
      "  --trace FILE        drive cores from a trace file instead\n"
      "  --scheme KIND       mono | split | delta | dual   (default delta)\n"
      "  --mac PLACEMENT     ecc | separate                (default ecc)\n"
      "  --none              disable protection (baseline run)\n"
      "  --refs N            references per core            (default 100000)\n"
      "  --warmup N          warm-up references per core    (default refs/3)\n"
      "  --protected-mb N    protected region size in MB    (default 512)\n"
      "  --seed N            workload seed                  (default 42)\n"
      "  --stats             dump the full statistics registry\n"
      "  --metrics-json F    write the statistics registry as JSON to F\n"
      "                      (engine metrics in engine mode, simulator\n"
      "                      registry in timing mode)\n"
      "  --list-workloads    print available profiles and exit\n"
      "  --engine KIND       run a functional engine instead of the timing\n"
      "                      simulator: plain | concurrent | sharded;\n"
      "                      multithreaded workload-shaped read/write mix\n"
      "                      (default region 16MB unless --protected-mb)\n"
      "  --shards N          shard count for --engine sharded (implies it)\n"
      "  --threads N         worker threads in engine mode (default 4;\n"
      "                      forced to 1 for --engine plain)\n"
      "  --tree-cache-kb N   verified-frontier tree cache per engine/shard\n"
      "                      in KB; 0 = eager tree walks  (default 8;\n"
      "                      SECMEM_TREE_CACHE env var wins)\n"
      "  --delta-save FILE   engine mode: after the run, seal a full base\n"
      "                      image, re-dirty the hot set, and write the\n"
      "                      incremental delta image to FILE (implies\n"
      "                      --engine; SECMEM_DELTA_SNAPSHOT=0 falls back\n"
      "                      to a full image)\n",
      argv0);
}

/// Write the registry's JSON export to `path`; false (with a message on
/// stderr) if the file cannot be written.
bool write_metrics_json(const StatRegistry& registry,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  registry.write_json(out);
  return out.good();
}

/// Engine mode: drive a functional engine — selected by EngineKind via the
/// shared SecureMemoryLike interface — with a workload-shaped access mix
/// (the profile's working set and write fraction) and report aggregate
/// throughput plus engine statistics — the operational counterpart of the
/// cycle-level simulation.
int run_functional_engine(const SystemConfig& config,
                          const WorkloadProfile& profile, EngineKind kind,
                          unsigned shards, unsigned threads,
                          std::uint64_t refs_per_thread, bool dump_stats,
                          const std::string& metrics_json,
                          unsigned tree_cache_kb,
                          const std::string& delta_save_path) {
  SecureMemoryConfig mem_config;
  mem_config.size_bytes = config.protected_bytes;
  mem_config.scheme = config.scheme;
  mem_config.mac_placement = config.engine.mac_placement;
  mem_config.tree_cache_kb = tree_cache_kb;
  const std::unique_ptr<SecureMemoryLike> memory =
      make_engine(mem_config, kind, shards);

  const std::uint64_t hot_blocks =
      std::clamp<std::uint64_t>(profile.working_set_bytes / 64, 64,
                                memory->num_blocks());
  const double write_fraction = profile.write_fraction;

  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(config.seed + t);
      DataBlock block_data{};
      block_data[0] = static_cast<std::uint8_t>(t);
      for (std::uint64_t i = 0; i < refs_per_thread; ++i) {
        const std::uint64_t block = rng.next_below(hot_blocks);
        if (rng.chance(write_fraction)) {
          if (memory->write_block(block, block_data) != Status::kOk)
            ++failures;
        } else if (memory->read_block(block).status != ReadStatus::kOk) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  const EngineStats stats = memory->stats();
  const std::uint64_t total_ops = threads * refs_per_thread;
  std::printf("workload        %s (functional engine)\n",
              profile.name.c_str());
  std::printf("protection      %s + %s\n",
              counter_scheme_kind_name(config.scheme),
              mem_config.mac_placement == MacPlacement::kEccLane
                  ? "MAC-in-ECC"
                  : "separate MACs");
  std::printf("engine          %s\n", engine_kind_name(kind));
  if (kind == EngineKind::kSharded)
    std::printf("shards          %u\n", shards ? shards : 8);
  std::printf("threads         %u\n", threads);
  std::printf("region          %llu MB\n",
              static_cast<unsigned long long>(
                  mem_config.size_bytes >> 20));
  std::printf("ops             %llu\n",
              static_cast<unsigned long long>(total_ops));
  std::printf("seconds         %.3f\n", elapsed.count());
  std::printf("ops/sec         %.0f\n", total_ops / elapsed.count());
  std::printf("reads           %llu\n",
              static_cast<unsigned long long>(stats.reads));
  std::printf("writes          %llu\n",
              static_cast<unsigned long long>(stats.writes));
  std::printf("re-encryptions  %llu\n",
              static_cast<unsigned long long>(stats.group_reencryptions));
  if (dump_stats) {
    std::printf("mac evals       %llu\n",
                static_cast<unsigned long long>(stats.mac_evaluations));
    std::printf("violations      %llu\n",
                static_cast<unsigned long long>(stats.integrity_violations));
    std::printf("tree-cache      %llu hits / %llu misses\n",
                static_cast<unsigned long long>(stats.tree_cache_hits),
                static_cast<unsigned long long>(stats.tree_cache_misses));
  }
  if (!delta_save_path.empty()) {
    // Seal a full base image (aligns the engine's snapshot chain), touch
    // the hot set again, then emit the incremental image: the on-disk
    // artifact a crash/restore loop would ship per checkpoint.
    std::vector<std::byte> base;
    if (memory->save(base) != Status::kOk) {
      std::fprintf(stderr, "error: base save failed\n");
      return 1;
    }
    Xoshiro256 rng(config.seed ^ 0xde17a);
    DataBlock block_data{};
    block_data[0] = 0xd1;
    for (unsigned i = 0; i < 1024; ++i) {
      if (memory->write_block(rng.next_below(hot_blocks), block_data) !=
          Status::kOk)
        ++failures;
    }
    std::ofstream delta_out(delta_save_path, std::ios::binary);
    if (!delta_out || memory->save_delta(delta_out) != Status::kOk ||
        !delta_out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   delta_save_path.c_str());
      return 1;
    }
    const auto delta_bytes =
        static_cast<unsigned long long>(delta_out.tellp());
    std::printf("full image      %llu bytes\n",
                static_cast<unsigned long long>(base.size()));
    std::printf("delta image     %llu bytes -> %s (%.1fx smaller)\n",
                delta_bytes, delta_save_path.c_str(),
                delta_bytes ? static_cast<double>(base.size()) / delta_bytes
                            : 0.0);
  }
  if (!metrics_json.empty()) {
    StatRegistry registry;
    memory->publish_metrics(registry);
    if (!write_metrics_json(registry, metrics_json)) return 1;
  }
  if (failures.load() != 0) {
    std::fprintf(stderr, "error: %llu reads failed verification\n",
                 static_cast<unsigned long long>(failures.load()));
    return 1;
  }
  return 0;
}

bool parse_scheme(const std::string& text, CounterSchemeKind& out) {
  if (text == "mono" || text == "monolithic") {
    out = CounterSchemeKind::kMonolithic56;
  } else if (text == "split") {
    out = CounterSchemeKind::kSplit;
  } else if (text == "delta") {
    out = CounterSchemeKind::kDelta;
  } else if (text == "dual") {
    out = CounterSchemeKind::kDualDelta;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "canneal";
  std::string trace_path;
  SystemConfig config;
  std::uint64_t refs = 100000;
  std::uint64_t warmup = ~0ULL;  // sentinel: default refs/3
  bool dump_stats = false;
  std::string metrics_json;
  bool engine_mode = false;
  EngineKind engine_kind = EngineKind::kSharded;
  unsigned shards = 0;  // 0 = engine default (8)
  unsigned threads = 4;
  unsigned tree_cache_kb = SecureMemoryConfig{}.tree_cache_kb;
  bool protected_mb_given = false;
  std::string delta_save_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload = value();
    } else if (arg == "--trace") {
      trace_path = value();
    } else if (arg == "--scheme") {
      if (!parse_scheme(value(), config.scheme)) {
        std::fprintf(stderr, "unknown scheme\n");
        return 2;
      }
    } else if (arg == "--mac") {
      const std::string placement = value();
      if (placement == "ecc") {
        config.engine.mac_placement = MacPlacement::kEccLane;
      } else if (placement == "separate") {
        config.engine.mac_placement = MacPlacement::kSeparate;
      } else {
        std::fprintf(stderr, "unknown MAC placement\n");
        return 2;
      }
    } else if (arg == "--none") {
      config.protection = Protection::kNone;
    } else if (arg == "--refs") {
      refs = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--warmup") {
      warmup = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--protected-mb") {
      config.protected_bytes = std::strtoull(value(), nullptr, 10) << 20;
      protected_mb_given = true;
    } else if (arg == "--engine") {
      if (!parse_engine_kind(value(), engine_kind)) {
        std::fprintf(stderr, "unknown engine kind\n");
        return 2;
      }
      engine_mode = true;
    } else if (arg == "--shards") {
      shards = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
      engine_mode = true;
      engine_kind = EngineKind::kSharded;
    } else if (arg == "--metrics-json") {
      metrics_json = value();
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--tree-cache-kb") {
      tree_cache_kb = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
      engine_mode = true;
    } else if (arg == "--delta-save") {
      delta_save_path = value();
      engine_mode = true;
    } else if (arg == "--seed") {
      config.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--stats") {
      dump_stats = true;
    } else if (arg == "--list-workloads") {
      for (const WorkloadProfile& profile : parsec_profiles()) {
        std::printf("%-14s ws=%lluMB gap=%u write=%.2f\n",
                    profile.name.c_str(),
                    static_cast<unsigned long long>(
                        profile.working_set_bytes >> 20),
                    profile.mean_gap, profile.write_fraction);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  config.warmup_refs = (warmup == ~0ULL) ? refs / 3 : warmup;

  try {
    if (engine_mode) {
      // Functional-engine mode. A full-crypto region is far more
      // expensive to initialize than the timing model's, so the default
      // size drops to 16MB unless the caller sized it.
      if (!protected_mb_given) config.protected_bytes = 16ULL << 20;
      if (threads == 0) threads = 1;
      // SecureMemory has no internal locking; never drive it from more
      // than one thread.
      if (engine_kind == EngineKind::kPlain) threads = 1;
      return run_functional_engine(config, profile_by_name(workload),
                                   engine_kind, shards, threads, refs,
                                   dump_stats, metrics_json, tree_cache_kb,
                                   delta_save_path);
    }
    const WorkloadProfile& profile = profile_by_name(workload);
    SystemSimulator sim(config, profile);
    const SimResult result =
        trace_path.empty()
            ? sim.run(refs)
            : sim.run_trace(load_trace_file(trace_path, config.cores));

    const std::string source =
        trace_path.empty() ? workload : workload + " (trace: " + trace_path + ")";
    const std::string protection =
        config.protection == Protection::kNone
            ? "none"
            : std::string(counter_scheme_kind_name(config.scheme)) + " + " +
                  (config.engine.mac_placement == MacPlacement::kEccLane
                       ? "MAC-in-ECC"
                       : "separate MACs");
    std::printf("workload        %s\n", source.c_str());
    std::printf("protection      %s\n", protection.c_str());
    std::printf("cycles          %llu\n",
                static_cast<unsigned long long>(result.cycles));
    std::printf("instructions    %llu\n",
                static_cast<unsigned long long>(result.instructions));
    std::printf("IPC             %.4f\n", result.ipc);
    std::printf("dram reads      %llu\n",
                static_cast<unsigned long long>(result.dram_reads));
    std::printf("dram writes     %llu\n",
                static_cast<unsigned long long>(result.dram_writes));
    std::printf("re-encryptions  %llu\n",
                static_cast<unsigned long long>(result.reencryptions));
    if (dump_stats) {
      std::printf("\n--- statistics registry ---\n");
      sim.stats().dump(std::cout);
    }
    if (!metrics_json.empty() &&
        !write_metrics_json(sim.stats(), metrics_json))
      return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
