// secmem-tracegen — record a synthetic workload profile into a trace file
// replayable by secmem-sim --trace (or any external consumer of the
// format documented in sim/trace.h).
//
//   secmem-tracegen --workload dedup --refs 50000 --seed 7 > dedup.trace
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "sim/trace.h"
#include "sim/workload.h"

int main(int argc, char** argv) {
  using namespace secmem;
  std::string workload = "canneal";
  std::uint64_t refs = 10000;
  std::uint64_t seed = 42;
  unsigned cores = 4;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload = value();
    } else if (arg == "--refs") {
      refs = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--cores") {
      cores = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--workload NAME] [--refs N] [--seed N] "
                   "[--cores N]  > out.trace\n",
                   argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  try {
    const WorkloadProfile& profile = profile_by_name(workload);
    CoreTraces traces(cores);
    for (unsigned core = 0; core < cores; ++core) {
      WorkloadGenerator generator(profile, core, seed);
      traces[core].reserve(refs);
      for (std::uint64_t i = 0; i < refs; ++i)
        traces[core].push_back(generator.next());
    }
    save_trace(std::cout, traces);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
