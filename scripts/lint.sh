#!/usr/bin/env bash
# Run secmem-lint over the tree with the checked-in allowlist.
# Builds the linter first if the build directory doesn't have it yet.
#
#   scripts/lint.sh            # lint src/, tools/, bench/, examples/, tests/
#   scripts/lint.sh --json     # same findings, machine-readable
#   BUILD_DIR=build-foo scripts/lint.sh
#
# Always runs with --check-allowlist: a suppression that no longer
# suppresses anything fails the run, so the allowlist can only shrink.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
LINT="$BUILD_DIR/tools/secmem-lint"

if [[ ! -x "$LINT" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target secmem-lint -j >/dev/null
fi

exec "$LINT" --root . --allowlist tools/secmem-lint.allow \
  --check-allowlist "$@"
