#!/usr/bin/env bash
# Tier-1 CI gate: build + full ctest on the default preset, then the
# ASan+UBSan and TSan presets (TSan runs the concurrency suites), then a
# metrics-export smoke check — every bench-style JSON dump must parse.
# Any sanitizer report fails the run (halt_on_error).
#
#   scripts/ci.sh            # everything
#   scripts/ci.sh --fast     # default preset only (skip sanitizers)
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[ "${1:-}" = "--fast" ] && fast=1

echo "=== tier 1: secmem-lint (repository invariants) ==="
# First, before any test leg: the linter builds in seconds and runs in
# milliseconds, so invariant violations (variable-time compares, naked
# mutexes, unverified snapshot applies, discarded Status, undocumented
# env knobs, stale allowlist entries) fail the run before the expensive
# presets start — see tools/lint/ and ARCHITECTURE.md "Static analysis
# & enforced invariants".
scripts/lint.sh

echo "=== tier 1: default preset build + ctest ==="
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --preset default -j "$(nproc)"

echo "=== tier 1: portable crypto kernels (SECMEM_FORCE_PORTABLE=1) ==="
# Same binaries, dispatch pinned to the scalar reference kernels — the
# path CI machines without AES-NI/PCLMULQDQ (and non-x86 ports) take.
SECMEM_FORCE_PORTABLE=1 ctest --preset default -j "$(nproc)"

echo "=== tier 1: eager tree walks (SECMEM_TREE_CACHE=0) ==="
# Same binaries with the verified-frontier tree cache kill-switched, so
# the eager BonsaiTree path stays covered end to end (the default run
# above covers the cached path).
SECMEM_TREE_CACHE=0 ctest --preset default -j "$(nproc)"

echo "=== tier 1: exclusive-only locking (SECMEM_SEQLOCK=0) ==="
# Same binaries with the seqlock shared-read fast path kill-switched:
# every verified read takes the exclusive lock, the pre-seqlock
# behavior (the default run above covers the shared/optimistic paths).
SECMEM_SEQLOCK=0 ctest --preset default -j "$(nproc)"

echo "=== tier 1: scalar snapshot pipeline (SECMEM_BATCH_SNAPSHOT=0) ==="
# Same binaries with the streaming snapshot pipeline kill-switched:
# per-element save/restore I/O and update_leaf-per-line tree rebuild,
# the scalar reference the batched images must stay bit-identical to.
SECMEM_BATCH_SNAPSHOT=0 ctest --preset default -j "$(nproc)"

echo "=== tier 1: full-image snapshots only (SECMEM_DELTA_SNAPSHOT=0) ==="
# Same binaries with delta snapshots kill-switched: save_delta emits
# full images and restore_delta only accepts them — the pre-delta
# posture every delta-aware caller must degrade to cleanly.
SECMEM_DELTA_SNAPSHOT=0 ctest --preset default -j "$(nproc)"

echo "=== tier 1: scalar group re-encryption (SECMEM_BATCH_REENC=0) ==="
# Same binaries with the batched re-encryption kernels kill-switched:
# group drains re-encrypt block by block through the scalar path the
# SIMD kernels must stay bit-identical to.
SECMEM_BATCH_REENC=0 ctest --preset default -j "$(nproc)"

if [ "$fast" -eq 0 ]; then
  echo "=== ASan + UBSan ==="
  ASAN_OPTIONS="halt_on_error=1:abort_on_error=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    bash -c 'cmake --preset asan &&
             cmake --build --preset asan -j "$(nproc)" &&
             ctest --preset asan -j "$(nproc)"'

  echo "=== TSan (concurrency suites) ==="
  TSAN_OPTIONS="halt_on_error=1" \
    bash -c 'cmake --preset tsan &&
             cmake --build --preset tsan -j "$(nproc)" &&
             ctest --preset tsan -j "$(nproc)"'

  # Clang-only legs, gated on availability: containers that ship only gcc
  # still pass tier 1; machines with clang get the full static analysis.
  if command -v clang++ >/dev/null 2>&1; then
    echo "=== clang thread-safety analysis (tidy preset) ==="
    # -Wthread-safety -Werror=thread-safety over the whole tree: a
    # GUARDED_BY access outside its MutexLock is a build failure here.
    cmake --preset tidy
    cmake --build --preset tidy -j "$(nproc)"
    ctest --preset tidy -j "$(nproc)"

    if command -v clang-tidy >/dev/null 2>&1; then
      echo "=== clang-tidy (bugprone, concurrency, performance) ==="
      git ls-files 'src/**/*.cc' | \
        xargs -P "$(nproc)" -n 8 clang-tidy -p build-tidy --quiet
    else
      echo "--- clang-tidy not installed; skipping (gate runs where available)"
    fi
  else
    echo "--- clang++ not installed; skipping thread-safety + clang-tidy legs"
  fi
fi

echo "=== metrics JSON smoke ==="
# A quick engine run through the CLI plus one bench; both exports must be
# valid JSON (python3 is the only parser dependency).
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./build/tools/secmem-sim --engine sharded --refs 2000 \
  --metrics-json "$tmp/engine.metrics.json" >/dev/null
# Benches default their export to the build tree; pin it into $tmp here.
SECMEM_METRICS_JSON="$tmp/fig1_storage.metrics.json" \
  ./build/bench/bench_fig1_storage >/dev/null
# Small-args smoke of the re-encryption bench: exercises the batched vs
# scalar group-drain phase end to end and must export valid metrics.
SECMEM_METRICS_JSON="$tmp/table2_reencryption.metrics.json" \
  ./build/bench/bench_table2_reencryption 20000 1 >/dev/null
# Snapshot-pipeline smoke: one save/restore pass per engine and mode
# (batched and the SECMEM_BATCH_SNAPSHOT=0 reference both run inside the
# bench) with the metrics export validated like the rest. The delta
# phase must report nonzero delta rows for both engines.
SECMEM_METRICS_JSON="$tmp/snapshot.metrics.json" \
  ./build/bench/bench_snapshot --quick --out "$tmp/snapshot.bench.json" \
  >/dev/null
python3 - "$tmp/snapshot.bench.json" <<'EOF'
import json, sys
results = json.load(open(sys.argv[1]))["results"]
for row in results:
    for key in ("delta_bytes", "delta_save_gibps", "delta_restore_gibps"):
        assert row[key] > 0, f"{row['engine']}/{row['mode']}: {key} is zero"
    assert 0 < row["delta_bytes"] < row["image_bytes"], \
        f"{row['engine']}/{row['mode']}: delta not smaller than full image"
print(f"ok: delta rows in {sys.argv[1]} ({len(results)} samples)")
EOF
for f in "$tmp"/*.metrics.json; do
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$f"
  echo "ok: $f"
done

echo "CI PASSED"
