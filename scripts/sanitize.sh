#!/usr/bin/env bash
# Sanitized builds + test runs.
#
#   scripts/sanitize.sh asan [ctest args...]   # AddressSanitizer + UBSan
#   scripts/sanitize.sh tsan [ctest args...]   # ThreadSanitizer
#
# With no extra ctest args, tsan runs the concurrency suites (the sharded
# engine stress tests and the ConcurrentSecureMemory tests) and asan runs
# everything. Extra args are passed to ctest verbatim, e.g.:
#   scripts/sanitize.sh tsan -R ShardedSecureMemoryStress
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-asan}"
shift || true

case "$mode" in
  asan)
    sanitizers="address,undefined"
    dir=build-asan
    default_args=()
    ;;
  tsan)
    sanitizers="thread"
    dir=build-tsan
    default_args=(-R 'Sharded|Concurrent')
    ;;
  *)
    echo "usage: $0 [asan|tsan] [ctest args...]" >&2
    exit 2
    ;;
esac

cmake -B "$dir" -S . -DSECMEM_SANITIZE="$sanitizers" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$dir" -j "$(nproc)"
if [ "$#" -gt 0 ]; then
  default_args=("$@")
fi
(cd "$dir" && ctest --output-on-failure "${default_args[@]}")
