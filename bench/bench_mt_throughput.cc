// Multithreaded throughput scaling: the single-mutex facade vs the
// sharded engine (and its batch API), at 1/2/4/8 threads.
//
// Every read is the real datapath — AES-CTR keystream, Carter-Wegman
// verify, Bonsai counter authentication — so the crypto dominates and
// the experiment isolates what the ISSUE targets: whether the locking
// architecture lets threads do that work in parallel. Results are
// emitted as JSON (stdout + a *.bench.json file, git-ignored) so CI can
// trend them.
//
// A hot-set phase runs first: a single-threaded plain engine re-reading a
// small working set, with the verified-frontier tree cache off (eager
// root-reaching walks) vs on (walks truncate at the frontier; hot counter
// lines verify by compare). This isolates the tree-walk cost the cache
// removes, the functional analog of the paper's metadata-cache argument.
//
// A final 95/5 read-mostly phase compares the sharded engine's seqlock
// shared-read fast path against the same engine constructed with
// SECMEM_SEQLOCK=0 (every read on the exclusive side, the pre-seqlock
// behavior) — what reader/writer locking buys when readers dominate.
//
//   bench_mt_throughput [--mib N] [--shards N] [--reads-per-thread N]
//                       [--hot-mib N] [--hot-blocks N] [--hot-reads N]
//                       [--out FILE]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_metrics.h"
#include "common/rng.h"
#include "engine/concurrent.h"
#include "engine/sharded_memory.h"

namespace {

using namespace secmem;

struct Sample {
  std::string engine;
  unsigned threads;
  std::uint64_t total_reads;
  double seconds;
  double ops_per_sec;
};

/// Fan `threads` workers out over `engine`, each issuing
/// `reads_per_thread` verified single-block reads at uniformly random
/// block ids; returns wall seconds for the whole fan-out.
template <typename Engine>
double timed_reads(Engine& engine, unsigned threads,
                   std::uint64_t reads_per_thread, std::atomic<int>& bad) {
  const std::uint64_t blocks = engine.num_blocks();
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&engine, &bad, blocks, reads_per_thread, t] {
      Xoshiro256 rng(0xbe7c + t);
      for (std::uint64_t i = 0; i < reads_per_thread; ++i) {
        const auto result = engine.read_block(rng.next_below(blocks));
        if (result.status != ReadStatus::kOk) ++bad;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// Read-mostly 95/5 mix — the seqlock fast path's target scenario: 95%
/// verified single-block reads (shared lock side) with a 5% sprinkle of
/// writes so shard generations keep moving and the exclusive side stays
/// exercised. Reads check status only; concurrent writers make content
/// nondeterministic by design.
template <typename Engine>
double timed_mixed(Engine& engine, unsigned threads,
                   std::uint64_t ops_per_thread, std::atomic<int>& bad) {
  const std::uint64_t blocks = engine.num_blocks();
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&engine, &bad, blocks, ops_per_thread, t] {
      Xoshiro256 rng(0x95f5 + t);
      DataBlock block{};
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
        if (i % 20 == 19) {
          block[0] = static_cast<std::uint8_t>(i);
          if (engine.write_block(rng.next_below(blocks), block) != Status::kOk)
            ++bad;
        } else {
          const auto result = engine.read_block(rng.next_below(blocks));
          if (result.status != ReadStatus::kOk) ++bad;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// Same workload through the batch API: 64-block shard-sorted batches,
/// one lock acquisition per shard per batch.
double timed_batch_reads(ShardedSecureMemory& engine, unsigned threads,
                         std::uint64_t reads_per_thread,
                         std::atomic<int>& bad) {
  const std::uint64_t blocks = engine.num_blocks();
  constexpr std::uint64_t kBatch = 64;
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&engine, &bad, blocks, reads_per_thread, t] {
      Xoshiro256 rng(0xba7c + t);
      std::vector<std::uint64_t> batch(kBatch);
      for (std::uint64_t done = 0; done < reads_per_thread;
           done += kBatch) {
        for (std::uint64_t& b : batch) b = rng.next_below(blocks);
        for (const auto& result : engine.read_blocks(batch))
          if (result.status != ReadStatus::kOk) ++bad;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// Single-threaded hot-set reads on a plain engine: `reads` verified
/// reads uniformly over the first `hot_blocks` blocks.
double timed_hot_reads(SecureMemory& engine, std::uint64_t hot_blocks,
                       std::uint64_t reads, std::atomic<int>& bad) {
  Xoshiro256 rng(0x407);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < reads; ++i) {
    const auto result = engine.read_block(rng.next_below(hot_blocks));
    if (result.status != ReadStatus::kOk) ++bad;
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

void emit_json(std::FILE* out, const std::vector<Sample>& samples,
               std::uint64_t mib, unsigned shards,
               std::uint64_t reads_per_thread) {
  std::fprintf(out,
               "{\n  \"bench\": \"mt_throughput\",\n"
               "  \"region_mib\": %llu,\n  \"shards\": %u,\n"
               "  \"reads_per_thread\": %llu,\n  \"results\": [\n",
               static_cast<unsigned long long>(mib), shards,
               static_cast<unsigned long long>(reads_per_thread));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"engine\": \"%s\", \"threads\": %u, "
                 "\"total_reads\": %llu, \"seconds\": %.4f, "
                 "\"ops_per_sec\": %.0f}%s\n",
                 s.engine.c_str(), s.threads,
                 static_cast<unsigned long long>(s.total_reads), s.seconds,
                 s.ops_per_sec, i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t mib = 8;
  unsigned shards = 8;
  std::uint64_t reads_per_thread = 20000;
  // Hot-set phase defaults: a 32 MiB region is deep enough (3 off-chip
  // MAC levels with the 3 KB on-chip root budget) that eager walks carry
  // real cost, and 1024 hot blocks = 16 delta counter lines — the whole
  // frontier fits in the default 8 KB cache.
  std::uint64_t hot_mib = 32;
  std::uint64_t hot_blocks = 1024;
  std::uint64_t hot_reads = 200000;
  std::string out_path = "mt_throughput.bench.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--mib") {
      mib = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--shards") {
      shards = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--reads-per-thread") {
      reads_per_thread = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--hot-mib") {
      hot_mib = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--hot-blocks") {
      hot_blocks = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--hot-reads") {
      hot_reads = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--out") {
      out_path = value();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--mib N] [--shards N] "
                   "[--reads-per-thread N] [--hot-mib N] [--hot-blocks N] "
                   "[--hot-reads N] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  SecureMemoryConfig config;
  config.size_bytes = mib << 20;
  std::optional<ConcurrentSecureMemory> single_mem;
  std::optional<ShardedSecureMemory> sharded_mem;
  std::optional<ShardedSecureMemory> sharded_excl_mem;
  try {
    single_mem.emplace(config);
    sharded_mem.emplace(config, shards);
    // Exclusive-lock baseline for the 95/5 phase: identical engine, but
    // constructed with the seqlock kill switch thrown, so every read
    // takes the writer lock — the pre-seqlock behavior.
    const char* prev = std::getenv("SECMEM_SEQLOCK");
    const std::string saved = prev ? prev : "";
    setenv("SECMEM_SEQLOCK", "0", 1);
    sharded_excl_mem.emplace(config, shards);
    if (prev)
      setenv("SECMEM_SEQLOCK", saved.c_str(), 1);
    else
      unsetenv("SECMEM_SEQLOCK");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  ConcurrentSecureMemory& single = *single_mem;
  ShardedSecureMemory& sharded = *sharded_mem;
  ShardedSecureMemory& sharded_excl = *sharded_excl_mem;

  std::atomic<int> bad{0};

  // Touch a spread of blocks so reads hit written (non-zero) lines too.
  Xoshiro256 rng(7);
  for (unsigned i = 0; i < 512; ++i) {
    DataBlock block{};
    block[0] = static_cast<std::uint8_t>(i);
    const std::uint64_t target = rng.next_below(single.num_blocks());
    bad += single.write_block(target, block) != Status::kOk;
    bad += sharded.write_block(target, block) != Status::kOk;
    bad += sharded_excl.write_block(target, block) != Status::kOk;
  }

  std::vector<Sample> samples;

  // Phase 0: hot-set reads, eager vs verified-frontier, single thread.
  {
    SecureMemoryConfig hot_config;
    hot_config.size_bytes = hot_mib << 20;
    SecureMemoryConfig eager_config = hot_config;
    eager_config.tree_cache_kb = 0;
    SecureMemory eager(eager_config);
    SecureMemory cached(hot_config);
    hot_blocks = std::min(hot_blocks, eager.num_blocks());
    DataBlock block{};
    for (std::uint64_t b = 0; b < hot_blocks; ++b) {
      block[0] = static_cast<std::uint8_t>(b);
      bad += eager.write_block(b, block) != Status::kOk;
      bad += cached.write_block(b, block) != Status::kOk;
    }
    const double eager_s = timed_hot_reads(eager, hot_blocks, hot_reads, bad);
    const double cached_s =
        timed_hot_reads(cached, hot_blocks, hot_reads, bad);
    samples.push_back(
        {"hot-eager", 1, hot_reads, eager_s, hot_reads / eager_s});
    samples.push_back(
        {"hot-cached", 1, hot_reads, cached_s, hot_reads / cached_s});
    const EngineStats cs = cached.stats();
    std::fprintf(stderr,
                 "hot set (%llu blocks, %llu MiB region): eager %.0f ops/s "
                 "| cached %.0f ops/s (%.2fx; %llu cache hits)\n",
                 static_cast<unsigned long long>(hot_blocks),
                 static_cast<unsigned long long>(hot_mib),
                 hot_reads / eager_s, hot_reads / cached_s,
                 eager_s / cached_s,
                 static_cast<unsigned long long>(cs.tree_cache_hits));
  }

  const unsigned thread_counts[] = {1, 2, 4, 8};
  for (const unsigned threads : thread_counts) {
    const std::uint64_t total = threads * reads_per_thread;
    const double base_s = timed_reads(single, threads, reads_per_thread, bad);
    samples.push_back(
        {"single-mutex", threads, total, base_s, total / base_s});
    const double shard_s =
        timed_reads(sharded, threads, reads_per_thread, bad);
    samples.push_back(
        {"sharded", threads, total, shard_s, total / shard_s});
    const double batch_s =
        timed_batch_reads(sharded, threads, reads_per_thread, bad);
    samples.push_back(
        {"sharded-batch", threads, total, batch_s, total / batch_s});
    std::fprintf(stderr,
                 "%u thread(s): single %.0f ops/s | sharded %.0f ops/s "
                 "(%.2fx) | batch %.0f ops/s (%.2fx)\n",
                 threads, total / base_s, total / shard_s,
                 base_s / shard_s, total / batch_s, base_s / batch_s);
  }

  // Phase 2: the 95/5 read-mostly mix, seqlock shared reads vs the
  // exclusive-lock baseline on the SAME sharded geometry.
  for (const unsigned threads : thread_counts) {
    const std::uint64_t total = threads * reads_per_thread;
    const double excl_s =
        timed_mixed(sharded_excl, threads, reads_per_thread, bad);
    samples.push_back(
        {"mixed95-exclusive", threads, total, excl_s, total / excl_s});
    const double seq_s = timed_mixed(sharded, threads, reads_per_thread, bad);
    samples.push_back(
        {"mixed95-seqlock", threads, total, seq_s, total / seq_s});
    std::fprintf(stderr,
                 "95/5 mix, %u thread(s): exclusive %.0f ops/s | "
                 "seqlock %.0f ops/s (%.2fx)\n",
                 threads, total / excl_s, total / seq_s, excl_s / seq_s);
  }
  if (bad.load() != 0) {
    std::fprintf(stderr, "FAIL: %d reads did not verify\n", bad.load());
    return 1;
  }

  // Unified observability export: the engines' own metrics (lock-free
  // per-shard cells aggregated on read) plus the throughput samples, in
  // the same registry-JSON format every other bench emits.
  secmem_bench::MetricsDump metrics("mt_throughput");
  single.publish_metrics(metrics.registry(), "single");
  sharded.publish_metrics(metrics.registry(), "sharded");
  for (const Sample& s : samples)
    metrics.registry()
        .scalar(metric_path({"bench", s.engine,
                             "t" + std::to_string(s.threads), "ops_per_sec"}))
        .sample(s.ops_per_sec);
  if (!metrics.write()) return 1;

  emit_json(stdout, samples, mib, shards, reads_per_thread);
  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f) {
      emit_json(f, samples, mib, shards, reads_per_thread);
      std::fclose(f);
      std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }
  }
  return 0;
}
