// §4.2 design-space sweep: delta width vs storage vs re-encryption rate.
//
// The paper fixes 7-bit deltas / 4KB groups ("to test the effectiveness
// of our algorithms under low storage overheads") and notes that several
// width/group combinations keep the one-read decode property. This bench
// sweeps that space over two contrasting writeback streams — a skewed
// whole-group stream (facesim-like, re-encode friendly) and a hot-spot
// stream (canneal-like, Δmin = 0) — so the storage/wear trade-off behind
// the paper's choice is visible.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_metrics.h"
#include "common/rng.h"
#include "counters/generic_delta.h"

namespace {

using namespace secmem;

constexpr BlockIndex kBlocks = 4096;

/// Skewed whole-group writes: every block of a group written, rates
/// spanning [0.8, 1.0] — Δmin re-encoding applies.
std::uint64_t run_skewed(GenericDeltaCounters& scheme, std::uint64_t writes) {
  Xoshiro256 rng(11);
  const unsigned group = scheme.blocks_per_group();
  std::uint64_t pos = 0;
  for (std::uint64_t i = 0; i < writes;) {
    const BlockIndex block = pos % (4 * group);  // 4 hot groups
    pos++;
    std::uint64_t state = block * 0x9E3779B97F4A7C15ULL;
    const double rate = 0.2 * ((splitmix64(state) & 0xFF) / 255.0);
    if (rng.chance(rate)) continue;  // this block skips this pass
    scheme.on_write(block);
    ++i;
  }
  return scheme.reencryptions();
}

/// Hot-spot writes: 4 blocks hammered, neighbours cold — Δmin pins at 0,
/// so only the delta width itself defers re-encryption.
std::uint64_t run_hotspot(GenericDeltaCounters& scheme,
                          std::uint64_t writes) {
  Xoshiro256 rng(13);
  for (std::uint64_t i = 0; i < writes; ++i)
    scheme.on_write(rng.next_below(4) * scheme.blocks_per_group());
  return scheme.reencryptions();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t writes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000000;

  std::printf(
      "=== $4.2 design space: delta width vs storage vs re-encryption "
      "(%llu writes/stream) ===\n\n",
      static_cast<unsigned long long>(writes));
  std::printf("%-6s %-8s %-12s %-12s | %16s %16s\n", "width",
              "group", "bits/block", "overhead", "skewed re-enc",
              "hot-spot re-enc");

  secmem_bench::MetricsDump metrics("delta_geometry");
  for (unsigned width : {4u, 5u, 6u, 7u, 8u, 9u, 10u, 12u, 14u, 16u}) {
    GenericDeltaCounters skewed(kBlocks, width);
    GenericDeltaCounters hotspot(kBlocks, width);
    const std::uint64_t re_skewed = run_skewed(skewed, writes);
    const std::uint64_t re_hot = run_hotspot(hotspot, writes);
    const std::string base = "width" + std::to_string(width);
    secmem::StatRegistry& reg = metrics.registry();
    reg.counter(base + ".skewed_reencryptions").inc(re_skewed);
    reg.counter(base + ".hotspot_reencryptions").inc(re_hot);
    reg.scalar(base + ".bits_per_block").sample(skewed.bits_per_block());
    std::printf("%-6u %-8u %-12.3f %-11.2f%% | %16llu %16llu%s\n", width,
                skewed.blocks_per_group(), skewed.bits_per_block(),
                100.0 * skewed.bits_per_block() / 512.0,
                static_cast<unsigned long long>(re_skewed),
                static_cast<unsigned long long>(re_hot),
                width == 7 ? "   <- paper's point" : "");
  }

  std::printf(
      "\nthe knee: below ~6 bits, re-encryption wear explodes; above ~8,\n"
      "storage grows with little wear left to save. 7-bit deltas / 64-block"
      "\ngroups sit at the knee — the paper's §4.2 choice.\n");
  return 0;
}
