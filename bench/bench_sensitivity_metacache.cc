// Sensitivity: metadata-cache size vs MAC placement (paper §3.1).
//
// The paper argues MAC-in-ECC has a second-order benefit beyond the saved
// DRAM transaction: MACs stored in the ECC lane never occupy the shared
// 32KB counter/MAC/tree cache, "freeing up on-chip tree cache space".
// That effect should grow as the metadata cache shrinks — the separate-MAC
// baseline loses cache capacity to MAC lines exactly when capacity is
// scarce. This bench sweeps the cache size for both placements on the
// most metadata-hungry workload and reports normalized IPC.
#include <cstdio>
#include <cstdlib>

#include "bench_metrics.h"
#include "sim/system_sim.h"

namespace {
using namespace secmem;

double run_ipc(unsigned metacache_bytes, MacPlacement placement,
               Protection protection, const WorkloadProfile& profile,
               std::uint64_t refs, StatRegistry& collect,
               const std::string& prefix) {
  SystemConfig config;
  config.protection = protection;
  config.scheme = CounterSchemeKind::kMonolithic56;  // isolate the MAC knob
  config.engine.mac_placement = placement;
  config.engine.metadata_cache = CacheConfig{metacache_bytes, 8, 64};
  config.warmup_refs = refs / 3;
  SystemSimulator sim(config, profile);
  const double ipc = sim.run(refs).ipc;
  collect.merge_from(sim.stats(), prefix);
  collect.scalar(prefix + ".ipc").sample(ipc);
  return ipc;
}
}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t refs =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60000;
  const WorkloadProfile& profile = profile_by_name("canneal");

  std::printf(
      "=== Sensitivity ($3.1): metadata cache size vs MAC placement "
      "(canneal, %llu refs/core) ===\n\n",
      static_cast<unsigned long long>(refs));
  std::printf("%-12s %14s %14s %16s\n", "cache size", "separate MAC",
              "MAC-in-ECC", "ECC-lane gain");

  secmem_bench::MetricsDump metrics("sensitivity_metacache");
  StatRegistry& reg = metrics.registry();
  const double base = run_ipc(32 * 1024, MacPlacement::kEccLane,
                              Protection::kNone, profile, refs, reg,
                              "baseline");
  for (const unsigned kb : {8u, 16u, 32u, 64u, 128u}) {
    const std::string tag = std::to_string(kb) + "kb";
    const double separate =
        run_ipc(kb * 1024, MacPlacement::kSeparate, Protection::kEncrypted,
                profile, refs, reg, tag + ".separate");
    const double ecc =
        run_ipc(kb * 1024, MacPlacement::kEccLane, Protection::kEncrypted,
                profile, refs, reg, tag + ".ecc_lane");
    std::printf("%8uKB %13.3f %14.3f %15.1f%%%s\n", kb, separate / base,
                ecc / base, 100.0 * (ecc - separate) / separate,
                kb == 32 ? "   <- paper Table 1" : "");
  }
  std::printf(
      "\nthe ECC-lane advantage persists at every size: the extra MAC\n"
      "transaction dominates when the cache is small, and as capacity\n"
      "grows the ECC-lane engine converts ALL of it into counter/tree\n"
      "reach while the baseline spends a share caching MAC lines.\n");
  return 0;
}
