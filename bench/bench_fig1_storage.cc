// Figure 1 reproduction: storage overhead of authenticated memory
// encryption, baseline vs the paper's optimizations.
//
// Prints, for a 512MB protected region, the counter / MAC / integrity-tree
// overhead (as % of protected data) of:
//   - SGX-style baseline: 56-bit counters + 56-bit MACs + Bonsai tree
//   - split counters [13] + separate MACs
//   - delta counters, separate MACs (counter optimization alone)
//   - delta counters + MAC-in-ECC (the paper: ~22% -> ~2%)
#include <cstdio>
#include <memory>
#include <string>

#include "bench_metrics.h"
#include "counters/counter_scheme.h"
#include "tree/bonsai_geometry.h"
#include "engine/layout.h"

namespace {

struct Variant {
  const char* name;
  const char* slug;  ///< metrics key: fig1.<slug>.*
  secmem::CounterSchemeKind scheme;
  bool separate_macs;
};

void print_row(const Variant& variant, secmem::StatRegistry& reg) {
  using namespace secmem;
  const std::uint64_t data_bytes = 512ULL << 20;
  const auto scheme = make_counter_scheme(variant.scheme, data_bytes / 64);

  LayoutParams params;
  params.data_bytes = data_bytes;
  params.blocks_per_counter_line = scheme->blocks_per_storage_line();
  params.separate_macs = variant.separate_macs;
  params.counter_bits_per_block = scheme->bits_per_block();
  const SecureRegionLayout layout(params);

  const std::string base = std::string("fig1.") + variant.slug;
  reg.scalar(base + ".counter_pct").sample(layout.counter_overhead_pct());
  reg.scalar(base + ".mac_pct").sample(layout.mac_overhead_pct());
  reg.scalar(base + ".tree_pct").sample(layout.tree_overhead_pct());
  reg.scalar(base + ".total_pct").sample(layout.metadata_overhead_pct());
  reg.counter(base + ".offchip_levels").inc(layout.tree().offchip_levels());

  std::printf("%-34s %8.2f%% %7.2f%% %7.2f%% %8.2f%%   %u\n", variant.name,
              layout.counter_overhead_pct(), layout.mac_overhead_pct(),
              layout.tree_overhead_pct(), layout.metadata_overhead_pct(),
              layout.tree().offchip_levels());
}

}  // namespace

void print_data_merkle_row() {
  // Pre-Bonsai baseline (Gassend et al. [2]): the Merkle tree hashes the
  // DATA blocks directly, so its leaves are all 8M blocks instead of the
  // counter lines — the observation behind Bonsai Merkle trees is how
  // much smaller the tree gets when only counters need tree protection.
  using namespace secmem;
  const std::uint64_t data_bytes = 512ULL << 20;
  const BonsaiGeometry tree(data_bytes / 64, 3 * 1024);
  const double tree_pct =
      100.0 * static_cast<double>(tree.offchip_tree_bytes()) /
      static_cast<double>(data_bytes);
  const double counter_pct = 100.0 * 56.0 / 512.0;
  std::printf("%-34s %8.2f%% %7.2f%% %7.2f%% %8.2f%%   %u\n",
              "pre-Bonsai: Merkle tree over data", counter_pct, 0.0,
              tree_pct, counter_pct + tree_pct, tree.offchip_levels());
}

int main() {
  std::printf(
      "=== Figure 1: encryption metadata storage overhead "
      "(512MB protected region) ===\n\n");
  std::printf("%-34s %9s %8s %8s %9s   %s\n", "configuration", "counters",
              "MACs", "tree", "total", "tree levels (off-chip)");

  const Variant variants[] = {
      {"baseline: 56-bit ctr + stored MAC", "baseline",
       secmem::CounterSchemeKind::kMonolithic56, true},
      {"split counters [13] + stored MAC", "split_stored_mac",
       secmem::CounterSchemeKind::kSplit, true},
      {"delta ctr + stored MAC", "delta_stored_mac",
       secmem::CounterSchemeKind::kDelta, true},
      {"dual-length delta + stored MAC", "dual_stored_mac",
       secmem::CounterSchemeKind::kDualDelta, true},
      {"delta ctr + MAC-in-ECC (paper)", "delta_mac_ecc",
       secmem::CounterSchemeKind::kDelta, false},
      {"dual-length delta + MAC-in-ECC", "dual_mac_ecc",
       secmem::CounterSchemeKind::kDualDelta, false},
  };
  secmem_bench::MetricsDump metrics("fig1_storage");
  print_data_merkle_row();
  for (const Variant& variant : variants)
    print_row(variant, metrics.registry());

  std::printf(
      "\npaper's headline: baseline ~22%% total -> optimized ~2%% total.\n"
      "(the 12.5%% ECC-DIMM overhead exists in both cases and is excluded,\n"
      " as in the paper; MAC-in-ECC reuses it instead of adding to it.)\n");
  return 0;
}
