// Sensitivity: on-chip SRAM budget -> tree depth -> performance, and
// protected-region size -> metadata overhead (paper Table 1 / §5.1-5.2).
//
// The paper fixes 3KB of on-chip SRAM (5 baseline levels, 4 with delta
// counters). This bench sweeps the SRAM budget to show depth transitions
// and their IPC effect, then sweeps the protected-region size to show how
// the Figure 1 overheads and depths scale.
#include <cstdio>
#include <cstdlib>

#include "bench_metrics.h"
#include "engine/layout.h"
#include "sim/system_sim.h"

namespace {
using namespace secmem;

double run_ipc(std::uint64_t onchip_bytes, CounterSchemeKind scheme,
               const WorkloadProfile& profile, std::uint64_t refs,
               StatRegistry& collect, const std::string& prefix) {
  SystemConfig config;
  config.scheme = scheme;
  config.onchip_bytes = onchip_bytes;
  config.warmup_refs = refs / 3;
  SystemSimulator sim(config, profile);
  const double ipc = sim.run(refs).ipc;
  collect.merge_from(sim.stats(), prefix);
  collect.scalar(prefix + ".ipc").sample(ipc);
  return ipc;
}

unsigned levels_for(std::uint64_t onchip_bytes, unsigned blocks_per_line) {
  LayoutParams params;
  params.onchip_bytes = onchip_bytes;
  params.blocks_per_counter_line = blocks_per_line;
  return SecureRegionLayout(params).tree().offchip_levels();
}
}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t refs =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60000;
  const WorkloadProfile& profile = profile_by_name("canneal");

  std::printf(
      "=== Sensitivity: on-chip SRAM -> off-chip tree depth -> IPC "
      "(512MB region, canneal, %llu refs/core) ===\n\n",
      static_cast<unsigned long long>(refs));
  std::printf("%-10s | %10s %12s | %10s %12s\n", "SRAM", "mono depth",
              "mono IPC", "delta depth", "delta IPC");
  secmem_bench::MetricsDump metrics("sensitivity_tree");
  StatRegistry& reg = metrics.registry();
  for (const std::uint64_t kb : {1ULL, 3ULL, 16ULL, 128ULL, 1024ULL}) {
    const std::uint64_t sram = kb * 1024;
    const std::string tag = std::to_string(kb) + "kb";
    std::printf("%7lluKB | %10u %12.3f | %10u %12.3f%s\n",
                static_cast<unsigned long long>(kb),
                levels_for(sram, 8),
                run_ipc(sram, CounterSchemeKind::kMonolithic56, profile,
                        refs, reg, tag + ".mono"),
                levels_for(sram, 64),
                run_ipc(sram, CounterSchemeKind::kDelta, profile, refs, reg,
                        tag + ".delta"),
                kb == 3 ? "   <- paper Table 1" : "");
  }

  std::printf(
      "\n=== Protected-region scaling (3KB SRAM): Figure 1 overheads by "
      "size ===\n\n");
  std::printf("%-10s | %12s %12s | %12s %12s\n", "region", "mono depth",
              "mono total", "delta depth", "delta total");
  for (const std::uint64_t mb : {64ULL, 128ULL, 512ULL, 2048ULL, 8192ULL}) {
    LayoutParams mono;
    mono.data_bytes = mb << 20;
    mono.blocks_per_counter_line = 8;
    mono.separate_macs = true;
    LayoutParams delta;
    delta.data_bytes = mb << 20;
    delta.blocks_per_counter_line = 64;
    delta.separate_macs = false;
    delta.counter_bits_per_block = 7.875;
    const SecureRegionLayout lm(mono), ld(delta);
    std::printf("%7lluMB | %12u %11.2f%% | %12u %11.2f%%%s\n",
                static_cast<unsigned long long>(mb),
                lm.tree().offchip_levels(), lm.metadata_overhead_pct(),
                ld.tree().offchip_levels(), ld.metadata_overhead_pct(),
                mb == 512 ? "   <- paper" : "");
  }
  std::printf(
      "\nthe ~22%% -> ~2%% gap is size-independent; depth grows one level\n"
      "per 8x region growth for both, with delta always one level "
      "shallower.\n");
  return 0;
}
