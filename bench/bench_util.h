// Shared configuration helpers for the reproduction benches.
#pragma once

#include "sim/system_sim.h"

namespace secmem_bench {

/// System configuration for counter-dynamics experiments (Table 2 and the
/// §4.3 ablation).
///
/// Time-scaling note: the paper runs PARSEC to completion — billions of
/// cycles — under a 10MB LLC; a 7-bit delta/minor counter overflows only
/// after 128 *writebacks* of the same block, i.e. the block must travel
/// through the whole hierarchy 128 times. To observe the same dynamics in
/// a simulation ~10^4x shorter, the hierarchy is scaled down (4KB/16KB/
/// 64KB) along with the workloads' hot regions, preserving the property
/// that matters: hot blocks are evicted (and hence their counters
/// written) between successive visits. Absolute "per 10^9 cycles" rates
/// therefore differ from the paper's; the per-application *ordering* and
/// the split : delta : dual ratios are the reproduced quantities (see
/// EXPERIMENTS.md).
inline secmem::SystemConfig counter_dynamics_config() {
  secmem::SystemConfig config;
  config.protection = secmem::Protection::kNone;  // timing baseline pass
  config.hierarchy.l1 = {4 * 1024, 2, 64};
  config.hierarchy.l2 = {8 * 1024, 4, 64};
  config.hierarchy.l3 = {16 * 1024, 8, 64};
  return config;
}

/// Full paper-Table-1 configuration for the Figure 8 IPC experiments.
inline secmem::SystemConfig figure8_config(
    secmem::Protection protection, secmem::CounterSchemeKind scheme,
    secmem::MacPlacement placement) {
  secmem::SystemConfig config;
  config.protection = protection;
  config.scheme = scheme;
  config.engine.mac_placement = placement;
  return config;  // defaults = paper Table 1
}

}  // namespace secmem_bench
