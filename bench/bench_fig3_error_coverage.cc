// Figure 3 reproduction: error detection/correction coverage of standard
// per-word SEC-DED ECC versus the paper's MAC-based ECC, by fault pattern.
//
// For each fault pattern we inject N random faults into a (64B data,
// 8B ECC/MAC lane) line and run each scheme's full decode machinery:
//   SEC-DED : per-word Hamming decode of the data + the lane's own codes
//   MAC-ECC : 7-bit Hamming repair of the MAC field, then MAC check, then
//             brute-force flip-and-check (<= 2 bits) on the data
// Reported per scheme: corrected / detected-only / undetected(+miscorrect).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_metrics.h"
#include "common/rng.h"
#include "crypto/cw_mac.h"
#include "ecc/fault_model.h"
#include "ecc/flip_and_check.h"
#include "ecc/mac_ecc.h"
#include "ecc/secded72.h"

namespace {

using namespace secmem;

struct Tally {
  int corrected = 0;
  int detected = 0;    // flagged uncorrectable (no silent corruption)
  int undetected = 0;  // accepted wrong data — the failure mode
};

CwMacKey bench_key() {
  CwMacKey key{};
  key.hash_key = 0x243F6A8885A308D3ULL;
  for (int i = 0; i < 16; ++i) key.pad_key[i] = static_cast<std::uint8_t>(i * 17);
  return key;
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 300;

  const CwMac mac(bench_key());
  const MacEccCodec mac_codec;
  const Secded72 secded;
  const FlipAndCheck corrector;
  Xoshiro256 rng(2018);

  const FaultPattern patterns[] = {
      FaultPattern::kSingleBitData,     FaultPattern::kDoubleBitSameWord,
      FaultPattern::kDoubleBitCrossWord, FaultPattern::kTripleBitData,
      FaultPattern::kManyBitSingleWord, FaultPattern::kSingleBitLane,
      FaultPattern::kDoubleBitLane,     FaultPattern::kMixedDataAndLane,
  };

  std::printf(
      "=== Figure 3: fault coverage, standard SEC-DED vs MAC-based ECC "
      "(%d faults/pattern) ===\n\n", trials);
  std::printf("%-26s | %-28s | %-28s\n", "", "standard SEC-DED (72,64)",
              "MAC-ECC (56b MAC + 7b code)");
  std::printf("%-26s | %9s %9s %8s | %9s %9s %8s\n", "fault pattern",
              "corrected", "detected", "missed", "corrected", "detected",
              "missed");

  secmem_bench::MetricsDump metrics("fig3_error_coverage");
  for (const FaultPattern pattern : patterns) {
    Tally secded_tally, mac_tally;
    FaultInjector injector(static_cast<std::uint64_t>(pattern) * 977 + 1);

    for (int t = 0; t < trials; ++t) {
      DataBlock data;
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
      const std::uint64_t addr = (rng.next_below(1 << 20)) * 64;
      const std::uint64_t counter = rng.next_below(1 << 20);
      const std::uint64_t tag = mac.compute(addr, counter, data);

      const Fault fault = injector.sample(pattern);

      // ---- standard SEC-DED path ----
      {
        DataBlock stored = data;
        EccLane lane = secded.encode(stored);
        FaultInjector::apply(fault, stored, lane);
        const auto decoded = secded.decode(stored, lane);
        if (decoded.any_uncorrectable) {
          ++secded_tally.detected;
        } else if (decoded.data == data) {
          ++secded_tally.corrected;
        } else {
          ++secded_tally.undetected;  // silently accepted wrong data
        }
      }

      // ---- MAC-based ECC path ----
      {
        DataBlock stored = data;
        EccLane lane = mac_codec.pack_lane(tag, stored);
        FaultInjector::apply(fault, stored, lane);
        const auto unpacked = mac_codec.unpack_lane(lane);
        if (unpacked.status == MacEccCodec::MacStatus::kUncorrectable) {
          ++mac_tally.detected;
          continue;
        }
        const std::uint64_t pad = mac.pad_for(addr, counter);
        const auto verify = [&](const DataBlock& candidate) {
          return mac.verify_with_pad(pad, candidate, unpacked.mac);
        };
        const auto result = corrector.correct(stored, verify);
        if (result.status == CorrectionStatus::kUncorrectable) {
          ++mac_tally.detected;
        } else if (result.data == data) {
          ++mac_tally.corrected;
        } else {
          ++mac_tally.undetected;
        }
      }
    }

    const std::string base =
        std::string("fig3.") + fault_pattern_name(pattern);
    secmem::StatRegistry& reg = metrics.registry();
    reg.counter(base + ".secded.corrected").inc(secded_tally.corrected);
    reg.counter(base + ".secded.detected").inc(secded_tally.detected);
    reg.counter(base + ".secded.undetected").inc(secded_tally.undetected);
    reg.counter(base + ".mac_ecc.corrected").inc(mac_tally.corrected);
    reg.counter(base + ".mac_ecc.detected").inc(mac_tally.detected);
    reg.counter(base + ".mac_ecc.undetected").inc(mac_tally.undetected);

    std::printf("%-26s | %9d %9d %8d | %9d %9d %8d\n",
                fault_pattern_name(pattern), secded_tally.corrected,
                secded_tally.detected, secded_tally.undetected,
                mac_tally.corrected, mac_tally.detected,
                mac_tally.undetected);
  }

  std::printf(
      "\nexpected shape (paper Fig 3): SEC-DED wins on multi-word spread "
      "singles;\nMAC-ECC wins on double-bit-in-one-word and detects "
      "arbitrary data faults;\nneither silently accepts corrupted data "
      "except SEC-DED on >2-bit word faults.\n");
  return 0;
}
