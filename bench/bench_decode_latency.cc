// §5.3 decode-overhead microbenchmark (google-benchmark).
//
// The paper synthesized the delta decode unit to IBM 45nm and charged
// 2 cycles on every read. Here we benchmark the software model of that
// path — bit-field extraction + reference add — for each counter
// representation, and the serialize path used on counter-line writeback.
// The simulator charges decode_latency_cycles() (2 for delta schemes, 0
// for direct storage), printed alongside for reference.
#include <benchmark/benchmark.h>

#include <array>

#include "bench_gbench_metrics.h"
#include "common/bitops.h"
#include "counters/delta_counter.h"
#include "counters/dual_length_delta.h"
#include "counters/monolithic.h"
#include "counters/split_counter.h"

namespace {

using namespace secmem;

template <typename Scheme>
void prepare(Scheme& scheme) {
  // Mixed state: some growth, one hot block.
  for (BlockIndex b = 0; b < 64; ++b) scheme.on_write(b);
  for (int i = 0; i < 40; ++i) scheme.on_write(5);
}

template <typename Scheme>
void BM_ReadCounter(benchmark::State& state) {
  Scheme scheme(64);
  prepare(scheme);
  state.counters["modeled_cycles"] = scheme.decode_latency_cycles();
  BlockIndex b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.read_counter(b));
    b = (b + 1) & 63;
  }
}
BENCHMARK(BM_ReadCounter<MonolithicCounters>)->Name("BM_ReadCounter/monolithic");
BENCHMARK(BM_ReadCounter<SplitCounters>)->Name("BM_ReadCounter/split");
BENCHMARK(BM_ReadCounter<DeltaCounters>)->Name("BM_ReadCounter/delta7");
BENCHMARK(BM_ReadCounter<DualLengthDeltaCounters>)
    ->Name("BM_ReadCounter/dual_length");

template <typename Scheme>
void BM_SerializeLine(benchmark::State& state) {
  Scheme scheme(64);
  prepare(scheme);
  std::array<std::uint8_t, 64> line{};
  for (auto _ : state) {
    scheme.serialize_line(0, line);
    benchmark::DoNotOptimize(line);
  }
}
BENCHMARK(BM_SerializeLine<MonolithicCounters>)
    ->Name("BM_SerializeLine/monolithic");
BENCHMARK(BM_SerializeLine<SplitCounters>)->Name("BM_SerializeLine/split");
BENCHMARK(BM_SerializeLine<DeltaCounters>)->Name("BM_SerializeLine/delta7");
BENCHMARK(BM_SerializeLine<DualLengthDeltaCounters>)
    ->Name("BM_SerializeLine/dual_length");

template <typename Scheme>
void BM_WritePath(benchmark::State& state) {
  Scheme scheme(1 << 16);
  BlockIndex b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.on_write(b));
    b = (b + 97) & 0xFFFF;  // stride across groups
  }
}
BENCHMARK(BM_WritePath<SplitCounters>)->Name("BM_WritePath/split");
BENCHMARK(BM_WritePath<DeltaCounters>)->Name("BM_WritePath/delta7");
BENCHMARK(BM_WritePath<DualLengthDeltaCounters>)
    ->Name("BM_WritePath/dual_length");

// The raw decode kernel the 2-cycle figure models: extract a 7-bit field
// at an arbitrary offset and add it to the reference.
void BM_RawDeltaDecodeKernel(benchmark::State& state) {
  std::array<std::uint8_t, 64> line{};
  for (unsigned i = 0; i < 64; ++i)
    insert_field(line, 56 + i * 7, 7, (i * 29) & 0x7F);
  insert_field(line, 0, 56, 123456789);
  unsigned slot = 0;
  for (auto _ : state) {
    const std::uint64_t ref = extract_field(line, 0, 56);
    const std::uint64_t delta = extract_field(line, 56 + slot * 7, 7);
    benchmark::DoNotOptimize(ref + delta);
    slot = (slot + 1) & 63;
  }
}
BENCHMARK(BM_RawDeltaDecodeKernel);

}  // namespace

int main(int argc, char** argv) {
  return secmem_bench::run_benchmarks_with_metrics(argc, argv,
                                                   "decode_latency");
}
