// google-benchmark adapter for the unified metrics layer: a console
// reporter that mirrors every completed run into a StatRegistry, and the
// main-function body the microbench suites use in place of
// BENCHMARK_MAIN() so they emit the same `<tag>.metrics.json` export as
// every other bench binary.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_metrics.h"

namespace secmem_bench {

class RegistryReporter : public benchmark::ConsoleReporter {
 public:
  explicit RegistryReporter(secmem::StatRegistry& registry)
      : registry_(registry) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        registry_.counter("bench.errors").inc();
        continue;
      }
      const std::string base = "bench." + run.benchmark_name();
      registry_.scalar(base + ".time_per_iter").sample(run.GetAdjustedRealTime());
      registry_.counter(base + ".iterations").inc(static_cast<std::uint64_t>(run.iterations));
      for (const auto& [name, counter] : run.counters)
        registry_.scalar(base + "." + name).sample(counter.value);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  secmem::StatRegistry& registry_;
};

/// Initialize + run the registered benchmarks, mirroring results into a
/// `<tag>.metrics.json` dump (see MetricsDump).
inline int run_benchmarks_with_metrics(int argc, char** argv,
                                       const std::string& tag) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  MetricsDump metrics(tag);
  RegistryReporter reporter(metrics.registry());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return metrics.write() ? 0 : 1;
}

}  // namespace secmem_bench
