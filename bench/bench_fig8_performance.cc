// Figure 8 reproduction: performance impact of authenticated memory
// encryption across PARSEC-like workloads.
//
// For each memory-sensitive workload, runs the full-system simulator
// (paper Table 1 configuration: 4 OoO cores, 32K/256K/10M caches, 4ch
// DDR3-1600, 512MB protected region, 32KB metadata cache, 3KB on-chip
// tree roots) under:
//   no-enc    : no memory protection (normalization baseline)
//   bmt       : Bonsai-Merkle-tree baseline — 56-bit counters, MACs in a
//               separate region (SGX-like)
//   mac-ecc   : + MAC moved into the ECC lane (paper §3 alone)
//   delta     : + delta counters, MAC still separate (paper §4 alone)
//   optimized : MAC-in-ECC + delta counters (the paper's proposal)
// and prints IPC normalized to no-enc. Paper's shape: optimized recovers
// 1%-28% IPC over bmt; avg ~5%; mac-ecc alone ~3% (up to ~15%).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_metrics.h"
#include "sim/system_sim.h"

namespace {

using namespace secmem;

SystemConfig make_config(Protection protection, CounterSchemeKind scheme,
                         MacPlacement placement, std::uint64_t warmup) {
  SystemConfig config;
  config.protection = protection;
  config.scheme = scheme;
  config.engine.mac_placement = placement;
  config.warmup_refs = warmup;
  return config;  // defaults = paper Table 1
}

double run_ipc(const SystemConfig& config, const WorkloadProfile& profile,
               std::uint64_t refs, StatRegistry& collect,
               const std::string& prefix) {
  SystemSimulator sim(config, profile);
  const double ipc = sim.run(refs).ipc;
  collect.merge_from(sim.stats(), prefix);
  collect.scalar(prefix + ".ipc").sample(ipc);
  return ipc;
}

double run_variant(Protection protection, CounterSchemeKind scheme,
                   MacPlacement placement, const WorkloadProfile& profile,
                   std::uint64_t refs, StatRegistry& collect,
                   const std::string& variant) {
  return run_ipc(make_config(protection, scheme, placement, refs / 3),
                 profile, refs, collect,
                 metric_path({profile.name, variant}));
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  std::uint64_t refs = 150000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv")
      csv = true;
    else
      refs = std::strtoull(argv[i], nullptr, 10);
  }

  // The seven applications the paper's Figure 8 shows (the other four
  // PARSEC apps are cache-resident and unaffected — see §5.2).
  const char* apps[] = {"facesim",      "dedup",    "canneal", "ferret",
                        "fluidanimate", "freqmine", "raytrace"};

  // Per-run sim registries merge here under "<app>.<variant>.*".
  secmem_bench::MetricsDump metrics("fig8_performance");
  StatRegistry& reg = metrics.registry();

  std::printf(
      "=== Figure 8: IPC normalized to unencrypted memory "
      "(%llu refs/core) ===\n\n",
      static_cast<unsigned long long>(refs));
  std::printf("%-14s %8s %9s %8s %10s | %s\n", "workload", "bmt", "mac-ecc",
              "delta", "optimized", "optimized gain over bmt");

  double sum_bmt = 0, sum_opt = 0;
  int n = 0;
  for (const char* app : apps) {
    const WorkloadProfile& profile = profile_by_name(app);
    const double base =
        run_variant(Protection::kNone, CounterSchemeKind::kMonolithic56,
                    MacPlacement::kEccLane, profile, refs, reg, "no_enc");
    const double bmt =
        run_variant(Protection::kEncrypted, CounterSchemeKind::kMonolithic56,
                    MacPlacement::kSeparate, profile, refs, reg, "bmt");
    const double mac_ecc =
        run_variant(Protection::kEncrypted, CounterSchemeKind::kMonolithic56,
                    MacPlacement::kEccLane, profile, refs, reg, "mac_ecc");
    const double delta =
        run_variant(Protection::kEncrypted, CounterSchemeKind::kDelta,
                    MacPlacement::kSeparate, profile, refs, reg, "delta");
    const double optimized =
        run_variant(Protection::kEncrypted, CounterSchemeKind::kDelta,
                    MacPlacement::kEccLane, profile, refs, reg, "optimized");

    if (csv) {
      std::printf("csv,%s,%.4f,%.4f,%.4f,%.4f\n", app, bmt / base,
                  mac_ecc / base, delta / base, optimized / base);
    } else {
      std::printf("%-14s %8.3f %9.3f %8.3f %10.3f | %+.1f%%\n", app,
                  bmt / base, mac_ecc / base, delta / base,
                  optimized / base, 100.0 * (optimized - bmt) / bmt);
    }
    sum_bmt += bmt / base;
    sum_opt += optimized / base;
    ++n;
  }
  std::printf("%-14s %8.3f %38.3f | %+.1f%%\n", "geo-ish mean", sum_bmt / n,
              sum_opt / n, 100.0 * (sum_opt - sum_bmt) / sum_bmt);
  // §5.2's other claim: the cache-resident applications show no
  // measurable impact — verify rather than assert.
  std::printf("\ncache-resident apps (no measurable impact, paper §5.2):\n");
  for (const char* app : {"swaptions", "blackscholes", "bodytrack"}) {
    const WorkloadProfile& profile = profile_by_name(app);
    const double base =
        run_variant(Protection::kNone, CounterSchemeKind::kMonolithic56,
                    MacPlacement::kEccLane, profile, refs / 2, reg, "no_enc");
    const double bmt =
        run_variant(Protection::kEncrypted, CounterSchemeKind::kMonolithic56,
                    MacPlacement::kSeparate, profile, refs / 2, reg, "bmt");
    const double optimized =
        run_variant(Protection::kEncrypted, CounterSchemeKind::kDelta,
                    MacPlacement::kEccLane, profile, refs / 2, reg,
                    "optimized");
    std::printf("%-14s bmt=%.3f optimized=%.3f\n", app, bmt / base,
                optimized / base);
  }
  std::printf(
      "\npaper's shape: optimized >= bmt everywhere; average gain ~5%%, "
      "up to ~28%%;\ncache-resident apps stay at ~1.000 under either "
      "scheme.\n");
  return 0;
}
