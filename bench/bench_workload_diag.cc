// Workload diagnostic: per-profile writeback structure and counter-scheme
// event breakdown. Used to calibrate the PARSEC-like profiles against
// Table 2 (and handy when adding new profiles).
#include <cstdio>
#include <cstdlib>

#include "bench_metrics.h"
#include "counters/delta_counter.h"
#include "counters/dual_length_delta.h"
#include "counters/split_counter.h"
#include "bench_util.h"
#include "sim/system_sim.h"

namespace {
using namespace secmem;
}

int main(int argc, char** argv) {
  const std::uint64_t refs =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000000;

  std::printf("workload diag: %llu refs/core\n\n",
              static_cast<unsigned long long>(refs));
  std::printf("%-14s %10s %11s %9s | %6s %6s %6s | %7s %8s | %9s\n",
              "program", "cycles(M)", "writebacks", "l3missed",
              "splitRE", "dltRE", "dualRE", "dltRST", "dltRENC", "ipc");

  secmem_bench::MetricsDump metrics("workload_diag");
  for (const WorkloadProfile& profile : parsec_profiles()) {
    SystemConfig config = secmem_bench::counter_dynamics_config();

    const BlockIndex blocks = config.protected_bytes / 64;
    SplitCounters split(blocks);
    DeltaCounters delta(blocks);
    DualLengthDeltaCounters dual(blocks);

    SystemSimulator sim(config, profile);
    sim.add_observer(&split);
    sim.add_observer(&delta);
    sim.add_observer(&dual);
    const SimResult result = sim.run(refs);
    metrics.registry().merge_from(sim.stats(), profile.name);
    metrics.registry().scalar(profile.name + ".ipc").sample(result.ipc);

    std::printf(
        "%-14s %10.1f %11llu %9llu | %6llu %6llu %6llu | %7llu %8llu | "
        "%9.3f\n",
        profile.name.c_str(), result.cycles / 1e6,
        static_cast<unsigned long long>(result.dram_writes),
        static_cast<unsigned long long>(
            sim.stats().counter_value("cache.l3.misses")),
        static_cast<unsigned long long>(split.reencryptions()),
        static_cast<unsigned long long>(delta.reencryptions()),
        static_cast<unsigned long long>(dual.reencryptions()),
        static_cast<unsigned long long>(delta.resets()),
        static_cast<unsigned long long>(delta.reencodes()), result.ipc);
  }
  return 0;
}
