// Table 2 reproduction: average block-group re-encryptions per 10^9
// cycles, for split counters [13] vs 7-bit delta vs dual-length delta.
//
// One simulation pass per workload: the cache hierarchy and timing run
// once (counter representation does not change the writeback stream), and
// all three schemes observe the identical L3 writeback sequence. The
// cycle count from the pass normalizes events to "per billion cycles",
// and — like the paper, which averages three full executions — we average
// over three seeds.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_metrics.h"
#include "counters/delta_counter.h"
#include "counters/dual_length_delta.h"
#include "counters/split_counter.h"
#include "bench_util.h"
#include "sim/system_sim.h"

namespace {
using namespace secmem;
}

int main(int argc, char** argv) {
  bool csv = false;
  std::uint64_t refs = 4000000;
  int runs = 3;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") {
      csv = true;
    } else if (positional++ == 0) {
      refs = std::strtoull(argv[i], nullptr, 10);
    } else {
      runs = std::atoi(argv[i]);
    }
  }

  std::printf(
      "=== Table 2: re-encryptions per 10^9 cycles "
      "(avg of %d runs, %llu refs/core) ===\n\n",
      runs, static_cast<unsigned long long>(refs));
  std::printf("%-14s %18s %14s %20s\n", "program", "7-bit split [13]",
              "7-bit delta", "dual-length delta");

  secmem_bench::MetricsDump metrics("table2_reencryption");
  for (const WorkloadProfile& profile : parsec_profiles()) {
    double split_rate = 0, delta_rate = 0, dual_rate = 0;
    for (int run = 0; run < runs; ++run) {
      SystemConfig config = secmem_bench::counter_dynamics_config();
      config.seed = 42 + run;

      const BlockIndex blocks = config.protected_bytes / 64;
      SplitCounters split(blocks);
      DeltaCounters delta(blocks);
      DualLengthDeltaCounters dual(blocks);

      SystemSimulator sim(config, profile);
      sim.add_observer(&split);
      sim.add_observer(&delta);
      sim.add_observer(&dual);
      const SimResult result = sim.run(refs);

      const double scale = 1e9 / static_cast<double>(result.cycles);
      split_rate += static_cast<double>(split.reencryptions()) * scale;
      delta_rate += static_cast<double>(delta.reencryptions()) * scale;
      dual_rate += static_cast<double>(dual.reencryptions()) * scale;
      metrics.registry().merge_from(
          sim.stats(),
          metric_path({profile.name, "run" + std::to_string(run)}));
    }
    StatRegistry& reg = metrics.registry();
    reg.scalar(profile.name + ".split_per_gcycle").sample(split_rate / runs);
    reg.scalar(profile.name + ".delta_per_gcycle").sample(delta_rate / runs);
    reg.scalar(profile.name + ".dual_per_gcycle").sample(dual_rate / runs);
    if (csv) {
      std::printf("csv,%s,%.0f,%.0f,%.0f\n", profile.name.c_str(),
                  split_rate / runs, delta_rate / runs, dual_rate / runs);
    } else {
      std::printf("%-14s %18.0f %14.0f %20.0f\n", profile.name.c_str(),
                  split_rate / runs, delta_rate / runs, dual_rate / runs);
    }
  }

  std::printf(
      "\npaper's shape: delta <= split everywhere (equal when writes are\n"
      "scattered, e.g. canneal); dual-length lowest overall EXCEPT facesim,\n"
      "where concurrent hot delta-groups overflow the 6-bit lanes;\n"
      "swaptions/blackscholes/bodytrack stay at 0 (cache-resident).\n");
  return 0;
}
