// Table 2 reproduction: average block-group re-encryptions per 10^9
// cycles, for split counters [13] vs 7-bit delta vs dual-length delta.
//
// One simulation pass per workload: the cache hierarchy and timing run
// once (counter representation does not change the writeback stream), and
// all three schemes observe the identical L3 writeback sequence. The
// cycle count from the pass normalizes events to "per billion cycles",
// and — like the paper, which averages three full executions — we average
// over three seeds.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "bench_metrics.h"
#include "counters/delta_counter.h"
#include "counters/dual_length_delta.h"
#include "counters/split_counter.h"
#include "bench_util.h"
#include "engine/secure_memory.h"
#include "sim/system_sim.h"

namespace {
using namespace secmem;

/// One engine being overflow-hammered: hot-block writes overflow its
/// 7-bit delta every kDeltaMax+1 writes, forcing a group re-encryption.
struct DrainRig {
  explicit DrainRig(bool batched) {
    const char* prev = std::getenv("SECMEM_BATCH_REENC");
    const std::string saved = prev ? prev : "";
    setenv("SECMEM_BATCH_REENC", batched ? "1" : "0", 1);
    SecureMemoryConfig config;
    config.size_bytes = 4 * 1024 * 1024;
    mem.emplace(config);
    if (prev)
      setenv("SECMEM_BATCH_REENC", saved.c_str(), 1);
    else
      unsetenv("SECMEM_BATCH_REENC");
  }

  /// Populate the hot group (re-encryption must move real ciphertext)
  /// and warm up through the first few overflows.
  bool prime() {
    DataBlock block{};
    for (std::uint64_t b = 0; b < 64; ++b) {
      block[0] = static_cast<std::uint8_t>(b + 1);
      if (mem->write_block(b, block) != Status::kOk) return false;
    }
    for (int i = 0; i < 256; ++i)
      if (mem->write_block(0, block) != Status::kOk) return false;
    mem->reset_stats();
    return true;
  }

  /// Hammer until `delta` more groups have re-encrypted, accumulating
  /// wall time into ns_total.
  bool drive(std::uint64_t delta) {
    DataBlock block{};
    const std::uint64_t target = mem->stats().group_reencryptions + delta;
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t writes = 0;
    while (mem->stats().group_reencryptions < target) {
      block[0] = static_cast<std::uint8_t>(writes);
      if (mem->write_block(0, block) != Status::kOk) return false;
      ++writes;
    }
    ns_total += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    return true;
  }

  /// Time `n` hot-block writes straight after an overflow — the delta is
  /// fresh, so none of them re-encrypts. This is the baseline cost the
  /// per-group number amortizes 127 of.
  bool time_plain_writes(std::uint64_t n) {
    DataBlock block{};
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < n; ++i) {
      block[0] = static_cast<std::uint8_t>(i);
      if (mem->write_block(0, block) != Status::kOk) return false;
    }
    plain_ns += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    plain_writes += n;
    return true;
  }

  double ns_per_group() const {
    // plain_ns covers writes inside a cycle that the next drive() then
    // completes, so the full cost of a group cycle is the sum of both.
    const std::uint64_t g = mem->stats().group_reencryptions;
    return g ? (ns_total + plain_ns) / static_cast<double>(g) : -1;
  }
  /// ns_per_group minus the amortized 127 plain writes: the cost of the
  /// group drain itself (gather + decrypt + re-encrypt + MAC + lane pack
  /// + one counter-line sync for 63 blocks).
  double drain_ns_per_group() const {
    if (!plain_writes) return -1;
    const double w = plain_ns / static_cast<double>(plain_writes);
    return ns_per_group() - 127.0 * w;
  }
  std::uint64_t groups() const { return mem->stats().group_reencryptions; }

  std::optional<SecureMemory> mem;  // non-movable (atomics): emplace in place
  double ns_total = 0;
  double plain_ns = 0;
  std::uint64_t plain_writes = 0;
};

/// Price `target_groups` re-encryptions on the scalar and batched paths,
/// interleaved in short chunks so clock/thermal drift hits both equally.
/// The kDeltaMax non-overflowing writes per group cost the same on both
/// paths and are amortized in, so the reported batched/scalar ratio
/// UNDERSTATES the pure drain-kernel speedup (the microbench
/// BM_CtrKeystreamBatch64 isolates the kernel-level gain).
bool time_group_reencryption(std::uint64_t target_groups, DrainRig& scalar,
                             DrainRig& batched) {
  if (!scalar.prime() || !batched.prime()) return false;
  const std::uint64_t chunk = std::max<std::uint64_t>(target_groups / 16, 1);
  while (scalar.groups() < target_groups) {
    if (!scalar.drive(chunk) || !batched.drive(chunk)) return false;
    if (scalar.groups() >= target_groups) break;
    // Fresh deltas right after an overflow: sample the plain hot-write
    // baseline the drain estimate subtracts (100 < kDeltaMax, so none of
    // these writes re-encrypts; the next drive() completes the cycle).
    if (!scalar.time_plain_writes(100) || !batched.time_plain_writes(100))
      return false;
  }
  return scalar.ns_per_group() > 0 && batched.ns_per_group() > 0;
}
}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  std::uint64_t refs = 4000000;
  int runs = 3;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") {
      csv = true;
    } else if (positional++ == 0) {
      refs = std::strtoull(argv[i], nullptr, 10);
    } else {
      runs = std::atoi(argv[i]);
    }
  }

  std::printf(
      "=== Table 2: re-encryptions per 10^9 cycles "
      "(avg of %d runs, %llu refs/core) ===\n\n",
      runs, static_cast<unsigned long long>(refs));
  std::printf("%-14s %18s %14s %20s\n", "program", "7-bit split [13]",
              "7-bit delta", "dual-length delta");

  secmem_bench::MetricsDump metrics("table2_reencryption");
  for (const WorkloadProfile& profile : parsec_profiles()) {
    double split_rate = 0, delta_rate = 0, dual_rate = 0;
    for (int run = 0; run < runs; ++run) {
      SystemConfig config = secmem_bench::counter_dynamics_config();
      config.seed = 42 + run;

      const BlockIndex blocks = config.protected_bytes / 64;
      SplitCounters split(blocks);
      DeltaCounters delta(blocks);
      DualLengthDeltaCounters dual(blocks);

      SystemSimulator sim(config, profile);
      sim.add_observer(&split);
      sim.add_observer(&delta);
      sim.add_observer(&dual);
      const SimResult result = sim.run(refs);

      const double scale = 1e9 / static_cast<double>(result.cycles);
      split_rate += static_cast<double>(split.reencryptions()) * scale;
      delta_rate += static_cast<double>(delta.reencryptions()) * scale;
      dual_rate += static_cast<double>(dual.reencryptions()) * scale;
      metrics.registry().merge_from(
          sim.stats(),
          metric_path({profile.name, "run" + std::to_string(run)}));
    }
    StatRegistry& reg = metrics.registry();
    reg.scalar(profile.name + ".split_per_gcycle").sample(split_rate / runs);
    reg.scalar(profile.name + ".delta_per_gcycle").sample(delta_rate / runs);
    reg.scalar(profile.name + ".dual_per_gcycle").sample(dual_rate / runs);
    if (csv) {
      std::printf("csv,%s,%.0f,%.0f,%.0f\n", profile.name.c_str(),
                  split_rate / runs, delta_rate / runs, dual_rate / runs);
    } else {
      std::printf("%-14s %18.0f %14.0f %20.0f\n", profile.name.c_str(),
                  split_rate / runs, delta_rate / runs, dual_rate / runs);
    }
  }

  std::printf(
      "\npaper's shape: delta <= split everywhere (equal when writes are\n"
      "scattered, e.g. canneal); dual-length lowest overall EXCEPT facesim,\n"
      "where concurrent hot delta-groups overflow the 6-bit lanes;\n"
      "swaptions/blackscholes/bodytrack stay at 0 (cache-resident).\n");

  // --- functional drain cost: batched vs scalar group re-encryption ----
  // The simulator above counts re-encryption EVENTS; this phase prices
  // one in the functional engine, comparing the crypt_batch/
  // pack_lane_batch group drain against the per-block scalar path
  // (SECMEM_BATCH_REENC=0). Costs include the 127 amortized
  // non-overflowing writes per group, so the speedup shown understates
  // the pure drain-kernel gain.
  const std::uint64_t target_groups = refs >= 1000000 ? 2048 : 256;
  DrainRig scalar(false);
  DrainRig batched(true);
  if (time_group_reencryption(target_groups, scalar, batched)) {
    const double scalar_ns = scalar.ns_per_group();
    const double batched_ns = batched.ns_per_group();
    const double scalar_drain = scalar.drain_ns_per_group();
    const double batched_drain = batched.drain_ns_per_group();
    StatRegistry& reg = metrics.registry();
    reg.scalar("bench.reenc_scalar_ns_per_group").sample(scalar_ns);
    reg.scalar("bench.reenc_batched_ns_per_group").sample(batched_ns);
    reg.scalar("bench.reenc_batched_speedup").sample(scalar_ns / batched_ns);
    if (scalar_drain > 0 && batched_drain > 0) {
      reg.scalar("bench.reenc_scalar_drain_ns").sample(scalar_drain);
      reg.scalar("bench.reenc_batched_drain_ns").sample(batched_drain);
      reg.scalar("bench.reenc_drain_speedup")
          .sample(scalar_drain / batched_drain);
    }
    std::printf(
        "\n=== group re-encryption drain (functional engine) ===\n"
        "full overflow cycle (127 plain writes + drain, per group):\n"
        "  scalar per-block path:  %8.0f ns/group  (%llu groups)\n"
        "  batched kernel path:    %8.0f ns/group  (%llu groups)  %.2fx\n",
        scalar_ns, static_cast<unsigned long long>(scalar.groups()),
        batched_ns, static_cast<unsigned long long>(batched.groups()),
        scalar_ns / batched_ns);
    if (scalar_drain > 0 && batched_drain > 0) {
      std::printf(
          "drain only (cycle minus measured plain-write baseline):\n"
          "  scalar per-block path:  %8.0f ns/group\n"
          "  batched kernel path:    %8.0f ns/group  %.2fx\n",
          scalar_drain, batched_drain, scalar_drain / batched_drain);
    }
    if (csv)
      std::printf("csv,reenc_drain,%.0f,%.0f\n", scalar_ns, batched_ns);
  } else {
    std::fprintf(stderr, "group re-encryption drain phase FAILED\n");
    return 1;
  }
  return 0;
}
