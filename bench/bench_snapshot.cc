// Snapshot pipeline throughput: save / restore bandwidth for the plain
// and sharded engines, batched (default) vs the SECMEM_BATCH_SNAPSHOT=0
// scalar reference — the before/after for the streaming snapshot ISSUE —
// plus the delta phase: steady-state incremental snapshots
// (save_delta / restore_delta) over a 2% hot set, rolled source→replica
// so every delta applies on its exact base.
//
// save() and restore() move the whole off-chip image (ciphertext, ECC
// lanes, MACs, counter storage, sealed root), so bandwidth is reported
// as image GiB/s. Both engines also split restore into its two phases:
// staging (parse + MAC the counter tree + sealed-root check — all the
// cryptographic cost) and commit (adopt staged state + counter-scheme
// rebuild) — the plain engine through stage_restore/commit_restore, the
// sharded one through restore_timed(). Delta rows report EFFECTIVE
// bandwidth — full-image GiB over the delta's wall time — so
// delta_save_gibps / save_gibps reads directly as the speedup, and
// delta_bytes / image_bytes as the size ratio. Streams are fixed
// preallocated buffers, so the numbers measure the pipeline, not
// allocator churn.
//
//   bench_snapshot [--mib N[,N...]] [--shards N] [--reps N] [--quick]
//                  [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <streambuf>
#include <string>
#include <vector>

#include "bench_metrics.h"
#include "common/rng.h"
#include "engine/secure_memory.h"
#include "engine/sharded_memory.h"

namespace {

using namespace secmem;

/// Scoped environment override (restores the previous value on exit) —
/// the snapshot kill switch is sampled at engine construction, so the
/// scalar-reference engines are built inside one of these.
class EnvOverride {
 public:
  EnvOverride(const char* name, const char* value) : name_(name) {
    if (const char* prev = std::getenv(name)) prev_ = prev;
    setenv(name, value, 1);
  }
  ~EnvOverride() {
    if (prev_)
      setenv(name_.c_str(), prev_->c_str(), 1);
    else
      unsetenv(name_.c_str());
  }
  EnvOverride(const EnvOverride&) = delete;
  EnvOverride& operator=(const EnvOverride&) = delete;

 private:
  std::string name_;
  std::optional<std::string> prev_;
};

/// ostream sink over a caller-owned fixed buffer: save() streams into
/// preallocated storage with zero allocation or copying per rep.
class FixedSink final : public std::streambuf {
 public:
  FixedSink(char* data, std::size_t size) { setp(data, data + size); }
  std::size_t written() const {
    return static_cast<std::size_t>(pptr() - pbase());
  }
};

/// istream source over a borrowed byte buffer (no stringstream copy).
class MemSource final : public std::streambuf {
 public:
  MemSource(const char* data, std::size_t size) {
    char* p = const_cast<char*>(data);  // get area is never written
    setg(p, p, p + size);
  }
};

/// ostream sink appending into a caller-owned growable vector — for the
/// image-sizing pass and the variable-sized delta images.
class VectorSink final : public std::streambuf {
 public:
  explicit VectorSink(std::vector<char>& out) : out_(out) {}

 protected:
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    out_.insert(out_.end(), s, s + n);
    return n;
  }
  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof()))
      out_.push_back(traits_type::to_char_type(ch));
    return ch;
  }

 private:
  std::vector<char>& out_;
};

struct Sample {
  std::string engine;  ///< "plain" | "sharded"
  std::string mode;    ///< "batched" | "scalar"
  std::uint64_t mib;
  double save_gibps;
  double restore_gibps;
  double stage_gibps;   ///< restore staging phase
  double commit_gibps;  ///< restore commit phase
  std::uint64_t image_bytes;  ///< full image size
  std::uint64_t delta_bytes;  ///< 2%-hot-set delta image size
  double delta_save_gibps;    ///< effective: full-image GiB / delta time
  double delta_restore_gibps;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> d =
      std::chrono::steady_clock::now() - start;
  return d.count();
}

/// Touch a spread of blocks so the image is not the all-zeros fresh
/// state: random single writes advance delta counters unevenly.
template <typename Engine>
void dirty_region(Engine& engine, int& bad) {
  Xoshiro256 rng(0x5a7e);
  std::vector<BlockWrite> writes(256);
  for (unsigned round = 0; round < 16; ++round) {
    for (BlockWrite& w : writes) {
      w.block = rng.next_below(engine.num_blocks());
      w.data[0] = static_cast<std::uint8_t>(round);
      w.data[1] = static_cast<std::uint8_t>(w.block);
    }
    bad += engine.write_blocks(writes) != Status::kOk;
  }
}

/// One engine x mode x size measurement. `reps` timed passes each for
/// save and restore (plus the stage/commit split when `split` is set),
/// then the delta phase: a 2% hot set re-dirtied (untimed) before each
/// timed save_delta, every delta applied (timed) to `replica` — which
/// rolls along the chain so each delta lands on its exact base. Returns
/// image-bandwidth samples.
template <typename Engine>
Sample measure(Engine& engine, Engine& replica, const std::string& name,
               const std::string& mode, std::uint64_t mib, unsigned reps,
               bool split, int& bad) {
  dirty_region(engine, bad);

  // Size the image with one untimed save, then reuse the buffer.
  std::vector<char> image;
  {
    std::vector<char> grow;
    grow.reserve((mib << 20) * 2);
    VectorSink sink(grow);
    std::ostream out(&sink);
    bad += engine.save(out) != Status::kOk;
    image = std::move(grow);
  }
  const double gib = static_cast<double>(image.size()) / (1 << 30);

  // Untimed warmup restore: the first restore after construction pays
  // the staging allocation (batched mode recycles it afterwards) —
  // steady-state crash/restore bandwidth is the number of interest.
  {
    MemSource source(image.data(), image.size());
    std::istream in(&source);
    bad += !engine.restore(in);
  }

  Sample s{name, mode, mib, 0, 0, 0, 0, 0, 0, 0, 0};
  s.image_bytes = image.size();
  {
    const auto start = std::chrono::steady_clock::now();
    for (unsigned r = 0; r < reps; ++r) {
      FixedSink sink(image.data(), image.size());
      std::ostream out(&sink);
      bad += engine.save(out) != Status::kOk;
      bad += sink.written() != image.size();
    }
    s.save_gibps = reps * gib / seconds_since(start);
  }
  {
    const auto start = std::chrono::steady_clock::now();
    for (unsigned r = 0; r < reps; ++r) {
      MemSource source(image.data(), image.size());
      std::istream in(&source);
      bad += !engine.restore(in);
    }
    s.restore_gibps = reps * gib / seconds_since(start);
  }
  if (split) {
    if constexpr (std::is_same_v<Engine, SecureMemory>) {
      double stage_s = 0, commit_s = 0;
      for (unsigned r = 0; r < reps; ++r) {
        MemSource source(image.data(), image.size());
        std::istream in(&source);
        const auto t0 = std::chrono::steady_clock::now();
        auto staged = engine.stage_restore(in);
        stage_s += seconds_since(t0);
        if (!staged) {
          ++bad;
          continue;
        }
        const auto t1 = std::chrono::steady_clock::now();
        engine.commit_restore(std::move(*staged));
        commit_s += seconds_since(t1);
      }
      s.stage_gibps = reps * gib / stage_s;
      s.commit_gibps = reps * gib / commit_s;
    } else if constexpr (std::is_same_v<Engine, ShardedSecureMemory>) {
      double stage_s = 0, commit_s = 0;
      for (unsigned r = 0; r < reps; ++r) {
        MemSource source(image.data(), image.size());
        std::istream in(&source);
        SnapshotTiming t;
        bad += !engine.restore_timed(in, t);
        stage_s += t.stage_s;
        commit_s += t.commit_s;
      }
      s.stage_gibps = reps * gib / stage_s;
      s.commit_gibps = reps * gib / commit_s;
    }
  }

  // Delta phase: chain replica onto the engine's current base (the
  // restores above re-aligned both sides to `image`), then per rep
  // re-dirty a 2% hot set (untimed), seal a delta (timed), and roll it
  // onto the replica (timed). Skipped when the kill switch has the
  // engine emitting full images — the full rows above already cover it.
  if (delta_snapshot_enabled()) {
    {
      MemSource source(image.data(), image.size());
      std::istream in(&source);
      bad += !replica.restore(in);
    }
    const std::uint64_t hot_blocks =
        std::max<std::uint64_t>(1, engine.num_blocks() / 50);
    std::vector<char> delta;
    delta.reserve(image.size() / 8);
    double dsave_s = 0, drestore_s = 0;
    for (unsigned r = 0; r < reps; ++r) {
      std::vector<BlockWrite> writes;
      writes.reserve(256);
      for (std::uint64_t b = 0; b < hot_blocks;) {
        writes.clear();
        for (; b < hot_blocks && writes.size() < 256; ++b) {
          BlockWrite w;
          w.block = b;
          w.data[0] = static_cast<std::uint8_t>(r + 1);
          w.data[1] = static_cast<std::uint8_t>(b);
          writes.push_back(w);
        }
        bad += engine.write_blocks(writes) != Status::kOk;
      }
      delta.clear();
      VectorSink sink(delta);
      std::ostream out(&sink);
      const auto t0 = std::chrono::steady_clock::now();
      bad += engine.save_delta(out) != Status::kOk;
      dsave_s += seconds_since(t0);
      MemSource source(delta.data(), delta.size());
      std::istream in(&source);
      const auto t1 = std::chrono::steady_clock::now();
      bad += !replica.restore_delta(in);
      drestore_s += seconds_since(t1);
    }
    s.delta_bytes = delta.size();
    s.delta_save_gibps = reps * gib / dsave_s;
    s.delta_restore_gibps = reps * gib / drestore_s;
  }
  return s;
}

void emit_json(std::FILE* out, const std::vector<Sample>& samples,
               unsigned shards, unsigned reps) {
  std::fprintf(out,
               "{\n  \"bench\": \"snapshot\",\n  \"shards\": %u,\n"
               "  \"reps\": %u,\n  \"results\": [\n",
               shards, reps);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"engine\": \"%s\", \"mode\": \"%s\", "
                 "\"region_mib\": %llu, \"save_gibps\": %.3f, "
                 "\"restore_gibps\": %.3f, \"stage_gibps\": %.3f, "
                 "\"commit_gibps\": %.3f, \"image_bytes\": %llu, "
                 "\"delta_bytes\": %llu, \"delta_save_gibps\": %.3f, "
                 "\"delta_restore_gibps\": %.3f}%s\n",
                 s.engine.c_str(), s.mode.c_str(),
                 static_cast<unsigned long long>(s.mib), s.save_gibps,
                 s.restore_gibps, s.stage_gibps, s.commit_gibps,
                 static_cast<unsigned long long>(s.image_bytes),
                 static_cast<unsigned long long>(s.delta_bytes),
                 s.delta_save_gibps, s.delta_restore_gibps,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint64_t> sizes{8, 32};
  unsigned shards = 8;
  unsigned reps = 5;
  std::string out_path = "snapshot.bench.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--mib") {
      sizes.clear();
      const std::string list = value();
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        sizes.push_back(
            std::strtoull(list.substr(pos, comma - pos).c_str(), nullptr, 10));
        pos = comma == std::string::npos ? list.size() : comma + 1;
      }
    } else if (arg == "--shards") {
      shards = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--reps") {
      reps = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--quick") {
      sizes = {4};
      reps = 1;
    } else if (arg == "--out") {
      out_path = value();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--mib N[,N...]] [--shards N] [--reps N] "
                   "[--quick] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  int bad = 0;
  std::vector<Sample> samples;
  for (const std::uint64_t mib : sizes) {
    SecureMemoryConfig config;
    config.size_bytes = mib << 20;
    for (const bool batched : {true, false}) {
      const std::string mode = batched ? "batched" : "scalar";
      // Scalar engines run one rep — the reference path is the slow one
      // being measured against, not the product.
      const unsigned mode_reps = batched ? reps : std::min(reps, 2u);
      std::optional<EnvOverride> pin;
      if (!batched) pin.emplace("SECMEM_BATCH_SNAPSHOT", "0");
      try {
        SecureMemory plain(config);
        SecureMemory plain_replica(config);
        samples.push_back(measure(plain, plain_replica, "plain", mode, mib,
                                  mode_reps, /*split=*/true, bad));
        ShardedSecureMemory sharded(config, shards);
        ShardedSecureMemory sharded_replica(config, shards);
        samples.push_back(measure(sharded, sharded_replica, "sharded", mode,
                                  mib, mode_reps, /*split=*/true, bad));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
      for (auto it = samples.end() - 2; it != samples.end(); ++it) {
        std::string extra;
        if (it->stage_gibps > 0)
          extra += " (stage " + std::to_string(it->stage_gibps) + " / commit " +
                   std::to_string(it->commit_gibps) + ")";
        if (it->delta_bytes > 0)
          extra += " | delta save " + std::to_string(it->delta_save_gibps) +
                   " / restore " + std::to_string(it->delta_restore_gibps) +
                   " eff GiB/s, " + std::to_string(it->delta_bytes) + " B";
        std::fprintf(stderr,
                     "%7s %7s %3llu MiB: save %.3f GiB/s | restore %.3f "
                     "GiB/s%s\n",
                     it->engine.c_str(), mode.c_str(),
                     static_cast<unsigned long long>(mib), it->save_gibps,
                     it->restore_gibps, extra.c_str());
      }
    }
  }
  if (bad != 0) {
    std::fprintf(stderr, "FAIL: %d snapshot operations misbehaved\n", bad);
    return 1;
  }

  secmem_bench::MetricsDump metrics("snapshot");
  for (const Sample& s : samples) {
    const std::string base = metric_path(
        {"snapshot", s.engine, s.mode, std::to_string(s.mib) + "mib"});
    metrics.registry().scalar(metric_path({base, "save_gibps"}))
        .sample(s.save_gibps);
    metrics.registry().scalar(metric_path({base, "restore_gibps"}))
        .sample(s.restore_gibps);
    if (s.stage_gibps > 0) {
      metrics.registry().scalar(metric_path({base, "stage_gibps"}))
          .sample(s.stage_gibps);
      metrics.registry().scalar(metric_path({base, "commit_gibps"}))
          .sample(s.commit_gibps);
    }
    if (s.delta_bytes > 0) {
      metrics.registry().scalar(metric_path({base, "delta_save_gibps"}))
          .sample(s.delta_save_gibps);
      metrics.registry().scalar(metric_path({base, "delta_restore_gibps"}))
          .sample(s.delta_restore_gibps);
      metrics.registry().scalar(metric_path({base, "delta_bytes"}))
          .sample(static_cast<double>(s.delta_bytes));
    }
  }
  if (!metrics.write()) return 1;

  emit_json(stdout, samples, shards, reps);
  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f) {
      emit_json(f, samples, shards, reps);
      std::fclose(f);
      std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }
  }
  return 0;
}
