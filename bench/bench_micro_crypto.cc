// Microbenchmarks of the hardware-modeled primitives (google-benchmark):
// AES-128, CTR keystream, Carter-Wegman MAC, Hamming/SEC-DED codecs,
// MAC-ECC lane pack/unpack, and flip-and-check correction including the
// paper's §3.4 worst cases (512 checks single-bit, 130,816 double-bit).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_gbench_metrics.h"
#include "common/bitops.h"
#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/crypto_backend.h"
#include "crypto/ctr_keystream.h"
#include "crypto/cw_mac.h"
#include "crypto/gf64.h"
#include "ecc/flip_and_check.h"
#include "ecc/mac_ecc.h"
#include "ecc/secded72.h"

namespace {

using namespace secmem;

Aes128::Key aes_key() {
  Aes128::Key key{};
  for (int i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(i * 7);
  return key;
}

CwMacKey mac_key() {
  CwMacKey key{};
  key.hash_key = 0x9E3779B97F4A7C15ULL;
  key.pad_key = aes_key();
  return key;
}

DataBlock sample_block() {
  DataBlock block{};
  Xoshiro256 rng(7);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.next());
  return block;
}

void BM_AesEncryptBlock(benchmark::State& state) {
  const Aes128 aes(aes_key());
  Aes128::Block block{};
  for (auto _ : state) {
    aes.encrypt_block(block, block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_AesEncryptBlock);

void BM_CtrKeystream64B(benchmark::State& state) {
  const CtrKeystream ks(aes_key());
  DataBlock out{};
  std::uint64_t ctr = 0;
  for (auto _ : state) {
    ks.generate(0x1000, ++ctr, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBlockBytes));
  state.SetLabel(ks.backend_name());
}
BENCHMARK(BM_CtrKeystream64B);

// Per-backend AES-CTR keystream: the tentpole before/after pair. The
// accelerated entry reports an error (rather than silently benchmarking
// the fallback) on hosts without AES-NI.
void BM_CtrKeystream64BBackend(benchmark::State& state,
                               const Aes128Ops* ops) {
  if (ops == nullptr) {
    state.SkipWithError("backend unavailable on this host");
    return;
  }
  const CtrKeystream ks(aes_key(), *ops);
  DataBlock out{};
  std::uint64_t ctr = 0;
  for (auto _ : state) {
    ks.generate(0x1000, ++ctr, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBlockBytes));
  state.SetLabel(ops->name);
}
BENCHMARK_CAPTURE(BM_CtrKeystream64BBackend, portable,
                  &aes128_ops_portable());
BENCHMARK_CAPTURE(BM_CtrKeystream64BBackend, accel,
                  aes128_ops_accelerated());

void BM_CtrKeystreamBatch64(benchmark::State& state) {
  // What read_blocks/write_blocks feed the kernel: 64 keystreams
  // back-to-back through generate_batch.
  const CtrKeystream ks(aes_key());
  constexpr std::size_t kBatch = 64;
  std::vector<std::uint64_t> addrs(kBatch), ctrs(kBatch);
  std::vector<DataBlock> out(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) addrs[i] = i * kBlockBytes;
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    ++epoch;
    for (auto& c : ctrs) c = epoch;
    ks.generate_batch(addrs, ctrs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch * kBlockBytes));
  state.SetLabel(ks.backend_name());
}
BENCHMARK(BM_CtrKeystreamBatch64);

void BM_Gf64Mul(benchmark::State& state) {
  std::uint64_t a = 0x0123456789ABCDEFULL, b = 0xFEDCBA9876543210ULL;
  for (auto _ : state) {
    a = gf64_mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_Gf64Mul);

void BM_Gf64MulBackend(benchmark::State& state, const Gf64Ops* ops) {
  if (ops == nullptr) {
    state.SkipWithError("backend unavailable on this host");
    return;
  }
  std::uint64_t a = 0x0123456789ABCDEFULL, b = 0xFEDCBA9876543210ULL;
  for (auto _ : state) {
    a = ops->mul(a, b);
    benchmark::DoNotOptimize(a);
  }
  state.SetLabel(ops->name);
}
BENCHMARK_CAPTURE(BM_Gf64MulBackend, portable, &gf64_ops_portable());
BENCHMARK_CAPTURE(BM_Gf64MulBackend, accel, gf64_ops_accelerated());

void BM_CwMacBlock(benchmark::State& state) {
  const CwMac mac(mac_key());
  const DataBlock block = sample_block();
  std::uint64_t ctr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac.compute_block(0x40, ++ctr, block));
  }
  state.SetLabel(mac.gf_backend_name());
}
BENCHMARK(BM_CwMacBlock);

void BM_CwMacBlockBackend(benchmark::State& state, const Aes128Ops* aes_ops,
                          const Gf64Ops* gf_ops) {
  if (aes_ops == nullptr || gf_ops == nullptr) {
    state.SkipWithError("backend unavailable on this host");
    return;
  }
  const CwMac mac(mac_key(), *aes_ops, *gf_ops);
  const DataBlock block = sample_block();
  std::uint64_t ctr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac.compute_block(0x40, ++ctr, block));
  }
  state.SetLabel(mac.gf_backend_name());
}
BENCHMARK_CAPTURE(BM_CwMacBlockBackend, portable, &aes128_ops_portable(),
                  &gf64_ops_portable());
BENCHMARK_CAPTURE(BM_CwMacBlockBackend, accel, aes128_ops_accelerated(),
                  gf64_ops_accelerated());

void BM_CwMacComputeBatch64(benchmark::State& state) {
  const CwMac mac(mac_key());
  constexpr std::size_t kBatch = 64;
  std::vector<std::uint64_t> addrs(kBatch), ctrs(kBatch), tags(kBatch);
  std::vector<DataBlock> blocks(kBatch, sample_block());
  for (std::size_t i = 0; i < kBatch; ++i) addrs[i] = i * kBlockBytes;
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    ++epoch;
    for (auto& c : ctrs) c = epoch;
    mac.compute_batch(addrs, ctrs, blocks, tags);
    benchmark::DoNotOptimize(tags.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch * kBlockBytes));
  state.SetLabel(mac.gf_backend_name());
}
BENCHMARK(BM_CwMacComputeBatch64);

void BM_CwMacVerifyWithHoistedPad(benchmark::State& state) {
  // The flip-and-check inner loop: pad hoisted, polyhash only.
  const CwMac mac(mac_key());
  const DataBlock block = sample_block();
  const std::uint64_t pad = mac.pad_for(0x40, 1);
  const std::uint64_t tag = mac.compute_block(0x40, 1, block);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac.verify_with_pad(pad, block, tag));
  }
}
BENCHMARK(BM_CwMacVerifyWithHoistedPad);

void BM_Secded72EncodeBlock(benchmark::State& state) {
  const Secded72 codec;
  const DataBlock block = sample_block();
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(block));
  }
}
BENCHMARK(BM_Secded72EncodeBlock);

void BM_Secded72DecodeClean(benchmark::State& state) {
  const Secded72 codec;
  const DataBlock block = sample_block();
  const EccLane lane = codec.encode(block);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(block, lane));
  }
}
BENCHMARK(BM_Secded72DecodeClean);

void BM_MacEccPackUnpack(benchmark::State& state) {
  const MacEccCodec codec;
  const DataBlock block = sample_block();
  for (auto _ : state) {
    const std::uint64_t lane = codec.pack(0x123456789ABCDEULL, block);
    benchmark::DoNotOptimize(codec.unpack(lane));
  }
}
BENCHMARK(BM_MacEccPackUnpack);

// Paper §3.4 cost analysis: worst-case flip-and-check work.
void BM_FlipAndCheckSingleBitWorstCase(benchmark::State& state) {
  const CwMac mac(mac_key());
  const DataBlock block = sample_block();
  const std::uint64_t tag = mac.compute_block(0x40, 1, block);
  const std::uint64_t pad = mac.pad_for(0x40, 1);
  DataBlock corrupted = block;
  flip_bit(corrupted, 511);  // last position searched
  const FlipAndCheck corrector(FlipAndCheck::Config{1, 1});
  for (auto _ : state) {
    auto result = corrector.correct(corrupted, [&](const DataBlock& c) {
      return mac.verify_with_pad(pad, c, tag);
    });
    benchmark::DoNotOptimize(result);
  }
  state.counters["mac_evals"] = 1 + 512;
}
BENCHMARK(BM_FlipAndCheckSingleBitWorstCase);

void BM_FlipAndCheckDoubleBitWorstCase(benchmark::State& state) {
  const CwMac mac(mac_key());
  const DataBlock block = sample_block();
  const std::uint64_t tag = mac.compute_block(0x40, 1, block);
  const std::uint64_t pad = mac.pad_for(0x40, 1);
  DataBlock corrupted = block;
  flip_bit(corrupted, 510);
  flip_bit(corrupted, 511);  // the last pair tried
  const FlipAndCheck corrector;
  for (auto _ : state) {
    auto result = corrector.correct(corrupted, [&](const DataBlock& c) {
      return mac.verify_with_pad(pad, c, tag);
    });
    benchmark::DoNotOptimize(result);
  }
  // Paper: <= 130,816 checks; at 1 cycle/MAC in hardware this is ~41us at
  // 3.2GHz — "100s of nanoseconds" for typical (early-exit) cases.
  state.counters["mac_evals_worst"] =
      static_cast<double>(FlipAndCheck::worst_case_checks(2));
}
BENCHMARK(BM_FlipAndCheckDoubleBitWorstCase)->Iterations(3);

// Incremental correction (polyhash linearity): the same searches with
// each candidate check reduced from a full 8-multiply polyhash to one
// XOR + compare. Same search order, same result, same evaluation count —
// only the cost per evaluation changes.
void BM_FlipAndCheckSingleBitWorstCaseIncremental(benchmark::State& state) {
  const CwMac mac(mac_key());
  const DataBlock block = sample_block();
  const std::uint64_t tag = mac.compute_block(0x40, 1, block);
  const std::uint64_t pad = mac.pad_for(0x40, 1);
  DataBlock corrupted = block;
  flip_bit(corrupted, 511);
  const FlipAndCheck corrector(FlipAndCheck::Config{1, 1});
  for (auto _ : state) {
    auto result = corrector.correct_incremental(corrupted, mac, pad, tag);
    benchmark::DoNotOptimize(result);
  }
  state.counters["mac_evals"] = 1 + 512;
  state.SetLabel(mac.gf_backend_name());
}
BENCHMARK(BM_FlipAndCheckSingleBitWorstCaseIncremental);

void BM_FlipAndCheckDoubleBitWorstCaseIncremental(benchmark::State& state) {
  const CwMac mac(mac_key());
  const DataBlock block = sample_block();
  const std::uint64_t tag = mac.compute_block(0x40, 1, block);
  const std::uint64_t pad = mac.pad_for(0x40, 1);
  DataBlock corrupted = block;
  flip_bit(corrupted, 510);
  flip_bit(corrupted, 511);
  const FlipAndCheck corrector;
  for (auto _ : state) {
    auto result = corrector.correct_incremental(corrupted, mac, pad, tag);
    benchmark::DoNotOptimize(result);
  }
  state.counters["mac_evals_worst"] =
      static_cast<double>(FlipAndCheck::worst_case_checks(2));
  state.SetLabel(mac.gf_backend_name());
}
BENCHMARK(BM_FlipAndCheckDoubleBitWorstCaseIncremental);

}  // namespace

int main(int argc, char** argv) {
  return secmem_bench::run_benchmarks_with_metrics(argc, argv,
                                                   "micro_crypto");
}
