// Unified metrics emission for the reproduction benches — the bench-side
// entry point into the secmem observability layer (see ARCHITECTURE.md,
// "Observability").
//
// Every bench binary writes a `<tag>.metrics.json` StatRegistry export
// (git-ignored) next to its human-readable stdout report, so CI consumes
// one machine-readable format across the whole suite. The file lands
// next to the bench *binary* (i.e. in the build tree), never in whatever
// directory the bench happens to be run from — running benches from a
// source checkout must not litter the repo. The SECMEM_METRICS_JSON
// environment variable overrides the output path; an empty value
// suppresses the file.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/stats.h"

namespace secmem_bench {

inline std::string metrics_output_path(const std::string& tag) {
  if (const char* env = std::getenv("SECMEM_METRICS_JSON")) return env;
  const std::string name = tag + ".metrics.json";
#if defined(__linux__)
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n > 0) {
    const std::string path(exe, static_cast<std::size_t>(n));
    const std::size_t slash = path.rfind('/');
    if (slash != std::string::npos) return path.substr(0, slash + 1) + name;
  }
#endif
  return name;  // fallback: current directory
}

/// Scope guard owning the bench's StatRegistry: benches record run-level
/// scalars/counters into registry() (or merge_from() whole per-run sim
/// registries) and the destructor writes the JSON export.
class MetricsDump {
 public:
  explicit MetricsDump(const std::string& tag)
      : path_(metrics_output_path(tag)) {}
  ~MetricsDump() { write(); }

  MetricsDump(const MetricsDump&) = delete;
  MetricsDump& operator=(const MetricsDump&) = delete;

  secmem::StatRegistry& registry() noexcept { return registry_; }
  const std::string& path() const noexcept { return path_; }

  /// Write the export now (the destructor is a no-op afterwards).
  bool write() {
    if (written_ || path_.empty()) return true;
    written_ = true;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "metrics: cannot write %s\n", path_.c_str());
      return false;
    }
    registry_.write_json(out);
    if (out.good())
      std::fprintf(stderr, "metrics: wrote %s\n", path_.c_str());
    return out.good();
  }

 private:
  std::string path_;
  secmem::StatRegistry registry_;
  bool written_ = false;
};

}  // namespace secmem_bench
