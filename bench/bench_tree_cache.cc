// Verified-frontier tree cache microbench (tree/tree_cache.h).
//
// Measures what the cache removes from the verified-read datapath — the
// leaf-to-root Carter-Wegman walk — and what the write-back buffer
// coalesces on the write path, on a single-threaded plain engine:
//
//  - hot workload: re-reads (or re-writes) a working set whose frontier
//    fits in the cache; steady state is all hits, so reads verify by a
//    64-byte compare and writes land their tag in a resident node.
//  - uniform workload: reads spread over the whole region, far beyond
//    any configured capacity — the miss path, which still pays the full
//    walk plus fill bookkeeping. This bounds the overhead the cache can
//    add when it never helps.
//
// Capacity sweeps 0 (eager baseline) / 4 / 8 / 16 / 32 KB. Results go to
// stdout as JSON plus the standard metrics export; BENCH_tree.json in the
// repo root holds a seeded snapshot.
//
//   bench_tree_cache [--mib N] [--hot-blocks N] [--reads N] [--writes N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_metrics.h"
#include "common/rng.h"
#include "engine/secure_memory.h"

namespace {

using namespace secmem;

struct Sample {
  std::string workload;  // "hot-read" | "uniform-read" | "hot-write"
  unsigned cache_kb;
  std::uint64_t ops;
  double ns_per_op;
  double ops_per_sec;
  std::uint64_t hits;
  std::uint64_t misses;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

Sample run_reads(const char* workload, SecureMemoryConfig config,
                 std::uint64_t span_blocks, std::uint64_t ops, int& bad) {
  SecureMemory mem(config);
  if (span_blocks == 0 || span_blocks > mem.num_blocks())
    span_blocks = mem.num_blocks();
  DataBlock block{};
  for (std::uint64_t b = 0; b < std::min<std::uint64_t>(span_blocks, 4096);
       ++b) {
    block[0] = static_cast<std::uint8_t>(b);
    if (mem.write_block(b, block) != Status::kOk) ++bad;
  }
  Xoshiro256 rng(0x7ee);
  // Warm-up pass populates the frontier so the timed loop measures the
  // steady state, not compulsory misses.
  for (std::uint64_t i = 0; i < std::min<std::uint64_t>(ops / 10, 20000); ++i)
    if (mem.read_block(rng.next_below(span_blocks)).status != ReadStatus::kOk)
      ++bad;
  mem.reset_stats();
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i)
    if (mem.read_block(rng.next_below(span_blocks)).status != ReadStatus::kOk)
      ++bad;
  const double s = seconds_since(start);
  const EngineStats stats = mem.stats();
  return {workload,        config.tree_cache_kb,   ops, s * 1e9 / ops,
          ops / s,         stats.tree_cache_hits,  stats.tree_cache_misses};
}

Sample run_writes(const char* workload, SecureMemoryConfig config,
                  std::uint64_t span_blocks, std::uint64_t ops, int& bad) {
  SecureMemory mem(config);
  if (span_blocks == 0 || span_blocks > mem.num_blocks())
    span_blocks = mem.num_blocks();
  Xoshiro256 rng(0x3a1);
  DataBlock block{};
  for (std::uint64_t i = 0; i < std::min<std::uint64_t>(ops / 10, 20000); ++i)
    if (mem.write_block(rng.next_below(span_blocks), block) != Status::kOk)
      ++bad;
  mem.reset_stats();
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    block[0] = static_cast<std::uint8_t>(i);
    bad += mem.write_block(rng.next_below(span_blocks), block) != Status::kOk;
  }
  const double s = seconds_since(start);
  const EngineStats stats = mem.stats();
  return {workload,        config.tree_cache_kb,   ops, s * 1e9 / ops,
          ops / s,         stats.tree_cache_hits,  stats.tree_cache_misses};
}

void emit_json(std::FILE* out, const std::vector<Sample>& samples,
               std::uint64_t mib, std::uint64_t hot_blocks) {
  std::fprintf(out,
               "{\n  \"bench\": \"tree_cache\",\n"
               "  \"region_mib\": %llu,\n  \"hot_blocks\": %llu,\n"
               "  \"results\": [\n",
               static_cast<unsigned long long>(mib),
               static_cast<unsigned long long>(hot_blocks));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"workload\": \"%s\", \"cache_kb\": %u, "
                 "\"ns_per_op\": %.1f, \"ops_per_sec\": %.0f, "
                 "\"hits\": %llu, \"misses\": %llu}%s\n",
                 s.workload.c_str(), s.cache_kb, s.ns_per_op, s.ops_per_sec,
                 static_cast<unsigned long long>(s.hits),
                 static_cast<unsigned long long>(s.misses),
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t mib = 32;  // 3 off-chip MAC levels under the 3 KB root
  std::uint64_t hot_blocks = 1024;
  std::uint64_t reads = 200000;
  std::uint64_t writes = 100000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--mib") {
      mib = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--hot-blocks") {
      hot_blocks = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--reads") {
      reads = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--writes") {
      writes = std::strtoull(value(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--mib N] [--hot-blocks N] [--reads N] "
                   "[--writes N]\n",
                   argv[0]);
      return 2;
    }
  }

  SecureMemoryConfig config;
  config.size_bytes = mib << 20;
  int bad = 0;
  std::vector<Sample> samples;
  const unsigned sweep[] = {0, 4, 8, 16, 32};
  for (const unsigned kb : sweep) {
    config.tree_cache_kb = kb;
    samples.push_back(run_reads("hot-read", config, hot_blocks, reads, bad));
    samples.push_back(run_reads("uniform-read", config, 0, reads, bad));
    samples.push_back(run_writes("hot-write", config, hot_blocks, writes, bad));
    const Sample& hot = samples[samples.size() - 3];
    const Sample& uni = samples[samples.size() - 2];
    const Sample& wr = samples.back();
    std::fprintf(stderr,
                 "%2u KB: hot-read %6.1f ns | uniform-read %6.1f ns | "
                 "hot-write %6.1f ns\n",
                 kb, hot.ns_per_op, uni.ns_per_op, wr.ns_per_op);
  }
  if (bad != 0) {
    std::fprintf(stderr, "FAIL: %d ops did not verify\n", bad);
    return 1;
  }

  secmem_bench::MetricsDump metrics("tree_cache");
  for (const Sample& s : samples) {
    const std::string prefix = metric_path(
        {"bench", s.workload, "kb" + std::to_string(s.cache_kb)});
    metrics.registry().scalar(metric_path({prefix, "ns_per_op"}))
        .sample(s.ns_per_op);
    metrics.registry().scalar(metric_path({prefix, "ops_per_sec"}))
        .sample(s.ops_per_sec);
  }
  if (!metrics.write()) return 1;

  emit_json(stdout, samples, mib, hot_blocks);
  return 0;
}
