// Ablation of the paper's §4.3 overflow-avoidance optimizations:
// how much does each of (convergence reset, Δmin re-encoding) contribute
// to delta encoding's re-encryption reduction?
//
// Four delta-counter variants observe the same writeback stream:
//   none          : plain 7-bit frame-of-reference deltas
//   reset-only    : + Fig 5b convergence reset
//   reencode-only : + Fig 5c Δmin re-encoding
//   both          : the paper's full scheme
// Split counters are included as the external baseline.
#include <cstdio>
#include <cstdlib>

#include "bench_metrics.h"
#include "counters/delta_counter.h"
#include "counters/split_counter.h"
#include "bench_util.h"
#include "sim/system_sim.h"

namespace {
using namespace secmem;
}

int main(int argc, char** argv) {
  const std::uint64_t refs =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000000;

  // The workloads where Table 2 shows delta beating split — i.e. where
  // the optimizations are doing the work.
  const char* apps[] = {"facesim", "dedup", "ferret", "freqmine", "vips"};

  secmem_bench::MetricsDump metrics("ablation_delta");

  std::printf(
      "=== Ablation (paper $4.3): re-encryptions per 10^9 cycles by "
      "optimization (%llu refs/core) ===\n\n",
      static_cast<unsigned long long>(refs));
  std::printf("%-14s %10s | %8s %12s %15s %8s\n", "program", "split[13]",
              "none", "reset-only", "reencode-only", "both");

  for (const char* app : apps) {
    const WorkloadProfile& profile = profile_by_name(app);
    SystemConfig config = secmem_bench::counter_dynamics_config();

    const BlockIndex blocks = config.protected_bytes / 64;
    SplitCounters split(blocks);
    DeltaCounters none(blocks, DeltaConfig{false, false});
    DeltaCounters reset_only(blocks, DeltaConfig{true, false});
    DeltaCounters reencode_only(blocks, DeltaConfig{false, true});
    DeltaCounters both(blocks, DeltaConfig{true, true});

    SystemSimulator sim(config, profile);
    sim.add_observer(&split);
    sim.add_observer(&none);
    sim.add_observer(&reset_only);
    sim.add_observer(&reencode_only);
    sim.add_observer(&both);
    const SimResult result = sim.run(refs);

    const double scale = 1e9 / static_cast<double>(result.cycles);
    metrics.registry().merge_from(sim.stats(), app);
    StatRegistry& reg = metrics.registry();
    reg.scalar(std::string(app) + ".split_per_gcycle")
        .sample(split.reencryptions() * scale);
    reg.scalar(std::string(app) + ".both_per_gcycle")
        .sample(both.reencryptions() * scale);
    std::printf("%-14s %10.0f | %8.0f %12.0f %15.0f %8.0f\n", app,
                split.reencryptions() * scale, none.reencryptions() * scale,
                reset_only.reencryptions() * scale,
                reencode_only.reencryptions() * scale,
                both.reencryptions() * scale);
  }

  std::printf(
      "\nexpected: 'none' tracks split[13] (same 7-bit ceiling). Reset\n"
      "eliminates overflow on strictly-uniform streams (freqmine) but is\n"
      "fragile to writeback coalescing noise; Δmin re-encoding is the\n"
      "robust workhorse wherever every group member gets written (facesim,\n"
      "dedup). Neither helps when group neighbours stay cold (vips:\n"
      "Δmin = 0). 'both' is the paper's Table 2 delta column.\n");
  return 0;
}
