// End-to-end functional tests of the authenticated-encrypted memory:
// honest use, bus tampering, cold-boot replay, and DRAM fault recovery —
// the paper's full threat model exercised against real crypto.
#include "engine/secure_memory.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"

namespace secmem {
namespace {

DataBlock pattern(std::uint8_t seed) {
  DataBlock b{};
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<std::uint8_t>(seed ^ (i * 11));
  return b;
}

SecureMemoryConfig small_config(CounterSchemeKind scheme,
                                MacPlacement placement) {
  SecureMemoryConfig config;
  config.size_bytes = 64 * 1024;  // 1024 blocks, 16 groups
  config.scheme = scheme;
  config.mac_placement = placement;
  return config;
}

// Parameterized over (scheme, MAC placement): the security contract must
// hold for every combination.
class SecureMemoryContract
    : public ::testing::TestWithParam<
          std::tuple<CounterSchemeKind, MacPlacement>> {
 protected:
  SecureMemory memory{small_config(std::get<0>(GetParam()),
                                   std::get<1>(GetParam()))};
};

TEST_P(SecureMemoryContract, FreshMemoryReadsZero) {
  const auto result = memory.read_block(17);
  EXPECT_EQ(result.status, ReadStatus::kOk);
  EXPECT_EQ(result.data, DataBlock{});
}

TEST_P(SecureMemoryContract, ReadAfterWriteRoundTrip) {
  const DataBlock plain = pattern(0x5A);
  EXPECT_EQ(memory.write_block(7, plain), Status::kOk);
  const auto result = memory.read_block(7);
  EXPECT_EQ(result.status, ReadStatus::kOk);
  EXPECT_EQ(result.data, plain);
}

TEST_P(SecureMemoryContract, CiphertextIsNotPlaintext) {
  const DataBlock plain = pattern(0x33);
  EXPECT_EQ(memory.write_block(3, plain), Status::kOk);
  EXPECT_NE(std::memcmp(memory.untrusted().ciphertext(3).data(),
                        plain.data(), 64),
            0)
      << "plaintext visible in the untrusted store";
}

TEST_P(SecureMemoryContract, RewriteChangesCiphertextEvenForSameData) {
  // Counter-mode freshness: identical plaintext written twice must yield
  // different ciphertext (the counter advanced).
  const DataBlock plain = pattern(0x77);
  EXPECT_EQ(memory.write_block(9, plain), Status::kOk);
  DataBlock ct1;
  std::memcpy(ct1.data(), memory.untrusted().ciphertext(9).data(), 64);
  EXPECT_EQ(memory.write_block(9, plain), Status::kOk);
  DataBlock ct2;
  std::memcpy(ct2.data(), memory.untrusted().ciphertext(9).data(), 64);
  EXPECT_NE(ct1, ct2);
}

TEST_P(SecureMemoryContract, CiphertextTamperDetected) {
  EXPECT_EQ(memory.write_block(5, pattern(1)), Status::kOk);
  // >2 flipped bits within one 8-byte word defeats both correction
  // schemes (flip-and-check caps at 2; per-word SEC-DED at 1): flagged.
  for (unsigned bit : {3u, 5u, 9u}) {
    memory.untrusted().flip_ciphertext_bit(5, bit);
  }
  EXPECT_EQ(memory.read_block(5).status, ReadStatus::kIntegrityViolation);
}

TEST_P(SecureMemoryContract, CounterStorageTamperDetected) {
  EXPECT_EQ(memory.write_block(5, pattern(2)), Status::kOk);
  const std::uint64_t line = memory.counters().storage_line_of(5);
  memory.untrusted().flip_counter_bit(line, 13);
  EXPECT_EQ(memory.read_block(5).status, ReadStatus::kCounterTampered);
}

TEST_P(SecureMemoryContract, ReplayAttackDetected) {
  // The headline attack (paper §1): snapshot (data, MAC, counter) and
  // roll all three back after newer writes.
  const DataBlock old_data = pattern(3);
  EXPECT_EQ(memory.write_block(5, old_data), Status::kOk);
  const auto snapshot = memory.untrusted().snapshot(5);

  EXPECT_EQ(memory.write_block(5, pattern(4)), Status::kOk);  // victim makes progress

  memory.untrusted().restore(5, snapshot);
  const auto result = memory.read_block(5);
  EXPECT_NE(result.status, ReadStatus::kOk) << "replay accepted!";
  EXPECT_NE(result.data, old_data) << "replayed plaintext returned!";
}

TEST_P(SecureMemoryContract, ReplayOfDataAloneDetected) {
  EXPECT_EQ(memory.write_block(8, pattern(5)), Status::kOk);
  const auto snapshot = memory.untrusted().snapshot(8);
  EXPECT_EQ(memory.write_block(8, pattern(6)), Status::kOk);
  // Restore only the data + MAC lane, not the counter line: the MAC is
  // bound to the counter (Bonsai construction), so this must also fail.
  auto view = memory.untrusted();
  std::memcpy(view.ciphertext(8).data(), snapshot.ciphertext.data(), 64);
  view.ecc_lane(8)[0] = snapshot.lane[0];
  for (int i = 0; i < 8; ++i) view.ecc_lane(8)[i] = snapshot.lane[i];
  if (!view.macs().empty()) view.macs()[8] = snapshot.mac;
  EXPECT_NE(memory.read_block(8).status, ReadStatus::kOk);
}

TEST_P(SecureMemoryContract, CrossBlockSplicingDetected) {
  // Swap two blocks' ciphertext+MAC wholesale: address binding in the MAC
  // must reject data moved to a different location.
  EXPECT_EQ(memory.write_block(10, pattern(7)), Status::kOk);
  EXPECT_EQ(memory.write_block(20, pattern(8)), Status::kOk);
  const auto snap10 = memory.untrusted().snapshot(10);
  auto view = memory.untrusted();
  const auto snap20 = view.snapshot(20);
  std::memcpy(view.ciphertext(10).data(), snap20.ciphertext.data(), 64);
  for (int i = 0; i < 8; ++i) view.ecc_lane(10)[i] = snap20.lane[i];
  if (!view.macs().empty()) view.macs()[10] = snap20.mac;
  EXPECT_NE(memory.read_block(10).status, ReadStatus::kOk);
  (void)snap10;
}

TEST_P(SecureMemoryContract, ByteLevelApiRoundTrip) {
  const std::string text = "authenticated memory encryption";
  ASSERT_EQ(Status::kOk, memory.write_bytes(
      100, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(text.data()),
               text.size())));
  std::vector<std::uint8_t> buffer(text.size());
  ASSERT_EQ(Status::kOk, memory.read_bytes(100, buffer));
  EXPECT_EQ(std::string(buffer.begin(), buffer.end()), text);
}

TEST_P(SecureMemoryContract, ByteApiSpansBlockBoundary) {
  std::vector<std::uint8_t> data(200);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i);
  ASSERT_EQ(Status::kOk, memory.write_bytes(60, data));  // crosses 4 block boundaries
  std::vector<std::uint8_t> readback(200);
  ASSERT_EQ(Status::kOk, memory.read_bytes(60, readback));
  EXPECT_EQ(readback, data);
}

TEST_P(SecureMemoryContract, GroupReencryptionPreservesAllPlaintext) {
  // Force re-encryption by hammering one block past its overflow point;
  // every sibling must still decrypt to its own data afterwards.
  for (std::uint64_t b = 64; b < 128; ++b)
    EXPECT_EQ(memory.write_block(b, pattern(static_cast<std::uint8_t>(b))), Status::kOk);
  for (int i = 0; i < 1100; ++i)
    EXPECT_EQ(memory.write_block(70, pattern(0xEE)), Status::kOk);
  for (std::uint64_t b = 64; b < 128; ++b) {
    const auto result = memory.read_block(b);
    EXPECT_EQ(result.status, ReadStatus::kOk) << "block " << b;
    EXPECT_EQ(result.data, b == 70 ? pattern(0xEE)
                                   : pattern(static_cast<std::uint8_t>(b)))
        << "block " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SecureMemoryContract,
    ::testing::Combine(::testing::Values(CounterSchemeKind::kMonolithic56,
                                         CounterSchemeKind::kSplit,
                                         CounterSchemeKind::kDelta,
                                         CounterSchemeKind::kDualDelta),
                       ::testing::Values(MacPlacement::kEccLane,
                                         MacPlacement::kSeparate)),
    [](const auto& info) {
      return std::string(counter_scheme_kind_name(std::get<0>(info.param)))
                 .substr(0, 5) +
             std::to_string(static_cast<int>(std::get<0>(info.param))) +
             (std::get<1>(info.param) == MacPlacement::kEccLane ? "_EccLane"
                                                                : "_SepMac");
    });

// ------------------------------------------------ MAC-ECC mode specifics

class MacEccModeTest : public ::testing::Test {
 protected:
  SecureMemory memory{small_config(CounterSchemeKind::kDelta,
                                   MacPlacement::kEccLane)};
};

TEST_F(MacEccModeTest, SingleDataBitFaultCorrected) {
  EXPECT_EQ(memory.write_block(4, pattern(9)), Status::kOk);
  memory.untrusted().flip_ciphertext_bit(4, 250);
  const auto result = memory.read_block(4);
  EXPECT_EQ(result.status, ReadStatus::kCorrectedData);
  EXPECT_EQ(result.data, pattern(9));
  EXPECT_LE(result.mac_evaluations, 513u);
}

TEST_F(MacEccModeTest, DoubleDataBitFaultCorrectedEvenInSameWord) {
  // Standard SEC-DED cannot fix 2 flips in one 8-byte word; flip-and-check
  // can (paper Figure 3).
  EXPECT_EQ(memory.write_block(4, pattern(10)), Status::kOk);
  memory.untrusted().flip_ciphertext_bit(4, 8);
  memory.untrusted().flip_ciphertext_bit(4, 55);  // same word
  const auto result = memory.read_block(4);
  EXPECT_EQ(result.status, ReadStatus::kCorrectedData);
  EXPECT_EQ(result.data, pattern(10));
}

TEST_F(MacEccModeTest, SingleMacLaneBitFaultRepairedInline) {
  EXPECT_EQ(memory.write_block(6, pattern(11)), Status::kOk);
  memory.untrusted().flip_lane_bit(6, 20);  // inside the 56-bit MAC field
  const auto result = memory.read_block(6);
  EXPECT_EQ(result.status, ReadStatus::kCorrectedMacField);
  EXPECT_EQ(result.data, pattern(11));
}

TEST_F(MacEccModeTest, DoubleMacLaneFaultReported) {
  EXPECT_EQ(memory.write_block(6, pattern(12)), Status::kOk);
  memory.untrusted().flip_lane_bit(6, 20);
  memory.untrusted().flip_lane_bit(6, 41);
  EXPECT_EQ(memory.read_block(6).status, ReadStatus::kIntegrityViolation);
}

TEST_F(MacEccModeTest, TripleDataFaultBeyondCorrectionBudget) {
  EXPECT_EQ(memory.write_block(4, pattern(13)), Status::kOk);
  memory.untrusted().flip_ciphertext_bit(4, 1);
  memory.untrusted().flip_ciphertext_bit(4, 2);
  memory.untrusted().flip_ciphertext_bit(4, 3);
  EXPECT_EQ(memory.read_block(4).status, ReadStatus::kIntegrityViolation);
}

// ------------------------------------------------------ API hardening

TEST(SecureMemoryBounds, OutOfRangeAccessesThrow) {
  SecureMemoryConfig config;
  config.size_bytes = 16 * 1024;
  SecureMemory memory(config);
  const std::uint64_t blocks = memory.num_blocks();
  EXPECT_THROW((void)memory.read_block(blocks), std::out_of_range);
  EXPECT_THROW((void)memory.write_block(blocks + 5, DataBlock{}),
               std::out_of_range);
  EXPECT_THROW((void)memory.scrub_block(blocks), std::out_of_range);
  std::vector<std::uint8_t> buffer(128);
  EXPECT_THROW((void)memory.read_bytes(config.size_bytes - 64, buffer),
               std::out_of_range);
  EXPECT_THROW((void)memory.write_bytes(config.size_bytes - 64, buffer),
               std::out_of_range);
  // The last valid block / byte range still work.
  EXPECT_EQ(memory.read_block(blocks - 1).status, ReadStatus::kOk);
  std::vector<std::uint8_t> tail(64);
  EXPECT_EQ(Status::kOk, memory.read_bytes(config.size_bytes - 64, tail));
}

TEST(SecureMemoryBounds, OverflowingByteRangesThrowInsteadOfWrapping) {
  // Regression: the byte APIs used to test `addr + len > size`, which
  // wraps for addr near UINT64_MAX and sailed past the range check.
  SecureMemoryConfig config;
  config.size_bytes = 16 * 1024;
  SecureMemory memory(config);
  std::vector<std::uint8_t> buffer(128);
  const std::uint64_t wrap_addr = UINT64_MAX - 63;  // addr + 128 wraps to 64
  EXPECT_THROW((void)memory.read_bytes(wrap_addr, buffer), std::out_of_range);
  EXPECT_THROW((void)memory.write_bytes(wrap_addr, buffer), std::out_of_range);
  EXPECT_THROW((void)memory.read_bytes(UINT64_MAX, buffer), std::out_of_range);
  EXPECT_THROW((void)memory.write_bytes(UINT64_MAX, buffer), std::out_of_range);
  // Zero-length ranges: fine at the end of the region, rejected past it.
  std::span<std::uint8_t> empty;
  EXPECT_EQ(Status::kOk, memory.read_bytes(config.size_bytes, empty));
  EXPECT_THROW((void)memory.read_bytes(config.size_bytes + 1, empty), std::out_of_range);
}

// ------------------------------------------------ byte-API atomicity

TEST(SecureMemoryByteApi, UnalignedWriteReadRoundTrip) {
  SecureMemoryConfig config;
  config.size_bytes = 16 * 1024;
  SecureMemory memory(config);
  EXPECT_EQ(memory.write_block(0, pattern(0x21)), Status::kOk);
  EXPECT_EQ(memory.write_block(3, pattern(0x22)), Status::kOk);
  std::vector<std::uint8_t> incoming(3 * 64 + 17);
  for (std::size_t i = 0; i < incoming.size(); ++i)
    incoming[i] = static_cast<std::uint8_t>(i * 7 + 1);
  ASSERT_EQ(Status::kOk, memory.write_bytes(33, incoming));  // blocks 0..3, both edges partial
  std::vector<std::uint8_t> readback(incoming.size());
  ASSERT_EQ(Status::kOk, memory.read_bytes(33, readback));
  EXPECT_EQ(readback, incoming);
  // Bytes outside the range survived the read-modify-write.
  DataBlock head = memory.read_block(0).data;
  EXPECT_EQ(std::memcmp(head.data(), pattern(0x21).data(), 33), 0);
}

TEST(SecureMemoryByteApi, FailedWriteWithTamperedTailIsAllOrNothing) {
  // Regression: a verification failure on the partial TAIL block used to
  // surface only after the leading blocks had already been overwritten —
  // a torn write. The edges must be pre-verified before any mutation.
  SecureMemoryConfig config;
  config.size_bytes = 16 * 1024;
  SecureMemory memory(config);
  EXPECT_EQ(memory.write_block(0, pattern(1)), Status::kOk);
  EXPECT_EQ(memory.write_block(1, pattern(2)), Status::kOk);
  EXPECT_EQ(memory.write_block(2, pattern(3)), Status::kOk);
  // Three flips exceed the correction budget: block 2 cannot verify.
  memory.untrusted().flip_ciphertext_bit(2, 1);
  memory.untrusted().flip_ciphertext_bit(2, 2);
  memory.untrusted().flip_ciphertext_bit(2, 3);

  std::vector<std::uint8_t> incoming(2 * 64 + 2, 0xEE);  // partial tail in 2
  EXPECT_FALSE(status_ok(memory.write_bytes(0, incoming)));
  // Nothing was mutated: blocks 0 and 1 still hold their original data.
  EXPECT_EQ(memory.read_block(0).data, pattern(1));
  EXPECT_EQ(memory.read_block(1).data, pattern(2));
}

TEST(SecureMemoryByteApi, FailedWriteWithTamperedHeadIsAllOrNothing) {
  SecureMemoryConfig config;
  config.size_bytes = 16 * 1024;
  SecureMemory memory(config);
  EXPECT_EQ(memory.write_block(0, pattern(4)), Status::kOk);
  EXPECT_EQ(memory.write_block(1, pattern(5)), Status::kOk);
  memory.untrusted().flip_ciphertext_bit(0, 1);
  memory.untrusted().flip_ciphertext_bit(0, 2);
  memory.untrusted().flip_ciphertext_bit(0, 3);

  std::vector<std::uint8_t> incoming(100, 0xAB);  // partial head in block 0
  EXPECT_FALSE(status_ok(memory.write_bytes(7, incoming)));
  EXPECT_EQ(memory.read_block(1).data, pattern(5));  // untouched
}

// --------------------------------------- generic-delta width override

TEST(GenericWidthSecureMemory, RoundTripAndReencryptAtWidth5) {
  SecureMemoryConfig config;
  config.size_bytes = 64 * 1024;
  config.generic_delta_bits = 5;  // overflows after 31 writes
  SecureMemory memory(config);
  EXPECT_EQ(memory.counters().name(), "delta-5bit-g64");
  const DataBlock plain = pattern(0x42);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(memory.write_block(3, plain), Status::kOk);  // >3 overflows
  const auto result = memory.read_block(3);
  EXPECT_EQ(result.status, ReadStatus::kOk);
  EXPECT_EQ(result.data, plain);
  // Group siblings re-encrypted along the way still decrypt fine.
  EXPECT_EQ(memory.read_block(4).status, ReadStatus::kOk);
}

TEST(GenericWidthSecureMemory, TamperStillDetected) {
  SecureMemoryConfig config;
  config.size_bytes = 16 * 1024;
  config.generic_delta_bits = 9;
  SecureMemory memory(config);
  EXPECT_EQ(memory.write_block(2, pattern(0x13)), Status::kOk);
  memory.untrusted().flip_counter_bit(
      memory.counters().storage_line_of(2), 40);
  EXPECT_EQ(memory.read_block(2).status, ReadStatus::kCounterTampered);
}

// --------------------------------------------- separate-MAC (baseline)

class SeparateMacModeTest : public ::testing::Test {
 protected:
  SecureMemory memory{small_config(CounterSchemeKind::kMonolithic56,
                                   MacPlacement::kSeparate)};
};

TEST_F(SeparateMacModeTest, SingleBitFaultCorrectedBySecDed) {
  EXPECT_EQ(memory.write_block(4, pattern(14)), Status::kOk);
  memory.untrusted().flip_ciphertext_bit(4, 77);
  const auto result = memory.read_block(4);
  EXPECT_EQ(result.status, ReadStatus::kCorrectedWord);
  EXPECT_EQ(result.data, pattern(14));
  EXPECT_EQ(result.mac_evaluations, 0u);  // no brute force needed
}

TEST_F(SeparateMacModeTest, DoubleBitSameWordUncorrectable) {
  EXPECT_EQ(memory.write_block(4, pattern(15)), Status::kOk);
  memory.untrusted().flip_ciphertext_bit(4, 8);
  memory.untrusted().flip_ciphertext_bit(4, 55);  // same 8-byte word
  EXPECT_EQ(memory.read_block(4).status, ReadStatus::kIntegrityViolation);
}

TEST_F(SeparateMacModeTest, SpreadFaultsAcrossWordsAllCorrected) {
  EXPECT_EQ(memory.write_block(4, pattern(16)), Status::kOk);
  memory.untrusted().flip_ciphertext_bit(4, 10);    // word 0
  memory.untrusted().flip_ciphertext_bit(4, 200);   // word 3
  memory.untrusted().flip_ciphertext_bit(4, 460);   // word 7
  const auto result = memory.read_block(4);
  EXPECT_EQ(result.status, ReadStatus::kCorrectedWord);
  EXPECT_EQ(result.data, pattern(16));
}

TEST_F(SeparateMacModeTest, StoredMacTamperDetected) {
  EXPECT_EQ(memory.write_block(4, pattern(17)), Status::kOk);
  memory.untrusted().macs()[4] ^= 0x100;
  EXPECT_EQ(memory.read_block(4).status, ReadStatus::kIntegrityViolation);
}

}  // namespace
}  // namespace secmem
