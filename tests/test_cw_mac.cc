#include "crypto/cw_mac.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"

namespace secmem {
namespace {

CwMacKey test_key() {
  CwMacKey key{};
  key.hash_key = 0x8a5cd789635d2dffULL;
  for (int i = 0; i < 16; ++i)
    key.pad_key[i] = static_cast<std::uint8_t>(0xA0 + i);
  return key;
}

DataBlock pattern_block(std::uint8_t seed) {
  DataBlock b{};
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<std::uint8_t>(seed + i * 7);
  return b;
}

TEST(CwMac, Deterministic) {
  CwMac mac(test_key());
  const DataBlock block = pattern_block(1);
  EXPECT_EQ(mac.compute_block(0x40, 3, block),
            mac.compute_block(0x40, 3, block));
}

TEST(CwMac, TagFitsIn56Bits) {
  CwMac mac(test_key());
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    const DataBlock block = pattern_block(static_cast<std::uint8_t>(i));
    const std::uint64_t tag = mac.compute_block(rng.next(), rng.next(), block);
    EXPECT_EQ(tag & ~kMacMask, 0u);
  }
}

TEST(CwMac, SensitiveToEveryDataBit) {
  CwMac mac(test_key());
  DataBlock block = pattern_block(9);
  const std::uint64_t base = mac.compute_block(0x80, 5, block);
  // Flip each byte's LSB and a sample of other bits.
  for (std::size_t bit = 0; bit < 512; bit += 17) {
    block[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(mac.compute_block(0x80, 5, block), base) << "bit " << bit;
    block[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

TEST(CwMac, BoundToAddress) {
  CwMac mac(test_key());
  const DataBlock block = pattern_block(2);
  EXPECT_NE(mac.compute_block(0x40, 3, block),
            mac.compute_block(0x80, 3, block));
}

TEST(CwMac, BoundToCounter) {
  // The Bonsai property: same data, same address, different counter ->
  // different tag, so replaying stale data requires a stale counter.
  CwMac mac(test_key());
  const DataBlock block = pattern_block(3);
  EXPECT_NE(mac.compute_block(0x40, 3, block),
            mac.compute_block(0x40, 4, block));
}

TEST(CwMac, VerifyAcceptsGenuineRejectsForged) {
  CwMac mac(test_key());
  DataBlock block = pattern_block(4);
  const std::uint64_t tag = mac.compute_block(0xC0, 9, block);
  EXPECT_TRUE(mac.verify(0xC0, 9, block, tag));
  EXPECT_FALSE(mac.verify(0xC0, 9, block, tag ^ 1));
  block[10] ^= 0x40;
  EXPECT_FALSE(mac.verify(0xC0, 9, block, tag));
}

TEST(CwMac, KeysMatter) {
  CwMacKey k2 = test_key();
  k2.hash_key ^= 0xdeadbeef;
  const DataBlock block = pattern_block(5);
  EXPECT_NE(CwMac(test_key()).compute_block(0, 0, block),
            CwMac(k2).compute_block(0, 0, block));

  CwMacKey k3 = test_key();
  k3.pad_key[0] ^= 1;
  EXPECT_NE(CwMac(test_key()).compute_block(0, 0, block),
            CwMac(k3).compute_block(0, 0, block));
}

TEST(CwMac, VariableLengthMessages) {
  CwMac mac(test_key());
  const std::vector<std::uint8_t> msg(100, 0xAB);
  std::set<std::uint64_t> tags;
  for (std::size_t len = 0; len <= 100; len += 9) {
    tags.insert(
        mac.compute(0, 0, std::span<const std::uint8_t>(msg.data(), len)));
  }
  EXPECT_EQ(tags.size(), 12u);  // all lengths produce distinct tags
}

TEST(CwMac, TrailingZeroExtensionDetected) {
  // "abc" and "abc\0" must differ (length is absorbed into the hash).
  CwMac mac(test_key());
  const std::uint8_t m1[] = {'a', 'b', 'c'};
  const std::uint8_t m2[] = {'a', 'b', 'c', 0};
  EXPECT_NE(mac.compute(1, 1, m1), mac.compute(1, 1, m2));
}

TEST(CwMac, NonceReuseLeaksHashDifference) {
  // WHY counter-mode freshness is non-negotiable for Carter-Wegman MACs:
  // tags under the SAME (addr, counter) share the AES pad, so
  //   tag(m1) XOR tag(m2) == polyhash(m1) XOR polyhash(m2)   (mod trunc)
  // — the pad cancels and the keyed-hash difference leaks. With fresh
  // counters the pads differ and the XOR is unpredictable.
  CwMac mac(test_key());
  const DataBlock m1 = pattern_block(1);
  const DataBlock m2 = pattern_block(2);

  const std::uint64_t t1 = mac.compute_block(0x40, 9, m1);
  const std::uint64_t t2 = mac.compute_block(0x40, 9, m2);  // same nonce!
  const std::uint64_t pad = mac.pad_for(0x40, 9);
  // Reconstruct the hash difference from tags alone:
  const std::uint64_t leaked = (t1 ^ t2) & kMacMask;
  const std::uint64_t actual =
      (mac.compute_with_pad(pad, m1) ^ mac.compute_with_pad(pad, m2)) &
      kMacMask;
  EXPECT_EQ(leaked, actual) << "pad failed to cancel (test is wrong)";

  // With distinct counters the same XOR no longer matches — the leak
  // needs genuine nonce reuse.
  const std::uint64_t t2_fresh = mac.compute_block(0x40, 10, m2);
  EXPECT_NE((t1 ^ t2_fresh) & kMacMask, actual);
}

TEST(CwMac, PrfModeDeterministicAndDomainSeparated) {
  CwMac mac(test_key());
  const DataBlock m = pattern_block(3);
  EXPECT_EQ(mac.compute_prf(1, m), mac.compute_prf(1, m));
  EXPECT_NE(mac.compute_prf(1, m), mac.compute_prf(2, m));
  // Disjoint from the XOR-pad tag family over the same bytes: the AES
  // inputs differ in the 0x5A/0xA5 separator byte.
  EXPECT_NE(mac.compute_prf(1, m), mac.compute_block(1, 0, m));
}

TEST(CwMac, PrfModeSensitiveToMessageAndLength) {
  CwMac mac(test_key());
  DataBlock m = pattern_block(4);
  const std::uint64_t base = mac.compute_prf(7, m);
  for (std::size_t bit = 0; bit < 512; bit += 31) {
    m[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(mac.compute_prf(7, m), base) << "bit " << bit;
    m[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  const std::uint8_t s1[] = {'a', 'b', 'c'};
  const std::uint8_t s2[] = {'a', 'b', 'c', 0};
  EXPECT_NE(mac.compute_prf(7, s1), mac.compute_prf(7, s2));
}

TEST(CwMac, PrfModeDomainReuseDoesNotLeakHashDifference) {
  // The snapshot layer MACs MANY messages under one fixed domain —
  // exactly the pad-reuse setting NonceReuseLeaksHashDifference above
  // shows is fatal for the XOR construction (tag XORs hand out hash-key
  // equations). In PRF mode the hash output is encrypted, not masked,
  // so the tag difference never equals the hash difference.
  CwMac mac(test_key());
  Xoshiro256 rng(99);
  for (int i = 0; i < 64; ++i) {
    DataBlock m1, m2;
    for (auto& b : m1) b = static_cast<std::uint8_t>(rng.next());
    for (auto& b : m2) b = static_cast<std::uint8_t>(rng.next());
    const std::uint64_t hash_diff =
        mac.block_polyhash(m1) ^ mac.block_polyhash(m2);
    EXPECT_NE(mac.compute_prf(5, m1) ^ mac.compute_prf(5, m2), hash_diff);
  }
}

TEST(CwMac, CollisionRateSanity) {
  // 56-bit tags over random blocks should essentially never collide in a
  // small sample.
  CwMac mac(test_key());
  Xoshiro256 rng(77);
  std::set<std::uint64_t> tags;
  for (int i = 0; i < 2000; ++i) {
    DataBlock block;
    for (auto& b : block) b = static_cast<std::uint8_t>(rng.next());
    tags.insert(mac.compute_block(0, 0, block));
  }
  EXPECT_EQ(tags.size(), 2000u);
}

}  // namespace
}  // namespace secmem
