#include "crypto/aes128.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace secmem {
namespace {

// FIPS-197 Appendix B / C.1 test vectors.
TEST(Aes128, Fips197AppendixB) {
  const Aes128::Key key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const Aes128::Block plain{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                            0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const Aes128::Block expected{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                               0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                               0x19, 0x6a, 0x0b, 0x32};
  Aes128 aes(key);
  EXPECT_EQ(aes.encrypt(plain), expected);
}

TEST(Aes128, Fips197AppendixC1) {
  const Aes128::Key key{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                        0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const Aes128::Block plain{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                            0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const Aes128::Block expected{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                               0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                               0x70, 0xb4, 0xc5, 0x5a};
  Aes128 aes(key);
  EXPECT_EQ(aes.encrypt(plain), expected);
  EXPECT_EQ(aes.decrypt(expected), plain);
}

TEST(Aes128, NistAesavsGfsboxVectors) {
  // AESAVS Appendix B: zero key, GFSbox plaintexts.
  const Aes128::Key zero_key{};
  const Aes128 aes(zero_key);
  const struct {
    const char* plain;
    const char* cipher;
  } vectors[] = {
      {"f34481ec3cc627bacd5dc3fb08f273e6",
       "0336763e966d92595a567cc9ce537f5e"},
      {"9798c4640bad75c7c3227db910174e72",
       "a9a1631bf4996954ebc093957b234589"},
      {"96ab5c2ff612d9dfaae8c31f30c42168",
       "ff4f8391a6a40ca5b25d23bedd44a597"},
      {"6a118a874519e64e9963798a503f1d35",
       "dc43be40be0e53712f7e2bf5ca707209"},
      {"cb9fceec81286ca3e989bd979b0cb284",
       "92beedab1895a94faa69b632e5cc47ce"},
      {"b26aeb1874e47ca8358ff22378f09144",
       "459264f4798f6a78bacb89c15ed3d601"},
      {"58c8e00b2631686d54eab84b91f0aca1",
       "08a4e2efec8a8e3312ca7460b9040bbf"},
  };
  auto unhex = [](const char* text) {
    Aes128::Block block{};
    for (int i = 0; i < 16; ++i) {
      unsigned byte;
      std::sscanf(text + 2 * i, "%2x", &byte);
      block[i] = static_cast<std::uint8_t>(byte);
    }
    return block;
  };
  for (const auto& vector : vectors) {
    const Aes128::Block plain = unhex(vector.plain);
    const Aes128::Block expected = unhex(vector.cipher);
    EXPECT_EQ(aes.encrypt(plain), expected) << vector.plain;
    EXPECT_EQ(aes.decrypt(expected), plain) << vector.plain;
  }
}

TEST(Aes128, NistAesavsVarKeySamples) {
  // AESAVS Appendix C: zero plaintext, single-bit keys (samples).
  const Aes128::Block zero_plain{};
  auto unhex = [](const char* text) {
    Aes128::Block block{};
    for (int i = 0; i < 16; ++i) {
      unsigned byte;
      std::sscanf(text + 2 * i, "%2x", &byte);
      block[i] = static_cast<std::uint8_t>(byte);
    }
    return block;
  };
  {
    Aes128::Key key{};
    key[0] = 0x80;  // first key bit set
    EXPECT_EQ(Aes128(key).encrypt(zero_plain),
              unhex("0edd33d3c621e546455bd8ba1418bec8"));
  }
  {
    Aes128::Key key{};
    key[0] = 0xc0;
    EXPECT_EQ(Aes128(key).encrypt(zero_plain),
              unhex("4bc3f883450c113c64ca42e1112a9e87"));
  }
}

TEST(Aes128, DecryptInvertsEncryptRandom) {
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    Aes128::Key key;
    Aes128::Block block;
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    for (auto& b : block) b = static_cast<std::uint8_t>(rng.next());
    Aes128 aes(key);
    EXPECT_EQ(aes.decrypt(aes.encrypt(block)), block);
  }
}

TEST(Aes128, InPlaceEncryptAllowed) {
  const Aes128::Key key{};
  Aes128 aes(key);
  Aes128::Block buf{1, 2, 3, 4};
  const Aes128::Block expected = aes.encrypt(buf);
  aes.encrypt_block(buf, buf);
  EXPECT_EQ(buf, expected);
}

TEST(Aes128, DifferentKeysDifferentCiphertext) {
  Aes128::Key k1{}, k2{};
  k2[0] = 1;
  const Aes128::Block plain{};
  EXPECT_NE(Aes128(k1).encrypt(plain), Aes128(k2).encrypt(plain));
}

TEST(Aes128, AvalancheSingleBitKeyFlip) {
  Aes128::Key k1{}, k2{};
  k2[15] ^= 0x80;
  const Aes128::Block plain{};
  const auto c1 = Aes128(k1).encrypt(plain);
  const auto c2 = Aes128(k2).encrypt(plain);
  int differing = 0;
  for (int i = 0; i < 16; ++i)
    differing += std::popcount(static_cast<unsigned>(c1[i] ^ c2[i]));
  // Expect roughly half of 128 bits to flip; anything >30 shows diffusion.
  EXPECT_GT(differing, 30);
}

}  // namespace
}  // namespace secmem
