#include "crypto/ctr_keystream.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"

namespace secmem {
namespace {

Aes128::Key test_key() {
  return Aes128::Key{0x10, 0x32, 0x54, 0x76, 0x98, 0xba, 0xdc, 0xfe,
                     0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef};
}

TEST(CtrKeystream, CryptIsInvolution) {
  CtrKeystream ks(test_key());
  DataBlock data{};
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 3);
  const DataBlock original = data;
  ks.crypt(0x1000, 7, data);
  EXPECT_NE(data, original);  // actually encrypted
  ks.crypt(0x1000, 7, data);
  EXPECT_EQ(data, original);  // decryption = same op
}

TEST(CtrKeystream, KeystreamUniquePerAddress) {
  CtrKeystream ks(test_key());
  DataBlock a{}, b{};
  ks.generate(0x0, 1, a);
  ks.generate(0x40, 1, b);
  EXPECT_NE(a, b);
}

TEST(CtrKeystream, KeystreamUniquePerCounter) {
  CtrKeystream ks(test_key());
  DataBlock a{}, b{};
  ks.generate(0x40, 1, a);
  ks.generate(0x40, 2, b);
  EXPECT_NE(a, b);
}

TEST(CtrKeystream, ChunksWithinBlockDiffer) {
  CtrKeystream ks(test_key());
  DataBlock out{};
  ks.generate(0x80, 5, out);
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      const bool equal =
          std::equal(out.begin() + 16 * i, out.begin() + 16 * (i + 1),
                     out.begin() + 16 * j);
      EXPECT_FALSE(equal) << "chunks " << i << " and " << j;
    }
  }
}

TEST(CtrKeystream, NoCollisionsAcrossManyNonces) {
  // Property: (addr, counter) pairs never repeat a keystream prefix.
  CtrKeystream ks(test_key());
  std::set<std::uint64_t> prefixes;
  for (std::uint64_t addr = 0; addr < 32 * 64; addr += 64) {
    for (std::uint64_t ctr = 0; ctr < 32; ++ctr) {
      DataBlock out{};
      ks.generate(addr, ctr, out);
      std::uint64_t prefix = 0;
      for (int i = 0; i < 8; ++i) prefix |= std::uint64_t{out[i]} << (8 * i);
      EXPECT_TRUE(prefixes.insert(prefix).second)
          << "keystream collision at addr=" << addr << " ctr=" << ctr;
    }
  }
}

TEST(CtrKeystream, LargeCounterValuesSupported) {
  CtrKeystream ks(test_key());
  DataBlock a{}, b{};
  const std::uint64_t big = (std::uint64_t{1} << 56) - 1;  // max 56-bit
  ks.generate(0, big, a);
  ks.generate(0, big - 1, b);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace secmem
