#include "sim/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/system_sim.h"

namespace secmem {
namespace {

TEST(Trace, ParsesWellFormedLines) {
  std::istringstream in(
      "# comment line\n"
      "0 1000 R\n"
      "0 0x2040 W 5\n"
      "1 3f00 R 2 D\n"
      "\n"
      "3 40 w\n");
  const CoreTraces traces = load_trace(in);
  ASSERT_EQ(traces.size(), 4u);
  ASSERT_EQ(traces[0].size(), 2u);
  EXPECT_EQ(traces[0][0].addr, 0x1000u);
  EXPECT_FALSE(traces[0][0].is_write);
  EXPECT_EQ(traces[0][1].addr, 0x2040u);
  EXPECT_TRUE(traces[0][1].is_write);
  EXPECT_EQ(traces[0][1].gap, 5u);
  ASSERT_EQ(traces[1].size(), 1u);
  EXPECT_TRUE(traces[1][0].dependent);
  EXPECT_EQ(traces[1][0].gap, 2u);
  EXPECT_TRUE(traces[3][0].is_write);
  EXPECT_TRUE(traces[2].empty());
}

TEST(Trace, MinCoresPadsResult) {
  std::istringstream in("0 40 R\n");
  EXPECT_EQ(load_trace(in, 4).size(), 4u);
}

TEST(Trace, RejectsMalformedLines) {
  {
    std::istringstream in("0 zzzz R\n");
    EXPECT_THROW(load_trace(in), std::invalid_argument);
  }
  {
    std::istringstream in("0 1000 X\n");
    EXPECT_THROW(load_trace(in), std::invalid_argument);
  }
  {
    std::istringstream in("0 1000\n");
    EXPECT_THROW(load_trace(in), std::invalid_argument);
  }
  {
    std::istringstream in("0 1000 R notanumber\n");
    EXPECT_THROW(load_trace(in), std::invalid_argument);
  }
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW(load_trace_file("/nonexistent/trace.txt"),
               std::runtime_error);
}

TEST(Trace, SaveLoadRoundTrip) {
  CoreTraces original(2);
  original[0].push_back({0x1000, false, 3, true});
  original[0].push_back({0x2000, true, 0, false});
  original[1].push_back({0x40, true, 7, false});

  std::stringstream buffer;
  save_trace(buffer, original);
  const CoreTraces reloaded = load_trace(buffer, 2);

  ASSERT_EQ(reloaded.size(), original.size());
  for (std::size_t core = 0; core < original.size(); ++core) {
    ASSERT_EQ(reloaded[core].size(), original[core].size()) << core;
    for (std::size_t i = 0; i < original[core].size(); ++i) {
      EXPECT_EQ(reloaded[core][i].addr, original[core][i].addr);
      EXPECT_EQ(reloaded[core][i].is_write, original[core][i].is_write);
      EXPECT_EQ(reloaded[core][i].gap, original[core][i].gap);
      EXPECT_EQ(reloaded[core][i].dependent, original[core][i].dependent);
    }
  }
}

TEST(Trace, DrivesTheSystemSimulator) {
  // A hand-rolled trace: core 0 streams, core 1 rewrites one block.
  CoreTraces traces(4);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    traces[0].push_back({i * 64, true, 4, false});
    traces[1].push_back({1 << 20, true, 4, false});
  }
  SystemConfig config;
  config.protection = Protection::kEncrypted;
  config.scheme = CounterSchemeKind::kSplit;
  config.hierarchy.l1 = {4 * 1024, 2, 64};
  config.hierarchy.l2 = {8 * 1024, 4, 64};
  config.hierarchy.l3 = {16 * 1024, 8, 64};
  SystemSimulator sim(config, profile_by_name("canneal"));  // profile unused
  const SimResult result = sim.run_trace(traces);
  EXPECT_EQ(result.instructions,
            2 * 2000 * 5u);  // (gap 4 + the ref) per trace record
  EXPECT_GT(result.cycles, 0u);
  EXPECT_GT(result.dram_reads, 0u);
}

TEST(Trace, TraceReplayIsDeterministic) {
  CoreTraces traces(4);
  for (std::uint64_t i = 0; i < 500; ++i)
    traces[0].push_back({(i * 977) % (1 << 20) * 64, i % 3 == 0, 2, false});
  const auto run_once = [&traces] {
    SystemConfig config;
    SystemSimulator sim(config, profile_by_name("canneal"));
    return sim.run_trace(traces);
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.dram_reads, b.dram_reads);
}

}  // namespace
}  // namespace secmem
