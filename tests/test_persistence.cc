// Persistence (NVMM / hibernate) tests: image round-trips, offline-tamper
// rejection via the sealed root, wrong-key rejection, and the documented
// whole-image-replay limitation. Also covers the deserialize_line decode
// path for every counter scheme.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "counters/generic_delta.h"
#include "engine/secure_memory.h"

namespace secmem {
namespace {

DataBlock pattern(std::uint8_t seed) {
  DataBlock b{};
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<std::uint8_t>(seed * 41 + i);
  return b;
}

SecureMemoryConfig config_for(CounterSchemeKind scheme,
                              MacPlacement placement) {
  SecureMemoryConfig config;
  config.size_bytes = 16 * 1024;
  config.scheme = scheme;
  config.mac_placement = placement;
  return config;
}

class PersistenceContract
    : public ::testing::TestWithParam<
          std::tuple<CounterSchemeKind, MacPlacement>> {};

TEST_P(PersistenceContract, SaveRestoreRoundTrip) {
  const auto config =
      config_for(std::get<0>(GetParam()), std::get<1>(GetParam()));
  SecureMemory original(config);
  Xoshiro256 rng(3);
  // Interesting counter state: hot rewrites trigger maintenance events.
  for (int i = 0; i < 400; ++i)
    EXPECT_EQ(original.write_block(rng.next_below(16),
                                   pattern(static_cast<std::uint8_t>(i))),
              Status::kOk);
  for (std::uint64_t b = 0; b < 32; ++b)
    EXPECT_EQ(original.write_block(b, pattern(static_cast<std::uint8_t>(b))), Status::kOk);

  std::stringstream image;
  EXPECT_EQ(original.save(image), Status::kOk);

  SecureMemory restored(config);
  ASSERT_TRUE(restored.restore(image));
  for (std::uint64_t b = 0; b < 32; ++b) {
    const auto result = restored.read_block(b);
    EXPECT_EQ(result.status, ReadStatus::kOk) << b;
    EXPECT_EQ(result.data, pattern(static_cast<std::uint8_t>(b))) << b;
  }
  // Counter continuity: a write after restore must use a fresh nonce
  // (counter strictly above the pre-save value).
  const std::uint64_t before = restored.counters().read_counter(0);
  EXPECT_EQ(restored.write_block(0, pattern(0xAB)), Status::kOk);
  EXPECT_GT(restored.counters().read_counter(0), before);
  EXPECT_EQ(restored.read_block(0).data, pattern(0xAB));
}

TEST_P(PersistenceContract, OfflineCounterTamperRejected) {
  const auto config =
      config_for(std::get<0>(GetParam()), std::get<1>(GetParam()));
  SecureMemory memory(config);
  EXPECT_EQ(memory.write_block(1, pattern(1)), Status::kOk);
  std::stringstream image;
  EXPECT_EQ(memory.save(image), Status::kOk);

  // Flip one bit inside the counter-storage section of the image.
  std::string bytes = image.str();
  const std::size_t counter_offset =
      8 + 4 * 8 +                                   // header
      memory.num_blocks() * 64 +                    // ciphertext
      memory.num_blocks() * 8 +                     // lanes
      (std::get<1>(GetParam()) == MacPlacement::kSeparate
           ? memory.num_blocks() * 8
           : 0);                                    // macs
  bytes[counter_offset + 5] ^= 0x10;
  std::stringstream tampered(bytes);

  SecureMemory victim(config);
  EXPECT_FALSE(victim.restore(tampered))
      << "offline counter tamper accepted!";
  // The failed restore left a clean, working region.
  EXPECT_EQ(victim.read_block(0).status, ReadStatus::kOk);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, PersistenceContract,
    ::testing::Combine(::testing::Values(CounterSchemeKind::kMonolithic56,
                                         CounterSchemeKind::kSplit,
                                         CounterSchemeKind::kDelta,
                                         CounterSchemeKind::kDualDelta),
                       ::testing::Values(MacPlacement::kEccLane,
                                         MacPlacement::kSeparate)),
    [](const auto& info) {
      return std::string(counter_scheme_kind_name(std::get<0>(info.param)))
                 .substr(0, 5) +
             std::to_string(static_cast<int>(std::get<0>(info.param))) +
             (std::get<1>(info.param) == MacPlacement::kEccLane ? "_EccLane"
                                                                : "_SepMac");
    });

TEST(Persistence, WrongKeyImageRejectedAtFirstRead) {
  SecureMemoryConfig config = config_for(CounterSchemeKind::kDelta,
                                         MacPlacement::kEccLane);
  SecureMemory original(config);
  EXPECT_EQ(original.write_block(5, pattern(9)), Status::kOk);
  std::stringstream image;
  EXPECT_EQ(original.save(image), Status::kOk);

  SecureMemoryConfig other = config;
  other.master_key = 0xDEADBEEF;  // different on-chip secret
  SecureMemory imposter(other);
  // The tree keys differ, so the sealed-root check already fails.
  EXPECT_FALSE(imposter.restore(image));
}

TEST(Persistence, ConfigMismatchRejected) {
  SecureMemory original(
      config_for(CounterSchemeKind::kDelta, MacPlacement::kEccLane));
  std::stringstream image;
  EXPECT_EQ(original.save(image), Status::kOk);
  SecureMemory other(
      config_for(CounterSchemeKind::kSplit, MacPlacement::kEccLane));
  EXPECT_FALSE(other.restore(image));
}

TEST(Persistence, TruncatedImageRejected) {
  SecureMemory original(
      config_for(CounterSchemeKind::kDelta, MacPlacement::kEccLane));
  std::stringstream image;
  EXPECT_EQ(original.save(image), Status::kOk);
  std::stringstream truncated(image.str().substr(0, 1000));
  SecureMemory victim(
      config_for(CounterSchemeKind::kDelta, MacPlacement::kEccLane));
  EXPECT_FALSE(victim.restore(truncated));
}

TEST(Persistence, WholeImageReplayIsAcceptedStale) {
  // The documented limitation (SECURITY.md): a complete, consistent OLD
  // image restores successfully — root freshness needs fresh NV storage.
  const auto config =
      config_for(CounterSchemeKind::kDelta, MacPlacement::kEccLane);
  SecureMemory memory(config);
  EXPECT_EQ(memory.write_block(2, pattern(1)), Status::kOk);
  std::stringstream old_image;
  EXPECT_EQ(memory.save(old_image), Status::kOk);
  EXPECT_EQ(memory.write_block(2, pattern(2)), Status::kOk);  // progress after the snapshot

  SecureMemory rebooted(config);
  ASSERT_TRUE(rebooted.restore(old_image));
  EXPECT_EQ(rebooted.read_block(2).data, pattern(1)) << "stale, as documented";
}

// ---------------------------------------------- deserialize_line decode

TEST(DeserializeLine, RoundTripsEverySchemeExactly) {
  Xoshiro256 rng(17);
  for (int kind = 0; kind < 4; ++kind) {
    auto a = make_counter_scheme(static_cast<CounterSchemeKind>(kind), 256);
    auto b = make_counter_scheme(static_cast<CounterSchemeKind>(kind), 256);
    for (int i = 0; i < 20000; ++i) a->on_write(rng.next_below(256));
    // Transfer state line by line through the stored representation.
    for (std::uint64_t line = 0; line < a->num_storage_lines(); ++line) {
      std::array<std::uint8_t, 64> bytes{};
      a->serialize_line(line, bytes);
      b->deserialize_line(line, bytes);
    }
    for (BlockIndex block = 0; block < 256; ++block) {
      EXPECT_EQ(b->read_counter(block), a->read_counter(block))
          << a->name() << " block " << block;
    }
    // Future behaviour matches too (full internal state transferred).
    for (int i = 0; i < 2000; ++i) {
      const BlockIndex block = rng.next_below(256);
      const auto oa = a->on_write(block);
      const auto ob = b->on_write(block);
      EXPECT_EQ(oa.counter, ob.counter) << a->name();
      EXPECT_EQ(oa.event, ob.event) << a->name();
    }
  }
}

TEST(DeserializeLine, GenericWidthRoundTrip) {
  for (unsigned width : {4u, 9u, 12u}) {
    GenericDeltaCounters a(128, width), b(128, width);
    Xoshiro256 rng(width);
    for (int i = 0; i < 5000; ++i) a.on_write(rng.next_below(128));
    for (std::uint64_t line = 0; line < a.num_storage_lines(); ++line) {
      std::array<std::uint8_t, 64> bytes{};
      a.serialize_line(line, bytes);
      b.deserialize_line(line, bytes);
    }
    for (BlockIndex block = 0; block < 128; ++block)
      EXPECT_EQ(b.read_counter(block), a.read_counter(block)) << width;
  }
}

}  // namespace
}  // namespace secmem
