#include "common/bitops.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

namespace secmem {
namespace {

TEST(Bitops, Parity64) {
  EXPECT_EQ(parity64(0), 0u);
  EXPECT_EQ(parity64(1), 1u);
  EXPECT_EQ(parity64(0b11), 0u);
  EXPECT_EQ(parity64(~std::uint64_t{0}), 0u);
  EXPECT_EQ(parity64(std::uint64_t{1} << 63), 1u);
}

TEST(Bitops, ParityBytes) {
  std::array<std::uint8_t, 4> bytes{0x01, 0x00, 0x00, 0x00};
  EXPECT_EQ(parity_bytes(bytes), 1u);
  bytes[3] = 0x80;
  EXPECT_EQ(parity_bytes(bytes), 0u);
  bytes[1] = 0x07;
  EXPECT_EQ(parity_bytes(bytes), 1u);
}

TEST(Bitops, ExtractInsertRoundTrip) {
  const std::uint64_t v = 0xDEADBEEFCAFEF00DULL;
  for (unsigned pos = 0; pos < 64; pos += 7) {
    for (unsigned width = 1; width <= 64 - pos; width += 5) {
      const std::uint64_t field = extract_bits(v, pos, width);
      const std::uint64_t rebuilt = insert_bits(v, pos, width, field);
      EXPECT_EQ(rebuilt, v) << "pos=" << pos << " width=" << width;
    }
  }
}

TEST(Bitops, InsertOverwritesOnlyTargetField) {
  const std::uint64_t v = 0;
  const std::uint64_t r = insert_bits(v, 8, 8, 0xFF);
  EXPECT_EQ(r, 0xFF00u);
  EXPECT_EQ(insert_bits(r, 8, 8, 0), 0u);
}

TEST(Bitops, ExtractWidth64) {
  EXPECT_EQ(extract_bits(0x1234, 0, 64), 0x1234u);
  EXPECT_EQ(extract_bits(~std::uint64_t{0}, 0, 64), ~std::uint64_t{0});
}

TEST(Bitops, GetSetFlipBit) {
  std::array<std::uint8_t, 8> buf{};
  EXPECT_FALSE(get_bit(buf, 13));
  set_bit(buf, 13, true);
  EXPECT_TRUE(get_bit(buf, 13));
  EXPECT_EQ(buf[1], 0x20);
  flip_bit(buf, 13);
  EXPECT_FALSE(get_bit(buf, 13));
  set_bit(buf, 63, true);
  EXPECT_EQ(buf[7], 0x80);
}

TEST(Bitops, PopcountBytes) {
  std::array<std::uint8_t, 3> buf{0xFF, 0x0F, 0x01};
  EXPECT_EQ(popcount_bytes(buf), 13u);
}

TEST(Bitops, FieldAcrossByteBoundary) {
  std::array<std::uint8_t, 16> buf{};
  insert_field(buf, 5, 13, 0x1ABF);
  EXPECT_EQ(extract_field(buf, 5, 13), 0x1ABFu & ((1u << 13) - 1));
  // Neighbouring bits stay clear.
  EXPECT_FALSE(get_bit(buf, 4));
  EXPECT_FALSE(get_bit(buf, 18));
}

TEST(Bitops, FieldRoundTripSweep) {
  std::array<std::uint8_t, 64> buf{};
  // The delta-counter layouts pack 7-bit fields at arbitrary offsets.
  for (unsigned i = 0; i < 64; ++i)
    insert_field(buf, 56 + i * 7, 7, (i * 37) & 0x7F);
  for (unsigned i = 0; i < 64; ++i)
    EXPECT_EQ(extract_field(buf, 56 + i * 7, 7), (i * 37) & 0x7Fu) << i;
}

TEST(Bitops, Le64RoundTrip) {
  std::uint8_t buf[8];
  store_le64(buf, 0x0123456789ABCDEFULL);
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(buf[7], 0x01);
  EXPECT_EQ(load_le64(buf), 0x0123456789ABCDEFULL);
}

TEST(Bitops, Le32RoundTrip) {
  std::uint8_t buf[4];
  store_le32(buf, 0xA1B2C3D4u);
  EXPECT_EQ(load_le32(buf), 0xA1B2C3D4u);
}

TEST(Bitops, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(log2_pow2(64), 6u);
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
}

}  // namespace
}  // namespace secmem
