#include "ecc/mac_ecc.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/bitops.h"
#include "common/rng.h"

namespace secmem {
namespace {

DataBlock random_block(Xoshiro256& rng) {
  DataBlock b;
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next());
  return b;
}

TEST(MacEcc, PackUnpackRoundTrip) {
  MacEccCodec codec;
  Xoshiro256 rng(1);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t mac = rng.next() & kMacMask;
    const DataBlock ct = random_block(rng);
    const std::uint64_t lane = codec.pack(mac, ct);
    const auto unpacked = codec.unpack(lane);
    EXPECT_EQ(unpacked.mac, mac);
    EXPECT_EQ(unpacked.status, MacEccCodec::MacStatus::kOk);
  }
}

TEST(MacEcc, LaneBytesRoundTrip) {
  MacEccCodec codec;
  Xoshiro256 rng(2);
  const std::uint64_t mac = rng.next() & kMacMask;
  const DataBlock ct = random_block(rng);
  const EccLane lane = codec.pack_lane(mac, ct);
  EXPECT_EQ(codec.unpack_lane(lane).mac, mac);
}

TEST(MacEcc, BatchPackMatchesScalarPack) {
  // The batch entry points exist for the group write path; their contract
  // is bit-identity with per-block calls, checked here over random inputs
  // and the all-zeros / all-ones corners.
  MacEccCodec codec;
  Xoshiro256 rng(31);
  constexpr std::size_t kN = 64;
  std::vector<std::uint64_t> macs(kN);
  std::vector<DataBlock> cts(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    macs[i] = rng.next() & kMacMask;
    cts[i] = random_block(rng);
  }
  macs[0] = 0;
  cts[0] = DataBlock{};
  macs[1] = kMacMask;
  cts[1].fill(0xFF);

  std::vector<EccLane> batch(kN);
  codec.pack_lane_batch(macs, cts, batch);
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_EQ(batch[i], codec.pack_lane(macs[i], cts[i])) << "lane " << i;
}

TEST(MacEcc, BatchUnpackMatchesScalarUnpack) {
  // Including damaged lanes: correction decisions must not change shape
  // under batching.
  MacEccCodec codec;
  Xoshiro256 rng(32);
  constexpr std::size_t kN = 48;
  std::vector<EccLane> lanes(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    lanes[i] = codec.pack_lane(rng.next() & kMacMask, random_block(rng));
    if (i % 3 == 1)  // single-bit MAC damage: corrected
      lanes[i][i % 7] ^= static_cast<std::uint8_t>(1u << (i % 8));
    if (i % 3 == 2) {  // double-bit MAC damage: uncorrectable
      lanes[i][0] ^= 0x05;
    }
  }
  std::vector<MacEccCodec::Unpacked> batch(kN);
  codec.unpack_lane_batch(lanes, batch);
  for (std::size_t i = 0; i < kN; ++i) {
    const auto scalar = codec.unpack_lane(lanes[i]);
    EXPECT_EQ(batch[i].mac, scalar.mac) << "lane " << i;
    EXPECT_EQ(batch[i].status, scalar.status) << "lane " << i;
    EXPECT_EQ(batch[i].scrub_bit, scalar.scrub_bit) << "lane " << i;
  }
}

TEST(MacEcc, EverySingleMacBitFlipRepaired) {
  // Paper §3.3: 7 parity bits correct single-bit flips in the MAC itself,
  // without consulting the integrity tree.
  MacEccCodec codec;
  Xoshiro256 rng(3);
  const std::uint64_t mac = rng.next() & kMacMask;
  const DataBlock ct = random_block(rng);
  const std::uint64_t lane = codec.pack(mac, ct);
  for (unsigned bit = 0; bit < 63; ++bit) {  // MAC + its 7 parity bits
    const auto unpacked = codec.unpack(lane ^ (1ULL << bit));
    EXPECT_EQ(unpacked.status, MacEccCodec::MacStatus::kCorrectedSingle)
        << "bit " << bit;
    EXPECT_EQ(unpacked.mac, mac) << "bit " << bit;
  }
}

TEST(MacEcc, EveryDoubleMacBitFlipFlaggedUncorrectable) {
  // Exhaustive: all C(63,2) = 1953 double-bit patterns over the MAC and
  // its parity bits must be detected, never miscorrected into a
  // different-but-"valid" MAC.
  MacEccCodec codec;
  Xoshiro256 rng(4);
  const std::uint64_t mac = rng.next() & kMacMask;
  const DataBlock ct = random_block(rng);
  const std::uint64_t lane = codec.pack(mac, ct);
  int checked = 0;
  for (unsigned i = 0; i < 63; ++i) {
    for (unsigned j = i + 1; j < 63; ++j) {
      const auto unpacked = codec.unpack(lane ^ (1ULL << i) ^ (1ULL << j));
      ASSERT_EQ(unpacked.status, MacEccCodec::MacStatus::kUncorrectable)
          << "bits " << i << "," << j;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 63 * 62 / 2);
}

TEST(MacEcc, ScrubBitDetectsOddCiphertextFlips) {
  MacEccCodec codec;
  Xoshiro256 rng(5);
  const DataBlock ct = random_block(rng);
  const std::uint64_t lane = codec.pack(0x123456789ABCDEULL, ct);
  EXPECT_TRUE(codec.scrub_ok(lane, ct));

  DataBlock corrupted = ct;
  flip_bit(corrupted, 99);
  EXPECT_FALSE(codec.scrub_ok(lane, corrupted));

  flip_bit(corrupted, 200);  // two flips: parity blind, as expected
  EXPECT_TRUE(codec.scrub_ok(lane, corrupted));
}

TEST(MacEcc, ScrubBitFlipItselfDetected) {
  MacEccCodec codec;
  Xoshiro256 rng(6);
  const DataBlock ct = random_block(rng);
  const std::uint64_t lane = codec.pack(1, ct);
  EXPECT_FALSE(codec.scrub_ok(lane ^ (1ULL << kScrubBitPos), ct));
}

TEST(MacEcc, ScrubBitDoesNotDisturbMac) {
  // Flipping the scrub bit must leave the MAC field decodable and clean.
  MacEccCodec codec;
  Xoshiro256 rng(7);
  const std::uint64_t mac = rng.next() & kMacMask;
  const DataBlock ct = random_block(rng);
  const std::uint64_t lane = codec.pack(mac, ct) ^ (1ULL << kScrubBitPos);
  const auto unpacked = codec.unpack(lane);
  EXPECT_EQ(unpacked.mac, mac);
  EXPECT_EQ(unpacked.status, MacEccCodec::MacStatus::kOk);
}

TEST(MacEcc, LayoutUses64BitsExactly) {
  // 56 MAC + 7 parity + 1 scrub = 64. Every lane bit is meaningful:
  // two different MACs or ciphertexts must never produce identical lanes.
  MacEccCodec codec;
  const DataBlock ct{};
  const std::uint64_t lane_a = codec.pack(0, ct);
  const std::uint64_t lane_b = codec.pack(1, ct);
  EXPECT_NE(lane_a, lane_b);
  DataBlock ct2{};
  ct2[0] = 1;  // parity changes
  EXPECT_NE(codec.pack(0, ct), codec.pack(0, ct2));
}

}  // namespace
}  // namespace secmem
