// tools/secmem-lint — drives the real linter binary over the fixture
// trees in tests/lint_fixtures/ (one deliberate violation per rule, plus
// a tree of near-misses that must stay clean) and over the repository
// itself, which must lint clean with the checked-in allowlist.
//
// Paths come in as compile definitions from tests/CMakeLists.txt:
//   SECMEM_LINT_BIN       absolute path of the built secmem-lint
//   SECMEM_LINT_FIXTURES  absolute path of tests/lint_fixtures
//   SECMEM_REPO_ROOT      absolute path of the source tree
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <string>
#include <vector>

namespace {

struct LintRun {
  int exit_code = -1;
  std::vector<std::string> lines;

  bool has(const std::string& fragment) const {
    for (const std::string& l : lines)
      if (l.find(fragment) != std::string::npos) return true;
    return false;
  }
  std::size_t count_rule(const std::string& rule) const {
    std::size_t n = 0;
    for (const std::string& l : lines)
      if (l.find(": " + rule + ":") != std::string::npos) ++n;
    return n;
  }
};

LintRun run_lint(const std::string& args) {
  const std::string cmd =
      std::string(SECMEM_LINT_BIN) + " " + args + " 2>/dev/null";
  LintRun result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) return result;
  char buf[1024];
  std::string line;
  while (std::fgets(buf, sizeof(buf), pipe)) {
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
      line.pop_back();
    result.lines.push_back(line);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

const std::string kBad = std::string(SECMEM_LINT_FIXTURES) + "/bad";
const std::string kGood = std::string(SECMEM_LINT_FIXTURES) + "/good";

TEST(SecmemLint, BadFixtureTripsEveryTokenRule) {
  const LintRun run = run_lint("--root " + kBad);
  EXPECT_EQ(run.exit_code, 1) << "findings must exit 1";
  // One demonstration per rule, at the expected site.
  EXPECT_TRUE(run.has("src/engine/bad_compare.cc:7: ct-compare"));
  EXPECT_TRUE(run.has("src/engine/bad_compare.cc:11: ct-compare"));
  EXPECT_TRUE(run.has("src/engine/bad_compare.cc:15: ct-compare"));
  EXPECT_TRUE(run.has("src/engine/bad_mutex.h:7: raw-mutex"));
  EXPECT_TRUE(run.has("src/engine/bad_mutex.h:8: raw-mutex"));
  EXPECT_TRUE(run.has("src/engine/bad_mutex.h:11: raw-mutex"));
  EXPECT_TRUE(run.has("src/engine/bad_mutex.h:15: raw-mutex"));
  EXPECT_TRUE(run.has("src/engine/bad_mutex.h:16: raw-mutex"));
  EXPECT_TRUE(run.has("src/sim/bad_rand.cc:6: sim-rand"));
  EXPECT_TRUE(run.has("src/sim/bad_rand.cc:7: sim-rand"));
  EXPECT_TRUE(run.has("src/sim/bad_rand.cc:8: sim-rand"));
  EXPECT_TRUE(run.has("src/dram/bad_stat.cc:5: stat-name"));
  EXPECT_TRUE(run.has("src/dram/bad_stat.cc:6: stat-name"));
  EXPECT_TRUE(run.has("src/tree/bad_include.cc:2: crypto-include"));
  EXPECT_TRUE(run.has("src/tree/bad_include.cc:3: crypto-include"));
  EXPECT_TRUE(run.has("src/tree/bad_include.cc:4: crypto-include"));
  EXPECT_TRUE(run.has("src/engine/bad_throw.cc:6: no-throw-engine"));
  EXPECT_TRUE(run.has("src/engine/bad_throw.cc:10: no-throw-engine"));
  EXPECT_TRUE(run.has("src/engine/bad_throw.cc:17: no-throw-engine"));
  EXPECT_TRUE(run.has("src/counters/bad_throw.cc:5: no-throw-engine"));
  // The registered-namespace call must NOT fire.
  EXPECT_EQ(run.count_rule("stat-name"), 2u);
  // Exactly the four demonstration throws — argument-contract types in
  // the good tree stay silent (covered by GoodFixtureLintsClean).
  EXPECT_EQ(run.count_rule("no-throw-engine"), 4u);
}

TEST(SecmemLint, BadFixtureTripsEveryFlowRule) {
  const LintRun run = run_lint("--root " + kBad);
  EXPECT_EQ(run.exit_code, 1);
  // verify-before-apply: all four sink shapes.
  EXPECT_TRUE(run.has("src/engine/bad_verify.cc:13: verify-before-apply"));
  EXPECT_TRUE(run.has("src/engine/bad_verify.cc:14: verify-before-apply"));
  EXPECT_TRUE(run.has("src/engine/bad_verify.cc:22: verify-before-apply"));
  EXPECT_TRUE(run.has("src/engine/bad_verify.cc:29: verify-before-apply"));
  EXPECT_EQ(run.count_rule("verify-before-apply"), 4u);
  // status-discard: dead variable, overwrite, trailing dead write.
  EXPECT_TRUE(run.has("src/engine/bad_status.cc:11: status-discard"));
  EXPECT_TRUE(run.has("src/engine/bad_status.cc:16: status-discard"));
  EXPECT_TRUE(run.has("src/engine/bad_status.cc:23: status-discard"));
  EXPECT_EQ(run.count_rule("status-discard"), 3u);
  // lock-discipline: each guarded member, per offending function.
  EXPECT_TRUE(run.has("src/engine/bad_lock.h:10: lock-discipline"));
  EXPECT_TRUE(run.has("src/engine/bad_lock.h:13: lock-discipline"));
  EXPECT_EQ(run.count_rule("lock-discipline"), 3u);
  // secret-branch: if condition, ternary, both short-circuit operands.
  EXPECT_TRUE(run.has("src/crypto/bad_branch.cc:7: secret-branch"));
  EXPECT_TRUE(run.has("src/crypto/bad_branch.cc:8: secret-branch"));
  EXPECT_TRUE(run.has("src/crypto/bad_branch.cc:12: secret-branch"));
  EXPECT_EQ(run.count_rule("secret-branch"), 4u);
  // knob-registry: missing CI leg AND missing docs, same knob.
  EXPECT_TRUE(run.has("src/engine/bad_knob.cc:7: knob-registry"));
  EXPECT_EQ(run.count_rule("knob-registry"), 2u);
}

TEST(SecmemLint, GoodFixtureLintsClean) {
  const LintRun run = run_lint("--root " + kGood);
  EXPECT_EQ(run.exit_code, 0) << "near-misses (comments, strings, "
                                 "substrings, inline allow, verified "
                                 "staging, guarded access, registered "
                                 "knobs) must not fire";
  EXPECT_TRUE(run.lines.empty());
  // The good tree's inline allow is live, so --check-allowlist is clean
  // too.
  EXPECT_EQ(run_lint("--root " + kGood + " --check-allowlist").exit_code, 0);
}

TEST(SecmemLint, RepoLintsCleanOnlyWithAllowlist) {
  // The repository must lint clean WITH the checked-in allowlist —
  // including --check-allowlist, proving no suppression is stale — and
  // must NOT lint clean without it, proving every entry is live.
  const std::string root = SECMEM_REPO_ROOT;
  const LintRun with =
      run_lint("--root " + root + " --allowlist " + root +
               "/tools/secmem-lint.allow --check-allowlist");
  EXPECT_EQ(with.exit_code, 0) << "repository must lint clean";
  const LintRun without = run_lint("--root " + root);
  EXPECT_EQ(without.exit_code, 1)
      << "allowlist entries must correspond to real findings";
  // Every finding surfaced without the allowlist must be one the
  // allowlist deliberately covers — nothing else may hide behind it.
  for (const std::string& l : without.lines) {
    const bool covered =
        (l.find("src/engine/secure_memory.cc") != std::string::npos &&
         l.find(": ct-compare:") != std::string::npos) ||
        (l.find("src/engine/sharded_memory.cc") != std::string::npos &&
         l.find(": ct-compare:") != std::string::npos) ||
        (l.find("tests/test_metrics.cc") != std::string::npos &&
         l.find(": stat-name:") != std::string::npos) ||
        (l.find("tests/test_stats.cc") != std::string::npos &&
         l.find(": stat-name:") != std::string::npos);
    EXPECT_TRUE(covered) << "unexpected finding outside the allowlist: "
                         << l;
  }
}

TEST(SecmemLint, StaleAllowlistEntryFailsCheck) {
  const std::string stale =
      std::string(SECMEM_LINT_FIXTURES) + "/stale.allow";
  // Without --check-allowlist the dead entry goes unnoticed...
  EXPECT_EQ(
      run_lint("--root " + kGood + " --allowlist " + stale).exit_code, 0);
  // ...with it, the run fails and names the entry.
  const LintRun check = run_lint("--root " + kGood + " --allowlist " +
                                 stale + " --check-allowlist");
  EXPECT_EQ(check.exit_code, 1);
  EXPECT_TRUE(check.has("stale-allow"));
  EXPECT_TRUE(check.has("src/engine/good_compare.cc: sim-rand"));
}

TEST(SecmemLint, StaleInlineAllowFailsCheck) {
  EXPECT_EQ(run_lint("--root " + kBad).count_rule("stale-allow"), 0u);
  const LintRun check = run_lint("--root " + kBad + " --check-allowlist");
  EXPECT_EQ(check.exit_code, 1);
  EXPECT_TRUE(
      check.has("src/engine/bad_stale_allow.cc:5: stale-allow"));
}

TEST(SecmemLint, JsonOutputIsWellFormedAndComplete) {
  const LintRun text = run_lint("--root " + kBad);
  const LintRun json = run_lint("--root " + kBad + " --json");
  EXPECT_EQ(json.exit_code, 1) << "--json must not change the exit code";
  ASSERT_GE(json.lines.size(), 2u);
  EXPECT_EQ(json.lines.front(), "[");
  EXPECT_EQ(json.lines.back(), "]");
  // One JSON object per text finding, same order.
  EXPECT_EQ(json.lines.size() - 2, text.lines.size());
  EXPECT_TRUE(json.has("\"file\": \"src/engine/bad_verify.cc\""));
  EXPECT_TRUE(json.has("\"rule\": \"verify-before-apply\""));
  EXPECT_TRUE(json.has("\"line\": 29"));
  // An empty result is an empty array.
  const LintRun clean = run_lint("--root " + kGood + " --json");
  EXPECT_EQ(clean.exit_code, 0);
  ASSERT_EQ(clean.lines.size(), 1u);
  EXPECT_EQ(clean.lines.front(), "[]");
}

TEST(SecmemLint, BadUsageExitsTwo) {
  EXPECT_EQ(run_lint("--no-such-flag").exit_code, 2);
  EXPECT_EQ(run_lint("--root " + kGood + " /no/such/path").exit_code, 2);
}

}  // namespace
