// tools/secmem-lint — drives the real linter binary over the fixture
// trees in tests/lint_fixtures/ (one deliberate violation per rule, plus
// a tree of near-misses that must stay clean) and over the repository
// itself, which must lint clean with the checked-in allowlist.
//
// Paths come in as compile definitions from tests/CMakeLists.txt:
//   SECMEM_LINT_BIN       absolute path of the built secmem-lint
//   SECMEM_LINT_FIXTURES  absolute path of tests/lint_fixtures
//   SECMEM_REPO_ROOT      absolute path of the source tree
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <string>
#include <vector>

namespace {

struct LintRun {
  int exit_code = -1;
  std::vector<std::string> lines;

  bool has(const std::string& fragment) const {
    for (const std::string& l : lines)
      if (l.find(fragment) != std::string::npos) return true;
    return false;
  }
  std::size_t count_rule(const std::string& rule) const {
    std::size_t n = 0;
    for (const std::string& l : lines)
      if (l.find(": " + rule + ":") != std::string::npos) ++n;
    return n;
  }
};

LintRun run_lint(const std::string& args) {
  const std::string cmd =
      std::string(SECMEM_LINT_BIN) + " " + args + " 2>/dev/null";
  LintRun result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) return result;
  char buf[1024];
  std::string line;
  while (std::fgets(buf, sizeof(buf), pipe)) {
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
      line.pop_back();
    result.lines.push_back(line);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

const std::string kBad = std::string(SECMEM_LINT_FIXTURES) + "/bad";
const std::string kGood = std::string(SECMEM_LINT_FIXTURES) + "/good";

TEST(SecmemLint, BadFixtureTripsEveryRule) {
  const LintRun run = run_lint("--root " + kBad);
  EXPECT_EQ(run.exit_code, 1) << "findings must exit 1";
  // One demonstration per rule, at the expected site.
  EXPECT_TRUE(run.has("src/engine/bad_compare.cc:7: ct-compare"));
  EXPECT_TRUE(run.has("src/engine/bad_compare.cc:11: ct-compare"));
  EXPECT_TRUE(run.has("src/engine/bad_compare.cc:15: ct-compare"));
  EXPECT_TRUE(run.has("src/engine/bad_mutex.h:7: raw-mutex"));
  EXPECT_TRUE(run.has("src/engine/bad_mutex.h:8: raw-mutex"));
  EXPECT_TRUE(run.has("src/engine/bad_mutex.h:11: raw-mutex"));
  EXPECT_TRUE(run.has("src/engine/bad_mutex.h:15: raw-mutex"));
  EXPECT_TRUE(run.has("src/engine/bad_mutex.h:16: raw-mutex"));
  EXPECT_TRUE(run.has("src/sim/bad_rand.cc:6: sim-rand"));
  EXPECT_TRUE(run.has("src/sim/bad_rand.cc:7: sim-rand"));
  EXPECT_TRUE(run.has("src/sim/bad_rand.cc:8: sim-rand"));
  EXPECT_TRUE(run.has("src/dram/bad_stat.cc:5: stat-name"));
  EXPECT_TRUE(run.has("src/dram/bad_stat.cc:6: stat-name"));
  EXPECT_TRUE(run.has("src/tree/bad_include.cc:2: crypto-include"));
  EXPECT_TRUE(run.has("src/tree/bad_include.cc:3: crypto-include"));
  EXPECT_TRUE(run.has("src/tree/bad_include.cc:4: crypto-include"));
  EXPECT_TRUE(run.has("src/engine/bad_throw.cc:6: no-throw-engine"));
  EXPECT_TRUE(run.has("src/engine/bad_throw.cc:10: no-throw-engine"));
  EXPECT_TRUE(run.has("src/engine/bad_throw.cc:17: no-throw-engine"));
  EXPECT_TRUE(run.has("src/counters/bad_throw.cc:5: no-throw-engine"));
  // The registered-namespace call must NOT fire.
  EXPECT_EQ(run.count_rule("stat-name"), 2u);
  // Exactly the four demonstration throws — argument-contract types in
  // the good tree stay silent (covered by GoodFixtureLintsClean).
  EXPECT_EQ(run.count_rule("no-throw-engine"), 4u);
}

TEST(SecmemLint, GoodFixtureLintsClean) {
  const LintRun run = run_lint("--root " + kGood);
  EXPECT_EQ(run.exit_code, 0) << "near-misses (comments, strings, "
                                 "substrings, inline allow) must not fire";
  EXPECT_TRUE(run.lines.empty());
}

TEST(SecmemLint, InlineAllowIsPerRule) {
  // The same line's allow(ct-compare) must not suppress other rules:
  // scan the good tree for a raw-mutex violation we inject via a file
  // outside it — cheaper: assert the bad tree's allow-free lines all
  // surfaced (already covered) and that the good tree's allowed memcmp
  // line produced nothing (covered by clean run). Here: the allowlist
  // mechanism — the repository itself must lint clean only WITH the
  // checked-in allowlist, proving the allowlist entries are live.
  const std::string root = SECMEM_REPO_ROOT;
  const LintRun with = run_lint("--root " + root + " --allowlist " + root +
                                "/tools/secmem-lint.allow");
  EXPECT_EQ(with.exit_code, 0) << "repository must lint clean";
  const LintRun without = run_lint("--root " + root);
  EXPECT_EQ(without.exit_code, 1)
      << "allowlist entries must correspond to real findings";
  EXPECT_TRUE(without.has("src/engine/secure_memory.cc"));
  EXPECT_TRUE(without.has("src/engine/sharded_memory.cc"));
  EXPECT_EQ(without.count_rule("ct-compare"), without.lines.size())
      << "only the magic-header memcmps may be allowlisted";
}

TEST(SecmemLint, BadUsageExitsTwo) {
  EXPECT_EQ(run_lint("--no-such-flag").exit_code, 2);
  EXPECT_EQ(run_lint("--root " + kGood + " /no/such/path").exit_code, 2);
}

}  // namespace
