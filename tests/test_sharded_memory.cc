// ShardedSecureMemory: routing, batch I/O, cross-shard byte ranges,
// aggregated maintenance, and the multithreaded stress tests that the
// TSan build (scripts/sanitize.sh tsan) runs to prove the lock table
// actually covers every shared path.
#include "engine/sharded_memory.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "engine/concurrent.h"

namespace secmem {
namespace {

DataBlock pattern(std::uint8_t seed) {
  DataBlock b{};
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<std::uint8_t>(seed ^ (i * 13));
  return b;
}

SecureMemoryConfig region_config(std::uint64_t size_bytes) {
  SecureMemoryConfig config;
  config.size_bytes = size_bytes;
  return config;
}

TEST(ShardedSecureMemory, RoutingStripesWholeGroupsRoundRobin) {
  ShardedSecureMemory memory(region_config(256 * 1024), 4);
  const unsigned granule = memory.granule_blocks();
  EXPECT_EQ(granule % 64, 0u);  // never splits a 4 KB block-group
  // Every block of one granule lands on the same shard...
  for (unsigned b = 0; b < granule; ++b)
    EXPECT_EQ(memory.shard_of_block(b), memory.shard_of_block(0));
  // ...and consecutive granules round-robin across shards.
  for (unsigned g = 0; g < 8; ++g)
    EXPECT_EQ(memory.shard_of_block(g * granule), g % 4);
}

TEST(ShardedSecureMemory, MonolithicSchemeStillRoutesAt4KGranules) {
  SecureMemoryConfig config = region_config(256 * 1024);
  config.scheme = CounterSchemeKind::kMonolithic56;
  ShardedSecureMemory memory(config, 4);
  EXPECT_EQ(memory.granule_blocks() % 64, 0u);
}

TEST(ShardedSecureMemory, InvalidGeometryThrows) {
  EXPECT_THROW(ShardedSecureMemory(region_config(256 * 1024), 0),
               std::invalid_argument);
  // 5 shards cannot evenly split 64 granules of 4 KB.
  EXPECT_THROW(ShardedSecureMemory(region_config(256 * 1024), 5),
               std::invalid_argument);
  ShardedSecureMemory memory(region_config(256 * 1024), 8);
  EXPECT_THROW((void)memory.read_block(memory.num_blocks()), std::out_of_range);
  EXPECT_THROW((void)memory.write_block(memory.num_blocks(), DataBlock{}),
               std::out_of_range);
}

TEST(ShardedSecureMemory, BlockRoundTripAcrossEveryShard) {
  ShardedSecureMemory memory(region_config(256 * 1024), 8);
  const unsigned granule = memory.granule_blocks();
  // One block in each of the first 16 granules: hits every shard twice.
  for (unsigned g = 0; g < 16; ++g)
    EXPECT_EQ(memory.write_block(g * granule + 3, pattern(static_cast<std::uint8_t>(g))), Status::kOk);
  for (unsigned g = 0; g < 16; ++g) {
    const auto result = memory.read_block(g * granule + 3);
    EXPECT_EQ(result.status, ReadStatus::kOk);
    EXPECT_EQ(result.data, pattern(static_cast<std::uint8_t>(g)));
  }
  const auto stats = memory.stats();
  EXPECT_EQ(stats.writes, 16u);
  EXPECT_EQ(stats.reads, 16u);
  memory.reset_stats();
  EXPECT_EQ(memory.stats().reads, 0u);
}

TEST(ShardedSecureMemory, BatchIoMatchesSingleOpsInRequestOrder) {
  ShardedSecureMemory memory(region_config(256 * 1024), 8);
  const unsigned granule = memory.granule_blocks();

  // Shard-scattered, deliberately unsorted, with a duplicate.
  std::vector<ShardedSecureMemory::BlockWrite> writes;
  std::vector<std::uint64_t> blocks;
  for (unsigned i = 0; i < 24; ++i) {
    const std::uint64_t block = ((i * 7) % 24) * granule + i;
    blocks.push_back(block);
    writes.push_back({block, pattern(static_cast<std::uint8_t>(i))});
  }
  blocks.push_back(blocks.front());  // duplicate read request
  EXPECT_EQ(memory.write_blocks(writes), Status::kOk);

  const auto results = memory.read_blocks(blocks);
  ASSERT_EQ(results.size(), blocks.size());
  for (unsigned i = 0; i < 24; ++i) {
    EXPECT_EQ(results[i].status, ReadStatus::kOk);
    EXPECT_EQ(results[i].data, pattern(static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(results.back().data, results.front().data);

  EXPECT_THROW(memory.read_blocks(std::vector<std::uint64_t>{
                   memory.num_blocks()}),
               std::out_of_range);
}

TEST(ShardedSecureMemory, ByteRangeSpanningShardsRoundTrips) {
  ShardedSecureMemory memory(region_config(256 * 1024), 8);
  const std::uint64_t granule_bytes = memory.granule_blocks() * 64ULL;
  // Start 10 bytes before a granule boundary, run two granules deep:
  // touches three shards, both edge blocks partial.
  const std::uint64_t addr = granule_bytes - 10;
  std::vector<std::uint8_t> incoming(2 * granule_bytes + 20);
  for (std::size_t i = 0; i < incoming.size(); ++i)
    incoming[i] = static_cast<std::uint8_t>(i * 31 + 5);
  ASSERT_EQ(Status::kOk, memory.write_bytes(addr, incoming));
  std::vector<std::uint8_t> readback(incoming.size());
  ASSERT_EQ(Status::kOk, memory.read_bytes(addr, readback));
  EXPECT_EQ(readback, incoming);

  std::vector<std::uint8_t> buffer(128);
  EXPECT_THROW((void)memory.read_bytes(UINT64_MAX - 63, buffer), std::out_of_range);
  EXPECT_THROW((void)memory.write_bytes(UINT64_MAX - 63, buffer), std::out_of_range);
}

TEST(ShardedSecureMemory, CrossShardWriteIsAllOrNothing) {
  ShardedSecureMemory memory(region_config(256 * 1024), 8);
  const unsigned granule = memory.granule_blocks();
  const std::uint64_t tail_block = granule;  // first block of shard 1
  EXPECT_EQ(memory.write_block(0, pattern(1)), Status::kOk);
  EXPECT_EQ(memory.write_block(tail_block, pattern(2)), Status::kOk);
  // Make the tail block unreadable in its own shard.
  memory.with_shard_exclusive(1, [](SecureMemory& shard) {
    shard.untrusted().flip_ciphertext_bit(0, 1);
    shard.untrusted().flip_ciphertext_bit(0, 2);
    shard.untrusted().flip_ciphertext_bit(0, 3);
  });

  // Whole of shard 0's granule plus 2 bytes into the tampered block.
  std::vector<std::uint8_t> incoming(granule * 64ULL + 2, 0xEE);
  EXPECT_FALSE(status_ok(memory.write_bytes(0, incoming)));
  // Shard 0 was not touched.
  EXPECT_EQ(memory.read_block(0).data, pattern(1));
}

TEST(ShardedSecureMemory, ScrubAllSweepsAndHealsEveryShard) {
  ShardedSecureMemory memory(region_config(256 * 1024), 8);
  EXPECT_EQ(memory.write_block(5, pattern(9)), Status::kOk);
  // Plant a single-bit ciphertext fault in two different shards.
  memory.with_shard_exclusive(0, [](SecureMemory& shard) {
    shard.untrusted().flip_ciphertext_bit(5, 100);
  });
  memory.with_shard_exclusive(3, [](SecureMemory& shard) {
    shard.untrusted().flip_ciphertext_bit(2, 7);
  });
  const auto report = memory.scrub_all();
  EXPECT_EQ(report.scanned, memory.num_blocks());
  EXPECT_EQ(report.repaired_data, 2u);
  EXPECT_EQ(report.uncorrectable, 0u);
  // Healed in place: reads are clean again.
  EXPECT_EQ(memory.read_block(5).status, ReadStatus::kOk);
  EXPECT_EQ(memory.read_block(5).data, pattern(9));
  EXPECT_EQ(memory.scrub_all().repaired_data, 0u);
}

TEST(ShardedSecureMemory, RotateMasterKeyPreservesContents) {
  ShardedSecureMemory memory(region_config(256 * 1024), 4);
  const unsigned granule = memory.granule_blocks();
  for (unsigned g = 0; g < 8; ++g)
    EXPECT_EQ(memory.write_block(g * granule, pattern(static_cast<std::uint8_t>(g))), Status::kOk);
  ASSERT_TRUE(memory.rotate_master_key(0xfeedface));
  for (unsigned g = 0; g < 8; ++g) {
    const auto result = memory.read_block(g * granule);
    EXPECT_EQ(result.status, ReadStatus::kOk);
    EXPECT_EQ(result.data, pattern(static_cast<std::uint8_t>(g)));
  }
}

TEST(ShardedSecureMemory, RotateMasterKeyIsAllOrNothingAcrossShards) {
  ShardedSecureMemory memory(region_config(256 * 1024), 4);
  const unsigned granule = memory.granule_blocks();
  EXPECT_EQ(memory.write_block(0, pattern(1)), Status::kOk);               // shard 0
  EXPECT_EQ(memory.write_block(2 * granule, pattern(2)), Status::kOk);     // shard 2
  // Shard 2 has an uncorrectable fault: its rotation must refuse.
  memory.with_shard_exclusive(2, [](SecureMemory& shard) {
    shard.untrusted().flip_ciphertext_bit(0, 1);
    shard.untrusted().flip_ciphertext_bit(0, 2);
    shard.untrusted().flip_ciphertext_bit(0, 3);
  });
  EXPECT_FALSE(memory.rotate_master_key(0xdeadbeef));
  // The region is still uniformly under the OLD master: clean shards
  // read back fine, and the tampered block is still flagged (not
  // laundered into a freshly-keyed state).
  EXPECT_EQ(memory.read_block(0).status, ReadStatus::kOk);
  EXPECT_EQ(memory.read_block(0).data, pattern(1));
  EXPECT_EQ(memory.read_block(2 * granule).status,
            ReadStatus::kIntegrityViolation);
  // The rollback succeeded, so the clean abort must NOT poison.
  EXPECT_FALSE(memory.poisoned());
  StatRegistry registry;
  memory.publish_metrics(registry);
  EXPECT_EQ(registry.counter_value("engine.rotate_rollback_failures"), 0u);
}

TEST(ShardedSecureMemory, RotateRollbackFailurePoisonsRegion) {
  // Regression: rotate_master_key collected per-shard rollback verdicts
  // into rolled_back[] and never read them — a rollback failure left the
  // region split-keyed (some shards old master, some new) while the call
  // reported a clean abort. Now the verdict is checked: the failure is
  // recorded and the region poisons, failing closed until restored.
  ShardedSecureMemory memory(region_config(256 * 1024), 4);
  const unsigned granule = memory.granule_blocks();
  EXPECT_EQ(memory.write_block(0, pattern(1)), Status::kOk);         // shard 0
  EXPECT_EQ(memory.write_block(granule, pattern(2)), Status::kOk);   // shard 1
  std::stringstream image;
  EXPECT_EQ(memory.save(image), Status::kOk);  // known-good image, taken before the damage

  // Shard 1 carries an uncorrectable fault: the forward rotation pass
  // fails there and the region must roll the other shards back...
  memory.with_shard_exclusive(1, [](SecureMemory& shard) {
    shard.untrusted().flip_ciphertext_bit(0, 1);
    shard.untrusted().flip_ciphertext_bit(0, 2);
    shard.untrusted().flip_ciphertext_bit(0, 3);
  });
  // ...and a tamper landing inside the rollback window (injected via the
  // test-only hook, which runs between the failed forward pass and the
  // rollback pass) makes shard 0 — already re-keyed forward — refuse to
  // rotate back. The region is now split-keyed.
  memory.set_rotate_rollback_fault_hook([&memory] {
    memory.with_shard_exclusive(0, [](SecureMemory& shard) {
      shard.untrusted().flip_ciphertext_bit(0, 1);
      shard.untrusted().flip_ciphertext_bit(0, 2);
      shard.untrusted().flip_ciphertext_bit(0, 3);
    });
  });
  EXPECT_FALSE(memory.rotate_master_key(0xdeadbeef));

  // The failure is on the record, not silently swallowed...
  EXPECT_TRUE(memory.poisoned());
  StatRegistry registry;
  memory.publish_metrics(registry);
  EXPECT_EQ(registry.counter_value("engine.rotate_rollback_failures"), 1u);

  // ...and the split-keyed region fails closed in every direction: every
  // entry point REPORTS kRegionPoisoned instead of throwing (the Status
  // contract — no engine path throws on poisoning).
  EXPECT_EQ(memory.read_block(0).status, ReadStatus::kRegionPoisoned);
  const std::vector<std::uint64_t> batch{0, granule};
  for (const auto& result : memory.read_blocks(batch))
    EXPECT_EQ(result.status, ReadStatus::kRegionPoisoned);
  std::vector<std::uint8_t> buffer(128);
  EXPECT_EQ(memory.read_bytes(0, buffer), Status::kRegionPoisoned);
  EXPECT_EQ(memory.write_bytes(0, buffer), Status::kRegionPoisoned);
  EXPECT_EQ(memory.write_block(0, pattern(9)), Status::kRegionPoisoned);
  EXPECT_TRUE(memory.scrub_all().region_poisoned);
  std::stringstream sink;
  EXPECT_EQ(memory.save(sink), Status::kRegionPoisoned);
  EXPECT_TRUE(sink.str().empty());  // a poisoned save writes NOTHING
  EXPECT_FALSE(memory.rotate_master_key(0xfeedface));
  EXPECT_GT(memory.stats().integrity_violations, 0u);

  // The documented exit: restoring a known-good image clears the poison
  // and the region serves again.
  ASSERT_TRUE(memory.restore(image));
  EXPECT_FALSE(memory.poisoned());
  EXPECT_EQ(memory.read_block(0).status, ReadStatus::kOk);
  EXPECT_EQ(memory.read_block(0).data, pattern(1));
  EXPECT_EQ(memory.read_block(granule).data, pattern(2));
}

TEST(ShardedSecureMemory, SaveRestoreRoundTripsAllShards) {
  ShardedSecureMemory memory(region_config(256 * 1024), 4);
  const unsigned granule = memory.granule_blocks();
  for (unsigned g = 0; g < 6; ++g)
    EXPECT_EQ(memory.write_block(g * granule + g,
                                 pattern(static_cast<std::uint8_t>(0x40 + g))),
              Status::kOk);
  std::stringstream image;
  EXPECT_EQ(memory.save(image), Status::kOk);
  for (unsigned g = 0; g < 6; ++g)
    EXPECT_EQ(memory.write_block(g * granule + g, pattern(0x77)), Status::kOk);
  ASSERT_TRUE(memory.restore(image));
  for (unsigned g = 0; g < 6; ++g) {
    const auto result = memory.read_block(g * granule + g);
    EXPECT_EQ(result.status, ReadStatus::kOk);
    EXPECT_EQ(result.data, pattern(static_cast<std::uint8_t>(0x40 + g)));
  }
  std::stringstream garbage("not an image");
  EXPECT_FALSE(memory.restore(garbage));
}

TEST(ShardedSecureMemory, RestoreFailureLeavesEveryShardIntact) {
  // Regression: restore() used to commit shard by shard as it streamed
  // the container, so a truncated or tampered image left a mix of
  // restored and wiped shards behind a false return. Staging makes a
  // false return mean "the region is EXACTLY as it was".
  ShardedSecureMemory memory(region_config(256 * 1024), 4);
  const unsigned granule = memory.granule_blocks();
  for (unsigned g = 0; g < 8; ++g)
    EXPECT_EQ(memory.write_block(g * granule, pattern(static_cast<std::uint8_t>(g))), Status::kOk);
  std::stringstream image;
  EXPECT_EQ(memory.save(image), Status::kOk);
  const std::string full = image.str();

  // The region moves on; these contents must survive every failed
  // restore below, bit for bit.
  for (unsigned g = 0; g < 8; ++g)
    EXPECT_EQ(memory.write_block(g * granule,
                                 pattern(static_cast<std::uint8_t>(0xA0 + g))),
              Status::kOk);
  const auto expect_untouched = [&] {
    for (unsigned g = 0; g < 8; ++g) {
      const auto result = memory.read_block(g * granule);
      EXPECT_EQ(result.status, ReadStatus::kOk);
      EXPECT_EQ(result.data, pattern(static_cast<std::uint8_t>(0xA0 + g)));
    }
  };

  // Truncated image: the first shards stage fine, then a later shard's
  // image runs out mid-read. Nothing may commit.
  std::stringstream truncated(full.substr(0, full.size() - full.size() / 4));
  EXPECT_FALSE(memory.restore(truncated));
  expect_untouched();

  // Tampered image: flip a bit in the LAST shard's sealed-root snapshot
  // (the container's final bytes), so shards 0..2 stage successfully and
  // shard 3 is rejected by the offline-tamper check. Still nothing
  // commits.
  std::string tampered = full;
  tampered[tampered.size() - 10] ^= 0x01;
  std::stringstream bad(tampered);
  EXPECT_FALSE(memory.restore(bad));
  expect_untouched();

  // And the untampered image still restores in full afterwards.
  std::stringstream good(full);
  ASSERT_TRUE(memory.restore(good));
  for (unsigned g = 0; g < 8; ++g)
    EXPECT_EQ(memory.read_block(g * granule).data,
              pattern(static_cast<std::uint8_t>(g)));
}

TEST(ShardedSecureMemory, SeqlockKillSwitchDisablesSharedReads) {
  const char* prev = std::getenv("SECMEM_SEQLOCK");
  const std::string saved = prev ? prev : "";

  // SECMEM_SEQLOCK=0 at construction: every read takes the exclusive
  // lock and the shared-read counters stay at zero.
  setenv("SECMEM_SEQLOCK", "0", 1);
  {
    ShardedSecureMemory memory(region_config(256 * 1024), 4);
    EXPECT_EQ(memory.write_block(7, pattern(3)), Status::kOk);
    for (int i = 0; i < 8; ++i)
      EXPECT_EQ(memory.read_block(7).data, pattern(3));
    StatRegistry registry;
    memory.publish_metrics(registry);
    EXPECT_EQ(registry.counter_value("engine.shared_reads"), 0u);
    EXPECT_EQ(memory.stats().reads, 8u);
  }

  // Default (enabled): verified reads run the shared fast path.
  setenv("SECMEM_SEQLOCK", "1", 1);
  {
    ShardedSecureMemory memory(region_config(256 * 1024), 4);
    EXPECT_EQ(memory.write_block(7, pattern(4)), Status::kOk);
    for (int i = 0; i < 8; ++i)
      EXPECT_EQ(memory.read_block(7).data, pattern(4));
    StatRegistry registry;
    memory.publish_metrics(registry);
    EXPECT_GT(registry.counter_value("engine.shared_reads"), 0u);
    EXPECT_EQ(memory.stats().reads, 8u);
  }

  if (prev)
    setenv("SECMEM_SEQLOCK", saved.c_str(), 1);
  else
    unsetenv("SECMEM_SEQLOCK");
}

// ----------------------------------------------------------- stress
// The TSan gate: concurrent readers and writers scattered across shard
// boundaries while scrub_all sweeps shard-parallel and batches fly.

TEST(ShardedSecureMemoryStress, ReadersWritersAndScrubAcrossShards) {
  ShardedSecureMemory memory(region_config(256 * 1024), 8);
  const std::uint64_t blocks = memory.num_blocks();
  constexpr unsigned kWriters = 4;
  constexpr unsigned kReaders = 3;
  constexpr unsigned kRounds = 150;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kWriters; ++t) {
    threads.emplace_back([&memory, &failures, blocks, t] {
      Xoshiro256 rng(1000 + t);
      for (unsigned round = 0; round < kRounds; ++round) {
        // Each writer owns a block-index residue class so read-back
        // content checks never race another writer.
        const std::uint64_t block =
            (rng.next_below(blocks / kWriters) * kWriters + t) % blocks;
        const auto stamp = pattern(static_cast<std::uint8_t>(t * 16 + 1));
        EXPECT_EQ(memory.write_block(block, stamp), Status::kOk);
        const auto result = memory.read_block(block);
        if (result.status != ReadStatus::kOk || result.data != stamp)
          ++failures;
      }
    });
  }
  for (unsigned t = 0; t < kReaders; ++t) {
    threads.emplace_back([&memory, &failures, blocks, t] {
      Xoshiro256 rng(2000 + t);
      for (unsigned round = 0; round < kRounds; ++round) {
        if (round % 3 == 0) {
          // Batch read scattered over all shards.
          std::vector<std::uint64_t> batch;
          for (unsigned i = 0; i < 16; ++i)
            batch.push_back(rng.next_below(blocks));
          for (const auto& result : memory.read_blocks(batch))
            if (result.status != ReadStatus::kOk) ++failures;
        } else {
          // Cross-shard byte-range read.
          std::vector<std::uint8_t> buffer(512);
          const std::uint64_t addr =
              rng.next_below(memory.size_bytes() - buffer.size());
          if (!status_ok(memory.read_bytes(addr, buffer))) ++failures;
        }
      }
    });
  }
  threads.emplace_back([&memory, &failures] {
    for (unsigned sweep = 0; sweep < 3; ++sweep) {
      const auto report = memory.scrub_all();
      if (report.uncorrectable != 0 || report.counter_tampered != 0)
        ++failures;
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(memory.stats().integrity_violations, 0u);
}

TEST(ShardedSecureMemoryStress, ConcurrentBatchesAndCrossShardWrites) {
  ShardedSecureMemory memory(region_config(256 * 1024), 8);
  const std::uint64_t granule_bytes = memory.granule_blocks() * 64ULL;
  constexpr unsigned kThreads = 4;
  constexpr unsigned kRounds = 60;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&memory, &failures, granule_bytes, t] {
      Xoshiro256 rng(3000 + t);
      // Each thread owns one byte lane: a disjoint 256-byte window that
      // straddles a shard boundary (unique per thread).
      const std::uint64_t addr = (2 * t + 1) * granule_bytes - 128;
      for (unsigned round = 0; round < kRounds; ++round) {
        std::vector<std::uint8_t> lane(
            256, static_cast<std::uint8_t>(t * 50 + round));
        if (!status_ok(memory.write_bytes(addr, lane))) ++failures;
        std::vector<std::uint8_t> readback(lane.size());
        if (!status_ok(memory.read_bytes(addr, readback)) || readback != lane)
          ++failures;

        // Plus a shard-scattered block batch in the upper half of the
        // region — disjoint from every thread's byte lane (all of which
        // sit in the lower half), so lane read-backs stay deterministic.
        const std::uint64_t half = memory.num_blocks() / 2;
        std::vector<ShardedSecureMemory::BlockWrite> writes;
        for (unsigned i = 0; i < 8; ++i) {
          const std::uint64_t block = half + rng.next_below(half);
          writes.push_back(
              {block, pattern(static_cast<std::uint8_t>(round + i))});
        }
        EXPECT_EQ(memory.write_blocks(writes), Status::kOk);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(memory.stats().integrity_violations, 0u);
}

TEST(ShardedSecureMemoryStress, ReadMostlySharedReadersStayConsistent) {
  // The seqlock gate: many readers on the shared fast path (plus the
  // optimistic cross-shard byte protocol) racing one writer. Content is
  // deterministic per block, so every read — single-block or torn-range
  // candidate — has exactly one acceptable value; TSan runs this too.
  ShardedSecureMemory memory(region_config(256 * 1024), 8);
  const std::uint64_t blocks = memory.num_blocks();
  for (std::uint64_t b = 0; b < blocks; ++b)
    EXPECT_EQ(memory.write_block(b, pattern(static_cast<std::uint8_t>(b))), Status::kOk);

  constexpr unsigned kReaders = 6;
  constexpr unsigned kRounds = 300;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;

  // One writer keeps generations moving (a ~95/5 mix overall), always
  // re-writing the block's fixed pattern so readers stay checkable.
  threads.emplace_back([&memory, blocks] {
    Xoshiro256 rng(7);
    for (unsigned round = 0; round < kRounds / 2; ++round) {
      const std::uint64_t block = rng.next_below(blocks);
      EXPECT_EQ(memory.write_block(block, pattern(static_cast<std::uint8_t>(block))), Status::kOk);
    }
  });
  for (unsigned t = 0; t < kReaders; ++t) {
    threads.emplace_back([&memory, &failures, blocks, t] {
      Xoshiro256 rng(4000 + t);
      for (unsigned round = 0; round < kRounds; ++round) {
        const std::uint64_t block = rng.next_below(blocks);
        const auto result = memory.read_block(block);
        if (result.status != ReadStatus::kOk ||
            result.data != pattern(static_cast<std::uint8_t>(block)))
          ++failures;
        if (round % 16 == 0) {
          // Cross-shard range via the optimistic snapshot protocol; the
          // expected bytes are computable because content is fixed.
          std::vector<std::uint8_t> buffer(256);
          const std::uint64_t addr =
              rng.next_below(memory.size_bytes() - buffer.size());
          if (!status_ok(memory.read_bytes(addr, buffer))) {
            ++failures;
          } else {
            for (std::size_t i = 0; i < buffer.size(); ++i) {
              const std::uint64_t byte_block = (addr + i) / 64;
              const std::size_t off = (addr + i) % 64;
              const auto expected = static_cast<std::uint8_t>(
                  static_cast<std::uint8_t>(byte_block) ^ (off * 13));
              if (buffer[i] != expected) ++failures;
            }
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(memory.stats().integrity_violations, 0u);
  if (seqlock_reads_enabled()) {
    StatRegistry registry;
    memory.publish_metrics(registry);
    EXPECT_GT(registry.counter_value("engine.shared_reads"), 0u);
  }
}

}  // namespace
}  // namespace secmem
