#include "engine/layout.h"

#include <gtest/gtest.h>

namespace secmem {
namespace {

LayoutParams baseline_params() {
  LayoutParams params;
  params.data_bytes = 512ULL << 20;
  params.blocks_per_counter_line = 8;  // monolithic
  params.separate_macs = true;         // BMT baseline stores MACs
  return params;
}

LayoutParams optimized_params() {
  LayoutParams params;
  params.data_bytes = 512ULL << 20;
  params.blocks_per_counter_line = 64;  // delta encoding
  params.separate_macs = false;         // MACs ride the ECC lane
  params.counter_bits_per_block = 7.875;
  return params;
}

TEST(Layout, RegionOrderingAndAlignment) {
  SecureRegionLayout layout(baseline_params());
  EXPECT_EQ(layout.data_base(), 0u);
  EXPECT_EQ(layout.counter_base(), 512ULL << 20);
  EXPECT_GT(layout.mac_base(), layout.counter_base());
  EXPECT_EQ(layout.counter_base() % 64, 0u);
  EXPECT_EQ(layout.mac_base() % 64, 0u);
  EXPECT_EQ(layout.total_bytes(),
            layout.mac_base() + layout.mac_bytes());
}

TEST(Layout, BlockAndCounterAddresses) {
  SecureRegionLayout layout(baseline_params());
  EXPECT_EQ(layout.block_addr(3), 192u);
  EXPECT_EQ(layout.counter_line_addr(0), layout.counter_base());
  EXPECT_EQ(layout.counter_line_addr(5), layout.counter_base() + 5 * 64);
}

TEST(Layout, MacLineAddressPacksEightPerLine) {
  SecureRegionLayout layout(baseline_params());
  EXPECT_EQ(layout.mac_line_addr(0), layout.mac_line_addr(7));
  EXPECT_EQ(layout.mac_line_addr(8), layout.mac_line_addr(0) + 64);
}

TEST(Layout, TreeNodeAddressesDisjointFromCounters) {
  SecureRegionLayout layout(baseline_params());
  const std::uint64_t counters_end =
      layout.counter_base() + layout.counter_bytes();
  EXPECT_GE(layout.tree_node_addr(1, 0), counters_end);
}

TEST(Layout, BaselineOverheadMatchesPaperFigure1) {
  // Paper: ~11% counters + ~11% MACs + tree > 22% total.
  SecureRegionLayout layout(baseline_params());
  EXPECT_NEAR(layout.counter_overhead_pct(), 10.94, 0.1);
  EXPECT_NEAR(layout.mac_overhead_pct(), 10.94, 0.1);
  EXPECT_GT(layout.metadata_overhead_pct(), 22.0);
}

TEST(Layout, OptimizedOverheadAboutTwoPercent) {
  // Paper abstract: "from ~22% to just ~2%".
  SecureRegionLayout layout(optimized_params());
  EXPECT_EQ(layout.mac_overhead_pct(), 0.0);
  EXPECT_LT(layout.metadata_overhead_pct(), 2.5);
  EXPECT_GT(layout.metadata_overhead_pct(), 1.0);
}

TEST(Layout, TreeDepthsMatchPaper) {
  EXPECT_EQ(SecureRegionLayout(baseline_params()).tree().offchip_levels(),
            5u);
  EXPECT_EQ(SecureRegionLayout(optimized_params()).tree().offchip_levels(),
            4u);
}

TEST(Layout, EccOverheadConstant) {
  SecureRegionLayout layout(baseline_params());
  EXPECT_DOUBLE_EQ(layout.ecc_overhead_pct(), 12.5);
  LayoutParams no_ecc = baseline_params();
  no_ecc.ecc_dimm = false;
  EXPECT_DOUBLE_EQ(SecureRegionLayout(no_ecc).ecc_overhead_pct(), 0.0);
}

TEST(Layout, SmallRegionStillWorks) {
  LayoutParams params;
  params.data_bytes = 1 << 20;  // 1MB
  params.blocks_per_counter_line = 64;
  SecureRegionLayout layout(params);
  EXPECT_EQ(layout.num_blocks(), (1u << 20) / 64);
  EXPECT_EQ(layout.num_counter_lines(), (1u << 20) / 64 / 64);
  EXPECT_GT(layout.total_bytes(), params.data_bytes);
}

TEST(Layout, RegionsArePairwiseDisjoint) {
  // Property: data, counter storage, every tree level, and the MAC region
  // occupy non-overlapping address ranges, for a spread of configs.
  for (const std::uint64_t mb : {16ULL, 64ULL, 512ULL}) {
    for (const unsigned per_line : {8u, 64u}) {
      for (const bool macs : {false, true}) {
        LayoutParams params;
        params.data_bytes = mb << 20;
        params.blocks_per_counter_line = per_line;
        params.separate_macs = macs;
        const SecureRegionLayout layout(params);

        std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
        ranges.emplace_back(0, layout.data_bytes());
        ranges.emplace_back(layout.counter_base(),
                            layout.counter_base() + layout.counter_bytes());
        for (unsigned lvl = 1; lvl + 1 < layout.tree().total_levels();
             ++lvl) {
          ranges.emplace_back(
              layout.tree_node_addr(lvl, 0),
              layout.tree_node_addr(lvl,
                                    layout.tree().nodes_at[lvl] - 1) +
                  64);
        }
        if (macs)
          ranges.emplace_back(layout.mac_base(),
                              layout.mac_base() + layout.mac_bytes());
        for (std::size_t i = 0; i < ranges.size(); ++i) {
          for (std::size_t j = i + 1; j < ranges.size(); ++j) {
            const bool overlap = ranges[i].first < ranges[j].second &&
                                 ranges[j].first < ranges[i].second;
            EXPECT_FALSE(overlap)
                << "regions " << i << " and " << j << " overlap (mb=" << mb
                << " per_line=" << per_line << " macs=" << macs << ")";
          }
        }
        // Everything fits in the declared total.
        for (const auto& [lo, hi] : ranges)
          EXPECT_LE(hi, layout.total_bytes());
      }
    }
  }
}

TEST(Layout, LocateClassifiesEveryRegion) {
  LayoutParams params;
  params.data_bytes = 64ULL << 20;
  params.blocks_per_counter_line = 64;
  params.separate_macs = true;
  const SecureRegionLayout layout(params);

  EXPECT_EQ(layout.locate(0x40).region, SecureRegionLayout::Region::kData);
  const auto counter = layout.locate(layout.counter_line_addr(5));
  EXPECT_EQ(counter.region, SecureRegionLayout::Region::kCounter);
  EXPECT_EQ(counter.index, 5u);
  const auto node = layout.locate(layout.tree_node_addr(1, 3));
  EXPECT_EQ(node.region, SecureRegionLayout::Region::kTree);
  EXPECT_EQ(node.level, 1u);
  EXPECT_EQ(node.index, 3u);
  EXPECT_EQ(layout.locate(layout.mac_line_addr(100)).region,
            SecureRegionLayout::Region::kMac);
}

}  // namespace
}  // namespace secmem
