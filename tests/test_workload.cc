#include "sim/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace secmem {
namespace {

TEST(Workload, ElevenParsecProfiles) {
  EXPECT_EQ(parsec_profiles().size(), 11u);
  std::set<std::string> names;
  for (const auto& profile : parsec_profiles()) names.insert(profile.name);
  EXPECT_EQ(names.size(), 11u);
  for (const char* name :
       {"facesim", "dedup", "canneal", "vips", "ferret", "fluidanimate",
        "freqmine", "raytrace", "swaptions", "blackscholes", "bodytrack"}) {
    EXPECT_TRUE(names.count(name)) << name;
  }
}

TEST(Workload, ProfileLookupByName) {
  EXPECT_EQ(profile_by_name("canneal").name, "canneal");
  EXPECT_THROW(profile_by_name("doesnotexist"), std::out_of_range);
}

TEST(Workload, DeterministicStreams) {
  const auto& profile = profile_by_name("facesim");
  WorkloadGenerator a(profile, 0, 42), b(profile, 0, 42);
  for (int i = 0; i < 2000; ++i) {
    const MemRef ra = a.next(), rb = b.next();
    EXPECT_EQ(ra.addr, rb.addr);
    EXPECT_EQ(ra.is_write, rb.is_write);
    EXPECT_EQ(ra.gap, rb.gap);
  }
}

TEST(Workload, ThreadsWorkDisjointQuarters) {
  const auto& profile = profile_by_name("dedup");
  const std::uint64_t quarter = profile.working_set_bytes / 4;
  for (unsigned t = 0; t < 4; ++t) {
    WorkloadGenerator gen(profile, t, 1);
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t addr = gen.next().addr;
      EXPECT_GE(addr, t * quarter);
      EXPECT_LT(addr, (t + 1) * quarter);
    }
  }
}

TEST(Workload, AddressesWithinWorkingSet) {
  for (const auto& profile : parsec_profiles()) {
    WorkloadGenerator gen(profile, 3, 7);
    for (int i = 0; i < 2000; ++i)
      EXPECT_LT(gen.next().addr, profile.working_set_bytes) << profile.name;
  }
}

TEST(Workload, VisitsIssueWordBursts) {
  // Consecutive refs of one visit land in the same 64-byte block —
  // that's where the L1 locality comes from.
  const auto& profile = profile_by_name("freqmine");
  WorkloadGenerator gen(profile, 0, 3);
  std::map<std::uint64_t, int> run_lengths;
  std::uint64_t current_block = ~0ULL;
  int run = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t block = gen.next().addr / 64;
    if (block == current_block) {
      ++run;
    } else {
      if (current_block != ~0ULL) ++run_lengths[run];
      current_block = block;
      run = 1;
    }
  }
  // freqmine sweeps with burst 8 and random runs with burst 3: block
  // visits should almost never be single-ref.
  int long_runs = 0, total = 0;
  for (const auto& [length, count] : run_lengths) {
    total += count;
    if (length >= 3) long_runs += count;
  }
  EXPECT_GT(long_runs, (3 * total) / 4);
}

TEST(Workload, UniformSweepWritesEveryRingBlockOncePerPass) {
  // freqmine is sweep-dominated with skip_spread 0: over one pass, every
  // ring block must be dirtied exactly once.
  WorkloadProfile p = profile_by_name("freqmine");
  p.w_sweep = 1.0;
  p.w_random = 0;
  p.hot.weight = 0;
  p.hot2.weight = 0;
  WorkloadGenerator gen(p, 0, 3);
  const std::uint64_t ring_blocks = p.sweep_region_bytes / 64;
  std::map<std::uint64_t, int> dirtied;
  while (gen.sweep_passes() == 0) {
    const MemRef ref = gen.next();
    if (ref.is_write) dirtied[ref.addr / 64] = 1;
  }
  // The pass counter ticks when the last block is *selected*; drain its
  // in-flight burst so its store is observed too.
  for (unsigned i = 0; i < p.sweep_burst; ++i) {
    const MemRef ref = gen.next();
    if (ref.is_write) dirtied[ref.addr / 64] = 1;
  }
  EXPECT_EQ(dirtied.size(), ring_blocks);
}

TEST(Workload, SkipSpreadMakesRatesDiverge) {
  WorkloadProfile p = profile_by_name("facesim");
  p.w_sweep = 1.0;
  p.w_random = 0;
  p.hot.weight = 0;
  p.hot2.weight = 0;
  p.skip_spread = 0.2;
  WorkloadGenerator gen(p, 0, 5);
  std::map<std::uint64_t, int> visits;
  while (gen.sweep_passes() < 40) ++visits[gen.next().addr / 64];
  int vmin = 1 << 30, vmax = 0;
  for (const auto& [block, count] : visits) {
    vmin = std::min(vmin, count);
    vmax = std::max(vmax, count);
  }
  EXPECT_GT(vmax - vmin, 8) << "per-block rates did not diverge";
  EXPECT_GT(vmin, 0);
}

TEST(Workload, ScatteredWarmHasOneHotBlockPerGroup) {
  // canneal's hot component must never place two *hot* blocks in one 4KB
  // group — that is what pins Δmin at 0 — while warm writes land in other
  // sub-groups of the same group.
  WorkloadProfile p = profile_by_name("canneal");
  p.hot.weight = 1.0;
  p.w_random = 0;
  ASSERT_EQ(p.hot.mode, HotMode::kScatteredWarm);
  WorkloadGenerator gen(p, 0, 9);
  std::map<std::uint64_t, std::set<std::uint64_t>> hot_per_group;
  std::map<std::uint64_t, int> visit_counts;
  for (int i = 0; i < 100000; ++i) ++visit_counts[gen.next().addr / 64];
  // Per group: exactly one dominant (hot) block, in sub-group 0, plus
  // warm blocks in the other sub-groups.
  std::map<std::uint64_t, std::pair<std::uint64_t, int>> hottest;
  bool any_warm = false;
  for (const auto& [block, count] : visit_counts) {
    auto& top = hottest[block / 64];
    if (count > top.second) top = {block, count};
    if ((block % 64) >= 16 && count > 100) any_warm = true;
  }
  EXPECT_GE(hottest.size(), 3u);
  for (const auto& [group, top] : hottest) {
    EXPECT_LT(top.first % 64, 16u)
        << "dominant block of group " << group << " outside sub-group 0";
    hot_per_group[group].insert(top.first);
  }
  EXPECT_TRUE(any_warm) << "no warm writes in other sub-groups";
}

TEST(Workload, SubgroupHotBlocksShareSubgroup) {
  WorkloadProfile p = profile_by_name("vips");
  p.hot.weight = 1.0;
  p.w_random = 0;
  ASSERT_EQ(p.hot.mode, HotMode::kSubgroup);
  WorkloadGenerator gen(p, 0, 9);
  std::map<std::uint64_t, std::set<unsigned>> subgroups_touched;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t block = gen.next().addr / 64;
    subgroups_touched[block / 64].insert((block % 64) / 16);
  }
  EXPECT_GE(subgroups_touched.size(), 2u);
  for (const auto& [group, subs] : subgroups_touched)
    EXPECT_EQ(subs.size(), 1u) << "group " << group;
}

TEST(Workload, SkewedModeCoversWholeGroupsAtDivergentRates) {
  WorkloadProfile p = profile_by_name("facesim");
  p.hot.weight = 1.0;
  p.w_sweep = 0;
  p.w_random = 0;
  ASSERT_EQ(p.hot.mode, HotMode::kSkewed);
  WorkloadGenerator gen(p, 0, 9);
  std::map<std::uint64_t, int> visits;
  for (int i = 0; i < 200000; ++i) ++visits[gen.next().addr / 64];
  // Whole 64-block groups are hot...
  std::map<std::uint64_t, int> blocks_per_group;
  for (const auto& [block, count] : visits) ++blocks_per_group[block / 64];
  for (const auto& [group, nblocks] : blocks_per_group)
    EXPECT_EQ(nblocks, 64) << "group " << group;
  // ...with visibly divergent per-block rates.
  int vmin = 1 << 30, vmax = 0;
  for (const auto& [block, count] : visits) {
    vmin = std::min(vmin, count);
    vmax = std::max(vmax, count);
  }
  EXPECT_GT(static_cast<double>(vmax),
            1.05 * static_cast<double>(vmin));
}

TEST(Workload, SequentialModeWritesEachHotBlockOncePerPass) {
  WorkloadProfile p = profile_by_name("dedup");
  p.hot.weight = 1.0;
  p.hot2.weight = 0;
  p.w_sweep = 0;
  p.w_random = 0;
  ASSERT_EQ(p.hot.mode, HotMode::kSequential);
  WorkloadGenerator gen(p, 0, 11);
  const std::uint64_t hot_blocks = p.hot.groups * 64;
  std::map<std::uint64_t, int> writes;
  for (std::uint64_t v = 0; v < hot_blocks * p.hot_burst; ++v) {
    const MemRef ref = gen.next();
    if (ref.is_write) writes[ref.addr / 64] = writes[ref.addr / 64];
    writes[ref.addr / 64] |= ref.is_write ? 1 : 0;
  }
  EXPECT_EQ(writes.size(), hot_blocks);
}

TEST(Workload, SweepVisitsEndDirty) {
  // Every sweep visit must leave the line dirty (its last ref a store),
  // or counters would never advance on streaming workloads.
  WorkloadProfile p = profile_by_name("dedup");
  p.w_sweep = 1.0;
  p.w_random = 0;
  p.hot.weight = 0;
  p.hot2.weight = 0;
  WorkloadGenerator gen(p, 0, 13);
  int last_is_write = 0, visits = 0;
  MemRef prev = gen.next();
  for (int i = 0; i < 5000; ++i) {
    const MemRef ref = gen.next();
    if (ref.addr / 64 != prev.addr / 64) {  // visit boundary
      ++visits;
      if (prev.is_write) ++last_is_write;
    }
    prev = ref;
  }
  EXPECT_EQ(last_is_write, visits);
}

TEST(Workload, GapsBoundedByProfile) {
  const auto& profile = profile_by_name("raytrace");
  WorkloadGenerator gen(profile, 0, 13);
  for (int i = 0; i < 2000; ++i)
    EXPECT_LE(gen.next().gap, 2 * profile.mean_gap);
}

TEST(Workload, CacheResidentProfilesStaySmall) {
  for (const char* name : {"swaptions", "blackscholes", "bodytrack"}) {
    EXPECT_LE(profile_by_name(name).working_set_bytes, 8ULL << 20) << name;
  }
}

}  // namespace
}  // namespace secmem
