#include "counters/reencryption_engine.h"

#include <gtest/gtest.h>

namespace secmem {
namespace {

class ReencryptionEngineTest : public ::testing::Test {
 protected:
  StatRegistry stats;
  DramSystem dram{DramConfig{}, stats};
  ReencryptionEngine engine{dram, stats};
};

TEST_F(ReencryptionEngineTest, DrainEmptyIsNoop) {
  EXPECT_EQ(engine.drain(100), 100u);
  EXPECT_EQ(engine.blocks_reencrypted(), 0u);
}

TEST_F(ReencryptionEngineTest, JobReadsAndWritesEveryBlock) {
  engine.enqueue({0x10000, 64});
  const std::uint64_t done = engine.drain(0);
  EXPECT_GT(done, 0u);
  EXPECT_EQ(engine.blocks_reencrypted(), 64u);
  EXPECT_EQ(stats.counter_value("dram.reads"), 64u);
  EXPECT_EQ(stats.counter_value("dram.writes"), 64u);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST_F(ReencryptionEngineTest, MultipleJobsQueueAndDrainInOrder) {
  engine.enqueue({0x0, 64});
  engine.enqueue({0x10000, 64});
  EXPECT_EQ(engine.pending(), 2u);
  engine.drain(0);
  EXPECT_EQ(engine.blocks_reencrypted(), 128u);
  EXPECT_EQ(stats.counter_value("reenc.jobs_drained"), 2u);
}

TEST_F(ReencryptionEngineTest, BufferCapacityForcesSynchronousDrain) {
  // Fill the overflow buffer (paper Fig 7) past capacity: the engine must
  // drain synchronously and report the stall.
  for (std::size_t i = 0; i <= engine.capacity(); ++i)
    engine.enqueue({i * 4096, 64}, 0);
  EXPECT_EQ(stats.counter_value("reenc.buffer_full_stalls"), 1u);
  EXPECT_EQ(engine.pending(), 1u);  // drained, then the new job queued
  EXPECT_EQ(engine.high_water(), engine.capacity());
}

TEST_F(ReencryptionEngineTest, HighWaterTracksPeakOccupancy) {
  engine.enqueue({0, 64});
  engine.enqueue({4096, 64});
  engine.drain(0);
  engine.enqueue({8192, 64});
  EXPECT_EQ(engine.high_water(), 2u);
}

TEST_F(ReencryptionEngineTest, GroupBurstCompletesNoLaterThanSerialChain) {
  // reencrypt_group issues the whole read burst at once and the write
  // burst after the last read — it must never finish later than the old
  // fully serialized read→write→read→write chain, and it still moves
  // exactly one read and one write per block.
  StatRegistry serial_stats;
  DramSystem serial_dram(DramConfig{}, serial_stats);
  std::uint64_t serial_done = 0;
  for (unsigned b = 0; b < 64; ++b) {
    const std::uint64_t addr = 0x10000 + b * 64ULL;
    const std::uint64_t read_done = serial_dram.access(serial_done, addr, false);
    serial_done = serial_dram.access(read_done, addr, true);
  }

  const std::uint64_t burst_done = engine.reencrypt_group({0x10000, 64}, 0);
  EXPECT_GT(burst_done, 0u);
  EXPECT_LE(burst_done, serial_done);
  EXPECT_EQ(engine.blocks_reencrypted(), 64u);
  EXPECT_EQ(stats.counter_value("dram.reads"), 64u);
  EXPECT_EQ(stats.counter_value("dram.writes"), 64u);
}

TEST_F(ReencryptionEngineTest, TrafficOccupiesDramChannels) {
  // A core access issued after a drain must see busier channels than one
  // issued on an idle system.
  StatRegistry stats2;
  DramSystem idle(DramConfig{}, stats2);
  const std::uint64_t idle_done = idle.access(0, 0x40, false);

  engine.enqueue({0x0, 64});
  engine.drain(0);
  const std::uint64_t busy_done = dram.access(0, 0x40, false);
  EXPECT_GT(busy_done, idle_done);
}

}  // namespace
}  // namespace secmem
