#include "counters/reencryption_engine.h"

#include <gtest/gtest.h>

namespace secmem {
namespace {

class ReencryptionEngineTest : public ::testing::Test {
 protected:
  StatRegistry stats;
  DramSystem dram{DramConfig{}, stats};
  ReencryptionEngine engine{dram, stats};
};

TEST_F(ReencryptionEngineTest, DrainEmptyIsNoop) {
  EXPECT_EQ(engine.drain(100), 100u);
  EXPECT_EQ(engine.blocks_reencrypted(), 0u);
}

TEST_F(ReencryptionEngineTest, JobReadsAndWritesEveryBlock) {
  engine.enqueue({0x10000, 64});
  const std::uint64_t done = engine.drain(0);
  EXPECT_GT(done, 0u);
  EXPECT_EQ(engine.blocks_reencrypted(), 64u);
  EXPECT_EQ(stats.counter_value("dram.reads"), 64u);
  EXPECT_EQ(stats.counter_value("dram.writes"), 64u);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST_F(ReencryptionEngineTest, MultipleJobsQueueAndDrainInOrder) {
  engine.enqueue({0x0, 64});
  engine.enqueue({0x10000, 64});
  EXPECT_EQ(engine.pending(), 2u);
  engine.drain(0);
  EXPECT_EQ(engine.blocks_reencrypted(), 128u);
  EXPECT_EQ(stats.counter_value("reenc.jobs_drained"), 2u);
}

TEST_F(ReencryptionEngineTest, BufferCapacityForcesSynchronousDrain) {
  // Fill the overflow buffer (paper Fig 7) past capacity: the engine must
  // drain synchronously and report the stall.
  for (std::size_t i = 0; i <= engine.capacity(); ++i)
    engine.enqueue({i * 4096, 64}, 0);
  EXPECT_EQ(stats.counter_value("reenc.buffer_full_stalls"), 1u);
  EXPECT_EQ(engine.pending(), 1u);  // drained, then the new job queued
  EXPECT_EQ(engine.high_water(), engine.capacity());
}

TEST_F(ReencryptionEngineTest, HighWaterTracksPeakOccupancy) {
  engine.enqueue({0, 64});
  engine.enqueue({4096, 64});
  engine.drain(0);
  engine.enqueue({8192, 64});
  EXPECT_EQ(engine.high_water(), 2u);
}

TEST_F(ReencryptionEngineTest, TrafficOccupiesDramChannels) {
  // A core access issued after a drain must see busier channels than one
  // issued on an idle system.
  StatRegistry stats2;
  DramSystem idle(DramConfig{}, stats2);
  const std::uint64_t idle_done = idle.access(0, 0x40, false);

  engine.enqueue({0x0, 64});
  engine.drain(0);
  const std::uint64_t busy_done = dram.access(0, 0x40, false);
  EXPECT_GT(busy_done, idle_done);
}

}  // namespace
}  // namespace secmem
