#include "common/stats.h"

#include <gtest/gtest.h>

#include <sstream>

namespace secmem {
namespace {

TEST(Stats, CounterStartsAtZeroAndIncrements) {
  StatCounter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, ScalarTracksMinMaxMean) {
  StatScalar s;
  s.sample(2.0);
  s.sample(4.0);
  s.sample(9.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, ScalarEmptyMeanIsZero) {
  StatScalar s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Stats, HistogramBucketsAndOverflow) {
  StatHistogram h(4, 10);
  h.sample(0);
  h.sample(9);
  h.sample(10);
  h.sample(39);
  h.sample(40);   // overflow
  h.sample(1000); // overflow
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(Stats, RegistryLazyCreateAndLookup) {
  StatRegistry reg;
  reg.counter("a.b").inc(5);
  EXPECT_EQ(reg.counter_value("a.b"), 5u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
}

TEST(Stats, RegistryResetClearsEverything) {
  StatRegistry reg;
  reg.counter("x").inc(3);
  reg.scalar("y").sample(7);
  reg.reset();
  EXPECT_EQ(reg.counter_value("x"), 0u);
  EXPECT_EQ(reg.scalars().at("y").count(), 0u);
}

TEST(Stats, DumpContainsNamesAndValues) {
  StatRegistry reg;
  reg.counter("dram.reads").inc(12);
  std::ostringstream oss;
  reg.dump(oss);
  EXPECT_NE(oss.str().find("dram.reads"), std::string::npos);
  EXPECT_NE(oss.str().find("12"), std::string::npos);
}

}  // namespace
}  // namespace secmem
