// Scheme-specific behaviour: the exact overflow ladders of paper §4
// (Figure 5 a/b/c and Figure 6).
#include <gtest/gtest.h>

#include "counters/delta_counter.h"
#include "counters/dual_length_delta.h"
#include "counters/monolithic.h"
#include "counters/split_counter.h"

namespace secmem {
namespace {

// ---------------------------------------------------------------- split

TEST(SplitCounters, OverflowsAtExactly128WritesToOneBlock) {
  SplitCounters scheme(64);
  for (int i = 0; i < 127; ++i)
    EXPECT_EQ(scheme.on_write(0).event, CounterEvent::kIncrement) << i;
  const auto outcome = scheme.on_write(0);
  EXPECT_EQ(outcome.event, CounterEvent::kReencrypt);
  EXPECT_EQ(scheme.reencryptions(), 1u);
  // Full counter after re-encryption: major=1, minor=0 -> 1<<7 = 128.
  EXPECT_EQ(outcome.counter, 128u);
  EXPECT_EQ(scheme.read_counter(0), 128u);
  EXPECT_EQ(scheme.read_counter(5), 128u);  // whole group jumped
}

TEST(SplitCounters, NoEscapeHatchEvenForUniformWrites) {
  // The defining contrast with delta encoding: uniform sweeps still
  // re-encrypt every 128 passes.
  SplitCounters scheme(64);
  for (int pass = 0; pass < 128; ++pass)
    for (BlockIndex b = 0; b < 64; ++b) scheme.on_write(b);
  EXPECT_GE(scheme.reencryptions(), 1u);
}

// ---------------------------------------------------------------- delta

TEST(DeltaCounters, UniformSweepTriggersResetNotReencryption) {
  // Fig 5b: writes with spatial locality converge all deltas -> reset.
  DeltaCounters scheme(64);
  for (int pass = 0; pass < 1000; ++pass) {
    for (BlockIndex b = 0; b < 64; ++b) {
      const auto outcome = scheme.on_write(b);
      if (b == 63)
        EXPECT_EQ(outcome.event, CounterEvent::kReset) << "pass " << pass;
      else
        EXPECT_EQ(outcome.event, CounterEvent::kIncrement);
    }
  }
  EXPECT_EQ(scheme.reencryptions(), 0u);
  EXPECT_EQ(scheme.resets(), 1000u);
  EXPECT_EQ(scheme.read_counter(0), 1000u);
  EXPECT_EQ(scheme.group_reference(0), 1000u);  // deltas folded in
}

TEST(DeltaCounters, ResetOnlyWhenAllDeltasEqual) {
  DeltaCounters scheme(64);
  scheme.on_write(0);  // delta[0]=1, others 0 -> no reset possible
  EXPECT_EQ(scheme.resets(), 0u);
  for (BlockIndex b = 1; b < 64; ++b) scheme.on_write(b);
  // Now all deltas are 1 -> the last write reset them.
  EXPECT_EQ(scheme.resets(), 1u);
}

TEST(DeltaCounters, ReencodeDefersReencryption) {
  // Fig 5c: one block races ahead, but the others keep Δmin > 0.
  DeltaCounters scheme(64);
  // Bring every block to delta=10.
  for (int i = 0; i < 10; ++i)
    for (BlockIndex b = 0; b < 64; ++b) scheme.on_write(b);
  // reset fired each pass (all equal) -> deltas are 0, ref=10. Stagger:
  // give block 0 an extra write so deltas are unequal from here on.
  scheme.on_write(0);
  // Now hammer block 1 to overflow. Before overflow, push all OTHER
  // blocks forward so Δmin stays >= 1.
  for (BlockIndex b = 0; b < 64; ++b) scheme.on_write(b);  // all +1
  std::uint64_t reencodes_before = scheme.reencodes();
  // 126 increments take block 1's delta to the 7-bit ceiling; the 127th
  // write re-encodes (Δmin = 1 from the cold blocks' shared offset).
  for (int i = 0; i < 127; ++i) scheme.on_write(1);
  EXPECT_GT(scheme.reencodes(), reencodes_before);
  EXPECT_EQ(scheme.reencryptions(), 0u);
}

TEST(DeltaCounters, HotSingleBlockReencryptsLikeSplit) {
  // Δmin = 0 (cold neighbours) -> no optimization applies. The overflow
  // cadence matches split counters: every 128 writes.
  DeltaCounters scheme(64);
  for (int i = 0; i < 128; ++i) scheme.on_write(0);
  EXPECT_EQ(scheme.reencryptions(), 1u);
  EXPECT_EQ(scheme.read_counter(0), 128u);
  EXPECT_EQ(scheme.read_counter(63), 128u);  // group re-encrypted together
}

TEST(DeltaCounters, AblationTogglesWork) {
  // With both optimizations off, uniform sweeps behave like split
  // counters (re-encrypt every 128 passes).
  DeltaCounters no_opts(64, DeltaConfig{false, false});
  for (int pass = 0; pass < 128; ++pass)
    for (BlockIndex b = 0; b < 64; ++b) no_opts.on_write(b);
  EXPECT_GE(no_opts.reencryptions(), 1u);
  EXPECT_EQ(no_opts.resets(), 0u);
  EXPECT_EQ(no_opts.reencodes(), 0u);

  DeltaCounters with_reset(64, DeltaConfig{true, false});
  for (int pass = 0; pass < 128; ++pass)
    for (BlockIndex b = 0; b < 64; ++b) with_reset.on_write(b);
  EXPECT_EQ(with_reset.reencryptions(), 0u);
}

TEST(DeltaCounters, ReferencesNeverDecrease) {
  DeltaCounters scheme(64);
  std::uint64_t prev_ref = 0;
  for (int i = 0; i < 5000; ++i) {
    scheme.on_write(i % 3);  // lopsided writes force every event type
    EXPECT_GE(scheme.group_reference(0), prev_ref);
    prev_ref = scheme.group_reference(0);
  }
}

// ---------------------------------------------------------- dual-length

TEST(DualLengthDelta, ExpansionExtendsHotSubgroupTo10Bits) {
  // Fig 6: one hot block overflows its 6-bit delta at 64 writes; the
  // spare bits expand its sub-group, deferring re-encryption to 1024.
  DualLengthDeltaCounters scheme(64);
  for (int i = 0; i < 63; ++i)
    EXPECT_EQ(scheme.on_write(0).event, CounterEvent::kIncrement);
  const auto expand = scheme.on_write(0);
  EXPECT_EQ(expand.event, CounterEvent::kExpand);
  EXPECT_EQ(scheme.expanded_group_of(0), 0);
  EXPECT_EQ(scheme.read_counter(0), 64u);

  for (int i = 64; i < 1023; ++i)
    EXPECT_EQ(scheme.on_write(0).event, CounterEvent::kIncrement) << i;
  const auto reenc = scheme.on_write(0);
  EXPECT_EQ(reenc.event, CounterEvent::kReencrypt);
  EXPECT_EQ(scheme.read_counter(0), 1024u);
  EXPECT_EQ(scheme.expanded_group_of(0), -1);  // expansion released
}

TEST(DualLengthDelta, SecondHotSubgroupCannotExpand) {
  // The facesim anomaly: two sub-groups racing -> only one gets the
  // overflow bits; the other re-encrypts at its 6-bit ceiling.
  DualLengthDeltaCounters scheme(64);
  for (int i = 0; i < 64; ++i) scheme.on_write(0);   // expands sub-group 0
  EXPECT_EQ(scheme.expanded_group_of(0), 0);
  for (int i = 0; i < 63; ++i) scheme.on_write(16);  // sub-group 1 fills
  const auto outcome = scheme.on_write(16);
  EXPECT_EQ(outcome.event, CounterEvent::kReencrypt);
  EXPECT_EQ(scheme.reencryptions(), 1u);
}

TEST(DualLengthDelta, UniformSweepResetsAndReleasesExpansion) {
  DualLengthDeltaCounters scheme(64);
  for (int i = 0; i < 64; ++i) scheme.on_write(0);  // expand sub-group 0
  ASSERT_EQ(scheme.expanded_group_of(0), 0);
  // Sweep everything until all deltas equal block 0's.
  for (int pass = 0; pass < 64; ++pass)
    for (BlockIndex b = 1; b < 64; ++b) scheme.on_write(b);
  // One more write to block 1..63 plus block 0 equalizes... instead
  // sweep all blocks including 0 until a reset fires.
  std::uint64_t resets_before = scheme.resets();
  for (int pass = 0; pass < 2 && scheme.resets() == resets_before; ++pass)
    for (BlockIndex b = 0; b < 64; ++b) scheme.on_write(b);
  EXPECT_GT(scheme.resets(), resets_before);
  EXPECT_EQ(scheme.expanded_group_of(0), -1);
}

TEST(DualLengthDelta, ReencodeRescuesExpandedGroupPressure) {
  DualLengthDeltaCounters scheme(64);
  // Give every block one write so Δmin can become nonzero later.
  for (BlockIndex b = 0; b < 64; ++b) scheme.on_write(b);
  // (that converged -> reset; do it again but unevenly)
  scheme.on_write(0);
  for (BlockIndex b = 0; b < 64; ++b) scheme.on_write(b);
  // block 0 delta = 2, rest = 1, ref advanced by resets. Hammer block 1
  // to its 6-bit limit: expansion first, then re-encode/re-encrypt.
  std::uint64_t increments = 0;
  for (int i = 0; i < 62; ++i) {
    if (scheme.on_write(1).event == CounterEvent::kIncrement) ++increments;
  }
  const auto outcome = scheme.on_write(1);
  EXPECT_EQ(outcome.event, CounterEvent::kExpand);
  EXPECT_EQ(scheme.reencryptions(), 0u);
  (void)increments;
}

TEST(DualLengthDelta, SerializationEncodesExpandedValues) {
  DualLengthDeltaCounters scheme(64);
  for (int i = 0; i < 100; ++i) scheme.on_write(0);  // delta[0] = 100 > 63
  std::array<std::uint8_t, 64> line{};
  scheme.serialize_line(0, line);
  std::array<std::uint8_t, 64> line2{};
  scheme.serialize_line(0, line2);
  EXPECT_EQ(line, line2);
  EXPECT_EQ(scheme.read_counter(0), 100u);
  // Flip one stored bit: representation must differ (injectivity smoke).
  line2[60] ^= 1;
  EXPECT_NE(line, line2);
}

// ------------------------------------------------------------ monolithic

TEST(Monolithic, PlainIncrementForever) {
  MonolithicCounters scheme(16);
  for (int i = 1; i <= 1000; ++i) {
    const auto outcome = scheme.on_write(7);
    EXPECT_EQ(outcome.event, CounterEvent::kIncrement);
    EXPECT_EQ(outcome.counter, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(scheme.read_counter(7), 1000u);
  EXPECT_EQ(scheme.read_counter(6), 0u);
}

TEST(Monolithic, EightCountersPerLine) {
  MonolithicCounters scheme(16);
  EXPECT_EQ(scheme.blocks_per_storage_line(), 8u);
  EXPECT_EQ(scheme.storage_line_of(7), 0u);
  EXPECT_EQ(scheme.storage_line_of(8), 1u);
}

// -------------------------------------------------- storage comparisons

TEST(StorageOverhead, DeltaIsRoughly7xSmallerThanMonolithic) {
  MonolithicCounters mono(64);
  DeltaCounters delta(64);
  const double ratio = mono.bits_per_block() / delta.bits_per_block();
  EXPECT_GT(ratio, 6.0);  // paper: "6x smaller storage requirement"
  EXPECT_LT(ratio, 8.0);
}

TEST(StorageOverhead, SplitMatchesPaper8xVersus64Bit) {
  MonolithicCounters mono64(64, 64);
  SplitCounters split(64);
  EXPECT_NEAR(mono64.bits_per_block() / split.bits_per_block(), 8.0, 0.1);
}

}  // namespace
}  // namespace secmem
