// Runtime crypto dispatch: FIPS-197 KATs against the hardware kernels,
// differential fuzz proving portable and accelerated backends are
// bit-identical at every layer (block cipher, GF(2^64), MAC, CTR
// keystream, batch APIs, whole-engine save images), and the selection
// policy itself.
//
// Hardware-path tests GTEST_SKIP on machines without AES-NI/PCLMULQDQ (or
// builds whose compiler couldn't emit them) — the differential claims are
// vacuous there, and the portable path is covered by the rest of the
// suite.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/cpu_features.h"
#include "crypto/crypto_backend.h"
#include "crypto/ctr_keystream.h"
#include "crypto/cw_mac.h"
#include "crypto/gf64.h"
#include "engine/secure_memory.h"

namespace secmem {
namespace {

/// Pins the process-wide backend policy for the enclosed scope; objects
/// constructed inside bind to the chosen kernels.
class BackendGuard {
 public:
  explicit BackendGuard(CryptoBackendChoice choice) {
    set_crypto_backend_choice(choice);
  }
  ~BackendGuard() { set_crypto_backend_choice(CryptoBackendChoice::kAuto); }
};

Aes128::Key random_key(Xoshiro256& rng) {
  Aes128::Key key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  return key;
}

Aes128::Block random_block16(Xoshiro256& rng) {
  Aes128::Block block;
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.next());
  return block;
}

DataBlock random_block64(Xoshiro256& rng) {
  DataBlock block;
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.next());
  return block;
}

// ---------------------------------------------------------------------
// Selection policy.
// ---------------------------------------------------------------------

TEST(CryptoDispatch, PolicyOverrideBindsNewObjects) {
  const Aes128::Key key{};
  {
    BackendGuard guard(CryptoBackendChoice::kPortable);
    EXPECT_STREQ(Aes128(key).backend_name(), "portable");
    EXPECT_EQ(&aes128_ops(), &aes128_ops_portable());
    EXPECT_EQ(&gf64_ops(), &gf64_ops_portable());
    EXPECT_STREQ(crypto_backend_summary(), "portable");
  }
  if (aes128_ops_accelerated() != nullptr) {
    BackendGuard guard(CryptoBackendChoice::kAccelerated);
    EXPECT_STREQ(Aes128(key).backend_name(), "aes-ni");
  }
}

TEST(CryptoDispatch, AcceleratedAvailabilityTracksCpuid) {
  const CpuFeatures& cpu = cpu_features();
  // The ops can only exist when cpuid advertises the instructions; the
  // converse may fail if the compiler lacked the flags.
  if (aes128_ops_accelerated() != nullptr) {
    EXPECT_TRUE(cpu.aesni && cpu.sse41);
  }
  if (gf64_ops_accelerated() != nullptr) {
    EXPECT_TRUE(cpu.pclmul && cpu.sse41);
  }
}

// ---------------------------------------------------------------------
// FIPS-197 known-answer tests pinned to the AES-NI kernel.
// ---------------------------------------------------------------------

TEST(CryptoDispatch, AesNiFips197KnownAnswers) {
  const Aes128Ops* ni = aes128_ops_accelerated();
  if (ni == nullptr) GTEST_SKIP() << "no AES-NI backend on this host";
  // Appendix B.
  {
    const Aes128::Key key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                          0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    const Aes128::Block plain{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30,
                              0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                              0x07, 0x34};
    const Aes128::Block expected{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                                 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                                 0x19, 0x6a, 0x0b, 0x32};
    const Aes128 aes(key, *ni);
    EXPECT_STREQ(aes.backend_name(), "aes-ni");
    EXPECT_EQ(aes.encrypt(plain), expected);
    EXPECT_EQ(aes.decrypt(expected), plain);
  }
  // Appendix C.1.
  {
    const Aes128::Key key{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                          0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
    const Aes128::Block plain{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66,
                              0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
                              0xee, 0xff};
    const Aes128::Block expected{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                 0x70, 0xb4, 0xc5, 0x5a};
    const Aes128 aes(key, *ni);
    EXPECT_EQ(aes.encrypt(plain), expected);
    EXPECT_EQ(aes.decrypt(expected), plain);
  }
}

TEST(CryptoDispatch, KeyScheduleLayoutIdenticalAcrossBackends) {
  const Aes128Ops* ni = aes128_ops_accelerated();
  if (ni == nullptr) GTEST_SKIP() << "no AES-NI backend on this host";
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const Aes128::Key key = random_key(rng);
    std::uint8_t portable_rk[176], ni_rk[176];
    aes128_ops_portable().expand_key(key.data(), portable_rk);
    ni->expand_key(key.data(), ni_rk);
    ASSERT_EQ(0, std::memcmp(portable_rk, ni_rk, sizeof(portable_rk)))
        << "trial " << trial;
  }
}

// ---------------------------------------------------------------------
// Differential fuzz: portable vs accelerated, layer by layer.
// ---------------------------------------------------------------------

TEST(CryptoDispatch, DifferentialEncryptDecrypt) {
  const Aes128Ops* ni = aes128_ops_accelerated();
  if (ni == nullptr) GTEST_SKIP() << "no AES-NI backend on this host";
  Xoshiro256 rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    const Aes128::Key key = random_key(rng);
    const Aes128 soft(key, aes128_ops_portable());
    const Aes128 hard(key, *ni);
    const Aes128::Block plain = random_block16(rng);
    const Aes128::Block ct = soft.encrypt(plain);
    ASSERT_EQ(ct, hard.encrypt(plain)) << "trial " << trial;
    ASSERT_EQ(soft.decrypt(ct), hard.decrypt(ct)) << "trial " << trial;
  }
}

TEST(CryptoDispatch, DifferentialEncryptBlocks4) {
  const Aes128Ops* ni = aes128_ops_accelerated();
  if (ni == nullptr) GTEST_SKIP() << "no AES-NI backend on this host";
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const Aes128::Key key = random_key(rng);
    const Aes128 soft(key, aes128_ops_portable());
    const Aes128 hard(key, *ni);
    DataBlock in = random_block64(rng);
    DataBlock out_soft, out_hard;
    soft.encrypt_blocks4(in, out_soft);
    hard.encrypt_blocks4(in, out_hard);
    ASSERT_EQ(out_soft, out_hard) << "trial " << trial;
    // The 4-wide kernel is four independent single-block encryptions.
    for (std::size_t chunk = 0; chunk < 4; ++chunk) {
      Aes128::Block one;
      std::memcpy(one.data(), in.data() + 16 * chunk, 16);
      ASSERT_EQ(0, std::memcmp(hard.encrypt(one).data(),
                               out_hard.data() + 16 * chunk, 16));
    }
  }
}

TEST(CryptoDispatch, DifferentialGf64) {
  const Gf64Ops* hw = gf64_ops_accelerated();
  if (hw == nullptr) GTEST_SKIP() << "no PCLMULQDQ backend on this host";
  Xoshiro256 rng(14);
  const std::uint64_t edges[] = {0,    1,    2,     0x1b, 1ULL << 63,
                                 ~0ULL, 0x8000000000000001ULL};
  for (const std::uint64_t a : edges) {
    for (const std::uint64_t b : edges) {
      const Clmul128 ps = clmul64_portable(a, b);
      const Clmul128 ph = hw->clmul(a, b);
      ASSERT_EQ(ps.lo, ph.lo);
      ASSERT_EQ(ps.hi, ph.hi);
      ASSERT_EQ(gf64_mul_portable(a, b), hw->mul(a, b));
    }
  }
  for (int trial = 0; trial < 5000; ++trial) {
    const std::uint64_t a = rng.next(), b = rng.next();
    const Clmul128 ps = clmul64_portable(a, b);
    const Clmul128 ph = hw->clmul(a, b);
    ASSERT_EQ(ps.lo, ph.lo) << a << "*" << b;
    ASSERT_EQ(ps.hi, ph.hi) << a << "*" << b;
    ASSERT_EQ(gf64_mul_portable(a, b), hw->mul(a, b)) << a << "*" << b;
  }
}

TEST(CryptoDispatch, DifferentialCtrKeystream) {
  const Aes128Ops* ni = aes128_ops_accelerated();
  if (ni == nullptr) GTEST_SKIP() << "no AES-NI backend on this host";
  Xoshiro256 rng(15);
  const Aes128::Key key = random_key(rng);
  const CtrKeystream soft(key, aes128_ops_portable());
  const CtrKeystream hard(key, *ni);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t addr = rng.next() & ~std::uint64_t{63};
    const std::uint64_t counter = rng.next() & ((1ULL << 56) - 1);
    DataBlock ks_soft, ks_hard;
    soft.generate(addr, counter, ks_soft);
    hard.generate(addr, counter, ks_hard);
    ASSERT_EQ(ks_soft, ks_hard) << "trial " << trial;
  }
}

TEST(CryptoDispatch, CtrBatchMatchesScalar) {
  Xoshiro256 rng(16);
  const Aes128::Key key = random_key(rng);
  const CtrKeystream ks(key);
  std::vector<std::uint64_t> addrs, counters;
  for (int i = 0; i < 37; ++i) {  // deliberately not a multiple of 4
    addrs.push_back(rng.next() & ~std::uint64_t{63});
    counters.push_back(rng.next() & ((1ULL << 56) - 1));
  }
  std::vector<DataBlock> batch(addrs.size());
  ks.generate_batch(addrs, counters, batch);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    DataBlock one;
    ks.generate(addrs[i], counters[i], one);
    ASSERT_EQ(batch[i], one) << i;
  }
  // crypt_batch == XOR of the same keystreams.
  std::vector<DataBlock> data(addrs.size());
  for (auto& block : data) block = random_block64(rng);
  std::vector<DataBlock> expected = data;
  for (std::size_t i = 0; i < addrs.size(); ++i)
    for (std::size_t j = 0; j < kBlockBytes; ++j)
      expected[i][j] ^= batch[i][j];
  ks.crypt_batch(addrs, counters, data);
  EXPECT_EQ(data, expected);
}

TEST(CryptoDispatch, DifferentialCwMac) {
  const Aes128Ops* ni = aes128_ops_accelerated();
  const Gf64Ops* hw = gf64_ops_accelerated();
  if (ni == nullptr || hw == nullptr)
    GTEST_SKIP() << "no accelerated backends on this host";
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    CwMacKey key{};
    key.hash_key = rng.next();
    key.pad_key = random_key(rng);
    const CwMac soft(key, aes128_ops_portable(), gf64_ops_portable());
    const CwMac hard(key, *ni, *hw);
    EXPECT_STREQ(soft.gf_backend_name(), "portable");
    EXPECT_STREQ(hard.gf_backend_name(), "pclmul");
    const std::uint64_t addr = rng.next() & ~std::uint64_t{63};
    const std::uint64_t counter = rng.next() & ((1ULL << 56) - 1);
    // Whole blocks plus ragged lengths exercise the tail path.
    std::uint8_t message[96];
    for (auto& b : message) b = static_cast<std::uint8_t>(rng.next());
    for (const std::size_t len : {std::size_t{0}, std::size_t{5},
                                  std::size_t{64}, std::size_t{96}}) {
      const std::span<const std::uint8_t> msg(message, len);
      ASSERT_EQ(soft.compute(addr, counter, msg),
                hard.compute(addr, counter, msg))
          << "trial " << trial << " len " << len;
    }
    ASSERT_EQ(soft.pad_for(addr, counter), hard.pad_for(addr, counter));
    const DataBlock block = random_block64(rng);
    ASSERT_EQ(soft.block_polyhash(block), hard.block_polyhash(block));
    for (std::size_t w = 0; w < CwMac::kBlockWords; ++w)
      ASSERT_EQ(soft.word_coefficient(w), hard.word_coefficient(w)) << w;
  }
}

TEST(CryptoDispatch, CwMacBatchMatchesScalar) {
  Xoshiro256 rng(18);
  CwMacKey key{};
  key.hash_key = rng.next();
  key.pad_key = random_key(rng);
  const CwMac mac(key);
  std::vector<std::uint64_t> addrs, counters;
  std::vector<DataBlock> blocks;
  for (int i = 0; i < 41; ++i) {
    addrs.push_back(rng.next() & ~std::uint64_t{63});
    counters.push_back(rng.next() & ((1ULL << 56) - 1));
    blocks.push_back(random_block64(rng));
  }
  std::vector<std::uint64_t> pads(addrs.size()), tags(addrs.size());
  mac.pad_batch(addrs, counters, pads);
  mac.compute_batch(addrs, counters, blocks, tags);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    ASSERT_EQ(pads[i], mac.pad_for(addrs[i], counters[i])) << i;
    ASSERT_EQ(tags[i], mac.compute_block(addrs[i], counters[i], blocks[i]))
        << i;
  }
}

TEST(CryptoDispatch, BlockPolyhashConsistentWithTags) {
  // tag == (block_polyhash ^ pad) & kMacMask — the identity the
  // incremental flip-and-check path is built on.
  Xoshiro256 rng(19);
  CwMacKey key{};
  key.hash_key = rng.next();
  key.pad_key = random_key(rng);
  const CwMac mac(key);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t addr = rng.next() & ~std::uint64_t{63};
    const std::uint64_t counter = rng.next() & ((1ULL << 56) - 1);
    const DataBlock block = random_block64(rng);
    const std::uint64_t pad = mac.pad_for(addr, counter);
    EXPECT_EQ(mac.compute_block(addr, counter, block),
              (mac.block_polyhash(block) ^ pad) & kMacMask);
  }
}

// ---------------------------------------------------------------------
// End to end: the whole engine produces bit-identical off-chip state on
// both backends.
// ---------------------------------------------------------------------

TEST(CryptoDispatch, EngineSaveImagesIdenticalAcrossBackends) {
  if (aes128_ops_accelerated() == nullptr ||
      gf64_ops_accelerated() == nullptr)
    GTEST_SKIP() << "no accelerated backends on this host";
  auto run = [](CryptoBackendChoice choice) {
    BackendGuard guard(choice);
    SecureMemoryConfig config;
    config.size_bytes = 64 * 1024;
    SecureMemory memory(config);
    Xoshiro256 rng(20);
    for (int i = 0; i < 300; ++i) {
      DataBlock block;
      for (auto& b : block) b = static_cast<std::uint8_t>(rng.next());
      EXPECT_EQ(memory.write_block(rng.next_below(memory.num_blocks()), block), Status::kOk);
    }
    std::ostringstream image;
    EXPECT_EQ(memory.save(image), Status::kOk);
    return image.str();
  };
  const std::string portable_image = run(CryptoBackendChoice::kPortable);
  const std::string accel_image = run(CryptoBackendChoice::kAccelerated);
  ASSERT_EQ(portable_image.size(), accel_image.size());
  EXPECT_EQ(portable_image, accel_image);
}

TEST(CryptoDispatch, EngineBatchIoMatchesScalarAcrossBackends) {
  // write_blocks/read_blocks (batched kernels) against write_block/
  // read_block (scalar) on both backends: same plaintexts back, same
  // save image afterwards.
  for (const CryptoBackendChoice choice :
       {CryptoBackendChoice::kPortable, CryptoBackendChoice::kAccelerated}) {
    BackendGuard guard(choice);
    SecureMemoryConfig config;
    config.size_bytes = 64 * 1024;
    SecureMemory batch_engine(config);
    SecureMemory scalar_engine(config);
    Xoshiro256 rng(26);
    std::vector<BlockWrite> writes;
    std::vector<std::uint64_t> blocks;
    for (int i = 0; i < 200; ++i) {
      BlockWrite w;
      w.block = rng.next_below(batch_engine.num_blocks());
      for (auto& b : w.data) b = static_cast<std::uint8_t>(rng.next());
      writes.push_back(w);
      blocks.push_back(w.block);
    }
    EXPECT_EQ(batch_engine.write_blocks(writes), Status::kOk);
    for (const BlockWrite& w : writes)
      EXPECT_EQ(scalar_engine.write_block(w.block, w.data), Status::kOk);

    const auto batch_results = batch_engine.read_blocks(blocks);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const auto scalar_result = scalar_engine.read_block(blocks[i]);
      ASSERT_EQ(batch_results[i].status, scalar_result.status) << i;
      ASSERT_EQ(batch_results[i].data, scalar_result.data) << i;
    }

    std::ostringstream batch_image, scalar_image;
    EXPECT_EQ(batch_engine.save(batch_image), Status::kOk);
    EXPECT_EQ(scalar_engine.save(scalar_image), Status::kOk);
    EXPECT_EQ(batch_image.str(), scalar_image.str());
  }
}

}  // namespace
}  // namespace secmem