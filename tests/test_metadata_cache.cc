#include "tree/metadata_cache.h"

#include <gtest/gtest.h>

namespace secmem {
namespace {

class MetadataCacheTest : public ::testing::Test {
 protected:
  StatRegistry stats;
  MetadataCache cache{CacheConfig{1024, 2, 64}, stats};  // 16 lines
};

TEST_F(MetadataCacheTest, MissThenHit) {
  EXPECT_FALSE(cache.access(0x1000, false).hit);
  EXPECT_TRUE(cache.access(0x1000, false).hit);
  EXPECT_EQ(stats.counter_value("metacache.hits"), 1u);
  EXPECT_EQ(stats.counter_value("metacache.misses"), 1u);
}

TEST_F(MetadataCacheTest, DirtyEvictionSurfacesAsWriteback) {
  cache.access(0x0000, /*dirty=*/true);
  cache.access(0x0200, false);
  const auto result = cache.access(0x0400, false);  // evicts dirty 0x0
  ASSERT_EQ(result.writebacks.size(), 1u);
  EXPECT_EQ(result.writebacks[0], 0x0000u);
}

TEST_F(MetadataCacheTest, CleanEvictionSilent) {
  cache.access(0x0000, false);
  cache.access(0x0200, false);
  const auto result = cache.access(0x0400, false);
  EXPECT_TRUE(result.writebacks.empty());
}

TEST_F(MetadataCacheTest, RedirtyOnHit) {
  cache.access(0x0000, false);
  cache.access(0x0000, true);  // hit, now dirty
  cache.access(0x0200, false);
  const auto result = cache.access(0x0400, false);
  ASSERT_EQ(result.writebacks.size(), 1u);
}

TEST_F(MetadataCacheTest, FlushReturnsDirtyLines) {
  cache.access(0x0000, true);   // set 0
  cache.access(0x0040, false);  // set 1
  cache.access(0x0080, true);   // set 2
  const auto dirty = cache.flush();
  EXPECT_EQ(dirty.size(), 2u);
  EXPECT_FALSE(cache.contains(0x0000));
}

}  // namespace
}  // namespace secmem
