#include "ecc/flip_and_check.h"

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/rng.h"
#include "crypto/cw_mac.h"

namespace secmem {
namespace {

CwMacKey test_key() {
  CwMacKey key{};
  key.hash_key = 0xfeedface12345678ULL;
  for (int i = 0; i < 16; ++i) key.pad_key[i] = static_cast<std::uint8_t>(i);
  return key;
}

struct Fixture {
  CwMac mac{test_key()};
  DataBlock block{};
  std::uint64_t tag = 0;
  FlipAndCheck::Verifier verifier;

  explicit Fixture(std::uint64_t seed) {
    Xoshiro256 rng(seed);
    for (auto& b : block) b = static_cast<std::uint8_t>(rng.next());
    tag = mac.compute_block(0x40, 1, block);
    verifier = [this](const DataBlock& candidate) {
      return mac.verify(0x40, 1, candidate, tag);
    };
  }
};

TEST(FlipAndCheck, CleanBlockNoWork) {
  Fixture f(1);
  FlipAndCheck corrector;
  const auto result = corrector.correct(f.block, f.verifier);
  EXPECT_EQ(result.status, CorrectionStatus::kClean);
  EXPECT_EQ(result.mac_evaluations, 1u);
  EXPECT_EQ(result.data, f.block);
}

TEST(FlipAndCheck, SingleBitErrorsSampledAcrossBlock) {
  Fixture f(2);
  FlipAndCheck corrector;
  for (std::size_t bit = 0; bit < 512; bit += 23) {
    DataBlock corrupted = f.block;
    flip_bit(corrupted, bit);
    const auto result = corrector.correct(corrupted, f.verifier);
    EXPECT_EQ(result.status, CorrectionStatus::kCorrectedOne) << bit;
    EXPECT_EQ(result.data, f.block) << bit;
    EXPECT_EQ(result.flipped_bits[0], static_cast<int>(bit));
    EXPECT_LE(result.mac_evaluations, 1 + 512u);
  }
}

TEST(FlipAndCheck, FirstAndLastBitPositions) {
  Fixture f(3);
  FlipAndCheck corrector;
  for (std::size_t bit : {std::size_t{0}, std::size_t{511}}) {
    DataBlock corrupted = f.block;
    flip_bit(corrupted, bit);
    const auto result = corrector.correct(corrupted, f.verifier);
    EXPECT_EQ(result.status, CorrectionStatus::kCorrectedOne);
    EXPECT_EQ(result.data, f.block);
  }
}

TEST(FlipAndCheck, DoubleBitErrorsCorrected) {
  Fixture f(4);
  FlipAndCheck corrector;
  const std::pair<std::size_t, std::size_t> cases[] = {
      {0, 1},      // adjacent, same word — standard SEC-DED would fail
      {3, 60},     // same word
      {10, 200},   // across words
      {500, 511},  // tail
  };
  for (const auto& [i, j] : cases) {
    DataBlock corrupted = f.block;
    flip_bit(corrupted, i);
    flip_bit(corrupted, j);
    const auto result = corrector.correct(corrupted, f.verifier);
    EXPECT_EQ(result.status, CorrectionStatus::kCorrectedTwo)
        << i << "," << j;
    EXPECT_EQ(result.data, f.block) << i << "," << j;
    EXPECT_LE(result.mac_evaluations,
              1 + 512u + FlipAndCheck::worst_case_checks(2));
  }
}

TEST(FlipAndCheck, TripleBitErrorUncorrectableAtMaxTwo) {
  Fixture f(5);
  FlipAndCheck corrector;
  DataBlock corrupted = f.block;
  flip_bit(corrupted, 1);
  flip_bit(corrupted, 77);
  flip_bit(corrupted, 401);
  const auto result = corrector.correct(corrupted, f.verifier);
  EXPECT_EQ(result.status, CorrectionStatus::kUncorrectable);
}

TEST(FlipAndCheck, MaxErrorsZeroOnlyDetects) {
  Fixture f(6);
  FlipAndCheck corrector(FlipAndCheck::Config{0, 1});
  DataBlock corrupted = f.block;
  flip_bit(corrupted, 42);
  const auto result = corrector.correct(corrupted, f.verifier);
  EXPECT_EQ(result.status, CorrectionStatus::kUncorrectable);
  EXPECT_EQ(result.mac_evaluations, 1u);
}

TEST(FlipAndCheck, MaxErrorsOneSkipsPairSearch) {
  Fixture f(7);
  FlipAndCheck corrector(FlipAndCheck::Config{1, 1});
  DataBlock corrupted = f.block;
  flip_bit(corrupted, 3);
  flip_bit(corrupted, 300);
  const auto result = corrector.correct(corrupted, f.verifier);
  EXPECT_EQ(result.status, CorrectionStatus::kUncorrectable);
  EXPECT_LE(result.mac_evaluations, 1 + 512u);
}

TEST(FlipAndCheck, WorstCaseCheckCountsMatchPaper) {
  // Paper §3.4: 512 checks for single-bit, C(512,2) = 130,816 for double.
  EXPECT_EQ(FlipAndCheck::worst_case_checks(1), 512u);
  EXPECT_EQ(FlipAndCheck::worst_case_checks(2), 130816u);
}

TEST(FlipAndCheck, ModeledCyclesScaleWithCyclesPerMac) {
  Fixture f(8);
  FlipAndCheck fast(FlipAndCheck::Config{2, 1});
  FlipAndCheck slow(FlipAndCheck::Config{2, 4});
  DataBlock corrupted = f.block;
  flip_bit(corrupted, 128);
  const auto r1 = fast.correct(corrupted, f.verifier);
  const auto r2 = slow.correct(corrupted, f.verifier);
  EXPECT_EQ(r1.mac_evaluations, r2.mac_evaluations);
  EXPECT_EQ(r2.modeled_cycles, 4 * r1.modeled_cycles);
}

TEST(FlipAndCheck, NeverMiscorrects) {
  // With a real 56-bit MAC, the corrector must only ever return the true
  // original block — a wrong candidate verifying would be a MAC collision.
  Fixture f(9);
  FlipAndCheck corrector;
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    DataBlock corrupted = f.block;
    flip_bit(corrupted, rng.next_below(512));
    flip_bit(corrupted, rng.next_below(512));
    const auto result = corrector.correct(corrupted, f.verifier);
    if (result.status == CorrectionStatus::kCorrectedOne ||
        result.status == CorrectionStatus::kCorrectedTwo ||
        result.status == CorrectionStatus::kClean) {
      EXPECT_EQ(result.data, f.block);
    }
  }
}

}  // namespace
}  // namespace secmem
