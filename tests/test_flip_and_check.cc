#include "ecc/flip_and_check.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/bitops.h"
#include "common/rng.h"
#include "crypto/cw_mac.h"

namespace secmem {
namespace {

CwMacKey test_key() {
  CwMacKey key{};
  key.hash_key = 0xfeedface12345678ULL;
  for (int i = 0; i < 16; ++i) key.pad_key[i] = static_cast<std::uint8_t>(i);
  return key;
}

struct Fixture {
  CwMac mac{test_key()};
  DataBlock block{};
  std::uint64_t tag = 0;
  FlipAndCheck::Verifier verifier;

  explicit Fixture(std::uint64_t seed) {
    Xoshiro256 rng(seed);
    for (auto& b : block) b = static_cast<std::uint8_t>(rng.next());
    tag = mac.compute_block(0x40, 1, block);
    verifier = [this](const DataBlock& candidate) {
      return mac.verify(0x40, 1, candidate, tag);
    };
  }
};

TEST(FlipAndCheck, CleanBlockNoWork) {
  Fixture f(1);
  FlipAndCheck corrector;
  const auto result = corrector.correct(f.block, f.verifier);
  EXPECT_EQ(result.status, CorrectionStatus::kClean);
  EXPECT_EQ(result.mac_evaluations, 1u);
  EXPECT_EQ(result.data, f.block);
}

TEST(FlipAndCheck, SingleBitErrorsSampledAcrossBlock) {
  Fixture f(2);
  FlipAndCheck corrector;
  for (std::size_t bit = 0; bit < 512; bit += 23) {
    DataBlock corrupted = f.block;
    flip_bit(corrupted, bit);
    const auto result = corrector.correct(corrupted, f.verifier);
    EXPECT_EQ(result.status, CorrectionStatus::kCorrectedOne) << bit;
    EXPECT_EQ(result.data, f.block) << bit;
    EXPECT_EQ(result.flipped_bits[0], static_cast<int>(bit));
    EXPECT_LE(result.mac_evaluations, 1 + 512u);
  }
}

TEST(FlipAndCheck, FirstAndLastBitPositions) {
  Fixture f(3);
  FlipAndCheck corrector;
  for (std::size_t bit : {std::size_t{0}, std::size_t{511}}) {
    DataBlock corrupted = f.block;
    flip_bit(corrupted, bit);
    const auto result = corrector.correct(corrupted, f.verifier);
    EXPECT_EQ(result.status, CorrectionStatus::kCorrectedOne);
    EXPECT_EQ(result.data, f.block);
  }
}

TEST(FlipAndCheck, DoubleBitErrorsCorrected) {
  Fixture f(4);
  FlipAndCheck corrector;
  const std::pair<std::size_t, std::size_t> cases[] = {
      {0, 1},      // adjacent, same word — standard SEC-DED would fail
      {3, 60},     // same word
      {10, 200},   // across words
      {500, 511},  // tail
  };
  for (const auto& [i, j] : cases) {
    DataBlock corrupted = f.block;
    flip_bit(corrupted, i);
    flip_bit(corrupted, j);
    const auto result = corrector.correct(corrupted, f.verifier);
    EXPECT_EQ(result.status, CorrectionStatus::kCorrectedTwo)
        << i << "," << j;
    EXPECT_EQ(result.data, f.block) << i << "," << j;
    EXPECT_LE(result.mac_evaluations,
              1 + 512u + FlipAndCheck::worst_case_checks(2));
  }
}

TEST(FlipAndCheck, TripleBitErrorUncorrectableAtMaxTwo) {
  Fixture f(5);
  FlipAndCheck corrector;
  DataBlock corrupted = f.block;
  flip_bit(corrupted, 1);
  flip_bit(corrupted, 77);
  flip_bit(corrupted, 401);
  const auto result = corrector.correct(corrupted, f.verifier);
  EXPECT_EQ(result.status, CorrectionStatus::kUncorrectable);
}

TEST(FlipAndCheck, MaxErrorsZeroOnlyDetects) {
  Fixture f(6);
  FlipAndCheck corrector(FlipAndCheck::Config{0, 1});
  DataBlock corrupted = f.block;
  flip_bit(corrupted, 42);
  const auto result = corrector.correct(corrupted, f.verifier);
  EXPECT_EQ(result.status, CorrectionStatus::kUncorrectable);
  EXPECT_EQ(result.mac_evaluations, 1u);
}

TEST(FlipAndCheck, MaxErrorsOneSkipsPairSearch) {
  Fixture f(7);
  FlipAndCheck corrector(FlipAndCheck::Config{1, 1});
  DataBlock corrupted = f.block;
  flip_bit(corrupted, 3);
  flip_bit(corrupted, 300);
  const auto result = corrector.correct(corrupted, f.verifier);
  EXPECT_EQ(result.status, CorrectionStatus::kUncorrectable);
  EXPECT_LE(result.mac_evaluations, 1 + 512u);
}

TEST(FlipAndCheck, WorstCaseCheckCountsMatchPaper) {
  // Paper §3.4: 512 checks for single-bit, C(512,2) = 130,816 for double.
  EXPECT_EQ(FlipAndCheck::worst_case_checks(1), 512u);
  EXPECT_EQ(FlipAndCheck::worst_case_checks(2), 130816u);
}

TEST(FlipAndCheck, WorstCaseChecksExactAboveTwo) {
  EXPECT_EQ(FlipAndCheck::worst_case_checks(0), 1u);
  EXPECT_EQ(FlipAndCheck::worst_case_checks(3), 22238720u);  // C(512,3)
  EXPECT_EQ(FlipAndCheck::worst_case_checks(4), 2829877120u);
}

TEST(FlipAndCheck, WorstCaseChecksSaturatesInsteadOfOverflowing) {
  // C(512,9) still fits in 64 bits; C(512,10) ≈ 3.1e20 does not. The old
  // running-product implementation silently wrapped; now it saturates.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_LT(FlipAndCheck::worst_case_checks(9), kMax);
  EXPECT_GT(FlipAndCheck::worst_case_checks(9),
            FlipAndCheck::worst_case_checks(8));
  EXPECT_EQ(FlipAndCheck::worst_case_checks(10), kMax);
  EXPECT_EQ(FlipAndCheck::worst_case_checks(256), kMax);
}

TEST(FlipAndCheck, WorstCaseChecksSymmetryAndRange) {
  // C(512,k) == C(512,512-k); more flips than bits is impossible.
  EXPECT_EQ(FlipAndCheck::worst_case_checks(512), 1u);
  EXPECT_EQ(FlipAndCheck::worst_case_checks(511), 512u);
  EXPECT_EQ(FlipAndCheck::worst_case_checks(510), 130816u);
  EXPECT_EQ(FlipAndCheck::worst_case_checks(509),
            FlipAndCheck::worst_case_checks(3));
  EXPECT_EQ(FlipAndCheck::worst_case_checks(513), 0u);
  EXPECT_EQ(FlipAndCheck::worst_case_checks(100000), 0u);
}

TEST(FlipAndCheck, ModeledCyclesScaleWithCyclesPerMac) {
  Fixture f(8);
  FlipAndCheck fast(FlipAndCheck::Config{2, 1});
  FlipAndCheck slow(FlipAndCheck::Config{2, 4});
  DataBlock corrupted = f.block;
  flip_bit(corrupted, 128);
  const auto r1 = fast.correct(corrupted, f.verifier);
  const auto r2 = slow.correct(corrupted, f.verifier);
  EXPECT_EQ(r1.mac_evaluations, r2.mac_evaluations);
  EXPECT_EQ(r2.modeled_cycles, 4 * r1.modeled_cycles);
}

TEST(FlipAndCheck, NeverMiscorrects) {
  // With a real 56-bit MAC, the corrector must only ever return the true
  // original block — a wrong candidate verifying would be a MAC collision.
  Fixture f(9);
  FlipAndCheck corrector;
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    DataBlock corrupted = f.block;
    flip_bit(corrupted, rng.next_below(512));
    flip_bit(corrupted, rng.next_below(512));
    const auto result = corrector.correct(corrupted, f.verifier);
    if (result.status == CorrectionStatus::kCorrectedOne ||
        result.status == CorrectionStatus::kCorrectedTwo ||
        result.status == CorrectionStatus::kClean) {
      EXPECT_EQ(result.data, f.block);
    }
  }
}

// ---------------------------------------------------------------------
// Incremental corrector: same searches via per-bit GF(2^64) hash deltas.
// ---------------------------------------------------------------------

struct IncrementalFixture : Fixture {
  std::uint64_t pad;
  explicit IncrementalFixture(std::uint64_t seed)
      : Fixture(seed), pad(mac.pad_for(0x40, 1)) {}
};

TEST(FlipAndCheckIncremental, CleanBlockNoWork) {
  IncrementalFixture f(21);
  FlipAndCheck corrector;
  const auto result = corrector.correct_incremental(f.block, f.mac, f.pad,
                                                    f.tag);
  EXPECT_EQ(result.status, CorrectionStatus::kClean);
  EXPECT_EQ(result.mac_evaluations, 1u);
  EXPECT_EQ(result.data, f.block);
}

TEST(FlipAndCheckIncremental, MatchesGenericOnSingleBitErrors) {
  IncrementalFixture f(22);
  FlipAndCheck corrector;
  for (std::size_t bit = 0; bit < 512; bit += 17) {
    DataBlock corrupted = f.block;
    flip_bit(corrupted, bit);
    const auto fast =
        corrector.correct_incremental(corrupted, f.mac, f.pad, f.tag);
    const auto slow = corrector.correct(corrupted, f.verifier);
    EXPECT_EQ(fast.status, slow.status) << bit;
    EXPECT_EQ(fast.data, slow.data) << bit;
    EXPECT_EQ(fast.mac_evaluations, slow.mac_evaluations) << bit;
    EXPECT_EQ(fast.flipped_bits[0], slow.flipped_bits[0]) << bit;
    EXPECT_EQ(fast.data, f.block) << bit;
  }
}

TEST(FlipAndCheckIncremental, MatchesGenericOnDoubleBitErrors) {
  IncrementalFixture f(23);
  FlipAndCheck corrector;
  Xoshiro256 rng(777);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t i = rng.next_below(512);
    std::size_t j = rng.next_below(512);
    if (j == i) j = (j + 1) % 512;
    DataBlock corrupted = f.block;
    flip_bit(corrupted, i);
    flip_bit(corrupted, j);
    const auto fast =
        corrector.correct_incremental(corrupted, f.mac, f.pad, f.tag);
    const auto slow = corrector.correct(corrupted, f.verifier);
    EXPECT_EQ(fast.status, slow.status) << i << "," << j;
    EXPECT_EQ(fast.data, slow.data) << i << "," << j;
    EXPECT_EQ(fast.mac_evaluations, slow.mac_evaluations) << i << "," << j;
    EXPECT_EQ(fast.flipped_bits[0], slow.flipped_bits[0]);
    EXPECT_EQ(fast.flipped_bits[1], slow.flipped_bits[1]);
  }
}

TEST(FlipAndCheckIncremental, TripleBitErrorUncorrectableWithFullCount) {
  IncrementalFixture f(24);
  FlipAndCheck corrector;
  DataBlock corrupted = f.block;
  flip_bit(corrupted, 1);
  flip_bit(corrupted, 77);
  flip_bit(corrupted, 401);
  const auto result =
      corrector.correct_incremental(corrupted, f.mac, f.pad, f.tag);
  EXPECT_EQ(result.status, CorrectionStatus::kUncorrectable);
  EXPECT_EQ(result.mac_evaluations,
            1 + 512u + FlipAndCheck::worst_case_checks(2));
}

TEST(FlipAndCheckIncremental, RespectsMaxErrorsConfig) {
  IncrementalFixture f(25);
  DataBlock corrupted = f.block;
  flip_bit(corrupted, 42);
  {
    FlipAndCheck detect_only(FlipAndCheck::Config{0, 1});
    const auto result =
        detect_only.correct_incremental(corrupted, f.mac, f.pad, f.tag);
    EXPECT_EQ(result.status, CorrectionStatus::kUncorrectable);
    EXPECT_EQ(result.mac_evaluations, 1u);
  }
  {
    FlipAndCheck single(FlipAndCheck::Config{1, 1});
    const auto result =
        single.correct_incremental(corrupted, f.mac, f.pad, f.tag);
    EXPECT_EQ(result.status, CorrectionStatus::kCorrectedOne);
    EXPECT_EQ(result.data, f.block);
  }
}

}  // namespace
}  // namespace secmem
