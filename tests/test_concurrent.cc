#include "engine/concurrent.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "common/stats.h"

namespace secmem {
namespace {

DataBlock stamp(unsigned thread, unsigned round) {
  DataBlock b{};
  b[0] = static_cast<std::uint8_t>(thread);
  b[1] = static_cast<std::uint8_t>(round);
  for (std::size_t i = 2; i < 64; ++i)
    b[i] = static_cast<std::uint8_t>(thread * 31 + round * 7 + i);
  return b;
}

TEST(ConcurrentSecureMemory, ParallelDisjointWritersRoundTrip) {
  SecureMemoryConfig config;
  config.size_bytes = 64 * 1024;
  ConcurrentSecureMemory memory(config);

  constexpr unsigned kThreads = 8;
  constexpr unsigned kRounds = 150;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&memory, &failures, t] {
      // Each thread owns blocks t, t+8, t+16, ... — plus reads others.
      for (unsigned round = 0; round < kRounds; ++round) {
        const std::uint64_t block = t + 8 * (round % 16);
        EXPECT_EQ(memory.write_block(block, stamp(t, round)), Status::kOk);
        const auto result = memory.read_block(block);
        if (result.status != ReadStatus::kOk ||
            result.data != stamp(t, round))
          ++failures;
        // Cross-read someone else's block: status must be OK (content is
        // whatever their latest round wrote).
        const auto other = memory.read_block((t + 1) % 8);
        if (other.status != ReadStatus::kOk) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const auto stats = memory.stats();
  EXPECT_EQ(stats.writes, kThreads * kRounds);
  EXPECT_EQ(stats.integrity_violations, 0u);
}

TEST(ConcurrentSecureMemory, ContendedSameGroupWritesStayConsistent) {
  // All threads hammer blocks of ONE 4KB group: counter maintenance
  // (resets/re-encodes/re-encryptions) interleaves with reads.
  SecureMemoryConfig config;
  config.size_bytes = 16 * 1024;
  config.scheme = CounterSchemeKind::kSplit;  // re-encrypts every 128
  ConcurrentSecureMemory memory(config);

  std::vector<std::thread> threads;
  std::atomic<int> bad_reads{0};
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&memory, &bad_reads, t] {
      for (unsigned round = 0; round < 200; ++round) {
        EXPECT_EQ(memory.write_block(t, stamp(t, round)), Status::kOk);
        const auto result = memory.read_block(t);
        if (result.status != ReadStatus::kOk ||
            result.data != stamp(t, round))
          ++bad_reads;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(bad_reads.load(), 0);
  EXPECT_GE(memory.stats().group_reencryptions, 1u);
}

TEST(ConcurrentSecureMemory, FacadeWrapsScrubStatsAndPersistence) {
  // Regression: scrub_block / reset_stats / save / restore used to be
  // missing from the facade, pushing callers toward with_exclusive (and
  // holding the lock across arbitrary I/O by accident).
  SecureMemoryConfig config;
  config.size_bytes = 16 * 1024;
  ConcurrentSecureMemory memory(config);
  EXPECT_EQ(memory.write_block(2, stamp(3, 4)), Status::kOk);

  // scrub_block heals a planted single-bit fault.
  memory.with_exclusive([](SecureMemory& inner) {
    inner.untrusted().flip_ciphertext_bit(2, 9);
  });
  EXPECT_EQ(memory.scrub_block(2),
            SecureMemory::ScrubStatus::kRepairedData);
  EXPECT_EQ(memory.read_block(2).status, ReadStatus::kOk);

  EXPECT_GT(memory.stats().reads, 0u);
  memory.reset_stats();
  EXPECT_EQ(memory.stats().reads, 0u);

  // save / restore round-trip through the locked wrappers.
  std::stringstream image;
  EXPECT_EQ(memory.save(image), Status::kOk);
  EXPECT_EQ(memory.write_block(2, stamp(9, 9)), Status::kOk);
  ASSERT_TRUE(memory.restore(image));
  const auto result = memory.read_block(2);
  EXPECT_EQ(result.status, ReadStatus::kOk);
  EXPECT_EQ(result.data, stamp(3, 4));
}

TEST(ConcurrentSecureMemoryStress, ReadMostlySharedReadersStayConsistent) {
  // The single-lock facade's seqlock gate: readers verify in parallel
  // under the shared side while one writer cycles blocks it owns alone.
  // Fixed per-block content makes every read's one acceptable value
  // computable; the TSan preset runs this too.
  SecureMemoryConfig config;
  config.size_bytes = 64 * 1024;
  ConcurrentSecureMemory memory(config);
  const std::uint64_t blocks = memory.num_blocks();
  const auto fixed = [](std::uint64_t block) {
    return stamp(static_cast<unsigned>(block % 199), 0);
  };
  for (std::uint64_t b = 0; b < blocks; ++b)
    EXPECT_EQ(memory.write_block(b, fixed(b)), Status::kOk);

  constexpr unsigned kReaders = 6;
  constexpr unsigned kRounds = 300;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.emplace_back([&memory, &fixed, blocks] {
    for (unsigned round = 0; round < kRounds / 2; ++round) {
      const std::uint64_t block = (round * 11) % blocks;
      EXPECT_EQ(memory.write_block(block, fixed(block)), Status::kOk);
    }
  });
  for (unsigned t = 0; t < kReaders; ++t) {
    threads.emplace_back([&memory, &fixed, &failures, blocks, t] {
      for (unsigned round = 0; round < kRounds; ++round) {
        const std::uint64_t block = (round * 7 + t * 13) % blocks;
        const auto result = memory.read_block(block);
        if (result.status != ReadStatus::kOk || result.data != fixed(block))
          ++failures;
        if (round % 16 == 0) {
          std::vector<std::uint8_t> buffer(256);
          const std::uint64_t addr =
              (round * 977 + t * 131) % (memory.size_bytes() - buffer.size());
          if (!status_ok(memory.read_bytes(addr, buffer))) ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(memory.stats().integrity_violations, 0u);
  if (seqlock_reads_enabled()) {
    StatRegistry registry;
    memory.publish_metrics(registry);
    EXPECT_GT(registry.counter_value("engine.shared_reads"), 0u);
  }
}

TEST(ConcurrentSecureMemory, WithExclusiveExposesFullApi) {
  SecureMemoryConfig config;
  config.size_bytes = 16 * 1024;
  ConcurrentSecureMemory memory(config);
  EXPECT_EQ(memory.write_block(3, stamp(1, 1)), Status::kOk);
  const bool tampered = memory.with_exclusive([](SecureMemory& inner) {
    inner.untrusted().flip_ciphertext_bit(3, 1);
    inner.untrusted().flip_ciphertext_bit(3, 2);
    inner.untrusted().flip_ciphertext_bit(3, 3);
    return inner.read_block(3).status == ReadStatus::kIntegrityViolation;
  });
  EXPECT_TRUE(tampered);
}

}  // namespace
}  // namespace secmem
