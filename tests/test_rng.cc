#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace secmem {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Xoshiro256 rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Xoshiro256 rng(13);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i)
    if (rng.chance(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.02);
}

TEST(Rng, ReseedResets) {
  Xoshiro256 rng(17);
  const std::uint64_t first = rng.next();
  rng.next();
  rng.reseed(17);
  EXPECT_EQ(rng.next(), first);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace secmem
