// Randomized differential and adversarial fuzzing of SecureMemory.
//
// Two properties a secure-memory implementation must never lose:
//   1. functional equivalence — interleaved reads/writes behave exactly
//      like a plain byte array (differential test vs std::vector),
//   2. no silent corruption — whatever an attacker or fault does to the
//      untrusted store, a read either returns the true data (possibly
//      via correction) or reports a violation. Wrong data with an OK
//      status is the one unforgivable outcome.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "engine/secure_memory.h"

namespace secmem {
namespace {

class SecureMemoryFuzz
    : public ::testing::TestWithParam<
          std::tuple<CounterSchemeKind, MacPlacement>> {
 protected:
  SecureMemoryConfig config() {
    SecureMemoryConfig c;
    c.size_bytes = 32 * 1024;  // 512 blocks, 8 groups
    c.scheme = std::get<0>(GetParam());
    c.mac_placement = std::get<1>(GetParam());
    return c;
  }
};

TEST_P(SecureMemoryFuzz, DifferentialAgainstPlainMemory) {
  SecureMemory memory(config());
  std::vector<std::uint8_t> model(memory.size_bytes(), 0);
  Xoshiro256 rng(static_cast<std::uint64_t>(std::get<0>(GetParam())) * 131 +
                 static_cast<std::uint64_t>(std::get<1>(GetParam())));

  for (int op = 0; op < 4000; ++op) {
    const std::uint64_t addr = rng.next_below(memory.size_bytes() - 256);
    const std::size_t len = 1 + rng.next_below(256);
    if (rng.chance(0.5)) {
      std::vector<std::uint8_t> data(len);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
      ASSERT_TRUE(status_ok(memory.write_bytes(addr, data)));
      std::memcpy(model.data() + addr, data.data(), len);
    } else {
      std::vector<std::uint8_t> out(len);
      ASSERT_TRUE(status_ok(memory.read_bytes(addr, out)));
      ASSERT_EQ(std::memcmp(out.data(), model.data() + addr, len), 0)
          << "divergence at op " << op << " addr " << addr;
    }
  }
  // Full final sweep.
  std::vector<std::uint8_t> all(memory.size_bytes());
  ASSERT_TRUE(status_ok(memory.read_bytes(0, all)));
  EXPECT_EQ(all, model);
}

TEST_P(SecureMemoryFuzz, NoSilentCorruptionUnderRandomTampering) {
  SecureMemory memory(config());
  Xoshiro256 rng(0xF422 + static_cast<std::uint64_t>(std::get<0>(GetParam())));
  std::vector<DataBlock> truth(memory.num_blocks());
  for (std::uint64_t b = 0; b < memory.num_blocks(); ++b) {
    for (auto& byte : truth[b]) byte = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(memory.write_block(b, truth[b]), Status::kOk);
  }

  auto attacker = memory.untrusted();
  int corrected = 0, violations = 0;
  for (int round = 0; round < 120; ++round) {
    const std::uint64_t block = rng.next_below(memory.num_blocks());
    // Random mischief: 1-4 flips across ciphertext / lane / counters.
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      switch (rng.next_below(3)) {
        case 0:
          attacker.flip_ciphertext_bit(
              block, static_cast<unsigned>(rng.next_below(512)));
          break;
        case 1:
          attacker.flip_lane_bit(block,
                                 static_cast<unsigned>(rng.next_below(64)));
          break;
        case 2:
          attacker.flip_counter_bit(
              memory.counters().storage_line_of(block),
              static_cast<unsigned>(rng.next_below(512)));
          break;
      }
    }

    const auto result = memory.read_block(block);
    switch (result.status) {
      case ReadStatus::kOk:
      case ReadStatus::kCorrectedMacField:
      case ReadStatus::kCorrectedData:
      case ReadStatus::kCorrectedWord:
        // If the implementation claims success, the data MUST be right.
        ASSERT_EQ(result.data, truth[block])
            << "SILENT CORRUPTION at round " << round;
        ++corrected;
        break;
      case ReadStatus::kIntegrityViolation:
      case ReadStatus::kCounterTampered:
        ++violations;
        break;
      case ReadStatus::kRegionPoisoned:
        FAIL() << "single engines never poison (sharded-only state)";
        break;
    }
    // Restore a clean state for the next round (rewrite block and heal
    // counter storage by rewriting a block in the same line's group).
    EXPECT_EQ(memory.write_block(block, truth[block]), Status::kOk);
  }
  // Both outcomes should occur across the adversarial rounds.
  EXPECT_GT(corrected + violations, 0);
  EXPECT_GT(violations, 0) << "nothing was ever detected?!";
}

TEST_P(SecureMemoryFuzz, HeavyRewriteTrafficKeepsVerifying) {
  // Hammer a few blocks through many counter-maintenance events (resets,
  // re-encodes, group re-encryptions) and verify everything still reads
  // back correctly afterwards.
  SecureMemory memory(config());
  Xoshiro256 rng(77);
  std::vector<DataBlock> last(memory.num_blocks());
  for (std::uint64_t b = 0; b < 64; ++b) {
    EXPECT_EQ(memory.write_block(b, DataBlock{}), Status::kOk);
  }
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t block = rng.next_below(8);  // all in group 0
    for (auto& byte : last[block])
      byte = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(memory.write_block(block, last[block]), Status::kOk);
  }
  for (std::uint64_t b = 0; b < 8; ++b) {
    const auto result = memory.read_block(b);
    ASSERT_EQ(result.status, ReadStatus::kOk) << b;
    EXPECT_EQ(result.data, last[b]) << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SecureMemoryFuzz,
    ::testing::Combine(::testing::Values(CounterSchemeKind::kMonolithic56,
                                         CounterSchemeKind::kSplit,
                                         CounterSchemeKind::kDelta,
                                         CounterSchemeKind::kDualDelta),
                       ::testing::Values(MacPlacement::kEccLane,
                                         MacPlacement::kSeparate)),
    [](const auto& info) {
      return std::string(counter_scheme_kind_name(std::get<0>(info.param)))
                 .substr(0, 5) +
             std::to_string(static_cast<int>(std::get<0>(info.param))) +
             (std::get<1>(info.param) == MacPlacement::kEccLane ? "_EccLane"
                                                                : "_SepMac");
    });

}  // namespace
}  // namespace secmem
