#include "counters/generic_delta.h"

#include <gtest/gtest.h>

#include <map>

#include "common/bitops.h"
#include "common/rng.h"
#include "counters/delta_counter.h"

namespace secmem {
namespace {

TEST(GenericDelta, GroupGeometryFollowsWidth) {
  // g = min(floor((512-56)/w), 64); reference + deltas always fit 512 bits.
  EXPECT_EQ(GenericDeltaCounters::group_blocks_for(4), 64u);   // capped
  EXPECT_EQ(GenericDeltaCounters::group_blocks_for(6), 64u);
  EXPECT_EQ(GenericDeltaCounters::group_blocks_for(7), 64u);
  EXPECT_EQ(GenericDeltaCounters::group_blocks_for(9), 50u);
  EXPECT_EQ(GenericDeltaCounters::group_blocks_for(12), 38u);
  EXPECT_EQ(GenericDeltaCounters::group_blocks_for(16), 28u);
  for (unsigned w = 2; w <= 16; ++w) {
    const unsigned g = GenericDeltaCounters::group_blocks_for(w);
    EXPECT_LE(56 + g * w, 512u) << "width " << w;
  }
}

TEST(GenericDelta, SevenBitMatchesDeltaCountersExactly) {
  // The paper's evaluated point must be bit-for-bit the dedicated class.
  GenericDeltaCounters generic(256, 7);
  DeltaCounters fixed(256);
  Xoshiro256 rng(1);
  for (int i = 0; i < 50000; ++i) {
    const BlockIndex block = rng.next_below(256);
    const auto a = generic.on_write(block);
    const auto b = fixed.on_write(block);
    EXPECT_EQ(a.counter, b.counter) << i;
    EXPECT_EQ(a.event, b.event) << i;
  }
  EXPECT_EQ(generic.reencryptions(), fixed.reencryptions());
  EXPECT_EQ(generic.resets(), fixed.resets());
  EXPECT_EQ(generic.reencodes(), fixed.reencodes());
  std::array<std::uint8_t, 64> la{}, lb{};
  generic.serialize_line(0, la);
  fixed.serialize_line(0, lb);
  EXPECT_EQ(la, lb);
}

class GenericDeltaWidth : public ::testing::TestWithParam<unsigned> {};

TEST_P(GenericDeltaWidth, OverflowAtExactWidthBoundary) {
  const unsigned width = GetParam();
  GenericDeltaCounters scheme(
      GenericDeltaCounters::group_blocks_for(width), width);
  const std::uint64_t max = (1ULL << width) - 1;
  for (std::uint64_t i = 0; i < max; ++i) {
    EXPECT_NE(scheme.on_write(0).event, CounterEvent::kReencrypt) << i;
  }
  // Δmin = 0 (cold neighbours): the next write must re-encrypt.
  EXPECT_EQ(scheme.on_write(0).event, CounterEvent::kReencrypt);
  EXPECT_EQ(scheme.read_counter(0), max + 1);
}

TEST_P(GenericDeltaWidth, NonceFreshnessUnderRandomWrites) {
  const unsigned width = GetParam();
  GenericDeltaCounters scheme(256, width);
  Xoshiro256 rng(width);
  std::map<BlockIndex, std::uint64_t> last;
  for (int i = 0; i < 30000; ++i) {
    const BlockIndex block =
        rng.chance(0.7) ? rng.next_below(4) : rng.next_below(256);
    const auto outcome = scheme.on_write(block);
    auto it = last.find(block);
    if (it != last.end()) EXPECT_GT(outcome.counter, it->second);
    last[block] = outcome.counter;
    if (outcome.event == CounterEvent::kReencrypt) {
      const BlockIndex first = outcome.group * scheme.blocks_per_group();
      for (BlockIndex b = first;
           b < first + scheme.blocks_per_group() && b < 256; ++b)
        last[b] = outcome.counter;
    }
  }
}

TEST_P(GenericDeltaWidth, UniformSweepResets) {
  const unsigned width = GetParam();
  const unsigned group = GenericDeltaCounters::group_blocks_for(width);
  GenericDeltaCounters scheme(group, width);
  for (int pass = 0; pass < 50; ++pass)
    for (BlockIndex b = 0; b < group; ++b) scheme.on_write(b);
  EXPECT_EQ(scheme.reencryptions(), 0u);
  EXPECT_EQ(scheme.resets(), 50u);
}

TEST_P(GenericDeltaWidth, SerializationRoundTripsAllFields) {
  const unsigned width = GetParam();
  const unsigned group = GenericDeltaCounters::group_blocks_for(width);
  GenericDeltaCounters scheme(group, width);
  Xoshiro256 rng(99 + width);
  for (int i = 0; i < 500; ++i) scheme.on_write(rng.next_below(group));
  std::array<std::uint8_t, 64> line{};
  scheme.serialize_line(0, line);
  // Manually decode the line and compare against read_counter.
  const std::uint64_t ref = extract_field(line, 0, 56);
  for (unsigned b = 0; b < group; ++b) {
    const std::uint64_t delta =
        extract_field(line, 56 + b * width, width);
    EXPECT_EQ(ref + delta, scheme.read_counter(b)) << "slot " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, GenericDeltaWidth,
                         ::testing::Values(4u, 5u, 6u, 7u, 8u, 10u, 12u,
                                           16u));

TEST(GenericDelta, WiderDeltasReencryptLess) {
  // The §4.2 trade-off: more bits per delta -> later overflow -> fewer
  // re-encryptions, at higher storage cost. Drive identical hot streams.
  std::uint64_t previous = ~0ULL;
  for (unsigned width : {4u, 6u, 8u, 10u}) {
    GenericDeltaCounters scheme(64, width);
    Xoshiro256 rng(7);  // same stream for all widths
    for (int i = 0; i < 20000; ++i)
      scheme.on_write(rng.next_below(4));  // 4 hot blocks, Δmin pins at 0
    EXPECT_LT(scheme.reencryptions(), previous) << "width " << width;
    previous = scheme.reencryptions();
  }
}

TEST(GenericDelta, StorageCostGrowsWithWidth) {
  double previous = 0;
  for (unsigned width : {4u, 6u, 8u, 12u, 16u}) {
    GenericDeltaCounters scheme(64, width);
    EXPECT_GT(scheme.bits_per_block(), previous);
    previous = scheme.bits_per_block();
  }
}

}  // namespace
}  // namespace secmem
