// Delta snapshot tests: MAC-sealed incremental images across all three
// engines — chain round-trips with bit-identical differential images,
// crash/restore loops where every failed (tampered) apply leaves the
// region intact for the clean retry, stale-delta replay rejection, key
// rotation breaking the chain and falling back to full images, the
// SECMEM_DELTA_SNAPSHOT kill switch, the exhaustive
// every-byte-flip-rejects contract on sealed delta images, and the
// cross-instance encode_delta image diff. The codec underneath is unit
// tested in test_delta_image.cc.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <ostream>
#include <span>
#include <sstream>
#include <streambuf>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "engine/concurrent.h"
#include "engine/secure_memory.h"
#include "engine/sharded_memory.h"

namespace secmem {
namespace {

/// Scoped environment override (restores the previous value on exit).
/// The delta kill switch is sampled at engine construction, so the
/// full-only engines are built inside one of these.
class EnvOverride {
 public:
  EnvOverride(const char* name, const char* value) : name_(name) {
    if (const char* prev = std::getenv(name)) prev_ = prev;
    setenv(name, value, 1);
  }
  ~EnvOverride() {
    if (prev_)
      setenv(name_.c_str(), prev_->c_str(), 1);
    else
      unsetenv(name_.c_str());
  }
  EnvOverride(const EnvOverride&) = delete;
  EnvOverride& operator=(const EnvOverride&) = delete;

 private:
  std::string name_;
  std::optional<std::string> prev_;
};

DataBlock pattern(std::uint8_t seed) {
  DataBlock b{};
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<std::uint8_t>(seed * 73 + i);
  return b;
}

SecureMemoryConfig small_config() {
  SecureMemoryConfig config;
  config.size_bytes = 32 * 1024;
  return config;
}

void populate(SecureMemoryLike& engine, std::uint64_t rng_seed) {
  Xoshiro256 rng(rng_seed);
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(engine.write_block(rng.next_below(engine.num_blocks()),
                                 pattern(static_cast<std::uint8_t>(i))),
              Status::kOk);
  }
  for (std::uint64_t b = 0; b < 64; ++b)
    ASSERT_EQ(engine.write_block(b, pattern(static_cast<std::uint8_t>(b))),
              Status::kOk);
}

std::string image_of(SecureMemoryLike& engine) {
  std::stringstream out;
  EXPECT_EQ(engine.save(out), Status::kOk);
  return out.str();
}

std::string delta_of(SecureMemoryLike& engine) {
  std::stringstream out;
  EXPECT_EQ(engine.save_delta(out), Status::kOk);
  return out.str();
}

bool apply_delta(SecureMemoryLike& engine, const std::string& image) {
  std::istringstream in(image);
  return engine.restore_delta(in);
}

enum class EngineKind { kPlain, kConcurrent, kSharded };

std::unique_ptr<SecureMemoryLike> make_engine(EngineKind kind) {
  const SecureMemoryConfig config = small_config();
  switch (kind) {
    case EngineKind::kPlain: return std::make_unique<SecureMemory>(config);
    case EngineKind::kConcurrent:
      return std::make_unique<ConcurrentSecureMemory>(config);
    case EngineKind::kSharded:
      return std::make_unique<ShardedSecureMemory>(config, 4);
  }
  return nullptr;
}

/// Parameterized over engine kind x delta kill switch: every contract
/// below must hold with SECMEM_DELTA_SNAPSHOT=0 too, where save_delta
/// degrades to full images that restore_delta still accepts. Both
/// directions pin the switch explicitly, so the suite behaves the same
/// under a CI leg that exports the kill switch globally.
class DeltaSnapshot
    : public ::testing::TestWithParam<std::tuple<EngineKind, bool>> {
 protected:
  EngineKind kind() const { return std::get<0>(GetParam()); }
  bool delta_enabled() const { return std::get<1>(GetParam()); }
  std::optional<EnvOverride> pin_;
  void SetUp() override {
    pin_.emplace("SECMEM_DELTA_SNAPSHOT", delta_enabled() ? "1" : "0");
  }
};

TEST_P(DeltaSnapshot, ChainRoundTripsBitIdentically) {
  auto source = make_engine(kind());
  auto replica = make_engine(kind());
  populate(*source, 7);

  // Round 0: a fresh engine has no delta base, so the first save_delta
  // ships a full image that seeds the replica and aligns both chains.
  ASSERT_TRUE(apply_delta(*replica, delta_of(*source)));

  // Incremental rounds: small mutations, delta over, applied in order.
  Xoshiro256 rng(0xBEEF);
  for (int round = 1; round <= 4; ++round) {
    for (int w = 0; w < 8; ++w) {
      ASSERT_EQ(
          source->write_block(rng.next_below(source->num_blocks()),
                              pattern(static_cast<std::uint8_t>(round * 16 + w))),
          Status::kOk);
    }
    const std::string delta = delta_of(*source);
    ASSERT_TRUE(apply_delta(*replica, delta)) << "round " << round;
  }

  // Differential check: the replica's full image is bit-identical to
  // the source's — delta restore reconstructed EXACTLY the same
  // ciphertext, lanes, MACs, counters, and tree.
  EXPECT_EQ(image_of(*source), image_of(*replica));

  // And the replica keeps working.
  ASSERT_EQ(replica->write_block(3, pattern(0xC3)), Status::kOk);
  EXPECT_EQ(replica->read_block(3).data, pattern(0xC3));
}

TEST_P(DeltaSnapshot, StaleDeltaReplayRejected) {
  auto source = make_engine(kind());
  auto replica = make_engine(kind());
  populate(*source, 11);
  ASSERT_TRUE(apply_delta(*replica, delta_of(*source)));

  ASSERT_EQ(source->write_block(5, pattern(0x55)), Status::kOk);
  const std::string delta = delta_of(*source);
  ASSERT_TRUE(apply_delta(*replica, delta));

  if (delta_enabled()) {
    // The replica's chain moved past the delta's base: replaying it must
    // be refused (base-seal mismatch), leaving the replica untouched.
    const std::string before = image_of(*replica);
    EXPECT_FALSE(apply_delta(*replica, delta));
    EXPECT_EQ(image_of(*replica), before);
  } else {
    // Kill switch: "deltas" are full images, and full-image restore is
    // idempotent by design — replay is allowed and harmless.
    EXPECT_TRUE(apply_delta(*replica, delta));
  }
  EXPECT_EQ(replica->read_block(5).data, pattern(0x55));
}

TEST_P(DeltaSnapshot, CrashRestoreLoopSurvivesTamperedAttempts) {
  auto source = make_engine(kind());
  auto replica = make_engine(kind());
  populate(*source, 13);
  ASSERT_TRUE(apply_delta(*replica, delta_of(*source)));

  Xoshiro256 rng(0xC4A5);
  for (int round = 0; round < 4; ++round) {
    for (int w = 0; w < 6; ++w) {
      ASSERT_EQ(
          source->write_block(
              rng.next_below(source->num_blocks()),
              pattern(static_cast<std::uint8_t>(round * 8 + w))),
          Status::kOk);
    }
    const std::string delta = delta_of(*source);
    // A "crash" mid-transfer: a damaged copy arrives first. The failed
    // apply must leave the replica exactly where it was so the clean
    // retry of the SAME delta still lands on its base.
    std::string damaged = delta;
    const std::size_t offset = rng.next_below(damaged.size());
    damaged[offset] = static_cast<char>(
        static_cast<std::uint8_t>(damaged[offset]) ^
        static_cast<std::uint8_t>(1 + rng.next_below(255)));
    const bool damaged_ok = apply_delta(*replica, damaged);
    if (delta_enabled()) {
      // Sealed delta images reject EVERY flip before any byte applies.
      EXPECT_FALSE(damaged_ok) << "round " << round << " offset " << offset;
    }
    // Recover with the clean copy. A failed delta left its base intact,
    // so the retry lands; in full-only mode a data-section flip can be
    // ACCEPTED at stage (it surfaces on read — the full-image posture,
    // see test_snapshot.cc), so re-apply unconditionally there: full
    // restores are idempotent.
    if (!damaged_ok || !delta_enabled())
      ASSERT_TRUE(apply_delta(*replica, delta)) << "round " << round;
  }
  EXPECT_EQ(image_of(*source), image_of(*replica));
}

TEST_P(DeltaSnapshot, RotationBreaksChainAndRebasesOnFullFallback) {
  auto source = make_engine(kind());
  auto replica = make_engine(kind());
  populate(*source, 17);
  ASSERT_TRUE(apply_delta(*replica, delta_of(*source)));

  // Rotation re-keys the region and invalidates the seal chain; both
  // sides rotate (a replica under the old master could not decode the
  // new images).
  ASSERT_TRUE(source->rotate_master_key(0xD0D0'CAFE));
  ASSERT_TRUE(replica->rotate_master_key(0xD0D0'CAFE));

  ASSERT_EQ(source->write_block(9, pattern(0x99)), Status::kOk);
  const std::string fallback = delta_of(*source);
  // The chain is broken, so this "delta" is a full image re-basing the
  // replica...
  ASSERT_TRUE(apply_delta(*replica, fallback));
  EXPECT_EQ(replica->read_block(9).data, pattern(0x99));

  // ...and the chain is live again: the next delta is incremental and
  // applies cleanly.
  ASSERT_EQ(source->write_block(10, pattern(0xAA)), Status::kOk);
  ASSERT_TRUE(apply_delta(*replica, delta_of(*source)));
  EXPECT_EQ(replica->read_block(10).data, pattern(0xAA));
  EXPECT_EQ(image_of(*source), image_of(*replica));
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesBothModes, DeltaSnapshot,
    ::testing::Combine(::testing::Values(EngineKind::kPlain,
                                         EngineKind::kConcurrent,
                                         EngineKind::kSharded),
                       ::testing::Bool()),
    [](const auto& info) {
      const char* engine =
          std::get<0>(info.param) == EngineKind::kPlain ? "Plain"
          : std::get<0>(info.param) == EngineKind::kConcurrent
              ? "Concurrent"
              : "Sharded";
      return std::string(engine) +
             (std::get<1>(info.param) ? "Delta" : "FullOnly");
    });

// -------------------------------------------------- tamper exhaustive

/// Every single byte of a sealed INCREMENTAL delta image is either
/// structural (magic, geometry — checked against the engine) or covered
/// by the command-section MAC / base seal, so flipping ANY byte must
/// reject before a single byte is applied. (Full fallback images don't
/// have this property — a ciphertext flip there surfaces on read, see
/// test_snapshot.cc — which is why this drills the delta format only.)
class DeltaTamper : public ::testing::TestWithParam<EngineKind> {
 protected:
  // The sealed format under test only exists with the switch on.
  EnvOverride pin_{"SECMEM_DELTA_SNAPSHOT", "1"};
};

TEST_P(DeltaTamper, EveryByteFlipRejectsBeforeApply) {
  auto source = make_engine(GetParam());
  auto replica = make_engine(GetParam());
  populate(*source, 19);
  ASSERT_TRUE(apply_delta(*replica, delta_of(*source)));

  ASSERT_EQ(source->write_block(2, pattern(0x22)), Status::kOk);
  ASSERT_EQ(source->write_block(200, pattern(0xD2)), Status::kOk);
  const std::string delta = delta_of(*source);
  const std::string before = image_of(*replica);

  Xoshiro256 rng(0x7A3);
  // Dense sweep over the framing (container + image headers, seals,
  // MACs, length tables all sit early), random sample over the rest.
  std::vector<std::size_t> offsets;
  for (std::size_t i = 0; i < delta.size() && i < 160; ++i)
    offsets.push_back(i);
  for (int i = 0; i < 200; ++i) offsets.push_back(rng.next_below(delta.size()));

  for (const std::size_t offset : offsets) {
    std::string bytes = delta;
    const auto flip = static_cast<std::uint8_t>(1 + rng.next_below(255));
    bytes[offset] =
        static_cast<char>(static_cast<std::uint8_t>(bytes[offset]) ^ flip);
    EXPECT_FALSE(apply_delta(*replica, bytes))
        << "flip 0x" << std::hex << int{flip} << " at offset " << std::dec
        << offset << " accepted";
  }
  // Truncations reject too.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{40}, delta.size() / 2,
        delta.size() - 1}) {
    EXPECT_FALSE(apply_delta(*replica, delta.substr(0, keep)))
        << "kept " << keep;
  }

  // All those failures left the replica bit-identical...
  EXPECT_EQ(image_of(*replica), before);
  // ...so the clean delta still applies.
  ASSERT_TRUE(apply_delta(*replica, delta));
  EXPECT_EQ(replica->read_block(2).data, pattern(0x22));
  EXPECT_EQ(image_of(*source), image_of(*replica));
}

INSTANTIATE_TEST_SUITE_P(AllEngines, DeltaTamper,
                         ::testing::Values(EngineKind::kPlain,
                                           EngineKind::kConcurrent,
                                           EngineKind::kSharded),
                         [](const auto& info) {
                           return info.param == EngineKind::kPlain ? "Plain"
                                  : info.param == EngineKind::kConcurrent
                                      ? "Concurrent"
                                      : "Sharded";
                         });

// ------------------------------------------------------- kill switch

TEST(DeltaKillSwitch, DisabledEngineEmitsFullImagesAndRejectsDeltas) {
  // An enabled source produces a true incremental delta...
  EnvOverride pin_on("SECMEM_DELTA_SNAPSHOT", "1");
  SecureMemory source(small_config());
  populate(source, 23);
  const std::string seed_image = image_of(source);
  ASSERT_EQ(source.write_block(4, pattern(0x44)), Status::kOk);
  const std::string delta = delta_of(source);
  ASSERT_EQ(delta.compare(0, 8, "SECMDLT1"), 0);

  EnvOverride pin("SECMEM_DELTA_SNAPSHOT", "0");
  SecureMemory disabled(small_config());
  {
    std::istringstream in(seed_image);
    ASSERT_TRUE(disabled.restore(in));
  }
  // ...which a kill-switched engine refuses even though its state
  // matches the delta's base...
  EXPECT_FALSE(apply_delta(disabled, delta));
  EXPECT_EQ(disabled.read_block(1).data, pattern(1));

  // ...and its own save_delta degrades to a plain full image.
  const std::string full_only = delta_of(disabled);
  ASSERT_EQ(full_only.compare(0, 8, "SECMEM01"), 0);
  EXPECT_EQ(full_only, image_of(disabled));
}

// ------------------------------------------------- delta observability

TEST(DeltaDirtyPlane, TracksWritesAndShrinksImages) {
  EnvOverride pin("SECMEM_DELTA_SNAPSHOT", "1");
  SecureMemoryConfig config;
  config.size_bytes = 256 * 1024;
  SecureMemory engine(config);
  populate(engine, 29);

  // Aligning the chain clears the dirty plane.
  EXPECT_FALSE(engine.has_snapshot_base());
  const std::string full = image_of(engine);
  EXPECT_TRUE(engine.has_snapshot_base());
  EXPECT_EQ(engine.dirty_granules(), 0u);

  // A hot-set touching one granule dirties exactly one granule.
  const auto granule = engine.delta_granule_blocks();
  for (std::uint64_t b = 0; b < 4; ++b)
    ASSERT_EQ(engine.write_block(b, pattern(static_cast<std::uint8_t>(b))),
              Status::kOk);
  EXPECT_EQ(engine.dirty_granules(), 1u);
  ASSERT_EQ(engine.write_block(granule, pattern(0x77)), Status::kOk);
  EXPECT_EQ(engine.dirty_granules(), 2u);

  // The delta ships only those granules: a small fraction of the image.
  const std::uint64_t epoch_before = engine.snapshot_epoch();
  const std::string delta = delta_of(engine);
  EXPECT_LT(delta.size() * 4, full.size());
  EXPECT_EQ(engine.snapshot_epoch(), epoch_before + 1);
  EXPECT_EQ(engine.dirty_granules(), 0u);
}

TEST(DeltaSharded, AggregatesDirtyGranulesAndTimesRestores) {
  EnvOverride pin("SECMEM_DELTA_SNAPSHOT", "1");
  ShardedSecureMemory source(small_config(), 4);
  ShardedSecureMemory replica(small_config(), 4);
  populate(source, 31);
  ASSERT_TRUE(apply_delta(replica, delta_of(source)));
  EXPECT_EQ(source.dirty_granules(), 0u);

  ASSERT_EQ(source.write_block(0, pattern(0xE0)), Status::kOk);
  EXPECT_GE(source.dirty_granules(), 1u);

  const std::string delta = delta_of(source);
  SnapshotTiming timing;
  std::istringstream in(delta);
  ASSERT_TRUE(replica.restore_timed(in, timing));
  EXPECT_GT(timing.stage_s, 0.0);
  EXPECT_GT(timing.commit_s, 0.0);

  // restore_timed takes full containers too (the bench's other mode).
  const std::string full = image_of(source);
  SnapshotTiming full_timing;
  std::istringstream full_in(full);
  ASSERT_TRUE(replica.restore_timed(full_in, full_timing));
  EXPECT_GT(full_timing.stage_s, 0.0);
  EXPECT_GT(full_timing.commit_s, 0.0);
}

// --------------------------------------------- snapshot IO failures

/// A streambuf that accepts `capacity` bytes and then fails every
/// further write — a full disk / closed pipe stand-in.
class TruncatingSink : public std::streambuf {
 public:
  explicit TruncatingSink(std::size_t capacity) : capacity_(capacity) {}

 protected:
  int_type overflow(int_type ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof()))
      return traits_type::not_eof(ch);
    if (written_ >= capacity_) return traits_type::eof();
    ++written_;
    return ch;
  }

 private:
  std::size_t capacity_;
  std::size_t written_ = 0;
};

TEST(DeltaSaveIoFailure, FailedDeltaSaveDoesNotAdvanceChain) {
  EnvOverride pin("SECMEM_DELTA_SNAPSHOT", "1");
  SecureMemory source(small_config());
  SecureMemory replica(small_config());
  populate(source, 41);
  ASSERT_TRUE(apply_delta(replica, delta_of(source)));

  ASSERT_EQ(source.write_block(8, pattern(0x88)), Status::kOk);
  const std::uint64_t epoch = source.snapshot_epoch();
  const std::uint64_t dirty = source.dirty_granules();
  ASSERT_GE(dirty, 1u);

  // A lost delta must not advance the chain: otherwise every later
  // delta seals against a base no replica ever saw.
  TruncatingSink sink(32);  // dies mid-header
  std::ostream bad(&sink);
  EXPECT_EQ(source.save_delta(bad), Status::kSnapshotIoError);
  EXPECT_EQ(source.snapshot_epoch(), epoch);
  EXPECT_EQ(source.dirty_granules(), dirty);
  EXPECT_TRUE(source.has_snapshot_base());

  // The chain still points at the replica's state, so the retry lands.
  ASSERT_TRUE(apply_delta(replica, delta_of(source)));
  EXPECT_EQ(image_of(source), image_of(replica));
  EXPECT_EQ(replica.read_block(8).data, pattern(0x88));
}

TEST(DeltaSaveIoFailure, FailedFullSaveKeepsPreviousAlignmentPoint) {
  EnvOverride pin("SECMEM_DELTA_SNAPSHOT", "1");
  SecureMemory source(small_config());
  SecureMemory replica(small_config());
  populate(source, 43);
  ASSERT_TRUE(apply_delta(replica, delta_of(source)));
  ASSERT_EQ(source.write_block(12, pattern(0x21)), Status::kOk);

  TruncatingSink sink(1000);  // well short of a full image
  std::ostream bad(&sink);
  EXPECT_EQ(source.save(bad), Status::kSnapshotIoError);

  // The failed full save did NOT re-base the chain, so the next delta
  // still chains on the replica's state.
  ASSERT_TRUE(apply_delta(replica, delta_of(source)));
  EXPECT_EQ(image_of(source), image_of(replica));
  EXPECT_EQ(replica.read_block(12).data, pattern(0x21));
}

TEST(DeltaSaveIoFailure, ShardedContainerFailureBreaksChainsAndRecovers) {
  EnvOverride pin("SECMEM_DELTA_SNAPSHOT", "1");
  ShardedSecureMemory source(small_config(), 4);
  ShardedSecureMemory replica(small_config(), 4);
  populate(source, 47);
  ASSERT_TRUE(apply_delta(replica, delta_of(source)));

  ASSERT_EQ(source.write_block(5, pattern(0x51)), Status::kOk);
  // The shard engines align their chains into private buffers BEFORE
  // the container write can fail, so a container-level failure must
  // break the chains: those bases describe an image nothing ever saw.
  TruncatingSink sink(64);  // survives the header, dies in the payloads
  std::ostream bad(&sink);
  EXPECT_EQ(source.save_delta(bad), Status::kSnapshotIoError);

  // The retry falls back to full shard images and still lands the
  // replica on the source's exact state.
  ASSERT_TRUE(apply_delta(replica, delta_of(source)));
  EXPECT_EQ(image_of(source), image_of(replica));
  EXPECT_EQ(replica.read_block(5).data, pattern(0x51));
}

// --------------------------------------------- cross-instance diffing

TEST(DeltaEncode, DiffsTwoImagesIntoAnApplicableDelta) {
  EnvOverride pin("SECMEM_DELTA_SNAPSHOT", "1");
  SecureMemory engine(small_config());
  populate(engine, 37);
  const std::string img1 = image_of(engine);
  ASSERT_EQ(engine.write_block(6, pattern(0x66)), Status::kOk);
  ASSERT_EQ(engine.write_block(400, pattern(0x46)), Status::kOk);
  const std::string img2 = image_of(engine);

  const auto bytes_of = [](const std::string& s) {
    return std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  };
  std::stringstream delta;
  ASSERT_EQ(engine.encode_delta(bytes_of(img1), bytes_of(img2), delta),
            Status::kOk);
  EXPECT_LT(delta.str().size(), img2.size() / 2);

  // A replica sitting at img1 applies the diff and lands at img2 —
  // bit-identically.
  SecureMemory replica(small_config());
  {
    std::istringstream in(img1);
    ASSERT_TRUE(replica.restore(in));
  }
  ASSERT_TRUE(apply_delta(replica, delta.str()));
  EXPECT_EQ(image_of(replica), img2);
  EXPECT_EQ(replica.read_block(6).data, pattern(0x66));

  // Unusable inputs are refused without output.
  std::stringstream none;
  EXPECT_EQ(engine.encode_delta(bytes_of(img1).subspan(1), bytes_of(img2),
                                none),
            Status::kIntegrityViolation);
  EXPECT_TRUE(none.str().empty());
}

}  // namespace
}  // namespace secmem
