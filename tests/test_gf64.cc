#include "crypto/gf64.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace secmem {
namespace {

TEST(Gf64, ClmulBasic) {
  // (x+1)*(x+1) = x^2+1 in GF(2)[x].
  const auto p = clmul64(0b11, 0b11);
  EXPECT_EQ(p.lo, 0b101u);
  EXPECT_EQ(p.hi, 0u);
}

TEST(Gf64, ClmulHighBits) {
  const auto p = clmul64(std::uint64_t{1} << 63, 0b10);
  EXPECT_EQ(p.lo, 0u);
  EXPECT_EQ(p.hi, 1u);
}

TEST(Gf64, MulIdentity) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = rng.next();
    EXPECT_EQ(gf64_mul(a, 1), a);
    EXPECT_EQ(gf64_mul(1, a), a);
    EXPECT_EQ(gf64_mul(a, 0), 0u);
  }
}

TEST(Gf64, MulCommutative) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next(), b = rng.next();
    EXPECT_EQ(gf64_mul(a, b), gf64_mul(b, a));
  }
}

TEST(Gf64, MulAssociative) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = rng.next(), b = rng.next(), c = rng.next();
    EXPECT_EQ(gf64_mul(gf64_mul(a, b), c), gf64_mul(a, gf64_mul(b, c)));
  }
}

TEST(Gf64, MulDistributesOverXor) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = rng.next(), b = rng.next(), c = rng.next();
    EXPECT_EQ(gf64_mul(a, b ^ c), gf64_mul(a, b) ^ gf64_mul(a, c));
  }
}

TEST(Gf64, ReductionPolynomial) {
  // x^63 * x = x^64 ≡ x^4+x^3+x+1 = 0x1b.
  EXPECT_EQ(gf64_mul(std::uint64_t{1} << 63, 2), 0x1bu);
}

TEST(Gf64, PowMatchesRepeatedMul) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t base = rng.next();
    std::uint64_t acc = 1;
    for (unsigned e = 0; e <= 16; ++e) {
      EXPECT_EQ(gf64_pow(base, e), acc) << "e=" << e;
      acc = gf64_mul(acc, base);
    }
  }
}

TEST(Gf64, TableMulMatchesSchoolbook) {
  Xoshiro256 rng(7);
  for (int key = 0; key < 4; ++key) {
    const std::uint64_t h = rng.next();
    const Gf64MulTable table(h);
    EXPECT_EQ(table.mul(0), 0u);
    EXPECT_EQ(table.mul(1), h);
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t x = rng.next();
      EXPECT_EQ(table.mul(x), gf64_mul(x, h));
    }
  }
}

TEST(Gf64, FermatLikeOrder) {
  // The multiplicative group has order 2^64-1: a^(2^64-1) == 1 for a != 0.
  // (Also confirms the reduction polynomial is primitive enough for use.)
  Xoshiro256 rng(6);
  for (int i = 0; i < 5; ++i) {
    std::uint64_t a = rng.next();
    if (a == 0) a = 1;
    EXPECT_EQ(gf64_pow(a, ~std::uint64_t{0}), 1u);
  }
}

}  // namespace
}  // namespace secmem
