// secmem::delta codec unit tests: geometry math (tail granules), both
// encoders round-tripping through parse + in-place apply, the
// topological ordering of cross-COPYs (including the swap cycle the
// encoder must break by demoting a COPY to an ADD), and the parser's
// rejection contract — truncation, bad opcodes, bounds, double cover,
// incomplete cover. The engine-level sealing/authentication sits on top
// of this codec and is covered by test_delta_snapshot.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"
#include "engine/delta_image.h"

namespace secmem::delta {
namespace {

/// Owned backing storage for one image's four sections.
struct Image {
  std::vector<DataBlock> ciphertext;
  std::vector<EccLane> lanes;
  std::vector<std::uint64_t> macs;
  std::vector<std::uint8_t> counters;

  ConstSections view() const {
    return {ciphertext, lanes, macs, counters};
  }
  MutSections mut() {
    return {ciphertext, lanes, macs, counters};
  }
  bool operator==(const Image& o) const {
    return ciphertext == o.ciphertext && lanes == o.lanes &&
           macs == o.macs && counters == o.counters;
  }
};

Image make_image(const Geometry& geo, std::uint64_t seed) {
  Image img;
  img.ciphertext.resize(geo.num_blocks);
  img.lanes.resize(geo.num_blocks);
  if (geo.separate_macs) img.macs.resize(geo.num_blocks);
  img.counters.resize(geo.num_lines * 64);
  std::uint64_t state = seed;
  const auto next = [&state] { return splitmix64(state); };
  for (auto& b : img.ciphertext)
    for (auto& byte : b) byte = static_cast<std::uint8_t>(next());
  for (auto& l : img.lanes)
    for (auto& byte : l) byte = static_cast<std::uint8_t>(next());
  for (auto& m : img.macs) m = next();
  for (auto& c : img.counters) c = static_cast<std::uint8_t>(next());
  return img;
}

/// Copy granule `src` of `from` over granule `dst` of `to` (same shape).
void copy_granule(const Geometry& geo, const Image& from, std::uint64_t src,
                  Image& to, std::uint64_t dst) {
  const std::uint64_t nb = geo.blocks_in(src);
  ASSERT_EQ(nb, geo.blocks_in(dst));
  for (std::uint64_t b = 0; b < nb; ++b) {
    to.ciphertext[geo.block_start(dst) + b] =
        from.ciphertext[geo.block_start(src) + b];
    to.lanes[geo.block_start(dst) + b] =
        from.lanes[geo.block_start(src) + b];
    if (geo.separate_macs)
      to.macs[geo.block_start(dst) + b] =
          from.macs[geo.block_start(src) + b];
  }
  std::memcpy(to.counters.data() + geo.line_start(dst) * 64,
              from.counters.data() + geo.line_start(src) * 64,
              geo.lines_in(src) * 64);
}

/// Round-trip helper: encode target-vs-base, parse, apply over a copy of
/// base, expect the reconstruction to equal target bit for bit.
void expect_roundtrip(const Geometry& geo, const Image& base,
                      const Image& target,
                      const std::vector<std::uint8_t>& cmd) {
  std::vector<Command> cmds;
  ASSERT_TRUE(parse(geo, cmd, cmds));
  Image work = base;
  apply(geo, cmds, cmd, work.mut());
  EXPECT_TRUE(work == target);
}

/// 36 blocks of 4-block counter lines in 8-block granules: 5 granules,
/// the last a short tail (4 blocks, 1 line) — both section-slicing edge
/// cases in one shape.
Geometry tail_geometry(bool separate_macs) {
  Geometry geo;
  geo.num_blocks = 36;
  geo.blocks_per_line = 4;
  geo.num_lines = 9;
  geo.granule_blocks = 8;
  geo.separate_macs = separate_macs;
  return geo;
}

TEST(DeltaGeometry, TailGranuleMath) {
  const Geometry geo = tail_geometry(true);
  EXPECT_EQ(geo.num_granules(), 5u);
  EXPECT_EQ(geo.lines_per_granule(), 2u);
  EXPECT_EQ(geo.blocks_in(3), 8u);
  EXPECT_EQ(geo.blocks_in(4), 4u);  // tail
  EXPECT_EQ(geo.lines_in(3), 2u);
  EXPECT_EQ(geo.lines_in(4), 1u);  // tail
  EXPECT_EQ(geo.dirty_words(), 1u);
  // Full granule: 8 x (64 ciphertext + 8 lane + 8 mac) + 2 x 64 counters.
  EXPECT_EQ(geo.payload_bytes(0), 8 * (64 + 8 + 8) + 2 * 64u);
  EXPECT_EQ(geo.payload_bytes(4), 4 * (64 + 8 + 8) + 1 * 64u);
  Geometry no_macs = geo;
  no_macs.separate_macs = false;
  EXPECT_EQ(no_macs.payload_bytes(0), 8 * (64 + 8) + 2 * 64u);
}

TEST(DeltaDirtyEncode, CleanBitmapIsAllSelfCopy) {
  const Geometry geo = tail_geometry(false);
  const Image base = make_image(geo, 1);
  std::vector<std::uint64_t> dirty(geo.dirty_words(), 0);
  std::vector<std::uint8_t> cmd;
  EXPECT_EQ(encode_from_dirty(geo, base.view(), dirty, cmd), 0u);
  // One coalesced self-COPY covering everything: 25 wire bytes.
  EXPECT_EQ(cmd.size(), 25u);
  expect_roundtrip(geo, base, base, cmd);
}

TEST(DeltaDirtyEncode, DirtyGranulesShipAsAdds) {
  for (const bool macs : {false, true}) {
    const Geometry geo = tail_geometry(macs);
    const Image base = make_image(geo, 2);
    Image target = base;
    // Mutate granules 1 and 4 (the tail) — including a counter byte, so
    // every section's splice is exercised.
    target.ciphertext[geo.block_start(1)][0] ^= 0xA5;
    target.counters[geo.line_start(4) * 64] ^= 0x5A;
    if (macs) target.macs[geo.block_start(4)] ^= 1;
    std::vector<std::uint64_t> dirty(geo.dirty_words(), 0);
    dirty[0] = (1u << 1) | (1u << 4);
    std::vector<std::uint8_t> cmd;
    EXPECT_EQ(encode_from_dirty(geo, target.view(), dirty, cmd), 2u);
    expect_roundtrip(geo, base, target, cmd);
  }
}

TEST(DeltaDirtyEncode, AllDirtyShipsWholeImage) {
  const Geometry geo = tail_geometry(true);
  const Image base = make_image(geo, 3);
  const Image target = make_image(geo, 4);
  std::vector<std::uint64_t> dirty(geo.dirty_words(), ~0ull);
  std::vector<std::uint8_t> cmd;
  EXPECT_EQ(encode_from_dirty(geo, target.view(), dirty, cmd),
            geo.num_granules());
  expect_roundtrip(geo, base, target, cmd);
}

TEST(DeltaDiffEncode, IdenticalImagesNeedZeroAdds) {
  const Geometry geo = tail_geometry(true);
  const Image base = make_image(geo, 5);
  std::vector<std::uint8_t> cmd;
  EXPECT_EQ(encode_from_diff(geo, base.view(), base.view(), cmd), 0u);
  // Self-match preferred: one coalesced self-COPY, no payload.
  EXPECT_EQ(cmd.size(), 25u);
  expect_roundtrip(geo, base, base, cmd);
}

TEST(DeltaDiffEncode, FindsCrossCopiesAndAdds) {
  const Geometry geo = tail_geometry(false);
  const Image base = make_image(geo, 6);
  Image target = make_image(geo, 7);
  // Target granule 0 = base granule 2 (a cross-COPY the hash diff must
  // find); granule 1 = base granule 1 (self); granules 2..4 are new.
  copy_granule(geo, base, 2, target, 0);
  copy_granule(geo, base, 1, target, 1);
  std::vector<std::uint8_t> cmd;
  const std::uint64_t adds =
      encode_from_diff(geo, base.view(), target.view(), cmd);
  EXPECT_EQ(adds, 3u);
  expect_roundtrip(geo, base, target, cmd);
}

TEST(DeltaDiffEncode, SwapCycleBrokenByDemotion) {
  // Granules 0 and 1 swap: COPY 0<-1 and COPY 1<-0 form a cycle no
  // in-place order satisfies, so the encoder must demote one to an ADD.
  const Geometry geo = tail_geometry(true);
  const Image base = make_image(geo, 8);
  Image target = base;
  copy_granule(geo, base, 1, target, 0);
  copy_granule(geo, base, 0, target, 1);
  std::vector<std::uint8_t> cmd;
  const std::uint64_t adds =
      encode_from_diff(geo, base.view(), target.view(), cmd);
  EXPECT_EQ(adds, 1u) << "exactly one side of the swap ships as payload";
  expect_roundtrip(geo, base, target, cmd);
}

TEST(DeltaDiffEncode, ChainedMoveOrderedForInPlaceApply) {
  // Target: 0 <- base1, 1 <- base2, 2 <- new. An in-place apply must
  // read base granule 1 before overwriting it — acyclic, but order
  // matters; a stream-order apply only works if Kahn emitted it right.
  const Geometry geo = tail_geometry(false);
  const Image base = make_image(geo, 9);
  Image target = make_image(geo, 10);
  copy_granule(geo, base, 1, target, 0);
  copy_granule(geo, base, 2, target, 1);
  std::vector<std::uint8_t> cmd;
  encode_from_diff(geo, base.view(), target.view(), cmd);
  expect_roundtrip(geo, base, target, cmd);
}

TEST(DeltaDiffEncode, RandomizedRoundTrips) {
  Xoshiro256 rng(0xD17F);
  for (int trial = 0; trial < 20; ++trial) {
    Geometry geo;
    geo.num_blocks = 8 + rng.next_below(64);
    geo.blocks_per_line = 4;
    geo.num_lines = (geo.num_blocks + 3) / 4;
    geo.granule_blocks = 8;
    geo.separate_macs = (trial & 1) != 0;
    const Image base = make_image(geo, 100 + trial);
    Image target = make_image(geo, 200 + trial);
    // Random granule-level mixture of self, cross, and fresh content.
    for (std::uint64_t g = 0; g < geo.num_granules(); ++g) {
      const std::uint64_t pick = rng.next_below(3);
      const std::uint64_t src = rng.next_below(geo.num_granules());
      if (pick == 0 && geo.blocks_in(src) == geo.blocks_in(g))
        copy_granule(geo, base, src, target, g);
      else if (pick == 1)
        copy_granule(geo, base, g, target, g);
    }
    std::vector<std::uint8_t> cmd;
    encode_from_diff(geo, base.view(), target.view(), cmd);
    expect_roundtrip(geo, base, target, cmd);
  }
}

// ----------------------------------------------------- parser rejection

/// Hand-rolled wire helpers for malformed-stream tests.
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  std::uint8_t le[8];
  store_le64(le, v);
  out.insert(out.end(), le, le + 8);
}
void put_copy(std::vector<std::uint8_t>& out, std::uint64_t dst,
              std::uint64_t n, std::uint64_t src) {
  out.push_back(Command::kCopy);
  put_u64(out, dst);
  put_u64(out, n);
  put_u64(out, src);
}

TEST(DeltaParse, RejectsMalformedStreams) {
  const Geometry geo = tail_geometry(false);
  std::vector<Command> cmds;

  // Valid baseline: one self-COPY over all 5 granules.
  std::vector<std::uint8_t> ok;
  put_copy(ok, 0, geo.num_granules(), 0);
  ASSERT_TRUE(parse(geo, ok, cmds));

  // Every proper prefix is a truncation.
  for (std::size_t keep = 0; keep < ok.size(); ++keep) {
    EXPECT_FALSE(parse(
        geo, std::span<const std::uint8_t>(ok.data(), keep), cmds))
        << "kept " << keep;
  }

  std::vector<std::uint8_t> bad;
  // Unknown opcode.
  bad = ok;
  bad[0] = 7;
  EXPECT_FALSE(parse(geo, bad, cmds));
  // Zero-length command.
  bad.clear();
  put_copy(bad, 0, 0, 0);
  put_copy(bad, 0, geo.num_granules(), 0);
  EXPECT_FALSE(parse(geo, bad, cmds));
  // Destination out of bounds.
  bad.clear();
  put_copy(bad, 1, geo.num_granules(), 1);
  EXPECT_FALSE(parse(geo, bad, cmds));
  // Source out of bounds.
  bad.clear();
  put_copy(bad, 0, geo.num_granules(), 1);
  EXPECT_FALSE(parse(geo, bad, cmds));
  // Double cover.
  bad.clear();
  put_copy(bad, 0, geo.num_granules(), 0);
  put_copy(bad, 2, 1, 2);
  EXPECT_FALSE(parse(geo, bad, cmds));
  // Incomplete cover.
  bad.clear();
  put_copy(bad, 0, geo.num_granules() - 1, 0);
  EXPECT_FALSE(parse(geo, bad, cmds));
  // Cross-COPY pairing a full source with the short tail destination:
  // shapes differ, so the parser must refuse even though both indices
  // are in range.
  bad.clear();
  put_copy(bad, 0, geo.num_granules() - 1, 0);
  put_copy(bad, 4, 1, 0);
  EXPECT_FALSE(parse(geo, bad, cmds));
  // ADD whose payload is cut short.
  bad.clear();
  put_copy(bad, 0, geo.num_granules() - 1, 0);
  bad.push_back(Command::kAdd);
  put_u64(bad, 4);
  put_u64(bad, 1);
  bad.resize(bad.size() + geo.payload_bytes(4) - 1, 0xEE);
  EXPECT_FALSE(parse(geo, bad, cmds));
  // ...and whole again with the last payload byte present.
  bad.push_back(0xEE);
  EXPECT_TRUE(parse(geo, bad, cmds));
}

}  // namespace
}  // namespace secmem::delta
