#include "ecc/fault_model.h"

#include <gtest/gtest.h>

#include <set>

#include "common/bitops.h"

namespace secmem {
namespace {

class FaultPatternTest : public ::testing::TestWithParam<FaultPattern> {};

TEST_P(FaultPatternTest, BitsAreUniqueAndInRange) {
  FaultInjector injector(1234);
  for (int trial = 0; trial < 200; ++trial) {
    const Fault fault = injector.sample(GetParam());
    std::set<std::uint16_t> unique(fault.bits.begin(), fault.bits.end());
    EXPECT_EQ(unique.size(), fault.bits.size());
    for (const auto bit : fault.bits) EXPECT_LT(bit, kLineBits);
  }
}

TEST_P(FaultPatternTest, ApplyFlipsExactlyThoseBits) {
  FaultInjector injector(99);
  const Fault fault = injector.sample(GetParam());
  DataBlock data{};
  EccLane lane{};
  FaultInjector::apply(fault, data, lane);
  EXPECT_EQ(popcount_bytes(data) + popcount_bytes(lane), fault.bits.size());
  // Applying twice restores the original.
  FaultInjector::apply(fault, data, lane);
  EXPECT_EQ(popcount_bytes(data), 0u);
  EXPECT_EQ(popcount_bytes(lane), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, FaultPatternTest,
    ::testing::Values(FaultPattern::kSingleBitData,
                      FaultPattern::kDoubleBitSameWord,
                      FaultPattern::kDoubleBitCrossWord,
                      FaultPattern::kTripleBitData,
                      FaultPattern::kManyBitSingleWord,
                      FaultPattern::kSingleBitLane,
                      FaultPattern::kDoubleBitLane,
                      FaultPattern::kMixedDataAndLane));

TEST(FaultModel, SingleBitDataHasOneDataBit) {
  FaultInjector injector(5);
  const Fault fault = injector.sample(FaultPattern::kSingleBitData);
  ASSERT_EQ(fault.bits.size(), 1u);
  EXPECT_LT(fault.bits[0], kDataBits);
}

TEST(FaultModel, DoubleSameWordStaysInOneWord) {
  FaultInjector injector(6);
  for (int i = 0; i < 100; ++i) {
    const Fault fault = injector.sample(FaultPattern::kDoubleBitSameWord);
    ASSERT_EQ(fault.bits.size(), 2u);
    EXPECT_EQ(fault.bits[0] / 64, fault.bits[1] / 64);
  }
}

TEST(FaultModel, DoubleCrossWordSpansTwoWords) {
  FaultInjector injector(7);
  for (int i = 0; i < 100; ++i) {
    const Fault fault = injector.sample(FaultPattern::kDoubleBitCrossWord);
    ASSERT_EQ(fault.bits.size(), 2u);
    EXPECT_NE(fault.bits[0] / 64, fault.bits[1] / 64);
  }
}

TEST(FaultModel, LanePatternsStayInLane) {
  FaultInjector injector(8);
  for (int i = 0; i < 100; ++i) {
    for (const auto bit :
         injector.sample(FaultPattern::kDoubleBitLane).bits) {
      EXPECT_GE(bit, kDataBits);
      EXPECT_LT(bit, kLineBits);
    }
  }
}

TEST(FaultModel, MixedPatternHasOneOfEach) {
  FaultInjector injector(9);
  const Fault fault = injector.sample(FaultPattern::kMixedDataAndLane);
  ASSERT_EQ(fault.bits.size(), 2u);
  EXPECT_LT(fault.bits[0], kDataBits);
  EXPECT_GE(fault.bits[1], kDataBits);
}

TEST(FaultModel, ManyBitSingleWordBounds) {
  FaultInjector injector(10);
  for (int i = 0; i < 100; ++i) {
    const Fault fault = injector.sample(FaultPattern::kManyBitSingleWord);
    EXPECT_GE(fault.bits.size(), 3u);
    EXPECT_LE(fault.bits.size(), 8u);
    const auto word = fault.bits[0] / 64;
    for (const auto bit : fault.bits) EXPECT_EQ(bit / 64, word);
  }
}

TEST(FaultModel, DeterministicGivenSeed) {
  FaultInjector a(42), b(42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.sample(FaultPattern::kTripleBitData).bits,
              b.sample(FaultPattern::kTripleBitData).bits);
  }
}

TEST(FaultModel, PatternNamesNonEmpty) {
  for (int p = 0; p <= static_cast<int>(FaultPattern::kMixedDataAndLane);
       ++p) {
    EXPECT_STRNE(fault_pattern_name(static_cast<FaultPattern>(p)), "?");
  }
}

}  // namespace
}  // namespace secmem
