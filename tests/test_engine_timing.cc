// Finer-grained timing properties of the encryption engine: latency
// composition, decode-latency accounting, and overflow-buffer behaviour
// under the full engine.
#include <gtest/gtest.h>

#include "engine/encryption_engine.h"

namespace secmem {
namespace {

struct Rig {
  StatRegistry stats;
  DramSystem dram{DramConfig{}, stats};
  std::unique_ptr<CounterScheme> scheme;
  std::unique_ptr<SecureRegionLayout> layout;
  std::unique_ptr<EncryptionEngine> engine;

  explicit Rig(CounterSchemeKind kind,
               MacPlacement placement = MacPlacement::kEccLane,
               EngineConfig config = {}) {
    scheme = make_counter_scheme(kind, (64ULL << 20) / 64);
    LayoutParams params;
    params.data_bytes = 64ULL << 20;
    params.blocks_per_counter_line = scheme->blocks_per_storage_line();
    params.separate_macs = placement == MacPlacement::kSeparate;
    layout = std::make_unique<SecureRegionLayout>(params);
    config.mac_placement = placement;
    engine = std::make_unique<EncryptionEngine>(config, *scheme, *layout,
                                                dram, stats);
  }
};

TEST(EngineTiming, WarmReadPaysAesPlusDecodePlusMac) {
  // Warm everything, then measure a fully-warm verified read: its latency
  // over raw DRAM must be exactly the crypto pipeline costs.
  EngineConfig config;
  Rig rig(CounterSchemeKind::kDelta, MacPlacement::kEccLane, config);
  rig.engine->read_block(0, 0x4000);
  const std::uint64_t start = 1000000;  // idle again; banks long settled

  StatRegistry raw_stats;
  DramSystem raw(DramConfig{}, raw_stats);
  raw.access(0, 0x4000, false);
  const std::uint64_t raw_latency =
      raw.access(start, 0x4000, false) - start;

  const std::uint64_t verified_latency =
      rig.engine->read_block(start, 0x4000) - start;
  // Counter hit: meta_hit(2) + decode(2) + AES(40) overlap the data fetch
  // partially; the verified completion is
  //   max(data, ctr_path + AES) + xor + mac.
  const std::uint64_t ctr_path =
      config.meta_hit_latency + 2 /*decode*/ + config.aes_latency;
  const std::uint64_t expected =
      std::max<std::uint64_t>(raw_latency, ctr_path) + config.xor_latency +
      config.mac_latency;
  EXPECT_EQ(verified_latency, expected);
}

TEST(EngineTiming, DecodeLatencyDiffersBetweenSchemes) {
  // Same warm state: the delta engine charges +2 decode cycles that the
  // monolithic engine does not.
  EngineConfig config;
  config.aes_latency = 400;  // exaggerate so the counter path dominates
  Rig mono(CounterSchemeKind::kMonolithic56, MacPlacement::kEccLane, config);
  Rig delta(CounterSchemeKind::kDelta, MacPlacement::kEccLane, config);
  mono.engine->read_block(0, 0x4000);
  delta.engine->read_block(0, 0x4000);
  const std::uint64_t start = 1000000;
  const std::uint64_t mono_done = mono.engine->read_block(start, 0x4000);
  const std::uint64_t delta_done = delta.engine->read_block(start, 0x4000);
  EXPECT_EQ(delta_done, mono_done + 2);
}

TEST(EngineTiming, KeystreamOverlapsDataFetch) {
  // With a warm counter, shrinking AES latency below the DRAM latency
  // must not change the verified read time (it's hidden); growing it
  // beyond must.
  auto verified_latency = [](unsigned aes_cycles) {
    EngineConfig config;
    config.aes_latency = aes_cycles;
    Rig rig(CounterSchemeKind::kMonolithic56, MacPlacement::kEccLane,
            config);
    rig.engine->read_block(0, 0x4000);
    const std::uint64_t start = 1000000;
    return rig.engine->read_block(start, 0x4000) - start;
  };
  EXPECT_EQ(verified_latency(10), verified_latency(30))
      << "AES below DRAM latency should be fully hidden";
  EXPECT_GT(verified_latency(5000), verified_latency(30));
}

TEST(EngineTiming, SeparateMacCachedAfterFirstTouch) {
  Rig rig(CounterSchemeKind::kMonolithic56, MacPlacement::kSeparate);
  rig.engine->read_block(0, 0x4000);
  EXPECT_EQ(rig.stats.counter_value("engine.mac_misses"), 1u);
  rig.engine->read_block(500000, 0x4000);
  EXPECT_EQ(rig.stats.counter_value("engine.mac_hits"), 1u);
  // Neighbouring block shares the MAC line (8 MACs per 64B line).
  rig.engine->read_block(1000000, 0x4040);
  EXPECT_EQ(rig.stats.counter_value("engine.mac_hits"), 2u);
}

TEST(EngineTiming, SplitOverflowStormHitsBufferBackpressure) {
  EngineConfig config;
  Rig rig(CounterSchemeKind::kSplit, MacPlacement::kEccLane, config);
  // Overflow many distinct groups in a tight window; background drains
  // keep the buffer shallow, so no stall is expected...
  std::uint64_t now = 0;
  for (unsigned group = 0; group < 4; ++group) {
    for (int i = 0; i < 128; ++i)
      rig.engine->write_block(now += 10, group * 4096ULL);
  }
  EXPECT_EQ(rig.stats.counter_value("engine.ctr_event.reencrypt"), 4u);
  EXPECT_EQ(rig.stats.counter_value("reenc.buffer_full_stalls"), 0u);
  EXPECT_EQ(rig.engine->reencryption().blocks_reencrypted(), 4 * 64u);

  // ...but with background draining off, the buffer fills and stalls.
  EngineConfig foreground;
  foreground.background_reencryption = false;
  Rig rig2(CounterSchemeKind::kSplit, MacPlacement::kEccLane, foreground);
  now = 0;
  for (unsigned group = 0; group < 12; ++group) {
    for (int i = 0; i < 128; ++i)
      rig2.engine->write_block(now += 10, group * 4096ULL);
  }
  EXPECT_GT(rig2.stats.counter_value("reenc.buffer_full_stalls"), 0u);
}

TEST(EngineTiming, MetadataWritebackPropagatesToParent) {
  // Dirty counter lines, force their eviction, and check the lazy parent
  // update left a trail (parent fetches or metadata writebacks).
  Rig rig(CounterSchemeKind::kDelta, MacPlacement::kEccLane);
  std::uint64_t now = 0;
  // Dirty far more counter lines than the 32KB metadata cache holds.
  for (std::uint64_t group = 0; group < 4000; ++group)
    rig.engine->write_block(now += 50, group * 4096ULL);
  EXPECT_GT(rig.stats.counter_value("engine.metadata_writebacks"), 0u);
  EXPECT_GT(rig.stats.counter_value("engine.parent_fetches"), 0u);
}

}  // namespace
}  // namespace secmem
