// Timing-path properties of the encryption engine: where the MAC lives
// and how deep the tree is must show up in read latency exactly the way
// the paper argues (§3, §5.2).
#include "engine/encryption_engine.h"

#include <gtest/gtest.h>

#include "counters/delta_counter.h"
#include "counters/monolithic.h"

namespace secmem {
namespace {

struct Rig {
  StatRegistry stats;
  DramSystem dram{DramConfig{}, stats};
  std::unique_ptr<CounterScheme> scheme;
  std::unique_ptr<SecureRegionLayout> layout;
  std::unique_ptr<EncryptionEngine> engine;

  Rig(CounterSchemeKind kind, MacPlacement placement,
      std::uint64_t protected_bytes = 64ULL << 20) {
    scheme = make_counter_scheme(kind, protected_bytes / 64);
    LayoutParams params;
    params.data_bytes = protected_bytes;
    params.blocks_per_counter_line = scheme->blocks_per_storage_line();
    params.separate_macs = placement == MacPlacement::kSeparate;
    params.counter_bits_per_block = scheme->bits_per_block();
    layout = std::make_unique<SecureRegionLayout>(params);
    EngineConfig config;
    config.mac_placement = placement;
    engine = std::make_unique<EncryptionEngine>(config, *scheme, *layout,
                                                dram, stats);
  }
};

TEST(EncryptionEngine, ColdReadSlowerThanRawDram) {
  Rig rig(CounterSchemeKind::kMonolithic56, MacPlacement::kEccLane);
  StatRegistry raw_stats;
  DramSystem raw(DramConfig{}, raw_stats);
  const std::uint64_t raw_done = raw.access(0, 0x4000, false);
  const std::uint64_t verified_done = rig.engine->read_block(0, 0x4000);
  EXPECT_GT(verified_done, raw_done)
      << "verification added no cost on a cold metadata path";
}

TEST(EncryptionEngine, WarmCounterReadMuchFaster) {
  Rig rig(CounterSchemeKind::kMonolithic56, MacPlacement::kEccLane);
  const std::uint64_t cold = rig.engine->read_block(0, 0x4000);
  const std::uint64_t start = cold + 10000;
  const std::uint64_t warm = rig.engine->read_block(start, 0x4000) - start;
  EXPECT_LT(warm, cold);
}

TEST(EncryptionEngine, SeparateMacCostsExtraDramTransaction) {
  // The §3 claim: MAC-in-ECC saves one DRAM transaction per verified miss.
  Rig ecc(CounterSchemeKind::kMonolithic56, MacPlacement::kEccLane);
  Rig sep(CounterSchemeKind::kMonolithic56, MacPlacement::kSeparate);
  ecc.engine->read_block(0, 0x4000);
  sep.engine->read_block(0, 0x4000);
  EXPECT_EQ(sep.stats.counter_value("dram.reads"),
            ecc.stats.counter_value("dram.reads") + 1);
}

TEST(EncryptionEngine, SeparateMacColdReadSlower) {
  Rig ecc(CounterSchemeKind::kMonolithic56, MacPlacement::kEccLane);
  Rig sep(CounterSchemeKind::kMonolithic56, MacPlacement::kSeparate);
  // Same address, same cold state: the separate-MAC fetch can only hurt.
  EXPECT_LE(ecc.engine->read_block(0, 0x4000),
            sep.engine->read_block(0, 0x4000));
}

TEST(EncryptionEngine, DeltaSchemeWalksShorterTree) {
  Rig mono(CounterSchemeKind::kMonolithic56, MacPlacement::kEccLane,
           512ULL << 20);
  Rig delta(CounterSchemeKind::kDelta, MacPlacement::kEccLane,
            512ULL << 20);
  ASSERT_EQ(mono.layout->tree().offchip_levels(), 5u);
  ASSERT_EQ(delta.layout->tree().offchip_levels(), 4u);
  mono.engine->read_block(0, 0x4000);
  delta.engine->read_block(0, 0x4000);
  // Cold verified read: delta needs one fewer tree-node fetch.
  EXPECT_EQ(delta.stats.counter_value("dram.reads") + 1,
            mono.stats.counter_value("dram.reads"));
}

TEST(EncryptionEngine, TreeWalkStopsAtCachedAncestor) {
  Rig rig(CounterSchemeKind::kDelta, MacPlacement::kEccLane);
  rig.engine->read_block(0, 0x0);  // warms counter line + ancestors
  const std::uint64_t reads_before = rig.stats.counter_value("dram.reads");
  // A block in a *different* counter line but sharing tree ancestors:
  // blocks 0..4095 share the level-1 node (64 lines x 64 blocks... the
  // next counter line over shares the same parent).
  rig.engine->read_block(100000, 64 * 64 * 64);  // line 64 -> parent 8
  const std::uint64_t reads_after = rig.stats.counter_value("dram.reads");
  // Without caching this would re-fetch the whole path; with the shared
  // upper levels resident it fetches data + line + at most a level or two.
  EXPECT_LE(reads_after - reads_before, 4u);
}

TEST(EncryptionEngine, WriteTriggersCounterEventAccounting) {
  Rig rig(CounterSchemeKind::kDelta, MacPlacement::kEccLane);
  rig.engine->write_block(0, 0x4000);
  EXPECT_EQ(rig.stats.counter_value("engine.writes"), 1u);
  EXPECT_EQ(rig.stats.counter_value("engine.ctr_event.increment"), 1u);
  EXPECT_EQ(rig.scheme->read_counter(0x4000 / 64), 1u);
}

TEST(EncryptionEngine, OverflowDrivesReencryptionTraffic) {
  Rig rig(CounterSchemeKind::kSplit, MacPlacement::kEccLane);
  std::uint64_t now = 0;
  for (int i = 0; i < 128; ++i) {
    rig.engine->write_block(now, 0x0);
    now += 1000;
  }
  EXPECT_EQ(rig.stats.counter_value("engine.ctr_event.reencrypt"), 1u);
  EXPECT_EQ(rig.engine->reencryption().blocks_reencrypted(), 64u);
}

TEST(EncryptionEngine, WritesDirtyMetadataEventuallyWritesBack) {
  Rig rig(CounterSchemeKind::kDelta, MacPlacement::kEccLane);
  // Touch enough distinct counter lines to overflow the 32KB metadata
  // cache (512 lines) and force dirty evictions.
  std::uint64_t now = 0;
  for (std::uint64_t group = 0; group < 2000; ++group) {
    rig.engine->write_block(now, group * 64 * 64);
    now += 500;
  }
  EXPECT_GT(rig.stats.counter_value("engine.metadata_writebacks"), 0u);
}

TEST(EncryptionEngine, FlushMetadataDrainsDirtyLines) {
  Rig rig(CounterSchemeKind::kDelta, MacPlacement::kEccLane);
  rig.engine->write_block(0, 0x0);
  const std::uint64_t wb_before =
      rig.stats.counter_value("engine.metadata_writebacks");
  rig.engine->flush_metadata(10000);
  EXPECT_GT(rig.stats.counter_value("engine.metadata_writebacks"),
            wb_before);
}

}  // namespace
}  // namespace secmem
