#include "cache/cache.h"

#include <gtest/gtest.h>

namespace secmem {
namespace {

CacheConfig small_cache() { return CacheConfig{1024, 2, 64}; }  // 8 sets

TEST(Cache, MissThenHit) {
  SetAssocCache cache(small_cache());
  EXPECT_FALSE(cache.lookup(0x1000));
  cache.fill(0x1000);
  EXPECT_TRUE(cache.lookup(0x1000));
}

TEST(Cache, LineGranularity) {
  SetAssocCache cache(small_cache());
  cache.fill(0x1000);
  EXPECT_TRUE(cache.lookup(0x103F));   // same 64B line
  EXPECT_FALSE(cache.lookup(0x1040));  // next line
}

TEST(Cache, LruEviction) {
  SetAssocCache cache(small_cache());
  // Three lines mapping to the same set (set stride = 8 sets * 64B = 512B).
  const std::uint64_t a = 0x0000, b = 0x0200, c = 0x0400;
  cache.fill(a);
  cache.fill(b);
  cache.lookup(a);  // a is now MRU
  const auto victim = cache.fill(c);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line_addr, b);  // LRU way evicted
  EXPECT_TRUE(cache.contains(a));
  EXPECT_FALSE(cache.contains(b));
}

TEST(Cache, DirtyEvictionReported) {
  SetAssocCache cache(small_cache());
  cache.fill(0x0000, /*dirty=*/true);
  cache.fill(0x0200);
  const auto victim = cache.fill(0x0400);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line_addr, 0x0000u);
  EXPECT_TRUE(victim->dirty);
}

TEST(Cache, MarkDirtyRequiresPresence) {
  SetAssocCache cache(small_cache());
  EXPECT_FALSE(cache.mark_dirty(0x1000));
  cache.fill(0x1000);
  EXPECT_TRUE(cache.mark_dirty(0x1000));
  const auto removed = cache.invalidate(0x1000);
  ASSERT_TRUE(removed.has_value());
  EXPECT_TRUE(removed->dirty);
}

TEST(Cache, InvalidateAbsentLine) {
  SetAssocCache cache(small_cache());
  EXPECT_FALSE(cache.invalidate(0x5000).has_value());
}

TEST(Cache, ContainsDoesNotTouchLru) {
  SetAssocCache cache(small_cache());
  cache.fill(0x0000);
  cache.fill(0x0200);
  // contains() must not promote a; otherwise b would be evicted next.
  cache.contains(0x0000);
  const auto victim = cache.fill(0x0400);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line_addr, 0x0000u);
}

TEST(Cache, FlushReturnsOnlyDirtyAndEmptiesCache) {
  SetAssocCache cache(small_cache());
  cache.fill(0x0000, true);   // set 0
  cache.fill(0x0040, false);  // set 1
  cache.fill(0x0080, true);   // set 2
  const auto dirty = cache.flush();
  EXPECT_EQ(dirty.size(), 2u);
  EXPECT_EQ(cache.occupied_lines(), 0u);
}

TEST(Cache, CapacityRespected) {
  SetAssocCache cache(small_cache());  // 16 lines total
  for (std::uint64_t i = 0; i < 100; ++i) cache.fill(i * 64);
  EXPECT_EQ(cache.occupied_lines(), 16u);
}

TEST(Cache, GeometryAccessors) {
  SetAssocCache cache(CacheConfig{32 * 1024, 8, 64});
  EXPECT_EQ(cache.num_sets(), 64u);
  EXPECT_EQ(cache.ways(), 8u);
  EXPECT_EQ(cache.line_bytes(), 64u);
  EXPECT_EQ(cache.line_address(0x1234), 0x1200u);
}

TEST(Cache, DistinctTagsSameSet) {
  // Two addresses with the same set index but different tags must not
  // alias (regression guard for tag extraction).
  SetAssocCache cache(small_cache());
  cache.fill(0x0000);
  EXPECT_FALSE(cache.lookup(0x0200));
}

}  // namespace
}  // namespace secmem
