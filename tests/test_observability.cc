// Engine-layer tests for the unified observability API: EngineStats vs
// published registry parity, Status-reporting byte I/O, the
// SecureMemoryLike factory, sharded-vs-single counter parity, and trace
// rings (including shard tagging and fault outcomes).
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/concurrent.h"
#include "engine/secure_memory.h"
#include "engine/secure_memory_like.h"
#include "engine/sharded_memory.h"
#include "json_lite.h"

namespace {

using namespace secmem;

SecureMemoryConfig small_config() {
  SecureMemoryConfig config;
  config.size_bytes = 1 * 1024 * 1024;
  return config;
}

DataBlock pattern_block(std::uint8_t seed) {
  DataBlock block{};
  for (std::size_t i = 0; i < block.size(); ++i)
    block[i] = static_cast<std::uint8_t>(seed + i);
  return block;
}

/// Drive the same deterministic workload through any engine.
void run_workload(SecureMemoryLike& memory, std::uint64_t ops) {
  Xoshiro256 rng(1234);
  const std::uint64_t blocks = memory.num_blocks();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::uint64_t block = rng.next_below(blocks);
    if (i % 3 == 0) {
      EXPECT_EQ(memory.write_block(block, pattern_block(static_cast<std::uint8_t>(i))), Status::kOk);
    } else {
      ASSERT_TRUE(status_ok(memory.read_block(block).status));
    }
  }
  std::vector<std::uint8_t> buf(200);
  ASSERT_EQ(Status::kOk, memory.write_bytes(100, buf));
  ASSERT_EQ(Status::kOk, memory.read_bytes(100, buf));
}

// ----------------------------------------------------- factory / kinds

TEST(EngineFactoryTest, ParsesEveryKindAndAliases) {
  EngineKind kind;
  ASSERT_TRUE(parse_engine_kind("plain", kind));
  EXPECT_EQ(EngineKind::kPlain, kind);
  ASSERT_TRUE(parse_engine_kind("concurrent", kind));
  EXPECT_EQ(EngineKind::kConcurrent, kind);
  ASSERT_TRUE(parse_engine_kind("sharded", kind));
  EXPECT_EQ(EngineKind::kSharded, kind);
  EXPECT_FALSE(parse_engine_kind("bogus", kind));
}

TEST(EngineFactoryTest, MakesWorkingEnginesOfEachKind) {
  for (const EngineKind kind :
       {EngineKind::kPlain, EngineKind::kConcurrent, EngineKind::kSharded}) {
    const auto memory = make_engine(small_config(), kind, 4);
    ASSERT_NE(nullptr, memory) << engine_kind_name(kind);
    EXPECT_EQ(memory->write_block(7, pattern_block(0xAB)), Status::kOk);
    const ReadResult result = memory->read_block(7);
    EXPECT_EQ(Status::kOk, result.status) << engine_kind_name(kind);
    EXPECT_EQ(pattern_block(0xAB), result.data) << engine_kind_name(kind);
  }
}

// ------------------------------------------- stats vs published metrics

TEST(ObservabilityTest, PublishedCountersMatchStatsForEveryEngine) {
  for (const EngineKind kind :
       {EngineKind::kPlain, EngineKind::kConcurrent, EngineKind::kSharded}) {
    const auto memory = make_engine(small_config(), kind, 4);
    run_workload(*memory, 300);

    const EngineStats stats = memory->stats();
    StatRegistry registry;
    memory->publish_metrics(registry, "engine");

    EXPECT_EQ(stats.reads, registry.counter_value("engine.reads"))
        << engine_kind_name(kind);
    EXPECT_EQ(stats.writes, registry.counter_value("engine.writes"))
        << engine_kind_name(kind);
    EXPECT_EQ(stats.group_reencryptions,
              registry.counter_value("engine.group_reencryptions"))
        << engine_kind_name(kind);
    EXPECT_GT(stats.reads, 0u);
    EXPECT_GT(stats.writes, 0u);

    memory->reset_stats();
    EXPECT_EQ(0u, memory->stats().reads) << engine_kind_name(kind);
    EXPECT_EQ(0u, memory->stats().writes) << engine_kind_name(kind);
  }
}

TEST(ObservabilityTest, ShardedPublishesPerShardBreakdown) {
  ShardedSecureMemory memory(small_config(), 4);
  run_workload(memory, 400);

  StatRegistry registry;
  memory.publish_metrics(registry, "engine");

  std::uint64_t shard_reads = 0;
  for (unsigned s = 0; s < 4; ++s)
    shard_reads += registry.counter_value(
        metric_path({"engine", "shard" + std::to_string(s), "reads"}));
  EXPECT_EQ(registry.counter_value("engine.reads"), shard_reads);
  EXPECT_GT(shard_reads, 0u);
}

// The acceptance parity check: the sharded engine must account the same
// workload identically to the plain engine (same blocks, same counters).
TEST(ShardedParityTest, CountersMatchPlainEngineForIdenticalWorkload) {
  SecureMemory plain(small_config());
  ShardedSecureMemory sharded(small_config(), 8);
  run_workload(plain, 500);
  run_workload(sharded, 500);

  const EngineStats a = plain.stats();
  const EngineStats b = sharded.stats();
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.integrity_violations, b.integrity_violations);
  EXPECT_EQ(a.counter_tampers, b.counter_tampers);
  EXPECT_EQ(0u, a.integrity_violations);

  // The registry exports agree too (block-op totals are workload-defined;
  // re-encryptions depend on per-shard counter geometry and may differ).
  StatRegistry ra, rb;
  plain.publish_metrics(ra, "engine");
  sharded.publish_metrics(rb, "engine");
  EXPECT_EQ(ra.counter_value("engine.reads"),
            rb.counter_value("engine.reads"));
  EXPECT_EQ(ra.counter_value("engine.byte_reads"),
            rb.counter_value("engine.byte_reads"));
  EXPECT_EQ(ra.counter_value("engine.byte_writes"),
            rb.counter_value("engine.byte_writes"));
}

// ------------------------------------------------------- status byte IO

TEST(StatusByteApiTest, OkOnCleanRoundTrip) {
  SecureMemory memory(small_config());
  std::vector<std::uint8_t> data(300);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(Status::kOk, memory.write_bytes(1000, data));
  std::vector<std::uint8_t> readback(data.size());
  EXPECT_EQ(Status::kOk, memory.read_bytes(1000, readback));
  EXPECT_EQ(data, readback);
}

TEST(StatusByteApiTest, FoldsWorstBlockStatusAcrossTheRange) {
  SecureMemory memory(small_config());
  std::vector<std::uint8_t> data(64 * 3);
  ASSERT_EQ(Status::kOk, memory.write_bytes(0, data));
  // One corrected bit inside the middle block of the range: the fold
  // reports the correction, and data is still served.
  memory.untrusted().flip_ciphertext_bit(1, 17);
  std::vector<std::uint8_t> readback(data.size());
  const Status status = memory.read_bytes(0, readback);
  EXPECT_EQ(Status::kCorrectedData, status);
  EXPECT_TRUE(status_ok(status));
  EXPECT_EQ(data, readback);
}

TEST(StatusByteApiTest, TimeOpsPopulatesLatencyHistograms) {
  SecureMemoryConfig config = small_config();
  config.time_ops = true;
  SecureMemory memory(config);
  EXPECT_EQ(memory.write_block(0, pattern_block(1)), Status::kOk);
  (void)memory.read_block(0);

  StatRegistry registry;
  memory.publish_metrics(registry, "engine");
  std::ostringstream os;
  registry.write_json(os);
  const json_lite::Value root = json_lite::parse(os.str());
  EXPECT_GE(root.at("histograms")
                .at("engine.read_latency_ns")
                .at("total")
                .number(),
            1.0);
  EXPECT_GE(root.at("histograms")
                .at("engine.write_latency_ns")
                .at("total")
                .number(),
            1.0);
}

// ------------------------------------------------------------- tracing

TEST(TraceTest, PlainEngineRecordsOutcomesIncludingCorrections) {
  SecureMemory memory(small_config());
  TraceRing ring(128);
  memory.attach_trace(&ring);

  EXPECT_EQ(memory.write_block(3, pattern_block(9)), Status::kOk);
  memory.untrusted().flip_ciphertext_bit(3, 100);
  const ReadResult result = memory.read_block(3);
  ASSERT_EQ(Status::kCorrectedData, result.status);

  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(2u, events.size());
  EXPECT_EQ(TraceEvent::Kind::kWrite, events[0].kind);
  EXPECT_EQ(Status::kOk, events[0].outcome);
  EXPECT_EQ(TraceEvent::Kind::kRead, events[1].kind);
  EXPECT_EQ(Status::kCorrectedData, events[1].outcome);
  EXPECT_EQ(3u, events[1].block);

  // Detaching stops recording.
  memory.attach_trace(nullptr);
  (void)memory.read_block(3);
  EXPECT_EQ(2u, ring.recorded());
}

TEST(TraceTest, ShardedEngineTagsEventsWithOwningShard) {
  ShardedSecureMemory memory(small_config(), 4);
  TraceRing ring(256);
  memory.attach_trace(&ring);

  // One write per routing granule so all four shards see traffic.
  for (std::uint64_t g = 0; g < 16; ++g)
    EXPECT_EQ(memory.write_block(g * memory.granule_blocks(),
                                 pattern_block(static_cast<std::uint8_t>(g))),
              Status::kOk);
  std::vector<std::uint8_t> buf(100);
  ASSERT_EQ(Status::kOk, memory.read_bytes(0, buf));

  bool saw_nonzero_shard = false;
  bool saw_byte_read = false;
  for (const TraceEvent& event : ring.snapshot()) {
    EXPECT_LT(event.shard, 4u);
    if (event.shard != 0) saw_nonzero_shard = true;
    if (event.kind == TraceEvent::Kind::kByteRead) saw_byte_read = true;
  }
  EXPECT_TRUE(saw_nonzero_shard);
  EXPECT_TRUE(saw_byte_read);
}

// MT observability smoke under the sanitizer presets (name matches the
// TSan filter): concurrent readers with tracing + a stats poller.
TEST(ShardedObservabilityConcurrentTest, StatsAndTraceUnderParallelLoad) {
  ShardedSecureMemory memory(small_config(), 8);
  // Spread the hot set across shards (granule-interleaved routing).
  std::vector<std::uint64_t> hot(64);
  for (std::uint64_t i = 0; i < hot.size(); ++i) {
    hot[i] = (i * memory.granule_blocks()) % memory.num_blocks();
    EXPECT_EQ(memory.write_block(hot[i], pattern_block(static_cast<std::uint8_t>(i))), Status::kOk);
  }
  TraceRing ring(512);
  memory.attach_trace(&ring);

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const EngineStats stats = memory.stats();
      EXPECT_EQ(0u, stats.integrity_violations);
    }
  });

  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kReads = 2000;
  std::vector<std::thread> workers;
  std::atomic<int> bad{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&memory, &bad, &hot, t] {
      Xoshiro256 rng(77 + t);
      for (std::uint64_t i = 0; i < kReads; ++i) {
        const auto result = memory.read_block(hot[rng.next_below(hot.size())]);
        if (!status_ok(result.status)) ++bad;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  poller.join();

  EXPECT_EQ(0, bad.load());
  const EngineStats stats = memory.stats();
  EXPECT_GE(stats.reads, kThreads * kReads);
  EXPECT_GE(ring.recorded(), kThreads * kReads);

  StatRegistry registry;
  memory.publish_metrics(registry, "engine");
  EXPECT_EQ(stats.reads, registry.counter_value("engine.reads"));
}

}  // namespace
