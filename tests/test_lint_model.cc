// Direct unit tests of the secmem-lint lexer and function model — the
// substrate every dataflow rule (verify-before-apply, status-discard,
// lock-discipline, secret-branch, knob-registry) is written against.
// These link secmem_lint_core and feed it source snippets as strings;
// the end-to-end fixture runs live in test_lint.cc.
#include <gtest/gtest.h>

#include <string>

#include "func_model.h"
#include "lexer.h"

namespace {

using secmem_lint::AssignSite;
using secmem_lint::build_model;
using secmem_lint::CallSite;
using secmem_lint::extract_assigns;
using secmem_lint::extract_calls;
using secmem_lint::extract_local_decls;
using secmem_lint::FileModel;
using secmem_lint::FuncInfo;
using secmem_lint::lex;
using secmem_lint::LexedFile;
using secmem_lint::LocalDecl;
using secmem_lint::Tok;

// ---------------------------------------------------------------- lexer

TEST(LintLexer, StripBlanksCommentsAndStrings) {
  const std::string src =
      "int a; // memcmp in a comment\n"
      "const char* s = \"memcmp(x, y)\"; /* and\n"
      "memcmp here */ int b;\n";
  const auto views = secmem_lint::strip(src);
  // Same length and line structure as the original.
  ASSERT_EQ(views.code.size(), src.size());
  ASSERT_EQ(views.code_strings.size(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '\n') {
      EXPECT_EQ(views.code[i], '\n');
      EXPECT_EQ(views.code_strings[i], '\n');
    }
  }
  // `code` hides all three memcmps; `code_strings` keeps the literal one.
  EXPECT_EQ(views.code.find("memcmp"), std::string::npos);
  EXPECT_NE(views.code_strings.find("memcmp"), std::string::npos);
  EXPECT_EQ(views.code_strings.find("comment"), std::string::npos);
}

TEST(LintLexer, TokenKindsOffsetsAndLines) {
  const LexedFile f = lex(
      "x += 0x1fULL; // gone\n"
      "s = \"lit\";\n"
      "c = 'q';\n");
  ASSERT_GE(f.tokens.size(), 11u);
  EXPECT_EQ(f.tokens[0].kind, Tok::kIdent);
  EXPECT_EQ(f.tokens[0].text, "x");
  EXPECT_EQ(f.tokens[1].kind, Tok::kPunct);
  EXPECT_EQ(f.tokens[1].text, "+=");  // greedy punctuator match
  EXPECT_EQ(f.tokens[2].kind, Tok::kNumber);
  EXPECT_EQ(f.tokens[2].text, "0x1fULL");
  EXPECT_EQ(f.tokens[0].line, 1u);
  bool saw_string = false, saw_char = false;
  for (const auto& t : f.tokens) {
    if (t.kind == Tok::kString) {
      saw_string = true;
      EXPECT_EQ(t.text, "\"lit\"");
      EXPECT_EQ(t.line, 2u);
    }
    if (t.kind == Tok::kChar) {
      saw_char = true;
      EXPECT_EQ(t.line, 3u);
    }
    EXPECT_EQ(f.text.compare(t.pos, t.text.size(), t.text), 0)
        << "token text must view its own offset";
  }
  EXPECT_TRUE(saw_string);
  EXPECT_TRUE(saw_char);
  // The comment produced no token.
  for (const auto& t : f.tokens) EXPECT_NE(t.text, "gone");
}

TEST(LintLexer, RawStringsAreSingleTokens) {
  const LexedFile f = lex("auto s = R\"(a \"quoted\" ) almost)\";\n");
  int strings = 0;
  for (const auto& t : f.tokens)
    if (t.kind == Tok::kString) ++strings;
  EXPECT_EQ(strings, 1);
}

// ----------------------------------------------------------- file model

constexpr const char* kClassSrc = R"cc(
class Engine {
 public:
  Engine() { gen_ = 0; }
  int read(int addr) const;
  void write(int addr, int v) { table_[addr] = v; }

 private:
  int gen_ SECMEM_GUARDED_BY(mu_);
  int table_[16] SECMEM_GUARDED_BY(mu_);
  Mutex mu_;
};

int Engine::read(int addr) const { return table_[addr]; }

static int helper(std::istream& in, int n) {
  int x = n;
  return x;
}
)cc";

TEST(LintModel, FindsFunctionsClassesAndParams) {
  const LexedFile f = lex(kClassSrc);
  const FileModel m = build_model(f);

  const FuncInfo* ctor = nullptr;
  const FuncInfo* write = nullptr;
  const FuncInfo* read = nullptr;
  const FuncInfo* helper = nullptr;
  for (const FuncInfo& fn : m.funcs) {
    if (fn.name == "Engine") ctor = &fn;
    if (fn.name == "write") write = &fn;
    if (fn.name == "read") read = &fn;
    if (fn.name == "helper") helper = &fn;
  }
  ASSERT_NE(ctor, nullptr);
  EXPECT_TRUE(ctor->is_ctor_or_dtor);
  EXPECT_EQ(ctor->class_name, "Engine");

  ASSERT_NE(write, nullptr);
  EXPECT_FALSE(write->is_ctor_or_dtor);
  EXPECT_EQ(write->class_name, "Engine");
  ASSERT_EQ(write->params.size(), 2u);
  EXPECT_EQ(write->params[0].name, "addr");
  EXPECT_EQ(write->params[1].name, "v");

  // Out-of-line definition: class name recovered from the qualifier.
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->class_name, "Engine");

  ASSERT_NE(helper, nullptr);
  EXPECT_EQ(helper->class_name, "");
  ASSERT_EQ(helper->params.size(), 2u);
  EXPECT_NE(helper->params[0].type.find("istream"), std::string::npos);
  EXPECT_EQ(helper->params[0].name, "in");
}

TEST(LintModel, HarvestsGuardedMembers) {
  const LexedFile f = lex(kClassSrc);
  const FileModel m = build_model(f);
  ASSERT_EQ(m.guarded.size(), 2u);
  EXPECT_EQ(m.guarded[0].class_name, "Engine");
  EXPECT_EQ(m.guarded[0].member, "gen_");
  EXPECT_EQ(m.guarded[0].mutex, "mu_");
  EXPECT_EQ(m.guarded[1].member, "table_");
}

TEST(LintModel, AnnotationFlagsAndLoops) {
  const LexedFile f = lex(R"cc(
struct S {
  void locked() SECMEM_REQUIRES(mu_) { n_ = 1; }
  void racy() SECMEM_NO_THREAD_SAFETY_ANALYSIS { n_ = 2; }
  void spin() {
    while (n_ < 3) { n_ = n_ + 1; }
  }
  int n_ SECMEM_GUARDED_BY(mu_);
};
)cc");
  const FileModel m = build_model(f);
  const FuncInfo* locked = nullptr;
  const FuncInfo* racy = nullptr;
  for (const FuncInfo& fn : m.funcs) {
    if (fn.name == "locked") locked = &fn;
    if (fn.name == "racy") racy = &fn;
  }
  ASSERT_NE(locked, nullptr);
  EXPECT_TRUE(locked->requires_lock);
  EXPECT_FALSE(locked->no_thread_safety);
  ASSERT_NE(racy, nullptr);
  EXPECT_TRUE(racy->no_thread_safety);
  // The while body registered as a loop body (status-discard liveness).
  EXPECT_FALSE(m.loop_bodies.empty());
}

// ------------------------------------------------------------ extractors

TEST(LintExtract, CallsWithReceiverAndArgs) {
  const LexedFile f = lex(R"cc(
void fn(Engine& e, const char* p, char* q) {
  std::memcpy(q, p, 8);
  e.commit(p, 1 + (2 * 3));
  delta::apply(geo, cmds);
}
)cc");
  const FileModel m = build_model(f);
  ASSERT_EQ(m.funcs.size(), 1u);
  const auto calls =
      extract_calls(f, m.funcs[0].body_begin, m.funcs[0].body_end);

  const CallSite* memcpy_c = nullptr;
  const CallSite* commit_c = nullptr;
  const CallSite* apply_c = nullptr;
  for (const CallSite& c : calls) {
    if (c.callee_last == "memcpy") memcpy_c = &c;
    if (c.callee_last == "commit") commit_c = &c;
    if (c.callee_last == "apply") apply_c = &c;
  }
  ASSERT_NE(memcpy_c, nullptr);
  EXPECT_EQ(memcpy_c->callee, "std::memcpy");
  EXPECT_EQ(memcpy_c->args.size(), 3u);
  ASSERT_NE(commit_c, nullptr);
  ASSERT_NE(commit_c->recv_tok, SIZE_MAX);
  EXPECT_EQ(f.tokens[commit_c->recv_tok].text, "e");
  // Parenthesized commas stay inside one argument span.
  EXPECT_EQ(commit_c->args.size(), 2u);
  ASSERT_NE(apply_c, nullptr);
  EXPECT_EQ(apply_c->callee, "delta::apply");
}

TEST(LintExtract, LocalDeclsIncludingRangeFor) {
  const LexedFile f = lex(R"cc(
void fn(const std::vector<int>& xs) {
  Status st = load();
  std::vector<unsigned char> buf(n);
  Sections alias{sections_};
  int plain;
  for (const int& x : xs) use(x);
}
)cc");
  const FileModel m = build_model(f);
  ASSERT_EQ(m.funcs.size(), 1u);
  const auto decls = extract_local_decls(f, m, m.funcs[0]);

  const LocalDecl* st = nullptr;
  const LocalDecl* buf = nullptr;
  const LocalDecl* alias = nullptr;
  const LocalDecl* plain = nullptr;
  const LocalDecl* x = nullptr;
  for (const LocalDecl& d : decls) {
    if (d.name == "st") st = &d;
    if (d.name == "buf") buf = &d;
    if (d.name == "alias") alias = &d;
    if (d.name == "plain") plain = &d;
    if (d.name == "x") x = &d;
  }
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->has_init);
  EXPECT_EQ(st->type, "Status");
  ASSERT_NE(buf, nullptr);
  EXPECT_TRUE(buf->has_init);
  // Paren-init: the initializer span starts at the '(' itself — the
  // verify-before-apply alias heuristic depends on this distinction.
  EXPECT_TRUE(secmem_lint::punct_is(f, buf->init.begin, "("));
  ASSERT_NE(alias, nullptr);
  EXPECT_TRUE(secmem_lint::punct_is(f, alias->init.begin, "{"));
  ASSERT_NE(plain, nullptr);
  EXPECT_FALSE(plain->has_init);
  // Range-for binding surfaces as a declaration too.
  ASSERT_NE(x, nullptr);
}

TEST(LintExtract, AssignsSkipComparisonsAndCompounds) {
  const LexedFile f = lex(R"cc(
void fn() {
  st = load();
  if (st == other) { n += 1; }
  obj.field = 2;
}
)cc");
  const FileModel m = build_model(f);
  ASSERT_EQ(m.funcs.size(), 1u);
  const auto assigns =
      extract_assigns(f, m.funcs[0].body_begin, m.funcs[0].body_end);
  ASSERT_EQ(assigns.size(), 2u);
  EXPECT_EQ(f.tokens[assigns[0].lhs_base_tok].text, "st");
  // `obj.field = 2` bases on the first identifier of the statement.
  EXPECT_EQ(f.tokens[assigns[1].lhs_base_tok].text, "obj");
  EXPECT_GT(assigns[1].rhs.end, assigns[1].rhs.begin);
}

}  // namespace
