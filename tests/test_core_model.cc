#include "sim/core_model.h"

#include <gtest/gtest.h>

namespace secmem {
namespace {

TEST(CoreModel, ComputeAdvancesAtBaseIpc) {
  CoreModel core(2.0, 8);
  core.advance_compute(100);
  EXPECT_DOUBLE_EQ(core.clock(), 50.0);
  EXPECT_EQ(core.instructions(), 100u);
}

TEST(CoreModel, DependentLoadStallsUntilCompletion) {
  CoreModel core(1.0, 8);
  core.memory_access(/*completion=*/200.0, /*dependent=*/true);
  EXPECT_GE(core.clock(), 200.0);
}

TEST(CoreModel, IndependentMissesOverlapWithinMlp) {
  CoreModel core(1.0, 4);
  // 4 misses completing at t=100 issued back-to-back: all fit the window,
  // so the clock stays near the issue cost.
  for (int i = 0; i < 4; ++i) core.memory_access(100.0, false);
  EXPECT_LT(core.clock(), 10.0);
  core.drain();
  EXPECT_GE(core.clock(), 100.0);
}

TEST(CoreModel, MlpExhaustionStalls) {
  CoreModel core(1.0, 2);
  core.memory_access(1000.0, false);
  core.memory_access(1000.0, false);
  EXPECT_LT(core.clock(), 10.0);
  core.memory_access(1000.0, false);  // third miss: window full
  EXPECT_GE(core.clock(), 1000.0);
}

TEST(CoreModel, FastAccessAddsExposedCycles) {
  CoreModel core(1.0, 8);
  core.fast_access(12.0);
  EXPECT_DOUBLE_EQ(core.clock(), 13.0);  // 1 issue cycle + 12 exposed
  EXPECT_EQ(core.instructions(), 1u);
}

TEST(CoreModel, HigherLatencyLowersIpc) {
  // Identical instruction streams, different memory latency: IPC order.
  auto run = [](double latency) {
    CoreModel core(2.0, 4);
    for (int i = 0; i < 1000; ++i) {
      core.advance_compute(10);
      core.memory_access(core.clock() + latency, i % 4 == 0);
    }
    core.drain();
    return static_cast<double>(core.instructions()) / core.clock();
  };
  EXPECT_GT(run(50.0), run(300.0));
}

TEST(CoreModel, DrainIdempotent) {
  CoreModel core(1.0, 4);
  core.memory_access(500.0, false);
  core.drain();
  const double t = core.clock();
  core.drain();
  EXPECT_DOUBLE_EQ(core.clock(), t);
}

}  // namespace
}  // namespace secmem
