// Verified-frontier tree cache (tree/tree_cache.h): correctness against
// the eager walk, and the trust model under adversarial corruption.
//
// The cache's design invariant is *observational equivalence*: for any
// operation sequence the post-flush backing tree is bit-identical to what
// eager update_leaf calls would have produced, and every verify outcome
// matches eager verify_leaf — with one documented divergence: backing
// bytes corrupted while a node is resident are masked until the entry
// leaves the cache (the on-chip copy is not attacker-reachable). These
// tests pin down both halves: the equivalence by twin-driving an eager
// and a cached tree through randomized ops, the divergence by corrupting
// under residency and checking detection resumes after eviction/flush.
#include "tree/tree_cache.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/secure_memory.h"
#include "engine/sharded_memory.h"
#include "tree/bonsai_tree.h"

namespace secmem {
namespace {

constexpr std::uint64_t kLines = 8192;  // L1=1024, L2=128, L3=16; top=3

/// An eager tree and a cached tree over the same logical leaf storage.
/// Every mutation goes to both; every check must agree.
class TreeCacheTwin : public ::testing::Test {
 protected:
  TreeCacheTwin()
      : geometry_(kLines, 3 * 1024),
        key_{0x1234'5678'9abc'def0ULL,
             Aes128::Key{0x0f, 0xed, 0xcb, 0xa9, 0x87, 0x65, 0x43, 0x21}},
        eager_tree_(geometry_, key_),
        cached_tree_(geometry_, key_),
        cache_(cached_tree_, TreeCacheConfig{8, 8}, &metrics_),
        leaves_(kLines * BonsaiTree::kLineBytes, 0) {}

  BonsaiTree::LineView line(std::uint64_t i) const {
    return BonsaiTree::LineView(
        leaves_.data() + i * BonsaiTree::kLineBytes, BonsaiTree::kLineBytes);
  }

  void set_line(std::uint64_t i, Xoshiro256& rng) {
    std::uint8_t* p = leaves_.data() + i * BonsaiTree::kLineBytes;
    for (std::size_t b = 0; b < BonsaiTree::kLineBytes; ++b)
      p[b] = static_cast<std::uint8_t>(rng.next());
  }

  void update_both(std::uint64_t i) {
    eager_tree_.update_leaf(i, line(i));
    cache_.update(i, line(i));
  }

  /// Interior + root levels of both trees must be byte-identical.
  void expect_trees_identical(const char* when) {
    for (unsigned lvl = 1; lvl < geometry_.total_levels(); ++lvl)
      for (std::uint64_t n = 0; n < geometry_.nodes_at[lvl]; ++n)
        ASSERT_EQ(eager_tree_.read_node(lvl, n), cached_tree_.read_node(lvl, n))
            << when << ": level " << lvl << " node " << n;
  }

  BonsaiGeometry geometry_;
  CwMacKey key_;
  BonsaiTree eager_tree_;
  BonsaiTree cached_tree_;
  MetricsCell metrics_;
  VerifiedTreeCache cache_;
  std::vector<std::uint8_t> leaves_;
};

TEST_F(TreeCacheTwin, FuzzEquivalenceAndFlushedTreeBitIdentical) {
  Xoshiro256 rng(0xcafe);
  for (int op = 0; op < 6000; ++op) {
    const std::uint64_t i = rng.next_below(kLines);
    if (rng.chance(0.5)) {
      set_line(i, rng);
      update_both(i);
    } else {
      const bool eager_ok = eager_tree_.verify_leaf(i, line(i));
      const bool cached_ok = cache_.verify(i, line(i));
      ASSERT_TRUE(eager_ok) << "op " << op;
      ASSERT_EQ(eager_ok, cached_ok) << "op " << op << " line " << i;
    }
    if (op % 1500 == 1499) {
      cache_.flush();
      expect_trees_identical("mid-fuzz flush");
    }
  }
  cache_.flush();
  expect_trees_identical("final flush");
  EXPECT_GT(metrics_.value(MetricId::kTreeCacheHits), 0u);
}

TEST_F(TreeCacheTwin, StaleContentRejectedColdAndWarm) {
  Xoshiro256 rng(0x51a1e);
  set_line(7, rng);
  update_both(7);
  std::array<std::uint8_t, BonsaiTree::kLineBytes> stale;
  std::memcpy(stale.data(), line(7).data(), stale.size());
  set_line(7, rng);
  update_both(7);
  const BonsaiTree::LineView stale_view(stale.data(), stale.size());
  // Warm: level-0 residency, so rejection is the 64-byte compare.
  EXPECT_FALSE(cache_.verify(7, stale_view));
  // Cold: full walk against backing.
  cache_.flush();
  EXPECT_FALSE(cache_.verify(7, stale_view));
  EXPECT_FALSE(eager_tree_.verify_leaf(7, stale_view));
  // The true bytes still verify either way.
  EXPECT_TRUE(cache_.verify(7, line(7)));
}

TEST_F(TreeCacheTwin, CorruptionUnderResidencyDetectedAfterFlush) {
  Xoshiro256 rng(0xbad);
  set_line(42, rng);
  update_both(42);
  cache_.flush();
  ASSERT_TRUE(cache_.verify(42, line(42)));  // fills the frontier

  // Corrupt the line's level-1 ancestor in backing. The resident copy
  // masks it (intentional divergence: on-chip state, attacker can't
  // reach it), but detection must resume the moment residency ends.
  cached_tree_.corrupt_node(1, BonsaiGeometry::parent_of(42), 13);
  EXPECT_TRUE(cache_.verify(42, line(42))) << "resident frontier not used";
  cache_.flush();  // entries are clean: flush drops them, no write-back
  EXPECT_FALSE(cache_.verify(42, line(42)));
  EXPECT_FALSE(cache_.verify(42, line(42))) << "failed path must not fill";
}

TEST_F(TreeCacheTwin, CorruptedCounterLineCaughtByResidentCompare) {
  Xoshiro256 rng(0xfee);
  set_line(3, rng);
  update_both(3);
  ASSERT_TRUE(cache_.verify(3, line(3)));
  // Attacker flips a bit in the (off-chip) counter line after it became
  // resident: the next verified read hands us the tampered bytes, and
  // the level-0 compare — not a MAC — rejects them.
  std::array<std::uint8_t, BonsaiTree::kLineBytes> tampered;
  std::memcpy(tampered.data(), line(3).data(), tampered.size());
  tampered[5] ^= 0x10;
  EXPECT_FALSE(cache_.verify(
      3, BonsaiTree::LineView(tampered.data(), tampered.size())));
}

TEST_F(TreeCacheTwin, CorruptionUnderResidencyDetectedAfterEviction) {
  // A deliberately tiny direct-mapped cache (16 entries) so ordinary
  // traffic recycles every slot: corruption under residency must be
  // detected once capacity pressure evicts the entry — clean evictions
  // never write the on-chip copy back over the corrupted backing bytes.
  VerifiedTreeCache tiny(cached_tree_, TreeCacheConfig{1, 1});
  Xoshiro256 rng(0xe71c);
  set_line(100, rng);
  eager_tree_.update_leaf(100, line(100));
  cached_tree_.update_leaf(100, line(100));
  ASSERT_TRUE(tiny.verify(100, line(100)));
  cached_tree_.corrupt_node(1, BonsaiGeometry::parent_of(100), 7);
  ASSERT_TRUE(tiny.verify(100, line(100)));  // masked while resident
  // 512 distinct lines spread over the tree: hundreds of fills through
  // 16 slots recycle the (0,100) and (1,12) entries many times over.
  for (std::uint64_t i = 0; i < kLines; i += 16)
    ASSERT_TRUE(tiny.verify(i, line(i)));
  EXPECT_FALSE(tiny.verify(100, line(100)));
}

TEST_F(TreeCacheTwin, WriteBackCoalescesAncestorMacWork) {
  Xoshiro256 rng(0xc0a1);
  // 1000 updates to the same line: eager would recompute every ancestor
  // MAC 1000 times; the write-back buffer defers it all to one flush.
  for (int i = 0; i < 1000; ++i) {
    set_line(9, rng);
    update_both(9);
  }
  const std::uint64_t before = metrics_.value(MetricId::kTreeCacheWritebacks);
  cache_.flush();
  const std::uint64_t writebacks =
      metrics_.value(MetricId::kTreeCacheWritebacks) - before;
  EXPECT_LE(writebacks, geometry_.total_levels());
  EXPECT_GE(writebacks, 1u);
  expect_trees_identical("after coalesced flush");
}

TEST_F(TreeCacheTwin, DisabledCacheDelegatesEagerly) {
  VerifiedTreeCache off(cached_tree_, TreeCacheConfig{0, 8});
  EXPECT_FALSE(off.enabled());
  Xoshiro256 rng(0x0ff);
  set_line(5, rng);
  eager_tree_.update_leaf(5, line(5));
  off.update(5, line(5));
  EXPECT_TRUE(off.verify(5, line(5)));
  EXPECT_EQ(off.occupied(), 0u);
  expect_trees_identical("disabled cache");
  off.flush();  // no-op, must not crash
}

/// ------------------------------------------------------------------
/// Engine-level: eager vs cached SecureMemory must be indistinguishable
/// through every public surface — reads, save images, tamper detection.
/// ------------------------------------------------------------------

/// CI runs this suite with SECMEM_TREE_CACHE=0 as well; hit-count
/// expectations only hold when the kill switch isn't engaged.
bool env_disables_cache() {
  const char* env = std::getenv("SECMEM_TREE_CACHE");
  return env && std::strtoul(env, nullptr, 10) == 0;
}

SecureMemoryConfig engine_config(unsigned tree_cache_kb) {
  SecureMemoryConfig config;
  config.size_bytes = 4 * 1024 * 1024;  // 1024 counter lines, 2-level walk
  config.tree_cache_kb = tree_cache_kb;
  return config;
}

TEST(TreeCacheEngine, SaveImagesBitIdenticalUnderFuzz) {
  SecureMemory eager(engine_config(0));
  SecureMemory cached(engine_config(8));
  Xoshiro256 rng(0x5a4e);
  for (int round = 0; round < 4; ++round) {
    for (int op = 0; op < 800; ++op) {
      const std::uint64_t b = rng.next_below(eager.num_blocks());
      if (rng.chance(0.6)) {
        DataBlock block{};
        for (auto& byte : block) byte = static_cast<std::uint8_t>(rng.next());
        EXPECT_EQ(eager.write_block(b, block), Status::kOk);
        EXPECT_EQ(cached.write_block(b, block), Status::kOk);
      } else {
        const auto e = eager.read_block(b);
        const auto c = cached.read_block(b);
        ASSERT_EQ(e.status, c.status);
        ASSERT_EQ(e.data, c.data);
      }
    }
    // save() is a flush barrier: the cached engine's image must come out
    // byte-for-byte identical to the eager one, every round.
    std::ostringstream eager_img, cached_img;
    EXPECT_EQ(eager.save(eager_img), Status::kOk);
    EXPECT_EQ(cached.save(cached_img), Status::kOk);
    ASSERT_EQ(eager_img.str(), cached_img.str()) << "round " << round;
  }
  if (!env_disables_cache()) {
    EXPECT_GT(cached.stats().tree_cache_hits, 0u);
  }
  EXPECT_EQ(eager.stats().tree_cache_hits, 0u);
}

TEST(TreeCacheEngine, ScrubRotateRestoreStayEquivalent) {
  SecureMemory eager(engine_config(0));
  SecureMemory cached(engine_config(8));
  Xoshiro256 rng(0x707a7e);
  for (int op = 0; op < 400; ++op) {
    DataBlock block{};
    for (auto& byte : block) byte = static_cast<std::uint8_t>(rng.next());
    const std::uint64_t b = rng.next_below(eager.num_blocks());
    EXPECT_EQ(eager.write_block(b, block), Status::kOk);
    EXPECT_EQ(cached.write_block(b, block), Status::kOk);
  }
  // scrub_all flushes first so it sweeps the true off-chip state.
  EXPECT_EQ(eager.scrub_all().scanned, cached.scrub_all().scanned);
  // Key rotation re-encrypts everything; dirty state must not survive
  // under the old key.
  ASSERT_TRUE(eager.rotate_master_key(0xd00d));
  ASSERT_TRUE(cached.rotate_master_key(0xd00d));
  std::ostringstream eager_img, cached_img;
  EXPECT_EQ(eager.save(eager_img), Status::kOk);
  EXPECT_EQ(cached.save(cached_img), Status::kOk);
  EXPECT_EQ(eager_img.str(), cached_img.str());
  // Round-trip the cached engine through restore (which invalidates the
  // cache: the rebuilt tree shares no state with the old one).
  std::istringstream in(cached_img.str());
  SecureMemoryConfig revived_config = engine_config(8);
  revived_config.master_key = 0xd00d;  // restore derives keys from config
  SecureMemory revived(revived_config);
  ASSERT_TRUE(revived.restore(in));
  for (std::uint64_t b = 0; b < revived.num_blocks(); b += 97) {
    const auto want = eager.read_block(b);
    const auto got = revived.read_block(b);
    ASSERT_EQ(got.status, want.status);
    ASSERT_EQ(got.data, want.data);
  }
}

TEST(TreeCacheEngine, TamperDetectionMatchesEagerThroughFlushBarrier) {
  SecureMemory eager(engine_config(0));
  SecureMemory cached(engine_config(8));
  for (std::uint64_t b = 0; b < 64; ++b) {
    DataBlock block{};
    block[0] = static_cast<std::uint8_t>(b);
    EXPECT_EQ(eager.write_block(b, block), Status::kOk);
    EXPECT_EQ(cached.write_block(b, block), Status::kOk);
    // Warm the cached engine's frontier so the tamper lands while the
    // path is resident — the untrusted() accessor is the flush barrier
    // that ends residency before the attacker touches anything.
    (void)cached.read_block(b);
  }
  const std::uint64_t line = cached.counters().storage_line_of(17);
  eager.untrusted().flip_counter_bit(line, 9);
  cached.untrusted().flip_counter_bit(line, 9);
  EXPECT_EQ(eager.read_block(17).status, cached.read_block(17).status);
  EXPECT_EQ(cached.read_block(17).status, ReadStatus::kCounterTampered);

  eager.untrusted().tree().corrupt_node(1, 0, 21);
  cached.untrusted().tree().corrupt_node(1, 0, 21);
  EXPECT_EQ(eager.read_block(0).status, cached.read_block(0).status);
  EXPECT_EQ(cached.read_block(0).status, ReadStatus::kCounterTampered);
}

TEST(TreeCacheEngine, EnvKillSwitchAndCapacityOverride) {
  ASSERT_EQ(setenv("SECMEM_TREE_CACHE", "0", 1), 0);
  {
    SecureMemory mem(engine_config(8));  // config says on; env wins
    DataBlock block{};
    EXPECT_EQ(mem.write_block(1, block), Status::kOk);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(mem.read_block(1).status,
                                           ReadStatus::kOk);
    const EngineStats stats = mem.stats();
    EXPECT_EQ(stats.tree_cache_hits + stats.tree_cache_misses, 0u);
  }
  ASSERT_EQ(setenv("SECMEM_TREE_CACHE", "4", 1), 0);
  {
    SecureMemory mem(engine_config(0));  // config says off; env wins
    DataBlock block{};
    EXPECT_EQ(mem.write_block(1, block), Status::kOk);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(mem.read_block(1).status,
                                           ReadStatus::kOk);
    EXPECT_GT(mem.stats().tree_cache_hits, 0u);
  }
  ASSERT_EQ(unsetenv("SECMEM_TREE_CACHE"), 0);
}

TEST(TreeCacheEngine, ShardedStressWithPerShardCaches) {
  SecureMemoryConfig config = engine_config(8);
  config.size_bytes = 1024 * 1024;
  ShardedSecureMemory mem(config, 4);
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 64;  // disjoint block ranges
  std::vector<std::thread> workers;
  std::atomic<int> bad{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&mem, &bad, t] {
      Xoshiro256 rng(0x7157 + t);
      const std::uint64_t base = t * kPerThread;
      for (int op = 0; op < 3000; ++op) {
        if (rng.chance(0.4)) {
          DataBlock block{};
          const std::uint64_t b = base + rng.next_below(kPerThread);
          block[0] = static_cast<std::uint8_t>(b);
          block[1] = static_cast<std::uint8_t>(t);
          EXPECT_EQ(mem.write_block(b, block), Status::kOk);
        } else {
          // Read anywhere, including other threads' hot blocks.
          const std::uint64_t b = rng.next_below(kThreads * kPerThread);
          if (mem.read_block(b).status != ReadStatus::kOk) ++bad;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(bad.load(), 0);
  if (!env_disables_cache()) {
    EXPECT_GT(mem.stats().tree_cache_hits, 0u);
  }
  // Quiescent readback: last writer's value, verified, for every block.
  for (std::uint64_t b = 0; b < kThreads * kPerThread; ++b) {
    const auto result = mem.read_block(b);
    ASSERT_EQ(result.status, ReadStatus::kOk);
    if (result.data != DataBlock{}) {
      EXPECT_EQ(result.data[0], static_cast<std::uint8_t>(b));
    }
  }
}

}  // namespace
}  // namespace secmem
