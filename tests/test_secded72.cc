#include "ecc/secded72.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/bitops.h"
#include "common/rng.h"

namespace secmem {
namespace {

DataBlock random_block(Xoshiro256& rng) {
  DataBlock b;
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next());
  return b;
}

TEST(Secded72, CleanRoundTrip) {
  Secded72 codec;
  Xoshiro256 rng(1);
  for (int i = 0; i < 20; ++i) {
    const DataBlock block = random_block(rng);
    const EccLane lane = codec.encode(block);
    const auto result = codec.decode(block, lane);
    EXPECT_FALSE(result.any_corrected);
    EXPECT_FALSE(result.any_uncorrectable);
    EXPECT_EQ(result.data, block);
    for (const auto status : result.words)
      EXPECT_EQ(status, Secded72::WordStatus::kOk);
  }
}

TEST(Secded72, BatchEncodeMatchesScalarEncode) {
  // Bit-identity contract of the group write path's batch entry point,
  // over random blocks plus the all-zeros / all-ones corners.
  Secded72 codec;
  Xoshiro256 rng(21);
  constexpr std::size_t kN = 64;
  std::vector<DataBlock> blocks(kN);
  for (auto& b : blocks) b = random_block(rng);
  blocks[0] = DataBlock{};
  blocks[1].fill(0xFF);

  std::vector<EccLane> batch(kN);
  codec.encode_batch(blocks, batch);
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_EQ(batch[i], codec.encode(blocks[i])) << "block " << i;
}

TEST(Secded72, EverySingleDataBitCorrected) {
  Secded72 codec;
  Xoshiro256 rng(2);
  const DataBlock block = random_block(rng);
  const EccLane lane = codec.encode(block);
  for (std::size_t bit = 0; bit < 512; ++bit) {
    DataBlock corrupted = block;
    flip_bit(corrupted, bit);
    const auto result = codec.decode(corrupted, lane);
    EXPECT_TRUE(result.any_corrected) << "bit " << bit;
    EXPECT_FALSE(result.any_uncorrectable) << "bit " << bit;
    EXPECT_EQ(result.data, block) << "bit " << bit;
  }
}

TEST(Secded72, EccLaneBitFlipsCorrected) {
  Secded72 codec;
  Xoshiro256 rng(3);
  const DataBlock block = random_block(rng);
  const EccLane lane = codec.encode(block);
  for (std::size_t bit = 0; bit < 64; ++bit) {
    EccLane corrupted = lane;
    flip_bit(corrupted, bit);
    const auto result = codec.decode(block, corrupted);
    EXPECT_FALSE(result.any_uncorrectable) << "lane bit " << bit;
    EXPECT_EQ(result.data, block) << "lane bit " << bit;
  }
}

TEST(Secded72, DoubleBitSameWordDetected) {
  Secded72 codec;
  Xoshiro256 rng(4);
  const DataBlock block = random_block(rng);
  const EccLane lane = codec.encode(block);
  for (unsigned word = 0; word < 8; ++word) {
    DataBlock corrupted = block;
    flip_bit(corrupted, word * 64 + 3);
    flip_bit(corrupted, word * 64 + 47);
    const auto result = codec.decode(corrupted, lane);
    EXPECT_TRUE(result.any_uncorrectable) << "word " << word;
    EXPECT_EQ(result.words[word], Secded72::WordStatus::kDetectedDouble);
  }
}

TEST(Secded72, DoubleBitAcrossWordsBothCorrected) {
  // The paper's Figure 3 point: per-word SEC-DED *can* fix two flips when
  // they land in different words.
  Secded72 codec;
  Xoshiro256 rng(5);
  const DataBlock block = random_block(rng);
  const EccLane lane = codec.encode(block);
  DataBlock corrupted = block;
  flip_bit(corrupted, 0 * 64 + 10);
  flip_bit(corrupted, 5 * 64 + 33);
  const auto result = codec.decode(corrupted, lane);
  EXPECT_TRUE(result.any_corrected);
  EXPECT_FALSE(result.any_uncorrectable);
  EXPECT_EQ(result.data, block);
}

TEST(Secded72, EightSpreadFlipsAllCorrected) {
  // Up to one flip per word -> 8 corrections in one block.
  Secded72 codec;
  Xoshiro256 rng(6);
  const DataBlock block = random_block(rng);
  const EccLane lane = codec.encode(block);
  DataBlock corrupted = block;
  for (unsigned word = 0; word < 8; ++word)
    flip_bit(corrupted, word * 64 + (word * 7 + 1));
  const auto result = codec.decode(corrupted, lane);
  EXPECT_EQ(result.data, block);
  EXPECT_FALSE(result.any_uncorrectable);
  for (const auto status : result.words)
    EXPECT_EQ(status, Secded72::WordStatus::kCorrectedSingle);
}

TEST(Secded72, CorrectedLaneMatchesReencode) {
  Secded72 codec;
  Xoshiro256 rng(7);
  const DataBlock block = random_block(rng);
  const EccLane lane = codec.encode(block);
  DataBlock corrupted = block;
  flip_bit(corrupted, 100);
  const auto result = codec.decode(corrupted, lane);
  EXPECT_EQ(result.ecc, codec.encode(result.data));
}

}  // namespace
}  // namespace secmem
