// Integration tests over the full simulated system. Small protected
// regions and short runs keep them fast; the benches run the full-size
// configurations.
#include "sim/system_sim.h"

#include <gtest/gtest.h>

#include "counters/delta_counter.h"
#include "counters/split_counter.h"

namespace secmem {
namespace {

SystemConfig small_system(Protection protection,
                          CounterSchemeKind scheme = CounterSchemeKind::kDelta,
                          MacPlacement placement = MacPlacement::kEccLane) {
  SystemConfig config;
  config.protection = protection;
  config.scheme = scheme;
  config.engine.mac_placement = placement;
  config.protected_bytes = 256ULL << 20;  // covers every profile's WS
  // Shrink caches so short runs produce real DRAM traffic.
  config.hierarchy.l1 = {8 * 1024, 2, 64};
  config.hierarchy.l2 = {32 * 1024, 4, 64};
  config.hierarchy.l3 = {256 * 1024, 8, 64};
  return config;
}

TEST(SystemSim, RunsToCompletionAndCountsInstructions) {
  SystemSimulator sim(small_system(Protection::kNone),
                      profile_by_name("freqmine"));
  const SimResult result = sim.run(5000);
  EXPECT_GT(result.cycles, 0u);
  EXPECT_GE(result.instructions, 4u * 5000u);
  EXPECT_GT(result.ipc, 0.0);
  EXPECT_GT(result.dram_reads, 0u);
}

TEST(SystemSim, Deterministic) {
  const auto run_once = [] {
    SystemSimulator sim(small_system(Protection::kEncrypted),
                        profile_by_name("canneal"));
    return sim.run(3000);
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.dram_reads, b.dram_reads);
  EXPECT_EQ(a.reencryptions, b.reencryptions);
}

TEST(SystemSim, EncryptionCostsIpc) {
  SystemSimulator plain(small_system(Protection::kNone),
                        profile_by_name("canneal"));
  SystemSimulator encrypted(small_system(Protection::kEncrypted),
                            profile_by_name("canneal"));
  const double ipc_plain = plain.run(8000).ipc;
  const double ipc_enc = encrypted.run(8000).ipc;
  EXPECT_LT(ipc_enc, ipc_plain)
      << "authenticated encryption was free?!";
  EXPECT_GT(ipc_enc, 0.3 * ipc_plain) << "slowdown implausibly large";
}

TEST(SystemSim, EccLaneMacBeatsSeparateMac) {
  // Figure 8 / §3: same workload, same counters; only MAC placement
  // differs. MAC-in-ECC must not be slower.
  SystemSimulator ecc(small_system(Protection::kEncrypted,
                                   CounterSchemeKind::kMonolithic56,
                                   MacPlacement::kEccLane),
                      profile_by_name("canneal"));
  SystemSimulator sep(small_system(Protection::kEncrypted,
                                   CounterSchemeKind::kMonolithic56,
                                   MacPlacement::kSeparate),
                      profile_by_name("canneal"));
  const SimResult r_ecc = ecc.run(8000);
  const SimResult r_sep = sep.run(8000);
  EXPECT_GE(r_ecc.ipc, r_sep.ipc);
  EXPECT_LT(r_ecc.dram_reads, r_sep.dram_reads);
}

TEST(SystemSim, ObserversSeeWritebackStream) {
  SystemConfig config = small_system(Protection::kNone);
  SystemSimulator sim(config, profile_by_name("dedup"));
  SplitCounters split(config.protected_bytes / 64);
  DeltaCounters delta(config.protected_bytes / 64);
  sim.add_observer(&split);
  sim.add_observer(&delta);
  sim.run(20000);
  // Both observers saw identical write streams.
  std::uint64_t split_writes = 0, delta_writes = 0;
  for (BlockIndex b = 0; b < 4096; ++b) {
    split_writes += split.read_counter(b) > 0;
    delta_writes += delta.read_counter(b) > 0;
  }
  EXPECT_EQ(split_writes, delta_writes);
  EXPECT_GT(split_writes, 0u);
}

TEST(SystemSim, UniformSweepFavoursDeltaOverSplit) {
  // The Table 2 mechanism end-to-end: a sweep-heavy workload re-encrypts
  // under split counters but resets under delta encoding.
  SystemConfig config = small_system(Protection::kNone);
  SystemSimulator sim(config, profile_by_name("freqmine"));
  SplitCounters split(config.protected_bytes / 64);
  DeltaCounters delta(config.protected_bytes / 64);
  sim.add_observer(&split);
  sim.add_observer(&delta);
  sim.run(400000);
  EXPECT_LE(delta.reencryptions(), split.reencryptions());
}

TEST(SystemSim, CacheResidentWorkloadBarelyTouchesDram) {
  SystemConfig config = small_system(Protection::kEncrypted);
  config.hierarchy = HierarchyConfig{};  // full-size caches (10MB L3)
  SystemSimulator sim(config, profile_by_name("swaptions"));
  const SimResult result = sim.run(30000);
  // 2MB working set in a 10MB LLC: after warmup, DRAM traffic ~ compulsory
  // misses only.
  EXPECT_LT(result.dram_reads, 3 * (2 * 1024 * 1024 / 64))
      << "cache-resident workload thrashed DRAM";
  EXPECT_EQ(result.reencryptions, 0u);
}

TEST(SystemSim, ReencryptionsReportedForHotWorkload) {
  SystemConfig config = small_system(Protection::kEncrypted,
                                     CounterSchemeKind::kSplit);
  // Tiny caches so hot lines are evicted (and their counters written)
  // between revisits.
  config.hierarchy.l1 = {4 * 1024, 2, 64};
  config.hierarchy.l2 = {8 * 1024, 4, 64};
  config.hierarchy.l3 = {16 * 1024, 8, 64};
  // A deliberately write-hot profile: 6 skewed groups (384 blocks/thread)
  // — wide enough to thrash the tiny L3, hot enough to overflow minors.
  WorkloadProfile profile = profile_by_name("facesim");
  profile.w_sweep = 0;
  profile.w_random = 0.2;
  profile.hot = WorkloadProfile::HotSpec{0.8, HotMode::kSkewed, 6, 0, 0.1, 0};
  profile.hot2.weight = 0;
  SystemSimulator sim(config, profile);
  const SimResult result = sim.run(1000000);
  EXPECT_GT(result.reencryptions, 0u);
}

}  // namespace
}  // namespace secmem
