#include "dram/dram_system.h"

#include <gtest/gtest.h>

#include "dram/bank.h"

namespace secmem {
namespace {

TEST(DramBank, RowMissPaysActivate) {
  DramTiming timing;
  DramBank bank(timing);
  const auto r = bank.access(0, /*row=*/5, false, /*bus_free=*/0);
  EXPECT_FALSE(r.row_hit);
  EXPECT_EQ(r.data_start, timing.tRCD + timing.tCL);
  EXPECT_EQ(r.data_done, r.data_start + timing.tBurst);
}

TEST(DramBank, RowHitSkipsActivate) {
  DramTiming timing;
  DramBank bank(timing);
  const auto miss = bank.access(0, 5, false, 0);
  const auto hit = bank.access(miss.data_done, 5, false, 0);
  EXPECT_TRUE(hit.row_hit);
  EXPECT_EQ(hit.data_start, miss.data_done + timing.tCL);
}

TEST(DramBank, RowConflictPaysPrechargeAndRas) {
  DramTiming timing;
  DramBank bank(timing);
  const auto first = bank.access(0, 5, false, 0);
  const auto conflict = bank.access(first.data_done, 9, false, 0);
  EXPECT_FALSE(conflict.row_hit);
  // Must respect tRAS from activation (t=0) before precharging.
  EXPECT_GE(conflict.data_start,
            timing.tRAS + timing.tRP + timing.tRCD + timing.tCL);
  // Row-conflict access is strictly slower than a fresh row miss.
  EXPECT_GT(conflict.data_start - first.data_done, 0u);
}

TEST(DramBank, WriteRecoveryDelaysPrecharge) {
  DramTiming timing;
  DramBank bank(timing);
  const auto w = bank.access(0, 5, /*is_write=*/true, 0);
  const auto conflict = bank.access(w.data_done, 9, false, 0);
  // Precharge cannot start before write recovery completes.
  EXPECT_GE(conflict.data_start,
            w.data_done + timing.tWR + timing.tRP + timing.tRCD + timing.tCL);
}

TEST(DramBank, BusContentionDelaysData) {
  DramTiming timing;
  DramBank bank(timing);
  const std::uint64_t bus_free = 10000;
  const auto r = bank.access(0, 5, false, bus_free);
  EXPECT_EQ(r.data_start, bus_free);
}

TEST(DramSystem, AddressMappingInterleavesAt1KB) {
  // Blocks within one 1KB segment share (channel, bank, row) — row-buffer
  // hits for streams; consecutive segments rotate channels, then banks.
  DramOrg org;
  const auto b0 = map_address(org, 0 * 64);
  const auto b15 = map_address(org, 15 * 64);
  EXPECT_EQ(b0.channel, b15.channel);
  EXPECT_EQ(b0.bank, b15.bank);
  EXPECT_EQ(b0.row, b15.row);
  const auto seg1 = map_address(org, 16 * 64);
  EXPECT_NE(b0.channel, seg1.channel);
  const auto seg4 = map_address(org, 4 * 16 * 64);
  EXPECT_EQ(b0.channel, seg4.channel);  // wraps at 4 channels
  EXPECT_NE(b0.bank, seg4.bank);        // next interleave level: banks
}

TEST(DramSystem, MappingStaysInBounds) {
  DramOrg org;
  for (std::uint64_t addr = 0; addr < (1ULL << 30); addr += 999 * 64) {
    const auto coord = map_address(org, addr);
    EXPECT_LT(coord.channel, org.channels);
    EXPECT_LT(coord.rank, org.ranks_per_channel);
    EXPECT_LT(coord.bank, org.banks_per_rank);
  }
}

TEST(DramSystem, CompletionAfterRequest) {
  StatRegistry stats;
  DramSystem dram(DramConfig{}, stats);
  const std::uint64_t done = dram.access(100, 0x4000, false);
  EXPECT_GT(done, 100u);
}

TEST(DramSystem, ParallelChannelsBeatSerialBank) {
  StatRegistry stats;
  DramSystem dram(DramConfig{}, stats);
  // 4 lines at 1KB stride land on 4 different channels: total completion
  // is much less than 4x a single access.
  std::uint64_t done = 0;
  for (std::uint64_t i = 0; i < 4; ++i)
    done = std::max(done, dram.access(0, i * 1024, false));
  const std::uint64_t single = dram.idle_read_latency();
  EXPECT_LT(done, 2 * single);
}

TEST(DramSystem, StreamingGetsRowHits) {
  StatRegistry stats;
  DramSystem dram(DramConfig{}, stats);
  std::uint64_t now = 0;
  for (std::uint64_t i = 0; i < 16; ++i)
    now = dram.access(now, i * 64, false);
  // 15 of 16 sequential blocks hit the open row.
  EXPECT_EQ(stats.counter_value("dram.ch0.row_hits"), 15u);
}

TEST(DramSystem, SameBankSerializes) {
  StatRegistry stats;
  DramSystem dram(DramConfig{}, stats);
  // Same block twice at t=0: second burst must wait for the first.
  const std::uint64_t d1 = dram.access(0, 0x0, false);
  const std::uint64_t d2 = dram.access(0, 0x0, false);
  EXPECT_GT(d2, d1);
}

TEST(DramSystem, StatsTrackReadsAndWrites) {
  StatRegistry stats;
  DramSystem dram(DramConfig{}, stats);
  dram.access(0, 0x0, false);
  dram.access(1000, 0x0, true);  // posted write: no bank/row accounting
  dram.access(2000, 0x0, false); // row hit on the open row
  EXPECT_EQ(stats.counter_value("dram.reads"), 2u);
  EXPECT_EQ(stats.counter_value("dram.writes"), 1u);
  EXPECT_EQ(stats.counter_value("dram.ch0.row_hits"), 1u);
  EXPECT_EQ(stats.counter_value("dram.ch0.row_misses"), 1u);
}

TEST(DramSystem, PostedWritesDoNotDelayReads) {
  // Read priority: a moderate burst of posted writes must leave read
  // latency unchanged (the write queue has headroom).
  StatRegistry a_stats, b_stats;
  DramSystem quiet(DramConfig{}, a_stats);
  DramSystem busy(DramConfig{}, b_stats);
  for (int i = 0; i < 8; ++i) busy.access(0, 0x0 + 1024 * i, true);
  EXPECT_EQ(quiet.access(0, 0x40, false), busy.access(0, 0x40, false));
}

TEST(DramSystem, SaturatedWriteQueueBackpressuresReads) {
  StatRegistry stats;
  DramSystem dram(DramConfig{}, stats);
  // Flood one channel far beyond the 32-burst write queue.
  for (int i = 0; i < 200; ++i) dram.access(0, 0x0, true);
  StatRegistry stats2;
  DramSystem quiet(DramConfig{}, stats2);
  EXPECT_GT(dram.access(0, 0x40, false), quiet.access(0, 0x40, false));
}

TEST(DramSystem, RefreshWindowDelaysReads) {
  DramConfig config;
  StatRegistry stats;
  DramSystem dram(config, stats);
  // A read landing inside the first refresh window [tREFI, tREFI+tRFC)
  // must wait for the window to close.
  const std::uint64_t inside = config.timing.tREFI + 10;
  const std::uint64_t done = dram.access(inside, 0x40, false);
  EXPECT_GE(done, config.timing.tREFI + config.timing.tRFC);
  EXPECT_EQ(stats.counter_value("dram.ch0.refresh_delays"), 1u);
}

TEST(DramSystem, RefreshDisableRestoresLatency) {
  DramConfig config;
  config.refresh_enabled = false;
  StatRegistry stats;
  DramSystem dram(config, stats);
  const std::uint64_t inside = config.timing.tREFI + 10;
  EXPECT_EQ(dram.access(inside, 0x40, false) - inside,
            dram.idle_read_latency());
}

TEST(DramBank, ClosedPageNeverRowHits) {
  DramTiming timing;
  DramBank bank(timing, /*open_page=*/false);
  const auto first = bank.access(0, 5, false, 0);
  const auto second = bank.access(first.data_done + 1000, 5, false, 0);
  EXPECT_FALSE(second.row_hit);
}

TEST(DramBank, ClosedPageConflictCheaperThanOpenPageConflict) {
  DramTiming timing;
  DramBank closed(timing, false);
  DramBank open(timing, true);
  const auto c1 = closed.access(0, 5, false, 0);
  const auto o1 = open.access(0, 5, false, 0);
  // Access a DIFFERENT row long after: closed-page already precharged,
  // open-page must precharge on demand.
  const std::uint64_t later = 10000;
  const auto c2 = closed.access(later, 9, false, 0);
  const auto o2 = open.access(later, 9, false, 0);
  EXPECT_LT(c2.data_start, o2.data_start);
  (void)c1; (void)o1;
}

TEST(DramSystem, BlockInterleaveMappingOption) {
  DramOrg org;
  const auto b0 = map_address(org, 0, AddressMapping::kBlockInterleave);
  const auto b1 = map_address(org, 64, AddressMapping::kBlockInterleave);
  EXPECT_NE(b0.channel, b1.channel);  // fine-grained rotation
  for (std::uint64_t addr = 0; addr < (1ULL << 28); addr += 12345 * 64) {
    const auto coord =
        map_address(org, addr, AddressMapping::kBlockInterleave);
    EXPECT_LT(coord.channel, org.channels);
    EXPECT_LT(coord.bank, org.banks_per_rank);
    EXPECT_LT(coord.rank, org.ranks_per_channel);
  }
}

TEST(DramSystem, IdleReadLatencyMatchesTiming) {
  StatRegistry stats;
  DramConfig config;
  DramSystem dram(config, stats);
  EXPECT_EQ(dram.idle_read_latency(),
            config.timing.tRCD + config.timing.tCL + config.timing.tBurst);
  // A cold access from idle matches the closed-form number.
  EXPECT_EQ(dram.access(0, 0x40, false), dram.idle_read_latency());
}

}  // namespace
}  // namespace secmem
