// Key-rotation and statistics tests.
#include <gtest/gtest.h>

#include <cstring>

#include "engine/secure_memory.h"

namespace secmem {
namespace {

DataBlock pattern(std::uint8_t seed) {
  DataBlock b{};
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<std::uint8_t>(seed ^ (i * 29));
  return b;
}

SecureMemoryConfig small_config() {
  SecureMemoryConfig c;
  c.size_bytes = 16 * 1024;
  return c;
}

TEST(KeyRotation, DataSurvivesRekey) {
  SecureMemory memory(small_config());
  for (std::uint64_t b = 0; b < 64; ++b)
    EXPECT_EQ(memory.write_block(b, pattern(static_cast<std::uint8_t>(b))), Status::kOk);
  ASSERT_TRUE(memory.rotate_master_key(0xD00DULL));
  for (std::uint64_t b = 0; b < 64; ++b) {
    const auto result = memory.read_block(b);
    EXPECT_EQ(result.status, ReadStatus::kOk) << b;
    EXPECT_EQ(result.data, pattern(static_cast<std::uint8_t>(b))) << b;
  }
}

TEST(KeyRotation, CiphertextActuallyChanges) {
  SecureMemory memory(small_config());
  EXPECT_EQ(memory.write_block(3, pattern(9)), Status::kOk);
  DataBlock before;
  std::memcpy(before.data(), memory.untrusted().ciphertext(3).data(), 64);
  ASSERT_TRUE(memory.rotate_master_key(0x12345));
  DataBlock after;
  std::memcpy(after.data(), memory.untrusted().ciphertext(3).data(), 64);
  EXPECT_NE(before, after) << "re-keying left old ciphertext in place";
}

TEST(KeyRotation, CountersRestartAtZero) {
  SecureMemory memory(small_config());
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(memory.write_block(4, pattern(1)), Status::kOk);
  EXPECT_GT(memory.counters().read_counter(4), 0u);
  ASSERT_TRUE(memory.rotate_master_key(0x777));
  EXPECT_EQ(memory.counters().read_counter(4), 0u);
  // And the region still works.
  EXPECT_EQ(memory.write_block(4, pattern(2)), Status::kOk);
  EXPECT_EQ(memory.read_block(4).data, pattern(2));
}

TEST(KeyRotation, RefusesToLaunderTamperedData) {
  SecureMemory memory(small_config());
  EXPECT_EQ(memory.write_block(5, pattern(3)), Status::kOk);
  for (unsigned bit : {1u, 2u, 3u})
    memory.untrusted().flip_ciphertext_bit(5, bit);
  EXPECT_FALSE(memory.rotate_master_key(0xBAD));
  // Region is untouched: the tamper is still detectable.
  EXPECT_EQ(memory.read_block(5).status, ReadStatus::kIntegrityViolation);
}

TEST(KeyRotation, HealsCorrectableFaultsWhileRekeying) {
  SecureMemory memory(small_config());
  EXPECT_EQ(memory.write_block(6, pattern(4)), Status::kOk);
  memory.untrusted().flip_ciphertext_bit(6, 77);  // correctable
  ASSERT_TRUE(memory.rotate_master_key(0x600D));
  const auto result = memory.read_block(6);
  EXPECT_EQ(result.status, ReadStatus::kOk);
  EXPECT_EQ(result.data, pattern(4));
}

TEST(KeyRotation, OldSnapshotsUselessAfterRekey) {
  SecureMemory memory(small_config());
  EXPECT_EQ(memory.write_block(7, pattern(5)), Status::kOk);
  const auto snapshot = memory.untrusted().snapshot(7);
  ASSERT_TRUE(memory.rotate_master_key(0xF00));
  memory.untrusted().restore(7, snapshot);
  EXPECT_NE(memory.read_block(7).status, ReadStatus::kOk)
      << "pre-rotation snapshot replayed successfully!";
}

TEST(SecureMemoryStats, CountsEveryOutcome) {
  SecureMemory memory(small_config());
  memory.reset_stats();
  EXPECT_EQ(memory.write_block(1, pattern(1)), Status::kOk);
  EXPECT_EQ(memory.read_block(1).status, ReadStatus::kOk);
  memory.untrusted().flip_ciphertext_bit(1, 5);
  EXPECT_EQ(memory.read_block(1).status, ReadStatus::kCorrectedData);
  EXPECT_EQ(memory.write_block(1, pattern(2)), Status::kOk);  // heals
  memory.untrusted().flip_lane_bit(1, 10);
  EXPECT_EQ(memory.read_block(1).status, ReadStatus::kCorrectedMacField);
  for (unsigned bit : {100u, 101u, 102u})
    memory.untrusted().flip_ciphertext_bit(1, bit);
  EXPECT_EQ(memory.read_block(1).status, ReadStatus::kIntegrityViolation);
  const auto& stats = memory.stats();
  EXPECT_EQ(stats.writes, 2u);
  EXPECT_EQ(stats.reads, 4u);
  EXPECT_EQ(stats.corrected_data, 1u);
  EXPECT_EQ(stats.corrected_mac_field, 1u);
  EXPECT_EQ(stats.integrity_violations, 1u);
  EXPECT_GT(stats.mac_evaluations, 512u);  // the failed search ran
}

TEST(SecureMemoryStats, GroupReencryptionsCounted) {
  SecureMemoryConfig config = small_config();
  config.scheme = CounterSchemeKind::kSplit;
  SecureMemory memory(config);
  memory.reset_stats();
  for (int i = 0; i < 128; ++i)
    EXPECT_EQ(memory.write_block(0, pattern(1)), Status::kOk);
  EXPECT_EQ(memory.stats().group_reencryptions, 1u);
}

TEST(SecureMemoryStats, ResetClears) {
  SecureMemory memory(small_config());
  EXPECT_EQ(memory.write_block(1, pattern(1)), Status::kOk);
  memory.reset_stats();
  EXPECT_EQ(memory.stats().writes, 0u);
  EXPECT_EQ(memory.stats().reads, 0u);
}

}  // namespace
}  // namespace secmem
