#include "common/log.h"

#include <gtest/gtest.h>

namespace secmem {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  for (const LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError,
        LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, OrderingSupportsThresholding) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

TEST(Log, EmittingBelowThresholdIsSafeNoop) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Must not crash or emit; formatting is skipped entirely.
  log_debug("invisible ", 1, " and ", 2.5);
  log_error("also invisible at kOff");
}

TEST(Log, FormatterConcatenatesArguments) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  // Exercise the variadic path at an enabled level (output goes to
  // stderr; we only assert it does not crash with mixed types).
  log_info("x=", 42, " y=", 3.14, " s=", std::string("ok"));
}

}  // namespace
}  // namespace secmem
