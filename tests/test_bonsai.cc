#include <gtest/gtest.h>

#include "common/rng.h"
#include "tree/bonsai_geometry.h"
#include "tree/bonsai_tree.h"

namespace secmem {
namespace {

// ---------------------------------------------------------- geometry

TEST(BonsaiGeometry, PaperBaselineHas5OffchipLevels) {
  // 512MB protected, monolithic counters: 8M blocks / 8 per line = 1M
  // counter lines; 3KB on-chip roots -> 5 off-chip levels (paper Table 1).
  const std::uint64_t counter_lines = (512ULL << 20) / 64 / 8;
  BonsaiGeometry geometry(counter_lines, 3 * 1024);
  EXPECT_EQ(geometry.offchip_levels(), 5u);
}

TEST(BonsaiGeometry, PaperDeltaTreeHas4OffchipLevels) {
  // Delta counters: 64 blocks per line -> 128K lines -> 4 levels
  // (paper §5.2: "depth of the tree is reduced from 5 to 4").
  const std::uint64_t counter_lines = (512ULL << 20) / 64 / 64;
  BonsaiGeometry geometry(counter_lines, 3 * 1024);
  EXPECT_EQ(geometry.offchip_levels(), 4u);
}

TEST(BonsaiGeometry, LevelsShrinkByArity) {
  BonsaiGeometry geometry(4096, 64);
  for (std::size_t i = 1; i < geometry.nodes_at.size(); ++i) {
    EXPECT_EQ(geometry.nodes_at[i],
              (geometry.nodes_at[i - 1] + 7) / 8);
  }
}

TEST(BonsaiGeometry, TopLevelFitsOnChip) {
  for (std::uint64_t lines : {10ULL, 1000ULL, 1000000ULL}) {
    BonsaiGeometry geometry(lines, 3 * 1024);
    EXPECT_LE(geometry.nodes_at.back() * 64, 3 * 1024u);
  }
}

TEST(BonsaiGeometry, SingleLineDegenerateTree) {
  // Even a one-line counter region gets an on-chip root above it: the
  // counter line itself is off-chip and must be verifiable.
  BonsaiGeometry geometry(1, 3 * 1024);
  EXPECT_EQ(geometry.offchip_levels(), 1u);
  EXPECT_EQ(geometry.total_levels(), 2u);
}

class BonsaiGeometrySweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BonsaiGeometrySweep, StructuralInvariants) {
  const std::uint64_t lines = GetParam();
  const BonsaiGeometry geometry(lines, 3 * 1024);
  // Leaves first, root level last, at least two levels.
  ASSERT_GE(geometry.total_levels(), 2u);
  EXPECT_EQ(geometry.nodes_at.front(), lines);
  // Every level shrinks by exactly ceil(/8).
  for (std::size_t i = 1; i < geometry.nodes_at.size(); ++i)
    EXPECT_EQ(geometry.nodes_at[i], (geometry.nodes_at[i - 1] + 7) / 8) << i;
  // Root level fits the SRAM budget; the level below it does not.
  EXPECT_LE(geometry.nodes_at.back() * 64, 3 * 1024u);
  if (geometry.total_levels() > 2) {
    EXPECT_GT(geometry.nodes_at[geometry.total_levels() - 2] * 64,
              3 * 1024u);
  }
  // Every leaf's ancestor chain lands inside each level (ending at some
  // node of the on-chip root level).
  for (std::uint64_t leaf : {std::uint64_t{0}, lines / 2, lines - 1}) {
    std::uint64_t node = leaf;
    for (std::size_t lvl = 1; lvl < geometry.nodes_at.size(); ++lvl) {
      node = BonsaiGeometry::parent_of(node);
      EXPECT_LT(node, geometry.nodes_at[lvl]) << "leaf " << leaf;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BonsaiGeometrySweep,
                         ::testing::Values(1, 7, 8, 9, 63, 64, 65, 512,
                                           4096, 100000, 1 << 20));

TEST(BonsaiGeometry, ParentChildIndexing) {
  EXPECT_EQ(BonsaiGeometry::parent_of(0), 0u);
  EXPECT_EQ(BonsaiGeometry::parent_of(7), 0u);
  EXPECT_EQ(BonsaiGeometry::parent_of(8), 1u);
  EXPECT_EQ(BonsaiGeometry::slot_in_parent(0), 0u);
  EXPECT_EQ(BonsaiGeometry::slot_in_parent(13), 5u);
}

TEST(BonsaiGeometry, OffchipTreeBytesExcludesLeavesAndRoots) {
  BonsaiGeometry geometry(64 * 64, 3 * 1024);  // 4096 lines
  // levels: 4096, 512, 64, 8 (8*64=512B <= 3KB, on-chip).
  ASSERT_EQ(geometry.nodes_at.size(), 4u);
  EXPECT_EQ(geometry.offchip_tree_bytes(), (512 + 64) * 64u);
}

// -------------------------------------------------------------- tree

CwMacKey tree_key() {
  CwMacKey key{};
  key.hash_key = 0xABCDEF0123456789ULL;
  for (int i = 0; i < 16; ++i) key.pad_key[i] = static_cast<std::uint8_t>(i);
  return key;
}

class BonsaiTreeTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kLines = 512;  // levels: 512, 64, 8
  BonsaiGeometry geometry{kLines, 1024};        // 8 nodes = 512B on-chip
  BonsaiTree tree{geometry, tree_key()};

  std::array<std::uint8_t, 64> line_content(std::uint8_t seed) {
    std::array<std::uint8_t, 64> content{};
    for (std::size_t i = 0; i < 64; ++i)
      content[i] = static_cast<std::uint8_t>(seed + i);
    return content;
  }
};

TEST_F(BonsaiTreeTest, FreshTreeVerifiesZeroLines) {
  const std::array<std::uint8_t, 64> zeros{};
  for (std::uint64_t line = 0; line < kLines; line += 37)
    EXPECT_TRUE(tree.verify_leaf(line, zeros));
}

TEST_F(BonsaiTreeTest, UpdateThenVerify) {
  const auto content = line_content(7);
  tree.update_leaf(42, content);
  EXPECT_TRUE(tree.verify_leaf(42, content));
}

TEST_F(BonsaiTreeTest, StaleContentRejected) {
  const auto v1 = line_content(1);
  const auto v2 = line_content(2);
  tree.update_leaf(10, v1);
  tree.update_leaf(10, v2);
  EXPECT_TRUE(tree.verify_leaf(10, v2));
  EXPECT_FALSE(tree.verify_leaf(10, v1)) << "replayed stale counter line!";
}

TEST_F(BonsaiTreeTest, EveryLeafBitMatters) {
  auto content = line_content(3);
  tree.update_leaf(100, content);
  for (unsigned bit = 0; bit < 512; bit += 41) {
    content[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(tree.verify_leaf(100, content)) << "bit " << bit;
    content[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  EXPECT_TRUE(tree.verify_leaf(100, content));
}

TEST_F(BonsaiTreeTest, UpdatesAreIndependentAcrossLeaves) {
  const auto a = line_content(4);
  const auto b = line_content(5);
  tree.update_leaf(0, a);
  tree.update_leaf(1, b);  // same parent node as leaf 0
  EXPECT_TRUE(tree.verify_leaf(0, a));
  EXPECT_TRUE(tree.verify_leaf(1, b));
}

TEST_F(BonsaiTreeTest, InteriorNodeCorruptionDetected) {
  const auto content = line_content(6);
  tree.update_leaf(8, content);
  tree.corrupt_node(1, BonsaiGeometry::parent_of(8), 3);
  EXPECT_FALSE(tree.verify_leaf(8, content));
}

TEST_F(BonsaiTreeTest, InteriorReplayDetected) {
  // Attacker snapshots an interior node + leaf, lets the system progress,
  // then restores both. The on-chip root level catches the rollback.
  const auto v1 = line_content(8);
  tree.update_leaf(20, v1);
  const auto old_node = tree.read_node(1, BonsaiGeometry::parent_of(20));

  const auto v2 = line_content(9);
  tree.update_leaf(20, v2);

  tree.write_node(1, BonsaiGeometry::parent_of(20), old_node);
  EXPECT_FALSE(tree.verify_leaf(20, v1))
      << "replay of (leaf, interior node) pair was accepted";
}

TEST_F(BonsaiTreeTest, CorruptionOfSiblingSubtreeHarmless) {
  const auto content = line_content(10);
  tree.update_leaf(0, content);
  // Corrupt an interior node covering distant leaves only.
  tree.corrupt_node(1, 32, 0);  // parent of leaves 256..263
  EXPECT_TRUE(tree.verify_leaf(0, content));
}

TEST_F(BonsaiTreeTest, ManyRandomUpdatesStayConsistent) {
  Xoshiro256 rng(1);
  std::vector<std::array<std::uint8_t, 64>> current(
      kLines, std::array<std::uint8_t, 64>{});
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t line = rng.next_below(kLines);
    auto content = line_content(static_cast<std::uint8_t>(rng.next()));
    tree.update_leaf(line, content);
    current[line] = content;
  }
  for (std::uint64_t line = 0; line < kLines; line += 13)
    EXPECT_TRUE(tree.verify_leaf(line, current[line])) << line;
}

}  // namespace
}  // namespace secmem
