// Cross-scheme property tests: every counter representation must provide
// the same *semantics* — monotone counters and nonce freshness — no
// matter how it packs bits or when it re-encrypts.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "counters/counter_scheme.h"

namespace secmem {
namespace {

class CounterSchemeProperty
    : public ::testing::TestWithParam<CounterSchemeKind> {
 protected:
  static constexpr BlockIndex kBlocks = 512;  // 8 groups of 64
  std::unique_ptr<CounterScheme> scheme =
      make_counter_scheme(GetParam(), kBlocks);
};

TEST_P(CounterSchemeProperty, StartsAtZero) {
  for (BlockIndex b = 0; b < kBlocks; b += 17)
    EXPECT_EQ(scheme->read_counter(b), 0u);
}

TEST_P(CounterSchemeProperty, WriteReturnsReadableCounter) {
  const auto outcome = scheme->on_write(5);
  EXPECT_EQ(outcome.counter, scheme->read_counter(5));
  EXPECT_EQ(outcome.counter, 1u);
}

TEST_P(CounterSchemeProperty, NonceFreshnessUnderRandomWrites) {
  // THE security invariant of counter-mode: the (address, counter) pair
  // used to encrypt a block must never repeat. Track the last counter
  // used per block; every new encryption counter must be strictly larger.
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 7);
  std::map<BlockIndex, std::uint64_t> last_used;
  for (int i = 0; i < 60000; ++i) {
    // Skew writes toward a hot set to force frequent overflow handling.
    const BlockIndex block = rng.chance(0.7)
                                 ? rng.next_below(8)
                                 : rng.next_below(kBlocks);
    const auto outcome = scheme->on_write(block);
    auto it = last_used.find(block);
    if (it != last_used.end()) {
      EXPECT_GT(outcome.counter, it->second)
          << "nonce reuse on block " << block << " at write " << i;
    }
    last_used[block] = outcome.counter;

    if (outcome.event == CounterEvent::kReencrypt) {
      // Every group member is re-encrypted under outcome.counter: that
      // value must be fresh for each of them too.
      const BlockIndex first = outcome.group * scheme->blocks_per_group();
      for (BlockIndex b = first;
           b < first + scheme->blocks_per_group() && b < kBlocks; ++b) {
        auto member = last_used.find(b);
        if (member != last_used.end() && b != block) {
          EXPECT_GE(outcome.counter, member->second)
              << "stale re-encryption counter for block " << b;
        }
        last_used[b] = outcome.counter;
      }
    }
  }
}

TEST_P(CounterSchemeProperty, ReadCounterMonotone) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 13);
  std::vector<std::uint64_t> previous(kBlocks, 0);
  for (int i = 0; i < 30000; ++i) {
    const BlockIndex block = rng.next_below(64);  // all in one group
    scheme->on_write(block);
    for (BlockIndex b = 0; b < 64; ++b) {
      const std::uint64_t now = scheme->read_counter(b);
      EXPECT_GE(now, previous[b]) << "counter decreased on block " << b;
      previous[b] = now;
    }
  }
}

TEST_P(CounterSchemeProperty, RepresentationEventsPreserveOtherCounters) {
  // kReset / kReencode / kExpand are re-*representations*: no counter
  // value other than the written block's may change.
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 21);
  for (int i = 0; i < 20000; ++i) {
    const BlockIndex block = rng.next_below(64);
    std::vector<std::uint64_t> before(64);
    for (BlockIndex b = 0; b < 64; ++b) before[b] = scheme->read_counter(b);
    const auto outcome = scheme->on_write(block);
    if (outcome.event == CounterEvent::kReencrypt) continue;
    for (BlockIndex b = 0; b < 64; ++b) {
      if (b == block) continue;
      EXPECT_EQ(scheme->read_counter(b), before[b])
          << counter_event_name(outcome.event) << " corrupted block " << b;
    }
    EXPECT_EQ(scheme->read_counter(block), before[block] + 1);
  }
}

TEST_P(CounterSchemeProperty, SerializationTracksState) {
  std::array<std::uint8_t, 64> before{}, after{};
  scheme->serialize_line(0, before);
  scheme->on_write(3);
  scheme->serialize_line(0, after);
  EXPECT_NE(before, after) << "write did not change the stored line";
  // Serialization is a pure function of state.
  std::array<std::uint8_t, 64> again{};
  scheme->serialize_line(0, again);
  EXPECT_EQ(after, again);
}

TEST_P(CounterSchemeProperty, StorageGeometryConsistent) {
  EXPECT_GT(scheme->blocks_per_storage_line(), 0u);
  EXPECT_GT(scheme->blocks_per_group(), 0u);
  EXPECT_EQ(scheme->num_blocks(), kBlocks);
  EXPECT_EQ(scheme->num_storage_lines(),
            (kBlocks + scheme->blocks_per_storage_line() - 1) /
                scheme->blocks_per_storage_line());
  EXPECT_GT(scheme->bits_per_block(), 0.0);
  EXPECT_LE(scheme->bits_per_block(), 64.0);
}

TEST_P(CounterSchemeProperty, NameStable) {
  EXPECT_FALSE(scheme->name().empty());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, CounterSchemeProperty,
                         ::testing::Values(CounterSchemeKind::kMonolithic56,
                                           CounterSchemeKind::kSplit,
                                           CounterSchemeKind::kDelta,
                                           CounterSchemeKind::kDualDelta),
                         [](const auto& info) {
                           return std::string(
                               counter_scheme_kind_name(info.param))
                               .substr(0, 5) +
                               std::to_string(static_cast<int>(info.param));
                         });

}  // namespace
}  // namespace secmem
