// Scrubbing tests (paper §3.3): the quick parity scan, healing of latent
// faults, and the blind spots the paper's design accepts.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/secure_memory.h"

namespace secmem {
namespace {

DataBlock pattern(std::uint8_t seed) {
  DataBlock b{};
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<std::uint8_t>(seed * 17 + i * 3);
  return b;
}

class ScrubbingTest : public ::testing::Test {
 protected:
  SecureMemoryConfig config() {
    SecureMemoryConfig c;
    c.size_bytes = 16 * 1024;  // 256 blocks
    c.mac_placement = MacPlacement::kEccLane;
    return c;
  }
  SecureMemory memory{config()};
};

TEST_F(ScrubbingTest, CleanRegionScrubsClean) {
  for (std::uint64_t b = 0; b < 32; ++b)
    EXPECT_EQ(memory.write_block(b, pattern(static_cast<std::uint8_t>(b))), Status::kOk);
  const auto report = memory.scrub_all();
  EXPECT_EQ(report.scanned, memory.num_blocks());
  EXPECT_EQ(report.quick_clean, memory.num_blocks());
  EXPECT_EQ(report.repaired_data, 0u);
  EXPECT_EQ(report.uncorrectable, 0u);
}

TEST_F(ScrubbingTest, SingleDataBitFaultHealed) {
  EXPECT_EQ(memory.write_block(5, pattern(1)), Status::kOk);
  memory.untrusted().flip_ciphertext_bit(5, 123);
  EXPECT_EQ(memory.scrub_block(5),
            SecureMemory::ScrubStatus::kRepairedData);
  // The fault is gone from the backing store: a later read is clean even
  // if a SECOND fault lands (which would otherwise exceed correction).
  memory.untrusted().flip_ciphertext_bit(5, 200);
  const auto result = memory.read_block(5);
  EXPECT_EQ(result.status, ReadStatus::kCorrectedData);
  EXPECT_EQ(result.data, pattern(1));
}

TEST_F(ScrubbingTest, MacLaneFaultHealed) {
  EXPECT_EQ(memory.write_block(6, pattern(2)), Status::kOk);
  memory.untrusted().flip_lane_bit(6, 30);
  EXPECT_EQ(memory.scrub_block(6),
            SecureMemory::ScrubStatus::kRepairedMacField);
  // Healed: a fresh single-bit MAC fault is again correctable.
  memory.untrusted().flip_lane_bit(6, 50);
  EXPECT_EQ(memory.read_block(6).status, ReadStatus::kCorrectedMacField);
}

TEST_F(ScrubbingTest, ScrubBitFlipAloneHealed) {
  EXPECT_EQ(memory.write_block(7, pattern(3)), Status::kOk);
  memory.untrusted().flip_lane_bit(7, kScrubBitPos);
  // Parity mismatch triggers the full check, which finds the data+MAC
  // fine and rewrites a consistent lane.
  const auto status = memory.scrub_block(7);
  EXPECT_NE(status, SecureMemory::ScrubStatus::kUncorrectable);
  EXPECT_EQ(memory.scrub_block(7), SecureMemory::ScrubStatus::kClean);
}

TEST_F(ScrubbingTest, QuickScanIsBlindToEvenFlips_DeepScanIsNot) {
  // Two ciphertext flips keep the parity bit happy — the paper's quick
  // scrub cannot see them. A deep scrub runs the MAC and heals.
  EXPECT_EQ(memory.write_block(8, pattern(4)), Status::kOk);
  memory.untrusted().flip_ciphertext_bit(8, 10);
  memory.untrusted().flip_ciphertext_bit(8, 20);
  EXPECT_EQ(memory.scrub_block(8, /*deep=*/false),
            SecureMemory::ScrubStatus::kClean)
      << "quick scan should be parity-blind to 2 flips (documented gap)";
  EXPECT_EQ(memory.scrub_block(8, /*deep=*/true),
            SecureMemory::ScrubStatus::kRepairedData);
  EXPECT_EQ(memory.read_block(8).status, ReadStatus::kOk);
}

TEST_F(ScrubbingTest, UncorrectableFaultReportedNotHidden) {
  EXPECT_EQ(memory.write_block(9, pattern(5)), Status::kOk);
  for (unsigned bit : {1u, 2u, 3u})
    memory.untrusted().flip_ciphertext_bit(9, bit);
  EXPECT_EQ(memory.scrub_block(9, true),
            SecureMemory::ScrubStatus::kUncorrectable);
  const auto report = memory.scrub_all(true);
  EXPECT_EQ(report.uncorrectable, 1u);
}

TEST_F(ScrubbingTest, TamperedCounterSurfacesDuringScrub) {
  EXPECT_EQ(memory.write_block(10, pattern(6)), Status::kOk);
  memory.untrusted().flip_counter_bit(
      memory.counters().storage_line_of(10), 7);
  const auto report = memory.scrub_all(true);
  EXPECT_GT(report.counter_tampered, 0u);
}

TEST_F(ScrubbingTest, SweepHealsScatteredFaults) {
  Xoshiro256 rng(44);
  for (std::uint64_t b = 0; b < memory.num_blocks(); ++b)
    EXPECT_EQ(memory.write_block(b, pattern(static_cast<std::uint8_t>(b))), Status::kOk);
  // Rain single-bit faults over 20 random blocks. Two faults may land on
  // one block (even parity hides them from the quick scan), so sweep deep.
  for (int i = 0; i < 20; ++i) {
    memory.untrusted().flip_ciphertext_bit(
        rng.next_below(memory.num_blocks()),
        static_cast<unsigned>(rng.next_below(512)));
  }
  const auto report = memory.scrub_all(/*deep=*/true);
  EXPECT_GE(report.repaired_data, 15u);  // distinct blocks may collide
  EXPECT_EQ(report.uncorrectable, 0u);
  // After scrubbing, everything reads clean.
  for (std::uint64_t b = 0; b < memory.num_blocks(); ++b) {
    const auto result = memory.read_block(b);
    EXPECT_EQ(result.status, ReadStatus::kOk) << b;
    EXPECT_EQ(result.data, pattern(static_cast<std::uint8_t>(b))) << b;
  }
}

TEST(ScrubbingSeparateMac, SecDedQuickScanAndHeal) {
  SecureMemoryConfig config;
  config.size_bytes = 16 * 1024;
  config.mac_placement = MacPlacement::kSeparate;
  SecureMemory memory(config);
  EXPECT_EQ(memory.write_block(3, pattern(7)), Status::kOk);
  EXPECT_EQ(memory.scrub_block(3), SecureMemory::ScrubStatus::kClean);
  memory.untrusted().flip_ciphertext_bit(3, 99);
  EXPECT_EQ(memory.scrub_block(3),
            SecureMemory::ScrubStatus::kRepairedData);
  EXPECT_EQ(memory.read_block(3).status, ReadStatus::kOk);
}

}  // namespace
}  // namespace secmem
