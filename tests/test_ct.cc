// common/ct.h — the constant-time comparison helpers every MAC/tag
// verification goes through. The contract under test: bit-identical
// accept/reject verdicts to memcmp/operator== on every input (only the
// time profile differs, which a unit test cannot observe), plus the
// engine-level differential check that a save-image round trip accepts
// and rejects exactly as the variable-time implementation did.
#include "common/ct.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "engine/secure_memory.h"

namespace secmem {
namespace {

TEST(CtEqual, ExhaustiveOneByte) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint8_t x = static_cast<std::uint8_t>(a);
      const std::uint8_t y = static_cast<std::uint8_t>(b);
      EXPECT_EQ(ct_equal(&x, &y, 1), std::memcmp(&x, &y, 1) == 0)
          << a << " vs " << b;
    }
  }
}

TEST(CtEqual, ZeroLengthAlwaysEqual) {
  const std::uint8_t x = 0xAA;
  const std::uint8_t y = 0x55;
  EXPECT_TRUE(ct_equal(&x, &y, 0));
}

TEST(CtEqual, SingleBitDifferenceAtEveryPosition) {
  // The classic failure mode of a broken accumulator is losing high or
  // low bits; prove every bit of every byte position is load-bearing.
  for (std::size_t n : {1u, 2u, 7u, 8u, 16u, 56u, 64u}) {
    std::vector<std::uint8_t> a(n, 0x5C);
    for (std::size_t byte = 0; byte < n; ++byte) {
      for (unsigned bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> b = a;
        b[byte] ^= static_cast<std::uint8_t>(1u << bit);
        EXPECT_FALSE(ct_equal(a.data(), b.data(), n))
            << "n=" << n << " byte=" << byte << " bit=" << bit;
      }
    }
    EXPECT_TRUE(ct_equal(a.data(), a.data(), n));
  }
}

TEST(CtEqual, FuzzAgainstMemcmp) {
  Xoshiro256 rng(0xC7E9UL);
  for (int iter = 0; iter < 20000; ++iter) {
    const std::size_t n = 1 + rng.next_below(64);
    std::vector<std::uint8_t> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i)
      a[i] = static_cast<std::uint8_t>(rng.next());
    // Mix of equal, near-equal (1 flipped bit), and unrelated buffers.
    switch (rng.next_below(3)) {
      case 0:
        b = a;
        break;
      case 1:
        b = a;
        b[rng.next_below(n)] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
        break;
      default:
        for (std::size_t i = 0; i < n; ++i)
          b[i] = static_cast<std::uint8_t>(rng.next());
        break;
    }
    EXPECT_EQ(ct_equal(a.data(), b.data(), n),
              std::memcmp(a.data(), b.data(), n) == 0);
    EXPECT_EQ(ct_equal(std::span<const std::uint8_t>(a),
                       std::span<const std::uint8_t>(b)),
              std::memcmp(a.data(), b.data(), n) == 0);
  }
}

TEST(CtEqual, SpanLengthMismatchIsUnequal) {
  const std::vector<std::uint8_t> a(8, 0);
  const std::vector<std::uint8_t> b(9, 0);
  EXPECT_FALSE(ct_equal(std::span<const std::uint8_t>(a),
                        std::span<const std::uint8_t>(b)));
}

TEST(CtEqualU64, EveryOneAndTwoBitDifference) {
  const std::uint64_t base = 0x0123'4567'89AB'CDEFULL;
  EXPECT_TRUE(ct_equal_u64(base, base));
  EXPECT_TRUE(ct_equal_u64(0, 0));
  EXPECT_TRUE(ct_equal_u64(~0ULL, ~0ULL));
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_FALSE(ct_equal_u64(base, base ^ (1ULL << i))) << i;
    for (unsigned j = i + 1; j < 64; ++j)
      EXPECT_FALSE(ct_equal_u64(base, base ^ (1ULL << i) ^ (1ULL << j)))
          << i << "," << j;
  }
}

TEST(CtEqualU64, FuzzAgainstOperatorEq) {
  Xoshiro256 rng(987654321);
  for (int iter = 0; iter < 100000; ++iter) {
    const std::uint64_t a = rng.next();
    const std::uint64_t b = rng.next_below(4) == 0 ? a : rng.next();
    EXPECT_EQ(ct_equal_u64(a, b), a == b);
  }
}

// Engine-level differential: the ct_equal conversion of the sealed-root
// check (SecureMemory::restore) must keep accept/reject behavior
// bit-identical — a pristine image restores, and any flipped byte in the
// sealed-root region is rejected, exactly as std::equal did.
TEST(CtEqual, SaveImageSealedRootAcceptReject) {
  SecureMemoryConfig config;
  config.size_bytes = 16 * 1024;
  SecureMemory memory(config);
  Xoshiro256 rng(42);
  for (std::uint64_t b = 0; b < memory.num_blocks(); b += 7) {
    DataBlock block;
    for (auto& byte : block) byte = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(memory.write_block(b, block), Status::kOk);
  }
  std::ostringstream out;
  EXPECT_EQ(memory.save(out), Status::kOk);
  const std::string image = out.str();

  {
    SecureMemory other(config);
    std::istringstream in(image);
    EXPECT_TRUE(other.restore(in));
    EXPECT_EQ(other.read_block(7).status, Status::kOk);
  }
  // The sealed root level is the image's trailing bytes; every corrupted
  // byte there must be rejected.
  for (std::size_t back = 1; back <= 64; back += 13) {
    std::string tampered = image;
    tampered[tampered.size() - back] ^= 0x01;
    SecureMemory other(config);
    std::istringstream in(tampered);
    EXPECT_FALSE(other.restore(in)) << "offset -" << back;
  }
}

}  // namespace
}  // namespace secmem
