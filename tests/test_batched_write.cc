// Differential and stress coverage of the batched group write path
// (issue 7): overflow re-encryption routed through crypt_batch /
// compute_batch / pack_lane_batch must be OBSERVABLY IDENTICAL to the
// scalar per-block path — same save images bit for bit, same statuses,
// same metrics shape — and safe under concurrent overflow storms.
//
// The scalar twin is constructed with SECMEM_BATCH_REENC=0 (sampled at
// engine construction, like the other kill switches), so each test drives
// two engines whose ONLY difference is the re-encryption drain shape.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/secure_memory.h"
#include "engine/sharded_memory.h"

namespace secmem {
namespace {

DataBlock pattern(std::uint64_t seed) {
  DataBlock b;
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<std::uint8_t>(seed * 131 + i * 7 + 1);
  return b;
}

/// Set an environment variable for the current scope, restoring the
/// previous state (set-to-old-value or unset) on destruction. The kill
/// switches are sampled at engine construction, so the guard only needs
/// to span the constructor call.
class ScopedEnvVar {
 public:
  ScopedEnvVar(const char* name, const char* value)
      : name_(name), had_(std::getenv(name) != nullptr),
        saved_(had_ ? std::getenv(name) : "") {
    EXPECT_EQ(setenv(name, value, 1), 0);
  }
  ~ScopedEnvVar() {
    if (had_)
      setenv(name_, saved_.c_str(), 1);
    else
      unsetenv(name_);
  }
  ScopedEnvVar(const ScopedEnvVar&) = delete;
  ScopedEnvVar& operator=(const ScopedEnvVar&) = delete;

 private:
  const char* name_;
  bool had_;
  std::string saved_;
};

/// Construct an engine with the scalar re-encryption path forced on.
void emplace_scalar_engine(std::optional<SecureMemory>& slot,
                           const SecureMemoryConfig& config) {
  const ScopedEnvVar env("SECMEM_BATCH_REENC", "0");
  slot.emplace(config);
}

TEST(BatchedWritePath, SaveImagesBitIdenticalUnderOverflowFuzz) {
  // Same operation stream through a batched and a scalar engine; hot
  // rewrites push delta counters past kDeltaMax every round, so the
  // stream is re-encryption heavy. After every round the two engines'
  // save images must match bit for bit — ciphertext, lanes, counter
  // lines, tree, everything the image seals.
  SecureMemoryConfig config;
  config.size_bytes = 256 * 1024;
  SecureMemory batched(config);
  std::optional<SecureMemory> scalar_slot;
  emplace_scalar_engine(scalar_slot, config);
  SecureMemory& scalar = *scalar_slot;

  Xoshiro256 rng(0xba7c4);
  for (int round = 0; round < 6; ++round) {
    // A hot block rewritten past the delta budget forces group
    // re-encryption; neighbors give the group non-trivial content.
    const std::uint64_t hot = rng.next_below(batched.num_blocks());
    for (int i = 0; i < 40; ++i) {
      const DataBlock fill = pattern(rng.next());
      const std::uint64_t near =
          ((hot & ~63ULL) + rng.next_below(64)) % batched.num_blocks();
      ASSERT_EQ(batched.write_block(near, fill), Status::kOk);
      ASSERT_EQ(scalar.write_block(near, fill), Status::kOk);
    }
    for (int i = 0; i < 140; ++i) {
      const DataBlock fill = pattern(rng.next());
      ASSERT_EQ(batched.write_block(hot, fill), Status::kOk);
      ASSERT_EQ(scalar.write_block(hot, fill), Status::kOk);
    }

    std::vector<std::byte> batched_img, scalar_img;
    ASSERT_EQ(batched.save(batched_img), Status::kOk);
    ASSERT_EQ(scalar.save(scalar_img), Status::kOk);
    ASSERT_EQ(batched_img, scalar_img) << "round " << round;
  }
  // The differential only means something if the batched path actually
  // ran: both engines must have re-encrypted, with identical counts.
  EXPECT_GT(batched.stats().group_reencryptions, 0u);
  EXPECT_EQ(batched.stats().group_reencryptions,
            scalar.stats().group_reencryptions);
}

TEST(BatchedWritePath, WriteBlocksBatchMatchesScalarImages) {
  // The span-batch entry point takes the same reencrypt_group drain;
  // drive it with group-overlapping batches on both engines.
  SecureMemoryConfig config;
  config.size_bytes = 128 * 1024;
  SecureMemory batched(config);
  std::optional<SecureMemory> scalar_slot;
  emplace_scalar_engine(scalar_slot, config);
  SecureMemory& scalar = *scalar_slot;

  Xoshiro256 rng(0x5eed);
  std::vector<BlockWrite> writes;
  for (int round = 0; round < 4; ++round) {
    writes.clear();
    const std::uint64_t base = rng.next_below(batched.num_blocks()) & ~63ULL;
    for (int i = 0; i < 200; ++i)  // heavy repeats inside one group
      writes.push_back({base + rng.next_below(8), pattern(rng.next())});
    ASSERT_EQ(batched.write_blocks(writes), Status::kOk);
    ASSERT_EQ(scalar.write_blocks(writes), Status::kOk);
  }

  std::vector<std::byte> batched_img, scalar_img;
  ASSERT_EQ(batched.save(batched_img), Status::kOk);
  ASSERT_EQ(scalar.save(scalar_img), Status::kOk);
  EXPECT_EQ(batched_img, scalar_img);
  EXPECT_EQ(batched.stats().group_reencryptions,
            scalar.stats().group_reencryptions);
}

TEST(BatchedWritePath, ReadbackUnaffectedByDrainShape) {
  // Last-writer-wins readback through both engines after a re-encryption
  // storm: the drain shape must never change WHAT is stored.
  SecureMemoryConfig config;
  config.size_bytes = 64 * 1024;
  SecureMemory batched(config);
  std::optional<SecureMemory> scalar_slot;
  emplace_scalar_engine(scalar_slot, config);
  SecureMemory& scalar = *scalar_slot;

  std::vector<DataBlock> truth(batched.num_blocks());
  Xoshiro256 rng(0xfeed);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t block = rng.next_below(batched.num_blocks() / 4);
    const DataBlock fill = pattern(rng.next());
    truth[block] = fill;
    ASSERT_EQ(batched.write_block(block, fill), Status::kOk);
    ASSERT_EQ(scalar.write_block(block, fill), Status::kOk);
  }
  for (std::uint64_t b = 0; b < batched.num_blocks() / 4; ++b) {
    const auto via_batched = batched.read_block(b);
    const auto via_scalar = scalar.read_block(b);
    ASSERT_EQ(via_batched.status, ReadStatus::kOk);
    ASSERT_EQ(via_scalar.status, ReadStatus::kOk);
    EXPECT_EQ(via_batched.data, truth[b]);
    EXPECT_EQ(via_scalar.data, truth[b]);
  }
}

TEST(BatchedWritePath, ShardedOverflowStormIsRaceFree) {
  // Overflow storm across a sharded region: every thread hammers hot
  // blocks in every shard, so group re-encryptions fire constantly and
  // concurrently (one per shard at a time, under shard locks). Run under
  // the TSan CI leg this is a data-race detector for the batched drain;
  // everywhere it is a last-writer-wins correctness check.
  SecureMemoryConfig config;
  config.size_bytes = 256 * 1024;
  ShardedSecureMemory memory(config, 4);
  const unsigned granule = memory.granule_blocks();
  constexpr unsigned kThreads = 4;
  constexpr int kOpsPerThread = 2000;

  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(0x570 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Concentrate on a few blocks per shard — maximal overflow rate.
        const std::uint64_t shard = rng.next_below(4);
        const std::uint64_t block =
            (shard * granule + rng.next_below(4)) % memory.num_blocks();
        if (memory.write_block(block, pattern(t * 1000003ULL + i)) !=
            Status::kOk)
          ++failures;
        if (i % 7 == 0 &&
            memory.read_block(block).status != ReadStatus::kOk)
          ++failures;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(memory.stats().group_reencryptions, 0u);

  // Quiescent: every block still verifies.
  for (std::uint64_t b = 0; b < memory.num_blocks(); ++b)
    EXPECT_EQ(memory.read_block(b).status, ReadStatus::kOk);
}

}  // namespace
}  // namespace secmem
