#include "cache/hierarchy.h"

#include <gtest/gtest.h>

#include <map>

namespace secmem {
namespace {

HierarchyConfig tiny_hierarchy() {
  HierarchyConfig config;
  config.cores = 2;
  config.l1 = {1024, 2, 64};   // 16 lines
  config.l2 = {4096, 4, 64};   // 64 lines
  config.l3 = {16384, 4, 64};  // 256 lines
  return config;
}

class HierarchyTest : public ::testing::Test {
 protected:
  StatRegistry stats;
  CacheHierarchy hierarchy{tiny_hierarchy(), stats};
};

TEST_F(HierarchyTest, ColdMissGoesToMemory) {
  const auto outcome = hierarchy.access(0, 0x10000, false);
  EXPECT_EQ(outcome.served_by, ServedBy::kMemory);
  EXPECT_TRUE(outcome.writebacks.empty());
}

TEST_F(HierarchyTest, SecondAccessHitsL1) {
  hierarchy.access(0, 0x10000, false);
  const auto outcome = hierarchy.access(0, 0x10000, false);
  EXPECT_EQ(outcome.served_by, ServedBy::kL1);
  EXPECT_EQ(outcome.hit_latency, hierarchy.config().l1_latency);
}

TEST_F(HierarchyTest, OtherCoreHitsSharedL3) {
  hierarchy.access(0, 0x10000, false);
  const auto outcome = hierarchy.access(1, 0x10000, false);
  EXPECT_EQ(outcome.served_by, ServedBy::kL3);
}

TEST_F(HierarchyTest, DirtyLineEventuallyWritesBack) {
  // Write a line, then stream enough distinct lines through to force it
  // out of L1 -> L2 -> L3 -> memory.
  hierarchy.access(0, 0x0, true);
  std::vector<std::uint64_t> writebacks;
  for (std::uint64_t i = 1; i < 2000; ++i) {
    const auto outcome = hierarchy.access(0, i * 64, true);
    for (const auto wb : outcome.writebacks) writebacks.push_back(wb);
  }
  bool found = false;
  for (const auto wb : writebacks)
    if (wb == 0x0) found = true;
  EXPECT_TRUE(found) << "dirty line 0x0 never reached memory";
}

TEST_F(HierarchyTest, CleanLinesNeverWriteBack) {
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const auto outcome = hierarchy.access(0, i * 64, false);
    EXPECT_TRUE(outcome.writebacks.empty()) << "read-only stream wrote back";
  }
}

TEST_F(HierarchyTest, DirtinessMigratesUpFromL2) {
  // Make a line dirty, push it to L2 by conflict, re-access (promote to
  // L1), push it out again — it must still write back eventually.
  hierarchy.access(0, 0x0, true);
  // L1 is 2-way, 8 sets: two more fills of set 0 evict line 0 into L2.
  hierarchy.access(0, 8 * 64, false);
  hierarchy.access(0, 16 * 64, false);
  // Promote back to L1 (read — would lose dirtiness if buggy).
  const auto promoted = hierarchy.access(0, 0x0, false);
  EXPECT_EQ(promoted.served_by, ServedBy::kL2);
  std::vector<std::uint64_t> writebacks;
  for (std::uint64_t i = 1; i < 3000; ++i) {
    const auto outcome = hierarchy.access(0, i * 64, false);
    for (const auto wb : outcome.writebacks) writebacks.push_back(wb);
  }
  for (const auto wb : hierarchy.flush_all()) writebacks.push_back(wb);
  bool found = false;
  for (const auto wb : writebacks)
    if (wb == 0x0) found = true;
  EXPECT_TRUE(found) << "dirtiness lost during L2->L1 promotion";
}

TEST_F(HierarchyTest, FlushAllDrainsEveryDirtyLine) {
  for (std::uint64_t i = 0; i < 10; ++i) hierarchy.access(0, i * 64, true);
  const auto writebacks = hierarchy.flush_all();
  EXPECT_EQ(writebacks.size(), 10u);
}

TEST_F(HierarchyTest, StatsCountersAdvance) {
  hierarchy.access(0, 0x40, false);
  hierarchy.access(0, 0x40, false);
  EXPECT_EQ(stats.counter_value("cache.l1.hits"), 1u);
  EXPECT_EQ(stats.counter_value("cache.l1.misses"), 1u);
  EXPECT_EQ(stats.counter_value("cache.l3.misses"), 1u);
}

TEST_F(HierarchyTest, WriteMissAllocates) {
  hierarchy.access(0, 0x77777, true);
  const auto outcome = hierarchy.access(0, 0x77777, false);
  EXPECT_EQ(outcome.served_by, ServedBy::kL1);
}

TEST_F(HierarchyTest, CapacityBoundsRespected) {
  // Touch far more lines than the hierarchy holds; total resident lines
  // can never exceed the sum of level capacities.
  for (std::uint64_t i = 0; i < 5000; ++i) hierarchy.access(0, i * 64, false);
  // Re-touch a recent window: those must hit somewhere.
  int hits = 0;
  for (std::uint64_t i = 4990; i < 5000; ++i) {
    if (hierarchy.access(0, i * 64, false).served_by != ServedBy::kMemory)
      ++hits;
  }
  EXPECT_EQ(hits, 10) << "MRU lines fell out of a 3-level hierarchy";
  // And ancient lines must have been evicted (capacity is finite).
  EXPECT_EQ(hierarchy.access(0, 0, false).served_by, ServedBy::kMemory);
}

TEST_F(HierarchyTest, WritebackAddressesAreLineAligned) {
  std::vector<std::uint64_t> writebacks;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    const auto outcome = hierarchy.access(0, i * 64 + 13, true);
    for (const auto wb : outcome.writebacks) writebacks.push_back(wb);
  }
  ASSERT_FALSE(writebacks.empty());
  for (const auto wb : writebacks) EXPECT_EQ(wb % 64, 0u);
}

TEST_F(HierarchyTest, EachDirtyLineWritesBackExactlyOnce) {
  // Write N distinct lines once each, stream them all out, and count:
  // every dirty line must surface exactly once (no loss, no duplication).
  constexpr std::uint64_t kLines = 64;
  for (std::uint64_t i = 0; i < kLines; ++i)
    hierarchy.access(0, (1 << 20) + i * 64, true);
  std::map<std::uint64_t, int> seen;
  for (std::uint64_t i = 0; i < 4000; ++i) {
    const auto outcome = hierarchy.access(0, i * 64, false);
    for (const auto wb : outcome.writebacks) ++seen[wb];
  }
  for (const auto wb : hierarchy.flush_all()) ++seen[wb];
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < kLines; ++i) {
    const auto it = seen.find((1 << 20) + i * 64);
    ASSERT_NE(it, seen.end()) << "dirty line " << i << " lost";
    EXPECT_EQ(it->second, 1) << "line " << i << " written back twice";
    ++total;
  }
  EXPECT_EQ(total, kLines);
}

}  // namespace
}  // namespace secmem
