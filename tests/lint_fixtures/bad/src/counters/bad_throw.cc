// Fixture: the no-throw-engine scope covers src/counters/ too.
struct OverflowError {};

void delta_overflow() {
  throw OverflowError{};  // rule: no-throw-engine
}
