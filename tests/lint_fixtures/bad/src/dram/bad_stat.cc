// Fixture: stat names outside the registered namespaces.
#include "common/stats.h"

void publish(secmem::StatRegistry& registry) {
  registry.counter("bogus.reads");       // rule: stat-name
  registry.scalar("typo_engine.ipc");    // rule: stat-name
  registry.histogram("dram.latency");    // fine: registered namespace
}
