// Fixture: data-dependent control flow on secret-named values in
// crypto code.
// Never compiled — scanned by secmem-lint in tests/test_lint.cc.
#include <cstdint>

std::uint64_t leak_if(const std::uint8_t* key, std::uint64_t tag) {
  if (key[0] & 1) return 3;  // rule: secret-branch
  return tag ? 1 : 2;        // rule: secret-branch (ternary)
}

bool leak_short_circuit(std::uint64_t tag, std::uint64_t pad) {
  return tag != 0 && pad != 0;  // rule: secret-branch (both operands)
}
