// Fixture: reaching around the crypto_backend seam.
#include <immintrin.h>          // rule: crypto-include
#include "crypto/aes128_ni.cc"  // rule: crypto-include
#include "crypto/gf64_clmul.cc" // rule: crypto-include
