// Fixture: non-reproducible randomness in simulator code.
#include <cstdlib>
#include <random>

unsigned roll() {
  std::random_device rd;            // rule: sim-rand
  std::mt19937 gen(rd());           // rule: sim-rand
  return gen() + rand();            // rule: sim-rand
}
