// Fixture: SECMEM_GUARDED_BY members touched in member functions that
// construct no lock guard and carry no annotation.
// Never compiled — scanned by secmem-lint in tests/test_lint.cc.
#pragma once
#include "common/thread_annotations.h"

class BadLocked {
 public:
  int unguarded_peek() const {
    return gen_;  // rule: lock-discipline
  }
  void unguarded_bump() {
    table_ = gen_;  // rule: lock-discipline (both members)
  }

 private:
  mutable secmem::Mutex mu_;
  int gen_ SECMEM_GUARDED_BY(mu_);
  int table_ SECMEM_GUARDED_BY(mu_);
};
