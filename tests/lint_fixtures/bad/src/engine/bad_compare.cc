// Fixture: every way to write a variable-time verification compare.
// Never compiled — scanned by secmem-lint in tests/test_lint.cc.
#include <algorithm>
#include <cstring>

bool check_tag(const unsigned char* a, const unsigned char* b) {
  return std::memcmp(a, b, 7) == 0;  // rule: ct-compare
}

bool check_tag_unqualified(const unsigned char* a, const unsigned char* b) {
  return memcmp(a, b, 7) == 0;  // rule: ct-compare
}

bool check_line(const unsigned char* a, const unsigned char* b) {
  return std::equal(a, a + 64, b);  // rule: ct-compare
}
