// Fixture: an inline suppression that suppresses nothing — stale under
// --check-allowlist, invisible without it.
// Never compiled — scanned by secmem-lint in tests/test_lint.cc.
int nothing_to_suppress() {
  return 0;  // secmem-lint: allow(sim-rand)
}
