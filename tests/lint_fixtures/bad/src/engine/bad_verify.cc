// Fixture: stream-sourced bytes reaching member state with no
// verification anywhere in the function.
// Never compiled — scanned by secmem-lint in tests/test_lint.cc.
#include <algorithm>
#include <istream>
#include <vector>

class BadEngine {
 public:
  bool restore_image(std::istream& in) {
    std::vector<unsigned char> buf(64);
    in.read(reinterpret_cast<char*>(buf.data()), 64);
    ciphertext_ = buf;  // rule: verify-before-apply
    std::copy(buf.begin(), buf.end(), macs_.begin());  // rule: verify-before-apply
    return true;
  }

  bool apply_delta(std::istream& in) {
    std::vector<unsigned char> cmds(32);
    in.read(reinterpret_cast<char*>(cmds.data()), 32);
    Sections sections{ciphertext_, macs_};
    apply_commands(sections, cmds);  // rule: verify-before-apply
    return true;
  }

  StagedDelta stage_delta(std::istream& in) {
    StagedDelta staged;
    in.read(reinterpret_cast<char*>(staged.cmd), 16);
    return staged;  // rule: verify-before-apply
  }

 private:
  std::vector<unsigned char> ciphertext_;
  std::vector<unsigned char> macs_;
};
