// Fixture: Status results silently discarded.
// Never compiled — scanned by secmem-lint in tests/test_lint.cc.
#include "common/status.h"

secmem::Status do_work();
secmem::Status do_more();
bool status_ok(secmem::Status s);
void consume(secmem::Status s);

void discard_entirely() {
  secmem::Status st = do_work();  // rule: status-discard (never consulted)
}

void overwrite_before_read() {
  secmem::Status st = do_work();
  st = do_more();  // rule: status-discard (first result lost)
  consume(st);
}

int trailing_dead_write() {
  secmem::Status st = do_work();
  if (!status_ok(st)) return 1;
  st = do_more();  // rule: status-discard (value never read)
  return 0;
}
