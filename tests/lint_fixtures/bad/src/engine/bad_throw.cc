// Fixture: engine-datapath throws that must trip no-throw-engine.
// Never compiled — scanned by secmem-lint in tests/test_lint.cc.
#include <stdexcept>

void poisoned_write() {
  throw std::runtime_error("region poisoned");  // rule: no-throw-engine
}

void tampered_read() {
  throw std::logic_error("counter tampered");  // rule: no-throw-engine
}

void rethrow_to_caller() {
  try {
    poisoned_write();
  } catch (...) {
    throw;  // rule: no-throw-engine (rethrow still crosses the boundary)
  }
}
