// Fixture: a naked standard mutex that thread-safety analysis cannot see.
#pragma once
#include <mutex>
#include <shared_mutex>

class BadEngine {
  mutable std::mutex mu_;               // rule: raw-mutex
  mutable std::shared_mutex table_mu_;  // rule: raw-mutex

  int peek() const {
    std::shared_lock guard(table_mu_);  // rule: raw-mutex
    return 0;
  }
  void raw_reader() const {
    table_mu_.lock_shared();    // rule: raw-mutex
    table_mu_.unlock_shared();  // rule: raw-mutex
  }
};
