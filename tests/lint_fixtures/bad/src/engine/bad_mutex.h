// Fixture: a naked standard mutex that thread-safety analysis cannot see.
#pragma once
#include <mutex>
#include <shared_mutex>

class BadEngine {
  mutable std::mutex mu_;               // rule: raw-mutex
  mutable std::shared_mutex table_mu_;  // rule: raw-mutex
};
