// Fixture: an env knob with no CI leg and no documentation (this
// fixture root has neither scripts/ci.sh nor README/ARCHITECTURE).
// Never compiled — scanned by secmem-lint in tests/test_lint.cc.
#include <cstdlib>

bool rogue_enabled() {
  const char* v = std::getenv("SECMEM_ROGUE_KNOB");  // rule: knob-registry (x2)
  return v && v[0] == '1';
}
