// Fixture: a fully registered env knob — this fixture root's
// scripts/ci.sh has a leg for it and README.md documents it.
// Never compiled — scanned by secmem-lint in tests/test_lint.cc.
#include <cstdlib>

bool good_knob_enabled() {
  const char* v = std::getenv("SECMEM_GOOD_KNOB");
  return v == nullptr || v[0] != '0';
}
