// Fixture: argument-contract throws and near-misses lint clean.
//
// A comment mentioning `throw std::runtime_error` must not fire — the
// linter strips comments before token matching.
#include <stdexcept>
#include <string>

void bounds_check(unsigned long long block, unsigned long long limit) {
  if (block >= limit)
    throw std::out_of_range("block " + std::to_string(block));
}

void geometry_check(unsigned shards) {
  if (shards == 0) throw std::invalid_argument("need >= 1 shard");
}

void image_check(unsigned long long bytes) {
  if (bytes > (1ULL << 32)) throw std::length_error("image too large");
}

void deprecated_shim() {
  // Pre-Status contract kept alive for one PR behind an explicit allow.
  throw std::runtime_error("legacy");  // secmem-lint: allow(no-throw-engine)
}

const char* doc() { return "callers migrate to secmem::Status, not throw"; }
