// Fixture: staging paths that verify before applying — and the
// near-miss shapes the dataflow rule must NOT fire on.
// Never compiled — scanned by secmem-lint in tests/test_lint.cc.
#include <istream>
#include <utility>
#include <vector>

class GoodEngine {
 public:
  // Verification dominates the member write: clean.
  bool restore_image(std::istream& in) {
    std::vector<unsigned char> buf(64);
    in.read(reinterpret_cast<char*>(buf.data()), 64);
    unsigned char tag[8] = {};
    in.read(reinterpret_cast<char*>(tag), 8);
    if (!secmem::ct_equal(tag, expected_, 8)) return false;
    ciphertext_ = buf;
    return true;
  }

  // Tainted return dominated by a verify_* call: clean.
  Staged stage_restore(std::istream& in) {
    Staged staged{std::move(arena_)};  // move ADOPTS the member, no alias
    in.read(reinterpret_cast<char*>(staged.cmd), 16);
    if (!verify_seal(staged)) return Staged{};
    return staged;
  }

  // Delegating wrapper: returns a call result, not a tainted local.
  bool restore(std::istream& in) { return restore_tail(in); }

  // A member passed by VALUE as a size is not a member alias; filling
  // the local from the stream mutates no member state.
  bool stage_parts(std::istream& in) {
    std::vector<unsigned char> parts(count_);
    in.read(reinterpret_cast<char*>(parts.data()), 8);
    local_use(parts);
    return true;
  }

 private:
  bool restore_tail(std::istream& in);
  std::vector<unsigned char> ciphertext_;
  unsigned char expected_[8];
  Arena arena_;
  unsigned count_ = 0;
};
