// Fixture: Status flows the discard rule must NOT fire on.
// Never compiled — scanned by secmem-lint in tests/test_lint.cc.
#include "common/status.h"

secmem::Status first();
secmem::Status next();
bool status_ok(secmem::Status s);

// Both arms write, the join reads: not an overwrite.
secmem::Status branches(bool flip) {
  secmem::Status st = first();
  if (flip)
    st = next();
  else
    st = first();
  return st;
}

// The loop back edge carries the last write into the next iteration's
// read: not a trailing dead write.
int loop_back_edge() {
  secmem::Status st = first();
  int bad = 0;
  for (int i = 0; i < 3; ++i) {
    if (!status_ok(st)) ++bad;
    st = next();
  }
  return bad;
}
