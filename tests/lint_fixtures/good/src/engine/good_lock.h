// Fixture: every sanctioned way to touch a guarded member.
// Never compiled — scanned by secmem-lint in tests/test_lint.cc.
#pragma once
#include "common/thread_annotations.h"

class GoodLocked {
 public:
  GoodLocked() { gen_ = 0; }  // constructors own the object exclusively

  int peek() const {
    const secmem::MutexLock lock(&mu_);
    return gen_;
  }

  int caller_locked_peek() const SECMEM_REQUIRES(mu_) { return gen_; }

  // Runtime lock set beyond the analysis — explicit opt-out.
  int racy_stats_peek() const SECMEM_NO_THREAD_SAFETY_ANALYSIS {
    return gen_;
  }

 private:
  mutable secmem::Mutex mu_;
  int gen_ SECMEM_GUARDED_BY(mu_);
};
