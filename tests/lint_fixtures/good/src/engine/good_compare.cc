// Fixture: everything here must lint clean.
//
// A comment mentioning memcmp and std::mutex must not fire — the linter
// strips comments before token matching.
#include "common/ct.h"
#include "common/thread_annotations.h"

static const char* kDoc = "prefer ct_equal over memcmp";  // string, no hit

bool check_tag(const unsigned char* a, const unsigned char* b) {
  return secmem::ct_equal(a, b, 7);
}

bool magic_header(const char* a, const char* b) {
  // Public framing bytes: exempted at the call site.
  return std::memcmp(a, b, 8) == 0;  // secmem-lint: allow(ct-compare)
}

const char* doc() { return kDoc; }
