// Fixture: branch-free crypto shapes and the public-shape exemptions
// the secret-branch rule must NOT fire on.
// Never compiled — scanned by secmem-lint in tests/test_lint.cc.
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

// Straight-line XOR: secrets flow through data, never control.
void xor_pad(std::uint8_t* out, const std::uint8_t* pad, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = out[i] ^ pad[i];
}

// Sizes are public; assert arguments are contract checks, compiled out.
std::uint64_t fold_tags(const std::vector<std::uint64_t>& tags,
                        const std::vector<std::uint64_t>& pads) {
  assert(tags.size() == pads.size() && !tags.empty());
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < tags.size(); ++i) acc ^= tags[i] ^ pads[i];
  return acc;
}

// Range-for over a secret container: the iteration count is its public
// size, the values never steer control flow.
std::uint64_t sum_keys(const std::vector<std::uint64_t>& keys) {
  std::uint64_t acc = 0;
  for (const std::uint64_t k : keys) acc += k;
  return acc;
}
