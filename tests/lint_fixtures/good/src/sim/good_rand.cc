// Fixture: seeded, reproducible randomness — and identifiers that merely
// contain rule substrings (w_random, operand) must not fire.
#include "common/rng.h"

struct Params {
  double w_random = 0.2;  // substring "random" inside an identifier: fine
};

unsigned roll(secmem::Xoshiro256& rng, unsigned operand) {
  return static_cast<unsigned>(rng.next_below(6)) + operand;
}
