#!/usr/bin/env bash
# Fixture CI script: gives good_knob.cc's knob the required leg.
set -euo pipefail
SECMEM_GOOD_KNOB=0 ctest --preset default
