// Minimal recursive-descent JSON parser for test assertions on the
// registry export (common/stats.h write_json). Supports the full JSON
// grammar minus \uXXXX escapes — enough to round-trip every metrics dump
// the repo emits, with no third-party dependency in the test tree.
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace json_lite {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      data = nullptr;

  bool is_object() const { return std::holds_alternative<Object>(data); }
  bool is_array() const { return std::holds_alternative<Array>(data); }
  bool is_number() const { return std::holds_alternative<double>(data); }
  bool is_string() const {
    return std::holds_alternative<std::string>(data);
  }

  const Object& object() const { return std::get<Object>(data); }
  const Array& array() const { return std::get<Array>(data); }
  double number() const { return std::get<double>(data); }
  const std::string& str() const { return std::get<std::string>(data); }

  /// Member lookup; throws if absent or not an object.
  const Value& at(const std::string& key) const {
    const auto it = object().find(key);
    if (it == object().end())
      throw std::out_of_range("json_lite: no member '" + key + "'");
    return it->second;
  }
  bool has(const std::string& key) const {
    return is_object() && object().count(key) != 0;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size())
      throw std::runtime_error("json_lite: trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size())
      throw std::runtime_error("json_lite: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("json_lite: expected '") + c +
                               "' got '" + text_[pos_] + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value{parse_string()};
      case 't':
        if (consume_literal("true")) return Value{true};
        break;
      case 'f':
        if (consume_literal("false")) return Value{false};
        break;
      case 'n':
        if (consume_literal("null")) return Value{nullptr};
        break;
      default: return parse_number();
    }
    throw std::runtime_error("json_lite: invalid literal");
  }

  Value parse_object() {
    expect('{');
    Object members;
    if (peek() == '}') {
      ++pos_;
      return Value{std::move(members)};
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      members.emplace(std::move(key), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value{std::move(members)};
    }
  }

  Value parse_array() {
    expect('[');
    Array items;
    if (peek() == ']') {
      ++pos_;
      return Value{std::move(items)};
    }
    while (true) {
      items.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value{std::move(items)};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size())
          throw std::runtime_error("json_lite: bad escape");
        switch (text_[pos_++]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          default:
            throw std::runtime_error("json_lite: unsupported escape");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size())
      throw std::runtime_error("json_lite: unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("json_lite: bad number");
    return Value{std::stod(std::string(text_.substr(start, pos_ - start)))};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline Value parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace json_lite
