// Streaming snapshot pipeline tests: round-trips and tamper fuzz across
// all three engines in both pipeline modes (batched default vs the
// SECMEM_BATCH_SNAPSHOT=0 scalar reference), bit-identical image format
// across modes, rejection contracts (truncation, byte flips) leaving a
// usable region, and restore under a stale hot tree cache.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "engine/concurrent.h"
#include "engine/secure_memory.h"
#include "engine/sharded_memory.h"

namespace secmem {
namespace {

/// Scoped environment override (restores the previous value on exit).
/// The snapshot kill switch is sampled at engine construction, so the
/// scalar-reference engines are built inside one of these.
class EnvOverride {
 public:
  EnvOverride(const char* name, const char* value) : name_(name) {
    if (const char* prev = std::getenv(name)) prev_ = prev;
    setenv(name, value, 1);
  }
  ~EnvOverride() {
    if (prev_)
      setenv(name_.c_str(), prev_->c_str(), 1);
    else
      unsetenv(name_.c_str());
  }
  EnvOverride(const EnvOverride&) = delete;
  EnvOverride& operator=(const EnvOverride&) = delete;

 private:
  std::string name_;
  std::optional<std::string> prev_;
};

DataBlock pattern(std::uint8_t seed) {
  DataBlock b{};
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<std::uint8_t>(seed * 73 + i);
  return b;
}

SecureMemoryConfig small_config() {
  SecureMemoryConfig config;
  config.size_bytes = 32 * 1024;
  return config;
}

/// Uneven writes so counter lines, delta groups, and the tree are all in
/// a non-trivial state before the image is taken.
void populate(SecureMemoryLike& engine, std::uint64_t rng_seed) {
  Xoshiro256 rng(rng_seed);
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(engine.write_block(rng.next_below(engine.num_blocks()),
                                 pattern(static_cast<std::uint8_t>(i))),
              Status::kOk);
  }
  for (std::uint64_t b = 0; b < 64; ++b)
    ASSERT_EQ(engine.write_block(b, pattern(static_cast<std::uint8_t>(b))),
              Status::kOk);
}

void expect_populated(SecureMemoryLike& engine) {
  for (std::uint64_t b = 0; b < 64; ++b) {
    const auto r = engine.read_block(b);
    EXPECT_EQ(r.status, ReadStatus::kOk) << b;
    EXPECT_EQ(r.data, pattern(static_cast<std::uint8_t>(b))) << b;
  }
}

std::string image_of(SecureMemoryLike& engine) {
  std::stringstream out;
  EXPECT_EQ(engine.save(out), Status::kOk);
  return out.str();
}

enum class EngineKind { kPlain, kConcurrent, kSharded };

std::unique_ptr<SecureMemoryLike> make_engine(EngineKind kind) {
  const SecureMemoryConfig config = small_config();
  switch (kind) {
    case EngineKind::kPlain: return std::make_unique<SecureMemory>(config);
    case EngineKind::kConcurrent:
      return std::make_unique<ConcurrentSecureMemory>(config);
    case EngineKind::kSharded:
      return std::make_unique<ShardedSecureMemory>(config, 4);
  }
  return nullptr;
}

class SnapshotPipeline
    : public ::testing::TestWithParam<std::tuple<EngineKind, bool>> {
 protected:
  EngineKind kind() const { return std::get<0>(GetParam()); }
  bool batched() const { return std::get<1>(GetParam()); }
  /// Pins the mode for every engine constructed while it lives.
  std::optional<EnvOverride> pin_;
  void SetUp() override {
    if (!batched()) pin_.emplace("SECMEM_BATCH_SNAPSHOT", "0");
  }
};

TEST_P(SnapshotPipeline, RoundTripRestoresEveryBlock) {
  auto original = make_engine(kind());
  populate(*original, 7);
  const std::string image = image_of(*original);

  auto restored = make_engine(kind());
  std::istringstream in(image);
  ASSERT_TRUE(restored->restore(in));
  expect_populated(*restored);

  // The restored region keeps working: fresh writes land and read back.
  ASSERT_EQ(restored->write_block(3, pattern(0xC3)), Status::kOk);
  EXPECT_EQ(restored->read_block(3).data, pattern(0xC3));
}

TEST_P(SnapshotPipeline, TruncatedImageRejectedRegionStaysUsable) {
  auto original = make_engine(kind());
  populate(*original, 11);
  const std::string image = image_of(*original);

  auto victim = make_engine(kind());
  populate(*victim, 13);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{17}, image.size() / 2,
        image.size() - 1}) {
    std::istringstream truncated(image.substr(0, keep));
    EXPECT_FALSE(victim->restore(truncated)) << "kept " << keep;
  }
  // Whatever the engine's failure posture (plain resets to a zeroed
  // region, sharded keeps the old state), the region must stay usable.
  ASSERT_EQ(victim->write_block(5, pattern(0x55)), Status::kOk);
  EXPECT_EQ(victim->read_block(5).status, ReadStatus::kOk);
  EXPECT_EQ(victim->read_block(5).data, pattern(0x55));
}

TEST_P(SnapshotPipeline, FlippedByteFuzzNeverGoesUnnoticed) {
  auto original = make_engine(kind());
  populate(*original, 23);
  const std::string image = image_of(*original);

  Xoshiro256 rng(0xF1);
  for (int trial = 0; trial < 24; ++trial) {
    std::string bytes = image;
    const std::size_t offset = rng.next_below(bytes.size());
    const auto flip = static_cast<std::uint8_t>(1 + rng.next_below(255));
    bytes[offset] = static_cast<char>(
        static_cast<std::uint8_t>(bytes[offset]) ^ flip);

    auto victim = make_engine(kind());
    std::istringstream in(bytes);
    if (!victim->restore(in)) continue;  // rejected at the sealed root
    // Counter tree and sealed root verified clean, so the flip sits in a
    // data/lane/MAC section: it must surface on read as a correction, a
    // verdict, or (single-bit repairs) the original plaintext.
    bool noticed = false;
    for (std::uint64_t b = 0; b < 64 && !noticed; ++b) {
      const auto r = victim->read_block(b);
      noticed = r.status != ReadStatus::kOk ||
                r.data != pattern(static_cast<std::uint8_t>(b)) ||
                r.mac_evaluations > 0;
    }
    // Flips past the first 64 blocks' sections are invisible to these
    // reads — scrub the whole region to force full coverage.
    if (!noticed) {
      const auto report = victim->scrub_all(/*deep=*/true);
      noticed = report.repaired_mac + report.repaired_data +
                    report.uncorrectable + report.counter_tampered >
                0;
    }
    EXPECT_TRUE(noticed) << "flip at offset " << offset << " (image size "
                         << image.size() << ") went unnoticed";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesBothModes, SnapshotPipeline,
    ::testing::Combine(::testing::Values(EngineKind::kPlain,
                                         EngineKind::kConcurrent,
                                         EngineKind::kSharded),
                       ::testing::Bool()),
    [](const auto& info) {
      const char* engine =
          std::get<0>(info.param) == EngineKind::kPlain ? "Plain"
          : std::get<0>(info.param) == EngineKind::kConcurrent
              ? "Concurrent"
              : "Sharded";
      return std::string(engine) +
             (std::get<1>(info.param) ? "Batched" : "Scalar");
    });

// ------------------------------------------------ cross-mode invariants

/// The batched pipeline is an I/O-shape change only: images must be
/// byte-identical to the scalar reference, in both directions.
TEST(SnapshotModeEquivalence, ImagesBitIdenticalAcrossModes) {
  for (const EngineKind kind :
       {EngineKind::kPlain, EngineKind::kConcurrent, EngineKind::kSharded}) {
    auto batched = make_engine(kind);
    populate(*batched, 31);
    const std::string batched_image = image_of(*batched);

    EnvOverride pin("SECMEM_BATCH_SNAPSHOT", "0");
    auto scalar = make_engine(kind);
    populate(*scalar, 31);
    const std::string scalar_image = image_of(*scalar);

    EXPECT_EQ(batched_image, scalar_image)
        << "engine kind " << static_cast<int>(kind);
  }
}

TEST(SnapshotModeEquivalence, CrossModeRestoreWorks) {
  // Save batched, restore scalar — and the reverse.
  auto batched = make_engine(EngineKind::kPlain);
  populate(*batched, 37);
  const std::string batched_image = image_of(*batched);
  {
    EnvOverride pin("SECMEM_BATCH_SNAPSHOT", "0");
    auto scalar = make_engine(EngineKind::kPlain);
    std::istringstream in(batched_image);
    ASSERT_TRUE(scalar->restore(in));
    expect_populated(*scalar);

    populate(*scalar, 41);
    const std::string scalar_image = image_of(*scalar);
    std::istringstream back(scalar_image);
    ASSERT_TRUE(batched->restore(back));
  }
  expect_populated(*batched);
}

// ---------------------------------------------------- sharded atomicity

TEST(ShardedSnapshot, FailedRestoreLeavesOldStateIntact) {
  ShardedSecureMemory donor(small_config(), 4);
  populate(donor, 43);
  std::string image = image_of(donor);

  // Corrupt deep inside the LAST shard's slice: earlier shards stage
  // clean, so only all-or-nothing commit semantics keep them out of the
  // live region.
  image[image.size() - 70] = static_cast<char>(image[image.size() - 70] ^ 0x20);

  ShardedSecureMemory victim(small_config(), 4);
  populate(victim, 47);
  std::istringstream in(image);
  ASSERT_FALSE(victim.restore(in));
  EXPECT_FALSE(victim.poisoned());
  for (std::uint64_t b = 0; b < 64; ++b) {
    const auto r = victim.read_block(b);
    EXPECT_EQ(r.status, ReadStatus::kOk) << b;
    EXPECT_EQ(r.data, pattern(static_cast<std::uint8_t>(b))) << b;
  }
}

// --------------------------------------------------- stale tree cache

TEST(SnapshotTreeCache, RestoreInvalidatesHotTreeCache) {
  SecureMemory engine(small_config());
  populate(engine, 53);
  // Warm the tree cache on the pre-restore tree: repeated reads promote
  // the hot counter lines.
  for (int round = 0; round < 64; ++round)
    for (std::uint64_t b = 0; b < 16; ++b)
      ASSERT_EQ(engine.read_block(b).status, ReadStatus::kOk);

  SecureMemory donor(small_config());
  populate(donor, 59);
  for (std::uint64_t b = 0; b < 64; ++b)
    ASSERT_EQ(donor.write_block(b, pattern(static_cast<std::uint8_t>(b + 64))),
              Status::kOk);
  const std::string image = image_of(donor);

  std::istringstream in(image);
  ASSERT_TRUE(engine.restore(in));
  // Cached verdicts described the old tree; every read must now verify
  // against the restored one and see the donor's data.
  for (std::uint64_t b = 0; b < 64; ++b) {
    const auto r = engine.read_block(b);
    EXPECT_EQ(r.status, ReadStatus::kOk) << b;
    EXPECT_EQ(r.data, pattern(static_cast<std::uint8_t>(b + 64))) << b;
  }
  ASSERT_EQ(engine.write_block(2, pattern(0xEE)), Status::kOk);
  EXPECT_EQ(engine.read_block(2).data, pattern(0xEE));
}

}  // namespace
}  // namespace secmem
