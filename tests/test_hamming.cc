#include "ecc/hamming.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace secmem {
namespace {

TEST(Hamming, ParityWidths) {
  // (72,64): 7 Hamming + 1 overall = 8 parity bits — classic DIMM ECC.
  EXPECT_EQ(HammingSecDed(64).parity_bits(), 8u);
  // 56-bit MAC protection: 6 Hamming + 1 overall = 7 bits (paper §3.3).
  EXPECT_EQ(HammingSecDed(56).parity_bits(), 7u);
  EXPECT_EQ(HammingSecDed(4).parity_bits(), 4u);
  EXPECT_EQ(HammingSecDed(11).parity_bits(), 5u);
}

TEST(Hamming, CleanDecode) {
  Xoshiro256 rng(1);
  for (unsigned k : {4u, 11u, 26u, 56u, 64u}) {
    HammingSecDed code(k);
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t data =
          rng.next() & (k == 64 ? ~0ULL : ((1ULL << k) - 1));
      const std::uint64_t parity = code.encode(data);
      const auto decoded = code.decode(data, parity);
      EXPECT_EQ(decoded.status, HammingSecDed::Status::kOk);
      EXPECT_EQ(decoded.data, data);
    }
  }
}

// Property sweep: every single-bit error — in data or parity — must be
// corrected; parameterized over the data widths the project uses.
class HammingSingleBit : public ::testing::TestWithParam<unsigned> {};

TEST_P(HammingSingleBit, AllDataBitFlipsCorrected) {
  const unsigned k = GetParam();
  HammingSecDed code(k);
  Xoshiro256 rng(k);
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t data =
        rng.next() & (k == 64 ? ~0ULL : ((1ULL << k) - 1));
    const std::uint64_t parity = code.encode(data);
    for (unsigned bit = 0; bit < k; ++bit) {
      const auto decoded = code.decode(data ^ (1ULL << bit), parity);
      EXPECT_EQ(decoded.status, HammingSecDed::Status::kCorrectedSingle)
          << "k=" << k << " bit=" << bit;
      EXPECT_EQ(decoded.data, data);
    }
  }
}

TEST_P(HammingSingleBit, AllParityBitFlipsCorrected) {
  const unsigned k = GetParam();
  HammingSecDed code(k);
  Xoshiro256 rng(k + 1000);
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t data =
        rng.next() & (k == 64 ? ~0ULL : ((1ULL << k) - 1));
    const std::uint64_t parity = code.encode(data);
    for (unsigned bit = 0; bit < code.parity_bits(); ++bit) {
      const auto decoded = code.decode(data, parity ^ (1ULL << bit));
      EXPECT_EQ(decoded.status, HammingSecDed::Status::kCorrectedSingle)
          << "k=" << k << " parity bit=" << bit;
      EXPECT_EQ(decoded.data, data) << "k=" << k << " parity bit=" << bit;
    }
  }
}

TEST_P(HammingSingleBit, DoubleBitFlipsDetectedNotMiscorrected) {
  const unsigned k = GetParam();
  HammingSecDed code(k);
  Xoshiro256 rng(k + 2000);
  const std::uint64_t data =
      rng.next() & (k == 64 ? ~0ULL : ((1ULL << k) - 1));
  const std::uint64_t parity = code.encode(data);
  // Exhaustive data-data pairs.
  for (unsigned i = 0; i < k; ++i) {
    for (unsigned j = i + 1; j < k; ++j) {
      const auto decoded =
          code.decode(data ^ (1ULL << i) ^ (1ULL << j), parity);
      EXPECT_EQ(decoded.status, HammingSecDed::Status::kDetectedDouble)
          << "k=" << k << " bits " << i << "," << j;
    }
  }
  // Data-parity pairs.
  for (unsigned i = 0; i < k; ++i) {
    for (unsigned p = 0; p < code.parity_bits(); ++p) {
      const auto decoded =
          code.decode(data ^ (1ULL << i), parity ^ (1ULL << p));
      EXPECT_EQ(decoded.status, HammingSecDed::Status::kDetectedDouble)
          << "k=" << k << " data bit " << i << " parity bit " << p;
    }
  }
  // Parity-parity pairs.
  for (unsigned p = 0; p + 1 < code.parity_bits(); ++p) {
    for (unsigned q = p + 1; q < code.parity_bits(); ++q) {
      const auto decoded =
          code.decode(data, parity ^ (1ULL << p) ^ (1ULL << q));
      EXPECT_EQ(decoded.status, HammingSecDed::Status::kDetectedDouble)
          << "k=" << k << " parity bits " << p << "," << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, HammingSingleBit,
                         ::testing::Values(4u, 8u, 16u, 26u, 56u, 64u));

TEST(Hamming, CorrectedParityFieldIsConsistent) {
  // After correcting a parity-bit error, re-decoding the returned pair
  // must be clean.
  HammingSecDed code(56);
  const std::uint64_t data = 0x00FEDCBA98765432ULL;
  const std::uint64_t parity = code.encode(data);
  for (unsigned p = 0; p < code.parity_bits(); ++p) {
    const auto decoded = code.decode(data, parity ^ (1ULL << p));
    ASSERT_EQ(decoded.status, HammingSecDed::Status::kCorrectedSingle);
    const auto redecoded = code.decode(decoded.data, decoded.parity);
    EXPECT_EQ(redecoded.status, HammingSecDed::Status::kOk);
  }
}

}  // namespace
}  // namespace secmem
