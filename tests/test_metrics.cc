// Unit tests for the unified observability layer's core pieces:
// Status vocabulary, registry histograms/snapshots/JSON, the lock-free
// MetricsCell/MetricsSink plane, and the TraceRing.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/stats.h"
#include "common/status.h"
#include "json_lite.h"

namespace {

using namespace secmem;

// ---------------------------------------------------------------- Status

TEST(StatusTest, SeverityOrderingDrivesWorseAndOk) {
  EXPECT_TRUE(status_ok(Status::kOk));
  EXPECT_TRUE(status_ok(Status::kCorrectedMacField));
  EXPECT_TRUE(status_ok(Status::kCorrectedData));
  EXPECT_TRUE(status_ok(Status::kCorrectedWord));
  EXPECT_FALSE(status_ok(Status::kIntegrityViolation));
  EXPECT_FALSE(status_ok(Status::kCounterTampered));

  EXPECT_EQ(Status::kCorrectedData,
            worse(Status::kOk, Status::kCorrectedData));
  EXPECT_EQ(Status::kIntegrityViolation,
            worse(Status::kIntegrityViolation, Status::kCorrectedMacField));
  EXPECT_EQ(Status::kCounterTampered,
            worse(Status::kCounterTampered, Status::kIntegrityViolation));
}

TEST(StatusTest, EveryValueHasAName) {
  for (const Status s :
       {Status::kOk, Status::kCorrectedMacField, Status::kCorrectedData,
        Status::kCorrectedWord, Status::kIntegrityViolation,
        Status::kCounterTampered}) {
    EXPECT_STRNE("?", to_string(s));
  }
}

// --------------------------------------------------------- metric_path

TEST(MetricPathTest, JoinsNonEmptySegments) {
  EXPECT_EQ("engine.shard3.reads",
            metric_path({"engine", "shard3", "reads"}));
  EXPECT_EQ("reads", metric_path({"", "reads"}));
  EXPECT_EQ("engine.reads", metric_path({"engine", "", "reads"}));
  EXPECT_EQ("", metric_path({}));
}

// ----------------------------------------------------------- histograms

TEST(StatHistogramTest, Log2BucketsFollowBitWidth) {
  StatHistogram hist(8, 1, HistScale::kLog2);
  hist.sample(0);  // bucket 0
  hist.sample(1);  // bucket 1
  hist.sample(2);  // bucket 2
  hist.sample(3);  // bucket 2
  hist.sample(4);  // bucket 3
  EXPECT_EQ(1u, hist.bucket(0));
  EXPECT_EQ(1u, hist.bucket(1));
  EXPECT_EQ(2u, hist.bucket(2));
  EXPECT_EQ(1u, hist.bucket(3));
  EXPECT_EQ(5u, hist.total());
  EXPECT_EQ(0u, hist.bucket_lower_bound(0));
  EXPECT_EQ(1u, hist.bucket_lower_bound(1));
  EXPECT_EQ(2u, hist.bucket_lower_bound(2));
  EXPECT_EQ(4u, hist.bucket_lower_bound(3));
}

TEST(StatHistogramTest, RegistryAccessorKeepsFirstShape) {
  StatRegistry reg;
  StatHistogram& h = reg.histogram("lat", 4, 10, HistScale::kLinear);
  EXPECT_EQ(4u, h.bucket_count());
  EXPECT_EQ(10u, h.bucket_width());
  // Re-registration with a different shape returns the original object.
  StatHistogram& again = reg.histogram("lat", 99, 1, HistScale::kLog2);
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(4u, again.bucket_count());
  // The shapeless accessor also resolves to the same histogram.
  EXPECT_EQ(&h, &reg.histogram("lat"));
}

TEST(StatHistogramTest, DumpIncludesHistograms) {
  StatRegistry reg;
  reg.histogram("engine.read_latency", 8, 1, HistScale::kLog2).sample(5);
  reg.counter("engine.reads").inc();
  std::ostringstream os;
  reg.dump(os);
  EXPECT_NE(std::string::npos, os.str().find("engine.read_latency"));
  EXPECT_NE(std::string::npos, os.str().find("engine.reads"));
}

// -------------------------------------------------------------- scalars

TEST(StatScalarTest, MinTracksFirstSampleNotZero) {
  StatScalar s;
  EXPECT_EQ(0.0, s.min());
  s.sample(7.0);
  EXPECT_EQ(7.0, s.min());
  EXPECT_EQ(7.0, s.max());
  s.sample(3.0);
  s.sample(11.0);
  EXPECT_EQ(3.0, s.min());
  EXPECT_EQ(11.0, s.max());
  EXPECT_EQ(7.0, s.mean());
}

TEST(StatScalarTest, MergeIgnoresEmptySources) {
  StatScalar populated;
  populated.sample(5.0);
  StatScalar empty;
  populated.merge(empty);
  EXPECT_EQ(5.0, populated.min());
  EXPECT_EQ(1u, populated.count());

  StatScalar other;
  other.sample(2.0);
  populated.merge(other);
  EXPECT_EQ(2.0, populated.min());
  EXPECT_EQ(5.0, populated.max());
  EXPECT_EQ(2u, populated.count());
}

// ---------------------------------------------------- snapshot and diff

TEST(SnapshotTest, DiffSubtractsCountersAndBuckets) {
  StatRegistry reg;
  reg.counter("ops").inc(10);
  reg.histogram("sizes", 4, 1, HistScale::kLog2).sample(2);
  const RegistrySnapshot before = reg.snapshot();

  reg.counter("ops").inc(5);
  reg.histogram("sizes").sample(2);
  reg.histogram("sizes").sample(0);
  const RegistrySnapshot after = reg.snapshot();

  const RegistrySnapshot delta = snapshot_diff(after, before);
  EXPECT_EQ(5u, delta.counters.at("ops"));
  EXPECT_EQ(2u, delta.histograms.at("sizes").total);
  EXPECT_EQ(1u, delta.histograms.at("sizes").buckets[0]);
  EXPECT_EQ(1u, delta.histograms.at("sizes").buckets[2]);
}

TEST(SnapshotTest, DiffPassesThroughNewEntries) {
  StatRegistry before_reg;
  const RegistrySnapshot before = before_reg.snapshot();
  StatRegistry reg;
  reg.counter("fresh").inc(3);
  const RegistrySnapshot delta = snapshot_diff(reg.snapshot(), before);
  EXPECT_EQ(3u, delta.counters.at("fresh"));
}

// ------------------------------------------------------ JSON round-trip

TEST(JsonExportTest, RoundTripsThroughParser) {
  StatRegistry reg;
  reg.counter("engine.reads").inc(42);
  reg.counter("dram.ch0.row_hits").inc(7);
  reg.scalar("ipc").sample(1.25);
  reg.scalar("ipc").sample(0.75);
  reg.histogram("lat", 4, 1, HistScale::kLog2).sample(3);

  std::ostringstream os;
  reg.write_json(os);
  const json_lite::Value root = json_lite::parse(os.str());

  EXPECT_EQ(42.0, root.at("counters").at("engine.reads").number());
  EXPECT_EQ(7.0, root.at("counters").at("dram.ch0.row_hits").number());
  EXPECT_EQ(2.0, root.at("scalars").at("ipc").at("count").number());
  EXPECT_EQ(1.0, root.at("scalars").at("ipc").at("mean").number());
  EXPECT_EQ(0.75, root.at("scalars").at("ipc").at("min").number());
  const json_lite::Value& lat = root.at("histograms").at("lat");
  EXPECT_EQ("log2", lat.at("scale").str());
  EXPECT_EQ(1.0, lat.at("total").number());
  EXPECT_EQ(1.0, lat.at("buckets").array()[2].number());
}

TEST(JsonExportTest, EscapesSpecialCharactersInNames) {
  StatRegistry reg;
  reg.counter("weird\"name\\path").inc();
  std::ostringstream os;
  reg.write_json(os);
  const json_lite::Value root = json_lite::parse(os.str());
  EXPECT_EQ(1.0, root.at("counters").at("weird\"name\\path").number());
}

TEST(JsonExportTest, EmptyRegistryIsValidJson) {
  StatRegistry reg;
  std::ostringstream os;
  reg.write_json(os);
  const json_lite::Value root = json_lite::parse(os.str());
  EXPECT_TRUE(root.at("counters").object().empty());
  EXPECT_TRUE(root.at("scalars").object().empty());
  EXPECT_TRUE(root.at("histograms").object().empty());
}

// -------------------------------------------------- MetricsCell / Sink

TEST(MetricsCellTest, Log2BucketMatchesBitWidth) {
  EXPECT_EQ(0u, MetricsCell::log2_bucket(0));
  EXPECT_EQ(1u, MetricsCell::log2_bucket(1));
  EXPECT_EQ(2u, MetricsCell::log2_bucket(2));
  EXPECT_EQ(2u, MetricsCell::log2_bucket(3));
  EXPECT_EQ(3u, MetricsCell::log2_bucket(4));
  EXPECT_EQ(kEngineHistBuckets - 1,
            MetricsCell::log2_bucket(~std::uint64_t{0}));
}

TEST(MetricsCellTest, AddAndSampleAreVisibleToReaders) {
  MetricsCell cell;
  cell.add(MetricId::kReads, 3);
  cell.add(MetricId::kWrites);
  cell.sample(EngineHistId::kByteReadBytes, 100);  // bucket 7
  EXPECT_EQ(3u, cell.value(MetricId::kReads));
  EXPECT_EQ(1u, cell.value(MetricId::kWrites));
  EXPECT_EQ(1u, cell.hist_bucket(EngineHistId::kByteReadBytes, 7));
  cell.reset();
  EXPECT_EQ(0u, cell.value(MetricId::kReads));
  EXPECT_EQ(0u, cell.hist_bucket(EngineHistId::kByteReadBytes, 7));
}

TEST(MetricsSinkTest, AggregatesAcrossCellsAndPublishes) {
  MetricsSink sink(4);
  for (std::size_t i = 0; i < sink.cell_count(); ++i)
    sink.cell(i).add(MetricId::kReads, i + 1);
  EXPECT_EQ(1u + 2 + 3 + 4, sink.total(MetricId::kReads));

  StatRegistry reg;
  sink.publish(reg, "engine");
  EXPECT_EQ(10u, reg.counter_value("engine.reads"));

  sink.reset();
  EXPECT_EQ(0u, sink.total(MetricId::kReads));
}

TEST(MetricsSinkTest, PublishExportsHistogramsAsLog2) {
  MetricsSink sink(2);
  sink.cell(0).sample(EngineHistId::kMacEvalsPerCorrection, 513);
  sink.cell(1).sample(EngineHistId::kMacEvalsPerCorrection, 513);
  StatRegistry reg;
  sink.publish(reg, "engine");
  std::ostringstream os;
  reg.write_json(os);
  const json_lite::Value root = json_lite::parse(os.str());
  const json_lite::Value& h = root.at("histograms")
                                  .at("engine." +
                                      std::string(engine_hist_name(
                                          EngineHistId::kMacEvalsPerCorrection)));
  EXPECT_EQ("log2", h.at("scale").str());
  EXPECT_EQ(2.0, h.at("total").number());
  EXPECT_EQ(2.0, h.at("buckets").array()[10].number());  // 513 -> bucket 10
}

// The TSan preset (scripts/ci.sh) picks this suite up via its name: many
// writer threads hammer a shared sink while a reader polls totals.
TEST(MetricsSinkConcurrentTest, ParallelRecordingIsRaceFree) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kEvents = 20000;
  MetricsSink sink(kThreads);
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t now = sink.total(MetricId::kReads);
      EXPECT_GE(now, last);  // totals are monotone under concurrent adds
      last = now;
    }
  });

  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&sink, t] {
      MetricsCell& cell = sink.cell(t);
      for (std::uint64_t i = 0; i < kEvents; ++i) {
        cell.add(MetricId::kReads);
        cell.sample(EngineHistId::kReadLatencyNs, i & 0xFFF);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(kThreads * kEvents, sink.total(MetricId::kReads));
}

// ------------------------------------------------------------ TraceRing

TEST(TraceRingTest, KeepsNewestEventsOldestFirst) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 6; ++i)
    ring.record(TraceEvent::Kind::kRead, Status::kOk, i);
  EXPECT_EQ(6u, ring.recorded());
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(4u, events.size());
  EXPECT_EQ(2u, events.front().block);  // blocks 2..5 retained
  EXPECT_EQ(5u, events.back().block);
  EXPECT_LT(events.front().seq, events.back().seq);
}

TEST(TraceRingTest, RecordsOutcomeShardAndKind) {
  TraceRing ring(8);
  ring.record(TraceEvent::Kind::kScrub, Status::kIntegrityViolation, 42, 3);
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(1u, events.size());
  EXPECT_EQ(TraceEvent::Kind::kScrub, events[0].kind);
  EXPECT_EQ(Status::kIntegrityViolation, events[0].outcome);
  EXPECT_EQ(42u, events[0].block);
  EXPECT_EQ(3u, events[0].shard);

  std::ostringstream os;
  ring.dump(os);
  EXPECT_NE(std::string::npos, os.str().find("scrub"));
  EXPECT_NE(std::string::npos, os.str().find("integrity-violation"));

  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
}

// TSan coverage for the ring (suite name matches the sanitizer filter).
TEST(TraceRingConcurrentTest, ParallelRecordingKeepsCapacityBound) {
  TraceRing ring(64);
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < 4; ++t) {
    writers.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < 5000; ++i)
        ring.record(TraceEvent::Kind::kWrite, Status::kOk, i,
                    static_cast<std::uint16_t>(t));
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(4u * 5000, ring.recorded());
  EXPECT_EQ(64u, ring.snapshot().size());
}

}  // namespace
