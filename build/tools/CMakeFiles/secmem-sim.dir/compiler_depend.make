# Empty compiler generated dependencies file for secmem-sim.
# This may be replaced when dependencies are built.
