file(REMOVE_RECURSE
  "CMakeFiles/secmem-sim.dir/secmem_sim.cc.o"
  "CMakeFiles/secmem-sim.dir/secmem_sim.cc.o.d"
  "secmem-sim"
  "secmem-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmem-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
