file(REMOVE_RECURSE
  "CMakeFiles/secmem-tracegen.dir/secmem_tracegen.cc.o"
  "CMakeFiles/secmem-tracegen.dir/secmem_tracegen.cc.o.d"
  "secmem-tracegen"
  "secmem-tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmem-tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
