# Empty dependencies file for secmem-tracegen.
# This may be replaced when dependencies are built.
