file(REMOVE_RECURSE
  "CMakeFiles/secmem-overhead.dir/secmem_overhead.cc.o"
  "CMakeFiles/secmem-overhead.dir/secmem_overhead.cc.o.d"
  "secmem-overhead"
  "secmem-overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmem-overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
