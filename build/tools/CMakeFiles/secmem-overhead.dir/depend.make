# Empty dependencies file for secmem-overhead.
# This may be replaced when dependencies are built.
