# Empty dependencies file for secmem_core_tests.
# This may be replaced when dependencies are built.
