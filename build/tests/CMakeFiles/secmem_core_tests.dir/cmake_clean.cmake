file(REMOVE_RECURSE
  "CMakeFiles/secmem_core_tests.dir/test_aes128.cc.o"
  "CMakeFiles/secmem_core_tests.dir/test_aes128.cc.o.d"
  "CMakeFiles/secmem_core_tests.dir/test_bitops.cc.o"
  "CMakeFiles/secmem_core_tests.dir/test_bitops.cc.o.d"
  "CMakeFiles/secmem_core_tests.dir/test_ctr_keystream.cc.o"
  "CMakeFiles/secmem_core_tests.dir/test_ctr_keystream.cc.o.d"
  "CMakeFiles/secmem_core_tests.dir/test_cw_mac.cc.o"
  "CMakeFiles/secmem_core_tests.dir/test_cw_mac.cc.o.d"
  "CMakeFiles/secmem_core_tests.dir/test_fault_model.cc.o"
  "CMakeFiles/secmem_core_tests.dir/test_fault_model.cc.o.d"
  "CMakeFiles/secmem_core_tests.dir/test_flip_and_check.cc.o"
  "CMakeFiles/secmem_core_tests.dir/test_flip_and_check.cc.o.d"
  "CMakeFiles/secmem_core_tests.dir/test_gf64.cc.o"
  "CMakeFiles/secmem_core_tests.dir/test_gf64.cc.o.d"
  "CMakeFiles/secmem_core_tests.dir/test_hamming.cc.o"
  "CMakeFiles/secmem_core_tests.dir/test_hamming.cc.o.d"
  "CMakeFiles/secmem_core_tests.dir/test_log.cc.o"
  "CMakeFiles/secmem_core_tests.dir/test_log.cc.o.d"
  "CMakeFiles/secmem_core_tests.dir/test_mac_ecc.cc.o"
  "CMakeFiles/secmem_core_tests.dir/test_mac_ecc.cc.o.d"
  "CMakeFiles/secmem_core_tests.dir/test_rng.cc.o"
  "CMakeFiles/secmem_core_tests.dir/test_rng.cc.o.d"
  "CMakeFiles/secmem_core_tests.dir/test_secded72.cc.o"
  "CMakeFiles/secmem_core_tests.dir/test_secded72.cc.o.d"
  "CMakeFiles/secmem_core_tests.dir/test_stats.cc.o"
  "CMakeFiles/secmem_core_tests.dir/test_stats.cc.o.d"
  "secmem_core_tests"
  "secmem_core_tests.pdb"
  "secmem_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmem_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
