
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aes128.cc" "tests/CMakeFiles/secmem_core_tests.dir/test_aes128.cc.o" "gcc" "tests/CMakeFiles/secmem_core_tests.dir/test_aes128.cc.o.d"
  "/root/repo/tests/test_bitops.cc" "tests/CMakeFiles/secmem_core_tests.dir/test_bitops.cc.o" "gcc" "tests/CMakeFiles/secmem_core_tests.dir/test_bitops.cc.o.d"
  "/root/repo/tests/test_ctr_keystream.cc" "tests/CMakeFiles/secmem_core_tests.dir/test_ctr_keystream.cc.o" "gcc" "tests/CMakeFiles/secmem_core_tests.dir/test_ctr_keystream.cc.o.d"
  "/root/repo/tests/test_cw_mac.cc" "tests/CMakeFiles/secmem_core_tests.dir/test_cw_mac.cc.o" "gcc" "tests/CMakeFiles/secmem_core_tests.dir/test_cw_mac.cc.o.d"
  "/root/repo/tests/test_fault_model.cc" "tests/CMakeFiles/secmem_core_tests.dir/test_fault_model.cc.o" "gcc" "tests/CMakeFiles/secmem_core_tests.dir/test_fault_model.cc.o.d"
  "/root/repo/tests/test_flip_and_check.cc" "tests/CMakeFiles/secmem_core_tests.dir/test_flip_and_check.cc.o" "gcc" "tests/CMakeFiles/secmem_core_tests.dir/test_flip_and_check.cc.o.d"
  "/root/repo/tests/test_gf64.cc" "tests/CMakeFiles/secmem_core_tests.dir/test_gf64.cc.o" "gcc" "tests/CMakeFiles/secmem_core_tests.dir/test_gf64.cc.o.d"
  "/root/repo/tests/test_hamming.cc" "tests/CMakeFiles/secmem_core_tests.dir/test_hamming.cc.o" "gcc" "tests/CMakeFiles/secmem_core_tests.dir/test_hamming.cc.o.d"
  "/root/repo/tests/test_log.cc" "tests/CMakeFiles/secmem_core_tests.dir/test_log.cc.o" "gcc" "tests/CMakeFiles/secmem_core_tests.dir/test_log.cc.o.d"
  "/root/repo/tests/test_mac_ecc.cc" "tests/CMakeFiles/secmem_core_tests.dir/test_mac_ecc.cc.o" "gcc" "tests/CMakeFiles/secmem_core_tests.dir/test_mac_ecc.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/secmem_core_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/secmem_core_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_secded72.cc" "tests/CMakeFiles/secmem_core_tests.dir/test_secded72.cc.o" "gcc" "tests/CMakeFiles/secmem_core_tests.dir/test_secded72.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/secmem_core_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/secmem_core_tests.dir/test_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/secmem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/secmem_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/secmem_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
