# Empty dependencies file for secmem_system_tests.
# This may be replaced when dependencies are built.
