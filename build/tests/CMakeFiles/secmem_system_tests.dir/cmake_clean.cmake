file(REMOVE_RECURSE
  "CMakeFiles/secmem_system_tests.dir/test_bonsai.cc.o"
  "CMakeFiles/secmem_system_tests.dir/test_bonsai.cc.o.d"
  "CMakeFiles/secmem_system_tests.dir/test_cache.cc.o"
  "CMakeFiles/secmem_system_tests.dir/test_cache.cc.o.d"
  "CMakeFiles/secmem_system_tests.dir/test_counters.cc.o"
  "CMakeFiles/secmem_system_tests.dir/test_counters.cc.o.d"
  "CMakeFiles/secmem_system_tests.dir/test_delta_schemes.cc.o"
  "CMakeFiles/secmem_system_tests.dir/test_delta_schemes.cc.o.d"
  "CMakeFiles/secmem_system_tests.dir/test_dram.cc.o"
  "CMakeFiles/secmem_system_tests.dir/test_dram.cc.o.d"
  "CMakeFiles/secmem_system_tests.dir/test_generic_delta.cc.o"
  "CMakeFiles/secmem_system_tests.dir/test_generic_delta.cc.o.d"
  "CMakeFiles/secmem_system_tests.dir/test_hierarchy.cc.o"
  "CMakeFiles/secmem_system_tests.dir/test_hierarchy.cc.o.d"
  "CMakeFiles/secmem_system_tests.dir/test_layout.cc.o"
  "CMakeFiles/secmem_system_tests.dir/test_layout.cc.o.d"
  "CMakeFiles/secmem_system_tests.dir/test_metadata_cache.cc.o"
  "CMakeFiles/secmem_system_tests.dir/test_metadata_cache.cc.o.d"
  "CMakeFiles/secmem_system_tests.dir/test_reencryption_engine.cc.o"
  "CMakeFiles/secmem_system_tests.dir/test_reencryption_engine.cc.o.d"
  "secmem_system_tests"
  "secmem_system_tests.pdb"
  "secmem_system_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmem_system_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
