
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bonsai.cc" "tests/CMakeFiles/secmem_system_tests.dir/test_bonsai.cc.o" "gcc" "tests/CMakeFiles/secmem_system_tests.dir/test_bonsai.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/secmem_system_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/secmem_system_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_counters.cc" "tests/CMakeFiles/secmem_system_tests.dir/test_counters.cc.o" "gcc" "tests/CMakeFiles/secmem_system_tests.dir/test_counters.cc.o.d"
  "/root/repo/tests/test_delta_schemes.cc" "tests/CMakeFiles/secmem_system_tests.dir/test_delta_schemes.cc.o" "gcc" "tests/CMakeFiles/secmem_system_tests.dir/test_delta_schemes.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/secmem_system_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/secmem_system_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_generic_delta.cc" "tests/CMakeFiles/secmem_system_tests.dir/test_generic_delta.cc.o" "gcc" "tests/CMakeFiles/secmem_system_tests.dir/test_generic_delta.cc.o.d"
  "/root/repo/tests/test_hierarchy.cc" "tests/CMakeFiles/secmem_system_tests.dir/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/secmem_system_tests.dir/test_hierarchy.cc.o.d"
  "/root/repo/tests/test_layout.cc" "tests/CMakeFiles/secmem_system_tests.dir/test_layout.cc.o" "gcc" "tests/CMakeFiles/secmem_system_tests.dir/test_layout.cc.o.d"
  "/root/repo/tests/test_metadata_cache.cc" "tests/CMakeFiles/secmem_system_tests.dir/test_metadata_cache.cc.o" "gcc" "tests/CMakeFiles/secmem_system_tests.dir/test_metadata_cache.cc.o.d"
  "/root/repo/tests/test_reencryption_engine.cc" "tests/CMakeFiles/secmem_system_tests.dir/test_reencryption_engine.cc.o" "gcc" "tests/CMakeFiles/secmem_system_tests.dir/test_reencryption_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/secmem_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/secmem_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/counters/CMakeFiles/secmem_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/secmem_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/secmem_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/secmem_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/secmem_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/secmem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
