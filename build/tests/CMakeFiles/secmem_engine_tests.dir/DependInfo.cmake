
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_concurrent.cc" "tests/CMakeFiles/secmem_engine_tests.dir/test_concurrent.cc.o" "gcc" "tests/CMakeFiles/secmem_engine_tests.dir/test_concurrent.cc.o.d"
  "/root/repo/tests/test_core_model.cc" "tests/CMakeFiles/secmem_engine_tests.dir/test_core_model.cc.o" "gcc" "tests/CMakeFiles/secmem_engine_tests.dir/test_core_model.cc.o.d"
  "/root/repo/tests/test_encryption_engine.cc" "tests/CMakeFiles/secmem_engine_tests.dir/test_encryption_engine.cc.o" "gcc" "tests/CMakeFiles/secmem_engine_tests.dir/test_encryption_engine.cc.o.d"
  "/root/repo/tests/test_engine_timing.cc" "tests/CMakeFiles/secmem_engine_tests.dir/test_engine_timing.cc.o" "gcc" "tests/CMakeFiles/secmem_engine_tests.dir/test_engine_timing.cc.o.d"
  "/root/repo/tests/test_key_rotation.cc" "tests/CMakeFiles/secmem_engine_tests.dir/test_key_rotation.cc.o" "gcc" "tests/CMakeFiles/secmem_engine_tests.dir/test_key_rotation.cc.o.d"
  "/root/repo/tests/test_persistence.cc" "tests/CMakeFiles/secmem_engine_tests.dir/test_persistence.cc.o" "gcc" "tests/CMakeFiles/secmem_engine_tests.dir/test_persistence.cc.o.d"
  "/root/repo/tests/test_scrubbing.cc" "tests/CMakeFiles/secmem_engine_tests.dir/test_scrubbing.cc.o" "gcc" "tests/CMakeFiles/secmem_engine_tests.dir/test_scrubbing.cc.o.d"
  "/root/repo/tests/test_secure_memory.cc" "tests/CMakeFiles/secmem_engine_tests.dir/test_secure_memory.cc.o" "gcc" "tests/CMakeFiles/secmem_engine_tests.dir/test_secure_memory.cc.o.d"
  "/root/repo/tests/test_secure_memory_fuzz.cc" "tests/CMakeFiles/secmem_engine_tests.dir/test_secure_memory_fuzz.cc.o" "gcc" "tests/CMakeFiles/secmem_engine_tests.dir/test_secure_memory_fuzz.cc.o.d"
  "/root/repo/tests/test_system_sim.cc" "tests/CMakeFiles/secmem_engine_tests.dir/test_system_sim.cc.o" "gcc" "tests/CMakeFiles/secmem_engine_tests.dir/test_system_sim.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/secmem_engine_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/secmem_engine_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/secmem_engine_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/secmem_engine_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/secmem_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/secmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/secmem_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/counters/CMakeFiles/secmem_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/secmem_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/secmem_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/secmem_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/secmem_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/secmem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
