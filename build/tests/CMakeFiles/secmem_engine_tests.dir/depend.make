# Empty dependencies file for secmem_engine_tests.
# This may be replaced when dependencies are built.
