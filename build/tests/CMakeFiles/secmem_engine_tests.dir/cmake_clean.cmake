file(REMOVE_RECURSE
  "CMakeFiles/secmem_engine_tests.dir/test_concurrent.cc.o"
  "CMakeFiles/secmem_engine_tests.dir/test_concurrent.cc.o.d"
  "CMakeFiles/secmem_engine_tests.dir/test_core_model.cc.o"
  "CMakeFiles/secmem_engine_tests.dir/test_core_model.cc.o.d"
  "CMakeFiles/secmem_engine_tests.dir/test_encryption_engine.cc.o"
  "CMakeFiles/secmem_engine_tests.dir/test_encryption_engine.cc.o.d"
  "CMakeFiles/secmem_engine_tests.dir/test_engine_timing.cc.o"
  "CMakeFiles/secmem_engine_tests.dir/test_engine_timing.cc.o.d"
  "CMakeFiles/secmem_engine_tests.dir/test_key_rotation.cc.o"
  "CMakeFiles/secmem_engine_tests.dir/test_key_rotation.cc.o.d"
  "CMakeFiles/secmem_engine_tests.dir/test_persistence.cc.o"
  "CMakeFiles/secmem_engine_tests.dir/test_persistence.cc.o.d"
  "CMakeFiles/secmem_engine_tests.dir/test_scrubbing.cc.o"
  "CMakeFiles/secmem_engine_tests.dir/test_scrubbing.cc.o.d"
  "CMakeFiles/secmem_engine_tests.dir/test_secure_memory.cc.o"
  "CMakeFiles/secmem_engine_tests.dir/test_secure_memory.cc.o.d"
  "CMakeFiles/secmem_engine_tests.dir/test_secure_memory_fuzz.cc.o"
  "CMakeFiles/secmem_engine_tests.dir/test_secure_memory_fuzz.cc.o.d"
  "CMakeFiles/secmem_engine_tests.dir/test_system_sim.cc.o"
  "CMakeFiles/secmem_engine_tests.dir/test_system_sim.cc.o.d"
  "CMakeFiles/secmem_engine_tests.dir/test_trace.cc.o"
  "CMakeFiles/secmem_engine_tests.dir/test_trace.cc.o.d"
  "CMakeFiles/secmem_engine_tests.dir/test_workload.cc.o"
  "CMakeFiles/secmem_engine_tests.dir/test_workload.cc.o.d"
  "secmem_engine_tests"
  "secmem_engine_tests.pdb"
  "secmem_engine_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmem_engine_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
