file(REMOVE_RECURSE
  "CMakeFiles/ecc_recovery.dir/ecc_recovery.cpp.o"
  "CMakeFiles/ecc_recovery.dir/ecc_recovery.cpp.o.d"
  "ecc_recovery"
  "ecc_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
