# Empty compiler generated dependencies file for ecc_recovery.
# This may be replaced when dependencies are built.
