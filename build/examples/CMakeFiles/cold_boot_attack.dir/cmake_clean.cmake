file(REMOVE_RECURSE
  "CMakeFiles/cold_boot_attack.dir/cold_boot_attack.cpp.o"
  "CMakeFiles/cold_boot_attack.dir/cold_boot_attack.cpp.o.d"
  "cold_boot_attack"
  "cold_boot_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_boot_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
