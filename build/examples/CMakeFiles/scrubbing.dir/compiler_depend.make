# Empty compiler generated dependencies file for scrubbing.
# This may be replaced when dependencies are built.
