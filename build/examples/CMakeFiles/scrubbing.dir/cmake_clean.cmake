file(REMOVE_RECURSE
  "CMakeFiles/scrubbing.dir/scrubbing.cpp.o"
  "CMakeFiles/scrubbing.dir/scrubbing.cpp.o.d"
  "scrubbing"
  "scrubbing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrubbing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
