
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/nvmm_wear.cpp" "examples/CMakeFiles/nvmm_wear.dir/nvmm_wear.cpp.o" "gcc" "examples/CMakeFiles/nvmm_wear.dir/nvmm_wear.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/counters/CMakeFiles/secmem_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/secmem_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/secmem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
