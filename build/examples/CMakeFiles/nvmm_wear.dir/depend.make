# Empty dependencies file for nvmm_wear.
# This may be replaced when dependencies are built.
