file(REMOVE_RECURSE
  "CMakeFiles/nvmm_wear.dir/nvmm_wear.cpp.o"
  "CMakeFiles/nvmm_wear.dir/nvmm_wear.cpp.o.d"
  "nvmm_wear"
  "nvmm_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmm_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
