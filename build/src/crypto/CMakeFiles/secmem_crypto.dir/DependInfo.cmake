
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes128.cc" "src/crypto/CMakeFiles/secmem_crypto.dir/aes128.cc.o" "gcc" "src/crypto/CMakeFiles/secmem_crypto.dir/aes128.cc.o.d"
  "/root/repo/src/crypto/ctr_keystream.cc" "src/crypto/CMakeFiles/secmem_crypto.dir/ctr_keystream.cc.o" "gcc" "src/crypto/CMakeFiles/secmem_crypto.dir/ctr_keystream.cc.o.d"
  "/root/repo/src/crypto/cw_mac.cc" "src/crypto/CMakeFiles/secmem_crypto.dir/cw_mac.cc.o" "gcc" "src/crypto/CMakeFiles/secmem_crypto.dir/cw_mac.cc.o.d"
  "/root/repo/src/crypto/gf64.cc" "src/crypto/CMakeFiles/secmem_crypto.dir/gf64.cc.o" "gcc" "src/crypto/CMakeFiles/secmem_crypto.dir/gf64.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/secmem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
