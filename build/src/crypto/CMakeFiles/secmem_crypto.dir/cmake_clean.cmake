file(REMOVE_RECURSE
  "CMakeFiles/secmem_crypto.dir/aes128.cc.o"
  "CMakeFiles/secmem_crypto.dir/aes128.cc.o.d"
  "CMakeFiles/secmem_crypto.dir/ctr_keystream.cc.o"
  "CMakeFiles/secmem_crypto.dir/ctr_keystream.cc.o.d"
  "CMakeFiles/secmem_crypto.dir/cw_mac.cc.o"
  "CMakeFiles/secmem_crypto.dir/cw_mac.cc.o.d"
  "CMakeFiles/secmem_crypto.dir/gf64.cc.o"
  "CMakeFiles/secmem_crypto.dir/gf64.cc.o.d"
  "libsecmem_crypto.a"
  "libsecmem_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmem_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
