# Empty compiler generated dependencies file for secmem_crypto.
# This may be replaced when dependencies are built.
