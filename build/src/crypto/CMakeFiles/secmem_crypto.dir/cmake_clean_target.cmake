file(REMOVE_RECURSE
  "libsecmem_crypto.a"
)
