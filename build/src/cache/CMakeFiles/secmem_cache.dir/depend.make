# Empty dependencies file for secmem_cache.
# This may be replaced when dependencies are built.
