file(REMOVE_RECURSE
  "CMakeFiles/secmem_cache.dir/cache.cc.o"
  "CMakeFiles/secmem_cache.dir/cache.cc.o.d"
  "CMakeFiles/secmem_cache.dir/hierarchy.cc.o"
  "CMakeFiles/secmem_cache.dir/hierarchy.cc.o.d"
  "libsecmem_cache.a"
  "libsecmem_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmem_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
