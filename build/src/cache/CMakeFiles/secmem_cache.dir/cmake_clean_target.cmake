file(REMOVE_RECURSE
  "libsecmem_cache.a"
)
