file(REMOVE_RECURSE
  "CMakeFiles/secmem_sim.dir/system_sim.cc.o"
  "CMakeFiles/secmem_sim.dir/system_sim.cc.o.d"
  "CMakeFiles/secmem_sim.dir/trace.cc.o"
  "CMakeFiles/secmem_sim.dir/trace.cc.o.d"
  "CMakeFiles/secmem_sim.dir/workload.cc.o"
  "CMakeFiles/secmem_sim.dir/workload.cc.o.d"
  "libsecmem_sim.a"
  "libsecmem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
