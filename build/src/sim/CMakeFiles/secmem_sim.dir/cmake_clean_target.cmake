file(REMOVE_RECURSE
  "libsecmem_sim.a"
)
