# Empty compiler generated dependencies file for secmem_sim.
# This may be replaced when dependencies are built.
