file(REMOVE_RECURSE
  "libsecmem_common.a"
)
