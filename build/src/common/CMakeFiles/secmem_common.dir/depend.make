# Empty dependencies file for secmem_common.
# This may be replaced when dependencies are built.
