file(REMOVE_RECURSE
  "CMakeFiles/secmem_common.dir/bitops.cc.o"
  "CMakeFiles/secmem_common.dir/bitops.cc.o.d"
  "CMakeFiles/secmem_common.dir/log.cc.o"
  "CMakeFiles/secmem_common.dir/log.cc.o.d"
  "CMakeFiles/secmem_common.dir/rng.cc.o"
  "CMakeFiles/secmem_common.dir/rng.cc.o.d"
  "CMakeFiles/secmem_common.dir/stats.cc.o"
  "CMakeFiles/secmem_common.dir/stats.cc.o.d"
  "libsecmem_common.a"
  "libsecmem_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmem_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
