file(REMOVE_RECURSE
  "libsecmem_ecc.a"
)
