file(REMOVE_RECURSE
  "CMakeFiles/secmem_ecc.dir/fault_model.cc.o"
  "CMakeFiles/secmem_ecc.dir/fault_model.cc.o.d"
  "CMakeFiles/secmem_ecc.dir/flip_and_check.cc.o"
  "CMakeFiles/secmem_ecc.dir/flip_and_check.cc.o.d"
  "CMakeFiles/secmem_ecc.dir/hamming.cc.o"
  "CMakeFiles/secmem_ecc.dir/hamming.cc.o.d"
  "CMakeFiles/secmem_ecc.dir/mac_ecc.cc.o"
  "CMakeFiles/secmem_ecc.dir/mac_ecc.cc.o.d"
  "CMakeFiles/secmem_ecc.dir/secded72.cc.o"
  "CMakeFiles/secmem_ecc.dir/secded72.cc.o.d"
  "libsecmem_ecc.a"
  "libsecmem_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmem_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
