# Empty compiler generated dependencies file for secmem_ecc.
# This may be replaced when dependencies are built.
