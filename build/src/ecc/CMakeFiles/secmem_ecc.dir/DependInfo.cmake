
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/fault_model.cc" "src/ecc/CMakeFiles/secmem_ecc.dir/fault_model.cc.o" "gcc" "src/ecc/CMakeFiles/secmem_ecc.dir/fault_model.cc.o.d"
  "/root/repo/src/ecc/flip_and_check.cc" "src/ecc/CMakeFiles/secmem_ecc.dir/flip_and_check.cc.o" "gcc" "src/ecc/CMakeFiles/secmem_ecc.dir/flip_and_check.cc.o.d"
  "/root/repo/src/ecc/hamming.cc" "src/ecc/CMakeFiles/secmem_ecc.dir/hamming.cc.o" "gcc" "src/ecc/CMakeFiles/secmem_ecc.dir/hamming.cc.o.d"
  "/root/repo/src/ecc/mac_ecc.cc" "src/ecc/CMakeFiles/secmem_ecc.dir/mac_ecc.cc.o" "gcc" "src/ecc/CMakeFiles/secmem_ecc.dir/mac_ecc.cc.o.d"
  "/root/repo/src/ecc/secded72.cc" "src/ecc/CMakeFiles/secmem_ecc.dir/secded72.cc.o" "gcc" "src/ecc/CMakeFiles/secmem_ecc.dir/secded72.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/secmem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/secmem_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
