
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/bonsai_geometry.cc" "src/tree/CMakeFiles/secmem_tree.dir/bonsai_geometry.cc.o" "gcc" "src/tree/CMakeFiles/secmem_tree.dir/bonsai_geometry.cc.o.d"
  "/root/repo/src/tree/bonsai_tree.cc" "src/tree/CMakeFiles/secmem_tree.dir/bonsai_tree.cc.o" "gcc" "src/tree/CMakeFiles/secmem_tree.dir/bonsai_tree.cc.o.d"
  "/root/repo/src/tree/metadata_cache.cc" "src/tree/CMakeFiles/secmem_tree.dir/metadata_cache.cc.o" "gcc" "src/tree/CMakeFiles/secmem_tree.dir/metadata_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/secmem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/secmem_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/secmem_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
