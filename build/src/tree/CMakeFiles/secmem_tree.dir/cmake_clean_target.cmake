file(REMOVE_RECURSE
  "libsecmem_tree.a"
)
