# Empty compiler generated dependencies file for secmem_tree.
# This may be replaced when dependencies are built.
