file(REMOVE_RECURSE
  "CMakeFiles/secmem_tree.dir/bonsai_geometry.cc.o"
  "CMakeFiles/secmem_tree.dir/bonsai_geometry.cc.o.d"
  "CMakeFiles/secmem_tree.dir/bonsai_tree.cc.o"
  "CMakeFiles/secmem_tree.dir/bonsai_tree.cc.o.d"
  "CMakeFiles/secmem_tree.dir/metadata_cache.cc.o"
  "CMakeFiles/secmem_tree.dir/metadata_cache.cc.o.d"
  "libsecmem_tree.a"
  "libsecmem_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmem_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
