file(REMOVE_RECURSE
  "libsecmem_dram.a"
)
