# Empty compiler generated dependencies file for secmem_dram.
# This may be replaced when dependencies are built.
