file(REMOVE_RECURSE
  "CMakeFiles/secmem_dram.dir/bank.cc.o"
  "CMakeFiles/secmem_dram.dir/bank.cc.o.d"
  "CMakeFiles/secmem_dram.dir/channel.cc.o"
  "CMakeFiles/secmem_dram.dir/channel.cc.o.d"
  "CMakeFiles/secmem_dram.dir/dram_system.cc.o"
  "CMakeFiles/secmem_dram.dir/dram_system.cc.o.d"
  "libsecmem_dram.a"
  "libsecmem_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmem_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
