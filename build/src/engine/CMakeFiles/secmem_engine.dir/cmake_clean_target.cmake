file(REMOVE_RECURSE
  "libsecmem_engine.a"
)
