# Empty dependencies file for secmem_engine.
# This may be replaced when dependencies are built.
