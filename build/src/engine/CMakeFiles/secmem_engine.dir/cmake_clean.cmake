file(REMOVE_RECURSE
  "CMakeFiles/secmem_engine.dir/encryption_engine.cc.o"
  "CMakeFiles/secmem_engine.dir/encryption_engine.cc.o.d"
  "CMakeFiles/secmem_engine.dir/layout.cc.o"
  "CMakeFiles/secmem_engine.dir/layout.cc.o.d"
  "CMakeFiles/secmem_engine.dir/secure_memory.cc.o"
  "CMakeFiles/secmem_engine.dir/secure_memory.cc.o.d"
  "libsecmem_engine.a"
  "libsecmem_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmem_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
