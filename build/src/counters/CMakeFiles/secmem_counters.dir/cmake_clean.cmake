file(REMOVE_RECURSE
  "CMakeFiles/secmem_counters.dir/counter_scheme.cc.o"
  "CMakeFiles/secmem_counters.dir/counter_scheme.cc.o.d"
  "CMakeFiles/secmem_counters.dir/delta_counter.cc.o"
  "CMakeFiles/secmem_counters.dir/delta_counter.cc.o.d"
  "CMakeFiles/secmem_counters.dir/dual_length_delta.cc.o"
  "CMakeFiles/secmem_counters.dir/dual_length_delta.cc.o.d"
  "CMakeFiles/secmem_counters.dir/generic_delta.cc.o"
  "CMakeFiles/secmem_counters.dir/generic_delta.cc.o.d"
  "CMakeFiles/secmem_counters.dir/monolithic.cc.o"
  "CMakeFiles/secmem_counters.dir/monolithic.cc.o.d"
  "CMakeFiles/secmem_counters.dir/reencryption_engine.cc.o"
  "CMakeFiles/secmem_counters.dir/reencryption_engine.cc.o.d"
  "CMakeFiles/secmem_counters.dir/split_counter.cc.o"
  "CMakeFiles/secmem_counters.dir/split_counter.cc.o.d"
  "libsecmem_counters.a"
  "libsecmem_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmem_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
