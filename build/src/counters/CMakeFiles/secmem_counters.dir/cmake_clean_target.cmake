file(REMOVE_RECURSE
  "libsecmem_counters.a"
)
