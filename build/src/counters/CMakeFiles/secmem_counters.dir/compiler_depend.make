# Empty compiler generated dependencies file for secmem_counters.
# This may be replaced when dependencies are built.
