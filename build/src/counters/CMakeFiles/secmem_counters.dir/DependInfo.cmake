
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/counters/counter_scheme.cc" "src/counters/CMakeFiles/secmem_counters.dir/counter_scheme.cc.o" "gcc" "src/counters/CMakeFiles/secmem_counters.dir/counter_scheme.cc.o.d"
  "/root/repo/src/counters/delta_counter.cc" "src/counters/CMakeFiles/secmem_counters.dir/delta_counter.cc.o" "gcc" "src/counters/CMakeFiles/secmem_counters.dir/delta_counter.cc.o.d"
  "/root/repo/src/counters/dual_length_delta.cc" "src/counters/CMakeFiles/secmem_counters.dir/dual_length_delta.cc.o" "gcc" "src/counters/CMakeFiles/secmem_counters.dir/dual_length_delta.cc.o.d"
  "/root/repo/src/counters/generic_delta.cc" "src/counters/CMakeFiles/secmem_counters.dir/generic_delta.cc.o" "gcc" "src/counters/CMakeFiles/secmem_counters.dir/generic_delta.cc.o.d"
  "/root/repo/src/counters/monolithic.cc" "src/counters/CMakeFiles/secmem_counters.dir/monolithic.cc.o" "gcc" "src/counters/CMakeFiles/secmem_counters.dir/monolithic.cc.o.d"
  "/root/repo/src/counters/reencryption_engine.cc" "src/counters/CMakeFiles/secmem_counters.dir/reencryption_engine.cc.o" "gcc" "src/counters/CMakeFiles/secmem_counters.dir/reencryption_engine.cc.o.d"
  "/root/repo/src/counters/split_counter.cc" "src/counters/CMakeFiles/secmem_counters.dir/split_counter.cc.o" "gcc" "src/counters/CMakeFiles/secmem_counters.dir/split_counter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/secmem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/secmem_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
