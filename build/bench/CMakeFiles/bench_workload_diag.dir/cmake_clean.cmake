file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_diag.dir/bench_workload_diag.cc.o"
  "CMakeFiles/bench_workload_diag.dir/bench_workload_diag.cc.o.d"
  "bench_workload_diag"
  "bench_workload_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
