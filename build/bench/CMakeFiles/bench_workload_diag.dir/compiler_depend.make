# Empty compiler generated dependencies file for bench_workload_diag.
# This may be replaced when dependencies are built.
