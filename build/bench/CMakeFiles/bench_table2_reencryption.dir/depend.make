# Empty dependencies file for bench_table2_reencryption.
# This may be replaced when dependencies are built.
