file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_reencryption.dir/bench_table2_reencryption.cc.o"
  "CMakeFiles/bench_table2_reencryption.dir/bench_table2_reencryption.cc.o.d"
  "bench_table2_reencryption"
  "bench_table2_reencryption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_reencryption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
