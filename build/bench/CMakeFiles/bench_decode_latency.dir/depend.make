# Empty dependencies file for bench_decode_latency.
# This may be replaced when dependencies are built.
