file(REMOVE_RECURSE
  "CMakeFiles/bench_decode_latency.dir/bench_decode_latency.cc.o"
  "CMakeFiles/bench_decode_latency.dir/bench_decode_latency.cc.o.d"
  "bench_decode_latency"
  "bench_decode_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decode_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
