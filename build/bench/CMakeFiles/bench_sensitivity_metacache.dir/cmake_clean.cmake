file(REMOVE_RECURSE
  "CMakeFiles/bench_sensitivity_metacache.dir/bench_sensitivity_metacache.cc.o"
  "CMakeFiles/bench_sensitivity_metacache.dir/bench_sensitivity_metacache.cc.o.d"
  "bench_sensitivity_metacache"
  "bench_sensitivity_metacache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_metacache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
