# Empty compiler generated dependencies file for bench_sensitivity_metacache.
# This may be replaced when dependencies are built.
