
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sensitivity_tree.cc" "bench/CMakeFiles/bench_sensitivity_tree.dir/bench_sensitivity_tree.cc.o" "gcc" "bench/CMakeFiles/bench_sensitivity_tree.dir/bench_sensitivity_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/secmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/secmem_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/counters/CMakeFiles/secmem_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/secmem_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/secmem_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/secmem_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/secmem_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/secmem_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/secmem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
