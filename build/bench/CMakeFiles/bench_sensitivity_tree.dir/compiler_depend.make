# Empty compiler generated dependencies file for bench_sensitivity_tree.
# This may be replaced when dependencies are built.
