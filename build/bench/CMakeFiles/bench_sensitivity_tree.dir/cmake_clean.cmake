file(REMOVE_RECURSE
  "CMakeFiles/bench_sensitivity_tree.dir/bench_sensitivity_tree.cc.o"
  "CMakeFiles/bench_sensitivity_tree.dir/bench_sensitivity_tree.cc.o.d"
  "bench_sensitivity_tree"
  "bench_sensitivity_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
