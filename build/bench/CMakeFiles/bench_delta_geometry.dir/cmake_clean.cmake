file(REMOVE_RECURSE
  "CMakeFiles/bench_delta_geometry.dir/bench_delta_geometry.cc.o"
  "CMakeFiles/bench_delta_geometry.dir/bench_delta_geometry.cc.o.d"
  "bench_delta_geometry"
  "bench_delta_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delta_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
