# Empty compiler generated dependencies file for bench_delta_geometry.
# This may be replaced when dependencies are built.
