// SecureMemoryLike — the interface every secure-memory engine implements.
//
// SecureMemory (single-threaded), ConcurrentSecureMemory (single mutex)
// and ShardedSecureMemory (partitioned, shard-parallel) expose the same
// operations; this abstract base lets tools and benches pick an engine at
// runtime (see make_engine) instead of duplicating per-engine branches.
//
// The operation result types live at namespace scope here so the
// interface can name them; the concrete engines re-export them as nested
// aliases (SecureMemory::ReadResult, ...) for source compatibility.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "crypto/ctr_keystream.h"  // DataBlock

namespace secmem {

/// Outcome of a verified read (alias of the unified Status vocabulary).
using ReadStatus = Status;

const char* read_status_name(ReadStatus status) noexcept;

struct [[nodiscard]] ReadResult {
  ReadStatus status = Status::kOk;
  DataBlock data{};  ///< plaintext; zeroed unless status is kOk/kCorrected*
  std::uint64_t mac_evaluations = 0;  ///< flip-and-check work performed
};

/// One request of a write_blocks batch.
struct BlockWrite {
  std::uint64_t block;
  DataBlock data;
};

/// Outcome of scrubbing one block (paper §3.3).
enum class [[nodiscard]] ScrubStatus : std::uint8_t {
  kClean,            ///< quick parity checks passed (or full check did)
  kRepairedMacField, ///< single-bit MAC-lane fault healed
  kRepairedData,     ///< 1-2 bit data fault healed
  kUncorrectable,    ///< fault beyond correction; data NOT healed
  kCounterTampered,  ///< counter storage failed tree authentication
  kRegionPoisoned,   ///< engine fail-closed; nothing was scanned
};

const char* scrub_status_name(ScrubStatus status) noexcept;
Status to_status(ScrubStatus status) noexcept;

struct ScrubReport {
  std::uint64_t scanned = 0;
  std::uint64_t quick_clean = 0;   ///< passed the cheap parity checks
  std::uint64_t repaired_mac = 0;
  std::uint64_t repaired_data = 0;
  std::uint64_t uncorrectable = 0;
  std::uint64_t counter_tampered = 0;
  bool region_poisoned = false;    ///< engine was fail-closed; no sweep ran
};

/// Aggregate operational counters — a point-in-time copy assembled from
/// the engine's MetricsCell(s); see publish_metrics() for the richer
/// registry-backed view (histograms, per-shard breakdown).
struct EngineStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t corrected_data = 0;
  std::uint64_t corrected_mac_field = 0;
  std::uint64_t corrected_word = 0;
  std::uint64_t integrity_violations = 0;
  std::uint64_t counter_tampers = 0;
  std::uint64_t group_reencryptions = 0;
  std::uint64_t mac_evaluations = 0;  ///< flip-and-check work
  std::uint64_t tree_cache_hits = 0;    ///< truncated authentication walks
  std::uint64_t tree_cache_misses = 0;  ///< full root-reaching walks
};

/// Build an EngineStats from hot-path cells (relaxed reads, no locks).
EngineStats engine_stats_from(
    const std::vector<const MetricsCell*>& cells) noexcept;

class SecureMemoryLike {
 public:
  virtual ~SecureMemoryLike() = default;

  virtual std::uint64_t size_bytes() const noexcept = 0;
  virtual std::uint64_t num_blocks() const noexcept = 0;

  /// Write one 64-byte block of plaintext. Returns the outcome: kOk from
  /// a healthy engine; kRegionPoisoned from a fail-closed one (the write
  /// did not happen). No mutation path throws on engine state — only
  /// argument errors (out-of-range blocks) do.
  [[nodiscard]] virtual Status write_block(std::uint64_t block,
                                           const DataBlock& plaintext) = 0;
  /// Verified read of one 64-byte block.
  virtual ReadResult read_block(std::uint64_t block) = 0;

  /// Byte-level convenience (read-modify-write across blocks). Returns
  /// the most severe block status encountered: status_ok() values mean
  /// the operation completed (possibly with corrections); failure values
  /// mean it aborted. `write_bytes` is all-or-nothing: a failure status
  /// leaves the region exactly as it was. Ranges outside the region
  /// (including addr+len overflow) throw std::out_of_range.
  virtual Status write_bytes(std::uint64_t addr,
                             std::span<const std::uint8_t> bytes) = 0;
  virtual Status read_bytes(std::uint64_t addr,
                            std::span<std::uint8_t> out) = 0;

  /// std::byte spans are the preferred signature for new callers — byte
  /// buffers in application code are std::byte/char, and the uint8_t
  /// overloads above remain as the implementation surface. Non-virtual:
  /// they forward after a reinterpret, so every engine gets them for
  /// free. (Derived classes re-expose the full overload set with
  /// `using SecureMemoryLike::write_bytes;` etc.)
  Status write_bytes(std::uint64_t addr, std::span<const std::byte> bytes) {
    return write_bytes(
        addr, std::span<const std::uint8_t>(
                  reinterpret_cast<const std::uint8_t*>(bytes.data()),
                  bytes.size()));
  }
  Status read_bytes(std::uint64_t addr, std::span<std::byte> out) {
    return read_bytes(addr,
                      std::span<std::uint8_t>(
                          reinterpret_cast<std::uint8_t*>(out.data()),
                          out.size()));
  }

  /// ------------------------------------------------------------------
  /// Batch block I/O.
  /// ------------------------------------------------------------------
  /// Semantically equivalent to looping the single-block calls in request
  /// order (the base-class default does exactly that), but engines
  /// override these to amortize work across the batch: crypto kernels run
  /// over the whole request set (4-wide AES pads, deduplicated tree-leaf
  /// verifications, one counter-line sync per dirty line) and sharded
  /// engines take each shard lock once per batch. Unlike the single-block
  /// calls, ALL block indices are validated up front — std::out_of_range
  /// is thrown before anything is mutated.
  [[nodiscard]] virtual std::vector<ReadResult> read_blocks(
      std::span<const std::uint64_t> blocks);
  /// Returns the most severe per-write outcome (kOk, or kRegionPoisoned
  /// from a fail-closed engine, in which case nothing was written).
  [[nodiscard]] virtual Status write_blocks(
      std::span<const BlockWrite> writes);

  /// Scrubbing sweep (paper §3.3): quick parity scan unless `deep`.
  virtual ScrubStatus scrub_block(std::uint64_t block,
                                  bool deep = false) = 0;
  virtual ScrubReport scrub_all(bool deep = false) = 0;

  /// Re-key under a new master secret; false leaves the region intact.
  /// The verdict must be consumed — a caller that assumes success after a
  /// refused rotation keeps serving data under the key it meant to retire.
  [[nodiscard]] virtual bool rotate_master_key(std::uint64_t new_master) = 0;

  /// Persistence (NVMM / hibernate model); see SecureMemory for the
  /// image-format and threat-model contract. `save` returns kOk when the
  /// full image was emitted and kRegionPoisoned from a fail-closed engine
  /// (nothing is written — a poisoned region must not serialize state
  /// that could be mistaken for a good snapshot). A false restore means
  /// the image was rejected (tamper, truncation) — the region contents
  /// are unspecified and the verdict must be consumed.
  [[nodiscard]] virtual Status save(std::ostream& out) = 0;
  [[nodiscard]] virtual bool restore(std::istream& in) = 0;

  /// ------------------------------------------------------------------
  /// Incremental (delta) persistence.
  /// ------------------------------------------------------------------
  /// `save_delta` emits a COPY/ADD delta image against the engine's last
  /// snapshot alignment point (the most recent save/restore/
  /// save_delta/restore_delta) from the dirty-granule bitmap: only the
  /// block groups touched since that point ship as payload. When no base
  /// is known (fresh engine, after a key rotation, or with
  /// SECMEM_DELTA_SNAPSHOT=0) it falls back to a full save() image —
  /// callers always get something restore_delta accepts.
  ///
  /// `restore_delta` accepts both image kinds, dispatching on the magic:
  /// a full image takes the ordinary restore path (including its
  /// wipe-on-failure posture, where the engine has one); a delta image
  /// is verified *in full* — header/command-stream MAC, base seal,
  /// command validation — before a single byte is applied, so a false
  /// return for a delta leaves the region EXACTLY as it was (the
  /// crash/restore-loop contract: a failed restore of delta N never
  /// invalidates applying a clean delta N afterwards). See SECURITY.md.
  [[nodiscard]] virtual Status save_delta(std::ostream& out) = 0;
  [[nodiscard]] virtual bool restore_delta(std::istream& in) = 0;

  /// Buffer-based persistence conveniences over the stream virtuals:
  /// save() fills `image` (cleared first), restore() consumes a span.
  [[nodiscard]] Status save(std::vector<std::byte>& image);
  [[nodiscard]] bool restore(std::span<const std::byte> image);
  [[nodiscard]] Status save_delta(std::vector<std::byte>& image);
  [[nodiscard]] bool restore_delta(std::span<const std::byte> image);

  /// ------------------------------------------------------------------
  /// Observability.
  /// ------------------------------------------------------------------
  /// Point-in-time aggregate counters (lock-free; see EngineStats).
  virtual EngineStats stats() const noexcept = 0;
  virtual void reset_stats() noexcept = 0;

  /// Fold this engine's counters and histograms into `registry` under
  /// `prefix` ("engine" → "engine.reads", sharded engines additionally
  /// publish "engine.shardN.*"). Adds to existing registry contents.
  virtual void publish_metrics(StatRegistry& registry,
                               const std::string& prefix = "engine")
      const = 0;

  /// Attach (or detach with nullptr) a post-mortem trace ring; every
  /// subsequent operation records its outcome. The ring must outlive the
  /// attachment and is shared across shards in sharded engines.
  virtual void attach_trace(TraceRing* ring) = 0;
};

/// Which concrete engine make_engine() instantiates.
enum class EngineKind : std::uint8_t {
  kPlain,       ///< SecureMemory — single-threaded callers only
  kConcurrent,  ///< ConcurrentSecureMemory — one mutex, any thread count
  kSharded,     ///< ShardedSecureMemory — shard-parallel
};

const char* engine_kind_name(EngineKind kind) noexcept;
/// Parse "plain" | "concurrent" | "sharded"; false on anything else.
bool parse_engine_kind(const std::string& text, EngineKind& out) noexcept;

/// Kill switch for the concurrency facades' shared-lock read fast path:
/// SECMEM_SEQLOCK=0 in the environment disables it (every read takes the
/// exclusive lock, the pre-seqlock behavior); anything else — including
/// unset — enables it. Sampled once at engine construction, like
/// SECMEM_TREE_CACHE.
bool seqlock_reads_enabled() noexcept;

/// Kill switch for the batched snapshot pipeline: SECMEM_BATCH_SNAPSHOT=0
/// in the environment pins save/restore to the scalar per-element
/// reference (one stream call per block/lane/MAC, leaf-by-leaf tree
/// rebuild, sequential shard staging); anything else — including unset —
/// takes the chunked/batched path. The two paths produce bit-identical
/// images and accept exactly the same ones. Sampled once at engine
/// construction, like SECMEM_SEQLOCK.
bool batch_snapshot_enabled() noexcept;

/// Kill switch for delta-encoded snapshots: SECMEM_DELTA_SNAPSHOT=0 in
/// the environment makes save_delta emit full images and restore_delta
/// reject delta-format images (full images are still accepted); anything
/// else — including unset — enables the incremental pipeline. Sampled
/// once at engine construction, like SECMEM_BATCH_SNAPSHOT.
bool delta_snapshot_enabled() noexcept;

/// Instantiate an engine. `shards` only matters for kSharded (0 picks 8).
std::unique_ptr<SecureMemoryLike> make_engine(
    const struct SecureMemoryConfig& config, EngineKind kind,
    unsigned shards = 0);

}  // namespace secmem
