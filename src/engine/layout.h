// Physical layout of a protected region and its metadata, plus the
// storage-overhead accounting behind paper Figure 1.
//
// The protected data, counter storage, off-chip tree levels, and (in the
// separate-MAC baseline) MAC storage are carved out of one flat physical
// address space, in that order. All simulator components agree on these
// addresses, so metadata traffic contends with data traffic on the same
// DRAM banks — exactly the effect the paper measures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tree/bonsai_geometry.h"

namespace secmem {

struct LayoutParams {
  std::uint64_t data_bytes = 512ULL * 1024 * 1024;  ///< protected region
  unsigned blocks_per_counter_line = 8;  ///< from the counter scheme
  std::uint64_t onchip_bytes = 3 * 1024; ///< trusted SRAM for tree roots
  bool separate_macs = false;  ///< true: 56-bit MACs in their own region
                               ///< false: MACs ride the ECC lane (paper §3)
  bool ecc_dimm = true;        ///< region backed by x72 ECC DIMMs
  double counter_bits_per_block = 56.0;  ///< for bit-exact overhead figures
};

class SecureRegionLayout {
 public:
  explicit SecureRegionLayout(const LayoutParams& params);

  std::uint64_t data_base() const noexcept { return 0; }
  std::uint64_t data_bytes() const noexcept { return params_.data_bytes; }
  std::uint64_t num_blocks() const noexcept { return num_blocks_; }

  std::uint64_t counter_base() const noexcept { return counter_base_; }
  std::uint64_t counter_bytes() const noexcept { return counter_bytes_; }
  std::uint64_t num_counter_lines() const noexcept { return counter_lines_; }

  const BonsaiGeometry& tree() const noexcept { return tree_; }

  std::uint64_t mac_base() const noexcept { return mac_base_; }
  std::uint64_t mac_bytes() const noexcept { return mac_bytes_; }

  /// Total physical footprint (data + all off-chip metadata).
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }

  /// --- address helpers ---
  std::uint64_t block_addr(std::uint64_t block) const noexcept {
    return block * 64;
  }
  std::uint64_t counter_line_addr(std::uint64_t line) const noexcept {
    return counter_base_ + line * 64;
  }
  /// Address of interior tree node (level >= 1) `node`.
  std::uint64_t tree_node_addr(unsigned level, std::uint64_t node) const;
  /// Address of the MAC line covering `block` (separate-MAC layouts only;
  /// 8 x 56-bit MACs packed per 64-byte line, SGX-style).
  std::uint64_t mac_line_addr(std::uint64_t block) const noexcept {
    return mac_base_ + (block / 8) * 64;
  }

  /// What kind of line a metadata address belongs to.
  enum class Region : std::uint8_t { kData, kCounter, kTree, kMac };
  struct Located {
    Region region;
    unsigned level;      ///< tree level (0 = counter line) when kCounter/kTree
    std::uint64_t index; ///< line/node index within its level
  };
  /// Classify a 64-byte-aligned physical address.
  Located locate(std::uint64_t addr) const noexcept;

  /// --- overhead accounting (Figure 1) ---
  /// All as a percentage of the protected data size.
  double counter_overhead_pct() const noexcept;
  double mac_overhead_pct() const noexcept;
  double tree_overhead_pct() const noexcept;
  double ecc_overhead_pct() const noexcept;  ///< the DIMM's 12.5% (if ECC)
  /// Encryption-metadata overhead: counters + MACs + tree. Excludes the
  /// ECC DIMM's own 12.5%, which exists with or without encryption.
  double metadata_overhead_pct() const noexcept;

 private:
  LayoutParams params_;
  std::uint64_t num_blocks_;
  std::uint64_t counter_lines_;
  std::uint64_t counter_base_;
  std::uint64_t counter_bytes_;
  BonsaiGeometry tree_;
  std::vector<std::uint64_t> tree_level_base_;  ///< per interior level
  std::uint64_t mac_base_ = 0;
  std::uint64_t mac_bytes_ = 0;
  std::uint64_t total_bytes_;
};

}  // namespace secmem
