#include "engine/layout.h"

#include <cassert>

#include "common/bitops.h"

namespace secmem {

SecureRegionLayout::SecureRegionLayout(const LayoutParams& params)
    : params_(params),
      num_blocks_(params.data_bytes / 64),
      counter_lines_(ceil_div(num_blocks_, params.blocks_per_counter_line)),
      counter_base_(params.data_bytes),
      counter_bytes_(counter_lines_ * 64),
      tree_(counter_lines_, params.onchip_bytes) {
  assert(params.data_bytes % 64 == 0);

  std::uint64_t cursor = counter_base_ + counter_bytes_;
  // Interior off-chip levels 1 .. offchip_levels()-1 (the final level in
  // the geometry is on-chip SRAM and occupies no DRAM).
  tree_level_base_.push_back(0);  // level 0 = counter storage, placed above
  for (unsigned lvl = 1; lvl + 1 < tree_.total_levels(); ++lvl) {
    tree_level_base_.push_back(cursor);
    cursor += tree_.nodes_at[lvl] * BonsaiGeometry::kNodeBytes;
  }

  if (params.separate_macs) {
    mac_base_ = cursor;
    mac_bytes_ = ceil_div(num_blocks_, 8) * 64;  // 8 MACs per 64B line
    cursor += mac_bytes_;
  }
  total_bytes_ = cursor;
}

std::uint64_t SecureRegionLayout::tree_node_addr(unsigned level,
                                                 std::uint64_t node) const {
  assert(level >= 1 && level < tree_level_base_.size());
  return tree_level_base_[level] + node * BonsaiGeometry::kNodeBytes;
}

SecureRegionLayout::Located SecureRegionLayout::locate(
    std::uint64_t addr) const noexcept {
  if (addr < counter_base_) return {Region::kData, 0, addr / 64};
  if (addr < counter_base_ + counter_bytes_)
    return {Region::kCounter, 0, (addr - counter_base_) / 64};
  for (unsigned lvl = 1; lvl < tree_level_base_.size(); ++lvl) {
    const std::uint64_t base = tree_level_base_[lvl];
    const std::uint64_t bytes =
        tree_.nodes_at[lvl] * BonsaiGeometry::kNodeBytes;
    if (addr >= base && addr < base + bytes)
      return {Region::kTree, lvl, (addr - base) / 64};
  }
  return {Region::kMac, 0, (addr - mac_base_) / 64};
}

double SecureRegionLayout::counter_overhead_pct() const noexcept {
  // Bit-exact: 56-bit counters cost 56/512 = 10.9% even if the stored
  // lines round up to 64-bit slots (the paper quotes the bit figure).
  return 100.0 * params_.counter_bits_per_block / 512.0;
}

double SecureRegionLayout::mac_overhead_pct() const noexcept {
  if (!params_.separate_macs) return 0.0;  // MACs live in the ECC lane
  return 100.0 * 56.0 / 512.0;
}

double SecureRegionLayout::tree_overhead_pct() const noexcept {
  return 100.0 * static_cast<double>(tree_.offchip_tree_bytes()) /
         static_cast<double>(params_.data_bytes);
}

double SecureRegionLayout::ecc_overhead_pct() const noexcept {
  return params_.ecc_dimm ? 12.5 : 0.0;
}

double SecureRegionLayout::metadata_overhead_pct() const noexcept {
  return counter_overhead_pct() + mac_overhead_pct() + tree_overhead_pct();
}

}  // namespace secmem
