// ShardLockTable — the locking machinery shared by the concurrency
// facades over SecureMemory.
//
// A fixed-size table of mutexes, one per shard, each padded to its own
// cache line so uncontended acquisitions on different shards never
// false-share. ConcurrentSecureMemory is the degenerate single-entry
// table; ShardedSecureMemory uses one entry per shard and the ordered
// multi-lock below for operations that span shards.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace secmem {

class ShardLockTable {
 public:
  explicit ShardLockTable(std::size_t size)
      : size_(size), slots_(std::make_unique<Slot[]>(size)) {
    assert(size > 0);
  }

  std::size_t size() const noexcept { return size_; }

  /// Acquire the lock for one shard.
  std::unique_lock<std::mutex> lock(std::size_t shard) {
    assert(shard < size_);
    return std::unique_lock<std::mutex>(slots_[shard].mu);
  }

  /// Acquire several shard locks deadlock-free. `shards` must be sorted
  /// ascending and duplicate-free — the fixed global order is what makes
  /// concurrent multi-shard operations (batch I/O, cross-shard byte
  /// ranges) safe against each other.
  std::vector<std::unique_lock<std::mutex>> lock_many(
      std::span<const std::size_t> shards) {
    std::vector<std::unique_lock<std::mutex>> held;
    held.reserve(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
      assert(shards[i] < size_);
      assert(i == 0 || shards[i] > shards[i - 1]);
      held.push_back(lock(shards[i]));
    }
    return held;
  }

 private:
  /// Destructive-interference padding. A fixed 64 bytes rather than
  /// std::hardware_destructive_interference_size: the constant must not
  /// vary across TUs compiled with different tuning flags.
  struct alignas(64) Slot {
    std::mutex mu;
  };

  std::size_t size_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace secmem
