// Shard locking vocabulary — the ordered multi-lock machinery shared by
// the concurrency facades over SecureMemory.
//
// Locking discipline (machine-checked where clang's Thread Safety
// Analysis can reach, TSan-covered everywhere):
//
//  - Every shard's state is SECMEM_GUARDED_BY its own secmem::SeqLock
//    (engine/sharded_memory.h keeps the lock *inside* the Shard struct so
//    the analysis can unify "this shard's lock" with "this shard's
//    engine"); single-shard operations take a SeqWriteLock (or a
//    SeqReadLock on the const read fast path) and are fully statically
//    checked.
//
//  - Operations that span shards (cross-shard byte ranges) acquire their
//    runtime-selected set of locks through lock_in_order() below: strictly
//    ascending table order, the fixed global order that makes concurrent
//    multi-shard operations safe against each other. A runtime-indexed
//    lock set is beyond static analysis — callers carry
//    SECMEM_NO_THREAD_SAFETY_ANALYSIS and a comment, and stay in the TSan
//    preset's test filter.
#pragma once

#include <cassert>
#include <cstddef>
#include <mutex>
#include <vector>

#include "common/thread_annotations.h"

namespace secmem {

/// Acquire several capability mutexes deadlock-free. `mutexes` must be in
/// a fixed global order (ascending shard index), duplicate-free — callers
/// pass the sorted output of a shards_in_range-style routing computation.
/// The returned guards release in reverse order on destruction.
///
/// Works for any exclusive capability lock (secmem::Mutex, or
/// secmem::SeqLock — whose lock()/unlock() also bump the generation, so
/// ordered multi-shard writers invalidate optimistic readers exactly
/// like single-shard SeqWriteLock writers do).
///
/// Invisible to thread-safety analysis (the lock set is runtime data);
/// callers must be SECMEM_NO_THREAD_SAFETY_ANALYSIS.
template <typename LockT>
inline std::vector<std::unique_lock<LockT>> lock_in_order(
    const std::vector<LockT*>& mutexes) {
  std::vector<std::unique_lock<LockT>> held;
  held.reserve(mutexes.size());
  for (std::size_t i = 0; i < mutexes.size(); ++i) {
    assert(mutexes[i] != nullptr);
    assert(i == 0 || mutexes[i] != mutexes[i - 1]);
    held.emplace_back(*mutexes[i]);
  }
  return held;
}

}  // namespace secmem
