#include "engine/secure_memory_like.h"

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "engine/concurrent.h"
#include "engine/secure_memory.h"
#include "engine/sharded_memory.h"

namespace secmem {

const char* read_status_name(ReadStatus status) noexcept {
  return to_string(status);
}

std::vector<ReadResult> SecureMemoryLike::read_blocks(
    std::span<const std::uint64_t> blocks) {
  for (const std::uint64_t block : blocks)
    if (block >= num_blocks())
      throw std::out_of_range("read_blocks: block " + std::to_string(block) +
                              " out of range");
  std::vector<ReadResult> results(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i)
    results[i] = read_block(blocks[i]);
  return results;
}

Status SecureMemoryLike::write_blocks(std::span<const BlockWrite> writes) {
  for (const BlockWrite& w : writes)
    if (w.block >= num_blocks())
      throw std::out_of_range("write_blocks: block " +
                              std::to_string(w.block) + " out of range");
  Status folded = Status::kOk;
  for (const BlockWrite& w : writes)
    folded = worse(folded, write_block(w.block, w.data));
  return folded;
}

Status SecureMemoryLike::save(std::vector<std::byte>& image) {
  std::ostringstream out(std::ios::binary);
  const Status status = save(out);
  image.clear();
  if (status_ok(status)) {
    const std::string bytes = std::move(out).str();
    image.resize(bytes.size());
    std::memcpy(image.data(), bytes.data(), bytes.size());
  }
  return status;
}

bool SecureMemoryLike::restore(std::span<const std::byte> image) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(image.data()), image.size()),
      std::ios::binary);
  return restore(in);
}

Status SecureMemoryLike::save_delta(std::vector<std::byte>& image) {
  std::ostringstream out(std::ios::binary);
  const Status status = save_delta(out);
  image.clear();
  if (status_ok(status)) {
    const std::string bytes = std::move(out).str();
    image.resize(bytes.size());
    std::memcpy(image.data(), bytes.data(), bytes.size());
  }
  return status;
}

bool SecureMemoryLike::restore_delta(std::span<const std::byte> image) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(image.data()), image.size()),
      std::ios::binary);
  return restore_delta(in);
}

const char* scrub_status_name(ScrubStatus status) noexcept {
  switch (status) {
    case ScrubStatus::kClean: return "clean";
    case ScrubStatus::kRepairedMacField: return "repaired-mac-field";
    case ScrubStatus::kRepairedData: return "repaired-data";
    case ScrubStatus::kUncorrectable: return "uncorrectable";
    case ScrubStatus::kCounterTampered: return "counter-tampered";
    case ScrubStatus::kRegionPoisoned: return "region-poisoned";
  }
  return "?";
}

Status to_status(ScrubStatus status) noexcept {
  switch (status) {
    case ScrubStatus::kClean: return Status::kOk;
    case ScrubStatus::kRepairedMacField: return Status::kCorrectedMacField;
    case ScrubStatus::kRepairedData: return Status::kCorrectedData;
    case ScrubStatus::kUncorrectable: return Status::kIntegrityViolation;
    case ScrubStatus::kCounterTampered: return Status::kCounterTampered;
    case ScrubStatus::kRegionPoisoned: return Status::kRegionPoisoned;
  }
  return Status::kIntegrityViolation;
}

EngineStats engine_stats_from(
    const std::vector<const MetricsCell*>& cells) noexcept {
  EngineStats stats;
  for (const MetricsCell* cell : cells) {
    stats.reads += cell->value(MetricId::kReads);
    stats.writes += cell->value(MetricId::kWrites);
    stats.corrected_data += cell->value(MetricId::kCorrectedData);
    stats.corrected_mac_field += cell->value(MetricId::kCorrectedMacField);
    stats.corrected_word += cell->value(MetricId::kCorrectedWord);
    stats.integrity_violations +=
        cell->value(MetricId::kIntegrityViolations);
    stats.counter_tampers += cell->value(MetricId::kCounterTampers);
    stats.group_reencryptions +=
        cell->value(MetricId::kGroupReencryptions);
    stats.mac_evaluations += cell->value(MetricId::kMacEvaluations);
    stats.tree_cache_hits += cell->value(MetricId::kTreeCacheHits);
    stats.tree_cache_misses += cell->value(MetricId::kTreeCacheMisses);
  }
  return stats;
}

const char* engine_kind_name(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kPlain: return "plain";
    case EngineKind::kConcurrent: return "concurrent";
    case EngineKind::kSharded: return "sharded";
  }
  return "?";
}

bool parse_engine_kind(const std::string& text, EngineKind& out) noexcept {
  if (text == "plain" || text == "single") {
    out = EngineKind::kPlain;
  } else if (text == "concurrent" || text == "single-mutex") {
    out = EngineKind::kConcurrent;
  } else if (text == "sharded") {
    out = EngineKind::kSharded;
  } else {
    return false;
  }
  return true;
}

bool seqlock_reads_enabled() noexcept {
  const char* env = std::getenv("SECMEM_SEQLOCK");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

bool batch_snapshot_enabled() noexcept {
  const char* env = std::getenv("SECMEM_BATCH_SNAPSHOT");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

bool delta_snapshot_enabled() noexcept {
  const char* env = std::getenv("SECMEM_DELTA_SNAPSHOT");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

std::unique_ptr<SecureMemoryLike> make_engine(const SecureMemoryConfig& config,
                                              EngineKind kind,
                                              unsigned shards) {
  switch (kind) {
    case EngineKind::kPlain:
      return std::make_unique<SecureMemory>(config);
    case EngineKind::kConcurrent:
      return std::make_unique<ConcurrentSecureMemory>(config);
    case EngineKind::kSharded:
      return std::make_unique<ShardedSecureMemory>(config,
                                                   shards ? shards : 8);
  }
  return nullptr;
}

}  // namespace secmem
