// ShardedSecureMemory — a concurrent, horizontally-partitioned secure
// region.
//
// The single-mutex ConcurrentSecureMemory facade serializes every
// operation, so adding threads adds zero throughput. This engine instead
// partitions the region across N independent SecureMemory shards — each
// with its own working keys, counter scheme, Bonsai tree, and backing
// store. Operations on different shards proceed fully in parallel; the
// cryptographic work (AES-CTR, Carter-Wegman, tree walks) dominates the
// lock cost, so read throughput scales with min(threads, shards).
//
// Locking discipline — machine-checked under clang -Wthread-safety:
// every shard is a Shard struct carrying its own cache-line-aligned
// secmem::Mutex, and the shard's engine is SECMEM_GUARDED_BY that mutex,
// so a single-shard operation that touches an engine without a MutexLock
// on the owning shard is a *build error*. Cross-shard paths (the byte
// API) acquire their runtime-selected lock sets in fixed ascending table
// order via lock_in_order (engine/lock_table.h); those few functions are
// beyond static analysis and carry SECMEM_NO_THREAD_SAFETY_ANALYSIS plus
// TSan coverage.
//
// Routing granularity is the *block-group* (4 KB for the paper's delta
// schemes): groups are striped round-robin across shards. A group is the
// unit of delta-counter locality — one reference counter, one
// re-encryption blast radius, one counter-storage line — so keeping each
// group whole inside one shard preserves the paper's §4 dynamics exactly;
// only the assignment of groups to trees changes. Each shard derives its
// own master secret from the region key, so identical plaintexts in
// different shards never share (key, addr, counter) nonces.
//
// Each shard also carries its own verified-frontier tree cache
// (config.tree_cache_kb per shard, see tree/tree_cache.h), mutated only
// under that shard's lock — per-shard caches fall out of per-shard
// SecureMemory instances with no extra synchronization.
//
// Metrics: each shard records into its own cache-line-aligned MetricsCell
// (relaxed atomics), and the region keeps one more cell for byte-level
// operations. stats()/publish_metrics() aggregate the cells without
// taking any shard lock, so observability never stalls the datapath.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "engine/lock_table.h"
#include "engine/secure_memory.h"
#include "engine/secure_memory_like.h"

namespace secmem {

class ShardedSecureMemory : public SecureMemoryLike {
 public:
  /// `config.size_bytes` is the TOTAL region size; it must divide evenly
  /// into `num_shards` shards of a whole number of routing granules
  /// (std::invalid_argument otherwise).
  ShardedSecureMemory(const SecureMemoryConfig& config, unsigned num_shards);

  unsigned num_shards() const noexcept { return num_shards_; }
  std::uint64_t size_bytes() const noexcept override {
    return config_.size_bytes;
  }
  std::uint64_t num_blocks() const noexcept override { return num_blocks_; }
  /// Blocks per routing granule (= one block-group, ≥ one counter line).
  unsigned granule_blocks() const noexcept { return granule_blocks_; }
  /// Which shard owns a (global) block.
  unsigned shard_of_block(std::uint64_t block) const noexcept {
    return static_cast<unsigned>((block / granule_blocks_) % num_shards_);
  }

  /// ------------------------------------------------------------------
  /// Single-block operations (lock the owning shard only).
  /// ------------------------------------------------------------------
  void write_block(std::uint64_t block, const DataBlock& plaintext) override;
  ReadResult read_block(std::uint64_t block) override;
  ScrubStatus scrub_block(std::uint64_t block, bool deep = false) override;

  /// ------------------------------------------------------------------
  /// Batch I/O — sorts requests by shard, acquires each shard lock once
  /// per batch, and runs each shard's run of requests through the
  /// shard's own batch routine (batched crypto kernels, deduplicated
  /// tree verifications). Results come back in request order. Requests
  /// to the same shard are applied atomically per shard; the batch as a
  /// whole is NOT a cross-shard snapshot.
  /// ------------------------------------------------------------------
  using BlockWrite = secmem::BlockWrite;
  [[nodiscard]] std::vector<ReadResult> read_blocks(
      std::span<const std::uint64_t> blocks) override;
  void write_blocks(std::span<const BlockWrite> writes) override;

  /// ------------------------------------------------------------------
  /// Byte-level API. Locks every shard the range touches (in table
  /// order) for the duration, so ranges are read/written atomically even
  /// across shard boundaries. `write_bytes` keeps SecureMemory's
  /// all-or-nothing guarantee: edge blocks are pre-verified before any
  /// shard is mutated.
  /// ------------------------------------------------------------------
  Status write_bytes(std::uint64_t addr,
                     std::span<const std::uint8_t> bytes) override;
  Status read_bytes(std::uint64_t addr,
                    std::span<std::uint8_t> out) override;

  /// ------------------------------------------------------------------
  /// Region-wide maintenance, shard-parallel: each shard is swept by its
  /// own thread while the other shards keep serving their callers.
  /// ------------------------------------------------------------------
  ScrubReport scrub_all(bool deep = false) override;

  /// Re-key every shard (in parallel) under secrets derived from
  /// `new_master`. All-or-nothing across shards: if any shard fails
  /// verification, already-rotated shards are rotated back to the old
  /// master and false is returned with the region's contents intact.
  [[nodiscard]] bool rotate_master_key(std::uint64_t new_master) override;

  /// Aggregated operational statistics across all shards — lock-free:
  /// sums the shards' relaxed-atomic cells without touching the locks.
  EngineStats stats() const noexcept override;
  void reset_stats() noexcept override;

  /// Publishes the region aggregate under `prefix` plus a per-shard
  /// breakdown under "<prefix>.shard<N>".
  void publish_metrics(StatRegistry& registry,
                       const std::string& prefix = "engine") const override;

  /// The shared ring receives every shard's events, tagged with the shard
  /// index; region-level byte operations record under the owning shard of
  /// their first block.
  void attach_trace(TraceRing* ring) override;

  /// Persistence: a shard-count-tagged container of per-shard images.
  /// On restore failure, false is returned and the region is left in a
  /// valid but unspecified mix of restored/re-zeroed shards — treat the
  /// contents as lost, exactly as SecureMemory::restore does.
  void save(std::ostream& out) override;
  [[nodiscard]] bool restore(std::istream& in) override;

  /// Run `fn(SecureMemory&)` against one shard under its lock — for
  /// tests and attacker simulation (the untrusted view is per shard).
  template <typename Fn>
  auto with_shard_exclusive(unsigned shard, Fn&& fn) {
    Shard& s = shards_[shard];
    const MutexLock lock(s.mu);
    return std::forward<Fn>(fn)(*s.engine);
  }

 private:
  /// One partition: the lock and the state it guards live side by side so
  /// thread-safety analysis can tie them together, and each shard's hot
  /// mutex sits on its own cache line (fixed 64 rather than
  /// std::hardware_destructive_interference_size: the constant must not
  /// vary across TUs compiled with different tuning flags).
  struct alignas(64) Shard {
    mutable Mutex mu;
    std::unique_ptr<SecureMemory> engine SECMEM_GUARDED_BY(mu)
        SECMEM_PT_GUARDED_BY(mu);
  };

  struct Route {
    unsigned shard;
    std::uint64_t local_block;
  };
  Route route(std::uint64_t block) const;
  void check_block(std::uint64_t block) const;
  /// Sorted, duplicate-free shard ids touched by blocks [first, last].
  std::vector<std::size_t> shards_in_range(std::uint64_t first_block,
                                           std::uint64_t last_block) const;
  /// Mutexes of `shards` (table order preserved) for lock_in_order.
  std::vector<Mutex*> mutexes_of(std::span<const std::size_t> shards) const;
  /// Every cell backing this region: each shard's, then the region's own.
  std::vector<const MetricsCell*> all_cells() const;

  SecureMemoryConfig config_;  ///< region-level config (total size)
  unsigned num_shards_;
  unsigned granule_blocks_;
  std::uint64_t num_blocks_;
  /// Fixed-size at construction; Shard is neither movable nor copyable.
  std::unique_ptr<Shard[]> shards_;
  MetricsCell metrics_;  ///< region-level (byte-op) counters
  TraceRing* trace_ = nullptr;
};

}  // namespace secmem
