// ShardedSecureMemory — a concurrent, horizontally-partitioned secure
// region.
//
// The single-mutex ConcurrentSecureMemory facade serializes every
// operation, so adding threads adds zero throughput. This engine instead
// partitions the region across N independent SecureMemory shards — each
// with its own working keys, counter scheme, Bonsai tree, and backing
// store. Operations on different shards proceed fully in parallel; the
// cryptographic work (AES-CTR, Carter-Wegman, tree walks) dominates the
// lock cost, so read throughput scales with min(threads, shards).
//
// Locking discipline — machine-checked under clang -Wthread-safety:
// every shard is a Shard struct carrying its own cache-line-aligned
// secmem::SeqLock (a reader/writer mutex publishing a generation
// counter, common/thread_annotations.h), and the shard's engine is
// SECMEM_GUARDED_BY that lock, so touching an engine without holding it
// is a *build error*. Writers and every mutating maintenance operation
// take the exclusive side (SeqWriteLock); verified reads take the shared
// side (SeqReadLock) and run through SecureMemory's const
// read_block_shared() fast path, so a read-mostly workload is limited by
// crypto throughput, not lock convoys — with N readers on one hot shard
// the old per-shard std::mutex serialized them all. Cross-shard paths
// acquire runtime-selected exclusive lock sets in fixed ascending table
// order via lock_in_order (engine/lock_table.h) — except read_bytes,
// which first attempts an optimistic generation-validated snapshot:
// capture each involved shard's generation, read block by block under
// short shared locks, and accept iff every generation is unchanged
// (equal and even), retrying through the exclusive path otherwise. The
// runtime-lock-set and optimistic functions are beyond static analysis
// and carry SECMEM_NO_THREAD_SAFETY_ANALYSIS plus TSan coverage.
// SECMEM_SEQLOCK=0 in the environment (sampled at construction) disables
// every shared/optimistic path — the pre-seqlock all-exclusive behavior.
//
// Routing granularity is the *block-group* (4 KB for the paper's delta
// schemes): groups are striped round-robin across shards. A group is the
// unit of delta-counter locality — one reference counter, one
// re-encryption blast radius, one counter-storage line — so keeping each
// group whole inside one shard preserves the paper's §4 dynamics exactly;
// only the assignment of groups to trees changes. Each shard derives its
// own master secret from the region key, so identical plaintexts in
// different shards never share (key, addr, counter) nonces.
//
// Each shard also carries its own verified-frontier tree cache
// (config.tree_cache_kb per shard, see tree/tree_cache.h), mutated only
// under that shard's lock — per-shard caches fall out of per-shard
// SecureMemory instances with no extra synchronization.
//
// Metrics: each shard records into its own cache-line-aligned MetricsCell
// (relaxed atomics), and the region keeps one more cell for byte-level
// operations. stats()/publish_metrics() aggregate the cells without
// taking any shard lock, so observability never stalls the datapath.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "engine/lock_table.h"
#include "engine/secure_memory.h"
#include "engine/secure_memory_like.h"

namespace secmem {

/// Wall-time split of a staged restore, for benchmarks: seconds spent
/// parsing/validating (staging — the parallelizable half) versus
/// adopting the staged state (commit). Filled by restore_timed().
struct SnapshotTiming {
  double stage_s = 0.0;
  double commit_s = 0.0;
};

class ShardedSecureMemory : public SecureMemoryLike {
 public:
  /// `config.size_bytes` is the TOTAL region size; it must divide evenly
  /// into `num_shards` shards of a whole number of routing granules
  /// (std::invalid_argument otherwise).
  ShardedSecureMemory(const SecureMemoryConfig& config, unsigned num_shards);

  unsigned num_shards() const noexcept { return num_shards_; }
  std::uint64_t size_bytes() const noexcept override {
    return config_.size_bytes;
  }
  std::uint64_t num_blocks() const noexcept override { return num_blocks_; }
  /// Blocks per routing granule (= one block-group, ≥ one counter line).
  unsigned granule_blocks() const noexcept { return granule_blocks_; }
  /// Which shard owns a (global) block.
  unsigned shard_of_block(std::uint64_t block) const noexcept {
    return static_cast<unsigned>((block / granule_blocks_) % num_shards_);
  }

  /// ------------------------------------------------------------------
  /// Single-block operations (lock the owning shard only).
  /// ------------------------------------------------------------------
  [[nodiscard]] Status write_block(std::uint64_t block,
                                   const DataBlock& plaintext) override;
  ReadResult read_block(std::uint64_t block) override;
  ScrubStatus scrub_block(std::uint64_t block, bool deep = false) override;

  /// ------------------------------------------------------------------
  /// Batch I/O — sorts requests by shard, acquires each shard lock once
  /// per batch, and runs each shard's run of requests through the
  /// shard's own batch routine (batched crypto kernels, deduplicated
  /// tree verifications). Results come back in request order. Requests
  /// to the same shard are applied atomically per shard; the batch as a
  /// whole is NOT a cross-shard snapshot.
  /// ------------------------------------------------------------------
  using BlockWrite = secmem::BlockWrite;
  [[nodiscard]] std::vector<ReadResult> read_blocks(
      std::span<const std::uint64_t> blocks) override;
  [[nodiscard]] Status write_blocks(std::span<const BlockWrite> writes)
      override;

  /// ------------------------------------------------------------------
  /// Byte-level API. Ranges are read/written atomically even across
  /// shard boundaries. `write_bytes` exclusively locks every shard the
  /// range touches (in table order) and keeps SecureMemory's
  /// all-or-nothing guarantee: edge blocks are pre-verified before any
  /// shard is mutated. `read_bytes` first tries the optimistic
  /// generation-validated snapshot (short shared locks, no writer
  /// exclusion — see the file comment); equal generations before and
  /// after prove the range was read at one consistent instant. Torn
  /// snapshots retry, then fall back to the exclusive protocol, with
  /// read accounting deferred until a pass commits so retries never
  /// double-count.
  /// ------------------------------------------------------------------
  Status write_bytes(std::uint64_t addr,
                     std::span<const std::uint8_t> bytes) override;
  Status read_bytes(std::uint64_t addr,
                    std::span<std::uint8_t> out) override;

  /// ------------------------------------------------------------------
  /// Region-wide maintenance, shard-parallel on a bounded worker pool
  /// (min(shards, hardware_concurrency) threads sharing an atomic shard
  /// cursor — a 64-shard region on a 4-core box used to spawn 64
  /// threads). Unswept shards keep serving their callers.
  /// ------------------------------------------------------------------
  ScrubReport scrub_all(bool deep = false) override;

  /// Re-key every shard (in parallel) under secrets derived from
  /// `new_master`. All-or-nothing across shards: if any shard fails
  /// verification, already-rotated shards are rotated back to the old
  /// master and false is returned with the region's contents intact.
  ///
  /// The rollback itself re-reads freshly re-encrypted data, so it
  /// *normally* cannot fail — but a fault or active tamper landing in
  /// the rollback window can still make a shard refuse, leaving the
  /// region split-keyed (some shards under the old master, some under
  /// the new). That outcome is checked, not assumed: each failed
  /// rollback records kRotateRollbackFailures plus a key-rotation trace
  /// event against the shard, and the region is *poisoned* — see
  /// poisoned() — so split-keyed state can never be silently served.
  [[nodiscard]] bool rotate_master_key(std::uint64_t new_master) override;

  /// True after a key-rotation rollback failure left shards under
  /// different masters. While poisoned, every operation reports
  /// Status::kRegionPoisoned — verified reads fail closed rather than
  /// decrypt half the region with retired keys, byte I/O and every
  /// mutation path (write_block/write_blocks/write_bytes/save) return
  /// the status without touching any shard, scrubs report
  /// ScrubStatus::kRegionPoisoned, and rotate_master_key refuses. No
  /// path throws on poisoning. The only way out is a successful
  /// restore() of a known-good image, which clears the flag.
  bool poisoned() const noexcept {
    return poisoned_.load(std::memory_order_acquire);
  }

  /// Test-only fault injection: invoked (with no shard locks held)
  /// between a failed forward rotation pass and the rollback pass — the
  /// window in which tests tamper a rotated shard so its rollback
  /// verification fails. Never used in production paths.
  void set_rotate_rollback_fault_hook(std::function<void()> hook) {
    rotate_rollback_fault_hook_ = std::move(hook);
  }

  /// Aggregated operational statistics across all shards — lock-free:
  /// sums the shards' relaxed-atomic cells without touching the locks.
  EngineStats stats() const noexcept override;
  void reset_stats() noexcept override;

  /// Publishes the region aggregate under `prefix` plus a per-shard
  /// breakdown under "<prefix>.shard<N>".
  void publish_metrics(StatRegistry& registry,
                       const std::string& prefix = "engine") const override;

  /// The shared ring receives every shard's events, tagged with the shard
  /// index; region-level byte operations record under the owning shard of
  /// their first block.
  void attach_trace(TraceRing* ring) override;

  /// Persistence: a shard-count-tagged container of per-shard images.
  /// restore() is all-or-nothing across shards: every shard's image is
  /// staged and fully validated (sealed-root check included) while all
  /// shard locks are held, and only then are the shards committed —
  /// mirroring write_bytes' pre-verify-then-mutate protocol. A false
  /// return means the region is EXACTLY as it was, including a poisoned
  /// flag; a true return restores every shard and clears poisoning.
  ///
  /// Both directions are shard-parallel on the maintenance worker pool
  /// (see scrub_all): save() serializes each shard into its own
  /// exactly-sized buffer under that shard's lock and concatenates them
  /// in shard order — byte-identical to the sequential stream; restore()
  /// bulk-reads the whole per-shard payload once and stages every
  /// shard's slice concurrently, all locks held throughout, so the
  /// atomicity contract above is unchanged. SECMEM_BATCH_SNAPSHOT=0 at
  /// construction pins the sequential scalar reference.
  [[nodiscard]] Status save(std::ostream& out) override;
  [[nodiscard]] bool restore(std::istream& in) override;

  /// Delta persistence: a shard-count-tagged container of per-shard
  /// delta images (see SecureMemory::save_delta). Unlike the full
  /// container, per-shard payloads are variable-sized — a shard with a
  /// hot working set emits a small COPY/ADD delta while a shard with a
  /// broken chain (fresh, just rotated) falls back to its full image —
  /// so a length table sits between the header and the payloads, and
  /// every shard serializes into a private buffer regardless of the
  /// batch switch (the switch only decides whether those buffers fill
  /// in parallel).
  ///
  /// restore_delta() accepts BOTH container kinds, dispatching on the
  /// magic: a full container (save()'s output) takes the full-restore
  /// path; a delta container bulk-reads the payload once, slices it by
  /// the length table, and stages every shard's slice — itself sniffed
  /// as a full image or a delta on ITS magic — with all shard locks
  /// held, then commits. Same all-or-nothing contract as restore(): any
  /// staging failure (container damage, one tampered shard, one stale
  /// base seal) returns false with the region EXACTLY as it was. The
  /// one exception mirrors SecureMemory::commit_delta's
  /// defense-in-depth verdict: a post-apply root mismatch on a shard
  /// (cryptographically negligible) wipes that shard and POISONS the
  /// region rather than serve a half-applied state.
  [[nodiscard]] Status save_delta(std::ostream& out) override;
  [[nodiscard]] bool restore_delta(std::istream& in) override;

  /// restore_delta() plus a stage/commit wall-time split for the
  /// snapshot benchmark. Accepts both container kinds.
  [[nodiscard]] bool restore_timed(std::istream& in, SnapshotTiming& timing);

  /// Total dirty delta-granules across shards — a relaxed-atomic
  /// snapshot, lock-free like stats().
  std::uint64_t dirty_granules() const noexcept;

  // Re-expose the base class's std::byte-span / buffer overloads.
  using SecureMemoryLike::read_bytes;
  using SecureMemoryLike::restore;
  using SecureMemoryLike::restore_delta;
  using SecureMemoryLike::save;
  using SecureMemoryLike::save_delta;
  using SecureMemoryLike::write_bytes;

  /// Run `fn(SecureMemory&)` against one shard under its exclusive lock
  /// — for tests and attacker simulation (the untrusted view is per
  /// shard). Bumps the shard's generation like any writer, so optimistic
  /// readers never consume a half-tampered snapshot.
  template <typename Fn>
  auto with_shard_exclusive(unsigned shard, Fn&& fn) {
    Shard& s = shards_[shard];
    const SeqWriteLock lock(s.mu);
    return std::forward<Fn>(fn)(*s.engine);
  }

 private:
  /// One partition: the lock and the state it guards live side by side so
  /// thread-safety analysis can tie them together, and each shard's hot
  /// mutex sits on its own cache line (fixed 64 rather than
  /// std::hardware_destructive_interference_size: the constant must not
  /// vary across TUs compiled with different tuning flags).
  struct alignas(64) Shard {
    mutable SeqLock mu;
    std::unique_ptr<SecureMemory> engine SECMEM_GUARDED_BY(mu)
        SECMEM_PT_GUARDED_BY(mu);
  };

  struct Route {
    unsigned shard;
    std::uint64_t local_block;
  };
  Route route(std::uint64_t block) const;
  void check_block(std::uint64_t block) const;
  /// Sorted, duplicate-free shard ids touched by blocks [first, last].
  std::vector<std::size_t> shards_in_range(std::uint64_t first_block,
                                           std::uint64_t last_block) const;
  /// Mutexes of `shards` (table order preserved) for lock_in_order.
  std::vector<SeqLock*> mutexes_of(std::span<const std::size_t> shards) const;
  /// Every cell backing this region: each shard's, then the region's own.
  std::vector<const MetricsCell*> all_cells() const;
  /// One optimistic generation-validated attempt at a cross-shard byte
  /// read; nullopt means torn-or-declined (caller retries / falls back).
  std::optional<Status> try_read_bytes_optimistic(
      std::uint64_t addr, std::span<std::uint8_t> out,
      std::span<const std::size_t> involved);
  /// restore() / restore_delta() bodies past the container magic, with
  /// optional stage/commit timing. Callers have consumed the 8 magic
  /// bytes and hold no locks yet.
  bool restore_full_tail(std::istream& in, SnapshotTiming* timing);
  bool restore_delta_tail(std::istream& in, SnapshotTiming* timing);
  /// Invalidate every shard's delta base (see SecureMemory::break_chain)
  /// after a container-level snapshot stream failure: the shards aligned
  /// on an image that never persisted, so the next save_delta must fall
  /// back to a full image.
  void break_shard_chains();
  /// Fail-closed verified-read outcome while poisoned.
  ReadResult poisoned_read() const noexcept;
  /// Account + trace one refused mutation on a poisoned region; returns
  /// Status::kRegionPoisoned for the caller to propagate.
  Status poisoned_mutation(std::uint64_t block) const noexcept;

  SecureMemoryConfig config_;  ///< region-level config (total size)
  unsigned num_shards_;
  unsigned granule_blocks_;
  std::uint64_t num_blocks_;
  /// Shared-read fast path enabled (SECMEM_SEQLOCK, construction-time).
  bool seqlock_reads_;
  /// Shard-parallel snapshot pipeline enabled (SECMEM_BATCH_SNAPSHOT,
  /// construction-time; the shard engines sample the same switch for
  /// their own chunked-I/O and bulk-tree-rebuild paths).
  bool batch_snapshot_;
  /// Fixed-size at construction; Shard is neither movable nor copyable.
  std::unique_ptr<Shard[]> shards_;
  /// Set on key-rotation rollback failure; cleared by successful
  /// restore(). Acquire/release so the thread observing the flag also
  /// observes the trace/metric records that explain it.
  std::atomic<bool> poisoned_{false};
  std::function<void()> rotate_rollback_fault_hook_;  ///< test-only seam
  mutable MetricsCell metrics_;  ///< region-level (byte-op) counters
  TraceRing* trace_ = nullptr;
};

}  // namespace secmem
