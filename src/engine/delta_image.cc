#include "engine/delta_image.h"

#include <cstring>
#include <unordered_map>

#include "common/bitops.h"

namespace secmem::delta {
namespace {

constexpr std::size_t kCounterLineBytes = 64;
constexpr std::size_t kCopyWire = 1 + 3 * 8;  // op, dst, n, src
constexpr std::size_t kAddWire = 1 + 2 * 8;   // op, dst, n (+ payload)

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  std::uint8_t le[8];
  store_le64(le, v);
  out.insert(out.end(), le, le + 8);
}

void append_copy(std::vector<std::uint8_t>& out, std::uint64_t dst,
                 std::uint64_t n, std::uint64_t src) {
  out.push_back(Command::kCopy);
  append_u64(out, dst);
  append_u64(out, n);
  append_u64(out, src);
}

/// Append granule g's payload: ciphertext, lanes, MACs (LE), counters.
void append_payload(const Geometry& geo, const ConstSections& s,
                    std::uint64_t g, std::vector<std::uint8_t>& out) {
  const std::uint64_t b0 = geo.block_start(g);
  const std::uint64_t nb = geo.blocks_in(g);
  const auto* ct = reinterpret_cast<const std::uint8_t*>(
      s.ciphertext.data() + b0);
  out.insert(out.end(), ct, ct + nb * sizeof(DataBlock));
  const auto* ln = reinterpret_cast<const std::uint8_t*>(s.lanes.data() + b0);
  out.insert(out.end(), ln, ln + nb * sizeof(EccLane));
  if (geo.separate_macs)
    for (std::uint64_t b = b0; b < b0 + nb; ++b) append_u64(out, s.macs[b]);
  const std::uint64_t l0 = geo.line_start(g);
  const std::uint64_t nl = geo.lines_in(g);
  const std::uint8_t* lines = s.counters.data() + l0 * kCounterLineBytes;
  out.insert(out.end(), lines, lines + nl * kCounterLineBytes);
}

void append_add(const Geometry& geo, const ConstSections& s,
                std::uint64_t dst, std::uint64_t n,
                std::vector<std::uint8_t>& out) {
  out.push_back(Command::kAdd);
  append_u64(out, dst);
  append_u64(out, n);
  for (std::uint64_t g = dst; g < dst + n; ++g) append_payload(geo, s, g, out);
}

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* p,
                    std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Content hash of one granule across all sections (diff candidates).
std::uint64_t granule_hash(const Geometry& geo, const ConstSections& s,
                           std::uint64_t g) noexcept {
  const std::uint64_t b0 = geo.block_start(g);
  const std::uint64_t nb = geo.blocks_in(g);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, reinterpret_cast<const std::uint8_t*>(s.ciphertext.data() + b0),
            nb * sizeof(DataBlock));
  h = fnv1a(h, reinterpret_cast<const std::uint8_t*>(s.lanes.data() + b0),
            nb * sizeof(EccLane));
  if (geo.separate_macs)
    for (std::uint64_t b = b0; b < b0 + nb; ++b) {
      std::uint8_t le[8];
      store_le64(le, s.macs[b]);
      h = fnv1a(h, le, 8);
    }
  h = fnv1a(h,
            s.counters.data() + geo.line_start(g) * kCounterLineBytes,
            geo.lines_in(g) * kCounterLineBytes);
  return h;
}

/// Verified byte equality of granule `a` in `x` and granule `b` in `y`
/// (same shape required — callers only compare equal-sized granules).
/// These compares dedup two caller-owned ciphertext images inside the
/// diff encoder — no secret is being verified against attacker input,
/// so variable-time memcmp is fine (and the whole point: candidates
/// mismatch in the first bytes almost always).
bool granules_equal(const Geometry& geo, const ConstSections& x,
                    std::uint64_t a, const ConstSections& y,
                    std::uint64_t b) noexcept {
  const std::uint64_t nb = geo.blocks_in(a);
  if (nb != geo.blocks_in(b) || geo.lines_in(a) != geo.lines_in(b))
    return false;
  if (std::memcmp(x.ciphertext.data() +  // secmem-lint: allow(ct-compare)
                      geo.block_start(a),
                  y.ciphertext.data() + geo.block_start(b),
                  nb * sizeof(DataBlock)) != 0)
    return false;
  if (std::memcmp(x.lanes.data() +  // secmem-lint: allow(ct-compare)
                      geo.block_start(a),
                  y.lanes.data() + geo.block_start(b),
                  nb * sizeof(EccLane)) != 0)
    return false;
  if (geo.separate_macs &&
      std::memcmp(x.macs.data() +  // secmem-lint: allow(ct-compare)
                      geo.block_start(a),
                  y.macs.data() + geo.block_start(b),
                  nb * sizeof(std::uint64_t)) != 0)
    return false;
  return std::memcmp(x.counters.data() +  // secmem-lint: allow(ct-compare)
                         geo.line_start(a) * kCounterLineBytes,
                     y.counters.data() + geo.line_start(b) * kCounterLineBytes,
                     geo.lines_in(a) * kCounterLineBytes) == 0;
}

}  // namespace

std::uint64_t Geometry::payload_bytes(std::uint64_t g) const noexcept {
  const std::uint64_t nb = blocks_in(g);
  std::uint64_t bytes = nb * (sizeof(DataBlock) + sizeof(EccLane));
  if (separate_macs) bytes += nb * sizeof(std::uint64_t);
  return bytes + lines_in(g) * kCounterLineBytes;
}

std::uint64_t encode_from_dirty(const Geometry& geo,
                                const ConstSections& target,
                                std::span<const std::uint64_t> dirty_words,
                                std::vector<std::uint8_t>& out) {
  const std::uint64_t granules = geo.num_granules();
  std::uint64_t dirty_count = 0;
  std::uint64_t run_start = 0;
  bool run_dirty = false;
  const auto flush_run = [&](std::uint64_t end) {
    if (end == run_start) return;
    if (run_dirty)
      append_add(geo, target, run_start, end - run_start, out);
    else
      append_copy(out, run_start, end - run_start, run_start);
  };
  for (std::uint64_t g = 0; g < granules; ++g) {
    const bool dirty =
        (dirty_words[g / 64] >> (g % 64)) & std::uint64_t{1};
    dirty_count += dirty;
    if (g == 0) {
      run_dirty = dirty;
    } else if (dirty != run_dirty) {
      flush_run(g);
      run_start = g;
      run_dirty = dirty;
    }
  }
  flush_run(granules);
  return dirty_count;
}

std::uint64_t encode_from_diff(const Geometry& geo, const ConstSections& base,
                               const ConstSections& target,
                               std::vector<std::uint8_t>& out) {
  const std::uint64_t granules = geo.num_granules();

  // Pass 1 — hash every base granule so target granules can probe for a
  // source anywhere in the base (cross-instance images share content at
  // shifted positions only rarely — MACs bind addresses — but when they
  // do, a COPY beats shipping the bytes).
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> by_hash;
  by_hash.reserve(granules);
  for (std::uint64_t g = 0; g < granules; ++g)
    by_hash[granule_hash(geo, base, g)].push_back(g);

  // Pass 2 — classify each target granule: self-COPY when unchanged in
  // place (the correcting preference: positional match wins over any
  // hash-table candidate), cross-COPY on a verified match elsewhere,
  // ADD otherwise.
  struct Plan {
    std::uint8_t op;
    std::uint64_t dst, n, src;
  };
  std::vector<Plan> plan;
  std::uint64_t add_granules = 0;
  for (std::uint64_t g = 0; g < granules; ++g) {
    const std::uint64_t h = granule_hash(geo, target, g);
    std::uint64_t src = granules;  // sentinel: no match
    if (granules_equal(geo, base, g, target, g)) {
      src = g;
    } else if (auto it = by_hash.find(h); it != by_hash.end()) {
      for (const std::uint64_t cand : it->second)
        if (cand != g && granules_equal(geo, base, cand, target, g)) {
          src = cand;
          break;
        }
    }
    if (src == granules) {
      ++add_granules;
      if (!plan.empty() && plan.back().op == Command::kAdd &&
          plan.back().dst + plan.back().n == g) {
        ++plan.back().n;
      } else {
        plan.push_back({Command::kAdd, g, 1, 0});
      }
    } else if (src == g) {
      if (!plan.empty() && plan.back().op == Command::kCopy &&
          plan.back().src == plan.back().dst &&
          plan.back().dst + plan.back().n == g) {
        ++plan.back().n;
      } else {
        plan.push_back({Command::kCopy, g, 1, g});
      }
    } else {
      // Cross-COPYs stay single-granule: they carry no payload, and
      // unmerged commands keep the in-place scheduling graph simple.
      plan.push_back({Command::kCopy, g, 1, src});
    }
  }

  // Pass 3 — order for in-place apply (Burns/Long/Stockmeyer): every
  // cross-COPY must read its source before the source granule's writer
  // runs. blocked[c] counts pending cross-COPYs reading any granule c
  // writes; executing (or demoting) a reader unblocks its source's
  // writer. A dependency cycle is broken by demoting one blocked
  // cross-COPY to an ADD — payload instead of ordering.
  std::vector<std::uint32_t> writer_of(granules);
  for (std::uint32_t c = 0; c < plan.size(); ++c)
    for (std::uint64_t g = plan[c].dst; g < plan[c].dst + plan[c].n; ++g)
      writer_of[g] = c;
  std::vector<std::uint32_t> blocked(plan.size(), 0);
  for (const Plan& p : plan)
    if (p.op == Command::kCopy && p.src != p.dst) ++blocked[writer_of[p.src]];

  std::vector<std::uint32_t> ready;
  std::vector<bool> done(plan.size(), false);
  for (std::uint32_t c = 0; c < plan.size(); ++c)
    if (blocked[c] == 0) ready.push_back(c);
  std::size_t emitted = 0;
  const auto retire_read = [&](const Plan& p) {
    if (p.op == Command::kCopy && p.src != p.dst) {
      const std::uint32_t w = writer_of[p.src];
      if (--blocked[w] == 0 && !done[w]) ready.push_back(w);
    }
  };
  while (emitted < plan.size()) {
    if (ready.empty()) {
      // Cycle: demote the first pending cross-COPY (cycles are made of
      // cross-COPYs only — ADDs and self-COPYs read nothing).
      for (std::uint32_t c = 0; c < plan.size(); ++c)
        if (!done[c] && plan[c].op == Command::kCopy &&
            plan[c].src != plan[c].dst) {
          retire_read(plan[c]);
          plan[c].op = Command::kAdd;
          ++add_granules;
          if (blocked[c] == 0 && !done[c]) ready.push_back(c);
          break;
        }
      continue;
    }
    const std::uint32_t c = ready.back();
    ready.pop_back();
    if (done[c]) continue;
    done[c] = true;
    ++emitted;
    const Plan& p = plan[c];
    if (p.op == Command::kAdd)
      append_add(geo, target, p.dst, p.n, out);
    else
      append_copy(out, p.dst, p.n, p.src);
    retire_read(p);
  }
  return add_granules;
}

bool parse(const Geometry& geo, std::span<const std::uint8_t> cmd_bytes,
           std::vector<Command>& cmds) {
  cmds.clear();
  const std::uint64_t granules = geo.num_granules();
  std::vector<bool> covered(granules, false);
  std::size_t off = 0;
  std::uint64_t covered_count = 0;
  while (off < cmd_bytes.size()) {
    Command cmd;
    cmd.op = cmd_bytes[off];
    if (cmd.op == Command::kCopy) {
      if (cmd_bytes.size() - off < kCopyWire) return false;
      cmd.dst = load_le64(cmd_bytes.data() + off + 1);
      cmd.n = load_le64(cmd_bytes.data() + off + 9);
      cmd.src = load_le64(cmd_bytes.data() + off + 17);
      off += kCopyWire;
      if (cmd.n == 0 || cmd.dst >= granules || cmd.n > granules - cmd.dst ||
          cmd.src >= granules || cmd.n > granules - cmd.src)
        return false;
      // Equal shapes per position, so the byte move is well-defined
      // (only the tail granule can be short).
      for (std::uint64_t i = 0; i < cmd.n; ++i)
        if (geo.blocks_in(cmd.src + i) != geo.blocks_in(cmd.dst + i) ||
            geo.lines_in(cmd.src + i) != geo.lines_in(cmd.dst + i))
          return false;
    } else if (cmd.op == Command::kAdd) {
      if (cmd_bytes.size() - off < kAddWire) return false;
      cmd.dst = load_le64(cmd_bytes.data() + off + 1);
      cmd.n = load_le64(cmd_bytes.data() + off + 9);
      off += kAddWire;
      if (cmd.n == 0 || cmd.dst >= granules || cmd.n > granules - cmd.dst)
        return false;
      cmd.payload_off = off;
      for (std::uint64_t g = cmd.dst; g < cmd.dst + cmd.n; ++g) {
        const std::uint64_t need = geo.payload_bytes(g);
        if (cmd_bytes.size() - off < need) return false;
        off += need;
      }
    } else {
      return false;
    }
    for (std::uint64_t g = cmd.dst; g < cmd.dst + cmd.n; ++g) {
      if (covered[g]) return false;  // double write — ordering undefined
      covered[g] = true;
      ++covered_count;
    }
    cmds.push_back(cmd);
  }
  return covered_count == granules;  // every granule defined exactly once
}

void apply(const Geometry& geo, std::span<const Command> cmds,
           std::span<const std::uint8_t> cmd_bytes,
           const MutSections& s) {
  for (const Command& cmd : cmds) {
    if (cmd.op == Command::kCopy) {
      if (cmd.src == cmd.dst) continue;
      const std::uint64_t sb = geo.block_start(cmd.src);
      const std::uint64_t db = geo.block_start(cmd.dst);
      std::uint64_t nb = 0, nl = 0;
      for (std::uint64_t i = 0; i < cmd.n; ++i) {
        nb += geo.blocks_in(cmd.src + i);
        nl += geo.lines_in(cmd.src + i);
      }
      std::memmove(s.ciphertext.data() + db, s.ciphertext.data() + sb,
                   nb * sizeof(DataBlock));
      std::memmove(s.lanes.data() + db, s.lanes.data() + sb,
                   nb * sizeof(EccLane));
      if (geo.separate_macs)
        std::memmove(s.macs.data() + db, s.macs.data() + sb,
                     nb * sizeof(std::uint64_t));
      std::memmove(
          s.counters.data() + geo.line_start(cmd.dst) * kCounterLineBytes,
          s.counters.data() + geo.line_start(cmd.src) * kCounterLineBytes,
          nl * kCounterLineBytes);
    } else {
      std::size_t off = cmd.payload_off;
      for (std::uint64_t g = cmd.dst; g < cmd.dst + cmd.n; ++g) {
        const std::uint64_t b0 = geo.block_start(g);
        const std::uint64_t nb = geo.blocks_in(g);
        std::memcpy(s.ciphertext.data() + b0, cmd_bytes.data() + off,
                    nb * sizeof(DataBlock));
        off += nb * sizeof(DataBlock);
        std::memcpy(s.lanes.data() + b0, cmd_bytes.data() + off,
                    nb * sizeof(EccLane));
        off += nb * sizeof(EccLane);
        if (geo.separate_macs)
          for (std::uint64_t b = b0; b < b0 + nb; ++b, off += 8)
            s.macs[b] = load_le64(cmd_bytes.data() + off);
        const std::uint64_t nl = geo.lines_in(g);
        std::memcpy(
            s.counters.data() + geo.line_start(g) * kCounterLineBytes,
            cmd_bytes.data() + off, nl * kCounterLineBytes);
        off += nl * kCounterLineBytes;
      }
    }
  }
}

}  // namespace secmem::delta
