// secmem::delta — the engine-independent codec behind incremental
// snapshots (save_delta / restore_delta).
//
// A secure-memory image is four flat sections — ciphertext blocks, ECC
// lanes, separate MACs (when the placement keeps them out of the lanes)
// and serialized counter lines. This module carves those sections into
// fixed *granules* (the engine picks lcm(blocks_per_group,
// blocks_per_storage_line) blocks, so a granule always holds whole
// re-encryption groups and whole counter lines) and expresses one image
// as a VCDIFF-style COPY/ADD command stream against another:
//
//   COPY dst n src   — granules [dst, dst+n) equal base [src, src+n);
//                      src == dst is the "unchanged" fast case and
//                      carries zero payload
//   ADD  dst n data  — granules [dst, dst+n) ship verbatim (ciphertext,
//                      lanes, MACs little-endian, counter lines — in
//                      that order, per granule)
//
// Two encoders produce such streams:
//  - encode_from_dirty: the hot path. The engine's dirty-granule bitmap
//    says exactly which granules changed since the base snapshot; clean
//    runs become self-COPYs, dirty runs become ADDs. O(dirty) payload.
//  - encode_from_diff: the cold path for diffing two arbitrary images
//    (e.g. cross-instance replication) with no dirty information. A
//    one-pass block-hash diff (hash table over base granules, verified
//    byte compare, self-match preferred — the Correcting-1.5-Pass
//    refinement) finds COPYs; everything else ships as ADD.
//
// Streams are applied IN PLACE over the base (Burns/Long/Stockmeyer):
// a cross-COPY must read its source granule before any command
// overwrites it, so encode_from_diff topologically orders the emitted
// commands (Kahn over read-before-write edges) and breaks the rare
// cycle by demoting one cross-COPY to an ADD. apply() then just walks
// the stream in order. Decoders must parse() first: it bounds-checks
// every command and enforces exact coverage (each granule written
// exactly once), so a validated stream always reconstructs a complete
// image. Authentication of the stream (command-section MAC, base seal)
// is the engine's job — this module moves bytes only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/ctr_keystream.h"  // DataBlock
#include "ecc/secded72.h"          // EccLane

namespace secmem::delta {

/// Section shape shared by encoder and decoder. Both sides derive it
/// from the same engine geometry, and the image header pins it, so a
/// mismatch is caught before any command is parsed.
struct Geometry {
  std::uint64_t num_blocks = 0;
  std::uint64_t blocks_per_line = 0;  ///< blocks per 64-byte counter line
  std::uint64_t num_lines = 0;        ///< serialized counter lines
  std::uint64_t granule_blocks = 0;   ///< multiple of blocks_per_line
  bool separate_macs = false;         ///< MAC section present in payloads

  std::uint64_t num_granules() const noexcept {
    return (num_blocks + granule_blocks - 1) / granule_blocks;
  }
  std::uint64_t lines_per_granule() const noexcept {
    return granule_blocks / blocks_per_line;
  }
  std::uint64_t block_start(std::uint64_t g) const noexcept {
    return g * granule_blocks;
  }
  std::uint64_t blocks_in(std::uint64_t g) const noexcept {
    const std::uint64_t start = block_start(g);
    return start < num_blocks
               ? (num_blocks - start < granule_blocks ? num_blocks - start
                                                      : granule_blocks)
               : 0;
  }
  std::uint64_t line_start(std::uint64_t g) const noexcept {
    return g * lines_per_granule();
  }
  std::uint64_t lines_in(std::uint64_t g) const noexcept {
    const std::uint64_t start = line_start(g);
    const std::uint64_t per = lines_per_granule();
    return start < num_lines
               ? (num_lines - start < per ? num_lines - start : per)
               : 0;
  }
  /// ADD payload bytes for one granule: ciphertext + lanes [+ MACs] +
  /// counter lines.
  std::uint64_t payload_bytes(std::uint64_t g) const noexcept;

  std::uint64_t dirty_words() const noexcept {
    return (num_granules() + 63) / 64;
  }
};

/// The four image sections, read-only (encoder view).
struct ConstSections {
  std::span<const DataBlock> ciphertext;
  std::span<const EccLane> lanes;
  std::span<const std::uint64_t> macs;     ///< empty unless separate_macs
  std::span<const std::uint8_t> counters;  ///< num_lines * 64 bytes
};

/// The four image sections, mutable (in-place apply target).
struct MutSections {
  std::span<DataBlock> ciphertext;
  std::span<EccLane> lanes;
  std::span<std::uint64_t> macs;
  std::span<std::uint8_t> counters;

  ConstSections as_const() const noexcept {
    return {ciphertext, lanes, macs, counters};
  }
};

/// One parsed command. Wire form (all fields little-endian u64 after a
/// 1-byte opcode): COPY = op,dst,n,src; ADD = op,dst,n,payload.
struct Command {
  enum : std::uint8_t { kCopy = 1, kAdd = 2 };
  std::uint8_t op = kCopy;
  std::uint64_t dst = 0;
  std::uint64_t n = 0;
  std::uint64_t src = 0;          ///< kCopy only
  std::size_t payload_off = 0;    ///< kAdd only: offset into the stream
};

/// Encode target state against the in-memory base using the dirty
/// bitmap (bit g set = granule g changed since the base snapshot).
/// Appends the command stream to `out`; returns the dirty-granule count
/// (== granules shipped as ADD payload).
std::uint64_t encode_from_dirty(const Geometry& geo,
                                const ConstSections& target,
                                std::span<const std::uint64_t> dirty_words,
                                std::vector<std::uint8_t>& out);

/// Encode `target` against `base` with no dirty information: one-pass
/// hash diff, byte-verified matches, self-match preferred, commands
/// topologically ordered for in-place apply. Returns the number of
/// granules shipped as ADD payload.
std::uint64_t encode_from_diff(const Geometry& geo,
                               const ConstSections& base,
                               const ConstSections& target,
                               std::vector<std::uint8_t>& out);

/// Validate a command stream: opcode, bounds, payload sizes, matching
/// src/dst shapes for cross-COPYs, and exact coverage of all granules.
/// False leaves `cmds` unspecified and means the stream must not be
/// applied.
[[nodiscard]] bool parse(const Geometry& geo,
                         std::span<const std::uint8_t> cmd_bytes,
                         std::vector<Command>& cmds);

/// Apply a parse()-validated stream in place over the base sections, in
/// stream order. Self-COPYs are no-ops; cross-COPYs move section
/// slices; ADDs splat payload bytes (MACs decoded little-endian).
void apply(const Geometry& geo, std::span<const Command> cmds,
           std::span<const std::uint8_t> cmd_bytes,
           const MutSections& sections);

}  // namespace secmem::delta
