#include "engine/secure_memory.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "common/bitops.h"
#include "common/ct.h"
#include "common/rng.h"
#include "counters/delta_counter.h"
#include "counters/dual_length_delta.h"
#include "counters/generic_delta.h"
#include "counters/monolithic.h"
#include "counters/split_counter.h"

namespace secmem {

namespace {
/// Derive independent working keys from the master secret.
struct DerivedKeys {
  Aes128::Key data_key;
  CwMacKey mac_key;
  CwMacKey tree_key;
  CwMacKey seal_key;  ///< snapshot-chain seals + delta command MACs
};

/// Resolve the tree-cache capacity: SECMEM_TREE_CACHE (an integer KB
/// count; "0" is the kill switch) overrides the config knob.
unsigned resolved_tree_cache_kb(const SecureMemoryConfig& config) {
  if (const char* env = std::getenv("SECMEM_TREE_CACHE")) {
    char* end = nullptr;
    const unsigned long kb = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<unsigned>(kb);
  }
  return config.tree_cache_kb;
}

/// SECMEM_BATCH_REENC=0 forces the scalar re-encryption loop; anything
/// else — including unset — takes the batched path. Sampled once at
/// engine construction, like SECMEM_TREE_CACHE.
bool resolved_batch_reencrypt() {
  const char* env = std::getenv("SECMEM_BATCH_REENC");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

DerivedKeys derive_keys(std::uint64_t master) {
  DerivedKeys keys{};
  std::uint64_t state = master;
  auto next_key = [&state](Aes128::Key& k) {
    for (int half = 0; half < 2; ++half)
      store_le64(k.data() + 8 * half, splitmix64(state));
  };
  next_key(keys.data_key);
  keys.mac_key.hash_key = splitmix64(state);
  next_key(keys.mac_key.pad_key);
  keys.tree_key.hash_key = splitmix64(state);
  next_key(keys.tree_key.pad_key);
  // Appended to the derivation chain LAST: the keys above must stay
  // bit-identical to the pre-delta derivation so full save() images and
  // all on-DIMM state are unchanged by the delta-snapshot feature.
  keys.seal_key.hash_key = splitmix64(state);
  next_key(keys.seal_key.pad_key);
  return keys;
}

/// Optional wall-clock sampling for the latency histograms. Costs two
/// steady_clock reads per operation, so it is gated on config.time_ops
/// and compiles down to a single branch when disabled.
class OpTimer {
 public:
  OpTimer(bool enabled, MetricsCell& cell, EngineHistId hist) noexcept
      : cell_(cell), hist_(hist), enabled_(enabled) {
    if (enabled_) start_ = std::chrono::steady_clock::now();
  }
  ~OpTimer() {
    if (!enabled_) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    cell_.sample(hist_, ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
  }

 private:
  MetricsCell& cell_;
  EngineHistId hist_;
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
};
}  // namespace

std::unique_ptr<CounterScheme> SecureMemory::make_scheme(
    const SecureMemoryConfig& config) {
  if (config.generic_delta_bits != 0) {
    return std::make_unique<GenericDeltaCounters>(config.size_bytes / 64,
                                                  config.generic_delta_bits);
  }
  return make_counter_scheme(config.scheme, config.size_bytes / 64);
}

LayoutParams SecureMemory::layout_params(const SecureMemoryConfig& config,
                                         const CounterScheme& scheme) {
  LayoutParams params;
  params.data_bytes = config.size_bytes;
  params.blocks_per_counter_line = scheme.blocks_per_storage_line();
  params.onchip_bytes = config.onchip_bytes;
  params.separate_macs = config.mac_placement == MacPlacement::kSeparate;
  params.counter_bits_per_block = scheme.bits_per_block();
  return params;
}

SecureMemory::SecureMemory(const SecureMemoryConfig& config)
    : config_(config),
      scheme_(make_scheme(config)),
      layout_(layout_params(config, *scheme_)),
      keystream_(derive_keys(config.master_key).data_key),
      mac_(derive_keys(config.master_key).mac_key),
      seal_mac_(derive_keys(config.master_key).seal_key),
      corrector_(FlipAndCheck::Config{config.max_correctable_errors, 1}),
      tree_(layout_.tree(), derive_keys(config.master_key).tree_key),
      tree_cache_(tree_, TreeCacheConfig{resolved_tree_cache_kb(config), 8},
                  &metrics_),
      ciphertext_(layout_.num_blocks()),
      lanes_(layout_.num_blocks()),
      counter_store_(layout_.num_counter_lines() * 64, 0),
      shadow_ctr_(layout_.num_blocks(), 0),
      batch_reencrypt_(resolved_batch_reencrypt()),
      batch_snapshot_(batch_snapshot_enabled()),
      delta_snapshot_(delta_snapshot_enabled()) {
  assert(config.size_bytes % 64 == 0 && config.size_bytes > 0);
  if (config.mac_placement == MacPlacement::kSeparate)
    macs_.resize(layout_.num_blocks(), 0);

  // Delta granule: whole re-encryption groups AND whole counter lines,
  // so a granule's ciphertext/lane/MAC/counter payload is
  // self-contained. Allocated before the first store below — every
  // store marks its granule dirty.
  granule_blocks_ = std::lcm<std::uint64_t>(scheme_->blocks_per_group(),
                                            scheme_->blocks_per_storage_line());
  num_granules_ =
      (layout_.num_blocks() + granule_blocks_ - 1) / granule_blocks_;
  dirty_word_count_ = (num_granules_ + 63) / 64;
  dirty_words_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(dirty_word_count_);

  // Initialize every block as encrypted zeros under counter 0, so reads
  // before the first write still verify.
  reset_all_blocks({}, 0);
}

std::uint64_t SecureMemory::data_mac(std::uint64_t block,
                                     std::uint64_t counter,
                                     const DataBlock& ciphertext) const {
  // Bonsai binding: the data MAC covers (address, counter, ciphertext),
  // so replaying stale data requires replaying a stale counter — which
  // the tree catches.
  return mac_.compute(layout_.block_addr(block), counter, ciphertext);
}

void SecureMemory::store_block(std::uint64_t block, const DataBlock& plaintext,
                               std::uint64_t counter) {
  DataBlock ct = plaintext;
  keystream_.crypt(layout_.block_addr(block), counter, ct);
  const std::uint64_t tag = data_mac(block, counter, ct);
  ciphertext_[block] = ct;
  if (config_.mac_placement == MacPlacement::kEccLane) {
    lanes_[block] = mac_ecc_.pack_lane(tag, ct);
  } else {
    macs_[block] = tag;
    lanes_[block] = secded_.encode(ct);
  }
  shadow_ctr_[block] = counter;
  mark_dirty(block);
}

void SecureMemory::store_blocks(std::span<const std::uint64_t> blocks,
                                std::span<const DataBlock> plaintexts,
                                std::span<const std::uint64_t> counters) {
  const std::size_t n = blocks.size();
  assert(plaintexts.size() == n && counters.size() == n);
  std::vector<std::uint64_t>& addrs = scratch_.store_addrs;
  addrs.resize(n);
  for (std::size_t i = 0; i < n; ++i) addrs[i] = layout_.block_addr(blocks[i]);
  std::vector<DataBlock>& cts = scratch_.cts;
  cts.assign(plaintexts.begin(), plaintexts.end());
  keystream_.crypt_batch(addrs, counters, cts);
  std::vector<std::uint64_t>& tags = scratch_.tags;
  tags.resize(n);
  mac_.compute_batch(addrs, counters, cts, tags);
  // Lane packing runs batched too (one codec call per store batch), then
  // scatters to each block's slot. Bit-identical to per-block pack_lane/
  // encode — see the batch codec contracts in src/ecc/.
  std::vector<EccLane>& packed = scratch_.packed;
  packed.resize(n);
  if (config_.mac_placement == MacPlacement::kEccLane) {
    mac_ecc_.pack_lane_batch(tags, cts, packed);
  } else {
    secded_.encode_batch(cts, packed);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t b = blocks[i];
    ciphertext_[b] = cts[i];
    lanes_[b] = packed[i];
    if (config_.mac_placement != MacPlacement::kEccLane) macs_[b] = tags[i];
    shadow_ctr_[b] = counters[i];
    mark_dirty(b);
  }
}

void SecureMemory::reset_all_blocks(std::span<const DataBlock> plaintexts,
                                    std::uint64_t counter) {
  assert(plaintexts.empty() || plaintexts.size() == layout_.num_blocks());
  constexpr std::size_t kChunk = 128;
  std::array<std::uint64_t, kChunk> blocks;
  std::array<std::uint64_t, kChunk> counters;
  counters.fill(counter);
  const std::vector<DataBlock> zeros(plaintexts.empty() ? kChunk : 0);
  for (std::uint64_t base = 0; base < layout_.num_blocks(); base += kChunk) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(kChunk, layout_.num_blocks() - base));
    for (std::size_t i = 0; i < n; ++i) blocks[i] = base + i;
    store_blocks({blocks.data(), n},
                 plaintexts.empty()
                     ? std::span<const DataBlock>(zeros.data(), n)
                     : plaintexts.subspan(base, n),
                 {counters.data(), n});
  }
  for (std::uint64_t line = 0; line < layout_.num_counter_lines(); ++line)
    sync_counter_line(line);
}

void SecureMemory::sync_counter_line(std::uint64_t line) {
  std::span<std::uint8_t, 64> dest(counter_store_.data() + line * 64, 64);
  scheme_->serialize_line(line, dest);
  tree_cache_.update(line, dest);
}

bool SecureMemory::verify_counter_line(std::uint64_t line) {
  const std::span<const std::uint8_t, 64> line_bytes(
      counter_store_.data() + line * 64, 64);
  return tree_cache_.verify(line, line_bytes);
}

std::uint64_t SecureMemory::reencrypt_group(std::uint64_t group,
                                            std::uint64_t skip_block,
                                            std::uint64_t new_counter) {
  const unsigned group_blocks = scheme_->blocks_per_group();
  const std::uint64_t first = group * group_blocks;
  const std::uint64_t end =
      std::min<std::uint64_t>(first + group_blocks, layout_.num_blocks());

  if (!batch_reencrypt_) {
    // Scalar reference path (SECMEM_BATCH_REENC=0): decrypt and re-store
    // one block at a time. The batched path below must leave bit-identical
    // state — the differential tests diff whole save images against this.
    std::uint64_t rewritten = 0;
    for (std::uint64_t b = first; b < end; ++b) {
      if (b == skip_block) continue;
      DataBlock plain = ciphertext_[b];
      keystream_.crypt(layout_.block_addr(b), shadow_ctr_[b], plain);
      store_block(b, plain, new_counter);
      ++rewritten;
    }
    return rewritten;
  }

  // Batched: gather the group's stale ciphertexts and old counters, run
  // ONE crypt_batch decrypt over the 4-wide AES kernel, then re-store the
  // lot through store_blocks (batched encrypt + compute_batch MACs +
  // pack_lane_batch/encode_batch lanes).
  const std::size_t cap = static_cast<std::size_t>(end - first);
  std::vector<std::uint64_t>& blocks = scratch_.blocks;
  std::vector<std::uint64_t>& addrs = scratch_.addrs;
  std::vector<std::uint64_t>& old_ctrs = scratch_.old_ctrs;
  std::vector<DataBlock>& plains = scratch_.plains;
  blocks.clear();
  addrs.clear();
  old_ctrs.clear();
  plains.clear();
  blocks.reserve(cap);
  addrs.reserve(cap);
  old_ctrs.reserve(cap);
  plains.reserve(cap);
  for (std::uint64_t b = first; b < end; ++b) {
    if (b == skip_block) continue;
    blocks.push_back(b);
    addrs.push_back(layout_.block_addr(b));
    old_ctrs.push_back(shadow_ctr_[b]);
    plains.push_back(ciphertext_[b]);
  }
  keystream_.crypt_batch(addrs, old_ctrs, plains);  // CTR: decrypt == crypt
  std::vector<std::uint64_t>& new_ctrs = scratch_.new_ctrs;
  new_ctrs.assign(blocks.size(), new_counter);
  store_blocks(blocks, plains, new_ctrs);
  return blocks.size();
}

Status SecureMemory::write_block(std::uint64_t block,
                                 const DataBlock& plaintext) {
  if (block >= layout_.num_blocks())
    throw std::out_of_range("SecureMemory::write_block: block " +
                            std::to_string(block) + " out of range");
  const OpTimer timer(config_.time_ops, metrics_,
                      EngineHistId::kWriteLatencyNs);
  metrics_.add(MetricId::kWrites);
  const WriteOutcome outcome = scheme_->on_write(block);

  if (outcome.event == CounterEvent::kReencrypt) {
    // Re-encrypt every other block in the group under the new common
    // counter (paper Fig 5a) in one batched pass; the counter-line/tree
    // sync below covers the whole group (one update_leaf per group).
    metrics_.add(MetricId::kGroupReencryptions);
    const std::uint64_t rewritten =
        reencrypt_group(outcome.group, block, outcome.counter);
    metrics_.sample(EngineHistId::kReencryptedBlocks, rewritten);
    trace(TraceEvent::Kind::kReencrypt, Status::kOk, block);
  }

  store_block(block, plaintext, outcome.counter);
  sync_counter_line(scheme_->storage_line_of(block));
  trace(TraceEvent::Kind::kWrite, Status::kOk, block);
  return Status::kOk;
}

ReadResult SecureMemory::read_block(std::uint64_t block) {
  if (block >= layout_.num_blocks())
    throw std::out_of_range("SecureMemory::read_block: block " +
                            std::to_string(block) + " out of range");
  const OpTimer timer(config_.time_ops, metrics_,
                      EngineHistId::kReadLatencyNs);
  ReadResult result{ReadStatus::kOk, {}, 0};
  // Account the outcome on every exit path.
  struct Accounting {
    SecureMemory& m;
    const ReadResult& r;
    std::uint64_t block;
    ~Accounting() { m.account_read(r, block); }
  } accounting{*this, result, block};

  // 1. Authenticate the stored counter line against the Bonsai tree
  // (through the verified frontier: walks truncate at cached ancestors).
  if (!verify_counter_line(scheme_->storage_line_of(block))) {
    result.status = ReadStatus::kCounterTampered;
    return result;
  }
  // Verified: the stored representation is authentic, so the scheme's
  // decoded value is the true counter.
  const std::uint64_t counter = scheme_->read_counter(block);
  const std::uint64_t addr = layout_.block_addr(block);

  DataBlock ct = ciphertext_[block];

  if (config_.mac_placement == MacPlacement::kEccLane) {
    // 2a. Unpack the MAC lane; its own 7-bit Hamming code repairs
    // single-bit lane faults (paper §3.3).
    const auto unpacked = mac_ecc_.unpack_lane(lanes_[block]);
    if (unpacked.status == MacEccCodec::MacStatus::kUncorrectable) {
      result.status = ReadStatus::kIntegrityViolation;
      return result;
    }
    const std::uint64_t tag = unpacked.mac;
    bool corrected_mac =
        unpacked.status == MacEccCodec::MacStatus::kCorrectedSingle;

    // Hoist the AES pad: flip-and-check may evaluate >100k candidates
    // under this one (addr, counter).
    const std::uint64_t pad = mac_.pad_for(addr, counter);
    if (!mac_.verify_with_pad(pad, ct, tag)) {
      // 3a. Flip-and-check (paper §3.4), incremental: one full hash of
      // the block, then each candidate trial is a precomputed GF(2^64)
      // delta XORed in — same search order and trial counts as the
      // generic brute force, a fraction of the work per trial.
      const CorrectionResult fix =
          corrector_.correct_incremental(ct, mac_, pad, tag);
      result.mac_evaluations = fix.mac_evaluations;
      if (fix.status == CorrectionStatus::kUncorrectable) {
        result.status = ReadStatus::kIntegrityViolation;
        return result;
      }
      ct = fix.data;
      result.status = ReadStatus::kCorrectedData;
    } else if (corrected_mac) {
      result.status = ReadStatus::kCorrectedMacField;
    }
  } else {
    // 2b. Conventional path: SEC-DED per word, then MAC from its region.
    const auto decoded = secded_.decode(ct, lanes_[block]);
    if (decoded.any_uncorrectable) {
      result.status = ReadStatus::kIntegrityViolation;
      return result;
    }
    ct = decoded.data;
    if (!mac_.verify(addr, counter, ct, macs_[block])) {
      result.status = ReadStatus::kIntegrityViolation;
      return result;
    }
    if (decoded.any_corrected) result.status = ReadStatus::kCorrectedWord;
  }

  // 4. Decrypt.
  keystream_.crypt(addr, counter, ct);
  result.data = ct;
  return result;
}

void SecureMemory::account_read(const ReadResult& result,
                                std::uint64_t block) const noexcept {
  metrics_.add(MetricId::kReads);
  if (result.mac_evaluations != 0) {
    metrics_.add(MetricId::kMacEvaluations, result.mac_evaluations);
    metrics_.sample(EngineHistId::kMacEvalsPerCorrection,
                    result.mac_evaluations);
  }
  switch (result.status) {
    case ReadStatus::kOk: break;
    case ReadStatus::kCorrectedMacField:
      metrics_.add(MetricId::kCorrectedMacField);
      break;
    case ReadStatus::kCorrectedData:
      metrics_.add(MetricId::kCorrectedData);
      break;
    case ReadStatus::kCorrectedWord:
      metrics_.add(MetricId::kCorrectedWord);
      break;
    case ReadStatus::kIntegrityViolation:
      metrics_.add(MetricId::kIntegrityViolations);
      break;
    case ReadStatus::kCounterTampered:
      metrics_.add(MetricId::kCounterTampers);
      break;
    case ReadStatus::kRegionPoisoned:
      metrics_.add(MetricId::kIntegrityViolations);
      break;
  }
  trace(TraceEvent::Kind::kRead, result.status, block);
}

namespace {
/// Every Nth non-resident shared read declines to the exclusive path so
/// verify() can install the line into the verified frontier. 8 keeps the
/// steady state overwhelmingly shared while still warming a shifting
/// working set within a few touches per line.
constexpr std::uint64_t kSharedProbePulse = 8;
}  // namespace

std::optional<ReadResult> SecureMemory::read_block_shared(std::uint64_t block,
                                                          bool account) const {
  if (block >= layout_.num_blocks())
    throw std::out_of_range("SecureMemory::read_block_shared: block " +
                            std::to_string(block) + " out of range");
  const OpTimer timer(config_.time_ops, metrics_,
                      EngineHistId::kReadLatencyNs);
  ReadResult result{ReadStatus::kOk, {}, 0};

  // 1. Authenticate the stored counter line through the read-side probe
  // (no fills, no LRU reordering — see VerifiedTreeCache::probe).
  const std::uint64_t line = scheme_->storage_line_of(block);
  bool resident = false;
  const bool line_ok = tree_cache_.probe(
      line,
      BonsaiTree::LineView(counter_store_.data() + line * 64, 64),
      resident);
  if (!resident &&
      shared_cold_reads_.fetch_add(1, std::memory_order_relaxed) %
              kSharedProbePulse ==
          kSharedProbePulse - 1) {
    // Promotion pulse: bounce to the exclusive path, whose verify() may
    // install the line. Nothing is accounted — the caller's retry does
    // the read (and the books) for real.
    metrics_.add(MetricId::kSharedReadDeclines);
    return std::nullopt;
  }
  if (!line_ok) {
    result.status = ReadStatus::kCounterTampered;
    metrics_.add(MetricId::kSharedReads);
    if (account) account_read(result, block);
    return result;
  }

  // 2..4: identical to read_block() — every step below is const.
  const std::uint64_t counter = scheme_->read_counter(block);
  const std::uint64_t addr = layout_.block_addr(block);
  DataBlock ct = ciphertext_[block];

  if (config_.mac_placement == MacPlacement::kEccLane) {
    const auto unpacked = mac_ecc_.unpack_lane(lanes_[block]);
    if (unpacked.status == MacEccCodec::MacStatus::kUncorrectable) {
      result.status = ReadStatus::kIntegrityViolation;
    } else {
      const std::uint64_t tag = unpacked.mac;
      const bool corrected_mac =
          unpacked.status == MacEccCodec::MacStatus::kCorrectedSingle;
      const std::uint64_t pad = mac_.pad_for(addr, counter);
      if (!mac_.verify_with_pad(pad, ct, tag)) {
        const CorrectionResult fix =
            corrector_.correct_incremental(ct, mac_, pad, tag);
        result.mac_evaluations = fix.mac_evaluations;
        if (fix.status == CorrectionStatus::kUncorrectable) {
          result.status = ReadStatus::kIntegrityViolation;
        } else {
          ct = fix.data;
          result.status = ReadStatus::kCorrectedData;
        }
      } else if (corrected_mac) {
        result.status = ReadStatus::kCorrectedMacField;
      }
    }
  } else {
    const auto decoded = secded_.decode(ct, lanes_[block]);
    if (decoded.any_uncorrectable) {
      result.status = ReadStatus::kIntegrityViolation;
    } else {
      ct = decoded.data;
      if (!mac_.verify(addr, counter, ct, macs_[block])) {
        result.status = ReadStatus::kIntegrityViolation;
      } else if (decoded.any_corrected) {
        result.status = ReadStatus::kCorrectedWord;
      }
    }
  }

  if (status_ok(result.status)) {
    keystream_.crypt(addr, counter, ct);
    result.data = ct;
  }
  metrics_.add(MetricId::kSharedReads);
  if (account) account_read(result, block);
  return result;
}

void SecureMemory::read_blocks_shared(std::span<const std::uint64_t> blocks,
                                      std::span<ReadResult> results,
                                      std::vector<std::uint32_t>& declined)
    const {
  assert(results.size() == blocks.size());
  if (config_.time_ops) {
    // Per-op latency sampling needs per-op boundaries — scalar wholesale.
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (const auto r = read_block_shared(blocks[i])) {
        results[i] = *r;
      } else {
        declined.push_back(static_cast<std::uint32_t>(i));
      }
    }
    return;
  }

  // Batched mirror of read_blocks() on the const shared path. Each
  // distinct counter line is probed once — under the shared lock the
  // line bytes cannot change within the batch, so one read-side verify
  // per line is observationally equivalent to one per block. The line
  // table is a flat array with linear scan for the common case (shard
  // runs of a few dozen blocks — where one node-based map allocation
  // per distinct line costs more than every lookup it saves) and an
  // unordered_map above that.
  struct LineState {
    std::uint64_t line;
    bool ok;
    bool resident;
  };
  const bool flat = blocks.size() <= 256;
  std::vector<LineState> line_vec;
  std::unordered_map<std::uint64_t, std::pair<bool, bool>> line_map;
  if (flat) line_vec.reserve(blocks.size());
  auto line_state = [&](std::uint64_t line) -> std::pair<bool, bool> {
    if (flat) {
      for (const LineState& ls : line_vec)
        if (ls.line == line) return {ls.ok, ls.resident};
    } else if (const auto it = line_map.find(line); it != line_map.end()) {
      return it->second;
    }
    bool resident = false;
    const bool ok = tree_cache_.probe(
        line, BonsaiTree::LineView(counter_store_.data() + line * 64, 64),
        resident);
    if (flat)
      line_vec.push_back({line, ok, resident});
    else
      line_map.emplace(line, std::make_pair(ok, resident));
    return {ok, resident};
  };

  // MAC pads for the whole batch through the 8-wide AES kernel; one
  // allocation carries all three lanes.
  const std::size_t n = blocks.size();
  std::vector<std::uint64_t> lanes_buf(3 * n);
  const std::span<std::uint64_t> addrs(lanes_buf.data(), n);
  const std::span<std::uint64_t> counters(lanes_buf.data() + n, n);
  const std::span<std::uint64_t> pads(lanes_buf.data() + 2 * n, n);
  for (std::size_t i = 0; i < n; ++i) {
    addrs[i] = layout_.block_addr(blocks[i]);
    counters[i] = scheme_->read_counter(blocks[i]);
  }
  mac_.pad_batch(addrs, counters, pads);

  // Per block, preserving read_block_shared's ordering exactly —
  // promotion pulse first (each cold-line read ticks the pulse counter,
  // every kSharedProbePulse-th declines), then the tamper verdict, then
  // the clean verify; anything that is not a clean verify falls back to
  // the scalar routine for identical corrections/statuses/accounting.
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t block = blocks[i];
    const auto [line_ok, resident] =
        line_state(scheme_->storage_line_of(block));
    if (!resident &&
        shared_cold_reads_.fetch_add(1, std::memory_order_relaxed) %
                kSharedProbePulse ==
            kSharedProbePulse - 1) {
      metrics_.add(MetricId::kSharedReadDeclines);
      declined.push_back(static_cast<std::uint32_t>(i));
      continue;
    }
    if (!line_ok) {
      results[i] = ReadResult{ReadStatus::kCounterTampered, {}, 0};
      metrics_.add(MetricId::kSharedReads);
      account_read(results[i], block);
      continue;
    }
    DataBlock ct = ciphertext_[block];
    if (config_.mac_placement == MacPlacement::kEccLane) {
      const auto unpacked = mac_ecc_.unpack_lane(lanes_[block]);
      if (unpacked.status != MacEccCodec::MacStatus::kOk ||
          !mac_.verify_with_pad(pads[i], ct, unpacked.mac)) {
        if (const auto r = read_block_shared(block)) {
          results[i] = *r;
        } else {
          declined.push_back(static_cast<std::uint32_t>(i));
        }
        continue;
      }
    } else {
      const auto decoded = secded_.decode(ct, lanes_[block]);
      if (decoded.any_corrected || decoded.any_uncorrectable ||
          !mac_.verify_with_pad(pads[i], decoded.data,
                                macs_[block] & kMacMask)) {
        if (const auto r = read_block_shared(block)) {
          results[i] = *r;
        } else {
          declined.push_back(static_cast<std::uint32_t>(i));
        }
        continue;
      }
    }
    keystream_.crypt(addrs[i], counters[i], ct);
    results[i] = ReadResult{ReadStatus::kOk, ct, 0};
    metrics_.add(MetricId::kSharedReads);
    account_read(results[i], block);
  }
}

std::optional<Status> SecureMemory::read_bytes_shared(
    std::uint64_t addr, std::span<std::uint8_t> out) const {
  if (addr > config_.size_bytes || out.size() > config_.size_bytes - addr)
    throw std::out_of_range(
        "SecureMemory::read_bytes_shared: range exceeds region");

  // Gather first, account after: a decline must leave zero footprint so
  // the exclusive retry's books match a single read_bytes() call.
  struct Pending {
    std::uint64_t block;
    ReadResult result;
  };
  std::vector<Pending> pending;
  Status folded = Status::kOk;
  std::uint64_t pos = addr;
  std::size_t done = 0;
  bool failed = false;
  std::uint64_t failed_block = 0;
  while (done < out.size()) {
    const std::uint64_t block = pos / 64;
    const std::size_t offset = pos % 64;
    const std::size_t chunk =
        std::min<std::size_t>(64 - offset, out.size() - done);
    const auto r = read_block_shared(block, /*account=*/false);
    if (!r) return std::nullopt;
    pending.push_back({block, *r});
    folded = worse(folded, r->status);
    if (!status_ok(r->status)) {
      failed = true;
      failed_block = block;
      break;
    }
    std::memcpy(out.data() + done, r->data.data() + offset, chunk);
    pos += chunk;
    done += chunk;
  }

  metrics_.add(MetricId::kByteReads);
  metrics_.sample(EngineHistId::kByteReadBytes, out.size());
  for (const Pending& p : pending) account_read(p.result, p.block);
  if (failed) {
    trace(TraceEvent::Kind::kByteRead, folded, failed_block);
    return folded;
  }
  trace(TraceEvent::Kind::kByteRead, folded, addr / 64);
  return folded;
}

std::vector<ReadResult> SecureMemory::read_blocks(
    std::span<const std::uint64_t> blocks) {
  for (const std::uint64_t block : blocks)
    if (block >= layout_.num_blocks())
      throw std::out_of_range("SecureMemory::read_blocks: block " +
                              std::to_string(block) + " out of range");
  std::vector<ReadResult> results(blocks.size());
  if (config_.time_ops) {
    // Per-op latency sampling needs per-op boundaries — take the scalar
    // path wholesale.
    for (std::size_t i = 0; i < blocks.size(); ++i)
      results[i] = read_block(blocks[i]);
    return results;
  }

  // Phase 1: authenticate each distinct counter line once. Sequentially
  // every read re-verifies its line; within one batch the line bytes
  // cannot change, so one tree walk per line is observationally
  // equivalent. Flat table + linear scan for typical batch sizes (one
  // node-based map allocation per distinct line costs more than every
  // lookup it saves), map above that.
  struct LineOk {
    std::uint64_t line;
    bool ok;
  };
  const bool flat = blocks.size() <= 256;
  std::vector<LineOk> line_vec;
  std::unordered_map<std::uint64_t, bool> line_map;
  if (flat) line_vec.reserve(blocks.size());
  auto line_ok = [&](std::uint64_t line) -> bool {
    if (flat) {
      for (const LineOk& ls : line_vec)
        if (ls.line == line) return ls.ok;
    } else if (const auto it = line_map.find(line); it != line_map.end()) {
      return it->second;
    }
    const bool ok = verify_counter_line(line);
    if (flat)
      line_vec.push_back({line, ok});
    else
      line_map.emplace(line, ok);
    return ok;
  };

  // Phase 2: MAC pads for the whole batch through the 4-wide AES kernel;
  // one allocation carries all three lanes.
  const std::size_t n = blocks.size();
  std::vector<std::uint64_t> lanes_buf(3 * n);
  const std::span<std::uint64_t> addrs(lanes_buf.data(), n);
  const std::span<std::uint64_t> counters(lanes_buf.data() + n, n);
  const std::span<std::uint64_t> pads(lanes_buf.data() + 2 * n, n);
  for (std::size_t i = 0; i < n; ++i) {
    addrs[i] = layout_.block_addr(blocks[i]);
    counters[i] = scheme_->read_counter(blocks[i]);
  }
  mac_.pad_batch(addrs, counters, pads);

  // Phase 3: clean-path verification per block; anything that is not a
  // clean verify (tampered line, lane damage, MAC mismatch, SEC-DED
  // corrections) falls back to the scalar routine, which redoes the work
  // with identical corrections, statuses, metrics, and trace events.
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t block = blocks[i];
    if (!line_ok(scheme_->storage_line_of(block))) {
      results[i] = read_block(block);
      continue;
    }
    ReadResult& r = results[i];
    DataBlock ct = ciphertext_[block];
    if (config_.mac_placement == MacPlacement::kEccLane) {
      const auto unpacked = mac_ecc_.unpack_lane(lanes_[block]);
      if (unpacked.status != MacEccCodec::MacStatus::kOk ||
          !mac_.verify_with_pad(pads[i], ct, unpacked.mac)) {
        results[i] = read_block(block);
        continue;
      }
    } else {
      const auto decoded = secded_.decode(ct, lanes_[block]);
      if (decoded.any_corrected || decoded.any_uncorrectable ||
          !mac_.verify_with_pad(pads[i], decoded.data,
                                macs_[block] & kMacMask)) {
        results[i] = read_block(block);
        continue;
      }
    }
    keystream_.crypt(addrs[i], counters[i], ct);
    r.status = ReadStatus::kOk;
    r.data = ct;
    account_read(r, block);
  }
  return results;
}

Status SecureMemory::write_blocks(std::span<const BlockWrite> writes) {
  for (const BlockWrite& w : writes)
    if (w.block >= layout_.num_blocks())
      throw std::out_of_range("SecureMemory::write_blocks: block " +
                              std::to_string(w.block) + " out of range");
  if (config_.time_ops) {
    Status folded = Status::kOk;
    for (const BlockWrite& w : writes)
      folded = worse(folded, write_block(w.block, w.data));
    return folded;
  }

  // Counter-scheme events are processed strictly in request order;
  // stores buffer up so the crypto runs batched, and flush before any
  // group re-encryption so it observes exactly the ciphertexts and
  // shadow counters the sequential semantics would.
  std::vector<std::uint64_t> pend_blocks, pend_counters;
  std::vector<DataBlock> pend_plains;
  std::vector<std::uint64_t> dirty_lines;
  auto flush = [&] {
    if (pend_blocks.empty()) return;
    store_blocks(pend_blocks, pend_plains, pend_counters);
    pend_blocks.clear();
    pend_plains.clear();
    pend_counters.clear();
  };

  for (const BlockWrite& w : writes) {
    metrics_.add(MetricId::kWrites);
    const WriteOutcome outcome = scheme_->on_write(w.block);
    if (outcome.event == CounterEvent::kReencrypt) {
      flush();
      metrics_.add(MetricId::kGroupReencryptions);
      const std::uint64_t rewritten =
          reencrypt_group(outcome.group, w.block, outcome.counter);
      metrics_.sample(EngineHistId::kReencryptedBlocks, rewritten);
      trace(TraceEvent::Kind::kReencrypt, Status::kOk, w.block);
    }
    pend_blocks.push_back(w.block);
    pend_plains.push_back(w.data);
    pend_counters.push_back(outcome.counter);
    dirty_lines.push_back(scheme_->storage_line_of(w.block));
    trace(TraceEvent::Kind::kWrite, Status::kOk, w.block);
  }
  flush();

  // One counter-line/tree sync per dirty line; the scheme state already
  // reflects every write, so the serialized lines and tree paths match
  // what per-write syncing would have left behind.
  std::sort(dirty_lines.begin(), dirty_lines.end());
  dirty_lines.erase(std::unique(dirty_lines.begin(), dirty_lines.end()),
                    dirty_lines.end());
  for (const std::uint64_t line : dirty_lines) sync_counter_line(line);
  return Status::kOk;
}

ScrubStatus SecureMemory::scrub_block(std::uint64_t block, bool deep) {
  if (block >= layout_.num_blocks())
    throw std::out_of_range("SecureMemory::scrub_block: block " +
                            std::to_string(block) + " out of range");
  metrics_.add(MetricId::kScrubbedBlocks);
  if (!deep && config_.mac_placement == MacPlacement::kEccLane) {
    // Quick scan (paper §3.3): ciphertext parity vs the scrub bit, plus
    // the MAC field's own Hamming syndrome — two parity-class checks, no
    // MAC computation.
    const std::uint64_t lane = load_le64(lanes_[block].data());
    if (mac_ecc_.scrub_ok(lane, ciphertext_[block]) &&
        mac_ecc_.unpack(lane).status == MacEccCodec::MacStatus::kOk) {
      return ScrubStatus::kClean;
    }
  } else if (!deep) {
    // Conventional lane: per-word syndromes are the quick check.
    const auto decoded = secded_.decode(ciphertext_[block], lanes_[block]);
    if (!decoded.any_corrected && !decoded.any_uncorrectable)
      return ScrubStatus::kClean;
  }

  // Something looks off (or deep scrub requested): run the full verified
  // read and heal the backing store from its corrected output.
  const ReadResult result = read_block(block);
  ScrubStatus scrubbed = ScrubStatus::kUncorrectable;
  switch (result.status) {
    case ReadStatus::kOk:
      scrubbed = ScrubStatus::kClean;
      break;
    case ReadStatus::kCorrectedMacField:
    case ReadStatus::kCorrectedData:
    case ReadStatus::kCorrectedWord:
      // Re-encrypting under the *same* counter reproduces the correct
      // ciphertext + lane: the fault is scrubbed out of DRAM.
      store_block(block, result.data, shadow_ctr_[block]);
      metrics_.add(MetricId::kScrubRepairs);
      scrubbed = result.status == ReadStatus::kCorrectedMacField
                     ? ScrubStatus::kRepairedMacField
                     : ScrubStatus::kRepairedData;
      break;
    case ReadStatus::kCounterTampered:
      scrubbed = ScrubStatus::kCounterTampered;
      break;
    case ReadStatus::kIntegrityViolation:
    case ReadStatus::kRegionPoisoned:
      scrubbed = ScrubStatus::kUncorrectable;
      break;
  }
  if (scrubbed == ScrubStatus::kUncorrectable ||
      scrubbed == ScrubStatus::kCounterTampered)
    metrics_.add(MetricId::kScrubUncorrectable);
  trace(TraceEvent::Kind::kScrub, to_status(scrubbed), block);
  return scrubbed;
}

ScrubReport SecureMemory::scrub_all(bool deep) {
  // Flush barrier: the sweep must observe off-chip truth, not trusted
  // resident copies — a latent fault in a tree node that happens to be
  // cached would otherwise be masked for the whole scan.
  tree_cache_.flush();
  ScrubReport report;
  for (std::uint64_t block = 0; block < layout_.num_blocks(); ++block) {
    ++report.scanned;
    switch (scrub_block(block, deep)) {
      case ScrubStatus::kClean: ++report.quick_clean; break;
      case ScrubStatus::kRepairedMacField: ++report.repaired_mac; break;
      case ScrubStatus::kRepairedData: ++report.repaired_data; break;
      case ScrubStatus::kUncorrectable: ++report.uncorrectable; break;
      case ScrubStatus::kCounterTampered: ++report.counter_tampered; break;
      case ScrubStatus::kRegionPoisoned: report.region_poisoned = true; break;
    }
  }
  return report;
}

namespace {
constexpr char kImageMagic[8] = {'S', 'E', 'C', 'M', 'E', 'M', '0', '1'};
constexpr char kDeltaMagic[8] = {'S', 'E', 'C', 'M', 'D', 'L', 'T', '1'};

/// Domain constants for the snapshot-chain MACs (CwMac::compute_prf,
/// ≤56 bits). These MACs are nonce-FREE by construction: chain roots
/// repeat at every alignment point and epochs reset on restore, so the
/// data path's XOR-pad Carter-Wegman form — whose security dies with
/// the first reused (addr, counter) pad — must never be used here.
constexpr std::uint64_t kSealDomain = 0x5ea1'0000'0001ULL;
constexpr std::uint64_t kCmdMacDomain = 0x5ea1'0000'0002ULL;

void write_u64(std::ostream& out, std::uint64_t v) {
  std::uint8_t buf[8];
  store_le64(buf, v);
  out.write(reinterpret_cast<const char*>(buf), 8);
}

std::uint64_t read_u64(std::istream& in) {
  std::uint8_t buf[8] = {};
  in.read(reinterpret_cast<char*>(buf), 8);
  return load_le64(buf);
}

// The contiguous vectors ARE the serialized layout: one bulk stream call
// per section depends on the element types packing without padding.
static_assert(sizeof(DataBlock) == kBlockBytes);
static_assert(sizeof(EccLane) == kEccLaneBytes);

/// MACs per endian-conversion chunk (64 KiB of stream traffic a flush).
constexpr std::size_t kMacChunk = 8192;
}  // namespace

std::uint64_t SecureMemory::image_bytes() const noexcept {
  const unsigned top = layout_.tree().total_levels() - 1;
  return sizeof(kImageMagic) + 4 * 8 +
         layout_.num_blocks() * (kBlockBytes + kEccLaneBytes) +
         macs_.size() * 8 + counter_store_.size() +
         layout_.tree().nodes_at[top] * 64;
}

Status SecureMemory::save(std::ostream& out) {
  // Flush barrier: write-back the deferred MAC propagation so the image
  // is bit-identical to what the eager path would persist.
  tree_cache_.flush();
  out.write(kImageMagic, sizeof(kImageMagic));
  write_u64(out, config_.size_bytes);
  write_u64(out, static_cast<std::uint64_t>(config_.scheme));
  write_u64(out, static_cast<std::uint64_t>(config_.mac_placement));
  write_u64(out, config_.generic_delta_bits);

  // Off-chip state, exactly what sits on the (NV)DIMMs.
  if (batch_snapshot_) {
    // Chunked path: ciphertext and lane vectors are contiguous and
    // byte-identical to the per-element layout (static_asserts above),
    // so each section is one stream call; the MAC words stream through
    // the engine-owned chunk buffer with store_le64 conversion.
    out.write(reinterpret_cast<const char*>(ciphertext_.data()),
              static_cast<std::streamsize>(ciphertext_.size() *
                                           sizeof(DataBlock)));
    out.write(reinterpret_cast<const char*>(lanes_.data()),
              static_cast<std::streamsize>(lanes_.size() * sizeof(EccLane)));
    if (!macs_.empty()) {
      std::vector<std::uint8_t>& buf = scratch_.io_bytes;
      buf.resize(std::min(macs_.size(), kMacChunk) * 8);
      for (std::size_t base = 0; base < macs_.size(); base += kMacChunk) {
        const std::size_t n = std::min(kMacChunk, macs_.size() - base);
        for (std::size_t i = 0; i < n; ++i)
          store_le64(buf.data() + 8 * i, macs_[base + i]);
        out.write(reinterpret_cast<const char*>(buf.data()),
                  static_cast<std::streamsize>(8 * n));
      }
    }
  } else {
    // Scalar reference (SECMEM_BATCH_SNAPSHOT=0): one stream call per
    // element. The chunked path above must emit bit-identical bytes —
    // the differential tests diff whole images across the two.
    for (const DataBlock& ct : ciphertext_)
      out.write(reinterpret_cast<const char*>(ct.data()), 64);
    for (const EccLane& lane : lanes_)
      out.write(reinterpret_cast<const char*>(lane.data()), 8);
    for (const std::uint64_t mac : macs_) write_u64(out, mac);
  }
  out.write(reinterpret_cast<const char*>(counter_store_.data()),
            static_cast<std::streamsize>(counter_store_.size()));

  // Sealed root snapshot: the on-chip root level of the tree (a handful
  // of nodes — never the bandwidth term).
  const unsigned top = layout_.tree().total_levels() - 1;
  for (std::uint64_t node = 0; node < layout_.tree().nodes_at[top];
       ++node) {
    const auto bytes = tree_.read_node(top, node);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  // A full image is always a valid delta base — but only if it actually
  // persisted. On stream failure keep the previous alignment point (it
  // still describes the last image that made it out) and surface the
  // error; a silent kOk here would chain future deltas on a lost base.
  out.flush();
  if (!out) return Status::kSnapshotIoError;
  // Align so the next save_delta diffs against exactly what was just
  // persisted.
  align_chain();
  return Status::kOk;
}

std::optional<SecureMemory::StagedRestore> SecureMemory::stage_restore(
    std::istream& in) const {
  return stage_restore(in, config_.master_key);
}

std::optional<SecureMemory::StagedRestore> SecureMemory::stage_restore(
    std::istream& in, std::uint64_t master_key) const {
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kImageMagic, sizeof(magic)) != 0)
    return std::nullopt;
  return stage_restore_tail(in, master_key);
}

std::optional<SecureMemory::StagedRestore> SecureMemory::stage_restore_tail(
    std::istream& in, std::uint64_t master_key) const {
  if (read_u64(in) != config_.size_bytes) return std::nullopt;
  if (read_u64(in) != static_cast<std::uint64_t>(config_.scheme))
    return std::nullopt;
  if (read_u64(in) != static_cast<std::uint64_t>(config_.mac_placement))
    return std::nullopt;
  if (read_u64(in) != config_.generic_delta_bits) return std::nullopt;

  // Read the off-chip image into staging storage — engine state is not
  // touched anywhere in this function. The batched path defers the
  // tree's zero-leaf build: rebuild_from_lines below overwrites every
  // slot the image's leaves reach, so building zero MACs first would be
  // pure waste (the scalar path keeps the zero build its update_leaf
  // walks patch).
  const CwMacKey tree_key = derive_keys(master_key).tree_key;
  // Staging storage is adopted from the arena (the state vectors the
  // last commit replaced — right-sized and page-warm; empty vectors on
  // the first restore or in scalar mode, where resize allocates). Every
  // byte of every section is overwritten by the reads below, so stale
  // recycled contents can never leak into a staged image.
  StagedRestore staged{master_key,
                       std::move(snap_arena_.ciphertext),
                       std::move(snap_arena_.lanes),
                       std::move(snap_arena_.macs),
                       std::move(snap_arena_.counter_store),
                       batch_snapshot_
                           ? BonsaiTree(layout_.tree(), tree_key,
                                        BonsaiTree::DeferredBuild{})
                           : BonsaiTree(layout_.tree(), tree_key)};
  staged.ciphertext.resize(layout_.num_blocks());
  staged.lanes.resize(layout_.num_blocks());
  staged.macs.resize(macs_.size());
  staged.counter_store.resize(counter_store_.size());
  if (batch_snapshot_) {
    // Chunked reads, mirroring save(): contiguous sections in one stream
    // call each; the MAC words land in their own storage and convert
    // endianness in place (each element independently re-read through
    // load_le64 — the identity on little-endian hosts).
    in.read(reinterpret_cast<char*>(staged.ciphertext.data()),
            static_cast<std::streamsize>(staged.ciphertext.size() *
                                         sizeof(DataBlock)));
    in.read(reinterpret_cast<char*>(staged.lanes.data()),
            static_cast<std::streamsize>(staged.lanes.size() *
                                         sizeof(EccLane)));
    if (!staged.macs.empty()) {
      in.read(reinterpret_cast<char*>(staged.macs.data()),
              static_cast<std::streamsize>(staged.macs.size() * 8));
      for (std::uint64_t& mac : staged.macs) {
        std::uint8_t raw[8];
        std::memcpy(raw, &mac, 8);
        mac = load_le64(raw);
      }
    }
  } else {
    for (DataBlock& ct : staged.ciphertext)
      in.read(reinterpret_cast<char*>(ct.data()), 64);
    for (EccLane& lane : staged.lanes)
      in.read(reinterpret_cast<char*>(lane.data()), 8);
    for (std::uint64_t& mac : staged.macs) mac = read_u64(in);
  }
  in.read(reinterpret_cast<char*>(staged.counter_store.data()),
          static_cast<std::streamsize>(staged.counter_store.size()));
  if (!in) return std::nullopt;

  // Rebuild the tree from the image's counter lines and check its root
  // level against the sealed snapshot — offline counter tamper dies here.
  if (batch_snapshot_) {
    // Bottom-up bulk rebuild: O(lines) batched MACs instead of the
    // O(lines x depth) scalar MACs of per-leaf root walks. Bit-identical
    // final tree (see BonsaiTree::rebuild_from_lines).
    staged.tree.rebuild_from_lines(staged.counter_store);
  } else {
    for (std::uint64_t line = 0; line < layout_.num_counter_lines();
         ++line) {
      staged.tree.update_leaf(
          line,
          BonsaiTree::LineView(staged.counter_store.data() + line * 64, 64));
    }
  }
  const unsigned top = layout_.tree().total_levels() - 1;
  for (std::uint64_t node = 0; node < layout_.tree().nodes_at[top];
       ++node) {
    std::array<std::uint8_t, 64> sealed{};
    in.read(reinterpret_cast<char*>(sealed.data()), 64);
    const auto computed = staged.tree.read_node(top, node);
    if (!in || !ct_equal(computed.data(), sealed.data(), sealed.size()))
      return std::nullopt;
  }
  return staged;
}

void SecureMemory::commit_restore(StagedRestore&& staged) {
  if (staged.master_key != config_.master_key) {
    // The image was staged under a different master (a shard stranded
    // mid-rotation being recovered): adopt it and re-derive the working
    // keys the ciphertext/MACs/tree in the image were produced with.
    config_.master_key = staged.master_key;
    const DerivedKeys keys = derive_keys(staged.master_key);
    keystream_ = CtrKeystream(keys.data_key);
    mac_ = CwMac(keys.mac_key);
    seal_mac_ = CwMac(keys.seal_key);
  }
  // Swap rather than move-assign: the replaced state vectors survive in
  // `staged` and are parked in the arena below, so the next
  // stage_restore reuses their (right-sized, already-faulted) pages.
  std::swap(ciphertext_, staged.ciphertext);
  std::swap(lanes_, staged.lanes);
  std::swap(macs_, staged.macs);
  std::swap(counter_store_, staged.counter_store);
  tree_ = std::move(staged.tree);
  tree_cache_.invalidate_all();  // cached state described the old tree
  if (batch_snapshot_) {
    // One virtual dispatch per region for the line decode and the shadow
    // counter refill (schemes override read_counters with direct group
    // walks) — same state as the per-line/per-block loops below.
    scheme_->deserialize_all(counter_store_);
    scheme_->read_counters(shadow_ctr_);
  } else {
    for (std::uint64_t line = 0; line < layout_.num_counter_lines();
         ++line) {
      scheme_->deserialize_line(
          line, std::span<const std::uint8_t, 64>(
                    counter_store_.data() + line * 64, 64));
    }
    for (std::uint64_t b = 0; b < layout_.num_blocks(); ++b)
      shadow_ctr_[b] = scheme_->read_counter(b);
  }
  if (batch_snapshot_) {
    snap_arena_.ciphertext = std::move(staged.ciphertext);
    snap_arena_.lanes = std::move(staged.lanes);
    snap_arena_.macs = std::move(staged.macs);
    snap_arena_.counter_store = std::move(staged.counter_store);
  }
  metrics_.add(MetricId::kRestores);
  trace(TraceEvent::Kind::kRestore, Status::kOk, 0);
  // Full images carry no chain state: the restored image becomes epoch
  // 0's base, and a delta sealed against it applies on any instance
  // that restored it (the seal covers the root level, not the epoch).
  snap_epoch_ = 0;
  align_chain();
}

void SecureMemory::wipe_to_zeros() {
  // Leave the region in a valid, freshly-zeroed state. The cache is
  // dropped without write-back: it describes the pre-wipe tree, which
  // is being discarded either way.
  scheme_ = make_scheme(config_);
  tree_ =
      BonsaiTree(layout_.tree(), derive_keys(config_.master_key).tree_key);
  tree_cache_.invalidate_all();
  reset_all_blocks({}, 0);
  // The delta chain is broken: nothing will ever have this wiped state
  // as its base, so the next save_delta must emit a full image.
  snap_epoch_ = 0;
  has_base_ = false;
  mark_all_dirty();
}

bool SecureMemory::restore(std::istream& in) {
  std::optional<StagedRestore> staged = stage_restore(in);
  if (!staged) {
    wipe_to_zeros();
    trace(TraceEvent::Kind::kRestore, Status::kIntegrityViolation, 0);
    return false;
  }
  commit_restore(std::move(*staged));
  return true;
}

/// ---------------------------------------------------------------------
/// Incremental (delta) snapshots.
/// ---------------------------------------------------------------------
namespace {
/// Concatenated root-level bytes — the material both chain seals and
/// delta trailers are built from.
void append_root_level(const SecureRegionLayout& layout,
                       const BonsaiTree& tree,
                       std::vector<std::uint8_t>& out) {
  const unsigned top = layout.tree().total_levels() - 1;
  for (std::uint64_t node = 0; node < layout.tree().nodes_at[top]; ++node) {
    const auto bytes = tree.read_node(top, node);
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
}
}  // namespace

void SecureMemory::mark_all_dirty() noexcept {
  for (std::uint64_t w = 0; w < dirty_word_count_; ++w)
    dirty_words_[w].store(~std::uint64_t{0}, std::memory_order_relaxed);
}

void SecureMemory::clear_dirty() noexcept {
  for (std::uint64_t w = 0; w < dirty_word_count_; ++w)
    dirty_words_[w].store(0, std::memory_order_relaxed);
}

std::uint64_t SecureMemory::dirty_granules() const noexcept {
  std::uint64_t count = 0;
  for (std::uint64_t w = 0; w < dirty_word_count_; ++w) {
    std::uint64_t word = dirty_words_[w].load(std::memory_order_relaxed);
    if (w == dirty_word_count_ - 1 && num_granules_ % 64 != 0)
      word &= (std::uint64_t{1} << (num_granules_ % 64)) - 1;
    count += static_cast<std::uint64_t>(std::popcount(word));
  }
  return count;
}

delta::Geometry SecureMemory::delta_geometry() const noexcept {
  delta::Geometry geo;
  geo.num_blocks = layout_.num_blocks();
  geo.blocks_per_line = scheme_->blocks_per_storage_line();
  geo.num_lines = layout_.num_counter_lines();
  geo.granule_blocks = granule_blocks_;
  geo.separate_macs = !macs_.empty();
  return geo;
}

delta::ConstSections SecureMemory::delta_sections() const noexcept {
  return {ciphertext_, lanes_, macs_, counter_store_};
}

std::uint64_t SecureMemory::seal_root_bytes(
    std::span<const std::uint8_t> root_bytes) const noexcept {
  // PRF mode, not the XOR-pad data MAC: every alignment point seals a
  // different root byte string under this one key, and both the seal
  // (delta header, plaintext) and the root bytes (trailer/full image)
  // are attacker-visible — XOR-pad reuse would hand out known-plaintext
  // hash-key equations. The PRF form has no uniqueness requirement.
  return seal_mac_.compute_prf(kSealDomain, root_bytes);
}

std::uint64_t SecureMemory::root_seal() {
  tree_cache_.flush();
  std::vector<std::uint8_t> root;
  append_root_level(layout_, tree_, root);
  return seal_root_bytes(root);
}

void SecureMemory::align_chain() {
  base_seal_ = root_seal();
  has_base_ = true;
  clear_dirty();
}

std::uint64_t SecureMemory::delta_cmd_mac(
    std::uint64_t base_epoch, std::uint64_t new_epoch,
    std::uint64_t base_seal, std::span<const std::uint8_t> cmd,
    std::span<const std::uint8_t> trailer) const noexcept {
  // The MAC covers everything a decoder acts on: the geometry header,
  // both epochs, the base seal, the command length, the command bytes,
  // and the expected-root trailer. Only the magic and the MAC itself
  // stay outside. The epochs are authenticated METADATA only, never a
  // MAC nonce — the epoch space is reused under one seal key (restore
  // resets it, encode_delta pins 0→1), so only the nonce-free PRF form
  // below is sound here.
  std::vector<std::uint8_t> message;
  message.reserve(8 * 8 + cmd.size() + trailer.size());
  const auto put = [&message](std::uint64_t v) {
    std::uint8_t le[8];
    store_le64(le, v);
    message.insert(message.end(), le, le + 8);
  };
  put(config_.size_bytes);
  put(static_cast<std::uint64_t>(config_.scheme));
  put(static_cast<std::uint64_t>(config_.mac_placement));
  put(config_.generic_delta_bits);
  put(base_epoch);
  put(new_epoch);
  put(base_seal);
  put(cmd.size());
  message.insert(message.end(), cmd.begin(), cmd.end());
  message.insert(message.end(), trailer.begin(), trailer.end());
  return seal_mac_.compute_prf(kCmdMacDomain, message);
}

Status SecureMemory::save_delta(std::ostream& out) {
  if (!delta_snapshot_ || !has_base_) {
    // No usable base (kill switch, fresh engine, broken chain): fall
    // back to a full image — which save() re-bases the chain on, so the
    // NEXT save_delta is incremental again.
    metrics_.add(MetricId::kDeltaSaveFallbacks);
    return save(out);
  }
  tree_cache_.flush();

  // Drain the dirty bitmap (relaxed loads: snapshot entry points run
  // under the engine's exclusive synchronization contract).
  std::vector<std::uint64_t> dirty(dirty_word_count_);
  for (std::uint64_t w = 0; w < dirty_word_count_; ++w)
    dirty[w] = dirty_words_[w].load(std::memory_order_relaxed);

  const delta::Geometry geo = delta_geometry();
  std::vector<std::uint8_t> cmd;
  const std::uint64_t dirty_count =
      delta::encode_from_dirty(geo, delta_sections(), dirty, cmd);

  std::vector<std::uint8_t> trailer;
  append_root_level(layout_, tree_, trailer);
  const std::uint64_t new_epoch = snap_epoch_ + 1;
  const std::uint64_t mac =
      delta_cmd_mac(snap_epoch_, new_epoch, base_seal_, cmd, trailer);

  out.write(kDeltaMagic, sizeof(kDeltaMagic));
  write_u64(out, config_.size_bytes);
  write_u64(out, static_cast<std::uint64_t>(config_.scheme));
  write_u64(out, static_cast<std::uint64_t>(config_.mac_placement));
  write_u64(out, config_.generic_delta_bits);
  write_u64(out, snap_epoch_);
  write_u64(out, new_epoch);
  write_u64(out, base_seal_);
  write_u64(out, cmd.size());
  write_u64(out, mac);
  out.write(reinterpret_cast<const char*>(cmd.data()),
            static_cast<std::streamsize>(cmd.size()));
  out.write(reinterpret_cast<const char*>(trailer.data()),
            static_cast<std::streamsize>(trailer.size()));

  // A lost delta breaks the chain SILENTLY — every later delta would
  // seal against a base that never persisted — so a stream failure must
  // not advance it. Epoch, base seal, and dirty bitmap stay put: the
  // next save_delta re-emits everything since the last good alignment
  // point against the still-valid old base.
  out.flush();
  if (!out) return Status::kSnapshotIoError;

  snap_epoch_ = new_epoch;
  align_chain();
  metrics_.add(MetricId::kDeltaSaves);
  metrics_.sample(EngineHistId::kDeltaImageBytes,
                  sizeof(kDeltaMagic) + 9 * 8 + cmd.size() + trailer.size());
  metrics_.sample(EngineHistId::kDeltaDirtyGranules, dirty_count);
  return Status::kOk;
}

std::optional<SecureMemory::StagedDelta> SecureMemory::stage_delta(
    std::istream& in) {
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kDeltaMagic, sizeof(magic)) != 0)
    return std::nullopt;
  return stage_delta_tail(in);
}

std::optional<SecureMemory::StagedDelta> SecureMemory::stage_delta_tail(
    std::istream& in) {
  if (!delta_snapshot_) return std::nullopt;  // kill switch: full only
  if (read_u64(in) != config_.size_bytes) return std::nullopt;
  if (read_u64(in) != static_cast<std::uint64_t>(config_.scheme))
    return std::nullopt;
  if (read_u64(in) != static_cast<std::uint64_t>(config_.mac_placement))
    return std::nullopt;
  if (read_u64(in) != config_.generic_delta_bits) return std::nullopt;
  const std::uint64_t base_epoch = read_u64(in);
  const std::uint64_t new_epoch = read_u64(in);
  const std::uint64_t base_seal = read_u64(in);
  const std::uint64_t cmd_len = read_u64(in);
  const std::uint64_t mac = read_u64(in);
  if (!in) return std::nullopt;

  // Bound the allocation before trusting cmd_len: no valid stream
  // exceeds one command header plus full payload per granule.
  const delta::Geometry geo = delta_geometry();
  std::uint64_t cmd_bound = 0;
  for (std::uint64_t g = 0; g < geo.num_granules(); ++g)
    cmd_bound += 25 + geo.payload_bytes(g);
  if (cmd_len > cmd_bound) return std::nullopt;

  StagedDelta staged;
  staged.new_epoch = new_epoch;
  staged.cmd.resize(cmd_len);
  in.read(reinterpret_cast<char*>(staged.cmd.data()),
          static_cast<std::streamsize>(staged.cmd.size()));
  const unsigned top = layout_.tree().total_levels() - 1;
  staged.trailer.resize(layout_.tree().nodes_at[top] * 64);
  in.read(reinterpret_cast<char*>(staged.trailer.data()),
          static_cast<std::streamsize>(staged.trailer.size()));
  if (!in) return std::nullopt;

  // Verify-before-apply, in authentication order: (1) the command
  // section MAC — nothing below is interpreted until the whole stream
  // is known authentic; (2) the base seal against the engine's CURRENT
  // root — a delta only applies on the exact state it was diffed
  // against (a stale or cross-chain delta dies here, region intact);
  // (3) structural validation of the command stream.
  if (!ct_equal_u64(
          delta_cmd_mac(base_epoch, new_epoch, base_seal, staged.cmd,
                        staged.trailer),
          mac))
    return std::nullopt;
  if (!ct_equal_u64(root_seal(), base_seal)) return std::nullopt;
  if (!delta::parse(geo, staged.cmd, staged.cmds)) return std::nullopt;
  return staged;
}

bool SecureMemory::commit_delta(StagedDelta&& staged) {
  const delta::Geometry geo = delta_geometry();
  delta::MutSections sections{ciphertext_, lanes_, macs_, counter_store_};
  // The staged delta was authenticated in stage_delta_tail (command MAC
  // + base-seal ct_equal_u64, then delta::parse) before this commit ran;
  // the stage/commit split is the verify-before-apply boundary itself.
  delta::apply(geo, staged.cmds,  // secmem-lint: allow(verify-before-apply)
               staged.cmd, sections);

  // Refresh the derived state of every granule the stream wrote:
  // counter-scheme registers from the new line bytes, tree leaves
  // through the verified-frontier update path (O(dirty x depth), not a
  // full rebuild — the in-place payoff on restore), and the per-block
  // shadow counters.
  for (const delta::Command& cmd : staged.cmds) {
    if (cmd.op == delta::Command::kCopy && cmd.src == cmd.dst) continue;
    for (std::uint64_t g = cmd.dst; g < cmd.dst + cmd.n; ++g) {
      const std::uint64_t line0 = geo.line_start(g);
      for (std::uint64_t line = line0; line < line0 + geo.lines_in(g);
           ++line) {
        const std::span<std::uint8_t, 64> bytes(
            counter_store_.data() + line * 64, 64);
        scheme_->deserialize_line(line, bytes);
        tree_cache_.update(line, bytes);
      }
      const std::uint64_t b0 = geo.block_start(g);
      for (std::uint64_t b = b0; b < b0 + geo.blocks_in(g); ++b)
        shadow_ctr_[b] = scheme_->read_counter(b);
    }
  }

  // Defense-in-depth: the MAC-covered trailer pins the post-apply root.
  // A mismatch can only mean the base seal collided (negligible), but
  // serving data off a mismatched tree is never acceptable — wipe.
  tree_cache_.flush();
  std::vector<std::uint8_t> root;
  root.reserve(staged.trailer.size());
  append_root_level(layout_, tree_, root);
  if (root.size() != staged.trailer.size() ||
      !ct_equal(root.data(), staged.trailer.data(), root.size())) {
    wipe_to_zeros();
    metrics_.add(MetricId::kDeltaRejects);
    trace(TraceEvent::Kind::kRestore, Status::kIntegrityViolation, 0);
    return false;
  }

  snap_epoch_ = staged.new_epoch;
  align_chain();
  metrics_.add(MetricId::kDeltaRestores);
  trace(TraceEvent::Kind::kRestore, Status::kOk, 0);
  return true;
}

bool SecureMemory::restore_delta(std::istream& in) {
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  if (in && std::memcmp(magic, kImageMagic, sizeof(magic)) == 0) {
    // Full image: ordinary restore semantics, including wipe-on-failure.
    std::optional<StagedRestore> staged =
        stage_restore_tail(in, config_.master_key);
    if (!staged) {
      wipe_to_zeros();
      trace(TraceEvent::Kind::kRestore, Status::kIntegrityViolation, 0);
      return false;
    }
    commit_restore(std::move(*staged));
    return true;
  }
  if (!in || std::memcmp(magic, kDeltaMagic, sizeof(magic)) != 0) {
    metrics_.add(MetricId::kDeltaRejects);
    trace(TraceEvent::Kind::kRestore, Status::kIntegrityViolation, 0);
    return false;
  }
  // Delta image: verified in full before any byte lands, so a rejection
  // leaves the region EXACTLY as it was (crash/restore-loop contract).
  std::optional<StagedDelta> staged = stage_delta_tail(in);
  if (!staged) {
    metrics_.add(MetricId::kDeltaRejects);
    trace(TraceEvent::Kind::kRestore, Status::kIntegrityViolation, 0);
    return false;
  }
  return commit_delta(std::move(*staged));
}

Status SecureMemory::encode_delta(std::span<const std::uint8_t> base_image,
                                  std::span<const std::uint8_t> target_image,
                                  std::ostream& out) const {
  struct Parsed {
    delta::ConstSections sections;
    std::span<const std::uint8_t> root;
    std::vector<std::uint64_t> mac_words;
  };
  const std::uint64_t nb = layout_.num_blocks();
  const auto slice = [&](std::span<const std::uint8_t> img,
                         Parsed& parsed) -> bool {
    if (img.size() != image_bytes()) return false;
    if (std::memcmp(img.data(), kImageMagic, sizeof(kImageMagic)) != 0)
      return false;
    std::size_t off = sizeof(kImageMagic);
    const auto field = [&img, &off] {
      const std::uint64_t v = load_le64(img.data() + off);
      off += 8;
      return v;
    };
    if (field() != config_.size_bytes ||
        field() != static_cast<std::uint64_t>(config_.scheme) ||
        field() != static_cast<std::uint64_t>(config_.mac_placement) ||
        field() != config_.generic_delta_bits)
      return false;
    // DataBlock/EccLane are byte arrays (alignment 1), so the image's
    // contiguous sections reinterpret directly; MAC words decode into
    // owned storage.
    parsed.sections.ciphertext = std::span<const DataBlock>(
        reinterpret_cast<const DataBlock*>(img.data() + off), nb);
    off += nb * sizeof(DataBlock);
    parsed.sections.lanes = std::span<const EccLane>(
        reinterpret_cast<const EccLane*>(img.data() + off), nb);
    off += nb * sizeof(EccLane);
    parsed.mac_words.resize(macs_.size());
    for (std::uint64_t& w : parsed.mac_words) {
      w = load_le64(img.data() + off);
      off += 8;
    }
    parsed.sections.macs = parsed.mac_words;
    parsed.sections.counters = img.subspan(off, counter_store_.size());
    off += counter_store_.size();
    parsed.root = img.subspan(off);
    return true;
  };

  Parsed base, target;
  if (!slice(base_image, base) || !slice(target_image, target))
    return Status::kIntegrityViolation;

  std::vector<std::uint8_t> cmd;
  delta::encode_from_diff(delta_geometry(), base.sections, target.sections,
                          cmd);
  const std::uint64_t base_seal = seal_root_bytes(base.root);
  const std::uint64_t mac =
      delta_cmd_mac(0, 1, base_seal, cmd,
                    {target.root.data(), target.root.size()});

  out.write(kDeltaMagic, sizeof(kDeltaMagic));
  write_u64(out, config_.size_bytes);
  write_u64(out, static_cast<std::uint64_t>(config_.scheme));
  write_u64(out, static_cast<std::uint64_t>(config_.mac_placement));
  write_u64(out, config_.generic_delta_bits);
  write_u64(out, 0);  // base epoch (informational — acceptance is by seal,
  write_u64(out, 1);  // and the epochs are MAC'd metadata, not nonces)
  write_u64(out, base_seal);
  write_u64(out, cmd.size());
  write_u64(out, mac);
  out.write(reinterpret_cast<const char*>(cmd.data()),
            static_cast<std::streamsize>(cmd.size()));
  out.write(reinterpret_cast<const char*>(target.root.data()),
            static_cast<std::streamsize>(target.root.size()));
  out.flush();
  return out ? Status::kOk : Status::kSnapshotIoError;
}

bool SecureMemory::rotate_master_key(std::uint64_t new_master) {
  // Flush barrier: phase 1 must authenticate against off-chip truth so a
  // rotation cannot launder state the eager path would have rejected.
  tree_cache_.flush();
  // Phase 1: recover every plaintext under the current keys. Any
  // verification failure aborts with the region untouched — re-keying
  // must never launder tampered data into a freshly-authenticated state.
  std::vector<DataBlock> plaintexts(layout_.num_blocks());
  {
    constexpr std::uint64_t kChunk = 128;
    std::array<std::uint64_t, kChunk> chunk_blocks;
    for (std::uint64_t base = 0; base < layout_.num_blocks();
         base += kChunk) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(kChunk, layout_.num_blocks() - base));
      for (std::size_t i = 0; i < n; ++i) chunk_blocks[i] = base + i;
      const auto results = read_blocks({chunk_blocks.data(), n});
      for (std::size_t i = 0; i < n; ++i) {
        if (!status_ok(results[i].status)) {
          trace(TraceEvent::Kind::kKeyRotation, results[i].status, base + i);
          return false;
        }
        plaintexts[base + i] = results[i].data;
      }
    }
  }

  // Phase 2: rebuild the cryptographic state. Fresh keys make every
  // (addr, counter) pair fresh again, so counters restart at zero.
  config_.master_key = new_master;
  const DerivedKeys keys = derive_keys(new_master);
  keystream_ = CtrKeystream(keys.data_key);
  mac_ = CwMac(keys.mac_key);
  seal_mac_ = CwMac(keys.seal_key);
  tree_ = BonsaiTree(layout_.tree(), keys.tree_key);
  tree_cache_.invalidate_all();  // phase-1 reads refilled it; old tree
  scheme_ = make_scheme(config_);
  std::fill(shadow_ctr_.begin(), shadow_ctr_.end(), 0);
  // The rotation breaks the snapshot chain: every byte re-encrypts and
  // the seal key itself changed, so no prior base exists. The next
  // save_delta emits a full image and re-bases the chain under the new
  // key — the rolling-rotation-across-a-chain contract.
  has_base_ = false;
  mark_all_dirty();

  // Phase 3: re-encrypt everything and re-authenticate counter storage.
  reset_all_blocks(plaintexts, 0);
  metrics_.add(MetricId::kKeyRotations);
  trace(TraceEvent::Kind::kKeyRotation, Status::kOk, 0);
  return true;
}

Status SecureMemory::write_bytes(std::uint64_t addr,
                                 std::span<const std::uint8_t> bytes) {
  // Overflow-safe: `addr + bytes.size()` wraps for addr near UINT64_MAX
  // and would sail past the range check.
  if (addr > config_.size_bytes || bytes.size() > config_.size_bytes - addr)
    throw std::out_of_range("SecureMemory::write_bytes: range exceeds region");
  metrics_.add(MetricId::kByteWrites);
  metrics_.sample(EngineHistId::kByteWriteBytes, bytes.size());
  if (bytes.empty()) return Status::kOk;
  Status folded = Status::kOk;

  // All-or-nothing: only the partial blocks at the edges of the range
  // need their old contents, so they are the only blocks whose
  // verification can fail. Pre-verify them BEFORE mutating anything —
  // a mid-range failure must not leave a torn write behind.
  const std::uint64_t first_block = addr / 64;
  const std::uint64_t last_block = (addr + bytes.size() - 1) / 64;
  const bool head_partial = addr % 64 != 0 || bytes.size() < 64;
  const bool tail_partial = (addr + bytes.size()) % 64 != 0;

  DataBlock head_plain{};
  DataBlock tail_plain{};
  if (head_partial) {
    const ReadResult r = read_block(first_block);
    folded = worse(folded, r.status);
    if (!status_ok(r.status)) {
      trace(TraceEvent::Kind::kByteWrite, r.status, first_block);
      return r.status;
    }
    head_plain = r.data;
  }
  if (tail_partial && last_block != first_block) {
    const ReadResult r = read_block(last_block);
    folded = worse(folded, r.status);
    if (!status_ok(r.status)) {
      trace(TraceEvent::Kind::kByteWrite, r.status, last_block);
      return r.status;
    }
    tail_plain = r.data;
  }

  std::uint64_t pos = addr;
  std::size_t done = 0;
  while (done < bytes.size()) {
    const std::uint64_t block = pos / 64;
    const std::size_t offset = pos % 64;
    const std::size_t chunk = std::min<std::size_t>(64 - offset,
                                                    bytes.size() - done);
    // Middle blocks are fully overwritten; edge blocks merge into the
    // pre-verified plaintext. (Group re-encryptions triggered by earlier
    // iterations change ciphertexts, never plaintexts, so the cached
    // copies stay valid.)
    DataBlock plain{};
    if (chunk != 64)
      plain = block == first_block ? head_plain : tail_plain;
    std::memcpy(plain.data() + offset, bytes.data() + done, chunk);
    folded = worse(folded, write_block(block, plain));
    pos += chunk;
    done += chunk;
  }
  trace(TraceEvent::Kind::kByteWrite, folded, first_block);
  return folded;
}

Status SecureMemory::read_bytes(std::uint64_t addr,
                                std::span<std::uint8_t> out) {
  if (addr > config_.size_bytes || out.size() > config_.size_bytes - addr)
    throw std::out_of_range("SecureMemory::read_bytes: range exceeds region");
  metrics_.add(MetricId::kByteReads);
  metrics_.sample(EngineHistId::kByteReadBytes, out.size());
  Status folded = Status::kOk;
  std::uint64_t pos = addr;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t block = pos / 64;
    const std::size_t offset = pos % 64;
    const std::size_t chunk =
        std::min<std::size_t>(64 - offset, out.size() - done);
    const ReadResult r = read_block(block);
    folded = worse(folded, r.status);
    if (!status_ok(r.status)) {
      trace(TraceEvent::Kind::kByteRead, r.status, block);
      return r.status;
    }
    std::memcpy(out.data() + done, r.data.data() + offset, chunk);
    pos += chunk;
    done += chunk;
  }
  trace(TraceEvent::Kind::kByteRead, folded, addr / 64);
  return folded;
}

EngineStats SecureMemory::stats() const noexcept {
  return engine_stats_from({&metrics_});
}

void SecureMemory::reset_stats() noexcept { metrics_.reset(); }

void SecureMemory::publish_metrics(StatRegistry& registry,
                                   const std::string& prefix) const {
  publish_cells({&metrics_}, registry, prefix);
}

SecureMemory::UntrustedView::BlockSnapshot
SecureMemory::UntrustedView::snapshot(std::uint64_t block) const {
  const std::uint64_t line = m_.scheme_->storage_line_of(block);
  BlockSnapshot snap;
  snap.ciphertext = m_.ciphertext_.at(block);
  snap.lane = m_.lanes_.at(block);
  snap.mac = m_.macs_.empty() ? 0 : m_.macs_.at(block);
  snap.counter_line.assign(m_.counter_store_.begin() + line * 64,
                           m_.counter_store_.begin() + line * 64 + 64);
  return snap;
}

void SecureMemory::UntrustedView::restore(std::uint64_t block,
                                          const BlockSnapshot& snapshot) {
  const std::uint64_t line = m_.scheme_->storage_line_of(block);
  m_.ciphertext_.at(block) = snapshot.ciphertext;
  m_.lanes_.at(block) = snapshot.lane;
  if (!m_.macs_.empty()) m_.macs_.at(block) = snapshot.mac;
  std::memcpy(m_.counter_store_.data() + line * 64,
              snapshot.counter_line.data(), 64);
}

}  // namespace secmem
