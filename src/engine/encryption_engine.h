// Memory-encryption engine — timing model (paper §2, §3, §5.2).
//
// Sits between the LLC and DRAM in the simulated system. Every L3 miss
// becomes a *verified read*: fetch ciphertext, fetch+verify the counter
// through the Bonsai tree (metadata cache shortcuts the walk at the first
// resident ancestor), generate the keystream, check the MAC. Every L3
// dirty writeback becomes an *authenticated write*: bump the counter
// (possibly triggering re-encode/reset/re-encryption), encrypt, MAC,
// write.
//
// The two knobs under evaluation:
//   - MacPlacement::kEccLane (paper §3): the MAC rides the x72 ECC bus —
//     zero extra DRAM transactions and zero metadata-cache pollution.
//   - MacPlacement::kSeparate: SGX/BMT-style 56-bit MACs in their own
//     region, fetched through DRAM and competing for the metadata cache.
//   - the CounterScheme decides counter-storage size and hence tree depth.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "common/stats.h"
#include "counters/counter_scheme.h"
#include "counters/reencryption_engine.h"
#include "dram/dram_system.h"
#include "engine/layout.h"
#include "tree/metadata_cache.h"

namespace secmem {

enum class MacPlacement : std::uint8_t {
  kEccLane,   ///< MAC stored in the ECC bits, read with the data (paper §3)
  kSeparate,  ///< MAC in a dedicated region, extra DRAM transaction
};

struct EngineConfig {
  MacPlacement mac_placement = MacPlacement::kEccLane;
  CacheConfig metadata_cache{32 * 1024, 8, 64};  ///< paper Table 1
  unsigned aes_latency = 40;      ///< keystream pipeline depth (cycles)
  unsigned mac_latency = 1;       ///< GF-multiply MAC check (paper §3.4)
  unsigned xor_latency = 1;       ///< pad XOR
  unsigned meta_hit_latency = 2;  ///< metadata-cache hit access time
  bool background_reencryption = true;  ///< §5.2: re-encryption does not
                                        ///< stall the cores
};

class EncryptionEngine {
 public:
  EncryptionEngine(const EngineConfig& config, CounterScheme& scheme,
                   const SecureRegionLayout& layout, DramSystem& dram,
                   StatRegistry& stats);

  /// Verified read of the block at data address `addr`, starting at cycle
  /// `now`; returns the cycle decrypted+verified data is available.
  std::uint64_t read_block(std::uint64_t now, std::uint64_t addr);

  /// Posted authenticated write (L3 writeback) of the block at `addr`.
  /// Consumes DRAM bandwidth and may trigger counter maintenance; does
  /// not produce a latency the core waits on.
  void write_block(std::uint64_t now, std::uint64_t addr);

  /// Flush dirty metadata (end-of-run accounting).
  void flush_metadata(std::uint64_t now);

  const CounterScheme& scheme() const noexcept { return scheme_; }
  const SecureRegionLayout& layout() const noexcept { return layout_; }
  ReencryptionEngine& reencryption() noexcept { return reenc_; }

 private:
  /// Cycle at which the verified counter for `block` is available.
  /// Metadata fetched on the way fills the metadata cache.
  std::uint64_t fetch_counter(std::uint64_t now, BlockIndex block);

  /// Bring the counter line on chip (verified) and mark it dirty.
  /// Tree updates propagate lazily: a dirty metadata line updates its
  /// parent only when it is written back (see post_metadata_writebacks).
  void touch_write_path(std::uint64_t now, BlockIndex block);

  /// Mark the parent of metadata line (level, index) dirty, fetching it
  /// if absent — the lazy update step for an evicted dirty child whose
  /// MAC must be re-recorded. The on-chip root level is free to update.
  void dirty_parent(std::uint64_t now, unsigned level, std::uint64_t index);

  /// Write back evicted dirty metadata lines and lazily propagate their
  /// MAC updates into their parents.
  void post_metadata_writebacks(std::uint64_t now,
                                const std::vector<std::uint64_t>& lines);

  EngineConfig config_;
  CounterScheme& scheme_;
  const SecureRegionLayout& layout_;
  DramSystem& dram_;
  // Cached registry counters (stable references, see StatRegistry): the
  // engine sits on the simulator's per-access path, so the name lookups
  // happen once at construction.
  StatCounter& reads_;
  StatCounter& writes_;
  StatCounter& counter_hits_;
  StatCounter& counter_misses_;
  StatCounter& counter_misses_write_;
  StatCounter& tree_node_fetches_;
  StatCounter& parent_fetches_;
  StatCounter& metadata_writebacks_;
  StatCounter& mac_hits_;
  StatCounter& mac_misses_;
  std::array<StatCounter*, 5> ctr_events_;  ///< indexed by CounterEvent
  MetadataCache metadata_cache_;
  ReencryptionEngine reenc_;
};

}  // namespace secmem
