#include "engine/sharded_memory.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <streambuf>
#include <string>
#include <thread>

#include "common/bitops.h"
#include "common/rng.h"

namespace secmem {

namespace {

/// Independent per-shard master secret. Mixing the shard index through
/// splitmix64 keeps shard keys unrelated, so identical plaintexts at the
/// same shard-local (addr, counter) in two shards still encrypt under
/// distinct pads.
std::uint64_t shard_master_key(std::uint64_t master, unsigned shard) {
  std::uint64_t state = master ^ (0x5ec'da7a'5a2dULL + shard);
  return splitmix64(state);
}

/// Probe the counter scheme a config resolves to and return the routing
/// granule: the smallest block count that is a whole number of
/// re-encryption groups AND counter-storage lines (and at least a 4 KB
/// block-group), so striping granules across shards never splits either
/// unit of locality.
unsigned routing_granule_blocks(const SecureMemoryConfig& config) {
  SecureMemoryConfig probe = config;
  probe.size_bytes = 256 * 1024;  // geometry is size-independent
  const auto scheme = SecureMemory::make_scheme(probe);
  unsigned granule = std::lcm(scheme->blocks_per_group(),
                              scheme->blocks_per_storage_line());
  return std::lcm(granule, 64u);  // >= one 4 KB block-group
}

constexpr char kShardMagic[8] = {'S', 'E', 'C', 'S', 'H', 'R', 'D', '1'};
/// Delta-container magic: header + per-shard length table + per-shard
/// payloads (each a SecureMemory full OR delta image, sniffed on its
/// own magic below — a shard with a broken chain falls back to full).
constexpr char kShardDeltaMagic[8] = {'S', 'E', 'C', 'S', 'H', 'D', 'L', '1'};
/// The per-engine image magics (owned by secure_memory.cc, which
/// validates them again when staging — these copies only route slices).
constexpr char kEngineImageMagic[8] = {'S', 'E', 'C', 'M', 'E', 'M', '0', '1'};
constexpr char kEngineDeltaMagic[8] = {'S', 'E', 'C', 'M', 'D', 'L', 'T', '1'};

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// ostream sink appending straight into a caller-owned byte vector, so
/// the parallel save workers each serialize into private storage instead
/// of contending on one shared stream. reserve() up front makes xsputn
/// a memcpy-and-bump in steady state.
class VectorSink final : public std::streambuf {
 public:
  explicit VectorSink(std::vector<char>& out) : out_(out) {}

 protected:
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    out_.insert(out_.end(), s, s + n);
    return n;
  }
  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof()))
      out_.push_back(traits_type::to_char_type(ch));
    return ch;
  }

 private:
  std::vector<char>& out_;
};

/// istream source over a borrowed byte slice — each parallel restore
/// worker parses its cut of the bulk-read container without copying it.
/// The const_cast is the std::streambuf get-area API's; the get area is
/// never written through.
class SpanSource final : public std::streambuf {
 public:
  SpanSource(const char* data, std::size_t size) {
    char* p = const_cast<char*>(data);
    setg(p, p, p + size);
  }
};

void write_u64(std::ostream& out, std::uint64_t v) {
  std::uint8_t buf[8];
  store_le64(buf, v);
  out.write(reinterpret_cast<const char*>(buf), 8);
}

std::uint64_t read_u64(std::istream& in) {
  std::uint8_t buf[8] = {};
  in.read(reinterpret_cast<char*>(buf), 8);
  return load_le64(buf);
}

/// Run fn(shard_index) for every shard on a bounded worker pool:
/// min(shards, hardware_concurrency) threads draining an atomic cursor.
/// The old one-thread-per-shard policy oversubscribed badly (a 64-shard
/// region on a 4-core box spawned 64 threads that mostly context-switch);
/// the cap keeps maintenance sweeps at hardware parallelism while the
/// cursor still load-balances uneven shards.
/// Worker count parallel_over_shards will use. The snapshot paths probe
/// it to pick the buffered shard-parallel pipeline only when there is
/// actual parallelism to buy — with one worker, per-shard buffers would
/// add a full extra image copy for nothing, so they stream directly.
unsigned shard_pool_workers(unsigned num_shards) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;  // unknown topology: stay sequential
  return std::min(num_shards, hw);
}

template <typename Fn>
void parallel_over_shards(unsigned num_shards, Fn&& fn) {
  const unsigned workers = shard_pool_workers(num_shards);
  if (workers <= 1) {
    for (unsigned s = 0; s < num_shards; ++s) fn(s);
    return;
  }
  std::atomic<unsigned> cursor{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&cursor, &fn, num_shards] {
      for (unsigned s = cursor.fetch_add(1, std::memory_order_relaxed);
           s < num_shards;
           s = cursor.fetch_add(1, std::memory_order_relaxed)) {
        fn(s);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace

ShardedSecureMemory::ShardedSecureMemory(const SecureMemoryConfig& config,
                                         unsigned num_shards)
    : config_(config),
      num_shards_(num_shards),
      granule_blocks_(routing_granule_blocks(config)),
      num_blocks_(config.size_bytes / 64),
      seqlock_reads_(seqlock_reads_enabled()),
      batch_snapshot_(batch_snapshot_enabled()) {
  if (num_shards == 0)
    throw std::invalid_argument("ShardedSecureMemory: need >= 1 shard");
  const std::uint64_t granule_bytes = granule_blocks_ * 64ULL;
  if (config.size_bytes == 0 ||
      config.size_bytes % (num_shards * granule_bytes) != 0) {
    throw std::invalid_argument(
        "ShardedSecureMemory: region size " +
        std::to_string(config.size_bytes) + " is not a multiple of " +
        std::to_string(num_shards) + " shards x " +
        std::to_string(granule_bytes) + "-byte granule");
  }
  SecureMemoryConfig shard_config = config;
  shard_config.size_bytes = config.size_bytes / num_shards;
  shards_ = std::make_unique<Shard[]>(num_shards);
  for (unsigned s = 0; s < num_shards; ++s) {
    shard_config.master_key = shard_master_key(config.master_key, s);
    shards_[s].engine = std::make_unique<SecureMemory>(shard_config);
  }
}

void ShardedSecureMemory::check_block(std::uint64_t block) const {
  if (block >= num_blocks_)
    throw std::out_of_range("ShardedSecureMemory: block " +
                            std::to_string(block) + " out of range");
}

ShardedSecureMemory::Route ShardedSecureMemory::route(
    std::uint64_t block) const {
  const std::uint64_t granule = block / granule_blocks_;
  return Route{
      static_cast<unsigned>(granule % num_shards_),
      (granule / num_shards_) * granule_blocks_ + block % granule_blocks_};
}

SecureMemory::ReadResult ShardedSecureMemory::poisoned_read()
    const noexcept {
  // Fail closed: a split-keyed region must not decrypt anything — half
  // of it would be served under keys the caller meant to retire.
  metrics_.add(MetricId::kIntegrityViolations);
  return ReadResult{Status::kRegionPoisoned, {}, 0};
}

Status ShardedSecureMemory::poisoned_mutation(
    std::uint64_t block) const noexcept {
  // Refused mutations count as integrity violations (the region cannot
  // accept state) and leave a trace event, but — unlike the pre-Status
  // surface — they REPORT instead of throw.
  metrics_.add(MetricId::kIntegrityViolations);
  if (trace_)
    trace_->record(TraceEvent::Kind::kWrite, Status::kRegionPoisoned, block,
                   static_cast<std::uint16_t>(shard_of_block(block)));
  return Status::kRegionPoisoned;
}

Status ShardedSecureMemory::write_block(std::uint64_t block,
                                        const DataBlock& plaintext) {
  check_block(block);
  if (poisoned()) return poisoned_mutation(block);
  const Route r = route(block);
  Shard& s = shards_[r.shard];
  const SeqWriteLock lock(s.mu);
  return s.engine->write_block(r.local_block, plaintext);
}

SecureMemory::ReadResult ShardedSecureMemory::read_block(
    std::uint64_t block) {
  check_block(block);
  if (poisoned()) return poisoned_read();
  const Route r = route(block);
  Shard& s = shards_[r.shard];
  if (seqlock_reads_) {
    // Shared fast path: any number of readers verify in parallel under
    // the shard's reader lock; nullopt is the promotion pulse declining
    // (cold counter line) — fall through to the exclusive path, whose
    // verify() installs the line into the verified frontier.
    const SeqReadLock lock(s.mu);
    if (const auto res = s.engine->read_block_shared(r.local_block))
      return *res;
  }
  const SeqWriteLock lock(s.mu);
  return s.engine->read_block(r.local_block);
}

SecureMemory::ScrubStatus ShardedSecureMemory::scrub_block(
    std::uint64_t block, bool deep) {
  check_block(block);
  if (poisoned()) {
    (void)poisoned_mutation(block);
    return ScrubStatus::kRegionPoisoned;
  }
  const Route r = route(block);
  Shard& s = shards_[r.shard];
  const SeqWriteLock lock(s.mu);
  return s.engine->scrub_block(r.local_block, deep);
}

std::vector<SecureMemory::ReadResult> ShardedSecureMemory::read_blocks(
    std::span<const std::uint64_t> blocks) {
  for (const std::uint64_t block : blocks) check_block(block);
  if (poisoned()) {
    std::vector<SecureMemory::ReadResult> results(blocks.size());
    for (auto& r : results) r = poisoned_read();
    return results;
  }

  // Visit requests grouped by shard so each shard lock is taken once per
  // batch. Shard ids are small and dense, so a two-pass counting sort
  // builds the visit order in O(n + shards) — the old indirect
  // stable_sort was a measurable per-batch tax on single-shard hot
  // batches — and keeps same-shard requests in caller order (the
  // scatter pass below is stable by construction).
  std::vector<std::uint32_t> order(blocks.size());
  std::vector<std::uint32_t> cursor(num_shards_ + 1, 0);
  for (const std::uint64_t block : blocks) ++cursor[shard_of_block(block) + 1];
  for (unsigned s = 0; s < num_shards_; ++s) cursor[s + 1] += cursor[s];
  for (std::uint32_t i = 0; i < blocks.size(); ++i)
    order[cursor[shard_of_block(blocks[i])]++] = i;

  std::vector<SecureMemory::ReadResult> results(blocks.size());
  std::vector<std::uint64_t> local_blocks;
  std::vector<SecureMemory::ReadResult> shard_results;
  std::vector<std::uint32_t> declined;
  std::size_t i = 0;
  while (i < order.size()) {
    const unsigned shard = shard_of_block(blocks[order[i]]);
    const std::size_t run_start = i;
    local_blocks.clear();
    for (; i < order.size() && shard_of_block(blocks[order[i]]) == shard;
         ++i) {
      local_blocks.push_back(route(blocks[order[i]]).local_block);
    }
    Shard& s = shards_[shard];
    if (seqlock_reads_) {
      // Shared batch fast path; only the declined indices (cold counter
      // lines bounced by the promotion pulse) pay the exclusive lock.
      shard_results.assign(local_blocks.size(), {});
      declined.clear();
      {
        const SeqReadLock lock(s.mu);
        s.engine->read_blocks_shared(local_blocks, shard_results, declined);
      }
      if (!declined.empty()) {
        const SeqWriteLock lock(s.mu);
        for (const std::uint32_t d : declined)
          shard_results[d] = s.engine->read_block(local_blocks[d]);
      }
    } else {
      const SeqWriteLock lock(s.mu);
      shard_results = s.engine->read_blocks(local_blocks);
    }
    for (std::size_t k = 0; k < shard_results.size(); ++k)
      results[order[run_start + k]] = std::move(shard_results[k]);
  }
  return results;
}

Status ShardedSecureMemory::write_blocks(std::span<const BlockWrite> writes) {
  for (const BlockWrite& w : writes) check_block(w.block);
  if (poisoned())
    return poisoned_mutation(writes.empty() ? 0 : writes.front().block);

  // Same counting-sort grouping as read_blocks (stable, O(n + shards)).
  std::vector<std::uint32_t> order(writes.size());
  std::vector<std::uint32_t> cursor(num_shards_ + 1, 0);
  for (const BlockWrite& w : writes) ++cursor[shard_of_block(w.block) + 1];
  for (unsigned s = 0; s < num_shards_; ++s) cursor[s + 1] += cursor[s];
  for (std::uint32_t i = 0; i < writes.size(); ++i)
    order[cursor[shard_of_block(writes[i].block)]++] = i;

  Status folded = Status::kOk;
  std::vector<BlockWrite> local_writes;
  std::size_t i = 0;
  while (i < order.size()) {
    const unsigned shard = shard_of_block(writes[order[i]].block);
    local_writes.clear();
    for (; i < order.size() &&
           shard_of_block(writes[order[i]].block) == shard;
         ++i) {
      const BlockWrite& w = writes[order[i]];
      local_writes.push_back({route(w.block).local_block, w.data});
    }
    Shard& s = shards_[shard];
    const SeqWriteLock lock(s.mu);
    folded = worse(folded, s.engine->write_blocks(local_writes));
  }
  return folded;
}

std::vector<std::size_t> ShardedSecureMemory::shards_in_range(
    std::uint64_t first_block, std::uint64_t last_block) const {
  const std::uint64_t first_granule = first_block / granule_blocks_;
  const std::uint64_t last_granule = last_block / granule_blocks_;
  std::vector<std::size_t> shards;
  if (last_granule - first_granule + 1 >= num_shards_) {
    shards.resize(num_shards_);
    std::iota(shards.begin(), shards.end(), std::size_t{0});
    return shards;
  }
  for (std::uint64_t g = first_granule; g <= last_granule; ++g)
    shards.push_back(static_cast<std::size_t>(g % num_shards_));
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

std::vector<SeqLock*> ShardedSecureMemory::mutexes_of(
    std::span<const std::size_t> shards) const {
  std::vector<SeqLock*> mutexes;
  mutexes.reserve(shards.size());
  for (const std::size_t s : shards) mutexes.push_back(&shards_[s].mu);
  return mutexes;
}

// Cross-shard byte range: a runtime-selected lock set acquired in fixed
// ascending order (lock_in_order) — beyond static thread-safety analysis;
// covered by the TSan preset's sharded stress tests.
Status ShardedSecureMemory::write_bytes(std::uint64_t addr,
                                        std::span<const std::uint8_t> bytes)
    SECMEM_NO_THREAD_SAFETY_ANALYSIS {
  if (addr > config_.size_bytes || bytes.size() > config_.size_bytes - addr)
    throw std::out_of_range(
        "ShardedSecureMemory::write_bytes: range exceeds region");
  metrics_.add(MetricId::kByteWrites);
  metrics_.sample(EngineHistId::kByteWriteBytes, bytes.size());
  if (poisoned()) {
    metrics_.add(MetricId::kIntegrityViolations);
    return Status::kRegionPoisoned;
  }
  if (bytes.empty()) return Status::kOk;

  const std::uint64_t first_block = addr / 64;
  const std::uint64_t last_block = (addr + bytes.size() - 1) / 64;
  const auto involved = shards_in_range(first_block, last_block);
  const auto locks = lock_in_order(mutexes_of(involved));
  const std::uint16_t owner =
      static_cast<std::uint16_t>(shard_of_block(first_block));
  auto trace_result = [&](Status s) {
    if (trace_)
      trace_->record(TraceEvent::Kind::kByteWrite, s, first_block, owner);
    return s;
  };

  // Same all-or-nothing protocol as SecureMemory::write_bytes, but with
  // every touched shard held: pre-verify the partial edge blocks — the
  // only reads this operation depends on — before mutating any shard.
  const bool head_partial = addr % 64 != 0 || bytes.size() < 64;
  const bool tail_partial = (addr + bytes.size()) % 64 != 0;
  Status folded = Status::kOk;
  DataBlock head_plain{};
  DataBlock tail_plain{};
  if (head_partial) {
    const Route r = route(first_block);
    const auto res = shards_[r.shard].engine->read_block(r.local_block);
    folded = worse(folded, res.status);
    if (!status_ok(res.status)) return trace_result(res.status);
    head_plain = res.data;
  }
  if (tail_partial && last_block != first_block) {
    const Route r = route(last_block);
    const auto res = shards_[r.shard].engine->read_block(r.local_block);
    folded = worse(folded, res.status);
    if (!status_ok(res.status)) return trace_result(res.status);
    tail_plain = res.data;
  }

  std::uint64_t pos = addr;
  std::size_t done = 0;
  while (done < bytes.size()) {
    const std::uint64_t block = pos / 64;
    const std::size_t offset = pos % 64;
    const std::size_t chunk =
        std::min<std::size_t>(64 - offset, bytes.size() - done);
    DataBlock plain{};
    if (chunk != 64)
      plain = block == first_block ? head_plain : tail_plain;
    std::memcpy(plain.data() + offset, bytes.data() + done, chunk);
    const Route r = route(block);
    folded =
        worse(folded, shards_[r.shard].engine->write_block(r.local_block,
                                                           plain));
    pos += chunk;
    done += chunk;
  }
  return trace_result(folded);
}

// Optimistic cross-shard snapshot read — the seqlock generation protocol
// in full. No locks are held across blocks: each block is read under a
// short SHARED lock on its owning shard, and the bracketing generation
// check proves no writer committed (or ran) anywhere in the involved
// set between the first and last read — i.e. the assembled range equals
// what an all-locks reader would have seen at one instant. Accounting is
// deferred (read_block_shared(account=false)) and committed only when
// the snapshot validates, so a torn attempt that gets retried never
// double-counts reads. Beyond static analysis (runtime shard set,
// optimistic validation); TSan-covered.
std::optional<Status> ShardedSecureMemory::try_read_bytes_optimistic(
    std::uint64_t addr, std::span<std::uint8_t> out,
    std::span<const std::size_t> involved)
    SECMEM_NO_THREAD_SAFETY_ANALYSIS {
  std::vector<std::uint64_t> gens(involved.size());
  for (std::size_t i = 0; i < involved.size(); ++i) {
    gens[i] = shards_[involved[i]].mu.generation();
    if (SeqLock::write_in_progress(gens[i])) return std::nullopt;
  }
  const auto unchanged = [&] {
    for (std::size_t i = 0; i < involved.size(); ++i)
      if (shards_[involved[i]].mu.generation() != gens[i]) return false;
    return true;
  };

  const std::uint64_t first_block = addr / 64;
  const std::uint16_t owner =
      static_cast<std::uint16_t>(shard_of_block(first_block));
  struct PendingAccount {
    const SecureMemory* engine;
    std::uint64_t local_block;
    ReadResult result;
  };
  std::vector<PendingAccount> pending;
  const auto commit_accounting = [&] {
    for (const PendingAccount& p : pending)
      p.engine->account_read(p.result, p.local_block);
  };

  Status folded = Status::kOk;
  std::uint64_t pos = addr;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t block = pos / 64;
    const std::size_t offset = pos % 64;
    const std::size_t chunk =
        std::min<std::size_t>(64 - offset, out.size() - done);
    const Route r = route(block);
    Shard& s = shards_[r.shard];
    std::optional<ReadResult> res;
    {
      const SeqReadLock lock(s.mu);
      res = s.engine->read_block_shared(r.local_block, /*account=*/false);
    }
    if (!res) return std::nullopt;  // declined: warm via exclusive path
    pending.push_back({s.engine.get(), r.local_block, *res});
    if (!status_ok(res->status)) {
      // A failure verdict is only reportable if it belongs to a
      // consistent instant — a writer racing this range could otherwise
      // manufacture one out of a half-updated group.
      if (!unchanged()) return std::nullopt;
      commit_accounting();
      if (trace_)
        trace_->record(TraceEvent::Kind::kByteRead, res->status, first_block,
                       owner);
      return res->status;
    }
    folded = worse(folded, res->status);
    std::memcpy(out.data() + done, res->data.data() + offset, chunk);
    pos += chunk;
    done += chunk;
  }
  if (!unchanged()) return std::nullopt;
  commit_accounting();
  if (trace_)
    trace_->record(TraceEvent::Kind::kByteRead, folded, first_block, owner);
  return folded;
}

// See write_bytes: runtime-selected lock set, ordered acquisition,
// TSan-covered.
Status ShardedSecureMemory::read_bytes(std::uint64_t addr,
                                       std::span<std::uint8_t> out)
    SECMEM_NO_THREAD_SAFETY_ANALYSIS {
  if (addr > config_.size_bytes || out.size() > config_.size_bytes - addr)
    throw std::out_of_range(
        "ShardedSecureMemory::read_bytes: range exceeds region");
  metrics_.add(MetricId::kByteReads);
  metrics_.sample(EngineHistId::kByteReadBytes, out.size());
  if (poisoned()) {
    metrics_.add(MetricId::kIntegrityViolations);
    return Status::kRegionPoisoned;
  }
  if (out.empty()) return Status::kOk;

  const std::uint64_t first_block = addr / 64;
  const std::uint64_t last_block = (addr + out.size() - 1) / 64;
  const auto involved = shards_in_range(first_block, last_block);

  if (seqlock_reads_) {
    // Two optimistic attempts, then the exclusive fallback — bounded
    // retries so a write-heavy phase degrades to the old protocol
    // instead of livelocking readers.
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (const auto verdict = try_read_bytes_optimistic(addr, out, involved))
        return *verdict;
    }
  }

  const auto locks = lock_in_order(mutexes_of(involved));
  const std::uint16_t owner =
      static_cast<std::uint16_t>(shard_of_block(first_block));
  auto trace_result = [&](Status s) {
    if (trace_)
      trace_->record(TraceEvent::Kind::kByteRead, s, first_block, owner);
    return s;
  };

  Status folded = Status::kOk;
  std::uint64_t pos = addr;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t block = pos / 64;
    const std::size_t offset = pos % 64;
    const std::size_t chunk =
        std::min<std::size_t>(64 - offset, out.size() - done);
    const Route r = route(block);
    const auto res = shards_[r.shard].engine->read_block(r.local_block);
    folded = worse(folded, res.status);
    if (!status_ok(res.status)) return trace_result(res.status);
    std::memcpy(out.data() + done, res.data.data() + offset, chunk);
    pos += chunk;
    done += chunk;
  }
  return trace_result(folded);
}

SecureMemory::ScrubReport ShardedSecureMemory::scrub_all(bool deep) {
  if (poisoned()) {
    (void)poisoned_mutation(0);
    SecureMemory::ScrubReport refused;
    refused.region_poisoned = true;
    return refused;
  }
  std::vector<SecureMemory::ScrubReport> reports(num_shards_);
  parallel_over_shards(num_shards_, [this, deep, &reports](unsigned s) {
    Shard& shard = shards_[s];
    const SeqWriteLock lock(shard.mu);
    reports[s] = shard.engine->scrub_all(deep);
  });

  SecureMemory::ScrubReport total;
  for (const SecureMemory::ScrubReport& r : reports) {
    total.scanned += r.scanned;
    total.quick_clean += r.quick_clean;
    total.repaired_mac += r.repaired_mac;
    total.repaired_data += r.repaired_data;
    total.uncorrectable += r.uncorrectable;
    total.counter_tampered += r.counter_tampered;
  }
  return total;
}

bool ShardedSecureMemory::rotate_master_key(std::uint64_t new_master) {
  if (poisoned()) return false;  // split-keyed state: nothing to rotate from
  const std::uint64_t old_master = config_.master_key;

  std::vector<char> rotated(num_shards_, 0);
  parallel_over_shards(num_shards_, [this, new_master, &rotated](unsigned s) {
    Shard& shard = shards_[s];
    const SeqWriteLock lock(shard.mu);
    rotated[s] =
        shard.engine->rotate_master_key(shard_master_key(new_master, s)) ? 1
                                                                         : 0;
  });
  if (std::all_of(rotated.begin(), rotated.end(),
                  [](char ok) { return ok != 0; })) {
    config_.master_key = new_master;
    return true;
  }

  // Partial failure: a shard refused (verification failed under its old
  // keys) and is untouched. Roll the shards that DID rotate back to the
  // old master so the region stays uniformly keyed.
  if (rotate_rollback_fault_hook_) rotate_rollback_fault_hook_();
  std::vector<char> rolled_back(num_shards_, 1);
  parallel_over_shards(
      num_shards_, [this, old_master, &rotated, &rolled_back](unsigned s) {
        if (!rotated[s]) return;
        Shard& shard = shards_[s];
        const SeqWriteLock lock(shard.mu);
        rolled_back[s] =
            shard.engine->rotate_master_key(shard_master_key(old_master, s))
                ? 1
                : 0;
      });

  // Rolling back re-reads data this very call just re-encrypted, so it
  // normally succeeds — but "normally" is not a guarantee: a fault or
  // tamper landing inside the rollback window makes a shard refuse, and
  // ignoring that verdict (the old behavior) silently left the region
  // split-keyed while reporting a clean abort. Check every shard, put
  // the failure on the record, and poison the region so nothing serves
  // from a half-rotated key set.
  bool rollback_ok = true;
  for (unsigned s = 0; s < num_shards_; ++s) {
    if (rolled_back[s]) continue;
    rollback_ok = false;
    metrics_.add(MetricId::kRotateRollbackFailures);
    if (trace_)
      trace_->record(TraceEvent::Kind::kKeyRotation,
                     Status::kIntegrityViolation, 0,
                     static_cast<std::uint16_t>(s));
  }
  if (!rollback_ok) poisoned_.store(true, std::memory_order_release);
  return false;
}

// Lock-free by contract: MetricsCells are relaxed atomics, readable while
// worker threads are mid-operation — intentionally outside the lock
// discipline, hence outside the static analysis.
std::vector<const MetricsCell*> ShardedSecureMemory::all_cells() const
    SECMEM_NO_THREAD_SAFETY_ANALYSIS {
  std::vector<const MetricsCell*> cells;
  cells.reserve(num_shards_ + 1);
  for (unsigned s = 0; s < num_shards_; ++s)
    cells.push_back(&shards_[s].engine->metrics_cell());
  cells.push_back(&metrics_);
  return cells;
}

EngineStats ShardedSecureMemory::stats() const noexcept {
  // No locks: the cells are relaxed atomics, so this is safe to call
  // while worker threads are mid-operation (the result is monotonic per
  // counter, not a cross-shard snapshot).
  return engine_stats_from(all_cells());
}

void ShardedSecureMemory::reset_stats() noexcept
    SECMEM_NO_THREAD_SAFETY_ANALYSIS {
  for (unsigned s = 0; s < num_shards_; ++s) shards_[s].engine->reset_stats();
  metrics_.reset();
}

void ShardedSecureMemory::publish_metrics(StatRegistry& registry,
                                          const std::string& prefix) const
    SECMEM_NO_THREAD_SAFETY_ANALYSIS {
  publish_cells(all_cells(), registry, prefix);
  for (unsigned s = 0; s < num_shards_; ++s) {
    shards_[s].engine->publish_metrics(
        registry, metric_path({prefix, "shard" + std::to_string(s)}));
  }
}

void ShardedSecureMemory::attach_trace(TraceRing* ring) {
  trace_ = ring;
  for (unsigned s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    const SeqWriteLock lock(shard.mu);
    shard.engine->attach_trace(ring, static_cast<std::uint16_t>(s));
  }
}

void ShardedSecureMemory::break_shard_chains() {
  for (unsigned s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    const SeqWriteLock lock(shard.mu);
    shard.engine->break_chain();
  }
}

Status ShardedSecureMemory::save(std::ostream& out) {
  // A poisoned region writes NOTHING: a partial or split-keyed image
  // must never be mistakable for a good snapshot.
  if (poisoned()) return poisoned_mutation(0);
  out.write(kShardMagic, sizeof(kShardMagic));
  write_u64(out, num_shards_);
  write_u64(out, granule_blocks_);
  if (!batch_snapshot_ || shard_pool_workers(num_shards_) <= 1) {
    // Direct-to-stream, shard by shard: the scalar reference
    // (SECMEM_BATCH_SNAPSHOT=0), and also the batched path's shape when
    // the worker pool is sequential anyway — the shard engines still
    // stream chunked internally, and skipping the per-shard buffers
    // skips a whole extra image copy. The buffered path below must emit
    // bit-identical bytes.
    Status folded = Status::kOk;
    for (unsigned s = 0; s < num_shards_; ++s) {
      Shard& shard = shards_[s];
      const SeqWriteLock lock(shard.mu);
      folded = worse(folded, shard.engine->save(out));
    }
    if (!status_ok(folded)) break_shard_chains();
    return folded;
  }

  // Shard-parallel: each worker serializes its shard into an
  // exactly-sized private buffer under that shard's lock; concatenating
  // in shard order afterwards reproduces the sequential stream byte for
  // byte. Shards not yet serialized keep serving their callers — the
  // sequential loop above holds each lock anyway, so parallelism only
  // shortens the total window.
  std::vector<std::vector<char>> images(num_shards_);
  std::vector<Status> statuses(num_shards_, Status::kOk);
  parallel_over_shards(num_shards_, [this, &images, &statuses](unsigned s) {
    Shard& shard = shards_[s];
    const SeqWriteLock lock(shard.mu);
    images[s].reserve(shard.engine->image_bytes());
    VectorSink sink(images[s]);
    std::ostream shard_out(&sink);
    statuses[s] = shard.engine->save(shard_out);
  });
  Status folded = Status::kOk;
  for (unsigned s = 0; s < num_shards_; ++s) {
    folded = worse(folded, statuses[s]);
    out.write(images[s].data(),
              static_cast<std::streamsize>(images[s].size()));
  }
  // The shard engines aligned their chains into the private buffers; if
  // the container-level write then failed, those bases describe an image
  // that never persisted. Break the chains so the next save_delta falls
  // back to a full image instead of sealing deltas nothing can apply.
  out.flush();
  if (!out) {
    break_shard_chains();
    folded = worse(folded, Status::kSnapshotIoError);
  }
  return folded;
}

bool ShardedSecureMemory::restore(std::istream& in) {
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  // Public image magic, not secret material.
  if (!in || std::memcmp(magic, kShardMagic, sizeof(magic)) != 0)
    return false;
  return restore_full_tail(in, nullptr);
}

bool ShardedSecureMemory::restore_delta(std::istream& in) {
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  if (!in) return false;
  if (std::memcmp(magic, kShardMagic, sizeof(magic)) == 0)
    return restore_full_tail(in, nullptr);
  if (std::memcmp(magic, kShardDeltaMagic, sizeof(magic)) == 0)
    return restore_delta_tail(in, nullptr);
  return false;
}

bool ShardedSecureMemory::restore_timed(std::istream& in,
                                        SnapshotTiming& timing) {
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  if (!in) return false;
  if (std::memcmp(magic, kShardMagic, sizeof(magic)) == 0)
    return restore_full_tail(in, &timing);
  if (std::memcmp(magic, kShardDeltaMagic, sizeof(magic)) == 0)
    return restore_delta_tail(in, &timing);
  return false;
}

// All shard locks for the duration, in table order (runtime lock set —
// outside static analysis, TSan-covered): a restore must be atomic
// against every concurrent operation.
bool ShardedSecureMemory::restore_full_tail(std::istream& in,
                                            SnapshotTiming* timing)
    SECMEM_NO_THREAD_SAFETY_ANALYSIS {
  const auto t0 = std::chrono::steady_clock::now();
  if (read_u64(in) != num_shards_) return false;
  if (read_u64(in) != granule_blocks_) return false;

  std::vector<std::size_t> all(num_shards_);
  std::iota(all.begin(), all.end(), std::size_t{0});
  const auto locks = lock_in_order(mutexes_of(all));

  // Stage-then-commit, mirroring write_bytes' all-or-nothing protocol.
  // The old per-shard engine->restore() loop committed (or wiped!) each
  // shard as it went, so a truncated or tampered image left a mix of
  // restored and re-zeroed shards behind a false return. Phase 1 fully
  // validates every shard's image — sealed-root check included —
  // against staging storage; the first bad shard aborts with the region
  // EXACTLY as it was. Phase 2 cannot fail.
  //
  // Each shard's image is staged under the master derived from the
  // REGION key, not the shard engine's current one: after a failed
  // rollback a shard can be stranded on a half-rotated key, and this is
  // exactly how restore() un-poisons it — commit_restore re-derives that
  // shard's working keys from the image's master.
  if (!batch_snapshot_ || shard_pool_workers(num_shards_) <= 1) {
    // Straight off the stream, shard by shard: the scalar reference
    // (SECMEM_BATCH_SNAPSHOT=0), and also the batched path's shape when
    // the worker pool is sequential — same staging-then-commit
    // atomicity, no bulk payload copy. In batched mode the shard
    // engines still stage through their chunked readers and bulk tree
    // rebuilds.
    std::vector<SecureMemory::StagedRestore> staged;
    staged.reserve(num_shards_);
    for (unsigned s = 0; s < num_shards_; ++s) {
      auto image = shards_[s].engine->stage_restore(
          in, shard_master_key(config_.master_key, s));
      if (!image) {
        if (trace_)
          trace_->record(TraceEvent::Kind::kRestore,
                         Status::kIntegrityViolation, 0,
                         static_cast<std::uint16_t>(s));
        return false;
      }
      staged.push_back(std::move(*image));
    }
    const auto t1 = std::chrono::steady_clock::now();
    for (unsigned s = 0; s < num_shards_; ++s)
      shards_[s].engine->commit_restore(std::move(staged[s]));
    if (timing) {
      timing->stage_s = seconds_between(t0, t1);
      timing->commit_s =
          seconds_between(t1, std::chrono::steady_clock::now());
    }
    // A fully-restored region is uniformly keyed again by construction.
    poisoned_.store(false, std::memory_order_release);
    return true;
  }

  // Shard-parallel staging. The per-shard payload is fixed-size (every
  // shard shares one config), so one bulk read cuts the container into
  // N independent slices and the maintenance pool stages them
  // concurrently — each worker parses, MACs, and sealed-root-checks its
  // own shard via a SpanSource over its slice. All locks stay held, so
  // the all-or-nothing contract is exactly the sequential path's: a
  // short or tampered image leaves every shard untouched.
  // The workers receive raw engine pointers gathered here, where the
  // analysis already knows this runtime lock set is beyond it: every
  // shard lock is held for the whole function, and each worker touches
  // only its own shard's engine.
  std::vector<SecureMemory*> engines(num_shards_);
  for (unsigned s = 0; s < num_shards_; ++s)
    engines[s] = shards_[s].engine.get();

  const std::uint64_t per_shard = engines[0]->image_bytes();
  std::vector<char> payload;
  payload.resize(static_cast<std::size_t>(per_shard) * num_shards_);
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!in || static_cast<std::uint64_t>(in.gcount()) != payload.size()) {
    if (trace_)
      trace_->record(TraceEvent::Kind::kRestore, Status::kIntegrityViolation,
                     0, 0);
    return false;
  }

  std::vector<std::optional<SecureMemory::StagedRestore>> staged(num_shards_);
  parallel_over_shards(num_shards_, [this, &payload, per_shard, &engines,
                                     &staged](unsigned s) {
    SpanSource source(payload.data() + s * per_shard,
                      static_cast<std::size_t>(per_shard));
    std::istream shard_in(&source);
    staged[s] = engines[s]->stage_restore(
        shard_in, shard_master_key(config_.master_key, s));
  });
  for (unsigned s = 0; s < num_shards_; ++s) {
    if (staged[s]) continue;
    if (trace_)
      trace_->record(TraceEvent::Kind::kRestore, Status::kIntegrityViolation,
                     0, static_cast<std::uint16_t>(s));
    return false;
  }
  const auto t1 = std::chrono::steady_clock::now();
  parallel_over_shards(num_shards_, [&engines, &staged](unsigned s) {
    engines[s]->commit_restore(std::move(*staged[s]));
  });
  if (timing) {
    timing->stage_s = seconds_between(t0, t1);
    timing->commit_s = seconds_between(t1, std::chrono::steady_clock::now());
  }
  // A fully-restored region is uniformly keyed again by construction.
  poisoned_.store(false, std::memory_order_release);
  return true;
}

Status ShardedSecureMemory::save_delta(std::ostream& out) {
  // Same posture as save(): a poisoned region writes nothing.
  if (poisoned()) return poisoned_mutation(0);

  // Per-shard deltas are variable-sized (and a broken-chain shard falls
  // back to its full image), so the container needs a length table
  // ahead of the payloads — every shard therefore serializes into a
  // private buffer; the batch switch only decides whether the buffers
  // fill in parallel. Unlike save(), the sequential shape buffers too:
  // a delta buffer is a few percent of the image, so the copy the full
  // path avoids is noise here.
  std::vector<std::vector<char>> images(num_shards_);
  std::vector<Status> statuses(num_shards_, Status::kOk);
  const auto save_one = [this, &images, &statuses](unsigned s) {
    Shard& shard = shards_[s];
    const SeqWriteLock lock(shard.mu);
    VectorSink sink(images[s]);
    std::ostream shard_out(&sink);
    statuses[s] = shard.engine->save_delta(shard_out);
  };
  if (!batch_snapshot_ || shard_pool_workers(num_shards_) <= 1) {
    for (unsigned s = 0; s < num_shards_; ++s) save_one(s);
  } else {
    parallel_over_shards(num_shards_, save_one);
  }

  out.write(kShardDeltaMagic, sizeof(kShardDeltaMagic));
  write_u64(out, num_shards_);
  write_u64(out, granule_blocks_);
  for (unsigned s = 0; s < num_shards_; ++s) write_u64(out, images[s].size());
  Status folded = Status::kOk;
  for (unsigned s = 0; s < num_shards_; ++s) {
    folded = worse(folded, statuses[s]);
    out.write(images[s].data(),
              static_cast<std::streamsize>(images[s].size()));
  }
  // The shard engines aligned their chains into the private buffers; if
  // the container-level write then failed, those bases describe an image
  // that never persisted. Break the chains so the next save_delta falls
  // back to a full image instead of sealing deltas nothing can apply.
  out.flush();
  if (!out) {
    break_shard_chains();
    folded = worse(folded, Status::kSnapshotIoError);
  }
  return folded;
}

// All shard locks held from before the bulk payload read to the last
// commit, exactly like restore_full_tail (runtime lock set — outside
// static analysis, TSan-covered).
bool ShardedSecureMemory::restore_delta_tail(std::istream& in,
                                             SnapshotTiming* timing)
    SECMEM_NO_THREAD_SAFETY_ANALYSIS {
  const auto t0 = std::chrono::steady_clock::now();
  if (read_u64(in) != num_shards_) return false;
  if (read_u64(in) != granule_blocks_) return false;

  // Length table. Each slice must at least hold a magic and can never
  // exceed a full image plus the delta framing (header + worst-case
  // all-ADD command stream) — a hostile table must not size the bulk
  // read.
  const std::uint64_t blocks_per_shard = num_blocks_ / num_shards_;
  const std::uint64_t slice_cap = shards_[0].engine->image_bytes() +
                                  25 * blocks_per_shard + 4096;
  std::vector<std::uint64_t> lengths(num_shards_);
  std::uint64_t total = 0;
  for (unsigned s = 0; s < num_shards_; ++s) {
    lengths[s] = read_u64(in);
    if (lengths[s] < 8 || lengths[s] > slice_cap) return false;
    total += lengths[s];
  }
  if (!in) return false;

  std::vector<std::size_t> all(num_shards_);
  std::iota(all.begin(), all.end(), std::size_t{0});
  const auto locks = lock_in_order(mutexes_of(all));

  std::vector<SecureMemory*> engines(num_shards_);
  for (unsigned s = 0; s < num_shards_; ++s)
    engines[s] = shards_[s].engine.get();

  // One bulk read, sliced by the length table (slices are
  // variable-sized, so unlike the full path there is no streamed
  // sequential variant: a short-reading stager would desync every
  // following shard's cut).
  std::vector<char> payload(static_cast<std::size_t>(total));
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!in || static_cast<std::uint64_t>(in.gcount()) != payload.size()) {
    if (trace_)
      trace_->record(TraceEvent::Kind::kRestore, Status::kIntegrityViolation,
                     0, 0);
    return false;
  }
  std::vector<std::size_t> offsets(num_shards_, 0);
  for (unsigned s = 1; s < num_shards_; ++s)
    offsets[s] = offsets[s - 1] + static_cast<std::size_t>(lengths[s - 1]);

  // Stage every slice — sniffing each on ITS magic: kEngineDeltaMagic
  // is a delta against that shard's current chain, kEngineImageMagic a
  // full fallback image (staged under the REGION-derived master, the
  // same un-poisoning rule as restore_full_tail). All checks — command
  // MAC, base seal, command-stream validation, sealed root — happen
  // here, before any shard is touched.
  struct StagedShard {
    std::optional<SecureMemory::StagedRestore> full;
    std::optional<SecureMemory::StagedDelta> delta;
    bool ok = false;
  };
  std::vector<StagedShard> staged(num_shards_);
  const auto stage_one = [this, &payload, &offsets, &lengths, &engines,
                          &staged](unsigned s) {
    const char* slice = payload.data() + offsets[s];
    const auto len = static_cast<std::size_t>(lengths[s]);
    SpanSource source(slice, len);
    std::istream shard_in(&source);
    if (std::memcmp(slice, kEngineDeltaMagic, 8) == 0) {
      staged[s].delta = engines[s]->stage_delta(shard_in);
      staged[s].ok = staged[s].delta.has_value();
    } else if (std::memcmp(slice, kEngineImageMagic, 8) == 0) {
      staged[s].full = engines[s]->stage_restore(
          shard_in, shard_master_key(config_.master_key, s));
      staged[s].ok = staged[s].full.has_value();
    }
  };
  if (!batch_snapshot_ || shard_pool_workers(num_shards_) <= 1) {
    for (unsigned s = 0; s < num_shards_; ++s) stage_one(s);
  } else {
    parallel_over_shards(num_shards_, stage_one);
  }
  for (unsigned s = 0; s < num_shards_; ++s) {
    if (staged[s].ok) continue;
    if (trace_)
      trace_->record(TraceEvent::Kind::kRestore, Status::kIntegrityViolation,
                     0, static_cast<std::uint16_t>(s));
    return false;
  }

  const auto t1 = std::chrono::steady_clock::now();
  std::vector<char> commit_failed(num_shards_, 0);
  const auto commit_one = [&engines, &staged, &commit_failed](unsigned s) {
    if (staged[s].full) {
      engines[s]->commit_restore(std::move(*staged[s].full));
    } else if (!engines[s]->commit_delta(std::move(*staged[s].delta))) {
      commit_failed[s] = 1;
    }
  };
  if (!batch_snapshot_ || shard_pool_workers(num_shards_) <= 1) {
    for (unsigned s = 0; s < num_shards_; ++s) commit_one(s);
  } else {
    parallel_over_shards(num_shards_, commit_one);
  }
  for (unsigned s = 0; s < num_shards_; ++s) {
    if (!commit_failed[s]) continue;
    // commit_delta's defense-in-depth verdict fired (a base-seal
    // collision — cryptographically negligible): that shard wiped
    // itself, so the region is part old, part zeroed. Poison it; the
    // way out is a full-image restore, as with a rollback failure.
    if (trace_)
      trace_->record(TraceEvent::Kind::kRestore, Status::kIntegrityViolation,
                     0, static_cast<std::uint16_t>(s));
    poisoned_.store(true, std::memory_order_release);
    return false;
  }
  if (timing) {
    timing->stage_s = seconds_between(t0, t1);
    timing->commit_s = seconds_between(t1, std::chrono::steady_clock::now());
  }
  // Every shard proved it sits on the region-keyed chain (delta slices)
  // or was re-keyed from the region master (full slices) — uniformly
  // keyed again.
  poisoned_.store(false, std::memory_order_release);
  return true;
}

std::uint64_t ShardedSecureMemory::dirty_granules() const noexcept
    SECMEM_NO_THREAD_SAFETY_ANALYSIS {
  // Relaxed-atomic bitmap popcounts — lock-free by contract, like
  // stats(); the sum is monotonic per shard, not a cross-shard snapshot.
  std::uint64_t total = 0;
  for (unsigned s = 0; s < num_shards_; ++s)
    total += shards_[s].engine->dirty_granules();
  return total;
}

}  // namespace secmem
