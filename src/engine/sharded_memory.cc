#include "engine/sharded_memory.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/bitops.h"
#include "common/rng.h"

namespace secmem {

namespace {

/// Independent per-shard master secret. Mixing the shard index through
/// splitmix64 keeps shard keys unrelated, so identical plaintexts at the
/// same shard-local (addr, counter) in two shards still encrypt under
/// distinct pads.
std::uint64_t shard_master_key(std::uint64_t master, unsigned shard) {
  std::uint64_t state = master ^ (0x5ec'da7a'5a2dULL + shard);
  return splitmix64(state);
}

/// Probe the counter scheme a config resolves to and return the routing
/// granule: the smallest block count that is a whole number of
/// re-encryption groups AND counter-storage lines (and at least a 4 KB
/// block-group), so striping granules across shards never splits either
/// unit of locality.
unsigned routing_granule_blocks(const SecureMemoryConfig& config) {
  SecureMemoryConfig probe = config;
  probe.size_bytes = 256 * 1024;  // geometry is size-independent
  const auto scheme = SecureMemory::make_scheme(probe);
  unsigned granule = std::lcm(scheme->blocks_per_group(),
                              scheme->blocks_per_storage_line());
  return std::lcm(granule, 64u);  // >= one 4 KB block-group
}

constexpr char kShardMagic[8] = {'S', 'E', 'C', 'S', 'H', 'R', 'D', '1'};

void write_u64(std::ostream& out, std::uint64_t v) {
  std::uint8_t buf[8];
  store_le64(buf, v);
  out.write(reinterpret_cast<const char*>(buf), 8);
}

std::uint64_t read_u64(std::istream& in) {
  std::uint8_t buf[8] = {};
  in.read(reinterpret_cast<char*>(buf), 8);
  return load_le64(buf);
}

}  // namespace

ShardedSecureMemory::ShardedSecureMemory(const SecureMemoryConfig& config,
                                         unsigned num_shards)
    : config_(config),
      num_shards_(num_shards),
      granule_blocks_(routing_granule_blocks(config)),
      num_blocks_(config.size_bytes / 64) {
  if (num_shards == 0)
    throw std::invalid_argument("ShardedSecureMemory: need >= 1 shard");
  const std::uint64_t granule_bytes = granule_blocks_ * 64ULL;
  if (config.size_bytes == 0 ||
      config.size_bytes % (num_shards * granule_bytes) != 0) {
    throw std::invalid_argument(
        "ShardedSecureMemory: region size " +
        std::to_string(config.size_bytes) + " is not a multiple of " +
        std::to_string(num_shards) + " shards x " +
        std::to_string(granule_bytes) + "-byte granule");
  }
  SecureMemoryConfig shard_config = config;
  shard_config.size_bytes = config.size_bytes / num_shards;
  shards_ = std::make_unique<Shard[]>(num_shards);
  for (unsigned s = 0; s < num_shards; ++s) {
    shard_config.master_key = shard_master_key(config.master_key, s);
    shards_[s].engine = std::make_unique<SecureMemory>(shard_config);
  }
}

void ShardedSecureMemory::check_block(std::uint64_t block) const {
  if (block >= num_blocks_)
    throw std::out_of_range("ShardedSecureMemory: block " +
                            std::to_string(block) + " out of range");
}

ShardedSecureMemory::Route ShardedSecureMemory::route(
    std::uint64_t block) const {
  const std::uint64_t granule = block / granule_blocks_;
  return Route{
      static_cast<unsigned>(granule % num_shards_),
      (granule / num_shards_) * granule_blocks_ + block % granule_blocks_};
}

void ShardedSecureMemory::write_block(std::uint64_t block,
                                      const DataBlock& plaintext) {
  check_block(block);
  const Route r = route(block);
  Shard& s = shards_[r.shard];
  const MutexLock lock(s.mu);
  s.engine->write_block(r.local_block, plaintext);
}

SecureMemory::ReadResult ShardedSecureMemory::read_block(
    std::uint64_t block) {
  check_block(block);
  const Route r = route(block);
  Shard& s = shards_[r.shard];
  const MutexLock lock(s.mu);
  return s.engine->read_block(r.local_block);
}

SecureMemory::ScrubStatus ShardedSecureMemory::scrub_block(
    std::uint64_t block, bool deep) {
  check_block(block);
  const Route r = route(block);
  Shard& s = shards_[r.shard];
  const MutexLock lock(s.mu);
  return s.engine->scrub_block(r.local_block, deep);
}

std::vector<SecureMemory::ReadResult> ShardedSecureMemory::read_blocks(
    std::span<const std::uint64_t> blocks) {
  for (const std::uint64_t block : blocks) check_block(block);

  // Visit requests grouped by shard so each shard lock is taken once per
  // batch; a stable sort keeps same-shard requests in caller order.
  std::vector<std::uint32_t> order(blocks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return shard_of_block(blocks[a]) <
                            shard_of_block(blocks[b]);
                   });

  std::vector<SecureMemory::ReadResult> results(blocks.size());
  std::vector<std::uint64_t> local_blocks;
  std::size_t i = 0;
  while (i < order.size()) {
    const unsigned shard = shard_of_block(blocks[order[i]]);
    const std::size_t run_start = i;
    local_blocks.clear();
    for (; i < order.size() && shard_of_block(blocks[order[i]]) == shard;
         ++i) {
      local_blocks.push_back(route(blocks[order[i]]).local_block);
    }
    Shard& s = shards_[shard];
    const MutexLock lock(s.mu);
    auto shard_results = s.engine->read_blocks(local_blocks);
    for (std::size_t k = 0; k < shard_results.size(); ++k)
      results[order[run_start + k]] = std::move(shard_results[k]);
  }
  return results;
}

void ShardedSecureMemory::write_blocks(std::span<const BlockWrite> writes) {
  for (const BlockWrite& w : writes) check_block(w.block);

  std::vector<std::uint32_t> order(writes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return shard_of_block(writes[a].block) <
                            shard_of_block(writes[b].block);
                   });

  std::vector<BlockWrite> local_writes;
  std::size_t i = 0;
  while (i < order.size()) {
    const unsigned shard = shard_of_block(writes[order[i]].block);
    local_writes.clear();
    for (; i < order.size() &&
           shard_of_block(writes[order[i]].block) == shard;
         ++i) {
      const BlockWrite& w = writes[order[i]];
      local_writes.push_back({route(w.block).local_block, w.data});
    }
    Shard& s = shards_[shard];
    const MutexLock lock(s.mu);
    s.engine->write_blocks(local_writes);
  }
}

std::vector<std::size_t> ShardedSecureMemory::shards_in_range(
    std::uint64_t first_block, std::uint64_t last_block) const {
  const std::uint64_t first_granule = first_block / granule_blocks_;
  const std::uint64_t last_granule = last_block / granule_blocks_;
  std::vector<std::size_t> shards;
  if (last_granule - first_granule + 1 >= num_shards_) {
    shards.resize(num_shards_);
    std::iota(shards.begin(), shards.end(), std::size_t{0});
    return shards;
  }
  for (std::uint64_t g = first_granule; g <= last_granule; ++g)
    shards.push_back(static_cast<std::size_t>(g % num_shards_));
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

std::vector<Mutex*> ShardedSecureMemory::mutexes_of(
    std::span<const std::size_t> shards) const {
  std::vector<Mutex*> mutexes;
  mutexes.reserve(shards.size());
  for (const std::size_t s : shards) mutexes.push_back(&shards_[s].mu);
  return mutexes;
}

// Cross-shard byte range: a runtime-selected lock set acquired in fixed
// ascending order (lock_in_order) — beyond static thread-safety analysis;
// covered by the TSan preset's sharded stress tests.
Status ShardedSecureMemory::write_bytes(std::uint64_t addr,
                                        std::span<const std::uint8_t> bytes)
    SECMEM_NO_THREAD_SAFETY_ANALYSIS {
  if (addr > config_.size_bytes || bytes.size() > config_.size_bytes - addr)
    throw std::out_of_range(
        "ShardedSecureMemory::write_bytes: range exceeds region");
  metrics_.add(MetricId::kByteWrites);
  metrics_.sample(EngineHistId::kByteWriteBytes, bytes.size());
  if (bytes.empty()) return Status::kOk;

  const std::uint64_t first_block = addr / 64;
  const std::uint64_t last_block = (addr + bytes.size() - 1) / 64;
  const auto involved = shards_in_range(first_block, last_block);
  const auto locks = lock_in_order(mutexes_of(involved));
  const std::uint16_t owner =
      static_cast<std::uint16_t>(shard_of_block(first_block));
  auto trace_result = [&](Status s) {
    if (trace_)
      trace_->record(TraceEvent::Kind::kByteWrite, s, first_block, owner);
    return s;
  };

  // Same all-or-nothing protocol as SecureMemory::write_bytes, but with
  // every touched shard held: pre-verify the partial edge blocks — the
  // only reads this operation depends on — before mutating any shard.
  const bool head_partial = addr % 64 != 0 || bytes.size() < 64;
  const bool tail_partial = (addr + bytes.size()) % 64 != 0;
  Status folded = Status::kOk;
  DataBlock head_plain{};
  DataBlock tail_plain{};
  if (head_partial) {
    const Route r = route(first_block);
    const auto res = shards_[r.shard].engine->read_block(r.local_block);
    folded = worse(folded, res.status);
    if (!status_ok(res.status)) return trace_result(res.status);
    head_plain = res.data;
  }
  if (tail_partial && last_block != first_block) {
    const Route r = route(last_block);
    const auto res = shards_[r.shard].engine->read_block(r.local_block);
    folded = worse(folded, res.status);
    if (!status_ok(res.status)) return trace_result(res.status);
    tail_plain = res.data;
  }

  std::uint64_t pos = addr;
  std::size_t done = 0;
  while (done < bytes.size()) {
    const std::uint64_t block = pos / 64;
    const std::size_t offset = pos % 64;
    const std::size_t chunk =
        std::min<std::size_t>(64 - offset, bytes.size() - done);
    DataBlock plain{};
    if (chunk != 64)
      plain = block == first_block ? head_plain : tail_plain;
    std::memcpy(plain.data() + offset, bytes.data() + done, chunk);
    const Route r = route(block);
    shards_[r.shard].engine->write_block(r.local_block, plain);
    pos += chunk;
    done += chunk;
  }
  return trace_result(folded);
}

// See write_bytes: runtime-selected lock set, ordered acquisition,
// TSan-covered.
Status ShardedSecureMemory::read_bytes(std::uint64_t addr,
                                       std::span<std::uint8_t> out)
    SECMEM_NO_THREAD_SAFETY_ANALYSIS {
  if (addr > config_.size_bytes || out.size() > config_.size_bytes - addr)
    throw std::out_of_range(
        "ShardedSecureMemory::read_bytes: range exceeds region");
  metrics_.add(MetricId::kByteReads);
  metrics_.sample(EngineHistId::kByteReadBytes, out.size());
  if (out.empty()) return Status::kOk;

  const std::uint64_t first_block = addr / 64;
  const std::uint64_t last_block = (addr + out.size() - 1) / 64;
  const auto involved = shards_in_range(first_block, last_block);
  const auto locks = lock_in_order(mutexes_of(involved));
  const std::uint16_t owner =
      static_cast<std::uint16_t>(shard_of_block(first_block));
  auto trace_result = [&](Status s) {
    if (trace_)
      trace_->record(TraceEvent::Kind::kByteRead, s, first_block, owner);
    return s;
  };

  Status folded = Status::kOk;
  std::uint64_t pos = addr;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t block = pos / 64;
    const std::size_t offset = pos % 64;
    const std::size_t chunk =
        std::min<std::size_t>(64 - offset, out.size() - done);
    const Route r = route(block);
    const auto res = shards_[r.shard].engine->read_block(r.local_block);
    folded = worse(folded, res.status);
    if (!status_ok(res.status)) return trace_result(res.status);
    std::memcpy(out.data() + done, res.data.data() + offset, chunk);
    pos += chunk;
    done += chunk;
  }
  return trace_result(folded);
}

SecureMemory::ScrubReport ShardedSecureMemory::scrub_all(bool deep) {
  std::vector<SecureMemory::ScrubReport> reports(num_shards_);
  std::vector<std::thread> sweepers;
  sweepers.reserve(num_shards_);
  for (unsigned s = 0; s < num_shards_; ++s) {
    sweepers.emplace_back([this, s, deep, &reports] {
      Shard& shard = shards_[s];
      const MutexLock lock(shard.mu);
      reports[s] = shard.engine->scrub_all(deep);
    });
  }
  for (std::thread& t : sweepers) t.join();

  SecureMemory::ScrubReport total;
  for (const SecureMemory::ScrubReport& r : reports) {
    total.scanned += r.scanned;
    total.quick_clean += r.quick_clean;
    total.repaired_mac += r.repaired_mac;
    total.repaired_data += r.repaired_data;
    total.uncorrectable += r.uncorrectable;
    total.counter_tampered += r.counter_tampered;
  }
  return total;
}

bool ShardedSecureMemory::rotate_master_key(std::uint64_t new_master) {
  const std::uint64_t old_master = config_.master_key;
  const auto rotate_all_to = [this](std::uint64_t master,
                                    std::vector<char>& ok) {
    std::vector<std::thread> rotators;
    rotators.reserve(num_shards_);
    for (unsigned s = 0; s < num_shards_; ++s) {
      rotators.emplace_back([this, s, master, &ok] {
        Shard& shard = shards_[s];
        const MutexLock lock(shard.mu);
        ok[s] =
            shard.engine->rotate_master_key(shard_master_key(master, s)) ? 1
                                                                         : 0;
      });
    }
    for (std::thread& t : rotators) t.join();
  };

  std::vector<char> rotated(num_shards_, 0);
  rotate_all_to(new_master, rotated);
  if (std::all_of(rotated.begin(), rotated.end(),
                  [](char ok) { return ok != 0; })) {
    config_.master_key = new_master;
    return true;
  }

  // Partial failure: a shard refused (verification failed under its old
  // keys) and is untouched. Roll the shards that DID rotate back to the
  // old master so the region stays uniformly keyed. Rolling back re-reads
  // freshly re-encrypted data, so it cannot fail.
  std::vector<char> rolled_back(num_shards_, 1);
  std::vector<std::thread> rollback;
  for (unsigned s = 0; s < num_shards_; ++s) {
    if (!rotated[s]) continue;
    rollback.emplace_back([this, s, old_master, &rolled_back] {
      Shard& shard = shards_[s];
      const MutexLock lock(shard.mu);
      rolled_back[s] =
          shard.engine->rotate_master_key(shard_master_key(old_master, s))
              ? 1
              : 0;
    });
  }
  for (std::thread& t : rollback) t.join();
  return false;
}

// Lock-free by contract: MetricsCells are relaxed atomics, readable while
// worker threads are mid-operation — intentionally outside the lock
// discipline, hence outside the static analysis.
std::vector<const MetricsCell*> ShardedSecureMemory::all_cells() const
    SECMEM_NO_THREAD_SAFETY_ANALYSIS {
  std::vector<const MetricsCell*> cells;
  cells.reserve(num_shards_ + 1);
  for (unsigned s = 0; s < num_shards_; ++s)
    cells.push_back(&shards_[s].engine->metrics_cell());
  cells.push_back(&metrics_);
  return cells;
}

EngineStats ShardedSecureMemory::stats() const noexcept {
  // No locks: the cells are relaxed atomics, so this is safe to call
  // while worker threads are mid-operation (the result is monotonic per
  // counter, not a cross-shard snapshot).
  return engine_stats_from(all_cells());
}

void ShardedSecureMemory::reset_stats() noexcept
    SECMEM_NO_THREAD_SAFETY_ANALYSIS {
  for (unsigned s = 0; s < num_shards_; ++s) shards_[s].engine->reset_stats();
  metrics_.reset();
}

void ShardedSecureMemory::publish_metrics(StatRegistry& registry,
                                          const std::string& prefix) const
    SECMEM_NO_THREAD_SAFETY_ANALYSIS {
  publish_cells(all_cells(), registry, prefix);
  for (unsigned s = 0; s < num_shards_; ++s) {
    shards_[s].engine->publish_metrics(
        registry, metric_path({prefix, "shard" + std::to_string(s)}));
  }
}

void ShardedSecureMemory::attach_trace(TraceRing* ring) {
  trace_ = ring;
  for (unsigned s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    const MutexLock lock(shard.mu);
    shard.engine->attach_trace(ring, static_cast<std::uint16_t>(s));
  }
}

void ShardedSecureMemory::save(std::ostream& out) {
  out.write(kShardMagic, sizeof(kShardMagic));
  write_u64(out, num_shards_);
  write_u64(out, granule_blocks_);
  for (unsigned s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    const MutexLock lock(shard.mu);
    shard.engine->save(out);
  }
}

bool ShardedSecureMemory::restore(std::istream& in) {
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  // Public image magic, not secret material.
  if (!in || std::memcmp(magic, kShardMagic, sizeof(magic)) != 0)
    return false;
  if (read_u64(in) != num_shards_) return false;
  if (read_u64(in) != granule_blocks_) return false;
  bool all_ok = true;
  for (unsigned s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    const MutexLock lock(shard.mu);
    all_ok = shard.engine->restore(in) && all_ok;
  }
  return all_ok;
}

}  // namespace secmem
