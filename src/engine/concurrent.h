// Thread-safe facade over SecureMemory.
//
// SecureMemory itself is single-threaded by design (a memory controller
// serializes at the DRAM channel anyway); multi-threaded applications
// wrap it in this coarse-grained monitor. Every operation takes the one
// lock-table entry — simple, correct, and adequate for software use of a
// functional model; see engine/sharded_memory.h for the facade that
// actually scales with threads. The untrusted attack surface is
// deliberately NOT re-exported: concurrent attacker simulation must
// synchronize explicitly via with_exclusive().
#pragma once

#include <iosfwd>
#include <utility>

#include "engine/lock_table.h"
#include "engine/secure_memory.h"

namespace secmem {

class ConcurrentSecureMemory {
 public:
  explicit ConcurrentSecureMemory(const SecureMemoryConfig& config)
      : locks_(1), memory_(config) {}

  std::uint64_t size_bytes() const noexcept { return memory_.size_bytes(); }
  std::uint64_t num_blocks() const noexcept { return memory_.num_blocks(); }

  void write_block(std::uint64_t block, const DataBlock& plaintext) {
    const auto lock = locks_.lock(0);
    memory_.write_block(block, plaintext);
  }

  SecureMemory::ReadResult read_block(std::uint64_t block) {
    const auto lock = locks_.lock(0);
    return memory_.read_block(block);
  }

  bool write(std::uint64_t addr, std::span<const std::uint8_t> bytes) {
    const auto lock = locks_.lock(0);
    return memory_.write(addr, bytes);
  }

  bool read(std::uint64_t addr, std::span<std::uint8_t> out) {
    const auto lock = locks_.lock(0);
    return memory_.read(addr, out);
  }

  SecureMemory::ScrubStatus scrub_block(std::uint64_t block,
                                        bool deep = false) {
    const auto lock = locks_.lock(0);
    return memory_.scrub_block(block, deep);
  }

  SecureMemory::ScrubReport scrub_all(bool deep = false) {
    const auto lock = locks_.lock(0);
    return memory_.scrub_all(deep);
  }

  bool rotate_master_key(std::uint64_t new_master) {
    const auto lock = locks_.lock(0);
    return memory_.rotate_master_key(new_master);
  }

  SecureMemory::Stats stats() {
    const auto lock = locks_.lock(0);
    return memory_.stats();
  }

  void reset_stats() {
    const auto lock = locks_.lock(0);
    memory_.reset_stats();
  }

  /// Persistence under the lock. Note the stream I/O happens while the
  /// lock is held — that is the point: a save must observe a quiescent
  /// region, and a restore must not race concurrent readers.
  void save(std::ostream& out) {
    const auto lock = locks_.lock(0);
    memory_.save(out);
  }

  bool restore(std::istream& in) {
    const auto lock = locks_.lock(0);
    return memory_.restore(in);
  }

  /// Run `fn(SecureMemory&)` under the lock — for anything the facade
  /// does not wrap (the untrusted view in tests, ...).
  template <typename Fn>
  auto with_exclusive(Fn&& fn) {
    const auto lock = locks_.lock(0);
    return std::forward<Fn>(fn)(memory_);
  }

 private:
  ShardLockTable locks_;
  SecureMemory memory_;
};

}  // namespace secmem
