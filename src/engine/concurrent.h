// Thread-safe facade over SecureMemory.
//
// SecureMemory itself is single-threaded by design (a memory controller
// serializes at the DRAM channel anyway); multi-threaded applications
// wrap it in this coarse-grained monitor. Every mutating operation takes
// the one lock exclusively — simple, correct, and adequate for software
// use of a functional model; see engine/sharded_memory.h for the facade
// that actually scales with threads. The untrusted attack surface is
// deliberately NOT re-exported: concurrent attacker simulation must
// synchronize explicitly via with_exclusive().
//
// The one lock is a secmem::SeqLock, and verified reads take its SHARED
// side through SecureMemory's const read_block_shared() fast path
// (tree-cache probe, relaxed-atomic metrics — no engine mutation), so a
// read-mostly workload runs reader-parallel even under this single-lock
// facade; only the promotion pulse's occasional declined read pays the
// exclusive lock. SECMEM_SEQLOCK=0 (sampled at construction) disables
// the shared path — every read then takes the exclusive lock, the
// pre-seqlock behavior.
//
// The wrapped engine is SECMEM_GUARDED_BY(mu_): under clang's thread
// safety analysis (scripts/ci.sh, -Wthread-safety -Werror) an access
// outside a SeqWriteLock/SeqReadLock is a build error, not a review
// comment.
//
// Metrics bypass the lock entirely: the wrapped engine records into
// relaxed atomics, so stats()/publish_metrics() never contend with the
// datapath (those accessors carry SECMEM_NO_THREAD_SAFETY_ANALYSIS — the
// lock-freedom is the contract, see common/metrics.h).
#pragma once

#include <iosfwd>
#include <utility>

#include "common/thread_annotations.h"
#include "engine/secure_memory.h"
#include "engine/secure_memory_like.h"

namespace secmem {

class ConcurrentSecureMemory : public SecureMemoryLike {
 public:
  explicit ConcurrentSecureMemory(const SecureMemoryConfig& config)
      : memory_(config),
        size_bytes_(memory_.size_bytes()),
        num_blocks_(memory_.num_blocks()),
        seqlock_reads_(seqlock_reads_enabled()) {}

  /// Immutable geometry, cached at construction — readable lock-free.
  std::uint64_t size_bytes() const noexcept override { return size_bytes_; }
  std::uint64_t num_blocks() const noexcept override { return num_blocks_; }

  [[nodiscard]] Status write_block(std::uint64_t block,
                                   const DataBlock& plaintext) override {
    const SeqWriteLock lock(mu_);
    return memory_.write_block(block, plaintext);
  }

  ReadResult read_block(std::uint64_t block) override {
    if (seqlock_reads_) {
      const SeqReadLock lock(mu_);
      if (const auto res = memory_.read_block_shared(block)) return *res;
    }
    // Declined (cold counter line): the exclusive read warms the
    // verified frontier.
    const SeqWriteLock lock(mu_);
    return memory_.read_block(block);
  }

  /// Batch I/O under one lock acquisition — the batch crypto kernels run
  /// in the wrapped engine. Reads take the shared side first; only the
  /// indices the promotion pulse declined pay the exclusive lock.
  [[nodiscard]] std::vector<ReadResult> read_blocks(
      std::span<const std::uint64_t> blocks) override {
    if (seqlock_reads_) {
      std::vector<ReadResult> results(blocks.size());
      std::vector<std::uint32_t> declined;
      {
        const SeqReadLock lock(mu_);
        memory_.read_blocks_shared(blocks, results, declined);
      }
      if (!declined.empty()) {
        const SeqWriteLock lock(mu_);
        for (const std::uint32_t d : declined)
          results[d] = memory_.read_block(blocks[d]);
      }
      return results;
    }
    const SeqWriteLock lock(mu_);
    return memory_.read_blocks(blocks);
  }

  [[nodiscard]] Status write_blocks(std::span<const BlockWrite> writes)
      override {
    const SeqWriteLock lock(mu_);
    return memory_.write_blocks(writes);
  }

  Status write_bytes(std::uint64_t addr,
                     std::span<const std::uint8_t> bytes) override {
    const SeqWriteLock lock(mu_);
    return memory_.write_bytes(addr, bytes);
  }

  Status read_bytes(std::uint64_t addr,
                    std::span<std::uint8_t> out) override {
    if (seqlock_reads_) {
      // One shared acquisition covers the whole range (single lock — no
      // cross-shard snapshot problem here); the engine defers all
      // accounting until the attempt stands, so a declined block that
      // bounces the range to the exclusive path never double-counts.
      const SeqReadLock lock(mu_);
      if (const auto verdict = memory_.read_bytes_shared(addr, out))
        return *verdict;
    }
    const SeqWriteLock lock(mu_);
    return memory_.read_bytes(addr, out);
  }

  ScrubStatus scrub_block(std::uint64_t block, bool deep = false) override {
    const SeqWriteLock lock(mu_);
    return memory_.scrub_block(block, deep);
  }

  ScrubReport scrub_all(bool deep = false) override {
    const SeqWriteLock lock(mu_);
    return memory_.scrub_all(deep);
  }

  [[nodiscard]] bool rotate_master_key(std::uint64_t new_master) override {
    const SeqWriteLock lock(mu_);
    return memory_.rotate_master_key(new_master);
  }

  /// Lock-free by contract: reads the wrapped engine's relaxed-atomic
  /// cell directly, never contending with the datapath.
  EngineStats stats() const noexcept override
      SECMEM_NO_THREAD_SAFETY_ANALYSIS {
    return memory_.stats();
  }
  void reset_stats() noexcept override SECMEM_NO_THREAD_SAFETY_ANALYSIS {
    memory_.reset_stats();
  }

  void publish_metrics(StatRegistry& registry,
                       const std::string& prefix = "engine") const override
      SECMEM_NO_THREAD_SAFETY_ANALYSIS {
    memory_.publish_metrics(registry, prefix);
  }

  void attach_trace(TraceRing* ring) override {
    const SeqWriteLock lock(mu_);
    memory_.attach_trace(ring);
  }

  /// Persistence under the lock. Note the stream I/O happens while the
  /// lock is held — that is the point: a save must observe a quiescent
  /// region, and a restore must not race concurrent readers.
  [[nodiscard]] Status save(std::ostream& out) override {
    const SeqWriteLock lock(mu_);
    return memory_.save(out);
  }

  [[nodiscard]] bool restore(std::istream& in) override {
    const SeqWriteLock lock(mu_);
    return memory_.restore(in);
  }

  /// Delta persistence — same quiescence contract as save/restore.
  [[nodiscard]] Status save_delta(std::ostream& out) override {
    const SeqWriteLock lock(mu_);
    return memory_.save_delta(out);
  }

  [[nodiscard]] bool restore_delta(std::istream& in) override {
    const SeqWriteLock lock(mu_);
    return memory_.restore_delta(in);
  }

  // Re-expose the base class's std::byte-span / buffer overloads.
  using SecureMemoryLike::read_bytes;
  using SecureMemoryLike::restore;
  using SecureMemoryLike::restore_delta;
  using SecureMemoryLike::save;
  using SecureMemoryLike::save_delta;
  using SecureMemoryLike::write_bytes;

  /// Run `fn(SecureMemory&)` under the exclusive lock — for anything the
  /// facade does not wrap (the untrusted view in tests, ...). Bumps the
  /// generation like any writer.
  template <typename Fn>
  auto with_exclusive(Fn&& fn) {
    const SeqWriteLock lock(mu_);
    return std::forward<Fn>(fn)(memory_);
  }

 private:
  mutable SeqLock mu_;
  SecureMemory memory_ SECMEM_GUARDED_BY(mu_);
  std::uint64_t size_bytes_;
  std::uint64_t num_blocks_;
  /// Shared-read fast path enabled (SECMEM_SEQLOCK, construction-time).
  bool seqlock_reads_;
};

}  // namespace secmem
