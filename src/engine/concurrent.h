// Thread-safe facade over SecureMemory.
//
// SecureMemory itself is single-threaded by design (a memory controller
// serializes at the DRAM channel anyway); multi-threaded applications
// wrap it in this coarse-grained monitor. Every operation takes the one
// internal mutex — simple, correct, and adequate for software use of a
// functional model. The untrusted attack surface is deliberately NOT
// re-exported: concurrent attacker simulation must synchronize
// explicitly via with_exclusive().
#pragma once

#include <mutex>
#include <utility>

#include "engine/secure_memory.h"

namespace secmem {

class ConcurrentSecureMemory {
 public:
  explicit ConcurrentSecureMemory(const SecureMemoryConfig& config)
      : memory_(config) {}

  std::uint64_t size_bytes() const noexcept { return memory_.size_bytes(); }
  std::uint64_t num_blocks() const noexcept { return memory_.num_blocks(); }

  void write_block(std::uint64_t block, const DataBlock& plaintext) {
    const std::lock_guard<std::mutex> lock(mutex_);
    memory_.write_block(block, plaintext);
  }

  SecureMemory::ReadResult read_block(std::uint64_t block) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return memory_.read_block(block);
  }

  bool write(std::uint64_t addr, std::span<const std::uint8_t> bytes) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return memory_.write(addr, bytes);
  }

  bool read(std::uint64_t addr, std::span<std::uint8_t> out) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return memory_.read(addr, out);
  }

  SecureMemory::ScrubReport scrub_all(bool deep = false) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return memory_.scrub_all(deep);
  }

  bool rotate_master_key(std::uint64_t new_master) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return memory_.rotate_master_key(new_master);
  }

  SecureMemory::Stats stats() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return memory_.stats();
  }

  /// Run `fn(SecureMemory&)` under the lock — for anything the facade
  /// does not wrap (persistence, the untrusted view in tests, ...).
  template <typename Fn>
  auto with_exclusive(Fn&& fn) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return std::forward<Fn>(fn)(memory_);
  }

 private:
  std::mutex mutex_;
  SecureMemory memory_;
};

}  // namespace secmem
