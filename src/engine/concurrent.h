// Thread-safe facade over SecureMemory.
//
// SecureMemory itself is single-threaded by design (a memory controller
// serializes at the DRAM channel anyway); multi-threaded applications
// wrap it in this coarse-grained monitor. Every operation takes the one
// lock-table entry — simple, correct, and adequate for software use of a
// functional model; see engine/sharded_memory.h for the facade that
// actually scales with threads. The untrusted attack surface is
// deliberately NOT re-exported: concurrent attacker simulation must
// synchronize explicitly via with_exclusive().
//
// Metrics bypass the lock entirely: the wrapped engine records into
// relaxed atomics, so stats()/publish_metrics() never contend with the
// datapath.
//
// The wrapped engine's verified-frontier tree cache (tree/tree_cache.h)
// mutates on every read; holding the one lock for reads too is what
// makes that safe here.
#pragma once

#include <iosfwd>
#include <utility>

#include "engine/lock_table.h"
#include "engine/secure_memory.h"
#include "engine/secure_memory_like.h"

namespace secmem {

class ConcurrentSecureMemory : public SecureMemoryLike {
 public:
  explicit ConcurrentSecureMemory(const SecureMemoryConfig& config)
      : locks_(1), memory_(config) {}

  std::uint64_t size_bytes() const noexcept override {
    return memory_.size_bytes();
  }
  std::uint64_t num_blocks() const noexcept override {
    return memory_.num_blocks();
  }

  void write_block(std::uint64_t block, const DataBlock& plaintext) override {
    const auto lock = locks_.lock(0);
    memory_.write_block(block, plaintext);
  }

  ReadResult read_block(std::uint64_t block) override {
    const auto lock = locks_.lock(0);
    return memory_.read_block(block);
  }

  /// Batch I/O under one lock acquisition — the batch crypto kernels run
  /// in the wrapped engine.
  std::vector<ReadResult> read_blocks(
      std::span<const std::uint64_t> blocks) override {
    const auto lock = locks_.lock(0);
    return memory_.read_blocks(blocks);
  }

  void write_blocks(std::span<const BlockWrite> writes) override {
    const auto lock = locks_.lock(0);
    memory_.write_blocks(writes);
  }

  Status write_bytes(std::uint64_t addr,
                     std::span<const std::uint8_t> bytes) override {
    const auto lock = locks_.lock(0);
    return memory_.write_bytes(addr, bytes);
  }

  Status read_bytes(std::uint64_t addr,
                    std::span<std::uint8_t> out) override {
    const auto lock = locks_.lock(0);
    return memory_.read_bytes(addr, out);
  }

  ScrubStatus scrub_block(std::uint64_t block, bool deep = false) override {
    const auto lock = locks_.lock(0);
    return memory_.scrub_block(block, deep);
  }

  ScrubReport scrub_all(bool deep = false) override {
    const auto lock = locks_.lock(0);
    return memory_.scrub_all(deep);
  }

  bool rotate_master_key(std::uint64_t new_master) override {
    const auto lock = locks_.lock(0);
    return memory_.rotate_master_key(new_master);
  }

  /// Lock-free: reads the wrapped engine's relaxed-atomic cell directly.
  EngineStats stats() const noexcept override { return memory_.stats(); }
  void reset_stats() noexcept override { memory_.reset_stats(); }

  void publish_metrics(StatRegistry& registry,
                       const std::string& prefix = "engine") const override {
    memory_.publish_metrics(registry, prefix);
  }

  void attach_trace(TraceRing* ring) override { memory_.attach_trace(ring); }

  /// Persistence under the lock. Note the stream I/O happens while the
  /// lock is held — that is the point: a save must observe a quiescent
  /// region, and a restore must not race concurrent readers.
  void save(std::ostream& out) override {
    const auto lock = locks_.lock(0);
    memory_.save(out);
  }

  bool restore(std::istream& in) override {
    const auto lock = locks_.lock(0);
    return memory_.restore(in);
  }

  /// Run `fn(SecureMemory&)` under the lock — for anything the facade
  /// does not wrap (the untrusted view in tests, ...).
  template <typename Fn>
  auto with_exclusive(Fn&& fn) {
    const auto lock = locks_.lock(0);
    return std::forward<Fn>(fn)(memory_);
  }

 private:
  ShardLockTable locks_;
  SecureMemory memory_;
};

}  // namespace secmem
