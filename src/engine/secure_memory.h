// SecureMemory — a functional authenticated-encrypted memory region.
//
// This is the library's primary public API: a byte-addressable region
// whose backing store holds only ciphertext, MAC/ECC lanes, counter
// storage, and Bonsai-tree nodes — exactly the bits an attacker with
// physical access to the DIMMs could see or flip. Reads perform real
// AES-CTR decryption, Carter-Wegman verification, Bonsai-tree counter
// authentication, and (in MAC-ECC mode) flip-and-check error correction.
//
// The `untrusted()` view exposes the attack/fault surface: everything that
// lives off-chip can be read, flipped, or rolled back; on-chip state
// (keys, tree root level, counter-scheme registers) cannot. This lets
// tests and examples mount the paper's threat model directly: bus
// tampering, cold-boot splicing, replay of stale (data, MAC, counter)
// triples, and DRAM bit faults.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "common/bitops.h"
#include "counters/counter_scheme.h"
#include "crypto/aes128.h"
#include "crypto/ctr_keystream.h"
#include "crypto/cw_mac.h"
#include "ecc/flip_and_check.h"
#include "ecc/mac_ecc.h"
#include "ecc/secded72.h"
#include "engine/encryption_engine.h"  // MacPlacement
#include "engine/layout.h"
#include "tree/bonsai_tree.h"

namespace secmem {

struct SecureMemoryConfig {
  std::uint64_t size_bytes = 4 * 1024 * 1024;
  CounterSchemeKind scheme = CounterSchemeKind::kDelta;
  MacPlacement mac_placement = MacPlacement::kEccLane;
  std::uint64_t onchip_bytes = 3 * 1024;
  /// Flip-and-check effort in MAC-ECC mode (0 disables correction).
  unsigned max_correctable_errors = 2;
  /// Nonzero: override `scheme` with a GenericDeltaCounters of this delta
  /// width (2..16 bits) — the §4.2 design-space knob.
  unsigned generic_delta_bits = 0;
  /// Master secret; all working keys are derived from it.
  std::uint64_t master_key = 0x5ec3e7'c0ffee;
};

/// Outcome of a verified read.
enum class ReadStatus : std::uint8_t {
  kOk,                  ///< verified clean
  kCorrectedMacField,   ///< single-bit flip in the MAC lane repaired
  kCorrectedData,       ///< 1-2 data bits repaired by flip-and-check
  kCorrectedWord,       ///< SEC-DED corrected word(s) (separate-MAC mode)
  kIntegrityViolation,  ///< tamper or uncorrectable fault in data/MAC
  kCounterTampered,     ///< counter storage failed tree authentication
};

const char* read_status_name(ReadStatus status) noexcept;

class SecureMemory {
 public:
  explicit SecureMemory(const SecureMemoryConfig& config);

  std::uint64_t size_bytes() const noexcept { return config_.size_bytes; }
  std::uint64_t num_blocks() const noexcept { return layout_.num_blocks(); }
  const SecureRegionLayout& layout() const noexcept { return layout_; }
  const CounterScheme& counters() const noexcept { return *scheme_; }

  /// Write one 64-byte block of plaintext.
  void write_block(std::uint64_t block, const DataBlock& plaintext);

  struct ReadResult {
    ReadStatus status;
    DataBlock data;  ///< plaintext; zeroed unless status is kOk/kCorrected*
    std::uint64_t mac_evaluations = 0;  ///< flip-and-check work performed
  };

  /// Verified read of one 64-byte block.
  ReadResult read_block(std::uint64_t block);

  /// Byte-level convenience (read-modify-write across blocks). Returns
  /// false if any underlying block read fails verification.
  ///
  /// `write` is all-or-nothing: the partial blocks at the edges of the
  /// range (the only blocks whose old contents must still verify) are
  /// pre-verified before anything is mutated, so a false return means the
  /// region is exactly as it was — no torn multi-block writes. Both calls
  /// reject ranges that fall outside the region (including `addr + len`
  /// overflow) with std::out_of_range.
  bool write(std::uint64_t addr, std::span<const std::uint8_t> bytes);
  bool read(std::uint64_t addr, std::span<std::uint8_t> out);

  /// ------------------------------------------------------------------
  /// Scrubbing (paper §3.3, "Enabling Efficient Scrubbing").
  /// ------------------------------------------------------------------
  /// The MAC-ECC lane keeps one parity bit over the ciphertext and a
  /// Hamming code over the MAC, so scrubbing firmware can sweep for
  /// latent single-bit faults with two parity checks per line — no MAC
  /// recomputation. Lines that fail the quick check (or all lines, when
  /// `deep`) go through full verification and are *healed* in place:
  /// corrected data/MACs are re-written to the backing store.
  enum class ScrubStatus : std::uint8_t {
    kClean,            ///< quick parity checks passed (or full check did)
    kRepairedMacField, ///< single-bit MAC-lane fault healed
    kRepairedData,     ///< 1-2 bit data fault healed
    kUncorrectable,    ///< fault beyond correction; data NOT healed
    kCounterTampered,  ///< counter storage failed tree authentication
  };

  struct ScrubReport {
    std::uint64_t scanned = 0;
    std::uint64_t quick_clean = 0;   ///< passed the cheap parity checks
    std::uint64_t repaired_mac = 0;
    std::uint64_t repaired_data = 0;
    std::uint64_t uncorrectable = 0;
    std::uint64_t counter_tampered = 0;
  };

  /// Scrub one block. `deep` skips the cheap parity shortcut and runs the
  /// full verification (catches even-parity faults the scrub bit is
  /// blind to).
  ScrubStatus scrub_block(std::uint64_t block, bool deep = false);

  /// Sweep the whole region (what the scrubbing firmware does
  /// periodically).
  ScrubReport scrub_all(bool deep = false);

  /// ------------------------------------------------------------------
  /// Key management.
  /// ------------------------------------------------------------------
  /// Re-key the region under a new master secret: every block is
  /// decrypted and verified under the old keys, the working keys and
  /// integrity tree are rebuilt, counters restart at zero (a fresh key
  /// makes every (addr, counter) nonce fresh again), and all data is
  /// re-encrypted. Returns false — leaving the region untouched — if any
  /// block fails verification under the old keys.
  bool rotate_master_key(std::uint64_t new_master);

  /// ------------------------------------------------------------------
  /// Persistence (NVMM / hibernate model).
  /// ------------------------------------------------------------------
  /// `save` writes the off-chip state (ciphertext, ECC/MAC lanes,
  /// counter storage) plus a *sealed root snapshot* — the tree's on-chip
  /// root level, standing in for what a real deployment would keep in
  /// tamper-proof non-volatile storage (TPM/fuses). Keys are NEVER
  /// written; they derive from the master secret held by the caller.
  ///
  /// `restore` rebuilds the region from such an image: counter lines are
  /// decoded, the tree is reconstructed bottom-up, and its computed root
  /// level must match the sealed snapshot — any offline tamper of counter
  /// storage is rejected before a single block is served. (Replay of a
  /// complete, internally-consistent OLD image is accepted: image
  /// freshness requires a fresh root store, see SECURITY.md.)
  /// On any failure the region re-initializes to zeros and restore
  /// returns false.
  void save(std::ostream& out) const;
  bool restore(std::istream& in);

  /// ------------------------------------------------------------------
  /// Operational statistics.
  /// ------------------------------------------------------------------
  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t corrected_data = 0;
    std::uint64_t corrected_mac_field = 0;
    std::uint64_t corrected_word = 0;
    std::uint64_t integrity_violations = 0;
    std::uint64_t counter_tampers = 0;
    std::uint64_t group_reencryptions = 0;
    std::uint64_t mac_evaluations = 0;  ///< flip-and-check work
  };
  const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = Stats{}; }

  /// ------------------------------------------------------------------
  /// Untrusted (off-chip) surface — the attacker's reach.
  /// ------------------------------------------------------------------
  class UntrustedView {
   public:
    explicit UntrustedView(SecureMemory& owner) : m_(owner) {}

    /// Raw ciphertext / ECC-lane access for a block.
    std::span<std::uint8_t, kBlockBytes> ciphertext(std::uint64_t block) {
      return std::span<std::uint8_t, kBlockBytes>(m_.ciphertext_.at(block));
    }
    std::span<std::uint8_t, kEccLaneBytes> ecc_lane(std::uint64_t block) {
      return std::span<std::uint8_t, kEccLaneBytes>(m_.lanes_.at(block));
    }
    /// Stored counter line bytes (authenticated by the tree).
    std::span<std::uint8_t, 64> counter_line(std::uint64_t line) {
      return std::span<std::uint8_t, 64>(
          m_.counter_store_.data() + line * 64, 64);
    }
    /// Off-chip tree nodes (levels 1..offchip-1).
    BonsaiTree& tree() { return m_.tree_; }
    /// Stored 56-bit MACs (separate-MAC mode only).
    std::vector<std::uint64_t>& macs() { return m_.macs_; }

    void flip_ciphertext_bit(std::uint64_t block, unsigned bit) {
      flip_bit(ciphertext(block), bit);
    }
    void flip_lane_bit(std::uint64_t block, unsigned bit) {
      flip_bit(ecc_lane(block), bit);
    }
    void flip_counter_bit(std::uint64_t line, unsigned bit) {
      flip_bit(counter_line(line), bit);
    }

    /// Cold-boot-style snapshot/rollback of a block's off-chip state —
    /// the raw material of a replay attack.
    struct BlockSnapshot {
      DataBlock ciphertext;
      EccLane lane;
      std::uint64_t mac;  ///< separate-MAC mode
      std::vector<std::uint8_t> counter_line;
    };
    BlockSnapshot snapshot(std::uint64_t block) const;
    void restore(std::uint64_t block, const BlockSnapshot& snapshot);

   private:
    SecureMemory& m_;
  };

  UntrustedView untrusted() { return UntrustedView(*this); }

  /// Instantiate the counter scheme a config resolves to — exposed so
  /// ShardedSecureMemory can probe group/storage-line geometry when
  /// choosing its routing granule.
  static std::unique_ptr<CounterScheme> make_scheme(
      const SecureMemoryConfig& config);

 private:
  friend class UntrustedView;
  static LayoutParams layout_params(const SecureMemoryConfig& config,
                                    const CounterScheme& scheme);

  /// Encrypt + MAC `plaintext` under `counter` and store everything.
  void store_block(std::uint64_t block, const DataBlock& plaintext,
                   std::uint64_t counter);
  /// Refresh stored counter line `line` and its tree path.
  void sync_counter_line(std::uint64_t line);
  std::uint64_t data_mac(std::uint64_t block, std::uint64_t counter,
                         const DataBlock& ciphertext) const;

  SecureMemoryConfig config_;
  std::unique_ptr<CounterScheme> scheme_;
  SecureRegionLayout layout_;
  CtrKeystream keystream_;
  CwMac mac_;
  MacEccCodec mac_ecc_;
  Secded72 secded_;
  FlipAndCheck corrector_;
  BonsaiTree tree_;

  std::vector<DataBlock> ciphertext_;
  std::vector<EccLane> lanes_;
  std::vector<std::uint64_t> macs_;          ///< separate-MAC mode
  std::vector<std::uint8_t> counter_store_;  ///< serialized counter lines
  std::vector<std::uint64_t> shadow_ctr_;    ///< current counter per block
  Stats stats_;
};

}  // namespace secmem
