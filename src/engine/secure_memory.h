// SecureMemory — a functional authenticated-encrypted memory region.
//
// This is the library's primary public API: a byte-addressable region
// whose backing store holds only ciphertext, MAC/ECC lanes, counter
// storage, and Bonsai-tree nodes — exactly the bits an attacker with
// physical access to the DIMMs could see or flip. Reads perform real
// AES-CTR decryption, Carter-Wegman verification, Bonsai-tree counter
// authentication, and (in MAC-ECC mode) flip-and-check error correction.
//
// The `untrusted()` view exposes the attack/fault surface: everything that
// lives off-chip can be read, flipped, or rolled back; on-chip state
// (keys, tree root level, counter-scheme registers) cannot. This lets
// tests and examples mount the paper's threat model directly: bus
// tampering, cold-boot splicing, replay of stale (data, MAC, counter)
// triples, and DRAM bit faults.
//
// Observability: every operation records into a MetricsCell (relaxed
// atomics — see common/metrics.h), so stats() and publish_metrics() are
// safe to call from any thread without stalling the datapath, and an
// optional TraceRing captures recent (op, block, outcome) events for
// post-mortem analysis of integrity violations.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/bitops.h"
#include "common/metrics.h"
#include "common/status.h"
#include "counters/counter_scheme.h"
#include "crypto/aes128.h"
#include "crypto/ctr_keystream.h"
#include "crypto/cw_mac.h"
#include "ecc/flip_and_check.h"
#include "ecc/mac_ecc.h"
#include "ecc/secded72.h"
#include "engine/delta_image.h"
#include "engine/encryption_engine.h"  // MacPlacement
#include "engine/layout.h"
#include "engine/secure_memory_like.h"
#include "tree/bonsai_tree.h"
#include "tree/tree_cache.h"

namespace secmem {

struct SecureMemoryConfig {
  std::uint64_t size_bytes = 4 * 1024 * 1024;
  CounterSchemeKind scheme = CounterSchemeKind::kDelta;
  MacPlacement mac_placement = MacPlacement::kEccLane;
  std::uint64_t onchip_bytes = 3 * 1024;
  /// Flip-and-check effort in MAC-ECC mode (0 disables correction).
  unsigned max_correctable_errors = 2;
  /// Nonzero: override `scheme` with a GenericDeltaCounters of this delta
  /// width (2..16 bits) — the §4.2 design-space knob.
  unsigned generic_delta_bits = 0;
  /// Record per-operation wall-time into the engine's latency histograms
  /// (read_latency_ns / write_latency_ns). Off by default: two clock
  /// reads per op are measurable on the hot path.
  bool time_ops = false;
  /// Verified-frontier tree cache capacity in KB (tree/tree_cache.h) —
  /// the functional counterpart of the paper's 8 KB metadata cache. 0
  /// disables it (every operation walks the tree to the root). The
  /// SECMEM_TREE_CACHE environment variable overrides this at engine
  /// construction: "0" is the kill switch, any other integer is a KB
  /// capacity. Sharded engines pass the config through per shard, so
  /// each shard gets its own cache inside its shard lock.
  unsigned tree_cache_kb = 8;
  /// Master secret; all working keys are derived from it.
  std::uint64_t master_key = 0x5ec3e7'c0ffee;
};

class SecureMemory : public SecureMemoryLike {
 public:
  // Result/report types predate the shared interface; they now live at
  // namespace scope (engine/secure_memory_like.h) and are re-exported
  // here for source compatibility.
  using ReadResult = secmem::ReadResult;
  using ScrubStatus = secmem::ScrubStatus;
  using ScrubReport = secmem::ScrubReport;
  using Stats = EngineStats;

  explicit SecureMemory(const SecureMemoryConfig& config);

  std::uint64_t size_bytes() const noexcept override {
    return config_.size_bytes;
  }
  std::uint64_t num_blocks() const noexcept override {
    return layout_.num_blocks();
  }
  const SecureRegionLayout& layout() const noexcept { return layout_; }
  const CounterScheme& counters() const noexcept { return *scheme_; }

  /// Write one 64-byte block of plaintext. Always kOk here — the plain
  /// engine has no fail-closed state — but callers consume the Status so
  /// they behave identically against the poisoning-capable facades.
  ///
  /// When a write overflows its delta group, the whole group re-encrypts
  /// through one batched pass: one crypt_batch decrypt of the stale
  /// ciphertexts, one crypt_batch + compute_batch + pack_lane_batch
  /// re-store, and one counter-line/tree sync for the group. The
  /// SECMEM_BATCH_REENC environment variable ("0" at construction) forces
  /// the scalar block-at-a-time loop — bit-identical state, used by the
  /// differential tests.
  [[nodiscard]] Status write_block(std::uint64_t block,
                                   const DataBlock& plaintext) override;

  /// Verified read of one 64-byte block.
  ReadResult read_block(std::uint64_t block) override;

  /// Batch I/O (see SecureMemoryLike). The overrides keep single-block
  /// semantics — identical statuses, corrections, metrics, and trace
  /// events — while running the crypto over the whole batch: counter
  /// lines authenticate once per line, AES pads stream through the
  /// 4-wide kernel, and counter-line/tree syncs coalesce per dirty line.
  /// Any block that needs more than the clean verify path (corrections,
  /// tampering) falls back to the scalar routine for that block.
  [[nodiscard]] std::vector<ReadResult> read_blocks(
      std::span<const std::uint64_t> blocks) override;
  [[nodiscard]] Status write_blocks(std::span<const BlockWrite> writes)
      override;

  /// ------------------------------------------------------------------
  /// Shared (const) read fast path — the seqlock tier's workhorse.
  /// ------------------------------------------------------------------
  /// A verified read identical in verdict and plaintext to read_block(),
  /// but const: counter authentication goes through the tree cache's
  /// read-side probe() (no fills, no LRU reordering beyond the relaxed
  /// touch), and the only engine state touched is the relaxed-atomic
  /// metrics cell. Concurrency facades call this under a SHARED shard
  /// lock, so any number of readers proceed in parallel.
  ///
  /// Returns nullopt when the read *declines*: the counter line was not
  /// resident and the promotion pulse elected to bounce this read to the
  /// exclusive path, where read_block()'s verify() can install the line
  /// into the verified frontier (a shared reader must not mutate the
  /// cache, so without the pulse a cold line would walk to the root
  /// forever). Callers retry declined blocks under the exclusive lock.
  ///
  /// `account` false defers metrics/trace to an explicit account_read()
  /// call — the cross-shard byte-read path validates a whole optimistic
  /// snapshot before committing any accounting, so retries don't
  /// double-count.
  [[nodiscard]] std::optional<ReadResult> read_block_shared(
      std::uint64_t block, bool account = true) const;

  /// Batch read_block_shared over `blocks` into `results` (same size).
  /// Indices that declined are appended to `declined` and their result
  /// slot is untouched — callers re-read those under the exclusive lock.
  void read_blocks_shared(std::span<const std::uint64_t> blocks,
                          std::span<ReadResult> results,
                          std::vector<std::uint32_t>& declined) const;

  /// Whole-range shared read with read_bytes() semantics (same statuses,
  /// same partial-output behavior on failure). nullopt when any block
  /// declines — in that case NOTHING has been accounted, so the caller's
  /// exclusive read_bytes() retry keeps the books identical to a single
  /// call. All metrics/trace commit only once the attempt stands.
  [[nodiscard]] std::optional<Status> read_bytes_shared(
      std::uint64_t addr, std::span<std::uint8_t> out) const;

  /// Metrics/trace bookkeeping for one read outcome. Public and const so
  /// facades running deferred-accounting shared reads (account=false)
  /// can commit the books once the whole operation is known to stick.
  void account_read(const ReadResult& result, std::uint64_t block)
      const noexcept;

  /// Byte-level API; see SecureMemoryLike for the Status contract.
  /// `write_bytes` is all-or-nothing: the partial blocks at the edges of
  /// the range (the only blocks whose old contents must still verify) are
  /// pre-verified before anything is mutated, so a failure status means
  /// the region is exactly as it was — no torn multi-block writes. Both
  /// calls reject ranges that fall outside the region (including
  /// `addr + len` overflow) with std::out_of_range.
  Status write_bytes(std::uint64_t addr,
                     std::span<const std::uint8_t> bytes) override;
  Status read_bytes(std::uint64_t addr,
                    std::span<std::uint8_t> out) override;

  /// ------------------------------------------------------------------
  /// Scrubbing (paper §3.3, "Enabling Efficient Scrubbing").
  /// ------------------------------------------------------------------
  /// The MAC-ECC lane keeps one parity bit over the ciphertext and a
  /// Hamming code over the MAC, so scrubbing firmware can sweep for
  /// latent single-bit faults with two parity checks per line — no MAC
  /// recomputation. Lines that fail the quick check (or all lines, when
  /// `deep`) go through full verification and are *healed* in place:
  /// corrected data/MACs are re-written to the backing store.
  ScrubStatus scrub_block(std::uint64_t block, bool deep = false) override;

  /// Sweep the whole region (what the scrubbing firmware does
  /// periodically).
  ScrubReport scrub_all(bool deep = false) override;

  /// ------------------------------------------------------------------
  /// Key management.
  /// ------------------------------------------------------------------
  /// Re-key the region under a new master secret: every block is
  /// decrypted and verified under the old keys, the working keys and
  /// integrity tree are rebuilt, counters restart at zero (a fresh key
  /// makes every (addr, counter) nonce fresh again), and all data is
  /// re-encrypted. Returns false — leaving the region untouched — if any
  /// block fails verification under the old keys.
  [[nodiscard]] bool rotate_master_key(std::uint64_t new_master) override;

  /// ------------------------------------------------------------------
  /// Persistence (NVMM / hibernate model).
  /// ------------------------------------------------------------------
  /// `save` writes the off-chip state (ciphertext, ECC/MAC lanes,
  /// counter storage) plus a *sealed root snapshot* — the tree's on-chip
  /// root level, standing in for what a real deployment would keep in
  /// tamper-proof non-volatile storage (TPM/fuses). Keys are NEVER
  /// written; they derive from the master secret held by the caller.
  ///
  /// `restore` rebuilds the region from such an image: counter lines are
  /// decoded, the tree is reconstructed bottom-up, and its computed root
  /// level must match the sealed snapshot — any offline tamper of counter
  /// storage is rejected before a single block is served. (Replay of a
  /// complete, internally-consistent OLD image is accepted: image
  /// freshness requires a fresh root store, see SECURITY.md.)
  /// On any failure the region re-initializes to zeros and restore
  /// returns false.
  /// Both directions stream in bulk: ciphertext, ECC lanes, and counter
  /// storage are contiguous and byte-identical to the serialized layout,
  /// so they move through single large writes/reads; stored MACs convert
  /// endianness through a reusable engine-owned chunk buffer; and restore
  /// rebuilds the tree level-by-level through the batched MAC kernel
  /// (BonsaiTree::rebuild_from_lines). SECMEM_BATCH_SNAPSHOT=0 at
  /// construction pins the scalar per-element reference — bit-identical
  /// images either way.
  [[nodiscard]] Status save(std::ostream& out) override;
  [[nodiscard]] bool restore(std::istream& in) override;

  /// ------------------------------------------------------------------
  /// Incremental (delta) persistence — see SecureMemoryLike for the
  /// interface contract and src/engine/delta_image.h for the codec.
  /// ------------------------------------------------------------------
  /// Every block store sets the owning granule's bit in a relaxed-atomic
  /// dirty bitmap (a granule = lcm(blocks_per_group,
  /// blocks_per_storage_line) blocks — whole re-encryption groups and
  /// whole counter lines, so a granule's payload is self-contained).
  /// save_delta drains that bitmap into a COPY/ADD stream sealed by a
  /// MAC over the header + commands + expected-root trailer, bound to
  /// the *base seal* — a MAC over the tree's root level at the last
  /// alignment point — so a delta only ever applies on top of the exact
  /// state it was diffed against. Tampering through the UntrustedView
  /// is deliberately NOT tracked: it models an attacker, and anything it
  /// corrupts inside a clean granule is covered by the base-seal check
  /// (the granule's counter lines feed the root) or by the per-block
  /// MACs once the block is read.
  ///
  /// Chain alignment points (save, save_delta, restore, restore_delta
  /// successes) update {epoch, base seal} and clear the bitmap;
  /// rotate_master_key breaks the chain (fresh seal key), so the next
  /// save_delta falls back to a full image and re-bases it.
  [[nodiscard]] Status save_delta(std::ostream& out) override;
  [[nodiscard]] bool restore_delta(std::istream& in) override;

  /// Diff two full save() images of THIS engine's geometry into a delta
  /// stream restore_delta accepts (cross-instance replication under the
  /// same master secret — the command MAC and seals derive from it). No
  /// dirty information: a one-pass block-hash diff finds the COPYs.
  /// kIntegrityViolation if either buffer is not a full image of this
  /// geometry; nothing is written in that case.
  [[nodiscard]] Status encode_delta(std::span<const std::uint8_t> base_image,
                                    std::span<const std::uint8_t> target_image,
                                    std::ostream& out) const;

  /// Dirty-plane observability: granule size in blocks, granules touched
  /// since the last alignment point, the chain epoch, and whether a
  /// delta base exists (false on fresh engines and after rotations).
  std::uint64_t delta_granule_blocks() const noexcept {
    return granule_blocks_;
  }
  std::uint64_t dirty_granules() const noexcept;
  std::uint64_t snapshot_epoch() const noexcept { return snap_epoch_; }
  bool has_snapshot_base() const noexcept { return has_base_; }

  /// Invalidate the delta base so the next save_delta emits a full
  /// image. For facades whose container-level stream write can fail
  /// AFTER the shard engines already aligned their chains into private
  /// buffers (ShardedSecureMemory::save/save_delta): the aligned bases
  /// describe an image that never persisted, so deltas against them
  /// would apply nowhere — breaking the chain restores coherence at the
  /// cost of one full fallback image.
  void break_chain() noexcept {
    has_base_ = false;
    mark_all_dirty();
  }

  /// Exact byte size of the image save() emits for this engine —
  /// facades slicing a concatenated multi-engine image (the sharded
  /// container's parallel restore) size their cuts with this.
  std::uint64_t image_bytes() const noexcept;

  // Keep the base class's std::byte-span / buffer overloads visible next
  // to the overrides above.
  using SecureMemoryLike::read_bytes;
  using SecureMemoryLike::restore;
  using SecureMemoryLike::restore_delta;
  using SecureMemoryLike::save;
  using SecureMemoryLike::save_delta;
  using SecureMemoryLike::write_bytes;

  /// Two-phase restore, for facades that need all-or-nothing semantics
  /// across several engines (ShardedSecureMemory stages every shard's
  /// image before committing any). stage_restore() parses and fully
  /// validates an image — including the sealed-root check — without
  /// touching engine state; nullopt means the image is unusable and the
  /// region is EXACTLY as it was. commit_restore() adopts a staged image;
  /// it cannot fail. restore() above is stage + commit under the current
  /// master, plus the single-engine wipe-to-zeros policy on failure.
  ///
  /// `master_key` is the secret the image is interpreted under —
  /// normally the engine's current one, but a caller that knows the
  /// engine's key no longer matches the image (ShardedSecureMemory
  /// recovering a shard stranded on a half-rotated key) passes the
  /// master the image was saved with; commit then re-derives the
  /// engine's working keys from it.
  struct StagedRestore {
    std::uint64_t master_key;  ///< master the image decodes under
    std::vector<DataBlock> ciphertext;
    std::vector<EccLane> lanes;
    std::vector<std::uint64_t> macs;
    std::vector<std::uint8_t> counter_store;
    BonsaiTree tree;
  };
  [[nodiscard]] std::optional<StagedRestore> stage_restore(
      std::istream& in) const;
  [[nodiscard]] std::optional<StagedRestore> stage_restore(
      std::istream& in, std::uint64_t master_key) const;
  void commit_restore(StagedRestore&& staged);

  /// Two-phase delta restore, mirroring stage_restore/commit_restore for
  /// the sharded all-or-nothing path. stage_delta consumes a delta image
  /// (magic onward) and performs EVERY check — geometry, command-section
  /// MAC (ct_equal), base seal against the engine's current root,
  /// command-stream validation — without touching engine state; nullopt
  /// means rejected and the region is exactly as it was. commit_delta
  /// applies the commands in place, refreshes scheme/tree/shadow state
  /// for the written granules, and advances the chain. Its bool is a
  /// defense-in-depth verdict: the post-apply root is re-checked against
  /// the image's MAC-covered trailer, and a mismatch (a base-seal
  /// collision — cryptographically negligible) wipes the region to
  /// zeros and returns false.
  struct StagedDelta {
    std::uint64_t new_epoch = 0;
    std::vector<std::uint8_t> cmd;      ///< raw command-stream bytes
    std::vector<delta::Command> cmds;   ///< parsed + validated commands
    std::vector<std::uint8_t> trailer;  ///< expected post-apply root level
  };
  [[nodiscard]] std::optional<StagedDelta> stage_delta(std::istream& in);
  [[nodiscard]] bool commit_delta(StagedDelta&& staged);

  /// ------------------------------------------------------------------
  /// Observability.
  /// ------------------------------------------------------------------
  /// Lock-free aggregate of the operation counters (compatibility view;
  /// the registry export below also carries the histograms).
  EngineStats stats() const noexcept override;
  void reset_stats() noexcept override;

  void publish_metrics(StatRegistry& registry,
                       const std::string& prefix = "engine") const override;

  /// The raw hot-path cell — sharded engines aggregate these directly.
  const MetricsCell& metrics_cell() const noexcept { return metrics_; }

  void attach_trace(TraceRing* ring) override { attach_trace(ring, 0); }
  /// Shard-aware attachment: events record with `shard` so a ring shared
  /// across a sharded region stays attributable.
  void attach_trace(TraceRing* ring, std::uint16_t shard) noexcept {
    trace_ = ring;
    trace_shard_ = shard;
  }

  /// ------------------------------------------------------------------
  /// Untrusted (off-chip) surface — the attacker's reach.
  /// ------------------------------------------------------------------
  class UntrustedView {
   public:
    explicit UntrustedView(SecureMemory& owner) : m_(owner) {}

    /// Raw ciphertext / ECC-lane access for a block.
    std::span<std::uint8_t, kBlockBytes> ciphertext(std::uint64_t block) {
      return std::span<std::uint8_t, kBlockBytes>(m_.ciphertext_.at(block));
    }
    std::span<std::uint8_t, kEccLaneBytes> ecc_lane(std::uint64_t block) {
      return std::span<std::uint8_t, kEccLaneBytes>(m_.lanes_.at(block));
    }
    /// Stored counter line bytes (authenticated by the tree).
    std::span<std::uint8_t, 64> counter_line(std::uint64_t line) {
      return std::span<std::uint8_t, 64>(
          m_.counter_store_.data() + line * 64, 64);
    }
    /// Off-chip tree nodes (levels 1..offchip-1). Flush barrier: the
    /// verified-frontier cache writes back and drops residency first, so
    /// the returned backing state is exactly the eager path's and any
    /// tampering done through it is seen by subsequent verifies.
    BonsaiTree& tree() {
      m_.tree_cache_.flush();
      return m_.tree_;
    }
    /// Stored 56-bit MACs (separate-MAC mode only).
    std::vector<std::uint64_t>& macs() { return m_.macs_; }

    void flip_ciphertext_bit(std::uint64_t block, unsigned bit) {
      flip_bit(ciphertext(block), bit);
    }
    void flip_lane_bit(std::uint64_t block, unsigned bit) {
      flip_bit(ecc_lane(block), bit);
    }
    void flip_counter_bit(std::uint64_t line, unsigned bit) {
      flip_bit(counter_line(line), bit);
    }

    /// Cold-boot-style snapshot/rollback of a block's off-chip state —
    /// the raw material of a replay attack.
    struct BlockSnapshot {
      DataBlock ciphertext;
      EccLane lane;
      std::uint64_t mac;  ///< separate-MAC mode
      std::vector<std::uint8_t> counter_line;
    };
    BlockSnapshot snapshot(std::uint64_t block) const;
    void restore(std::uint64_t block, const BlockSnapshot& snapshot);

   private:
    SecureMemory& m_;
  };

  UntrustedView untrusted() { return UntrustedView(*this); }

  /// Instantiate the counter scheme a config resolves to — exposed so
  /// ShardedSecureMemory can probe group/storage-line geometry when
  /// choosing its routing granule.
  static std::unique_ptr<CounterScheme> make_scheme(
      const SecureMemoryConfig& config);

 private:
  friend class UntrustedView;
  static LayoutParams layout_params(const SecureMemoryConfig& config,
                                    const CounterScheme& scheme);

  /// Encrypt + MAC `plaintext` under `counter` and store everything.
  void store_block(std::uint64_t block, const DataBlock& plaintext,
                   std::uint64_t counter);
  /// Batch store_block: keystreams and MAC pads go through the batched
  /// crypto kernels. Equivalent to calling store_block per element in
  /// order (counter lines are NOT synced — callers do that per line).
  void store_blocks(std::span<const std::uint64_t> blocks,
                    std::span<const DataBlock> plaintexts,
                    std::span<const std::uint64_t> counters);
  /// Re-store every block under `counter`. `plaintexts` holds one block
  /// each, or is empty for all-zeros (init / failed-restore wipe). Syncs
  /// all counter lines afterwards.
  void reset_all_blocks(std::span<const DataBlock> plaintexts,
                        std::uint64_t counter);
  /// Re-encrypt every block of `group` except `skip_block` under the
  /// fresh group counter `new_counter` (paper Fig 5a). The batched path
  /// gathers the group's stale ciphertexts, decrypts them with their
  /// shadow counters through one crypt_batch, and re-stores through the
  /// batched store_blocks (4-wide AES + compute_batch + lane-pack batch).
  /// Counter lines are NOT synced — the caller owns the one sync per
  /// group. Returns the number of blocks rewritten.
  std::uint64_t reencrypt_group(std::uint64_t group, std::uint64_t skip_block,
                                std::uint64_t new_counter);
  /// Refresh stored counter line `line` and its tree path (write-back:
  /// ancestor MAC propagation defers to the tree cache when enabled).
  void sync_counter_line(std::uint64_t line);
  /// Re-initialize to encrypted zeros under fresh state — the
  /// single-engine failure posture shared by restore() and a
  /// commit_delta root mismatch.
  void wipe_to_zeros();
  /// stage_restore minus the magic bytes — restore_delta dispatches on
  /// the magic itself and hands the stream tail here.
  [[nodiscard]] std::optional<StagedRestore> stage_restore_tail(
      std::istream& in, std::uint64_t master_key) const;
  /// stage_delta minus the magic bytes.
  [[nodiscard]] std::optional<StagedDelta> stage_delta_tail(std::istream& in);
  /// Authenticate stored counter line `line` through the verified
  /// frontier — the single tree-read entry point for read_block and the
  /// batch paths.
  [[nodiscard]] bool verify_counter_line(std::uint64_t line);
  std::uint64_t data_mac(std::uint64_t block, std::uint64_t counter,
                         const DataBlock& ciphertext) const;
  void trace(TraceEvent::Kind kind, Status outcome,
             std::uint64_t block) const noexcept {
    if (trace_) trace_->record(kind, outcome, block, trace_shard_);
  }

  /// ------------------------------------------------------------------
  /// Delta-snapshot plane.
  /// ------------------------------------------------------------------
  /// One relaxed fetch_or per block store — the entire steady-state cost
  /// of dirty tracking. Covers every backing-store mutation path
  /// (writes, group re-encryptions, scrub heals, rotations, restores)
  /// because they all funnel through store_block/store_blocks.
  void mark_dirty(std::uint64_t block) noexcept {
    const std::uint64_t g = block / granule_blocks_;
    dirty_words_[g >> 6].fetch_or(std::uint64_t{1} << (g & 63),
                                  std::memory_order_relaxed);
  }
  void mark_all_dirty() noexcept;
  void clear_dirty() noexcept;
  delta::Geometry delta_geometry() const noexcept;
  delta::ConstSections delta_sections() const noexcept;
  /// Seal over a root-level byte string (the delta chain's base digest).
  std::uint64_t seal_root_bytes(
      std::span<const std::uint8_t> root_bytes) const noexcept;
  /// Seal of the engine's CURRENT root level (flushes the tree cache).
  std::uint64_t root_seal();
  /// Establish the current state as the delta base: record its seal,
  /// clear the dirty bitmap. Every successful snapshot operation ends
  /// here.
  void align_chain();
  /// Command-section MAC over header fields + commands + trailer.
  std::uint64_t delta_cmd_mac(std::uint64_t base_epoch,
                              std::uint64_t new_epoch,
                              std::uint64_t base_seal,
                              std::span<const std::uint8_t> cmd,
                              std::span<const std::uint8_t> trailer)
      const noexcept;

  SecureMemoryConfig config_;
  std::unique_ptr<CounterScheme> scheme_;
  SecureRegionLayout layout_;
  CtrKeystream keystream_;
  CwMac mac_;
  /// Keys the snapshot-chain seals (root digests, delta command MACs) —
  /// derived from the master AFTER the existing keys, so adding it left
  /// every pre-delta key bit-identical (full images are unchanged).
  CwMac seal_mac_;
  MacEccCodec mac_ecc_;
  Secded72 secded_;
  FlipAndCheck corrector_;
  BonsaiTree tree_;
  /// Declared directly after tree_: holds a reference to it and must be
  /// constructed after (and destroyed before) the tree it fronts.
  VerifiedTreeCache tree_cache_;

  std::vector<DataBlock> ciphertext_;
  std::vector<EccLane> lanes_;
  std::vector<std::uint64_t> macs_;          ///< separate-MAC mode
  std::vector<std::uint8_t> counter_store_;  ///< serialized counter lines
  std::vector<std::uint64_t> shadow_ctr_;    ///< current counter per block
  /// Mutable: relaxed-atomic observability is written from the const
  /// shared read path (the cell's own contract — see common/metrics.h).
  mutable MetricsCell metrics_;
  /// Promotion pulse for read_block_shared: a relaxed counter of
  /// non-resident shared reads; every kSharedProbePulse-th one declines
  /// so the exclusive retry warms the verified frontier.
  mutable std::atomic<std::uint64_t> shared_cold_reads_{0};
  TraceRing* trace_ = nullptr;
  std::uint16_t trace_shard_ = 0;
  /// Batch-path scratch, reused across calls so a group drain performs
  /// no heap allocation in steady state (capacity sticks at the group
  /// size after the first overflow). Guarded by the engine's external
  /// synchronization contract — store_blocks/reencrypt_group run only
  /// under the exclusive write path.
  struct BatchScratch {
    std::vector<std::uint64_t> blocks, addrs, old_ctrs, new_ctrs;
    std::vector<DataBlock> plains;
    std::vector<std::uint64_t> store_addrs, tags;
    std::vector<DataBlock> cts;
    std::vector<EccLane> packed;
    /// Serialization chunk buffer for save()'s endian-converted MAC
    /// stream; capacity sticks after the first save, so steady-state
    /// snapshots allocate nothing.
    std::vector<std::uint8_t> io_bytes;
  };
  BatchScratch scratch_;
  /// Staging-storage recycler for the batched restore path:
  /// commit_restore parks the replaced state vectors here and the next
  /// stage_restore adopts them, so steady-state crash/restore loops
  /// allocate (and page-fault) nothing — the dominant cost of a large
  /// restore once the stream calls are chunked. Mutable because
  /// stage_restore is const by contract (it never changes engine
  /// *state*) yet runs only under the engine's exclusive
  /// synchronization, like every snapshot entry point. Stays empty in
  /// scalar mode (SECMEM_BATCH_SNAPSHOT=0 preserves the
  /// allocate-per-restore reference behavior).
  struct SnapshotArena {
    std::vector<DataBlock> ciphertext;
    std::vector<EccLane> lanes;
    std::vector<std::uint64_t> macs;
    std::vector<std::uint8_t> counter_store;
  };
  mutable SnapshotArena snap_arena_;
  /// SECMEM_BATCH_REENC kill switch, sampled at construction: false
  /// forces the scalar block-at-a-time re-encryption loop (differential
  /// reference for the batched path).
  bool batch_reencrypt_ = true;
  /// SECMEM_BATCH_SNAPSHOT kill switch, sampled at construction: false
  /// pins save/stage_restore/commit_restore to the scalar per-element
  /// reference paths (differential reference for the snapshot pipeline).
  bool batch_snapshot_ = true;
  /// SECMEM_DELTA_SNAPSHOT kill switch, sampled at construction: false
  /// makes save_delta emit full images and restore_delta reject
  /// delta-format ones (dirty tracking still runs — it is one relaxed
  /// fetch_or per store and keeping it unconditional means the kill
  /// switch changes emitted bytes, never engine state).
  bool delta_snapshot_ = true;

  /// Dirty plane: bit per granule, relaxed atomics so the const shared
  /// read path's facades never contend with it (only store paths touch
  /// it, and those run under exclusive synchronization anyway).
  std::uint64_t granule_blocks_ = 1;
  std::uint64_t num_granules_ = 0;
  std::uint64_t dirty_word_count_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> dirty_words_;
  /// Chain state: epoch counts alignment points; base_seal_ is the root
  /// seal at the last one; has_base_ false = no delta base (fresh
  /// engine, broken chain after rotation or failed restore).
  std::uint64_t snap_epoch_ = 0;
  std::uint64_t base_seal_ = 0;
  bool has_base_ = false;
};

}  // namespace secmem
