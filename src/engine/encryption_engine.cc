#include "engine/encryption_engine.h"

#include <algorithm>

namespace secmem {

EncryptionEngine::EncryptionEngine(const EngineConfig& config,
                                   CounterScheme& scheme,
                                   const SecureRegionLayout& layout,
                                   DramSystem& dram, StatRegistry& stats)
    : config_(config),
      scheme_(scheme),
      layout_(layout),
      dram_(dram),
      reads_(stats.counter("engine.reads")),
      writes_(stats.counter("engine.writes")),
      counter_hits_(stats.counter("engine.counter_hits")),
      counter_misses_(stats.counter("engine.counter_misses")),
      counter_misses_write_(stats.counter("engine.counter_misses_write")),
      tree_node_fetches_(stats.counter("engine.tree_node_fetches")),
      parent_fetches_(stats.counter("engine.parent_fetches")),
      metadata_writebacks_(stats.counter("engine.metadata_writebacks")),
      mac_hits_(stats.counter("engine.mac_hits")),
      mac_misses_(stats.counter("engine.mac_misses")),
      metadata_cache_(config.metadata_cache, stats),
      reenc_(dram, stats) {
  for (std::size_t e = 0; e < ctr_events_.size(); ++e) {
    ctr_events_[e] = &stats.counter(
        std::string("engine.ctr_event.") +
        counter_event_name(static_cast<CounterEvent>(e)));
  }
}

void EncryptionEngine::dirty_parent(std::uint64_t now, unsigned level,
                                    std::uint64_t index) {
  const BonsaiGeometry& tree = layout_.tree();
  const unsigned parent_level = level + 1;
  if (parent_level + 1 >= tree.total_levels()) return;  // root: on-chip
  const std::uint64_t parent_addr = layout_.tree_node_addr(
      parent_level, BonsaiGeometry::parent_of(index));
  auto access = metadata_cache_.access(parent_addr, /*dirty=*/true);
  post_metadata_writebacks(now, access.writebacks);
  if (!access.hit) {
    dram_.access(now, parent_addr, /*is_write=*/false);
    parent_fetches_.inc();
  }
}

void EncryptionEngine::post_metadata_writebacks(
    std::uint64_t now, const std::vector<std::uint64_t>& lines) {
  for (const std::uint64_t addr : lines) {
    dram_.access(now, addr, /*is_write=*/true);
    metadata_writebacks_.inc();
    // A dirty counter line / tree node carries fresh child MACs: its own
    // MAC changes, so its parent must absorb the update (lazy
    // propagation; MAC-region lines have no tree above them).
    const auto located = layout_.locate(addr);
    if (located.region == SecureRegionLayout::Region::kCounter ||
        located.region == SecureRegionLayout::Region::kTree) {
      dirty_parent(now, located.level, located.index);
    }
  }
}

std::uint64_t EncryptionEngine::fetch_counter(std::uint64_t now,
                                              BlockIndex block) {
  const std::uint64_t line = scheme_.storage_line_of(block);
  const std::uint64_t line_addr = layout_.counter_line_addr(line);

  auto counter_access = metadata_cache_.access(line_addr, /*dirty=*/false);
  post_metadata_writebacks(now, counter_access.writebacks);
  if (counter_access.hit) {
    counter_hits_.inc();
    return now + config_.meta_hit_latency + scheme_.decode_latency_cycles();
  }
  counter_misses_.inc();

  // Counter miss: fetch the line and every uncached ancestor up to the
  // first resident (already-verified) tree node or the on-chip roots.
  // All node addresses are known a priori, so the fetches issue in
  // parallel; verification MACs then chain bottom-up.
  std::uint64_t latest = dram_.access(now, line_addr, /*is_write=*/false);
  unsigned fetched_levels = 1;

  const BonsaiGeometry& tree = layout_.tree();
  std::uint64_t node = line;
  for (unsigned lvl = 1; lvl + 1 < tree.total_levels(); ++lvl) {
    node = BonsaiGeometry::parent_of(node);
    const std::uint64_t node_addr = layout_.tree_node_addr(lvl, node);
    auto access = metadata_cache_.access(node_addr, /*dirty=*/false);
    post_metadata_writebacks(now, access.writebacks);
    if (access.hit) break;  // resident node is verified; walk stops here
    latest = std::max(latest, dram_.access(now, node_addr, false));
    ++fetched_levels;
  }
  tree_node_fetches_.inc(fetched_levels - 1);

  return latest + fetched_levels * config_.mac_latency +
         config_.meta_hit_latency + scheme_.decode_latency_cycles();
}

std::uint64_t EncryptionEngine::read_block(std::uint64_t now,
                                           std::uint64_t addr) {
  reads_.inc();
  const BlockIndex block = addr / 64;

  // Ciphertext fetch; with x72 DIMMs the ECC/MAC lane arrives in the same
  // burst.
  const std::uint64_t t_data = dram_.access(now, addr, /*is_write=*/false);

  // Counter fetch + verification (may walk the tree).
  const std::uint64_t t_counter = fetch_counter(now, block);

  // Keystream generation starts as soon as the counter is known and
  // overlaps the data fetch (paper §2.1 / counter-mode's key advantage).
  const std::uint64_t t_keystream = t_counter + config_.aes_latency;

  // MAC availability depends on placement — this is the §3 experiment.
  std::uint64_t t_mac;
  if (config_.mac_placement == MacPlacement::kEccLane) {
    t_mac = t_data;  // same burst, no extra transaction, no cache slot
  } else {
    const std::uint64_t mac_addr = layout_.mac_line_addr(block);
    auto access = metadata_cache_.access(mac_addr, /*dirty=*/false);
    post_metadata_writebacks(now, access.writebacks);
    if (access.hit) {
      t_mac = now + config_.meta_hit_latency;
      mac_hits_.inc();
    } else {
      t_mac = dram_.access(now, mac_addr, /*is_write=*/false);
      mac_misses_.inc();
    }
  }

  // Decrypt (XOR) once data + keystream are in; verify once the MAC is.
  const std::uint64_t t_plain =
      std::max(t_data, t_keystream) + config_.xor_latency;
  return std::max(t_plain, t_mac) + config_.mac_latency;
}

void EncryptionEngine::touch_write_path(std::uint64_t now, BlockIndex block) {
  const std::uint64_t line = scheme_.storage_line_of(block);
  const std::uint64_t line_addr = layout_.counter_line_addr(line);

  // The counter line must be resident (and verified) to be updated:
  // read-modify-write. A miss costs a verified fetch like a read — walk
  // up to the first cached ancestor — but it is off the core's critical
  // path, so only the bandwidth is charged. The ancestor path is NOT
  // dirtied here: the leaf's new MAC reaches its parent lazily, when the
  // dirty line is eventually evicted (post_metadata_writebacks).
  auto counter_access = metadata_cache_.access(line_addr, /*dirty=*/true);
  post_metadata_writebacks(now, counter_access.writebacks);
  if (counter_access.hit) return;

  dram_.access(now, line_addr, /*is_write=*/false);
  counter_misses_write_.inc();
  const BonsaiGeometry& tree = layout_.tree();
  std::uint64_t node = line;
  for (unsigned lvl = 1; lvl + 1 < tree.total_levels(); ++lvl) {
    node = BonsaiGeometry::parent_of(node);
    const std::uint64_t node_addr = layout_.tree_node_addr(lvl, node);
    auto access = metadata_cache_.access(node_addr, /*dirty=*/false);
    post_metadata_writebacks(now, access.writebacks);
    if (access.hit) break;  // verified against a resident ancestor
    dram_.access(now, node_addr, /*is_write=*/false);
  }
}

void EncryptionEngine::write_block(std::uint64_t now, std::uint64_t addr) {
  writes_.inc();
  const BlockIndex block = addr / 64;

  const WriteOutcome outcome = scheme_.on_write(block);
  ctr_events_[static_cast<std::size_t>(outcome.event)]->inc();

  touch_write_path(now, block);

  // Encrypt + MAC are pipelined off the critical path; the data write
  // lands on DRAM (ECC/MAC lane travels with it on x72 DIMMs).
  dram_.access(now, addr, /*is_write=*/true);

  if (config_.mac_placement == MacPlacement::kSeparate) {
    const std::uint64_t mac_addr = layout_.mac_line_addr(block);
    auto access = metadata_cache_.access(mac_addr, /*dirty=*/true);
    post_metadata_writebacks(now, access.writebacks);
    if (!access.hit) dram_.access(now, mac_addr, /*is_write=*/false);
  }

  if (outcome.event == CounterEvent::kReencrypt) {
    const std::uint64_t group_base =
        outcome.group * scheme_.blocks_per_group() * 64ULL;
    reenc_.enqueue({group_base, scheme_.blocks_per_group()}, now);
    if (config_.background_reencryption) {
      // Drain immediately in the background: the traffic occupies banks
      // and buses (visible to subsequent core accesses) but the core
      // does not wait for it.
      reenc_.drain(now);
    }
  }
}

void EncryptionEngine::flush_metadata(std::uint64_t now) {
  post_metadata_writebacks(now, metadata_cache_.flush());
  if (!config_.background_reencryption) reenc_.drain(now);
}

}  // namespace secmem
