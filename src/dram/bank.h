// Single DRAM bank state machine: row buffer + timing windows.
//
// Tracks the open row and the earliest cycle the next column/row command
// may issue, honouring tRCD/tRP/tRAS/tCL/tWR. The channel layer arbitrates
// the shared data bus; the bank only guarantees its own constraints.
#pragma once

#include <cstdint>

#include "dram/dram_types.h"

namespace secmem {

class DramBank {
 public:
  /// `open_page`: keep the row open after an access (row-buffer hits
  /// possible); closed-page precharges immediately after every access.
  explicit DramBank(const DramTiming& timing, bool open_page = true) noexcept
      : timing_(timing), open_page_(open_page) {}

  struct AccessResult {
    std::uint64_t data_start;  ///< cycle the burst begins on the bus
    std::uint64_t data_done;   ///< cycle the burst completes
    bool row_hit;              ///< served from the open row buffer
  };

  /// Schedule a read/write of one 64-byte block in row `row`, requested at
  /// cycle `now`, with the data bus free from `bus_free` onward.
  /// Updates bank state per the configured page policy.
  AccessResult access(std::uint64_t now, std::uint64_t row, bool is_write,
                      std::uint64_t bus_free) noexcept;

  bool row_open() const noexcept { return row_open_; }
  std::uint64_t open_row() const noexcept { return open_row_; }

 private:
  DramTiming timing_;
  bool open_page_;
  bool row_open_ = false;
  std::uint64_t open_row_ = 0;
  std::uint64_t ready_at_ = 0;      ///< earliest next column command
  std::uint64_t activated_at_ = 0;  ///< when the open row was activated
  std::uint64_t write_done_ = 0;    ///< last write-recovery deadline
};

}  // namespace secmem
