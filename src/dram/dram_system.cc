#include "dram/dram_system.h"

namespace secmem {

DramCoord map_address(const DramOrg& org, std::uint64_t addr,
                      AddressMapping mapping) noexcept {
  if (mapping == AddressMapping::kBlockInterleave) {
    // Fine-grained: [row | rank | bank | channel | block].
    std::uint64_t block = addr / 64;
    const unsigned channel = static_cast<unsigned>(block % org.channels);
    block /= org.channels;
    const unsigned bank = static_cast<unsigned>(block % org.banks_per_rank);
    block /= org.banks_per_rank;
    const unsigned rank =
        static_cast<unsigned>(block % org.ranks_per_channel);
    block /= org.ranks_per_channel;
    const std::uint64_t row = block / (org.row_bytes / 64);
    return {channel, rank, bank, row};
  }
  // Channel interleave at 1KB granularity with row continuity: blocks of
  // one 1KB segment share a (channel, bank, row), consecutive segments
  // rotate channels then banks. Streams thus get row-buffer hits within
  // segments AND channel/bank parallelism across them — the standard
  // performance mapping DRAMSim2-class controllers use.
  constexpr std::uint64_t kSegBlocks = 16;  // 1KB / 64B
  const std::uint64_t block = addr / 64;
  const std::uint64_t seg = block / kSegBlocks;
  const unsigned channel = static_cast<unsigned>(seg % org.channels);
  const std::uint64_t s = seg / org.channels;
  const unsigned bank = static_cast<unsigned>(s % org.banks_per_rank);
  const std::uint64_t r2 = s / org.banks_per_rank;
  const unsigned rank = static_cast<unsigned>(r2 % org.ranks_per_channel);
  const std::uint64_t r3 = r2 / org.ranks_per_channel;
  const std::uint64_t segs_per_row = org.row_bytes / (kSegBlocks * 64);
  const std::uint64_t row = r3 / (segs_per_row ? segs_per_row : 1);
  return {channel, rank, bank, row};
}

DramSystem::DramSystem(const DramConfig& config, StatRegistry& stats)
    : config_(config), stats_(stats) {
  channels_.reserve(config.org.channels);
  for (unsigned c = 0; c < config.org.channels; ++c)
    channels_.emplace_back(config, c, stats);
}

std::uint64_t DramSystem::access(std::uint64_t now, std::uint64_t addr,
                                 bool is_write) {
  const DramCoord coord = map_address(config_.org, addr, config_.mapping);
  const auto completion = channels_[coord.channel].access(
      now, coord.rank, coord.bank, coord.row, is_write);
  stats_.counter(is_write ? "dram.writes" : "dram.reads").inc();
  stats_.scalar("dram.latency").sample(
      static_cast<double>(completion.done - now));
  return completion.done;
}

std::uint64_t DramSystem::idle_read_latency() const noexcept {
  const DramTiming& t = config_.timing;
  return t.tRCD + t.tCL + t.tBurst;
}

}  // namespace secmem
