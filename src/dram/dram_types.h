// DRAM organization and DDR3 timing parameters.
//
// Models the memory system of paper Table 1: 4 channels of DDR3-1600.
// Timing constants are expressed in *memory-controller* cycles at the CPU
// clock (3.2 GHz), i.e. DDR3-1600's 800 MHz command clock maps each DRAM
// cycle to 4 CPU cycles. Values follow common DDR3-1600 (11-11-11) parts
// as shipped with DRAMSim2's example configs.
#pragma once

#include <cstdint>

#include "common/bitops.h"

namespace secmem {

struct DramTiming {
  // All values in CPU cycles (3.2 GHz). DDR3-1600 CL=11 => 13.75ns => 44.
  std::uint32_t tCL = 44;    ///< CAS latency: column command -> first data
  std::uint32_t tRCD = 44;   ///< RAS-to-CAS: activate -> column command
  std::uint32_t tRP = 44;    ///< precharge period
  std::uint32_t tRAS = 112;  ///< activate -> precharge minimum (35ns)
  std::uint32_t tBurst = 16; ///< burst of 8 transfers on the 64(+8)-bit bus
  std::uint32_t tWR = 48;    ///< write recovery before precharge (15ns)
  std::uint32_t tREFI = 24960;  ///< refresh interval (7.8us)
  std::uint32_t tRFC = 832;     ///< refresh cycle, 4Gb parts (260ns)
};

struct DramOrg {
  unsigned channels = 4;
  unsigned ranks_per_channel = 2;
  unsigned banks_per_rank = 8;
  std::uint64_t row_bytes = 8 * 1024;  ///< row-buffer (page) size per bank
};

/// Physical address interleaving granularity.
enum class AddressMapping : std::uint8_t {
  /// 1KB segments rotate channels, then banks; blocks within a segment
  /// share a row — streams get row hits AND channel parallelism.
  kSegmentInterleave,
  /// Every 64B block rotates channels (fine-grained): maximum parallelism
  /// for random traffic, zero row locality for streams.
  kBlockInterleave,
};

struct DramConfig {
  DramTiming timing{};
  DramOrg org{};
  AddressMapping mapping = AddressMapping::kSegmentInterleave;
  /// Row-buffer management. Open-page is DRAMSim2's default and what
  /// FR-FCFS scheduling expects; closed-page precharges after every
  /// access (row hits impossible, conflicts cheaper).
  bool open_page = true;
  /// Model periodic all-bank refresh (tREFI/tRFC).
  bool refresh_enabled = true;
  /// True if DIMMs are x72 ECC parts: the 8 ECC bytes per 64-byte block
  /// travel on the extra bus lines within the same burst, so reading or
  /// writing a block's ECC lane costs zero additional transactions
  /// (paper §3.1).
  bool ecc_lane = true;
};

/// Where a physical address lands in the DRAM organization.
struct DramCoord {
  unsigned channel;
  unsigned rank;
  unsigned bank;
  std::uint64_t row;
};

/// Map a physical address per the configured interleaving scheme.
DramCoord map_address(const DramOrg& org, std::uint64_t addr,
                      AddressMapping mapping =
                          AddressMapping::kSegmentInterleave) noexcept;

}  // namespace secmem
