#include "dram/bank.h"

#include <algorithm>

namespace secmem {

DramBank::AccessResult DramBank::access(std::uint64_t now, std::uint64_t row,
                                        bool is_write,
                                        std::uint64_t bus_free) noexcept {
  std::uint64_t t = std::max(now, ready_at_);
  bool row_hit = false;

  if (row_open_ && open_row_ == row) {
    row_hit = true;
  } else {
    if (row_open_) {
      // Precharge the old row: must respect tRAS from its activation and
      // tWR after the last write into it.
      const std::uint64_t precharge_ok =
          std::max(activated_at_ + timing_.tRAS, write_done_);
      t = std::max(t, precharge_ok) + timing_.tRP;
    }
    // Activate the new row.
    activated_at_ = t;
    t += timing_.tRCD;
    row_open_ = true;
    open_row_ = row;
  }

  // Column command: data appears tCL later, and the burst needs the bus.
  std::uint64_t data_start = std::max(t + timing_.tCL, bus_free);
  const std::uint64_t data_done = data_start + timing_.tBurst;

  if (is_write) write_done_ = data_done + timing_.tWR;
  // Next column command to this bank can issue once the burst completes.
  ready_at_ = data_done;

  if (!open_page_) {
    // Closed-page: auto-precharge right after the burst (respecting tRAS
    // and write recovery); the next access pays tRCD but never a
    // conflict-precharge.
    const std::uint64_t precharge_ok = std::max(
        {data_done, activated_at_ + timing_.tRAS, write_done_});
    ready_at_ = precharge_ok + timing_.tRP;
    row_open_ = false;
  }

  return {data_start, data_done, row_hit};
}

}  // namespace secmem
